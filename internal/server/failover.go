package server

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// FailoverConfig assembles a FailoverClient. Zero fields select the
// documented defaults.
type FailoverConfig struct {
	// Addrs is the ordered server address list: the first reachable one
	// wins, both at construction and on every reconnect cycle. For a
	// replicated pair, list the primary first.
	Addrs []string
	// DialTimeout bounds each connection attempt (default 2s).
	DialTimeout time.Duration
	// RetryWindow bounds how long one request waits for a usable
	// connection before giving up (default 15s) — the failover budget.
	RetryWindow time.Duration
	// MaxBackoff caps the delay between reconnect attempts (default
	// 500ms; attempts start at 10ms and double).
	MaxBackoff time.Duration
}

func (c *FailoverConfig) fill() {
	if c.DialTimeout <= 0 {
		c.DialTimeout = 2 * time.Second
	}
	if c.RetryWindow <= 0 {
		c.RetryWindow = 15 * time.Second
	}
	if c.MaxBackoff <= 0 {
		c.MaxBackoff = 500 * time.Millisecond
	}
}

// ErrNotPrimary reports a request the addressed server refused because it
// is a following replica (StatusNotPrimary on the wire). The refusal
// happens before execution, so re-issuing — typically after a promotion —
// is always safe. Match with errors.Is: the wrapped message carries the
// server's wording, which is not part of the contract.
var ErrNotPrimary = errors.New("server: not primary")

// FailoverClient wraps Client with an address list and
// reconnect-with-backoff: when the live connection dies, the next request
// waits while one background dialer cycles the addresses until a server
// answers its hello. It deliberately does NOT retry a request that died
// in flight — whether the server executed it is unknowable, and only the
// caller can decide what that means for its history (see
// check.ThreadRecorder.Cut). Requests that never reached a connection are
// safe to re-issue and flow again automatically.
type FailoverClient struct {
	cfg FailoverConfig

	mu      sync.Mutex
	cond    *sync.Cond // signaled when cur changes, on close, and at window expiry
	cur     *Client
	gen     uint64 // increments per established connection; guards invalidate
	dialing bool
	closed  bool
	cancel  context.CancelFunc // cancels the in-flight redial's dial context

	reconnects atomic.Uint64
	shards     int // the first server's advertised shard count
}

// NewFailoverClient connects to the first reachable address. All
// addresses failing is a construction error — a misconfigured address
// list should fail fast, not burn the retry window on the first request.
func NewFailoverClient(cfg FailoverConfig) (*FailoverClient, error) {
	cfg.fill()
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("server: failover client needs at least one address")
	}
	fc := &FailoverClient{cfg: cfg}
	fc.cond = sync.NewCond(&fc.mu)
	var errs []error
	for _, addr := range cfg.Addrs {
		c, err := Dial(addr, WithDialTimeout(cfg.DialTimeout))
		if err != nil {
			errs = append(errs, fmt.Errorf("%s: %w", addr, err))
			continue
		}
		fc.cur = c
		fc.gen = 1
		fc.shards = c.ServerShards()
		return fc, nil
	}
	return nil, fmt.Errorf("server: no address reachable: %w", errors.Join(errs...))
}

// ServerShards returns the shard count advertised by the first connected
// server (a replicated pair serves identical topology).
func (fc *FailoverClient) ServerShards() int { return fc.shards }

// Reconnects returns how many times the client re-established its
// connection after the initial dial.
func (fc *FailoverClient) Reconnects() uint64 { return fc.reconnects.Load() }

// conn returns the live client, waiting up to the retry window for a
// reconnect when the connection is down. The returned generation pairs
// the client for invalidate.
func (fc *FailoverClient) conn() (*Client, uint64, error) {
	timer := time.AfterFunc(fc.cfg.RetryWindow, func() {
		fc.mu.Lock()
		fc.cond.Broadcast()
		fc.mu.Unlock()
	})
	defer timer.Stop()
	deadline := time.Now().Add(fc.cfg.RetryWindow)

	fc.mu.Lock()
	defer fc.mu.Unlock()
	for {
		if fc.closed {
			return nil, 0, ErrClosed
		}
		if fc.cur != nil {
			return fc.cur, fc.gen, nil
		}
		if !fc.dialing {
			fc.dialing = true
			ctx, cancel := context.WithCancel(context.Background())
			fc.cancel = cancel
			go fc.redial(ctx)
		}
		if !time.Now().Before(deadline) {
			return nil, 0, fmt.Errorf("%w: no server reachable within %v", ErrConnClosed, fc.cfg.RetryWindow)
		}
		fc.cond.Wait()
	}
}

// redial cycles the address list with exponential backoff until a dial
// succeeds or the context cancels (CloseContext / Close). One redial runs
// at a time; concurrent callers park in conn.
func (fc *FailoverClient) redial(ctx context.Context) {
	backoff := 10 * time.Millisecond
	for i := 0; ctx.Err() == nil; i++ {
		addr := fc.cfg.Addrs[i%len(fc.cfg.Addrs)]
		c, err := DialContext(ctx, addr, WithDialTimeout(fc.cfg.DialTimeout))
		if err == nil {
			fc.mu.Lock()
			if fc.closed {
				fc.mu.Unlock()
				_ = c.Close() // lost the race with Close; nothing to report
				return
			}
			fc.cur = c
			fc.gen++
			fc.dialing = false
			fc.cancel = nil
			fc.reconnects.Add(1)
			fc.cond.Broadcast()
			fc.mu.Unlock()
			return
		}
		if i%len(fc.cfg.Addrs) == len(fc.cfg.Addrs)-1 {
			// A full cycle failed; back off before the next round.
			select {
			case <-ctx.Done():
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > fc.cfg.MaxBackoff {
				backoff = fc.cfg.MaxBackoff
			}
		}
	}
	fc.mu.Lock()
	fc.dialing = false
	fc.cancel = nil
	fc.cond.Broadcast() // waiters re-evaluate (closed, or restart the dialer)
	fc.mu.Unlock()
}

// invalidate drops the connection of generation gen (if still current) so
// the next request triggers a reconnect. The generation check keeps a
// slow caller from tearing down a connection established after its error.
func (fc *FailoverClient) invalidate(gen uint64) {
	fc.mu.Lock()
	if fc.gen != gen || fc.cur == nil {
		fc.mu.Unlock()
		return
	}
	c := fc.cur
	fc.cur = nil
	fc.mu.Unlock()
	_ = c.Close() // already dead; the close just reclaims the fd
}

// Do issues req on the live connection, waiting through a reconnect if
// necessary. A transport error invalidates the connection and surfaces to
// the caller unretried: the request may have executed. A StatusNotPrimary
// rejection surfaces as a typed ErrNotPrimary (alongside the response):
// the failover caller's decision — re-issue or wait for promotion — hangs
// on that classification, and a typed error survives message rewording
// where string matching would not.
func (fc *FailoverClient) Do(req *Request) (Response, error) {
	return fc.DoInto(req, nil)
}

// DoInto is Do with caller-owned result scratch, forwarded to the live
// connection's Client.DoInto (see that method's aliasing contract).
func (fc *FailoverClient) DoInto(req *Request, res []Result) (Response, error) {
	c, gen, err := fc.conn()
	if err != nil {
		return Response{}, err
	}
	resp, err := c.DoInto(req, res)
	if err != nil && (errors.Is(err, ErrConnClosed) || errors.Is(err, ErrClosed)) {
		fc.invalidate(gen)
	}
	if err == nil && resp.Status == StatusNotPrimary {
		return resp, fmt.Errorf("%w: %s", ErrNotPrimary, resp.Message)
	}
	return resp, err
}

// Op issues one single-operation request.
func (fc *FailoverClient) Op(op Op, a1, a2, a3 uint64) (Response, error) {
	return fc.Do(&Request{Op: op, Arg1: a1, Arg2: a2, Arg3: a3})
}

// Batch issues one batch request.
func (fc *FailoverClient) Batch(entries []BatchEntry) (Response, error) {
	return fc.Do(&Request{Op: OpBatch, Batch: entries})
}

// Ping issues a liveness probe.
func (fc *FailoverClient) Ping() error {
	resp, err := fc.Do(&Request{Op: OpPing})
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("server: ping answered %v", resp.Status)
	}
	return nil
}

// Close tears the client down; an in-flight reconnect is cancelled.
func (fc *FailoverClient) Close() error {
	c, cancel := fc.shutdown()
	if cancel != nil {
		cancel()
	}
	if c != nil {
		return c.Close()
	}
	return nil
}

// CloseContext closes gracefully: new requests are refused, an in-flight
// reconnect is cancelled, and the live connection (if any) drains its
// in-flight requests until ctx expires.
func (fc *FailoverClient) CloseContext(ctx context.Context) error {
	c, cancel := fc.shutdown()
	if cancel != nil {
		cancel()
	}
	if c != nil {
		return c.CloseContext(ctx)
	}
	return nil
}

// shutdown flips the closed flag and detaches the live connection and any
// in-flight dial cancel, waking every parked caller.
func (fc *FailoverClient) shutdown() (*Client, context.CancelFunc) {
	fc.mu.Lock()
	defer fc.mu.Unlock()
	fc.closed = true
	c, cancel := fc.cur, fc.cancel
	fc.cur, fc.cancel = nil, nil
	fc.cond.Broadcast()
	return c, cancel
}
