package server

import (
	"testing"

	"rtle/internal/mem"
)

// TestUnownedAccountFailsLoudly pins the ownership sentinel: a bank shard
// asked to translate an account it does not own must panic — a routing
// bug — rather than silently operate on whichever owned account happens
// to sit at Bank index 0.
func TestUnownedAccountFailsLoudly(t *testing.T) {
	const keys, shards = 16, 2
	r := newRouter("bank", shards, keys)
	a, err := newADT("bank", mem.New(heapWords("bank", keys, 1)), keys, r.ownedAccounts(0))
	if err != nil {
		t.Fatal(err)
	}

	// Owned accounts translate to their dense local indices.
	for idx, g := range r.ownedAccounts(0) {
		if got := a.localIdx(g); got != idx {
			t.Errorf("owned account %d translated to %d, want %d", g, got, idx)
		}
	}

	var foreign uint64
	found := false
	for g := uint64(0); g < keys; g++ {
		if r.shardOf(g) != 0 {
			foreign, found = g, true
			break
		}
	}
	if !found {
		t.Fatal("shard 1 owns no accounts; shrink the hash?")
	}
	defer func() {
		if recover() == nil {
			t.Error("localIdx on an unowned account did not panic")
		}
	}()
	a.localIdx(foreign)
}
