package server

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"rtle/internal/check"
	"rtle/internal/fault"
	"rtle/internal/obs"
)

// startServer boots a server on a loopback port and tears it down with the
// test.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		if err := srv.Serve(); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			t.Errorf("Shutdown: %v", err)
		}
		<-done
	})
	return srv, addr.String()
}

// TestServeLinearizable is the package's core end-to-end claim: pipelined
// load over real TCP connections, recorded at the wire, is linearizable
// for every served workload.
func TestServeLinearizable(t *testing.T) {
	cases := []struct {
		workload, method string
		cfg              LoadConfig
	}{
		{"set", "FG-TLE(256)", LoadConfig{Conns: 4, Pipeline: 8, Ops: 3000, ReadPct: 90, BatchPct: 10, Keys: 128}},
		{"map", "TLE", LoadConfig{Conns: 4, Pipeline: 8, Ops: 2000, ReadPct: 50, BatchPct: 10, Keys: 64}},
		{"bank", "RHNOrec", LoadConfig{Conns: 2, Pipeline: 4, Ops: 600, ReadPct: 60, BatchPct: 20, Keys: 8}},
	}
	for _, tc := range cases {
		t.Run(tc.workload+"/"+tc.method, func(t *testing.T) {
			srv, addr := startServer(t, Config{
				Workload: tc.workload,
				Method:   tc.method,
				Workers:  4,
				Keys:     tc.cfg.Keys,
			})
			cfg := tc.cfg
			cfg.Addr = addr
			cfg.Workload = tc.workload
			cfg.Check = true
			res, err := RunLoad(cfg)
			if err != nil {
				t.Fatal(err)
			}
			if res.Ops == 0 {
				t.Fatal("no operations completed")
			}
			if len(res.WitnessViolations) > 0 {
				t.Fatalf("witness violations: %v", res.WitnessViolations)
			}
			if !res.Linearizable {
				t.Fatalf("history not linearizable: %s", res.CheckDetail)
			}
			if tc.cfg.BatchPct > 0 && res.Batches == 0 {
				t.Error("no witness batches ran")
			}
			if got := srv.Metrics().Sections(); got == 0 {
				t.Error("no atomic sections recorded")
			}
		})
	}
}

// TestFaultPlanOverWire runs chaos over the wire: the fault director
// mangles the method's speculation while networked clients record the
// history, and the result must still be linearizable.
func TestFaultPlanOverWire(t *testing.T) {
	plan := fault.Plan{
		Seed:       7,
		BeginProb:  0.05,
		AccessProb: 0.01,
		StormEvery: 400,
		StormLen:   3,
	}
	srv, addr := startServer(t, Config{
		Workload: "set",
		Method:   "FG-TLE(64)",
		Workers:  4,
		Keys:     64,
		Plan:     &plan,
	})
	res, err := RunLoad(LoadConfig{
		Addr: addr, Workload: "set", Conns: 4, Pipeline: 8,
		Ops: 2000, ReadPct: 50, BatchPct: 10, Keys: 64, Check: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linearizable {
		t.Fatalf("chaos history not linearizable: %s", res.CheckDetail)
	}
	if len(res.WitnessViolations) > 0 {
		t.Fatalf("witness violations under faults: %v", res.WitnessViolations)
	}
	if srv.Director() == nil || srv.Director().TotalInjected() == 0 {
		t.Error("fault plan injected nothing; the chaos run was vacuous")
	}
}

// TestCoalescing verifies that a backed-up queue actually shares atomic
// blocks: one worker against 32 closed-loop slots must coalesce.
func TestCoalescing(t *testing.T) {
	srv, addr := startServer(t, Config{
		Workload: "set",
		Method:   "TLE",
		Workers:  1,
		Coalesce: 8,
		Keys:     64,
	})
	res, err := RunLoad(LoadConfig{
		Addr: addr, Workload: "set", Conns: 4, Pipeline: 8,
		Ops: 2000, ReadPct: 90, Keys: 64, Check: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linearizable {
		t.Fatalf("coalesced history not linearizable: %s", res.CheckDetail)
	}
	m := srv.Metrics()
	if m.Coalesced() == 0 {
		t.Error("one worker under 32 pipelined slots never coalesced")
	}
	if m.Sections() >= res.Ops {
		t.Errorf("sections %d not reduced below ops %d by coalescing", m.Sections(), res.Ops)
	}
}

// TestBackpressure exercises the admission path directly: with a full
// queue, admit must answer StatusBusy with a retry hint instead of
// blocking, and the rejection must leave no task accounting behind.
func TestBackpressure(t *testing.T) {
	srv, err := New(Config{Workload: "set", QueueDepth: 1, Keys: 8})
	if err != nil {
		t.Fatal(err)
	}
	// No workers are running (Listen was never called), so the first
	// admission fills the queue and the second must bounce.
	c := &conn{out: make(chan *frameBuf, 4)}
	srv.admit(c, Request{ID: 1, Op: check.OpContains, Arg1: 1})
	srv.admit(c, Request{ID: 2, Op: check.OpContains, Arg1: 2})

	frame := <-c.out
	resp, err := DecodeResponse(frame.b[4:])
	if err != nil {
		t.Fatal(err)
	}
	if resp.ID != 2 || resp.Status != StatusBusy {
		t.Fatalf("second admission answered %+v, want busy for id 2", resp)
	}
	if resp.RetryAfterMicros < 100 {
		t.Errorf("retry-after %dus below the floor", resp.RetryAfterMicros)
	}
	if resp.QueueDepth != 1 {
		t.Errorf("queue depth %d, want 1", resp.QueueDepth)
	}
	if got := srv.Metrics().Responses(StatusBusy); got != 1 {
		t.Errorf("busy responses %d, want 1", got)
	}
}

// TestGracefulDrain checks the shutdown contract: in-flight requests are
// answered, later requests are refused, and Shutdown returns cleanly.
func TestGracefulDrain(t *testing.T) {
	srv, err := New(Config{Workload: "set", Keys: 64, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve() }()

	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	okCount := make([]int, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				resp, err := c.Op(check.OpInsert, uint64(i*50+j), 0, 0)
				if err != nil || resp.Status != StatusOK {
					return // the drain cut us off; that's the point
				}
				okCount[i]++
			}
		}(i)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	<-done
	wg.Wait()

	// After the drain, the connection is gone: a new request must fail
	// rather than hang.
	if resp, err := c.Op(check.OpContains, 1, 0, 0); err == nil && resp.Status == StatusOK {
		t.Error("request succeeded after shutdown")
	}
	var total int
	for _, n := range okCount {
		total += n
	}
	if srv.Metrics().Responses(StatusOK) < uint64(total) {
		t.Errorf("server answered %d OK, clients saw %d", srv.Metrics().Responses(StatusOK), total)
	}
}

// TestBadRequestOverWire checks that contract violations answer StatusBad
// without killing the connection.
func TestBadRequestOverWire(t *testing.T) {
	_, addr := startServer(t, Config{Workload: "set", Keys: 8})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	resp, err := c.Op(check.OpContains, 99, 0, 0) // out of range
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusBad {
		t.Fatalf("out-of-range key answered %v, want bad-request", resp.Status)
	}
	resp, err = c.Op(check.OpGet, 1, 0, 0) // wrong ADT
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusBad {
		t.Fatalf("map op on set workload answered %v", resp.Status)
	}
	// The connection survives rejections.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after rejections: %v", err)
	}
}

// TestMetricsRendered checks the Prometheus rendering end to end: the wire
// series must appear with the op labels after a run.
func TestMetricsRendered(t *testing.T) {
	reg := obs.NewRegistry(obs.Config{})
	srv, addr := startServer(t, Config{Workload: "set", Keys: 16, Registry: reg})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 10; i++ {
		if _, err := c.Op(check.OpInsert, uint64(i), 0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	var sb strings.Builder
	if err := srv.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		`rtled_requests_total{op="insert"} 10`,
		`rtled_requests_total{op="ping"} 1`,
		`rtled_responses_total{status="ok"}`,
		"rtled_queue_depth 0",
		"rtled_sections_total",
		`rtled_request_latency_seconds_count{op="insert"} 10`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
	// The execution registry observed the same run.
	if snap := reg.Snapshot(); snap.Stats.Ops == 0 {
		t.Error("obs registry saw no atomic blocks")
	}
}

// TestAdminServer checks the shared HTTP lifecycle helper: bound address
// before return, live serving, graceful shutdown.
func TestAdminServer(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/metrics", func(w http.ResponseWriter, _ *http.Request) {
		fmt.Fprintln(w, "rtled_up 1")
	})
	admin, err := StartAdmin("127.0.0.1:0", mux)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Get("http://" + admin.Addr().String() + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	_ = resp.Body.Close() // test teardown; a close error would only mask the real assertion
	if !strings.Contains(string(body), "rtled_up 1") {
		t.Errorf("admin served %q", body)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := admin.Shutdown(ctx); err != nil {
		t.Fatalf("admin Shutdown: %v", err)
	}
	if _, err := http.Get("http://" + admin.Addr().String() + "/metrics"); err == nil {
		t.Error("admin still serving after Shutdown")
	}
}

// TestOpenLoop smoke-tests the rate-paced mode.
func TestOpenLoop(t *testing.T) {
	_, addr := startServer(t, Config{Workload: "set", Keys: 64})
	res, err := RunLoad(LoadConfig{
		Addr: addr, Workload: "set", Conns: 2, Pipeline: 4,
		Ops: 400, RatePerSec: 20000, Keys: 64, Check: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Linearizable {
		t.Fatalf("open-loop history not linearizable: %s", res.CheckDetail)
	}
	if res.Ops == 0 {
		t.Fatal("open loop completed nothing")
	}
}
