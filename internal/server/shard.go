package server

import (
	"sync"
	"time"

	"rtle/internal/check"
	"rtle/internal/core"
	"rtle/internal/mem"
)

// shard is one independent serving partition: its own simulated heap, ADT
// instance, synchronization method, bounded queue, and worker pool. The
// key-hash router sends every single-key operation to exactly one shard,
// so shards never share simulated memory and their method instances never
// contend — the serving-layer analogue of the paper's fine-grained
// refinement, applied one level up: partition first, elide within the
// partition.
type shard struct {
	id     int
	mem    *mem.Memory
	adt    *adt
	method core.Method
	queue  chan *task

	// gate is the shard's drain gate, the fast/slow-path split at the
	// serving layer: workers hold it shared around every atomic block (the
	// speculative common case, arbitrarily concurrent), while the
	// cross-shard slow path holds every involved shard's gate exclusively
	// — in ascending shard order, so two slow operations can never
	// deadlock — which quiesces those shards for the duration of the
	// multi-shard operation.
	gate sync.RWMutex

	coal *coalescer
	m    *ShardMetrics

	// Slow-path execution state: one method thread and executor per shard,
	// touched only while gate is held exclusively, so they need no further
	// synchronization.
	slowThread core.Thread
	slowEx     *executor
}

// worker executes one shard's queued tasks. Each worker owns one method
// thread and one executor (with a handle per slot), so the pool maps onto
// the paper's thread model: Workers concurrent critical-section executors
// per shard.
func (s *Server) worker(sh *shard) {
	defer s.workersWG.Done()
	slots := s.cfg.Coalesce
	if MaxBatchOps > slots {
		slots = MaxBatchOps
	}
	ex := sh.adt.newExecutor(slots)
	thread := sh.method.NewThread()
	results := make([]Result, slots)
	group := make([]*task, 0, s.cfg.Coalesce)

	for {
		t, ok := <-sh.queue
		if !ok {
			return
		}
		sh.pickup(t)
		for t != nil {
			var carry *task
			switch t.req.Op {
			case OpPing:
				s.respond(t, nil, Response{ID: t.req.ID, Status: StatusOK})
			case OpBatch:
				s.runBatch(sh, ex, thread, t, results)
			default:
				group = append(group[:0], t)
				carry = s.fillGroup(sh, &group)
				s.runGroup(sh, ex, thread, group, results)
			}
			t = carry
		}
	}
}

// pickup accounts a task's transition from queued to executing.
func (sh *shard) pickup(t *task) {
	sh.m.queueDepth.Add(-1)
	sh.m.inflight.Add(1)
}

// fillGroup opportunistically drains further pending single operations
// into group — up to the shard's live adaptive window — so one elided
// critical section serves several queued requests. A batch or ping pulled
// while filling is returned for the caller to run next. Coalescing
// preserves linearizability: every grouped operation is pending (invoked,
// not yet answered) when the shared block commits, so placing them all at
// its commit point respects real-time order.
func (s *Server) fillGroup(sh *shard, group *[]*task) *task {
	window := sh.coal.Window()
	for len(*group) < window {
		select {
		case t, ok := <-sh.queue:
			if !ok {
				return nil
			}
			sh.pickup(t)
			if t.req.Op == OpPing || t.req.Op == OpBatch {
				return t
			}
			*group = append(*group, t)
		default:
			return nil
		}
	}
	return nil
}

// runGroup executes every task of group inside one atomic block on sh,
// each in its own executor slot, then finalizes and answers them.
func (s *Server) runGroup(sh *shard, ex *executor, thread core.Thread, group []*task, results []Result) {
	start := time.Now()
	sh.gate.RLock()
	thread.Atomic(func(c core.Context) {
		for i, t := range group {
			results[i] = ex.run(c, i, t.req.Op, t.req.Arg1, t.req.Arg2, t.req.Arg3)
		}
	})
	sh.gate.RUnlock()
	sh.sectionDone(start)
	if len(group) > 1 {
		sh.m.coalesced.Add(uint64(len(group)))
	}
	for i, t := range group {
		ex.after(i, t.req.Op, results[i])
		s.respond(t, results[i:i+1], Response{ID: t.req.ID, Status: StatusOK})
	}
}

// runBatch executes one single-shard client batch inside one atomic block
// — the protocol's atomicity contract — and answers with per-entry
// results. Batches spanning several shards take the slow path instead.
func (s *Server) runBatch(sh *shard, ex *executor, thread core.Thread, t *task, results []Result) {
	entries := t.req.Batch
	start := time.Now()
	sh.gate.RLock()
	thread.Atomic(func(c core.Context) {
		for i := range entries {
			e := &entries[i]
			results[i] = ex.run(c, i, e.Op, e.Arg1, e.Arg2, e.Arg3)
		}
	})
	sh.gate.RUnlock()
	sh.sectionDone(start)
	sh.m.batchOps.Add(uint64(len(entries)))
	for i := range entries {
		ex.after(i, entries[i].Op, results[i])
	}
	s.respond(t, results[:len(entries)], Response{ID: t.req.ID, Status: StatusOK})
}

// sectionDone folds one fast-path atomic block's wall time into the
// shard's metrics and feeds the adaptive coalesce controller.
func (sh *shard) sectionDone(start time.Time) {
	sh.m.sections.Add(1)
	sh.m.observeService(time.Since(start).Nanoseconds())
	sh.coal.Observe(sh.m.queueDepth.Load(), sh.m.ewmaServiceNanos.Load())
}

// slowSectionDone folds one slow-path atomic block into sh's metrics.
// Slow blocks run under the exclusive gate, so they count toward the
// shard's section and service series but do not steer its coalescer (the
// window follows fast-path queue pressure).
func (sh *shard) slowSectionDone(start time.Time) {
	sh.m.sections.Add(1)
	sh.m.slowBlocks.Add(1)
	sh.m.observeService(time.Since(start).Nanoseconds())
}

// slowWorker executes cross-shard tasks. One goroutine suffices: slow
// operations serialize on the exclusive gates anyway, and keeping the
// pool at one bounds the number of shards a misbehaving workload can
// quiesce at once.
func (s *Server) slowWorker() {
	defer s.workersWG.Done()
	results := make([]Result, MaxBatchOps)
	for t := range s.slowQueue {
		s.metrics.slowDepth.Add(-1)
		switch t.req.Op {
		case check.OpTransfer:
			s.runSlowTransfer(t)
		case OpBatch:
			s.runSlowBatch(t, results)
		default:
			// The router only sends transfers and batches here; anything
			// else is a routing bug surfaced loudly in tests.
			s.reject(t.c, t.req.ID, StatusBad, "internal: single-shard op on slow path")
			t.c.tasks.Done()
			s.tasksWG.Done()
		}
	}
}

// lockSpans acquires the drain gates of the involved shards exclusively,
// in ascending shard order. All cross-shard operations order their
// acquisitions the same way, so no cycle — and therefore no deadlock — is
// possible; spans is ascending by construction (router.plan).
func (s *Server) lockSpans(spans []int) {
	for _, k := range spans {
		s.shards[k].gate.Lock()
	}
}

// unlockSpans releases the gates taken by lockSpans.
func (s *Server) unlockSpans(spans []int) {
	for _, k := range spans {
		s.shards[k].gate.Unlock()
	}
}

// runSlowTransfer moves funds between accounts owned by two different
// shards: withdraw on the source shard, then deposit on the destination,
// each its own atomic block, both under the two shards' exclusive gates.
// Holding both gates for the whole sequence makes the pair observably
// atomic — no fast-path worker (and hence no client-visible operation)
// can read either shard between the halves — so the bank's conservation
// invariant is never visibly broken, exactly as if TransferCS had run in
// one block.
func (s *Server) runSlowTransfer(t *task) {
	from := s.shards[s.router.shardOf(t.req.Arg1)]
	to := s.shards[s.router.shardOf(t.req.Arg2)]
	spans := t.spans

	s.lockSpans(spans)
	var moved uint64
	start := time.Now()
	from.slowThread.Atomic(func(c core.Context) {
		moved = from.adt.withdrawCS(c, t.req.Arg1, t.req.Arg3)
	})
	from.slowSectionDone(start)
	start = time.Now()
	to.slowThread.Atomic(func(c core.Context) {
		to.adt.depositCS(c, t.req.Arg2, moved)
	})
	to.slowSectionDone(start)
	s.unlockSpans(spans)

	s.metrics.crossOps.Add(1)
	s.respond(t, []Result{{Ret: moved, Ok: true}}, Response{ID: t.req.ID, Status: StatusOK})
}

// runSlowBatch executes a batch whose entries hash to several shards: one
// atomic block per involved shard, all under the involved shards'
// exclusive gates, with each entry's result scattered back to its batch
// position. As with transfers, exclusive gates make the per-shard blocks
// jointly atomic to every observer.
func (s *Server) runSlowBatch(t *task, results []Result) {
	entries := t.req.Batch
	spans := t.spans

	s.lockSpans(spans)
	for _, k := range spans {
		sh := s.shards[k]
		start := time.Now()
		sh.gateHeldBatch(s.router, entries, results)
		sh.slowSectionDone(start)
	}
	s.unlockSpans(spans)

	s.metrics.crossOps.Add(uint64(len(entries)))
	for _, k := range spans {
		sh := s.shards[k]
		for i := range entries {
			if s.router.shardOf(entries[i].Arg1) == k {
				sh.slowEx.after(i, entries[i].Op, results[i])
			}
		}
	}
	s.respond(t, results[:len(entries)], Response{ID: t.req.ID, Status: StatusOK})
}

// gateHeldBatch runs the batch entries owned by sh inside one atomic
// block on its slow-path thread. Caller holds sh.gate exclusively.
func (sh *shard) gateHeldBatch(r *router, entries []BatchEntry, results []Result) {
	sh.slowThread.Atomic(func(c core.Context) {
		for i := range entries {
			e := &entries[i]
			if r.shardOf(e.Arg1) != sh.id {
				continue
			}
			results[i] = sh.slowEx.run(c, i, e.Op, e.Arg1, e.Arg2, e.Arg3)
		}
	})
}
