package server

import (
	"sync"
	"time"

	"rtle/internal/check"
	"rtle/internal/core"
	"rtle/internal/mem"
)

// shard is one independent serving partition: its own simulated heap, ADT
// instance, synchronization method, bounded queue, and worker pool. The
// key-hash router sends every single-key operation to exactly one shard,
// so shards never share simulated memory and their method instances never
// contend — the serving-layer analogue of the paper's fine-grained
// refinement, applied one level up: partition first, elide within the
// partition.
type shard struct {
	id     int
	mem    *mem.Memory
	adt    *adt
	method core.Method
	queue  chan *task

	// gate is the shard's drain gate, the fast/slow-path split at the
	// serving layer: workers hold it shared around every atomic block (the
	// speculative common case, arbitrarily concurrent), while the
	// cross-shard slow path holds every involved shard's gate exclusively
	// — in ascending shard order, so two slow operations can never
	// deadlock — which quiesces those shards for the duration of the
	// multi-shard operation.
	gate sync.RWMutex

	coal *coalescer
	m    *ShardMetrics

	// Slow-path execution state: one method thread and executor per shard,
	// touched only while gate is held exclusively, so they need no further
	// synchronization.
	slowThread core.Thread
	slowEx     *executor
}

// worker executes one shard's queued tasks. Each worker owns one method
// thread and one executor (with a handle per slot), so the pool maps onto
// the paper's thread model: Workers concurrent critical-section executors
// per shard.
func (s *Server) worker(sh *shard) {
	defer s.workersWG.Done()
	slots := s.cfg.Coalesce
	if MaxBatchOps > slots {
		slots = MaxBatchOps
	}
	ex := sh.adt.newExecutor(slots)
	thread := sh.method.NewThread()
	results := make([]Result, slots)
	group := make([]*task, 0, s.cfg.Coalesce)

	for {
		t, ok := <-sh.queue
		if !ok {
			return
		}
		sh.pickup(t)
		for t != nil {
			var carry *task
			switch t.req.Op {
			case OpPing:
				s.respond(t, nil, Response{ID: t.req.ID, Status: StatusOK})
			case OpBatch:
				s.runBatch(sh, ex, thread, t, results)
			default:
				group = append(group[:0], t)
				carry = s.fillGroup(sh, &group)
				s.runGroup(sh, ex, thread, group, results)
			}
			t = carry
		}
	}
}

// pickup accounts a task's transition from queued to executing.
func (sh *shard) pickup(t *task) {
	sh.m.queueDepth.Add(-1)
	sh.m.inflight.Add(1)
}

// fillGroup opportunistically drains further pending single operations
// into group — up to the shard's live adaptive window — so one elided
// critical section serves several queued requests. A batch or ping pulled
// while filling is returned for the caller to run next. Coalescing
// preserves linearizability: every grouped operation is pending (invoked,
// not yet answered) when the shared block commits, so placing them all at
// its commit point respects real-time order.
func (s *Server) fillGroup(sh *shard, group *[]*task) *task {
	window := sh.coal.Window()
	for len(*group) < window {
		select {
		case t, ok := <-sh.queue:
			if !ok {
				return nil
			}
			sh.pickup(t)
			if t.req.Op == OpPing || t.req.Op == OpBatch {
				return t
			}
			*group = append(*group, t)
		default:
			return nil
		}
	}
	return nil
}

// runGroup executes every task of group inside one atomic block on sh,
// each in its own executor slot, then finalizes and answers them.
func (s *Server) runGroup(sh *shard, ex *executor, thread core.Thread, group []*task, results []Result) {
	start := time.Now()
	sh.gate.RLock()
	thread.Atomic(func(c core.Context) {
		for i, t := range group {
			results[i] = ex.run(c, i, t.req.Op, t.req.Arg1, t.req.Arg2, t.req.Arg3)
		}
	})
	sh.gate.RUnlock()
	sh.sectionDone(start)
	if len(group) > 1 {
		sh.m.coalesced.Add(uint64(len(group)))
	}
	for i, t := range group {
		ex.after(i, t.req.Op, results[i])
		s.respond(t, results[i:i+1], Response{ID: t.req.ID, Status: StatusOK})
	}
}

// runBatch executes one single-shard client batch inside one atomic block
// — the protocol's atomicity contract — and answers with per-entry
// results. Batches spanning several shards take the slow path instead.
func (s *Server) runBatch(sh *shard, ex *executor, thread core.Thread, t *task, results []Result) {
	entries := t.req.Batch
	start := time.Now()
	sh.gate.RLock()
	thread.Atomic(func(c core.Context) {
		for i := range entries {
			e := &entries[i]
			results[i] = ex.run(c, i, e.Op, e.Arg1, e.Arg2, e.Arg3)
		}
	})
	sh.gate.RUnlock()
	sh.sectionDone(start)
	sh.m.batchOps.Add(uint64(len(entries)))
	for i := range entries {
		ex.after(i, entries[i].Op, results[i])
	}
	s.respond(t, results[:len(entries)], Response{ID: t.req.ID, Status: StatusOK})
}

// sectionDone folds one fast-path atomic block's wall time into the
// shard's metrics and feeds the adaptive coalesce controller.
func (sh *shard) sectionDone(start time.Time) {
	nanos := time.Since(start).Nanoseconds()
	sh.m.sections.Add(1)
	sh.m.observeService(nanos)
	sh.m.observeFastService(nanos)
	sh.coal.Observe(sh.m.queueDepth.Load(), sh.m.ewmaFastNanos.Load())
}

// slowSectionDone folds one slow-path atomic block into sh's metrics.
// Slow blocks run under the exclusive gate; they feed the shared service
// EWMA (the retry-after hint prices total shard occupancy) but not the
// fast-path EWMA the coalescer steers by, so a long multi-shard block
// cannot masquerade as fast-path service time and suppress window
// widening.
func (sh *shard) slowSectionDone(start time.Time) {
	sh.m.sections.Add(1)
	sh.m.slowBlocks.Add(1)
	sh.m.observeService(time.Since(start).Nanoseconds())
}

// slowWorker executes cross-shard tasks. One goroutine suffices: slow
// operations serialize on the exclusive gates anyway, and keeping the
// pool at one bounds the number of shards a misbehaving workload can
// quiesce at once.
func (s *Server) slowWorker() {
	defer s.workersWG.Done()
	results := make([]Result, MaxBatchOps)
	for t := range s.slowQueue {
		s.metrics.slowDepth.Add(-1)
		switch t.req.Op {
		case check.OpTransfer:
			s.runSlowTransfer(t)
		case OpBatch:
			s.runSlowBatch(t, results)
		default:
			// The router only sends transfers and batches here; anything
			// else is a routing bug surfaced loudly in tests.
			s.reject(t.c, t.req.ID, StatusBad, "internal: single-shard op on slow path")
			t.c.tasks.Done()
			s.tasksWG.Done()
		}
	}
}

// lockSpans acquires the drain gates of the involved shards exclusively,
// in ascending shard order. All cross-shard operations order their
// acquisitions the same way, so no cycle — and therefore no deadlock — is
// possible; spans is ascending by construction (router.plan).
func (s *Server) lockSpans(spans []int) {
	for _, k := range spans {
		s.shards[k].gate.Lock()
	}
}

// unlockSpans releases the gates taken by lockSpans.
func (s *Server) unlockSpans(spans []int) {
	for _, k := range spans {
		s.shards[k].gate.Unlock()
	}
}

// runSlowTransfer moves funds between accounts owned by two different
// shards: withdraw on the source shard, then deposit on the destination,
// each its own atomic block, both under the two shards' exclusive gates.
// Holding both gates for the whole sequence makes the pair observably
// atomic — no fast-path worker (and hence no client-visible operation)
// can read either shard between the halves — so the bank's conservation
// invariant is never visibly broken, exactly as if TransferCS had run in
// one block.
func (s *Server) runSlowTransfer(t *task) {
	from := s.shards[s.router.shardOf(t.req.Arg1)]
	to := s.shards[s.router.shardOf(t.req.Arg2)]

	s.lockSpans(t.spans)
	res := s.crossTransfer(from, to, t.req.Arg1, t.req.Arg2, t.req.Arg3)
	s.unlockSpans(t.spans)

	s.metrics.crossOps.Add(1)
	s.respond(t, []Result{res}, Response{ID: t.req.ID, Status: StatusOK})
}

// crossTransfer runs the withdraw/deposit split of one cross-shard
// transfer: withdraw on the source shard, then deposit of the amount
// actually moved on the destination, each its own atomic block. The
// caller holds both shards' gates exclusively, which is what makes the
// two blocks observably one transfer (see runSlowTransfer). The clamped
// result matches TransferCS exactly.
func (s *Server) crossTransfer(from, to *shard, src, dst, amount uint64) Result {
	var moved uint64
	start := time.Now()
	from.slowThread.Atomic(func(c core.Context) {
		moved = from.adt.withdrawCS(c, src, amount)
	})
	from.slowSectionDone(start)
	start = time.Now()
	to.slowThread.Atomic(func(c core.Context) {
		to.adt.depositCS(c, dst, moved)
	})
	to.slowSectionDone(start)
	return Result{Ret: moved, Ok: true}
}

// runSlowBatch executes a batch whose entries span several shards. All
// involved shards' gates are held exclusively for the whole batch, then
// the entries execute strictly in batch order, each inside its own
// atomic block on its owning shard — a cross-shard transfer entry as the
// crossTransfer withdraw/deposit split, since its two accounts live in
// different shards' heaps. The gates make the per-entry blocks jointly
// atomic to every observer, so the client sees exactly a sequential,
// atomic execution of its batch.
func (s *Server) runSlowBatch(t *task, results []Result) {
	entries := t.req.Batch
	spans := t.spans

	s.lockSpans(spans)
	for i := range entries {
		e := &entries[i]
		a, b := s.router.entryShards(e)
		if a != b {
			results[i] = s.crossTransfer(s.shards[a], s.shards[b], e.Arg1, e.Arg2, e.Arg3)
			continue
		}
		sh := s.shards[a]
		start := time.Now()
		sh.slowThread.Atomic(func(c core.Context) {
			results[i] = sh.slowEx.run(c, i, e.Op, e.Arg1, e.Arg2, e.Arg3)
		})
		sh.slowSectionDone(start)
		sh.slowEx.after(i, e.Op, results[i])
	}
	s.unlockSpans(spans)

	s.metrics.crossOps.Add(uint64(len(entries)))
	s.respond(t, results[:len(entries)], Response{ID: t.req.ID, Status: StatusOK})
}
