package server

import (
	"sync"
	"sync/atomic"
	"time"

	"rtle/internal/check"
	"rtle/internal/core"
	"rtle/internal/mem"
	"rtle/internal/repl"
)

// shard is one independent serving partition: its own simulated heap, ADT
// instance, synchronization method, bounded queue, and worker pool. The
// key-hash router sends every single-key operation to exactly one shard,
// so shards never share simulated memory and their method instances never
// contend — the serving-layer analogue of the paper's fine-grained
// refinement, applied one level up: partition first, elide within the
// partition.
type shard struct {
	id     int
	mem    *mem.Memory
	adt    *adt
	method core.Method
	queue  chan *task

	// gate is the shard's drain gate, the fast/slow-path split at the
	// serving layer: workers hold it shared around every atomic block (the
	// speculative common case, arbitrarily concurrent), while the
	// cross-shard slow path holds every involved shard's gate exclusively
	// — in ascending shard order, so two slow operations can never
	// deadlock — which quiesces those shards for the duration of the
	// multi-shard operation.
	gate sync.RWMutex

	coal *coalescer
	m    *ShardMetrics

	// logMu serializes replicated fast-path commits on this shard: held
	// around the whole gate region (RLock, atomic block, log append) so an
	// entry's log position always matches its commit order — the invariant
	// replica replay rests on. Commits on different shards never share a
	// logMu, so cross-shard concurrency is preserved; within a shard,
	// replication trades the fast path's commit concurrency for a sound
	// log, and only when replication is enabled.
	logMu sync.Mutex

	// lastSeq is the latest log sequence appended by a commit involving
	// this shard — the barrier a sync-mode read-only block waits on (reads
	// are never logged, but must not be answered ahead of the acknowledged
	// writes they observed).
	lastSeq atomic.Uint64

	// Slow-path execution state: one method thread and executor per shard,
	// touched only while gate is held exclusively, so they need no further
	// synchronization.
	slowThread core.Thread
	slowEx     *executor
}

// abortProbe tracks one worker thread's cumulative attempt/abort counters
// so each section's delta can feed the shard's contention signal. The
// stats are written by the owning worker goroutine only, so sampling them
// between sections is race-free.
type abortProbe struct {
	stats    *core.Stats
	attempts uint64
	aborts   uint64
}

// sample returns the (attempts, aborts) delta since the previous sample.
func (p *abortProbe) sample() (attempts, aborts uint64) {
	st := p.stats
	att := st.FastAttempts + st.SlowAttempts + st.STMStarts
	ab := st.STMAborts
	for i := range st.FastAborts {
		ab += st.FastAborts[i] + st.SlowAborts[i]
	}
	attempts, aborts = att-p.attempts, ab-p.aborts
	p.attempts, p.aborts = att, ab
	return attempts, aborts
}

// worker executes one shard's queued tasks. Each worker owns one method
// thread and one executor (with a handle per slot), so the pool maps onto
// the paper's thread model: Workers concurrent critical-section executors
// per shard.
//
//rtle:hotpath
func (s *Server) worker(sh *shard) {
	defer s.workersWG.Done()
	slots := s.cfg.Coalesce
	if MaxBatchOps > slots {
		slots = MaxBatchOps
	}
	ex := sh.adt.newExecutor(slots)
	thread := sh.method.NewThread()
	results := make([]Result, slots) //rtle:ignore hotalloc worker-lifetime scratch; allocated once per worker and reused for every block
	group := make([]*task, 0, s.cfg.Coalesce)
	probe := &abortProbe{stats: thread.Stats()} //rtle:ignore hotalloc worker-lifetime scratch; allocated once per worker and reused for every block
	replBuf := make([]repl.Op, 0, slots)

	for {
		t, ok := <-sh.queue
		if !ok {
			return
		}
		// The queue carries affinity-run chains as well as lone tasks. Each
		// task is picked up (queued → executing) only as it is detached
		// into a group, so a carried chain remainder still reads as queue
		// depth — the backlog signal the adaptive coalescer widens on.
		// Detaching before execution matters: putTask clears next, so a
		// still-linked task would drop its tail.
		for t != nil {
			carry := t.next
			t.next = nil
			sh.pickup(t)
			switch t.req.Op {
			case OpPing:
				//rtle:ignore hotalloc a ping carries no results; respond encodes nil as the empty set without growing it
				s.respond(t, nil, Response{ID: t.req.ID, Status: StatusOK})
			case OpBatch:
				s.runBatch(sh, ex, thread, t, results, probe, replBuf)
			default:
				group = append(group[:0], t)
				window := sh.coal.Window()
				// The rest of the chain fills the group first, then the
				// queue tops it off.
				for carry != nil && len(group) < window &&
					carry.req.Op != OpPing && carry.req.Op != OpBatch {
					nt := carry
					carry = carry.next
					nt.next = nil
					sh.pickup(nt)
					group = append(group, nt)
				}
				if carry == nil && len(group) < window {
					carry = s.fillGroup(sh, &group, window)
				}
				s.runGroup(sh, ex, thread, group, results, probe, replBuf)
			}
			t = carry
		}
	}
}

// pickup accounts a task's transition from queued to executing.
func (sh *shard) pickup(t *task) {
	sh.m.queueDepth.Add(-1)
	sh.m.inflight.Add(1)
}

// fillGroup opportunistically drains further pending single operations
// into group — up to the shard's live adaptive window — so one elided
// critical section serves several queued requests. A batch or ping pulled
// while filling is returned for the caller to run next, as is the
// remainder of a chain that overflows the window (already picked up, its
// links intact). Coalescing preserves linearizability: every grouped
// operation is pending (invoked, not yet answered) when the shared block
// commits, so placing them all at its commit point respects real-time
// order.
func (s *Server) fillGroup(sh *shard, group *[]*task, window int) *task {
	for len(*group) < window {
		select {
		case t, ok := <-sh.queue:
			if !ok {
				return nil
			}
			for t != nil {
				if t.req.Op == OpPing || t.req.Op == OpBatch || len(*group) >= window {
					return t
				}
				nx := t.next
				t.next = nil
				sh.pickup(t)
				*group = append(*group, t)
				t = nx
			}
		default:
			return nil
		}
	}
	return nil
}

// runFastSection executes one fast-path atomic block under sh's shared
// gate and, on a replicating primary, appends the block's mutating ops to
// the log inside the gate region — the log-order-equals-gate-order
// invariant replica replay rests on. It returns the sync barrier: the
// commit's last log sequence (for a write), or the shard's latest logged
// sequence (for a sync-mode read-only block, which must not be answered
// ahead of the acknowledged writes it observed). Zero means no barrier.
func (s *Server) runFastSection(sh *shard, body func(), ops []repl.Op) uint64 {
	r := s.repl
	if r == nil || !r.primary() || (ops == nil && !r.syncAck) {
		// Unreplicated (or async read-only): the bare fast path.
		sh.gate.RLock()
		body()
		sh.gate.RUnlock()
		return 0
	}
	sh.logMu.Lock()
	sh.gate.RLock()
	body()
	var bar uint64
	if ops != nil {
		bar = r.append(ops)
		sh.lastSeq.Store(bar)
	} else {
		bar = sh.lastSeq.Load()
	}
	sh.gate.RUnlock()
	sh.logMu.Unlock()
	return bar
}

// runGroup executes every task of group inside one atomic block on sh,
// each in its own executor slot, then finalizes and answers them.
func (s *Server) runGroup(sh *shard, ex *executor, thread core.Thread, group []*task, results []Result, probe *abortProbe, replBuf []repl.Op) {
	var ops []repl.Op
	if r := s.repl; r != nil && r.primary() {
		ops = replGroupOps(replBuf, group)
	}
	start := time.Now()
	bar := s.runFastSection(sh, func() { //rtle:ignore hotalloc block-body closure pair; runFastSection and Atomic call them inline, so they stay on the stack
		thread.Atomic(func(c core.Context) {
			for i, t := range group {
				results[i] = ex.run(c, i, t.req.Op, t.req.Arg1, t.req.Arg2, t.req.Arg3)
			}
		})
	}, ops)
	sh.sectionDone(start, probe)
	if len(group) > 1 {
		sh.m.coalesced.Add(uint64(len(group)))
	}
	for i, t := range group {
		ex.after(i, t.req.Op, results[i])
	}
	if !s.replWait(bar) {
		for _, t := range group {
			s.discard(t)
		}
		return
	}
	for i, t := range group {
		s.respond(t, results[i:i+1], Response{ID: t.req.ID, Status: StatusOK})
	}
}

// runBatch executes one single-shard client batch inside one atomic block
// — the protocol's atomicity contract — and answers with per-entry
// results. Batches spanning several shards take the slow path instead.
func (s *Server) runBatch(sh *shard, ex *executor, thread core.Thread, t *task, results []Result, probe *abortProbe, replBuf []repl.Op) {
	entries := t.req.Batch
	var ops []repl.Op
	if r := s.repl; r != nil && r.primary() {
		ops = replBatchOps(replBuf, entries)
	}
	start := time.Now()
	bar := s.runFastSection(sh, func() { //rtle:ignore hotalloc block-body closure pair; runFastSection and Atomic call them inline, so they stay on the stack
		thread.Atomic(func(c core.Context) {
			for i := range entries {
				e := &entries[i]
				results[i] = ex.run(c, i, e.Op, e.Arg1, e.Arg2, e.Arg3)
			}
		})
	}, ops)
	sh.sectionDone(start, probe)
	sh.m.batchOps.Add(uint64(len(entries)))
	for i := range entries {
		ex.after(i, entries[i].Op, results[i])
	}
	if !s.replWait(bar) {
		s.discard(t)
		return
	}
	s.respond(t, results[:len(entries)], Response{ID: t.req.ID, Status: StatusOK})
}

// replWait blocks until the barrier sequence is acknowledged (sync ack
// mode; a no-op otherwise). A false return means the wait was abandoned
// by server teardown: the caller must discard the task instead of
// answering it — the write may never reach a replica, so a response
// would be an acknowledgement the surviving side cannot honor.
func (s *Server) replWait(bar uint64) bool {
	if s.repl == nil {
		return true
	}
	return s.repl.waitAcked(bar)
}

// replAppendSlow appends one slow-path block's mutating ops while the
// involved shards' gates are held exclusively, advancing every span's
// lastSeq. For a read-only block it returns the sync barrier instead: the
// latest logged sequence across the spans (stable, since the gates are
// held). Zero means no barrier.
//
//rtle:gated
func (s *Server) replAppendSlow(tp *topology, spans []int, ops []repl.Op) uint64 {
	r := s.repl
	if r == nil || !r.primary() {
		return 0
	}
	if len(ops) == 0 {
		if !r.syncAck {
			return 0
		}
		var bar uint64
		for _, k := range spans {
			if v := tp.shards[k].lastSeq.Load(); v > bar {
				bar = v
			}
		}
		return bar
	}
	seq := r.append(ops)
	for _, k := range spans {
		tp.shards[k].lastSeq.Store(seq)
	}
	return seq
}

// sectionDone folds one fast-path atomic block's wall time and its HTM
// attempt/abort delta into the shard's metrics and feeds the adaptive
// coalesce controller.
func (sh *shard) sectionDone(start time.Time, probe *abortProbe) {
	nanos := time.Since(start).Nanoseconds()
	sh.m.sections.Add(1)
	sh.m.observeService(nanos)
	sh.m.observeFastService(nanos)
	attempts, aborts := probe.sample()
	sh.m.observeAborts(attempts, aborts)
	sh.coal.Observe(sh.m.queueDepth.Load(), sh.m.ewmaFastNanos.Load(), sh.m.ewmaAbortPerMille.Load())
}

// slowSectionDone folds one slow-path atomic block into sh's metrics.
// Slow blocks run under the exclusive gate; they feed the shared service
// EWMA (the retry-after hint prices total shard occupancy) but not the
// fast-path EWMA the coalescer steers by, so a long multi-shard block
// cannot masquerade as fast-path service time and suppress window
// widening.
func (sh *shard) slowSectionDone(start time.Time) {
	sh.m.sections.Add(1)
	sh.m.slowBlocks.Add(1)
	sh.m.observeService(time.Since(start).Nanoseconds())
}

// slowWorker executes one generation's cross-shard tasks. One goroutine
// suffices: slow operations serialize on the exclusive gates anyway, and
// keeping the pool at one bounds the number of shards a misbehaving
// workload can quiesce at once.
func (s *Server) slowWorker(tp *topology) {
	defer s.workersWG.Done()
	results := make([]Result, MaxBatchOps)
	for t := range tp.slowQueue {
		s.metrics.slowDepth.Add(-1)
		switch t.req.Op {
		case check.OpTransfer:
			s.runSlowTransfer(tp, t)
		case OpBatch:
			s.runSlowBatch(tp, t, results)
		default:
			// The router only sends transfers and batches here; anything
			// else is a routing bug surfaced loudly in tests.
			s.reject(t.c, t.req.ID, StatusBad, "internal: single-shard op on slow path")
			s.discard(t)
		}
	}
}

// lockSpans acquires the drain gates of the involved shards exclusively,
// in ascending shard order. All cross-shard operations order their
// acquisitions the same way, so no cycle — and therefore no deadlock — is
// possible; spans is ascending by construction (router.plan).
//
//rtle:gatelock
func (tp *topology) lockSpans(spans []int) {
	for _, k := range spans {
		tp.shards[k].gate.Lock()
	}
}

// unlockSpans releases the gates taken by lockSpans.
func (tp *topology) unlockSpans(spans []int) {
	for _, k := range spans {
		tp.shards[k].gate.Unlock()
	}
}

// runSlowTransfer moves funds between accounts owned by two different
// shards: withdraw on the source shard, then deposit on the destination,
// each its own atomic block, both under the two shards' exclusive gates.
// Holding both gates for the whole sequence makes the pair observably
// atomic — no fast-path worker (and hence no client-visible operation)
// can read either shard between the halves — so the bank's conservation
// invariant is never visibly broken, exactly as if TransferCS had run in
// one block.
func (s *Server) runSlowTransfer(tp *topology, t *task) {
	from := tp.shards[tp.router.shardOf(t.req.Arg1)]
	to := tp.shards[tp.router.shardOf(t.req.Arg2)]

	tp.lockSpans(t.spans)
	res := s.crossTransfer(from, to, t.req.Arg1, t.req.Arg2, t.req.Arg3)
	var bar uint64
	if r := s.repl; r != nil && r.primary() {
		bar = s.replAppendSlow(tp, t.spans, []repl.Op{{
			Code: uint8(check.OpTransfer),
			Arg1: t.req.Arg1, Arg2: t.req.Arg2, Arg3: t.req.Arg3,
		}})
	}
	tp.unlockSpans(t.spans)

	s.metrics.crossOps.Add(1)
	if !s.replWait(bar) {
		s.discard(t)
		return
	}
	s.respond(t, []Result{res}, Response{ID: t.req.ID, Status: StatusOK})
}

// crossTransfer runs the withdraw/deposit split of one cross-shard
// transfer: withdraw on the source shard, then deposit of the amount
// actually moved on the destination, each its own atomic block. The
// caller holds both shards' gates exclusively, which is what makes the
// two blocks observably one transfer (see runSlowTransfer). The clamped
// result matches TransferCS exactly.
func (s *Server) crossTransfer(from, to *shard, src, dst, amount uint64) Result {
	var moved uint64
	start := time.Now()
	from.slowThread.Atomic(func(c core.Context) {
		moved = from.adt.withdrawCS(c, src, amount)
	})
	from.slowSectionDone(start)
	start = time.Now()
	to.slowThread.Atomic(func(c core.Context) {
		to.adt.depositCS(c, dst, moved)
	})
	to.slowSectionDone(start)
	return Result{Ret: moved, Ok: true}
}

// runSlowBatch executes a batch whose entries span several shards. All
// involved shards' gates are held exclusively for the whole batch, then
// the entries execute strictly in batch order, each inside its own
// atomic block on its owning shard — a cross-shard transfer entry as the
// crossTransfer withdraw/deposit split, since its two accounts live in
// different shards' heaps. The gates make the per-entry blocks jointly
// atomic to every observer, so the client sees exactly a sequential,
// atomic execution of its batch.
func (s *Server) runSlowBatch(tp *topology, t *task, results []Result) {
	entries := t.req.Batch
	spans := t.spans

	tp.lockSpans(spans)
	s.execEntriesLocked(tp, entries, results)
	var ops []repl.Op
	if r := s.repl; r != nil && r.primary() {
		ops = replBatchOps(nil, entries)
	}
	bar := s.replAppendSlow(tp, spans, ops)
	tp.unlockSpans(spans)

	s.metrics.crossOps.Add(uint64(len(entries)))
	if !s.replWait(bar) {
		s.discard(t)
		return
	}
	s.respond(t, results[:len(entries)], Response{ID: t.req.ID, Status: StatusOK})
}

// execEntriesLocked executes batch entries strictly in order, each inside
// its own atomic block on its owning shard (a cross-shard transfer as the
// crossTransfer split). The caller holds every involved shard's gate
// exclusively — runSlowBatch for client batches, applyBlock for replica
// replay, so both paths produce identical state transitions.
func (s *Server) execEntriesLocked(tp *topology, entries []BatchEntry, results []Result) {
	for i := range entries {
		e := &entries[i]
		a, b := tp.router.entryShards(e)
		if a != b {
			results[i] = s.crossTransfer(tp.shards[a], tp.shards[b], e.Arg1, e.Arg2, e.Arg3)
			continue
		}
		sh := tp.shards[a]
		start := time.Now()
		sh.slowThread.Atomic(func(c core.Context) {
			results[i] = sh.slowEx.run(c, i, e.Op, e.Arg1, e.Arg2, e.Arg3)
		})
		sh.slowSectionDone(start)
		sh.slowEx.after(i, e.Op, results[i])
	}
}
