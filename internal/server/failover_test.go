package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"rtle/internal/check"
	"rtle/internal/rng"
)

// fakeHelloServer accepts one connection, answers the hello with the
// given ServerHello, and hands the connection to serve (nil serve just
// holds the connection open until the test ends).
func fakeHelloServer(t *testing.T, hello ServerHello, serve func(nc net.Conn)) string {
	t.Helper()
	lis, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	t.Cleanup(func() {
		_ = lis.Close()
		close(done)
	})
	go func() {
		nc, err := lis.Accept()
		if err != nil {
			return
		}
		defer nc.Close()
		fr := frameReader{r: bufio.NewReader(nc)}
		if _, err := fr.next(); err != nil { // the client hello; content irrelevant here
			return
		}
		if _, err := nc.Write(AppendServerHello(nil, &hello)); err != nil {
			return
		}
		if serve == nil {
			<-done // hold the connection open until the test ends
			return
		}
		serve(nc)
	}()
	return lis.Addr().String()
}

// TestClientIgnoresUnknownServerHelloBits pins the negotiation contract
// from the client side: a server advertising feature bits this client
// does not know must still be usable — the bits are reported verbatim,
// not rejected.
func TestClientIgnoresUnknownServerHelloBits(t *testing.T) {
	const unknown = uint32(1 << 30)
	addr := fakeHelloServer(t, ServerHello{
		Version:  ProtocolVersion,
		Features: FeatureSharded | FeatureReplicated | unknown,
		Shards:   3,
	}, nil)

	c, err := DialContext(context.Background(), addr, WithDialTimeout(5*time.Second))
	if err != nil {
		t.Fatalf("dial against unknown feature bits failed: %v", err)
	}
	defer c.Close()
	if c.ServerFeatures()&unknown == 0 {
		t.Error("unknown feature bit not reported verbatim")
	}
	if c.ServerShards() != 3 {
		t.Errorf("shards = %d, want 3", c.ServerShards())
	}
}

// TestErrConnClosedTyping pins the error taxonomy failover policy keys
// on: a peer-closed connection surfaces ErrConnClosed, a local Close
// surfaces ErrClosed, and the two are distinguishable with errors.Is.
func TestErrConnClosedTyping(t *testing.T) {
	// Peer close: the fake server drops the connection right after hello.
	addr := fakeHelloServer(t, ServerHello{Version: ProtocolVersion, Shards: 1},
		func(nc net.Conn) { _ = nc.Close() })
	c, err := DialContext(context.Background(), addr, WithDialTimeout(5*time.Second))
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.Op(check.OpGet, 1, 0, 0)
	if !errors.Is(err, ErrConnClosed) {
		t.Errorf("peer close surfaced %v, want ErrConnClosed", err)
	}
	if errors.Is(err, ErrClosed) {
		t.Errorf("peer close error %v also matches ErrClosed; the taxonomy must distinguish them", err)
	}
	_ = c.Close()

	// Local close: a real server stays healthy; only the client hangs up.
	_, srvAddr := startServer(t, Config{Workload: "map", Keys: 32})
	c2, err := DialContext(context.Background(), srvAddr)
	if err != nil {
		t.Fatal(err)
	}
	_ = c2.Close()
	_, err = c2.Op(check.OpGet, 1, 0, 0)
	if !errors.Is(err, ErrClosed) {
		t.Errorf("local close surfaced %v, want ErrClosed", err)
	}
	if errors.Is(err, ErrConnClosed) {
		t.Errorf("local close error %v also matches ErrConnClosed", err)
	}
}

// TestFailoverClientReconnects checks the basic ride-through: the client
// survives its server dying and a successor appearing at another address.
func TestFailoverClientReconnects(t *testing.T) {
	cfg := Config{Workload: "map", Keys: 32, Addr: "127.0.0.1:0"}
	srvA, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addrA, err := srvA.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srvA.Serve() }() // killed abruptly below; the error carries no signal
	_, addrB := startServer(t, Config{Workload: "map", Keys: 32})

	fc, err := NewFailoverClient(FailoverConfig{Addrs: []string{addrA.String(), addrB}})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	if _, err := fc.Op(check.OpPut, 1, 7, 0); err != nil {
		t.Fatal(err)
	}

	_ = srvA.Close()
	// The in-flight connection dies; the first error is the ambiguous one
	// and must surface unretried. Subsequent requests flow to server B.
	deadline := time.Now().Add(10 * time.Second)
	for {
		resp, err := fc.Op(check.OpGet, 1, 0, 0)
		if err == nil && resp.Status == StatusOK {
			break
		}
		if err != nil && !errors.Is(err, ErrConnClosed) {
			t.Fatalf("mid-failover error %v, want ErrConnClosed", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("failover never completed")
		}
	}
	if fc.Reconnects() == 0 {
		t.Error("Reconnects() == 0 after a failover")
	}
}

// TestFailoverClientCloseContextDuringReconnect checks the shutdown path
// the CLI exercises on ctrl-C mid-outage: with every address dead and a
// redial in flight, CloseContext must cancel the dial loop and return
// promptly instead of waiting out the retry window.
func TestFailoverClientCloseContextDuringReconnect(t *testing.T) {
	cfg := Config{Workload: "map", Keys: 32, Addr: "127.0.0.1:0"}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }() // killed abruptly below; the error carries no signal

	fc, err := NewFailoverClient(FailoverConfig{
		Addrs:       []string{addr.String()},
		RetryWindow: time.Minute, // long on purpose: close must not wait it out
	})
	if err != nil {
		t.Fatal(err)
	}
	_ = srv.Close()

	// Drive a request into the dead connection so the redial loop starts.
	opDone := make(chan error, 1)
	go func() {
		_, err := fc.Op(check.OpGet, 1, 0, 0)
		opDone <- err
	}()
	time.Sleep(50 * time.Millisecond)

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	start := time.Now()
	if err := fc.CloseContext(ctx); err != nil {
		t.Fatalf("CloseContext: %v", err)
	}
	if took := time.Since(start); took > 2*time.Second {
		t.Errorf("CloseContext took %v with a redial in flight", took)
	}
	select {
	case err := <-opDone:
		if err == nil {
			t.Error("request against a dead cluster succeeded")
		}
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request still parked after CloseContext")
	}
	if _, err := fc.Op(check.OpGet, 1, 0, 0); !errors.Is(err, ErrClosed) {
		t.Errorf("request after CloseContext returned %v, want ErrClosed", err)
	}
}

// TestErrNotPrimaryTyped pins the typed rejection: a FailoverClient
// request against a following replica surfaces ErrNotPrimary (matchable
// with errors.Is regardless of message wording), while the plain Client
// keeps surfacing the raw status.
func TestErrNotPrimaryTyped(t *testing.T) {
	_, pAddr := bootRepl(t, Config{Workload: "map", Keys: 32, Repl: true})
	_, rAddr := bootRepl(t, Config{Workload: "map", Keys: 32, ReplicaOf: pAddr})

	fc, err := NewFailoverClient(FailoverConfig{Addrs: []string{rAddr}})
	if err != nil {
		t.Fatal(err)
	}
	defer fc.Close()
	_, err = fc.Op(check.OpPut, 1, 7, 0)
	if !errors.Is(err, ErrNotPrimary) {
		t.Fatalf("replica write surfaced %v, want ErrNotPrimary", err)
	}
	// The match must survive rewording — it hangs on the wrapped type.
	if !errors.Is(fmt.Errorf("reworded upstream: %w", err), ErrNotPrimary) {
		t.Error("wrapped ErrNotPrimary no longer matches")
	}
	// A same-text error of a different type must NOT match: the taxonomy
	// is typed, not string-compared.
	if errors.Is(errors.New(ErrNotPrimary.Error()), ErrNotPrimary) {
		t.Error("a same-text untyped error matched ErrNotPrimary")
	}

	c, err := Dial(rAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if resp, err := c.Op(check.OpPut, 1, 7, 0); err != nil || resp.Status != StatusNotPrimary {
		t.Fatalf("plain client saw %v / %v, want nil error and StatusNotPrimary", err, resp.Status)
	}
}

// scriptedNotPrimaryConn answers the first n requests with a reworded
// error wrapping ErrNotPrimary, then succeeds — the promotion landing.
type scriptedNotPrimaryConn struct{ rejections, n int }

func (f *scriptedNotPrimaryConn) Do(req *Request) (Response, error) {
	if f.n++; f.n <= f.rejections {
		// Deliberately reworded: the retry path must match the type, not
		// the message.
		return Response{}, fmt.Errorf("the primary moved on: %w", ErrNotPrimary)
	}
	return Response{Status: StatusOK, Results: []Result{{Ret: 0, Ok: true}}}, nil
}
func (f *scriptedNotPrimaryConn) DoInto(req *Request, res []Result) (Response, error) {
	return f.Do(req)
}
func (f *scriptedNotPrimaryConn) Batch(entries []BatchEntry) (Response, error) {
	return f.Do(nil)
}
func (f *scriptedNotPrimaryConn) ServerShards() int { return 1 }
func (f *scriptedNotPrimaryConn) Close() error      { return nil }

// TestLoadRetriesNotPrimaryByType drives rtleload's single-operation path
// against a scripted connection whose not-primary errors carry an
// unfamiliar message: the retry path must still classify them by type —
// counted as NotPrimary retries, never cut to pending — and complete the
// operation once the rejections stop.
func TestLoadRetriesNotPrimaryByType(t *testing.T) {
	cfg := LoadConfig{Workload: "map", Conns: 1, Pipeline: 1}
	cfg.fill()
	st := &loadState{cfg: cfg, failover: true, hist: check.NewHistory(1)}
	conn := &scriptedNotPrimaryConn{rejections: 3}
	r := rng.NewXoshiro256(1)

	var req Request
	var resBuf [1]Result
	if ok := st.single(st.hist.Recorder(0), conn, r, time.Now(), &req, resBuf[:]); !ok {
		t.Fatal("single() abandoned the slot on a not-primary rejection")
	}
	if st.notPrimary != 3 {
		t.Errorf("notPrimary retries = %d, want 3", st.notPrimary)
	}
	if st.cut != 0 {
		t.Errorf("cut = %d; a typed not-primary rejection must never be cut to pending", st.cut)
	}
	if st.firstErr != nil {
		t.Errorf("run recorded error %v", st.firstErr)
	}
	events := st.hist.Events()
	if len(events) != 1 {
		t.Fatalf("recorded %d events, want 1", len(events))
	}
}
