package server

import "testing"

// TestCoalescerWidens checks that sustained queue growth with cheap
// sections doubles the window up to the cap.
func TestCoalescerWidens(t *testing.T) {
	c := newCoalescer(8)
	if c.Window() != 1 {
		t.Fatalf("initial window %d, want 1", c.Window())
	}
	for depth := int64(4); depth <= 64; depth *= 2 {
		c.Observe(depth, 10_000, 0) // deep, growing queue; 10us sections
	}
	if c.Window() != 8 {
		t.Fatalf("window %d after sustained backlog, want the cap 8", c.Window())
	}
	// Further pressure must not push past the cap.
	c.Observe(1024, 10_000, 0)
	if c.Window() != 8 {
		t.Fatalf("window %d exceeded the cap", c.Window())
	}
}

// TestCoalescerShrinksIdle checks that a drained queue decays the window
// back to uncoalesced service.
func TestCoalescerShrinksIdle(t *testing.T) {
	c := newCoalescer(8)
	for depth := int64(8); depth <= 64; depth *= 2 {
		c.Observe(depth, 10_000, 0)
	}
	if c.Window() < 2 {
		t.Fatalf("setup failed to widen: window %d", c.Window())
	}
	for i := 0; i < 10; i++ {
		c.Observe(0, 10_000, 0)
	}
	if c.Window() != 1 {
		t.Fatalf("window %d after an idle queue, want 1", c.Window())
	}
}

// TestCoalescerRefusesSlowSections checks the latency guard: a backlog
// behind sections already near the budget must not widen the window —
// doubling it would double tail latency without draining faster.
func TestCoalescerRefusesSlowSections(t *testing.T) {
	c := newCoalescer(8)
	for i := 0; i < 10; i++ {
		c.Observe(64, maxSectionNanos, 0) // deep queue, but sections at the cap
	}
	if c.Window() != 1 {
		t.Fatalf("window %d widened despite sections at the latency budget", c.Window())
	}
}

// TestCoalescerNotShrinkSteady checks that a queue holding about a window
// of work keeps its window: only a genuinely shallow queue shrinks it.
func TestCoalescerNotShrinkSteady(t *testing.T) {
	c := newCoalescer(8)
	for depth := int64(8); depth <= 64; depth *= 2 {
		c.Observe(depth, 10_000, 0)
	}
	w := c.Window()
	for i := 0; i < 10; i++ {
		c.Observe(int64(w), 10_000, 0) // steady backlog of one window
	}
	if c.Window() < w {
		t.Fatalf("window shrank from %d to %d under a steady one-window backlog", w, c.Window())
	}
}

// TestCoalescerCapOne pins the -coalesce 1 contract: the window never
// leaves 1, so the operator can still force uncoalesced execution.
func TestCoalescerCapOne(t *testing.T) {
	c := newCoalescer(1)
	for i := 0; i < 10; i++ {
		c.Observe(1024, 1_000, 0)
	}
	if c.Window() != 1 {
		t.Fatalf("window %d with a cap of 1", c.Window())
	}
}

// TestCoalescerRefusesWidenUnderAborts checks the contention guard: a deep
// queue must not widen the window while the abort EWMA sits at or above
// the widen threshold — a bigger shared block under abort pressure only
// grows the retry tail.
func TestCoalescerRefusesWidenUnderAborts(t *testing.T) {
	c := newCoalescer(8)
	for depth := int64(4); depth <= 64; depth *= 2 {
		c.Observe(depth, 10_000, widenAbortPerMille)
	}
	if c.Window() != 1 {
		t.Fatalf("window %d widened despite a %d per-mille abort rate", c.Window(), widenAbortPerMille)
	}
	// Just under the threshold the same backlog widens as before.
	for depth := int64(4); depth <= 64; depth *= 2 {
		c.Observe(depth, 10_000, widenAbortPerMille-1)
	}
	if c.Window() != 8 {
		t.Fatalf("window %d under threshold aborts, want the cap 8", c.Window())
	}
}

// TestCoalescerNarrowsUnderSevereAborts checks active narrowing: severe
// abort pressure halves the window per observation even with a deep,
// growing queue, all the way back to 1.
func TestCoalescerNarrowsUnderSevereAborts(t *testing.T) {
	c := newCoalescer(8)
	for depth := int64(4); depth <= 64; depth *= 2 {
		c.Observe(depth, 10_000, 0)
	}
	if c.Window() != 8 {
		t.Fatalf("setup failed to widen: window %d", c.Window())
	}
	for i := 0; i < 2; i++ {
		c.Observe(1024, 10_000, shrinkAbortPerMille)
	}
	if c.Window() != 2 {
		t.Fatalf("window %d after two severe-abort samples, want 2", c.Window())
	}
	for i := 0; i < 4; i++ {
		c.Observe(1024, 10_000, shrinkAbortPerMille)
	}
	if c.Window() != 1 {
		t.Fatalf("window %d under sustained severe aborts, want 1", c.Window())
	}
}
