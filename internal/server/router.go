package server

import (
	"sort"

	"rtle/internal/check"
	"rtle/internal/wanghash"
)

// JumpHash is Lamping–Veach jump consistent hash: it maps key to a bucket
// in [0, buckets) such that growing the bucket count moves only ~1/buckets
// of the keys. The serving layer feeds it wanghash-mixed keys so that
// small sequential key spaces (the common serving contract) spread evenly.
func JumpHash(key uint64, buckets int) int {
	var b, j int64 = -1, 0
	for j < int64(buckets) {
		b = j
		key = key*2862933555777941757 + 1
		j = int64(float64(b+1) * (float64(int64(1)<<31) / float64((key>>33)+1)))
	}
	return int(b)
}

// ShardForKey maps one ADT key to its owning shard: jump-consistent hash
// over the wanghash mix of the key. Exported so the load generator's
// checker can attribute a failing per-key partition to the shard that
// served it.
func ShardForKey(key uint64, shards int) int {
	if shards <= 1 {
		return 0
	}
	return JumpHash(wanghash.Mix(key), shards)
}

// router owns the key→shard mapping for one server. For set and map every
// shard's structure spans the full key space and ownership is purely the
// hash; for bank the router additionally assigns every global account a
// (shard, local index) pair, because each shard's Bank instance holds only
// its owned accounts.
type router struct {
	workload string
	shards   int

	// Bank translation tables, nil for set/map. acctShard[g] owns global
	// account g; acctLocal[g] is its index inside that shard's Bank.
	acctShard []int32
	acctLocal []uint32
	// perShard[k] counts the accounts shard k owns.
	perShard []int
}

// newRouter builds the mapping for the given workload, shard count, and
// key-space bound.
func newRouter(workload string, shards, keys int) *router {
	r := &router{workload: workload, shards: shards}
	if workload == "bank" {
		r.acctShard = make([]int32, keys)
		r.acctLocal = make([]uint32, keys)
		r.perShard = make([]int, shards)
		for g := 0; g < keys; g++ {
			k := ShardForKey(uint64(g), shards)
			r.acctShard[g] = int32(k)
			r.acctLocal[g] = uint32(r.perShard[k])
			r.perShard[k]++
		}
	}
	return r
}

// ownedAccounts returns the global account ids shard k owns, in local
// index order (bank only).
func (r *router) ownedAccounts(k int) []uint64 {
	owned := make([]uint64, 0, r.perShard[k])
	for g := range r.acctShard {
		if r.acctShard[g] == int32(k) {
			owned = append(owned, uint64(g))
		}
	}
	return owned
}

// shardOf maps one operation's key to its shard. For bank the precomputed
// account table is authoritative (it also backs the local translation);
// set/map hash directly.
func (r *router) shardOf(key uint64) int {
	if r.shards <= 1 {
		return 0
	}
	if r.acctShard != nil {
		return int(r.acctShard[key])
	}
	return ShardForKey(key, r.shards)
}

// routePlan classifies one validated request. Fast-path requests belong to
// exactly one shard's queue; slow-path requests involve the ascending
// shard id set in shards and go through the cross-shard executor.
type routePlan struct {
	fast  bool
	shard int   // fast-path target
	spans []int // slow-path involved shards, ascending, no duplicates
}

// plan routes one validated request. Ping rides shard 0's queue (it is a
// liveness and drain probe, so it must flow through a real queue). A
// batch whose entries all hash to one shard takes that shard's fast path;
// anything touching several shards is a slow-path plan.
func (r *router) plan(req *Request) routePlan {
	switch req.Op {
	case OpPing:
		return routePlan{fast: true, shard: 0}
	case OpBatch:
		first, b0 := r.entryShards(&req.Batch[0])
		multi := b0 != first
		for i := 1; i < len(req.Batch) && !multi; i++ {
			a, b := r.entryShards(&req.Batch[i])
			multi = a != first || b != first
		}
		if !multi {
			return routePlan{fast: true, shard: first}
		}
		return routePlan{spans: r.batchSpans(req.Batch)}
	case check.OpTransfer:
		a, b := r.shardOf(req.Arg1), r.shardOf(req.Arg2)
		if a == b {
			return routePlan{fast: true, shard: a}
		}
		if a > b {
			a, b = b, a
		}
		//rtle:ignore hotalloc cross-shard plans ride the slow path; the span set is the plan's identity
		return routePlan{spans: []int{a, b}}
	default:
		return routePlan{fast: true, shard: r.shardOf(req.Arg1)}
	}
}

// entryShards returns the shards one batch entry touches, as the
// (source, destination) pair for a transfer — both accounts' owning
// shards matter for routing, a withdrawal and a deposit each — and the
// single owning shard twice for every other op.
func (r *router) entryShards(e *BatchEntry) (int, int) {
	a := r.shardOf(e.Arg1)
	if e.Op == check.OpTransfer {
		return a, r.shardOf(e.Arg2)
	}
	return a, a
}

// batchSpans returns the ascending deduplicated shard set of a batch.
// Only multi-shard batches reach it, and those ride the slow path by
// construction.
//
//rtle:coldpath
func (r *router) batchSpans(batch []BatchEntry) []int {
	seen := make(map[int]struct{}, r.shards)
	for i := range batch {
		a, b := r.entryShards(&batch[i])
		seen[a] = struct{}{}
		seen[b] = struct{}{}
	}
	spans := make([]int, 0, len(seen))
	for k := range seen {
		spans = append(spans, k)
	}
	sort.Ints(spans)
	return spans
}
