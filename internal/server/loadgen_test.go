package server

import (
	"testing"

	"rtle/internal/obs"
)

// latResult builds a LoadResult whose latency histogram holds the given
// samples (nanoseconds), the way a run's per-op observations would land.
func latResult(nanos ...int64) *LoadResult {
	var h obs.Histogram
	for _, n := range nanos {
		h.Observe(n)
	}
	return &LoadResult{Ops: uint64(len(nanos)), Latency: h.Snapshot()}
}

// TestPercentileInterpolation pins the sub-bucket resolution the wire sweep
// depends on. The log2 buckets are 2× wide, so the old bound-reporting
// Percentile collapsed every distribution whose quantile fell in the same
// bucket onto one byte-identical value — a one-bucket sweep axis read as
// flat. Interpolated quantiles must instead move with the sample ranks.
func TestPercentileInterpolation(t *testing.T) {
	// Two loads whose p50 lands in the same bucket ([1024, 2048) ns) but
	// at different ranks within it: one entered the bucket with half its
	// mass already spent below, the other holds all its mass there.
	skewLow := latResult(100, 100, 100, 1100, 1100, 1100, 1100, 1100, 1100)
	skewHigh := latResult(1100, 1100, 1100, 1100, 1100, 1100, 1100, 1100, 1100)
	p50Low, p50High := skewLow.Percentile(0.5), skewHigh.Percentile(0.5)
	if p50Low == p50High {
		t.Errorf("distinct distributions in one bucket quantized to identical p50 %.9f", p50Low)
	}

	// The interpolated value must stay inside the bucket that holds the
	// quantile's rank, and rank within the bucket must order the results.
	lo, hi := obs.BucketLowerBoundSeconds(10), obs.BucketUpperBoundSeconds(10)
	for name, p := range map[string]float64{"skewLow": p50Low, "skewHigh": p50High} {
		if p < lo || p > hi {
			t.Errorf("%s p50 %.9f escaped its bucket [%.9f, %.9f]", name, p, lo, hi)
		}
	}
	if p50Low >= p50High {
		t.Errorf("p50 ordering inverted: bottom-heavy %.9f >= top-heavy %.9f", p50Low, p50High)
	}

	// Exact arithmetic on a single-bucket histogram: 4 samples in bucket
	// 10, rank targets q*4 clamp to {1,2,3,4}, so quantiles step through
	// the bucket in quarter-width increments.
	r := latResult(1024, 1024, 1024, 1024)
	width := hi - lo
	for _, tc := range []struct{ q, want float64 }{
		{0.25, lo + width*0.25},
		{0.50, lo + width*0.50},
		{0.99, lo + width*0.99},
		{1.00, hi},
	} {
		if got := r.Percentile(tc.q); !near(got, tc.want) {
			t.Errorf("q=%.2f: got %.12f, want %.12f", tc.q, got, tc.want)
		}
	}

	// Quantiles must be monotone in q across buckets.
	spread := latResult(100, 500, 1100, 4000, 9000, 70000, 70000, 2_000_000)
	prev := 0.0
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1.0} {
		p := spread.Percentile(q)
		if p < prev {
			t.Errorf("Percentile(%.2f)=%.9f < Percentile(prev)=%.9f", q, p, prev)
		}
		prev = p
	}

	// Degenerate cases: empty histogram reports 0; a tiny q still resolves
	// to at least the first sample's bucket rather than underflowing.
	if p := (&LoadResult{}).Percentile(0.5); p != 0 {
		t.Errorf("empty histogram p50 = %v, want 0", p)
	}
	one := latResult(1500)
	if p := one.Percentile(0.001); p < obs.BucketLowerBoundSeconds(10) {
		t.Errorf("q=0.001 with one sample underflowed to %.9f", p)
	}
}

func near(a, b float64) bool {
	d := a - b
	if d < 0 {
		d = -d
	}
	return d <= 1e-15
}
