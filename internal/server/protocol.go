// Package server is the network serving layer over the elided data
// structures: a TCP front end that exposes one of the repository's three
// ADTs (AVL set, hash map, bank) behind any of the nine synchronization
// methods, speaking a length-prefixed binary protocol with per-connection
// request pipelining.
//
// # Wire protocol (rtled/1)
//
// Every frame is a big-endian uint32 payload length followed by the
// payload.
//
// # Hello exchange
//
// Before the first request, the client must send one hello frame and wait
// for the server's hello:
//
//	client: "RTLE" | u8 version | u32 feature bits
//	server: "RTLE" | u8 version | u32 feature bits | u16 shards
//
// The magic distinguishes a hello from a request payload, so a pre-hello
// client (one that opens with a request) is rejected with a StatusBad
// response naming the missing hello, and the connection closes — no
// flag-day: old clients fail fast with a clear error instead of
// misinterpreting sharded responses. The server's hello advertises its
// shard count and feature bits (bit 0: consistent-hash sharded routing),
// so clients can observe topology without a side channel. A version the
// server does not speak is likewise answered with StatusBad and a close.
//
// # Requests
//
// Request payloads are
//
//	u32 id | u8 op | body
//
// where id is an opaque token the response echoes (responses may arrive in
// any order relative to other requests on the connection — pipelining is
// id-matched, not FIFO), and op is either a single-operation code (the
// values of internal/check's Op enum, so wire histories map one-to-one
// onto the linearizability checker's events), OpBatch, or OpPing. A single
// operation's body is three fixed uint64 arguments:
//
//	u64 arg1 | u64 arg2 | u64 arg3
//
// A batch body is a count followed by that many (op, args) entries:
//
//	u16 n | n x (u8 op | u64 arg1 | u64 arg2 | u64 arg3)
//
// The server executes all entries of a batch inside one atomic block — a
// single elided critical section — in entry order. OpPing has an empty
// body and answers with an empty OK; it doubles as a drain probe.
//
// Response payloads are
//
//	u32 id | u8 status | body
//
// StatusOK carries one `u64 ret | u8 ok` result pair for a single
// operation, `u16 n` pairs for a batch, and nothing for a ping. StatusBusy
// is the backpressure signal: the request was rejected before execution
// (it had no effect) and the body is `u32 retry-after-micros | u32 queue
// depth`, the server's own estimate of when capacity frees up. StatusBad,
// StatusShutdown, and StatusNotPrimary carry a `u16 len | bytes` message;
// StatusShutdown means the server is draining and will not accept further
// work, StatusNotPrimary that this server is a replica (the request was
// rejected before execution — retry against the current primary).
//
// # Replication stream
//
// A server started with replication enabled advertises FeatureReplicated.
// A replica opens an ordinary connection to its primary, completes the
// hello, and sends one OpReplSubscribe request whose Arg1 is the first log
// sequence it wants (its own high-water mark plus one). The primary
// answers StatusOK with no results and then repurposes the connection as a
// one-way log stream: every subsequent server-to-client frame is a log
// entry payload (see internal/repl: `u64 seq | u16 n | n x (u8 op | 3 x
// u64 arg)`), in sequence order with no gaps, and every client-to-server
// frame is an acknowledgement payload (`u64 seq`) confirming the replica
// has durably appended and applied through seq. Acks are cumulative; the
// primary's sync ack mode holds client replies until the commit's sequence
// is acked by every live subscriber. Unrecognized feature bits are ignored
// by both sides (a FeatureReplicated primary serves non-replicating
// clients unchanged), so the extension is compatible in both directions.
//
// # Snapshot stream
//
// A server that can serve consistent-cut snapshots advertises
// FeatureSnapshot. A client sends one OpSnapshot request (arguments
// zero); the server answers StatusOK with no results and then streams the
// snapshot as chunk frames — each payload is an internal/snap chunk
// ("SNAP" magic, header/items/end; see that package) — ending with the
// end chunk, after which the connection resumes ordinary request/response
// service. OpSnapshot must be the only in-flight request on its
// connection while the chunks stream (the chunks carry no request id), so
// snapshot consumers use a dedicated connection.
//
// The same chunks ride the replication stream: a subscriber whose
// requested sequence has been compacted away (and whose hello declared
// FeatureSnapshot) receives snapshot chunks before the entry frames —
// snapshot-then-log-tail — instead of an error. Chunk frames are
// distinguishable from entry frames by the magic; a subscriber that did
// not declare FeatureSnapshot gets StatusBad, preserving the old
// contract.
package server

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"

	"rtle/internal/check"
	"rtle/internal/repl"
)

// ProtocolVersion is the rtled protocol generation this package speaks,
// negotiated by the hello exchange.
const ProtocolVersion = 1

// helloMagic opens every hello payload; no request payload can start with
// it (a request's first four bytes are a client-chosen id, and the decode
// path runs only after the hello completed).
const helloMagic = "RTLE"

// Feature bits advertised in the server hello. Both sides ignore bits
// they do not recognize, so new features never break old peers.
const (
	// FeatureSharded: the server routes single-key operations to
	// independent ADT shards by consistent hash and serves cross-shard
	// operations through an ordered-drain slow path.
	FeatureSharded uint32 = 1 << 0
	// FeatureReplicated: the server appends committed blocks to an ordered
	// log and accepts OpReplSubscribe; clients set it to declare they
	// intend to subscribe.
	FeatureReplicated uint32 = 1 << 1
	// FeatureSnapshot: the server serves consistent-cut snapshots via
	// OpSnapshot; a subscriber sets it to declare it accepts
	// snapshot-then-log-tail bootstrap when its requested sequence has
	// been compacted away.
	FeatureSnapshot uint32 = 1 << 2
)

// ClientHello is the client's version-negotiation frame.
type ClientHello struct {
	Version  uint8
	Features uint32
}

// ServerHello is the server's negotiation answer, advertising its shard
// count so clients and load generators can observe topology.
type ServerHello struct {
	Version  uint8
	Features uint32
	Shards   uint16
}

// AppendClientHello encodes h as one frame appended to buf.
func AppendClientHello(buf []byte, h *ClientHello) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = append(buf, helloMagic...)
	buf = append(buf, h.Version)
	buf = binary.BigEndian.AppendUint32(buf, h.Features)
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf
}

// DecodeClientHello parses a client hello payload. A payload that does not
// carry the hello magic returns an error — the server uses that to reject
// pre-hello clients with a clear message.
func DecodeClientHello(p []byte) (ClientHello, error) {
	var h ClientHello
	if len(p) != 9 || string(p[:4]) != helloMagic {
		return h, fmt.Errorf("server: expected an rtled hello frame (pre-versioning client?)")
	}
	h.Version = p[4]
	h.Features = binary.BigEndian.Uint32(p[5:])
	return h, nil
}

// AppendServerHello encodes h as one frame appended to buf.
func AppendServerHello(buf []byte, h *ServerHello) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = append(buf, helloMagic...)
	buf = append(buf, h.Version)
	buf = binary.BigEndian.AppendUint32(buf, h.Features)
	buf = binary.BigEndian.AppendUint16(buf, h.Shards)
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf
}

// DecodeServerHello parses a server hello payload.
func DecodeServerHello(p []byte) (ServerHello, error) {
	var h ServerHello
	if len(p) != 11 || string(p[:4]) != helloMagic {
		return h, fmt.Errorf("server: expected an rtled hello answer")
	}
	h.Version = p[4]
	h.Features = binary.BigEndian.Uint32(p[5:])
	h.Shards = binary.BigEndian.Uint16(p[9:])
	return h, nil
}

// Op is a wire operation code. Single-operation codes share their values
// with internal/check's Op enum; OpBatch and OpPing are wire-only.
type Op = check.Op

// Wire-only operation codes, outside the check.Op range.
const (
	// OpBatch wraps multiple single operations into one atomic block.
	OpBatch Op = 100
	// OpPing executes nothing and answers OK (liveness / drain probe).
	OpPing Op = 101
	// OpReplSubscribe converts the connection into a replication stream:
	// Arg1 is the first wanted log sequence, the OK response is followed by
	// entry frames (server to client) and ack frames (client to server).
	OpReplSubscribe Op = 102
	// OpSnapshot requests one consistent-cut snapshot: the OK response is
	// followed by snapshot chunk frames (internal/snap), after which the
	// connection resumes request/response service. Arguments are zero.
	OpSnapshot Op = 103
)

// Status is a response status code.
type Status uint8

const (
	// StatusOK carries the executed operation's results.
	StatusOK Status = iota
	// StatusBusy rejects a request under backpressure, before execution.
	StatusBusy
	// StatusBad rejects a malformed or out-of-contract request.
	StatusBad
	// StatusShutdown rejects a request because the server is draining.
	StatusShutdown
	// StatusNotPrimary rejects a request, before execution, because the
	// server is a replica; clients should retry against the primary (or
	// wait for this server's promotion).
	StatusNotPrimary
)

// String returns the status name.
func (s Status) String() string {
	switch s {
	case StatusOK:
		return "ok"
	case StatusBusy:
		return "busy"
	case StatusBad:
		return "bad-request"
	case StatusShutdown:
		return "shutdown"
	case StatusNotPrimary:
		return "not-primary"
	}
	return fmt.Sprintf("Status(%d)", uint8(s))
}

// MaxBatchOps bounds the entries of one batch frame: a batch must fit one
// critical section, and an unbounded count would let one frame monopolize
// a worker.
const MaxBatchOps = 1024

// maxFrame bounds a frame payload; the largest legal frame is a
// MaxBatchOps response with headroom.
const maxFrame = 32 + MaxBatchOps*32

// BatchEntry is one operation inside a batch request.
type BatchEntry struct {
	Op               Op
	Arg1, Arg2, Arg3 uint64
}

// Request is a decoded request frame. Exactly one of the single-op fields
// or Batch is meaningful, per Op.
type Request struct {
	ID               uint32
	Op               Op
	Arg1, Arg2, Arg3 uint64
	Batch            []BatchEntry
}

// Result is one operation's outcome, mirroring check.Event's response
// fields.
type Result struct {
	Ret uint64
	Ok  bool
}

// Response is a decoded response frame.
type Response struct {
	ID     uint32
	Status Status
	// Results holds one entry for a single operation, len(Batch) entries
	// for a batch, none for a ping (StatusOK only).
	Results []Result
	// RetryAfterMicros and QueueDepth accompany StatusBusy.
	RetryAfterMicros uint32
	QueueDepth       uint32
	// Message accompanies StatusBad and StatusShutdown.
	Message string
}

// AppendRequest encodes r as one frame appended to buf.
//
//rtle:hotpath
func AppendRequest(buf []byte, r *Request) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length, patched below
	buf = binary.BigEndian.AppendUint32(buf, r.ID)
	buf = append(buf, byte(r.Op))
	switch r.Op {
	case OpPing:
	case OpBatch:
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.Batch)))
		for _, e := range r.Batch {
			buf = append(buf, byte(e.Op))
			buf = binary.BigEndian.AppendUint64(buf, e.Arg1)
			buf = binary.BigEndian.AppendUint64(buf, e.Arg2)
			buf = binary.BigEndian.AppendUint64(buf, e.Arg3)
		}
	default:
		buf = binary.BigEndian.AppendUint64(buf, r.Arg1)
		buf = binary.BigEndian.AppendUint64(buf, r.Arg2)
		buf = binary.BigEndian.AppendUint64(buf, r.Arg3)
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf
}

// AppendResponse encodes r as one frame appended to buf.
//
//rtle:hotpath
func AppendResponse(buf []byte, r *Response) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = binary.BigEndian.AppendUint32(buf, r.ID)
	buf = append(buf, byte(r.Status))
	switch r.Status {
	case StatusOK:
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(r.Results)))
		for _, res := range r.Results {
			buf = binary.BigEndian.AppendUint64(buf, res.Ret)
			if res.Ok {
				buf = append(buf, 1)
			} else {
				buf = append(buf, 0)
			}
		}
	case StatusBusy:
		buf = binary.BigEndian.AppendUint32(buf, r.RetryAfterMicros)
		buf = binary.BigEndian.AppendUint32(buf, r.QueueDepth)
	default:
		msg := r.Message
		if len(msg) > 1<<15 {
			msg = msg[:1<<15]
		}
		buf = binary.BigEndian.AppendUint16(buf, uint16(len(msg)))
		buf = append(buf, msg...)
	}
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf
}

// AppendReplEntry encodes one log entry as a replication-stream frame
// appended to buf. The largest entry (repl.MaxOps operations) stays under
// maxFrame, so the stream reuses the ordinary frame reader.
//
//rtle:hotpath
func AppendReplEntry(buf []byte, e *repl.Entry) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = repl.AppendEntryPayload(buf, e)
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf
}

// AppendSnapChunk wraps one snapshot chunk payload (see internal/snap) as
// a stream frame appended to buf. The largest chunk (a full items chunk)
// stays well under maxFrame, so snapshot streams reuse the ordinary frame
// reader; chunk payloads start with the snapshot magic, which no entry or
// response payload can, so receivers demux by snap.IsChunk.
func AppendSnapChunk(buf, chunk []byte) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = append(buf, chunk...)
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf
}

// AppendReplAck encodes a cumulative acknowledgement through seq as a
// replication-stream frame appended to buf.
//
//rtle:hotpath
func AppendReplAck(buf []byte, seq uint64) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0)
	buf = repl.AppendAckPayload(buf, seq)
	binary.BigEndian.PutUint32(buf[start:], uint32(len(buf)-start-4))
	return buf
}

// readFrame reads one length-prefixed payload from r into buf (grown as
// needed), returning the payload slice.
//
//rtle:hotpath
func readFrame(r io.Reader, buf []byte) ([]byte, error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:])
	if n > maxFrame {
		//rtle:ignore hotalloc malformed-frame error path; the conn is about to drop
		return nil, fmt.Errorf("server: frame of %d bytes exceeds the %d-byte limit", n, maxFrame)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n) //rtle:ignore hotalloc grow-on-demand: amortized, the frame buffer is reused across reads
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// frameReader decodes frames from one stream, reusing its buffer.
type frameReader struct {
	r   io.Reader
	buf []byte
}

// errShort is the uniform truncated-payload error.
var errShort = fmt.Errorf("server: truncated frame payload")

// next reads the next raw payload.
//
//rtle:hotpath
func (fr *frameReader) next() ([]byte, error) {
	p, err := readFrame(fr.r, fr.buf)
	if err != nil {
		return nil, err
	}
	fr.buf = p
	return p, nil
}

// ready reports whether a complete frame is already buffered, i.e. whether
// next() would return without touching the socket. The server's read loop
// uses it to decide when a pipelined burst has drained: as long as ready
// holds, admission may keep extending an affinity run, because flushing is
// only mandatory before a read that could block. False when the underlying
// reader is not a *bufio.Reader (no lookahead available).
//
//rtle:hotpath
func (fr *frameReader) ready() bool {
	br, ok := fr.r.(*bufio.Reader)
	if !ok {
		return false
	}
	if br.Buffered() < 4 {
		return false
	}
	hdr, err := br.Peek(4)
	if err != nil {
		return false
	}
	n := binary.BigEndian.Uint32(hdr)
	return n <= maxFrame && br.Buffered() >= 4+int(n)
}

// DecodeRequest parses a request payload. The returned request's Batch
// aliases nothing in p.
//
//rtle:hotpath
func DecodeRequest(p []byte) (Request, error) {
	var r Request
	if len(p) < 5 {
		return r, errShort
	}
	r.ID = binary.BigEndian.Uint32(p)
	r.Op = Op(p[4])
	p = p[5:]
	switch r.Op {
	case OpPing:
		return r, nil
	case OpBatch:
		if len(p) < 2 {
			return r, errShort
		}
		n := int(binary.BigEndian.Uint16(p))
		p = p[2:]
		if n > MaxBatchOps {
			//rtle:ignore hotalloc malformed-batch error path
			return r, fmt.Errorf("server: batch of %d ops exceeds the %d-op limit", n, MaxBatchOps)
		}
		if len(p) != n*25 {
			return r, errShort
		}
		//rtle:ignore hotalloc one entry slice per decoded batch; pooled decode is the zero-alloc roadmap item
		r.Batch = make([]BatchEntry, n)
		for i := range r.Batch {
			e := &r.Batch[i]
			e.Op = Op(p[0])
			if e.Op == OpBatch || e.Op == OpPing {
				//rtle:ignore hotalloc malformed-batch error path
				return r, fmt.Errorf("server: nested %v inside a batch", e.Op)
			}
			e.Arg1 = binary.BigEndian.Uint64(p[1:])
			e.Arg2 = binary.BigEndian.Uint64(p[9:])
			e.Arg3 = binary.BigEndian.Uint64(p[17:])
			p = p[25:]
		}
		return r, nil
	default:
		if len(p) != 24 {
			return r, errShort
		}
		r.Arg1 = binary.BigEndian.Uint64(p)
		r.Arg2 = binary.BigEndian.Uint64(p[8:])
		r.Arg3 = binary.BigEndian.Uint64(p[16:])
		return r, nil
	}
}

// DecodeResponse parses a response payload.
//
//rtle:hotpath
func DecodeResponse(p []byte) (Response, error) {
	return DecodeResponseInto(p, nil) //rtle:ignore hotalloc scratchless compatibility surface; zero-alloc callers use DecodeResponseInto
}

// DecodeResponseInto parses a response payload, decoding an OK response's
// results into res when they fit (the returned Response's Results then
// aliases res). A response carrying more results than res holds — or a nil
// res — falls back to allocating, so the zero-alloc contract is between
// the caller and its own scratch sizing.
//
//rtle:hotpath
func DecodeResponseInto(p []byte, res []Result) (Response, error) {
	var r Response
	if len(p) < 5 {
		return r, errShort
	}
	r.ID = binary.BigEndian.Uint32(p)
	r.Status = Status(p[4])
	p = p[5:]
	switch r.Status {
	case StatusOK:
		if len(p) < 2 {
			return r, errShort
		}
		n := int(binary.BigEndian.Uint16(p))
		p = p[2:]
		if len(p) != n*9 {
			return r, errShort
		}
		if n > 0 {
			if n <= len(res) {
				r.Results = res[:n]
			} else {
				//rtle:ignore hotalloc oversized-response fallback; steady-state callers size their scratch to the op's result count
				r.Results = make([]Result, n)
			}
			for i := range r.Results {
				r.Results[i].Ret = binary.BigEndian.Uint64(p)
				r.Results[i].Ok = p[8] != 0
				p = p[9:]
			}
		}
		return r, nil
	case StatusBusy:
		if len(p) != 8 {
			return r, errShort
		}
		r.RetryAfterMicros = binary.BigEndian.Uint32(p)
		r.QueueDepth = binary.BigEndian.Uint32(p[4:])
		return r, nil
	case StatusBad, StatusShutdown, StatusNotPrimary:
		if len(p) < 2 {
			return r, errShort
		}
		n := int(binary.BigEndian.Uint16(p))
		if len(p[2:]) != n {
			return r, errShort
		}
		r.Message = string(p[2 : 2+n]) //rtle:ignore hotalloc error statuses carry a message; the copy rides the failure path
		return r, nil
	}
	//rtle:ignore hotalloc unknown-status error path
	return r, fmt.Errorf("server: unknown response status %d", uint8(r.Status))
}

// IsRead reports whether op never mutates its ADT — the classification the
// server's read-coalescing and RW-TLE's read-only slow path care about.
func IsRead(op Op) bool {
	switch op {
	case check.OpContains, check.OpGet, check.OpBalance:
		return true
	}
	return false
}
