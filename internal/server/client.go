package server

import (
	"bufio"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"
)

// Client is a pipelined rtled/1 client. Any number of goroutines may issue
// requests concurrently over the one connection; each in-flight request
// gets a fresh id and the demultiplexer routes the id-matched response
// back, so the connection carries as many outstanding requests as there
// are callers.
type Client struct {
	nc    net.Conn
	hello ServerHello // the server's negotiation answer, fixed at Dial

	wmu  sync.Mutex // one frame per Write call, serialized
	wbuf []byte     // encode scratch, owned by wmu: the request frame reuses it

	mu      sync.Mutex
	cond    *sync.Cond // signaled when pending shrinks or the client dies
	nextID  uint32
	pending map[uint32]*pendingCall
	closing bool  // CloseContext called: refuse new requests, drain
	err     error // sticky transport error, set by the read loop
}

// pendingCall is one in-flight request's rendezvous: the buffered reply
// channel the caller blocks on, and the caller-owned result scratch the
// read loop decodes into (nil means the decode allocates). Calls are
// pooled — the channel is reused across requests — which is safe because
// each carries exactly one response per registration and error paths never
// return a call (a closed or possibly-occupied channel must not be
// recycled).
type pendingCall struct {
	ch  chan Response
	res []Result
}

var callPool = sync.Pool{
	New: func() any { return &pendingCall{ch: make(chan Response, 1)} },
}

//rtle:hotpath
func getCall(res []Result) *pendingCall {
	call := callPool.Get().(*pendingCall)
	call.res = res
	return call
}

//rtle:hotpath
func putCall(call *pendingCall) {
	call.res = nil
	callPool.Put(call)
}

// ErrClosed reports a request issued after the client's connection died or
// Close was called.
var ErrClosed = errors.New("server: client connection closed")

// ErrConnClosed reports a transport-level failure: the server (or the
// network) closed the connection out from under the client — EOF, reset,
// or a failed write. It is distinguishable with errors.Is from both a
// local Close (ErrClosed) and protocol errors (malformed frames), which
// is what a failover-aware caller needs: only transport death means the
// same request might succeed against another server.
var ErrConnClosed = errors.New("server: connection closed by peer")

// DialOption configures DialContext. Options replace the positional
// configuration of the original constructor: a zero-option dial behaves
// exactly as the pre-option Dial(addr) did.
type DialOption func(*dialConfig)

type dialConfig struct {
	timeout  time.Duration
	features uint32
}

// WithDialTimeout bounds the whole connection setup — TCP connect plus
// the hello exchange. Zero (the default) means no client-side bound
// beyond the context handed to DialContext.
func WithDialTimeout(d time.Duration) DialOption {
	return func(c *dialConfig) { c.timeout = d }
}

// WithHelloFeatures sets the feature bits the client advertises in its
// hello frame. The default of zero advertises nothing, matching the
// original constructor; servers ignore bits they do not know.
func WithHelloFeatures(mask uint32) DialOption {
	return func(c *dialConfig) { c.features = mask }
}

// helloDeadline derives the connection-setup deadline from the dial
// context and the WithDialTimeout option, whichever is sooner.
func helloDeadline(ctx context.Context, timeout time.Duration) (time.Time, bool) {
	deadline, ok := ctx.Deadline()
	if timeout > 0 {
		if t := time.Now().Add(timeout); !ok || t.Before(deadline) {
			deadline, ok = t, true
		}
	}
	return deadline, ok
}

// DialContext connects to an rtled server at addr and runs the rtled/1
// hello exchange synchronously: the server's hello (version, features,
// shard count) is available from the moment DialContext returns. A server
// that rejects the negotiation surfaces its explanation as the dial
// error. The context and the WithDialTimeout option bound the TCP connect
// and the hello exchange; the context does not govern the connection's
// later life (use CloseContext for a bounded drain).
func DialContext(ctx context.Context, addr string, opts ...DialOption) (*Client, error) {
	var cfg dialConfig
	for _, opt := range opts {
		opt(&cfg)
	}
	d := net.Dialer{Timeout: cfg.timeout}
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	if deadline, ok := helloDeadline(ctx, cfg.timeout); ok {
		_ = nc.SetDeadline(deadline) // best effort; the read below surfaces real failures
	}
	if _, err := nc.Write(AppendClientHello(nil, &ClientHello{Version: ProtocolVersion, Features: cfg.features})); err != nil {
		_ = nc.Close() // the dial failed; the close error adds nothing
		return nil, fmt.Errorf("server: client hello: %w", err)
	}
	// The hello answer and all later responses flow through one buffered
	// reader: handing fr to readLoop keeps any bytes buffered past the
	// hello frame.
	fr := frameReader{r: bufio.NewReaderSize(nc, 1<<16)}
	payload, err := fr.next()
	if err != nil {
		_ = nc.Close()
		return nil, fmt.Errorf("server: reading server hello: %w", err)
	}
	sh, err := DecodeServerHello(payload)
	if err != nil {
		// A rejecting server answers with a StatusBad response carrying
		// the reason; surface it instead of a bare decode error.
		if resp, derr := DecodeResponse(payload); derr == nil && resp.Message != "" {
			_ = nc.Close()
			return nil, fmt.Errorf("server: hello rejected: %s", resp.Message)
		}
		_ = nc.Close()
		return nil, err
	}
	if sh.Version != ProtocolVersion {
		_ = nc.Close()
		return nil, fmt.Errorf("server: server speaks rtled/%d, client speaks rtled/%d", sh.Version, ProtocolVersion)
	}
	_ = nc.SetDeadline(time.Time{}) // the setup bound does not govern the connection's life
	c := &Client{nc: nc, hello: sh, pending: make(map[uint32]*pendingCall)}
	c.cond = sync.NewCond(&c.mu)
	go c.readLoop(fr)
	return c, nil
}

// Dial is the original constructor, retained as a forwarding shim: it is
// DialContext with a background context.
//
// Deprecated: new code should call DialContext, which accepts
// cancellation; Dial remains so existing Dial(addr) call sites keep
// compiling and behaving exactly as before (it also forwards options).
func Dial(addr string, opts ...DialOption) (*Client, error) {
	return DialContext(context.Background(), addr, opts...)
}

// ServerShards returns the shard count the server advertised at Dial.
func (c *Client) ServerShards() int { return int(c.hello.Shards) }

// ServerFeatures returns the feature bits the server advertised at Dial.
func (c *Client) ServerFeatures() uint32 { return c.hello.Features }

// readLoop demultiplexes responses to their waiting callers until the
// connection dies, then fails every pending and future request.
//
//rtle:hotpath
func (c *Client) readLoop(fr frameReader) {
	for {
		payload, err := fr.next()
		if err != nil {
			// A read error is transport death (EOF, reset, a torn frame
			// header): wrap it so callers can tell it from protocol errors.
			c.fail(fmt.Errorf("%w: %v", ErrConnClosed, err))
			return
		}
		if len(payload) < 5 {
			c.fail(errShort)
			return
		}
		// The id leads the payload; looking the call up first lets the
		// decode target the caller's result scratch instead of allocating.
		id := binary.BigEndian.Uint32(payload)
		c.mu.Lock()
		call := c.pending[id]
		delete(c.pending, id)
		c.cond.Broadcast() // wake a draining CloseContext
		c.mu.Unlock()
		var res []Result
		if call != nil {
			res = call.res
		}
		resp, err := DecodeResponseInto(payload, res)
		if err != nil {
			c.fail(err) // a protocol error, not transport death: no wrap
			return
		}
		if call != nil {
			call.ch <- resp
		}
	}
}

// fail marks the client dead and releases every waiting caller. Runs
// once, when the connection dies: cold.
//
//rtle:coldpath
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint32]*pendingCall)
	c.cond.Broadcast() // nothing left to drain
	c.mu.Unlock()
	for _, call := range pending {
		close(call.ch) // the call never returns to the pool: a closed channel must not be reused
	}
}

// Close tears the connection down; in-flight requests fail. The sticky
// error is set before the socket closes, so a local Close reports
// ErrClosed, never ErrConnClosed — the distinction failover policy keys
// on.
func (c *Client) Close() error {
	c.fail(ErrClosed)
	return c.nc.Close()
}

// CloseContext closes gracefully: it refuses new requests immediately,
// waits for every in-flight request to receive its response, then tears
// the connection down. The context bounds the drain — on expiry the
// connection closes anyway (remaining in-flight requests fail with
// ErrClosed) and CloseContext returns the context's error.
func (c *Client) CloseContext(ctx context.Context) error {
	c.mu.Lock()
	c.closing = true
	c.mu.Unlock()
	// Cond waits cannot select on a context, so expiry pokes the waiter.
	stop := context.AfterFunc(ctx, func() {
		c.mu.Lock()
		c.cond.Broadcast()
		c.mu.Unlock()
	})
	defer stop()
	c.mu.Lock()
	for len(c.pending) > 0 && c.err == nil && ctx.Err() == nil {
		c.cond.Wait()
	}
	c.mu.Unlock()
	err := c.Close()
	if cerr := ctx.Err(); cerr != nil {
		return cerr
	}
	return err
}

// send registers a pooled pending call, encodes req with a fresh id into
// the client's write scratch, and writes the frame. The caller owns the
// returned call until the response arrives; error paths never return one.
//
//rtle:hotpath
func (c *Client) send(req *Request, res []Result) (*pendingCall, error) {
	call := getCall(res)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		putCall(call)
		return nil, err
	}
	if c.closing {
		c.mu.Unlock()
		putCall(call)
		return nil, ErrClosed
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = call
	c.mu.Unlock()

	c.wmu.Lock()
	c.wbuf = AppendRequest(c.wbuf[:0], req)
	_, err := c.nc.Write(c.wbuf)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		// The call is not recycled: the read loop may have raced a
		// response into its channel (or fail may close it) — either way
		// its channel is no longer provably empty and open.
		return nil, fmt.Errorf("%w: %v", ErrConnClosed, err)
	}
	return call, nil
}

// Do issues req and blocks for its response. The request's ID field is
// assigned by the client. Status is reported through the Response, not the
// error: a StatusBusy rejection is a normal response here, and retrying is
// the caller's policy.
//
//rtle:hotpath
func (c *Client) Do(req *Request) (Response, error) {
	return c.DoInto(req, nil) //rtle:ignore hotalloc scratchless compatibility surface; zero-alloc callers use DoInto
}

// DoInto is Do with caller-owned result scratch: an OK response's results
// are decoded into res when they fit (Response.Results then aliases res),
// so a caller that sizes res to its op's result count completes the whole
// round trip without allocating. A nil res is Do.
//
//rtle:hotpath
func (c *Client) DoInto(req *Request, res []Result) (Response, error) {
	call, err := c.send(req, res)
	if err != nil {
		return Response{}, err
	}
	resp, ok := <-call.ch
	if !ok {
		// fail closed the channel; it never returns to the pool.
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return Response{}, err
	}
	// Exactly one response per registration was delivered, so the channel
	// is empty and open again: safe to recycle.
	putCall(call)
	return resp, nil
}

// Op issues one single-operation request and blocks for its response.
//
//rtle:hotpath
func (c *Client) Op(op Op, a1, a2, a3 uint64) (Response, error) {
	//rtle:ignore hotalloc one request header per call; it almost always stays on the stack (Do does not retain it)
	return c.Do(&Request{Op: op, Arg1: a1, Arg2: a2, Arg3: a3})
}

// Batch issues one batch request and blocks for its response.
func (c *Client) Batch(entries []BatchEntry) (Response, error) {
	return c.Do(&Request{Op: OpBatch, Batch: entries})
}

// Ping issues a liveness probe and blocks for its response.
func (c *Client) Ping() error {
	resp, err := c.Do(&Request{Op: OpPing})
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("server: ping answered %v", resp.Status)
	}
	return nil
}
