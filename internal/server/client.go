package server

import (
	"bufio"
	"errors"
	"fmt"
	"net"
	"sync"
)

// Client is a pipelined rtled/1 client. Any number of goroutines may issue
// requests concurrently over the one connection; each in-flight request
// gets a fresh id and the demultiplexer routes the id-matched response
// back, so the connection carries as many outstanding requests as there
// are callers.
type Client struct {
	nc    net.Conn
	hello ServerHello // the server's negotiation answer, fixed at Dial

	wmu sync.Mutex // one frame per Write call, serialized

	mu      sync.Mutex
	nextID  uint32
	pending map[uint32]chan Response
	err     error // sticky transport error, set by the read loop
}

// ErrClosed reports a request issued after the client's connection died or
// Close was called.
var ErrClosed = errors.New("server: client connection closed")

// Dial connects to an rtled server at addr and runs the rtled/1 hello
// exchange synchronously: the server's hello (version, features, shard
// count) is available from the moment Dial returns. A server that rejects
// the negotiation surfaces its explanation as the dial error.
func Dial(addr string) (*Client, error) {
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	if _, err := nc.Write(AppendClientHello(nil, &ClientHello{Version: ProtocolVersion})); err != nil {
		_ = nc.Close() // the dial failed; the close error adds nothing
		return nil, fmt.Errorf("server: client hello: %w", err)
	}
	// The hello answer and all later responses flow through one buffered
	// reader: handing fr to readLoop keeps any bytes buffered past the
	// hello frame.
	fr := frameReader{r: bufio.NewReaderSize(nc, 1<<16)}
	payload, err := fr.next()
	if err != nil {
		_ = nc.Close()
		return nil, fmt.Errorf("server: reading server hello: %w", err)
	}
	sh, err := DecodeServerHello(payload)
	if err != nil {
		// A rejecting server answers with a StatusBad response carrying
		// the reason; surface it instead of a bare decode error.
		if resp, derr := DecodeResponse(payload); derr == nil && resp.Message != "" {
			_ = nc.Close()
			return nil, fmt.Errorf("server: hello rejected: %s", resp.Message)
		}
		_ = nc.Close()
		return nil, err
	}
	if sh.Version != ProtocolVersion {
		_ = nc.Close()
		return nil, fmt.Errorf("server: server speaks rtled/%d, client speaks rtled/%d", sh.Version, ProtocolVersion)
	}
	c := &Client{nc: nc, hello: sh, pending: make(map[uint32]chan Response)}
	go c.readLoop(fr)
	return c, nil
}

// ServerShards returns the shard count the server advertised at Dial.
func (c *Client) ServerShards() int { return int(c.hello.Shards) }

// ServerFeatures returns the feature bits the server advertised at Dial.
func (c *Client) ServerFeatures() uint32 { return c.hello.Features }

// readLoop demultiplexes responses to their waiting callers until the
// connection dies, then fails every pending and future request.
func (c *Client) readLoop(fr frameReader) {
	for {
		payload, err := fr.next()
		if err != nil {
			c.fail(fmt.Errorf("server: client read: %w", err))
			return
		}
		resp, err := DecodeResponse(payload)
		if err != nil {
			c.fail(err)
			return
		}
		c.mu.Lock()
		ch := c.pending[resp.ID]
		delete(c.pending, resp.ID)
		c.mu.Unlock()
		if ch != nil {
			ch <- resp
		}
	}
}

// fail marks the client dead and releases every waiting caller.
func (c *Client) fail(err error) {
	c.mu.Lock()
	if c.err == nil {
		c.err = err
	}
	pending := c.pending
	c.pending = make(map[uint32]chan Response)
	c.mu.Unlock()
	for _, ch := range pending {
		close(ch)
	}
}

// Close tears the connection down; in-flight requests fail.
func (c *Client) Close() error {
	err := c.nc.Close()
	c.fail(ErrClosed)
	return err
}

// send registers a pending slot, encodes req with a fresh id, and writes
// the frame.
func (c *Client) send(req *Request) (chan Response, error) {
	ch := make(chan Response, 1)
	c.mu.Lock()
	if c.err != nil {
		err := c.err
		c.mu.Unlock()
		return nil, err
	}
	c.nextID++
	req.ID = c.nextID
	c.pending[req.ID] = ch
	c.mu.Unlock()

	frame := AppendRequest(nil, req)
	c.wmu.Lock()
	_, err := c.nc.Write(frame)
	c.wmu.Unlock()
	if err != nil {
		c.mu.Lock()
		delete(c.pending, req.ID)
		c.mu.Unlock()
		return nil, err
	}
	return ch, nil
}

// Do issues req and blocks for its response. The request's ID field is
// assigned by the client. Status is reported through the Response, not the
// error: a StatusBusy rejection is a normal response here, and retrying is
// the caller's policy.
func (c *Client) Do(req *Request) (Response, error) {
	ch, err := c.send(req)
	if err != nil {
		return Response{}, err
	}
	resp, ok := <-ch
	if !ok {
		c.mu.Lock()
		err := c.err
		c.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return Response{}, err
	}
	return resp, nil
}

// Op issues one single-operation request and blocks for its response.
func (c *Client) Op(op Op, a1, a2, a3 uint64) (Response, error) {
	return c.Do(&Request{Op: op, Arg1: a1, Arg2: a2, Arg3: a3})
}

// Batch issues one batch request and blocks for its response.
func (c *Client) Batch(entries []BatchEntry) (Response, error) {
	return c.Do(&Request{Op: OpBatch, Batch: entries})
}

// Ping issues a liveness probe and blocks for its response.
func (c *Client) Ping() error {
	resp, err := c.Do(&Request{Op: OpPing})
	if err != nil {
		return err
	}
	if resp.Status != StatusOK {
		return fmt.Errorf("server: ping answered %v", resp.Status)
	}
	return nil
}
