package server

import (
	"io"
	"net"
	"testing"

	"rtle/internal/check"
	"rtle/internal/core"
)

// fastPathHarness is an in-process single-op serving pipeline: the real
// router over the real shards, with one executor and method thread per
// shard standing in for the worker pool. Buffers mirror the per-connection
// and per-worker scratch the serving loops reuse.
type fastPathHarness struct {
	srv     *Server
	ex      []*executor
	threads []core.Thread
	reqBuf  []byte
	results []Result

	// Response-side scratch, mirroring writeLoop's conn-lifetime iovec
	// backing array, its boxed view (see writeLoop for why the view must
	// not be re-boxed per batch), and the client's per-slot decode scratch.
	bufs   net.Buffers
	view   *net.Buffers
	sink   io.Writer
	cliRes [1]Result

	// The decoded operation is staged in fields so the per-shard atomic
	// bodies can be built once at setup — the worker's block closures are
	// likewise reused across its whole lifetime, not built per request.
	op         Op
	a1, a2, a3 uint64
	bodies     []func(core.Context)
	resp       Response
}

func newFastPathHarness(tb testing.TB) *fastPathHarness {
	tb.Helper()
	srv, err := New(Config{Workload: "map", Method: "TLE", Workers: 1, Keys: 64})
	if err != nil {
		tb.Fatal(err)
	}
	h := &fastPathHarness{
		srv:     srv,
		reqBuf:  make([]byte, 0, 64),
		results: make([]Result, 1),
		bufs:    make(net.Buffers, 1),
		view:    new(net.Buffers),
		sink:    io.Discard,
	}
	for k, sh := range srv.top().shards {
		h.ex = append(h.ex, sh.adt.newExecutor(1))
		h.threads = append(h.threads, sh.method.NewThread())
		ex := h.ex[k]
		h.bodies = append(h.bodies, func(c core.Context) {
			h.results[0] = ex.run(c, 0, h.op, h.a1, h.a2, h.a3)
		})
	}
	return h
}

// serve pushes one request through the wire fast path end to end: encode
// the frame, decode it back (the server's read side), validate, route,
// execute the operation in an atomic block on the routed shard, encode the
// response into a pooled frame buffer, flush it through the vectored
// writer, recycle the buffer, and decode the response into the
// client-side result scratch — everything both ends do per request except
// the socket itself and the queue handoff.
func (h *fastPathHarness) serve(req *Request) error {
	h.reqBuf = AppendRequest(h.reqBuf[:0], req)
	decoded, err := DecodeRequest(h.reqBuf[4:])
	if err != nil {
		return err
	}
	if err := h.srv.validate(&decoded); err != nil {
		return err
	}
	plan := h.srv.top().router.plan(&decoded)
	h.op, h.a1, h.a2, h.a3 = decoded.Op, decoded.Arg1, decoded.Arg2, decoded.Arg3
	h.threads[plan.shard].Atomic(h.bodies[plan.shard])
	// Post-commit bookkeeping, exactly as the worker does it: an insert
	// consumed the handle's spare node, so replace it before the next
	// operation reuses the handle.
	h.ex[plan.shard].after(0, decoded.Op, h.results[0])
	h.resp = Response{ID: decoded.ID, Status: StatusOK, Results: h.results[:1]}

	// Response side: pooled frame, vectored flush, recycle — writeLoop's
	// steady state with a one-frame batch.
	f := getFrame()
	f.b = AppendResponse(f.b, &h.resp)
	h.bufs[0] = f.b
	*h.view = h.bufs[:1]
	if err := writeBuffers(h.sink, h.view); err != nil {
		return err
	}

	// Client side: decode the response into the caller's result scratch,
	// as Client.readLoop does for a DoInto caller.
	cresp, err := DecodeResponseInto(f.b[4:], h.cliRes[:])
	putFrame(f)
	if err != nil {
		return err
	}
	if cresp.ID != decoded.ID || cresp.Status != StatusOK {
		return errShort
	}
	return nil
}

// BenchmarkWireFastPathAllocs measures the per-request allocation cost of
// the wire fast path. The hotalloc pass proves this path free of *new*
// allocation sites; this benchmark prices the waived ones, so a regression
// shows up as a number even when it hides behind an //rtle:ignore.
func BenchmarkWireFastPathAllocs(b *testing.B) {
	h := newFastPathHarness(b)
	req := Request{Op: check.OpPut, Arg2: 42}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		req.ID = uint32(i)
		req.Arg1 = uint64(i % 64)
		if err := h.serve(&req); err != nil {
			b.Fatal(err)
		}
	}
}

// TestWireFastPathAllocBudget pins the fast path's steady-state allocation
// count at zero: with the connection and worker scratch reused, serving
// one single-op request must not allocate at all. A nonzero count means a
// new allocation crept onto the path — the dynamic twin of the hotalloc
// pass's static claim.
func TestWireFastPathAllocBudget(t *testing.T) {
	h := newFastPathHarness(t)
	req := Request{Op: check.OpPut, Arg2: 42}
	id := uint32(0)
	run := func() {
		id++
		req.ID = id
		req.Arg1 = uint64(id % 64)
		if err := h.serve(&req); err != nil {
			t.Fatal(err)
		}
	}
	run() // warm up: the first call grows the frame buffers to capacity
	if allocs := testing.AllocsPerRun(100, run); allocs > 0 {
		t.Errorf("wire fast path allocates %.1f times per request, want 0", allocs)
	}
}
