package server

import (
	"fmt"
	"io"
	"sync/atomic"

	"rtle/internal/check"
	"rtle/internal/obs"
)

// numOps sizes the per-op metric arrays: the nine check.Op codes plus
// batch, ping, replication-subscribe, and snapshot slots.
const numOps = 13

// opIndex maps a wire op to its metric slot.
func opIndex(op Op) int {
	switch op {
	case OpBatch:
		return 9
	case OpPing:
		return 10
	case OpReplSubscribe:
		return 11
	case OpSnapshot:
		return 12
	default:
		if int(op) < 9 {
			return int(op)
		}
		return 10
	}
}

// opName returns the metric label for slot i.
func opName(i int) string {
	switch i {
	case 9:
		return "batch"
	case 10:
		return "ping"
	case 11:
		return "repl-subscribe"
	case 12:
		return "snapshot"
	default:
		return check.Op(i).String()
	}
}

// ShardMetrics is one shard's wire-level execution state. All fields are
// atomics: the hot path is wait-free and a scrape never blocks a worker.
type ShardMetrics struct {
	queueDepth atomic.Int64 // requests accepted onto this shard, not yet picked up
	inflight   atomic.Int64 // requests picked up, not yet answered
	sections   atomic.Uint64
	batchOps   atomic.Uint64
	coalesced  atomic.Uint64 // single ops executed in a shared atomic block
	slowBlocks atomic.Uint64 // atomic blocks run on this shard by the cross-shard slow path

	// ewmaServiceNanos is the decayed mean wall time of one atomic block
	// on this shard — fast and slow paths alike — the basis of the
	// retry-after hint, which prices total shard occupancy.
	ewmaServiceNanos atomic.Int64

	// ewmaFastNanos is the same decayed mean over fast-path blocks only,
	// the service signal the adaptive coalescer steers by: a long
	// multi-shard slow block must not read as fast-path service time and
	// suppress window widening.
	ewmaFastNanos atomic.Int64

	// ewmaAbortPerMille is the decayed HTM abort fraction (aborts per 1000
	// attempts) observed by this shard's workers, the contention signal the
	// adaptive coalescer narrows the window on: a wide window under heavy
	// abort pressure grows the retry tail instead of amortizing entry cost.
	ewmaAbortPerMille atomic.Int64

	// coal renders the shard's live coalesce window; set by New.
	coal *coalescer
}

// ewmaFold folds one sample into a decayed mean (alpha = 1/8, integer
// arithmetic; a racing update loses one sample, which a decayed mean
// absorbs).
func ewmaFold(v *atomic.Int64, sample int64) {
	old := v.Load()
	if old == 0 {
		v.Store(sample)
		return
	}
	v.Store(old + (sample-old)/8)
}

// observeService folds one atomic block's wall time into the shared
// service EWMA (both paths).
func (m *ShardMetrics) observeService(nanos int64) { ewmaFold(&m.ewmaServiceNanos, nanos) }

// observeFastService folds one fast-path block's wall time into the
// coalescer's service signal.
func (m *ShardMetrics) observeFastService(nanos int64) { ewmaFold(&m.ewmaFastNanos, nanos) }

// observeAborts folds one block's (attempts, aborts) delta into the abort
// EWMA, scaled to per-mille. Zero-attempt samples carry no signal and are
// dropped.
func (m *ShardMetrics) observeAborts(attempts, aborts uint64) {
	if attempts == 0 {
		return
	}
	ewmaFold(&m.ewmaAbortPerMille, int64(aborts*1000/attempts))
}

// retryAfterMicros estimates when this shard's queue capacity frees up:
// the backlog ahead of a rejected request (depth plus what is executing),
// paced by the decayed per-section service time spread over the shard's
// worker pool.
func (m *ShardMetrics) retryAfterMicros(workers int) uint32 {
	backlog := m.queueDepth.Load() + m.inflight.Load()
	svc := m.ewmaServiceNanos.Load()
	if svc <= 0 {
		svc = 50_000 // no samples yet: a conservative 50us guess
	}
	if workers < 1 {
		workers = 1
	}
	micros := backlog * svc / int64(workers) / 1_000
	if micros < 100 {
		micros = 100
	}
	if micros > 1_000_000 {
		micros = 1_000_000
	}
	return uint32(micros)
}

// Metrics is the server's wire-level metric registry, exposed next to the
// obs.Registry series on /metrics. Connection- and protocol-level series
// live here; execution state lives in the per-shard ShardMetrics, and the
// unlabelled series aggregate across shards so dashboards written against
// the unsharded server keep working.
type Metrics struct {
	// Connections tracking.
	connsOpen  atomic.Int64
	connsTotal atomic.Uint64

	// Request outcomes.
	requests [numOps]atomic.Uint64
	statuses [5]atomic.Uint64 // by Status
	badOps   atomic.Uint64    // decode/validation failures

	// helloRejects counts connections refused at version negotiation
	// (missing hello, unsupported version).
	helloRejects atomic.Uint64

	// Cross-shard slow path.
	slowDepth atomic.Int64  // slow-path tasks accepted, not yet picked up
	crossOps  atomic.Uint64 // operations answered via the slow path

	// latency is the queue-to-response service latency per op slot.
	latency [numOps]obs.Histogram

	// writeBatchFrames is the distribution of frames per vectored write:
	// how many queued responses each writev flushed in one syscall. A mass
	// near 1 means the write loop never finds a second frame queued (the
	// load is not pipelined enough to coalesce); a fatter tail is syscalls
	// saved.
	writeBatchFrames obs.Histogram

	// affineOps counts operations handed to their shard queue by an
	// affinity run: the reader chained consecutive same-shard single ops
	// and delivered the chain in one queue send, skipping the per-op
	// channel hop.
	affineOps atomic.Uint64
	// affineRuns counts the chains themselves (affineOps / affineRuns is
	// the mean run length).
	affineRuns atomic.Uint64

	// shards holds the per-shard execution metrics, attached by New and
	// swapped atomically by Reshard while scrapes may be in flight.
	shards atomic.Pointer[[]*ShardMetrics]

	// repl exposes the replication subsystem's gauges; nil when the server
	// runs without replication.
	repl *replication
}

// attach wires the per-shard metric blocks (called by New, and again by
// Reshard with the rebuilt shard set; per-shard counters restart at zero).
func (m *Metrics) attach(shards []*ShardMetrics) { m.shards.Store(&shards) }

// Shards returns the per-shard metric blocks.
func (m *Metrics) Shards() []*ShardMetrics {
	if p := m.shards.Load(); p != nil {
		return *p
	}
	return nil
}

// Latency returns a snapshot of op's service-latency histogram.
func (m *Metrics) Latency(op Op) obs.LatencySnapshot {
	return m.latency[opIndex(op)].Snapshot()
}

// QueueDepth returns the accepted-but-not-started request count summed
// across all shard queues and the slow-path queue.
func (m *Metrics) QueueDepth() int64 {
	d := m.slowDepth.Load()
	for _, s := range m.Shards() {
		d += s.queueDepth.Load()
	}
	return d
}

// Requests returns the total requests recorded for op.
func (m *Metrics) Requests(op Op) uint64 { return m.requests[opIndex(op)].Load() }

// Responses returns the total responses with the given status.
func (m *Metrics) Responses(s Status) uint64 { return m.statuses[s].Load() }

// Coalesced returns the number of single operations that shared an atomic
// block with at least one other request, across all shards.
func (m *Metrics) Coalesced() uint64 {
	var n uint64
	for _, s := range m.Shards() {
		n += s.coalesced.Load()
	}
	return n
}

// Sections returns the number of atomic blocks executed across all
// shards (fast path and slow path).
func (m *Metrics) Sections() uint64 {
	var n uint64
	for _, s := range m.Shards() {
		n += s.sections.Load()
	}
	return n
}

// CrossShard returns the number of operations answered via the
// cross-shard slow path.
func (m *Metrics) CrossShard() uint64 { return m.crossOps.Load() }

// HelloRejects returns the number of connections refused at version
// negotiation.
func (m *Metrics) HelloRejects() uint64 { return m.helloRejects.Load() }

// AffineOps returns the number of operations delivered to their shard by
// an affinity run (chained same-shard handoff) rather than a per-op queue
// send.
func (m *Metrics) AffineOps() uint64 { return m.affineOps.Load() }

// WriteBatches returns a snapshot of the frames-per-writev distribution.
func (m *Metrics) WriteBatches() obs.LatencySnapshot { return m.writeBatchFrames.Snapshot() }

// ewmaServiceNanos returns the widest shard EWMA, the merged gauge.
func (m *Metrics) ewmaServiceNanosMax() int64 {
	var v int64
	for _, s := range m.Shards() {
		if e := s.ewmaServiceNanos.Load(); e > v {
			v = e
		}
	}
	return v
}

// WritePrometheus renders the server series in the Prometheus text format,
// in the style of obs.Snapshot.WritePrometheus; the rtled admin endpoint
// concatenates both under one /metrics response. Per-shard execution
// series carry a shard label; the unlabelled series are the merged
// snapshot (sums, or the max for the service-time gauge).
func (m *Metrics) WritePrometheus(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}
	// One load for the whole scrape: Reshard may swap the shard set while
	// a render is in flight, and mixed generations would mislabel series.
	shards := m.Shards()

	p("# HELP rtled_connections Open client connections.\n")
	p("# TYPE rtled_connections gauge\n")
	p("rtled_connections %d\n", m.connsOpen.Load())

	p("# HELP rtled_connections_total Client connections accepted.\n")
	p("# TYPE rtled_connections_total counter\n")
	p("rtled_connections_total %d\n", m.connsTotal.Load())

	p("# HELP rtled_shards Independent ADT shards served.\n")
	p("# TYPE rtled_shards gauge\n")
	p("rtled_shards %d\n", len(shards))

	p("# HELP rtled_requests_total Requests decoded, by operation.\n")
	p("# TYPE rtled_requests_total counter\n")
	for i := 0; i < numOps; i++ {
		if n := m.requests[i].Load(); n > 0 {
			p("rtled_requests_total{op=%q} %d\n", opName(i), n)
		}
	}

	p("# HELP rtled_responses_total Responses sent, by status.\n")
	p("# TYPE rtled_responses_total counter\n")
	for s := 0; s < len(m.statuses); s++ {
		p("rtled_responses_total{status=%q} %d\n", Status(s).String(), m.statuses[s].Load())
	}

	p("# HELP rtled_bad_requests_total Frames rejected at decode or validation.\n")
	p("# TYPE rtled_bad_requests_total counter\n")
	p("rtled_bad_requests_total %d\n", m.badOps.Load())

	p("# HELP rtled_hello_rejects_total Connections refused at version negotiation.\n")
	p("# TYPE rtled_hello_rejects_total counter\n")
	p("rtled_hello_rejects_total %d\n", m.helloRejects.Load())

	p("# HELP rtled_queue_depth Accepted requests waiting for a worker.\n")
	p("# TYPE rtled_queue_depth gauge\n")
	p("rtled_queue_depth %d\n", m.QueueDepth())

	p("# HELP rtled_cross_shard_total Operations answered via the cross-shard slow path.\n")
	p("# TYPE rtled_cross_shard_total counter\n")
	p("rtled_cross_shard_total %d\n", m.crossOps.Load())

	// Per-shard execution families: the unlabelled line is the merged
	// snapshot (sum, or max for the service-time gauge), followed by one
	// {shard="k"} series per shard so a dashboard can see skew.
	var inflight int64
	var sections, batchOps, coalesced, slowBlocks uint64
	for _, s := range shards {
		inflight += s.inflight.Load()
		sections += s.sections.Load()
		batchOps += s.batchOps.Load()
		coalesced += s.coalesced.Load()
		slowBlocks += s.slowBlocks.Load()
	}

	p("# HELP rtled_inflight Requests a worker is executing.\n")
	p("# TYPE rtled_inflight gauge\n")
	p("rtled_inflight %d\n", inflight)
	for k, s := range shards {
		p("rtled_inflight{shard=\"%d\"} %d\n", k, s.inflight.Load())
	}

	p("# HELP rtled_shard_queue_depth Accepted requests waiting on one shard's queue.\n")
	p("# TYPE rtled_shard_queue_depth gauge\n")
	for k, s := range shards {
		p("rtled_shard_queue_depth{shard=\"%d\"} %d\n", k, s.queueDepth.Load())
	}

	p("# HELP rtled_sections_total Atomic blocks executed by the worker pools.\n")
	p("# TYPE rtled_sections_total counter\n")
	p("rtled_sections_total %d\n", sections)
	for k, s := range shards {
		p("rtled_sections_total{shard=\"%d\"} %d\n", k, s.sections.Load())
	}

	p("# HELP rtled_batch_ops_total Operations executed inside client batches.\n")
	p("# TYPE rtled_batch_ops_total counter\n")
	p("rtled_batch_ops_total %d\n", batchOps)
	for k, s := range shards {
		p("rtled_batch_ops_total{shard=\"%d\"} %d\n", k, s.batchOps.Load())
	}

	p("# HELP rtled_coalesced_ops_total Single operations coalesced into a shared atomic block.\n")
	p("# TYPE rtled_coalesced_ops_total counter\n")
	p("rtled_coalesced_ops_total %d\n", coalesced)
	for k, s := range shards {
		p("rtled_coalesced_ops_total{shard=\"%d\"} %d\n", k, s.coalesced.Load())
	}

	p("# HELP rtled_slow_blocks_total Atomic blocks run under exclusive drain gates by the cross-shard slow path.\n")
	p("# TYPE rtled_slow_blocks_total counter\n")
	p("rtled_slow_blocks_total %d\n", slowBlocks)
	for k, s := range shards {
		p("rtled_slow_blocks_total{shard=\"%d\"} %d\n", k, s.slowBlocks.Load())
	}

	p("# HELP rtled_service_ewma_seconds Decayed mean atomic-block service time (max across shards).\n")
	p("# TYPE rtled_service_ewma_seconds gauge\n")
	p("rtled_service_ewma_seconds %g\n", float64(m.ewmaServiceNanosMax())/1e9)
	for k, s := range shards {
		p("rtled_service_ewma_seconds{shard=\"%d\"} %g\n", k, float64(s.ewmaServiceNanos.Load())/1e9)
	}

	p("# HELP rtled_coalesce_window Live adaptive coalesce window, per shard.\n")
	p("# TYPE rtled_coalesce_window gauge\n")
	for k, s := range shards {
		if s.coal != nil {
			p("rtled_coalesce_window{shard=\"%d\"} %d\n", k, s.coal.Window())
		}
	}

	p("# HELP rtled_abort_ewma_per_mille Decayed HTM abort fraction (aborts per 1000 attempts), per shard.\n")
	p("# TYPE rtled_abort_ewma_per_mille gauge\n")
	for k, s := range shards {
		p("rtled_abort_ewma_per_mille{shard=\"%d\"} %d\n", k, s.ewmaAbortPerMille.Load())
	}

	if r := m.repl; r != nil {
		role, roleN := "primary", 0
		if r.role.Load() == roleReplica {
			role, roleN = "replica", 1
		}
		p("# HELP rtled_repl_role Replication role (0 primary, 1 replica), labelled with the name.\n")
		p("# TYPE rtled_repl_role gauge\n")
		p("rtled_repl_role{role=%q} %d\n", role, roleN)

		hw := r.log.HighWater()
		p("# HELP rtled_repl_log_seq Log high-water mark: sequence of the latest appended entry.\n")
		p("# TYPE rtled_repl_log_seq gauge\n")
		p("rtled_repl_log_seq %d\n", hw)

		acked := r.minAcked()
		p("# HELP rtled_repl_acked_seq Lowest cumulative acknowledgement across live subscribers (log high-water with none).\n")
		p("# TYPE rtled_repl_acked_seq gauge\n")
		p("rtled_repl_acked_seq %d\n", acked)

		var lag uint64
		if roleN == 1 {
			if a := r.appliedSeq.Load(); hw > a {
				lag = hw - a
			}
		} else if hw > acked {
			lag = hw - acked
		}
		p("# HELP rtled_repl_lag_entries Entries appended but not yet acknowledged (primary) or applied (replica).\n")
		p("# TYPE rtled_repl_lag_entries gauge\n")
		p("rtled_repl_lag_entries %d\n", lag)

		p("# HELP rtled_repl_applied_seq Latest log sequence applied to this server's ADT.\n")
		p("# TYPE rtled_repl_applied_seq gauge\n")
		p("rtled_repl_applied_seq %d\n", r.appliedSeq.Load())

		p("# HELP rtled_repl_subscribers Live replication stream subscribers.\n")
		p("# TYPE rtled_repl_subscribers gauge\n")
		p("rtled_repl_subscribers %d\n", r.subscriberCount())

		p("# HELP rtled_repl_ack_waiters Commits waiting for subscriber acknowledgement (sync ack depth).\n")
		p("# TYPE rtled_repl_ack_waiters gauge\n")
		p("rtled_repl_ack_waiters %d\n", r.waiters.Load())

		p("# HELP rtled_repl_sync_degraded_total Sync-mode commits acknowledged without a live subscriber.\n")
		p("# TYPE rtled_repl_sync_degraded_total counter\n")
		p("rtled_repl_sync_degraded_total %d\n", r.degraded.Load())

		st := r.log.LogStats()
		p("# HELP rtled_repl_log_entries Log entries retained above the compaction floor.\n")
		p("# TYPE rtled_repl_log_entries gauge\n")
		p("rtled_repl_log_entries %d\n", st.Entries)

		p("# HELP rtled_repl_log_bytes Encoded size of the retained log entries.\n")
		p("# TYPE rtled_repl_log_bytes gauge\n")
		p("rtled_repl_log_bytes %d\n", st.Bytes)

		p("# HELP rtled_repl_log_floor Compaction floor: highest sequence truncated out of the log.\n")
		p("# TYPE rtled_repl_log_floor gauge\n")
		p("rtled_repl_log_floor %d\n", st.Floor)

		p("# HELP rtled_repl_log_truncations_total Completed log compactions (truncations and bootstrap resets).\n")
		p("# TYPE rtled_repl_log_truncations_total counter\n")
		p("rtled_repl_log_truncations_total %d\n", st.Truncations)
	}

	p("# HELP rtled_affine_ops_total Operations handed to their shard by a chained affinity run.\n")
	p("# TYPE rtled_affine_ops_total counter\n")
	p("rtled_affine_ops_total %d\n", m.affineOps.Load())

	p("# HELP rtled_affine_runs_total Affinity-run chains delivered (ops/runs is the mean run length).\n")
	p("# TYPE rtled_affine_runs_total counter\n")
	p("rtled_affine_runs_total %d\n", m.affineRuns.Load())

	// Frames-per-writev distribution. The histogram's log2 buckets hold
	// frame counts, not nanoseconds, so the bucket bound is rendered as the
	// largest count the bucket admits.
	if wb := m.writeBatchFrames.Snapshot(); wb.Count > 0 {
		p("# HELP rtled_write_batch_frames Response frames flushed per vectored write syscall.\n")
		p("# TYPE rtled_write_batch_frames histogram\n")
		var cum uint64
		for b := 0; b < obs.NumLatencyBuckets; b++ {
			if wb.Counts[b] == 0 {
				continue
			}
			cum += wb.Counts[b]
			p("rtled_write_batch_frames_bucket{le=\"%d\"} %d\n", uint64(1)<<(b+1)-1, cum)
		}
		p("rtled_write_batch_frames_bucket{le=\"+Inf\"} %d\n", wb.Count)
		p("rtled_write_batch_frames_sum %d\n", wb.SumNanos)
		p("rtled_write_batch_frames_count %d\n", wb.Count)
	}

	p("# HELP rtled_request_latency_seconds Queue-to-response service latency by operation.\n")
	p("# TYPE rtled_request_latency_seconds histogram\n")
	for i := 0; i < numOps; i++ {
		l := m.latency[i].Snapshot()
		if l.Count == 0 {
			continue
		}
		name := opName(i)
		var cum uint64
		for b := 0; b < obs.NumLatencyBuckets; b++ {
			if l.Counts[b] == 0 {
				continue
			}
			cum += l.Counts[b]
			p("rtled_request_latency_seconds_bucket{op=%q,le=\"%g\"} %d\n",
				name, obs.BucketUpperBoundSeconds(b), cum)
		}
		p("rtled_request_latency_seconds_bucket{op=%q,le=\"+Inf\"} %d\n", name, l.Count)
		p("rtled_request_latency_seconds_sum{op=%q} %g\n", name, float64(l.SumNanos)/1e9)
		p("rtled_request_latency_seconds_count{op=%q} %d\n", name, l.Count)
	}
	return err
}
