package server

import (
	"fmt"
	"io"
	"sync/atomic"

	"rtle/internal/check"
	"rtle/internal/obs"
)

// numOps sizes the per-op metric arrays: the nine check.Op codes plus
// batch and ping slots.
const numOps = 11

// opIndex maps a wire op to its metric slot.
func opIndex(op Op) int {
	switch op {
	case OpBatch:
		return 9
	case OpPing:
		return 10
	default:
		if int(op) < 9 {
			return int(op)
		}
		return 10
	}
}

// opName returns the metric label for slot i.
func opName(i int) string {
	switch i {
	case 9:
		return "batch"
	case 10:
		return "ping"
	default:
		return check.Op(i).String()
	}
}

// Metrics is the server's wire-level metric registry, exposed next to the
// obs.Registry series on /metrics. All fields are atomics: the hot path is
// wait-free and a scrape never blocks a worker.
type Metrics struct {
	// Connections tracking.
	connsOpen  atomic.Int64
	connsTotal atomic.Uint64

	// Request outcomes.
	requests [numOps]atomic.Uint64
	statuses [4]atomic.Uint64 // by Status
	badOps   atomic.Uint64    // decode/validation failures

	// Queue + execution state.
	queueDepth atomic.Int64 // requests accepted, not yet picked up
	inflight   atomic.Int64 // requests picked up, not yet answered
	batchOps   atomic.Uint64
	coalesced  atomic.Uint64 // single ops executed in a shared atomic block
	sections   atomic.Uint64 // atomic blocks executed

	// ewmaServiceNanos is the decayed mean wall time of one atomic block,
	// the basis of the retry-after hint.
	ewmaServiceNanos atomic.Int64

	// latency is the queue-to-response service latency per op slot.
	latency [numOps]obs.Histogram
}

// Latency returns a snapshot of op's service-latency histogram.
func (m *Metrics) Latency(op Op) obs.LatencySnapshot {
	return m.latency[opIndex(op)].Snapshot()
}

// QueueDepth returns the current accepted-but-not-started request count.
func (m *Metrics) QueueDepth() int64 { return m.queueDepth.Load() }

// Requests returns the total requests recorded for op.
func (m *Metrics) Requests(op Op) uint64 { return m.requests[opIndex(op)].Load() }

// Responses returns the total responses with the given status.
func (m *Metrics) Responses(s Status) uint64 { return m.statuses[s].Load() }

// Coalesced returns the number of single operations that shared an atomic
// block with at least one other request.
func (m *Metrics) Coalesced() uint64 { return m.coalesced.Load() }

// Sections returns the number of atomic blocks the workers executed.
func (m *Metrics) Sections() uint64 { return m.sections.Load() }

// observeService folds one atomic block's wall time into the EWMA
// (alpha = 1/8, integer arithmetic; a racing update loses one sample,
// which a decayed mean absorbs).
func (m *Metrics) observeService(nanos int64) {
	old := m.ewmaServiceNanos.Load()
	if old == 0 {
		m.ewmaServiceNanos.Store(nanos)
		return
	}
	m.ewmaServiceNanos.Store(old + (nanos-old)/8)
}

// retryAfterMicros estimates when queue capacity frees up: the backlog
// ahead of a rejected request (depth plus what is executing), paced by the
// decayed per-section service time spread over the worker pool.
func (m *Metrics) retryAfterMicros(workers int) uint32 {
	backlog := m.queueDepth.Load() + m.inflight.Load()
	svc := m.ewmaServiceNanos.Load()
	if svc <= 0 {
		svc = 50_000 // no samples yet: a conservative 50us guess
	}
	if workers < 1 {
		workers = 1
	}
	micros := backlog * svc / int64(workers) / 1_000
	if micros < 100 {
		micros = 100
	}
	if micros > 1_000_000 {
		micros = 1_000_000
	}
	return uint32(micros)
}

// WritePrometheus renders the server series in the Prometheus text format,
// in the style of obs.Snapshot.WritePrometheus; the rtled admin endpoint
// concatenates both under one /metrics response.
func (m *Metrics) WritePrometheus(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	p("# HELP rtled_connections Open client connections.\n")
	p("# TYPE rtled_connections gauge\n")
	p("rtled_connections %d\n", m.connsOpen.Load())

	p("# HELP rtled_connections_total Client connections accepted.\n")
	p("# TYPE rtled_connections_total counter\n")
	p("rtled_connections_total %d\n", m.connsTotal.Load())

	p("# HELP rtled_requests_total Requests decoded, by operation.\n")
	p("# TYPE rtled_requests_total counter\n")
	for i := 0; i < numOps; i++ {
		if n := m.requests[i].Load(); n > 0 {
			p("rtled_requests_total{op=%q} %d\n", opName(i), n)
		}
	}

	p("# HELP rtled_responses_total Responses sent, by status.\n")
	p("# TYPE rtled_responses_total counter\n")
	for s := 0; s < len(m.statuses); s++ {
		p("rtled_responses_total{status=%q} %d\n", Status(s).String(), m.statuses[s].Load())
	}

	p("# HELP rtled_bad_requests_total Frames rejected at decode or validation.\n")
	p("# TYPE rtled_bad_requests_total counter\n")
	p("rtled_bad_requests_total %d\n", m.badOps.Load())

	p("# HELP rtled_queue_depth Accepted requests waiting for a worker.\n")
	p("# TYPE rtled_queue_depth gauge\n")
	p("rtled_queue_depth %d\n", m.queueDepth.Load())

	p("# HELP rtled_inflight Requests a worker is executing.\n")
	p("# TYPE rtled_inflight gauge\n")
	p("rtled_inflight %d\n", m.inflight.Load())

	p("# HELP rtled_sections_total Atomic blocks executed by the worker pool.\n")
	p("# TYPE rtled_sections_total counter\n")
	p("rtled_sections_total %d\n", m.sections.Load())

	p("# HELP rtled_batch_ops_total Operations executed inside client batches.\n")
	p("# TYPE rtled_batch_ops_total counter\n")
	p("rtled_batch_ops_total %d\n", m.batchOps.Load())

	p("# HELP rtled_coalesced_ops_total Single operations coalesced into a shared atomic block.\n")
	p("# TYPE rtled_coalesced_ops_total counter\n")
	p("rtled_coalesced_ops_total %d\n", m.coalesced.Load())

	p("# HELP rtled_service_ewma_seconds Decayed mean atomic-block service time.\n")
	p("# TYPE rtled_service_ewma_seconds gauge\n")
	p("rtled_service_ewma_seconds %g\n", float64(m.ewmaServiceNanos.Load())/1e9)

	p("# HELP rtled_request_latency_seconds Queue-to-response service latency by operation.\n")
	p("# TYPE rtled_request_latency_seconds histogram\n")
	for i := 0; i < numOps; i++ {
		l := m.latency[i].Snapshot()
		if l.Count == 0 {
			continue
		}
		name := opName(i)
		var cum uint64
		for b := 0; b < obs.NumLatencyBuckets; b++ {
			if l.Counts[b] == 0 {
				continue
			}
			cum += l.Counts[b]
			p("rtled_request_latency_seconds_bucket{op=%q,le=\"%g\"} %d\n",
				name, obs.BucketUpperBoundSeconds(b), cum)
		}
		p("rtled_request_latency_seconds_bucket{op=%q,le=\"+Inf\"} %d\n", name, l.Count)
		p("rtled_request_latency_seconds_sum{op=%q} %g\n", name, float64(l.SumNanos)/1e9)
		p("rtled_request_latency_seconds_count{op=%q} %d\n", name, l.Count)
	}
	return err
}
