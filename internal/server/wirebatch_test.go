package server

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"sync"
	"testing"
	"time"

	"rtle/internal/check"
)

// throttledWriter accepts at most cap bytes per Write call, returning
// io.ErrShortWrite for the remainder — the contract a non-blocking socket
// exhibits when its send buffer fills mid-writev.
type throttledWriter struct {
	cap int
	out bytes.Buffer
}

func (w *throttledWriter) Write(p []byte) (int, error) {
	n := len(p)
	if n > w.cap {
		n = w.cap
	}
	w.out.Write(p[:n])
	if n < len(p) {
		return n, io.ErrShortWrite
	}
	return n, nil
}

// TestWriteBuffersPartialWrite drives the vectored flush through a writer
// that keeps truncating: writeBuffers must resume after every short write
// and deliver the whole batch, in order, without duplicating or dropping a
// byte.
func TestWriteBuffersPartialWrite(t *testing.T) {
	frames := [][]byte{
		[]byte("alpha-frame"),
		[]byte("b"),
		[]byte("gamma-gamma-gamma-gamma"),
		[]byte("delta"),
	}
	var want []byte
	for _, f := range frames {
		want = append(want, f...)
	}
	for _, chunk := range []int{1, 2, 3, 7, 1 << 20} {
		w := &throttledWriter{cap: chunk}
		v := make(net.Buffers, len(frames))
		for i, f := range frames {
			v[i] = f
		}
		if err := writeBuffers(w, &v); err != nil {
			t.Fatalf("cap %d: writeBuffers: %v", chunk, err)
		}
		if !bytes.Equal(w.out.Bytes(), want) {
			t.Fatalf("cap %d: wrote %q, want %q", chunk, w.out.Bytes(), want)
		}
		if len(v) != 0 {
			t.Fatalf("cap %d: %d buffers left unconsumed", chunk, len(v))
		}
	}
}

// stuckWriter makes no progress at all.
type stuckWriter struct{}

func (stuckWriter) Write(p []byte) (int, error) { return 0, io.ErrShortWrite }

// errWriter fails with a real transport error after accepting some bytes.
type errWriter struct{ n int }

func (w *errWriter) Write(p []byte) (int, error) {
	if w.n <= 0 {
		return 0, errors.New("peer reset")
	}
	n := len(p)
	if n > w.n {
		n = w.n
	}
	w.n -= n
	if n < len(p) {
		return n, io.ErrShortWrite
	}
	return n, nil
}

// TestWriteBuffersNoProgress checks the two fatal branches: a writer that
// accepts nothing must surface io.ErrShortWrite instead of spinning, and a
// real transport error must pass through once progress stops.
func TestWriteBuffersNoProgress(t *testing.T) {
	v := net.Buffers{[]byte("payload")}
	if err := writeBuffers(stuckWriter{}, &v); !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("stuck writer: got %v, want io.ErrShortWrite", err)
	}
	v = net.Buffers{[]byte("payload-that-does-not-fit")}
	if err := writeBuffers(&errWriter{n: 4}, &v); err == nil || errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("failing writer: got %v, want the transport error", err)
	}
}

// TestFramePoolTeardownRace hammers the pooled response path from several
// pipelined connections and tears the server down hard mid-flight. The
// interesting properties are invisible on success and loud under -race: no
// frame is recycled while the write loop still holds it, the dead-drain
// branch keeps recycling after the socket dies, and no worker sends on a
// closed out channel.
func TestFramePoolTeardownRace(t *testing.T) {
	srv, err := New(Config{Workload: "set", Keys: 128, Workers: 2, Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		wg.Add(1)
		go func(seed uint64) {
			defer wg.Done()
			c, err := DialContext(context.Background(), addr.String())
			if err != nil {
				return // the server may already be tearing down
			}
			defer c.Close()
			var res [1]Result
			var req Request
			for j := uint64(0); j < 500; j++ {
				req = Request{Op: check.OpInsert, Arg1: (seed*131 + j) % 128}
				if j%3 == 0 {
					req.Op = check.OpContains
				}
				if _, err := c.DoInto(&req, res[:]); err != nil {
					return // teardown reached this connection
				}
			}
		}(uint64(i))
	}

	// Let the load ramp, then yank everything out from under it.
	time.Sleep(5 * time.Millisecond)
	_ = srv.Close()
	wg.Wait()
}

// TestAffinityRunDelivery pushes a deeply pipelined single-shard burst
// through a live server and checks the affinity path actually engaged: the
// ops all complete, and the affine counters account a multi-op run.
func TestAffinityRunDelivery(t *testing.T) {
	srv, err := New(Config{Workload: "set", Keys: 64, Workers: 1, Shards: 1})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }()
	defer srv.Close()

	c, err := DialContext(context.Background(), addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Pipeline from many goroutines over one connection so bursts of
	// frames sit buffered in the server's reader — the condition affinity
	// runs chain on.
	const ops = 2000
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			var res [1]Result
			var req Request
			for j := 0; j < ops/16; j++ {
				req = Request{Op: check.OpInsert, Arg1: uint64((g*97 + j) % 64)}
				resp, err := c.DoInto(&req, res[:])
				if err != nil {
					t.Errorf("op failed: %v", err)
					return
				}
				if resp.Status != StatusOK && resp.Status != StatusBusy {
					t.Errorf("op answered %v", resp.Status)
					return
				}
			}
		}(g)
	}
	wg.Wait()

	m := srv.Metrics()
	if m.AffineOps() == 0 {
		t.Error("a 16-deep pipelined single-shard burst never took the affinity run path")
	}
	if runs := m.affineRuns.Load(); runs > 0 && m.AffineOps() <= runs {
		t.Errorf("affine ops %d never exceeded runs %d: chains all had length 1", m.AffineOps(), runs)
	}
}
