package server

import (
	"context"
	"net"
	"net/http"
	"time"
)

// AdminServer runs an HTTP admin endpoint (metrics, snapshots) with the
// lifecycle discipline the serving layer expects everywhere: a bound
// listener before the caller proceeds (so ":0" addresses are observable),
// a read-header timeout against slowloris-style stalls, and a graceful
// Shutdown. cmd/rtled and cmd/rtlemon share it.
type AdminServer struct {
	lis net.Listener
	srv *http.Server
}

// StartAdmin binds addr and serves handler in the background. It returns
// once the listener is bound; serve errors after that surface through
// Shutdown only if they are not the normal closed-listener exit.
func StartAdmin(addr string, handler http.Handler) (*AdminServer, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	a := &AdminServer{
		lis: lis,
		srv: &http.Server{
			Handler:           handler,
			ReadHeaderTimeout: 5 * time.Second,
		},
	}
	go func() {
		// http.ErrServerClosed is the normal Shutdown exit; anything else
		// means the admin endpoint died, which the owning process notices
		// by its scrapes failing.
		_ = a.srv.Serve(lis)
	}()
	return a, nil
}

// Addr returns the bound listen address.
func (a *AdminServer) Addr() net.Addr { return a.lis.Addr() }

// Shutdown stops accepting and drains in-flight requests until ctx
// expires.
func (a *AdminServer) Shutdown(ctx context.Context) error {
	return a.srv.Shutdown(ctx)
}
