package server

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"rtle/internal/check"
	"rtle/internal/repl"
	"rtle/internal/snap"
)

// flatten collapses a snapshot into one key→value map, failing on a key
// captured twice — shards partition the key space, so a duplicate means
// the cut double-counted.
func flatten(t *testing.T, sn *snap.Snapshot) map[uint64]uint64 {
	t.Helper()
	m := make(map[uint64]uint64)
	for _, items := range sn.Shards {
		for _, it := range items {
			if _, dup := m[it.Key]; dup {
				t.Fatalf("snapshot repeats key %d", it.Key)
			}
			m[it.Key] = it.Val
		}
	}
	return m
}

// sameState compares two flattened snapshots.
func sameState(t *testing.T, want, got map[uint64]uint64) {
	t.Helper()
	if len(want) != len(got) {
		t.Fatalf("state sizes differ: %d vs %d keys", len(want), len(got))
	}
	for k, v := range want {
		gv, ok := got[k]
		if !ok {
			t.Fatalf("key %d missing from restored state", k)
		}
		if gv != v {
			t.Fatalf("key %d = %d in restored state, want %d", k, gv, v)
		}
	}
}

// TestSnapshotEqualsLogPrefix is the subsystem's core soundness claim: a
// snapshot captured under concurrent load at sequence S holds exactly the
// state a fresh server reaches by replaying the log prefix through S —
// for every workload, at one shard and at several.
func TestSnapshotEqualsLogPrefix(t *testing.T) {
	for _, w := range []string{"set", "map", "bank"} {
		for _, shards := range []int{1, 4} {
			t.Run(fmt.Sprintf("%s/shards=%d", w, shards), func(t *testing.T) {
				keys := 64
				if w == "bank" {
					keys = 16
				}
				srv, addr := bootRepl(t, Config{Workload: w, Keys: keys, Shards: shards, Repl: true})

				// Writers keep mutating while the cut is taken: the capture
				// must land on a consistent sequence anyway.
				stop := make(chan struct{})
				var wg sync.WaitGroup
				for g := 0; g < 3; g++ {
					wg.Add(1)
					go func(g int) {
						defer wg.Done()
						c, err := Dial(addr)
						if err != nil {
							t.Error(err)
							return
						}
						defer c.Close()
						for i := 0; ; i++ {
							select {
							case <-stop:
								return
							default:
							}
							key := uint64((g*31 + i) % keys)
							var resp Response
							var err error
							switch w {
							case "set":
								if i%3 == 0 {
									resp, err = c.Op(check.OpRemove, key, 0, 0)
								} else {
									resp, err = c.Op(check.OpInsert, key, 0, 0)
								}
							case "map":
								if i%5 == 0 {
									resp, err = c.Op(check.OpDelete, key, 0, 0)
								} else {
									resp, err = c.Op(check.OpPut, key, uint64(1000*g+i), 0)
								}
							case "bank":
								to := (key + 1 + uint64(i)%uint64(keys-1)) % uint64(keys)
								resp, err = c.Op(check.OpTransfer, key, to, 1+uint64(i%7))
							}
							if err != nil || resp.Status != StatusOK {
								t.Errorf("write %d: %v / %v", i, err, resp.Status)
								return
							}
						}
					}(g)
				}

				waitFor(t, 10*time.Second, "log growth", func() bool {
					return srv.repl.log.HighWater() >= 50
				})
				sn, err := srv.CaptureSnapshot()
				if err != nil {
					t.Fatal(err)
				}
				close(stop)
				wg.Wait()
				if sn.Seq == 0 {
					t.Fatal("capture stamped seq 0 after 50+ logged writes")
				}

				// A fresh server replaying exactly the prefix through sn.Seq
				// must land on the captured state, bit for bit.
				fresh, err := New(Config{Workload: w, Keys: keys, Shards: shards, Repl: true})
				if err != nil {
					t.Fatal(err)
				}
				var applied uint64
			replay:
				for seq := uint64(0); ; {
					entries := srv.repl.log.From(seq+1, 256)
					if len(entries) == 0 {
						break
					}
					for i := range entries {
						if entries[i].Seq > sn.Seq {
							break replay
						}
						if err := fresh.applyEntry(&entries[i], false); err != nil {
							t.Fatal(err)
						}
						seq = entries[i].Seq
						applied++
					}
				}
				if applied != sn.Seq {
					t.Fatalf("replayed %d entries for a cut at seq %d", applied, sn.Seq)
				}
				fsn, err := fresh.CaptureSnapshot()
				if err != nil {
					t.Fatal(err)
				}
				want, got := flatten(t, sn), flatten(t, fsn)
				sameState(t, want, got)
				if w == "bank" {
					var sum uint64
					for _, v := range want {
						sum += v
					}
					if total := uint64(keys) * BankInitial; sum != total {
						t.Fatalf("snapshot balances sum to %d, want %d", sum, total)
					}
				}
			})
		}
	}
}

// TestFetchSnapshotWire round-trips a snapshot through the rtled/1 stream:
// OpSnapshot on a live connection, chunked frames, reassembly — with a key
// space wide enough to force multiple item chunks per shard.
func TestFetchSnapshotWire(t *testing.T) {
	const keys = 1500 // > snap.MaxChunkItems, so the stream must chunk
	srv, addr := bootRepl(t, Config{Workload: "map", Keys: keys, Shards: 2, Repl: true})

	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for base := 0; base < keys; base += 500 {
		entries := make([]BatchEntry, 500)
		for i := range entries {
			k := uint64(base + i)
			entries[i] = BatchEntry{Op: check.OpPut, Arg1: k, Arg2: 3*k + 1}
		}
		if resp, err := c.Batch(entries); err != nil || resp.Status != StatusOK {
			t.Fatalf("seed batch at %d: %v / %v", base, err, resp.Status)
		}
	}

	got, err := FetchSnapshot(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	want, err := srv.CaptureSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != want.Seq {
		t.Errorf("fetched seq %d, server is at %d", got.Seq, want.Seq)
	}
	sameState(t, flatten(t, want), flatten(t, got))
	if n := len(flatten(t, got)); n != keys {
		t.Errorf("fetched %d items, want %d", n, keys)
	}

	// The connection that served the stream keeps answering ordinary
	// requests afterwards — the snapshot is not a terminal exchange.
	sc, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if resp, err := sc.Op(check.OpGet, 7, 0, 0); err != nil || resp.Status != StatusOK {
		t.Fatalf("get after snapshot: %v / %v", err, resp.Status)
	}
}

// TestReshardUnderLoad drives recorded load through two live reshards
// (1→4→2) and checks the merged wire history stays linearizable: the
// swap's drain-capture-restore-swap window must be invisible to clients
// beyond a stall.
func TestReshardUnderLoad(t *testing.T) {
	srv, addr := bootRepl(t, Config{Workload: "map", Keys: 48, Shards: 1})

	if err := srv.Reshard(0); err == nil {
		t.Fatal("Reshard(0) succeeded")
	}

	done := make(chan struct{})
	go func() {
		defer close(done)
		time.Sleep(100 * time.Millisecond)
		if err := srv.Reshard(4); err != nil {
			t.Errorf("Reshard(4): %v", err)
		}
		time.Sleep(100 * time.Millisecond)
		if err := srv.Reshard(2); err != nil {
			t.Errorf("Reshard(2): %v", err)
		}
	}()

	res, err := RunLoad(LoadConfig{
		Addr:     addr,
		Workload: "map",
		Keys:     48,
		Conns:    2,
		Pipeline: 4,
		Ops:      1 << 30, // the duration, not the budget, ends the run
		Duration: 600 * time.Millisecond,
		ReadPct:  60,
		BatchPct: 10,
		Check:    true,
	})
	<-done
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if !res.Checked || !res.Linearizable {
		t.Fatalf("history not linearizable across reshards: %s", res.CheckDetail)
	}
	if len(res.WitnessViolations) != 0 {
		t.Fatalf("witness violations across reshards: %v", res.WitnessViolations)
	}
	if res.Ops == 0 {
		t.Error("no completed operations recorded")
	}
	if got := srv.Shards(); got != 2 {
		t.Errorf("server serves %d shards after reshard, want 2", got)
	}
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if got := c.ServerShards(); got != 2 {
		t.Errorf("hello advertises %d shards after reshard, want 2", got)
	}
}

// TestReplicaBootstrapAfterCompaction checks the fast-bootstrap path: a
// replica subscribing below the compacted log's floor receives a snapshot
// and the log tail instead of an error, and converges to the primary's
// exact state.
func TestReplicaBootstrapAfterCompaction(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "state.snap")
	primary, pAddr := bootRepl(t, Config{
		Workload: "map", Keys: 32, Shards: 2, Repl: true, SnapFile: snapPath,
	})

	c, err := Dial(pAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 30; i++ {
		if resp, err := c.Op(check.OpPut, uint64(i%32), uint64(4000+i), 0); err != nil || resp.Status != StatusOK {
			t.Fatalf("put %d: %v / %v", i, err, resp.Status)
		}
	}
	floor, err := primary.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	if floor == 0 {
		t.Fatal("compaction left the floor at 0")
	}
	if got := primary.repl.log.From(1, 1); len(got) > 0 && got[0].Seq == 1 {
		t.Fatal("seq 1 survived compaction")
	}
	for i := 30; i < 50; i++ {
		if resp, err := c.Op(check.OpPut, uint64(i%32), uint64(4000+i), 0); err != nil || resp.Status != StatusOK {
			t.Fatalf("put %d: %v / %v", i, err, resp.Status)
		}
	}

	replica, _ := bootRepl(t, Config{Workload: "map", Keys: 32, Shards: 2, ReplicaOf: pAddr})
	waitFor(t, 10*time.Second, "replica catch-up", caughtUp(primary, replica))

	if replica.repl.log.Floor() == 0 {
		t.Error("replica log floor is 0: it replayed entries instead of bootstrapping from a snapshot")
	}
	if err := replica.Reshard(3); err == nil {
		t.Error("Reshard on a replica succeeded")
	}

	psn, err := primary.CaptureSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	rsn, err := replica.CaptureSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	if psn.Seq != rsn.Seq {
		t.Errorf("primary cut at seq %d, replica at %d", psn.Seq, rsn.Seq)
	}
	sameState(t, flatten(t, psn), flatten(t, rsn))
}

// TestBootFromSnapshotAndTruncatedLog checks crash recovery after a
// compaction: a server rebooted onto the snapshot file plus the truncated
// log replays only the suffix above the snapshot's sequence and serves the
// predecessor's final state.
func TestBootFromSnapshotAndTruncatedLog(t *testing.T) {
	dir := t.TempDir()
	cfg := Config{
		Workload: "map", Keys: 32, Shards: 2,
		ReplLog:  filepath.Join(dir, "repl.log"),
		SnapFile: filepath.Join(dir, "state.snap"),
		Addr:     "127.0.0.1:0",
	}
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }() // shut down cleanly below
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if resp, err := c.Op(check.OpPut, uint64(i%32), uint64(2000+i), 0); err != nil || resp.Status != StatusOK {
			t.Fatalf("put %d: %v / %v", i, err, resp.Status)
		}
	}
	floor, err := srv.Compact()
	if err != nil {
		t.Fatalf("Compact: %v", err)
	}
	for i := 40; i < 60; i++ {
		if resp, err := c.Op(check.OpPut, uint64(i%32), uint64(2000+i), 0); err != nil || resp.Status != StatusOK {
			t.Fatalf("put %d: %v / %v", i, err, resp.Status)
		}
	}
	_ = c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	reborn, addr2 := bootRepl(t, cfg)
	if f := reborn.repl.log.Floor(); f != floor {
		t.Errorf("reborn log floor %d, compaction left %d", f, floor)
	}
	c2, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for key := uint64(0); key < 32; key++ {
		// The last write to key k was 2000 + the largest i < 60 with
		// i % 32 == k.
		last := uint64(2000 + int(key) + 32*((60-1-int(key))/32))
		resp, err := c2.Op(check.OpGet, key, 0, 0)
		if err != nil || resp.Status != StatusOK {
			t.Fatalf("get %d after compacted reboot: %v / %v", key, err, resp.Status)
		}
		if !resp.Results[0].Ok || resp.Results[0].Ret != last {
			t.Fatalf("key %d = (%d,%v) after compacted reboot, want (%d,true)",
				key, resp.Results[0].Ret, resp.Results[0].Ok, last)
		}
	}
}

// TestBootRejectsCompactedLogWithoutSnapshot: a log whose prefix was
// compacted away cannot boot a server alone — the state below the floor
// lives only in the snapshot, and booting without it would silently serve
// a hole.
func TestBootRejectsCompactedLogWithoutSnapshot(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "repl.log")
	l, err := repl.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		l.Append([]repl.Op{{Code: uint8(check.OpPut), Arg1: uint64(i), Arg2: 1}})
	}
	if err := l.TruncateBelow(3); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{Workload: "map", Keys: 32, ReplLog: logPath})
	if err == nil || !strings.Contains(err.Error(), "no snapshot is available") {
		t.Fatalf("boot on a compacted log without a snapshot: err = %v", err)
	}
}

// TestBootRejectsLogFloorAboveSnapshot: a log whose first surviving entry
// sits above the snapshot's sequence has an unrecoverable gap; boot must
// refuse with a clear error instead of replaying across it.
func TestBootRejectsLogFloorAboveSnapshot(t *testing.T) {
	dir := t.TempDir()
	logPath := filepath.Join(dir, "repl.log")
	snapPath := filepath.Join(dir, "state.snap")
	if err := snap.WriteFile(snapPath, &snap.Snapshot{
		Workload: "map", Keys: 32, Seq: 2,
		Shards: [][]snap.Item{{{Key: 1, Val: 7}}},
	}); err != nil {
		t.Fatal(err)
	}
	l, err := repl.Open(logPath)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		l.Append([]repl.Op{{Code: uint8(check.OpPut), Arg1: uint64(i), Arg2: 1}})
	}
	if err := l.TruncateBelow(5); err != nil { // floor 5 > snapshot seq 2
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, err = New(Config{Workload: "map", Keys: 32, ReplLog: logPath, SnapFile: snapPath})
	if err == nil || !strings.Contains(err.Error(), "above the snapshot sequence") {
		t.Fatalf("boot across a floor/snapshot gap: err = %v", err)
	}
}

// TestAutoCompactor checks the CompactEvery loop end to end: a primary
// configured to compact every N entries raises its log floor on its own
// and counts the truncation in its metrics.
func TestAutoCompactor(t *testing.T) {
	snapPath := filepath.Join(t.TempDir(), "state.snap")
	primary, pAddr := bootRepl(t, Config{
		Workload: "map", Keys: 32, Repl: true,
		SnapFile: snapPath, CompactEvery: 25,
	})
	c, err := Dial(pAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 60; i++ {
		if resp, err := c.Op(check.OpPut, uint64(i%32), uint64(i), 0); err != nil || resp.Status != StatusOK {
			t.Fatalf("put %d: %v / %v", i, err, resp.Status)
		}
	}
	waitFor(t, 10*time.Second, "auto-compaction", func() bool {
		return primary.repl.log.Floor() > 0
	})
	if st := primary.repl.log.LogStats(); st.Truncations == 0 {
		t.Error("stats recorded no truncation after auto-compaction")
	}
	if sn, err := snap.ReadFile(snapPath); err != nil || sn == nil {
		t.Errorf("auto-compaction left no durable snapshot: %v / %v", sn, err)
	}
}

// TestWarmCheckConsecutiveRuns pins the warm-checking contract: a second
// checked run against the same (now dirty) server seeds its models from a
// snapshot and still verdicts linearizable — previously checking was only
// sound against a fresh server. Bank makes the seeding load-bearing: the
// first run's transfers move balances off BankInitial, so an unseeded
// second check would reject truthful reads.
func TestWarmCheckConsecutiveRuns(t *testing.T) {
	for _, w := range []string{"map", "bank"} {
		t.Run(w, func(t *testing.T) {
			keys := 48
			if w == "bank" {
				keys = 12
			}
			_, addr := bootRepl(t, Config{Workload: w, Keys: keys, Shards: 2, Repl: true})
			for run := 0; run < 2; run++ {
				res, err := RunLoad(LoadConfig{
					Addr:     addr,
					Workload: w,
					Keys:     keys,
					Conns:    2,
					Pipeline: 4,
					Ops:      400,
					ReadPct:  50,
					Seed:     uint64(run + 1),
					Check:    true,
				})
				if err != nil {
					t.Fatalf("run %d: %v", run, err)
				}
				if !res.Checked || !res.Linearizable {
					t.Fatalf("run %d not linearizable: %s", run, res.CheckDetail)
				}
				if !res.Seeded {
					t.Fatalf("run %d checked unseeded against a snapshot-capable server", run)
				}
				if run == 1 && res.SeedSeq == 0 {
					t.Error("second run's seed carries seq 0; the first run's writes are missing from the cut")
				}
			}
		})
	}
}
