package server

import (
	"io"
	"net"
	"sync"
)

// frameBuf is one pooled wire-frame buffer. Every frame queued on a
// conn's out channel is encoded into one — responses, hellos, replication
// entries, snapshot chunks — and the write loop returns it to the pool
// after the vectored flush, so the steady-state response path allocates
// zero bytes per operation: the arena is sized by the peak in-flight
// frame count, not the operation rate.
type frameBuf struct {
	b []byte
}

// maxPooledFrame bounds what a recycled buffer may retain. A frame that
// grew past it (a huge batch response, a snapshot items chunk) is dropped
// instead of pinning its capacity in the pool forever; the common single-
// op response is ~20 bytes.
const maxPooledFrame = 1 << 14

var framePool = sync.Pool{
	New: func() any { return &frameBuf{b: make([]byte, 0, 256)} },
}

// getFrame takes an empty frame buffer from the arena.
//
//rtle:hotpath
func getFrame() *frameBuf {
	f := framePool.Get().(*frameBuf)
	f.b = f.b[:0]
	return f
}

// putFrame recycles one frame buffer after its bytes hit the socket.
// Oversized buffers are dropped so the arena's footprint stays bounded by
// the steady-state frame size, not the largest frame ever sent.
//
//rtle:hotpath
func putFrame(f *frameBuf) {
	if cap(f.b) > maxPooledFrame {
		return
	}
	framePool.Put(f)
}

// writeBuffers flushes every buffer of v to w as one vectored write — a
// single writev syscall on a *net.TCPConn — looping on partial writes
// until the batch is fully on the wire. net.Buffers.WriteTo consumes v in
// place (advancing past whatever the short write sent), so resuming after
// an io.ErrShortWrite or a positive-progress error retries exactly the
// unsent tail; any other error, or a round that makes no progress, is
// fatal for the connection.
//
//rtle:hotpath
func writeBuffers(w io.Writer, v *net.Buffers) error {
	for len(*v) > 0 {
		n, err := v.WriteTo(w)
		if err != nil && err != io.ErrShortWrite {
			return err
		}
		if len(*v) > 0 && n == 0 {
			// No progress: surface the short write instead of spinning.
			if err == nil {
				err = io.ErrShortWrite
			}
			return err
		}
	}
	return nil
}
