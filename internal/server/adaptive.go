package server

import "sync/atomic"

// maxSectionNanos caps how long one coalesced atomic block should run: the
// controller refuses to widen a window whose projected doubled section
// time would exceed it, so coalescing amortizes per-section overhead
// without letting tail latency grow unboundedly under a slow method.
const maxSectionNanos = 2_000_000

// Abort-rate thresholds, in aborts per 1000 attempts (the shard's decayed
// EWMA). A wide window under abort pressure is counterproductive twice
// over: every retry re-executes the whole shared block, and a bigger
// read/write footprint aborts more — so the controller refuses to widen
// early and actively narrows when contention is severe.
const (
	// widenAbortPerMille refuses widening at or above 20% aborts.
	widenAbortPerMille = 200
	// shrinkAbortPerMille halves the window at or above 50% aborts.
	shrinkAbortPerMille = 500
)

// coalescer is one shard's adaptive coalesce-window controller, the
// serving-layer analogue of the paper's adaptive FG-TLE policy: instead of
// a fixed operator-chosen knob (the old fixed -coalesce window), the
// window follows the observed contention signal the shard already
// maintains — queue depth and the EWMA atomic-block service time.
//
//   - Widen (double, clamped to the configured cap) when at least a full
//     window is queued and the backlog is not shrinking: the queue is
//     growing faster than service drains it, so wider shared blocks
//     amortize per-section begin/commit overhead exactly when it pays.
//     Widening is refused when the projected doubled section would exceed
//     maxSectionNanos — a slow method must not trade unbounded latency
//     for throughput.
//   - Shrink (halve, floored at 1) when the queue holds less than half a
//     window: coalescing a shallow queue only adds latency, so the window
//     decays back toward uncoalesced single-operation service.
//
// Observe is called by shard workers after every atomic block; a racing
// update can lose one adjustment, which the next sample re-derives, so no
// lock is needed on the hot path.
type coalescer struct {
	max       int64
	window    atomic.Int64
	prevDepth atomic.Int64
}

// newCoalescer returns a controller clamped to [1, max], starting at 1
// (an idle shard serves its first requests uncoalesced).
func newCoalescer(max int) *coalescer {
	if max < 1 {
		max = 1
	}
	c := &coalescer{max: int64(max)}
	c.window.Store(1)
	return c
}

// Window returns the current coalesce window in [1, max].
func (c *coalescer) Window() int { return int(c.window.Load()) }

// Observe folds one post-section sample of the shard's queue depth, EWMA
// service time, and EWMA abort rate (aborts per 1000 attempts) into the
// window. Severe abort pressure narrows the window even under backlog;
// moderate pressure just refuses to widen.
func (c *coalescer) Observe(depth, svcNanos, abortPerMille int64) {
	prev := c.prevDepth.Swap(depth)
	w := c.window.Load()
	switch {
	case abortPerMille >= shrinkAbortPerMille && w > 1:
		c.window.Store(w / 2)
	case depth >= w && depth >= prev && w < c.max &&
		2*svcNanos < maxSectionNanos && abortPerMille < widenAbortPerMille:
		nw := w * 2
		if nw > c.max {
			nw = c.max
		}
		c.window.Store(nw)
	case 2*depth < w:
		nw := w / 2
		if nw < 1 {
			nw = 1
		}
		c.window.Store(nw)
	}
}
