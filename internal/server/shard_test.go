package server

import (
	"context"
	"strings"
	"sync"
	"testing"
	"time"

	"rtle/internal/check"
	"rtle/internal/core"
	"rtle/internal/fault"
)

// TestShardedLinearizable is the tentpole claim for set/map sharding:
// pipelined load against a four-shard server — including two-key witness
// batches that cross shards — records a linearizable history, and the
// cross-shard slow path actually ran.
func TestShardedLinearizable(t *testing.T) {
	for _, workload := range []string{"set", "map"} {
		t.Run(workload, func(t *testing.T) {
			srv, addr := startServer(t, Config{
				Workload: workload,
				Method:   "FG-TLE(256)",
				Shards:   4,
				Workers:  2,
				Keys:     128,
			})
			res, err := RunLoad(LoadConfig{
				Addr: addr, Workload: workload, Conns: 4, Pipeline: 8,
				Ops: 3000, ReadPct: 80, BatchPct: 15, Keys: 128, Check: true,
			})
			if err != nil {
				t.Fatal(err)
			}
			if res.Shards != 4 {
				t.Errorf("client saw %d shards, want 4", res.Shards)
			}
			if len(res.WitnessViolations) > 0 {
				t.Fatalf("witness violations: %v", res.WitnessViolations)
			}
			if !res.Linearizable {
				t.Fatalf("sharded history not linearizable: %s", res.CheckDetail)
			}
			if srv.Metrics().CrossShard() == 0 {
				t.Error("no cross-shard operations ran; two-key witnesses never spanned shards")
			}
			var active int
			for _, sm := range srv.Metrics().Shards() {
				if sm.sections.Load() > 0 {
					active++
				}
			}
			if active < 2 {
				t.Errorf("only %d shard(s) executed sections; routing is not spreading", active)
			}
		})
	}
}

// TestCrossShardBank is the hardest correctness claim of the sharded
// design: bank transfers between accounts on different shards go through
// the two-block withdraw/deposit slow path under exclusive drain gates,
// and the whole-history linearizability check (plus full-coverage
// conservation witnesses) must still pass — under an active fault plan, so
// speculation on every shard is being aborted while gates are cycling.
func TestCrossShardBank(t *testing.T) {
	plan := fault.Plan{
		Seed:       11,
		BeginProb:  0.05,
		AccessProb: 0.01,
		StormEvery: 400,
		StormLen:   3,
	}
	srv, addr := startServer(t, Config{
		Workload: "bank",
		Method:   "RHNOrec",
		Shards:   4,
		Workers:  2,
		Keys:     16,
		Plan:     &plan,
	})
	res, err := RunLoad(LoadConfig{
		Addr: addr, Workload: "bank", Conns: 2, Pipeline: 4,
		Ops: 800, ReadPct: 50, BatchPct: 20, Keys: 16, Check: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.WitnessViolations) > 0 {
		t.Fatalf("conservation violated: %v", res.WitnessViolations)
	}
	if !res.Linearizable {
		t.Fatalf("cross-shard bank history not linearizable: %s", res.CheckDetail)
	}
	m := srv.Metrics()
	if m.CrossShard() == 0 {
		t.Fatal("no transfer crossed shards; the test is vacuous")
	}
	var slow uint64
	for _, sm := range m.Shards() {
		slow += sm.slowBlocks.Load()
	}
	if slow == 0 {
		t.Error("cross-shard ops ran but no slow blocks were recorded")
	}
	if srv.Director() == nil || srv.Director().TotalInjected() == 0 {
		t.Error("fault plan injected nothing; the chaos run was vacuous")
	}
}

// TestCrossShardTransferBatch pins the regression where a batch entry's
// transfer destination was ignored by routing: a batch holding a
// cross-shard transfer was planned onto the source shard alone, so the
// destination shard was never gated and the deposit indexed a Bank that
// does not own the account. The batch must instead execute atomically in
// entry order — balance entries after the transfer observe the moved
// funds — and the whole bank must conserve money under concurrent
// cross-shard transfer batches.
func TestCrossShardTransferBatch(t *testing.T) {
	const keys = 16
	srv, addr := startServer(t, Config{Workload: "bank", Shards: 4, Workers: 2, Keys: keys})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	cross, _ := crossShardPair(t, srv.top().router, keys)
	from, to := cross[0], cross[1]

	const amount = 7
	resp, err := c.Batch([]BatchEntry{
		{Op: check.OpTransfer, Arg1: from, Arg2: to, Arg3: amount},
		{Op: check.OpBalance, Arg1: from},
		{Op: check.OpBalance, Arg1: to},
	})
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK {
		t.Fatalf("cross-shard transfer batch rejected: %s", resp.Message)
	}
	res := resp.Results
	if res[0].Ret != amount {
		t.Errorf("transfer moved %d, want %d", res[0].Ret, amount)
	}
	if res[1].Ret != BankInitial-amount {
		t.Errorf("source %d balance after in-batch transfer = %d, want %d",
			from, res[1].Ret, BankInitial-amount)
	}
	if res[2].Ret != BankInitial+amount {
		t.Errorf("destination %d balance after in-batch transfer = %d, want %d",
			to, res[2].Ret, BankInitial+amount)
	}

	// Concurrent cross-shard transfer batches in both directions: the
	// gates hold for each whole batch, so money must be conserved.
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			cc, err := Dial(addr)
			if err != nil {
				t.Error(err)
				return
			}
			defer cc.Close()
			a, b := from, to
			if g%2 == 1 {
				a, b = to, from
			}
			for i := 0; i < 50; i++ {
				for {
					resp, err := cc.Batch([]BatchEntry{
						{Op: check.OpTransfer, Arg1: a, Arg2: b, Arg3: uint64(1 + i%5)},
						{Op: check.OpBalance, Arg1: a},
					})
					if err != nil {
						t.Error(err)
						return
					}
					if resp.Status == StatusBusy {
						time.Sleep(time.Duration(resp.RetryAfterMicros) * time.Microsecond)
						continue
					}
					if resp.Status != StatusOK {
						t.Errorf("batch rejected: %s", resp.Message)
						return
					}
					break
				}
			}
		}(g)
	}
	wg.Wait()

	// Full-coverage balance scan: conservation end-to-end.
	entries := make([]BatchEntry, keys)
	for i := range entries {
		entries[i] = BatchEntry{Op: check.OpBalance, Arg1: uint64(i)}
	}
	resp, err = c.Batch(entries)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusOK {
		t.Fatalf("balance scan rejected: %s", resp.Message)
	}
	var sum uint64
	for _, r := range resp.Results {
		sum += r.Ret
	}
	if want := uint64(keys) * BankInitial; sum != want {
		t.Errorf("bank total %d after cross-shard transfer batches, want %d", sum, want)
	}
	if srv.Metrics().CrossShard() == 0 {
		t.Error("no cross-shard operations recorded; the test is vacuous")
	}
}

// TestCoalescerIgnoresSlowServiceTime pins the fast/slow split of the
// service EWMAs: a long multi-shard slow block inflates the shared EWMA
// (which prices retry-after hints) but must not feed the coalescer,
// whose latency guard would otherwise refuse to widen the window under
// pure fast-path pressure.
func TestCoalescerIgnoresSlowServiceTime(t *testing.T) {
	sh := &shard{m: &ShardMetrics{}, coal: newCoalescer(8)}
	sh.slowSectionDone(time.Now().Add(-50 * time.Millisecond))
	if sh.m.ewmaServiceNanos.Load() == 0 {
		t.Fatal("slow block did not feed the shared service EWMA")
	}
	if got := sh.m.ewmaFastNanos.Load(); got != 0 {
		t.Fatalf("slow block leaked %dns into the fast-path EWMA", got)
	}
	sh.m.queueDepth.Store(8)
	probe := &abortProbe{stats: &core.Stats{}}
	sh.sectionDone(time.Now(), probe)
	sh.sectionDone(time.Now(), probe)
	if w := sh.coal.Window(); w <= 1 {
		t.Errorf("window %d did not widen under fast-path backlog; the slow EWMA is steering the coalescer", w)
	}
}

// TestMultiShardDrain proves the drain contract survives sharding: with
// load in flight across four shard queues and the slow queue, Shutdown
// answers every accepted request on every shard before returning, and
// afterwards no queue holds residue.
func TestMultiShardDrain(t *testing.T) {
	srv, err := New(Config{Workload: "map", Shards: 4, Workers: 2, Keys: 256})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen()
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() { defer close(done); _ = srv.Serve() }()

	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var wg sync.WaitGroup
	okCount := make([]int, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				resp, err := c.Op(check.OpPut, uint64(i*50+j)%256, uint64(j), 0)
				if err != nil || resp.Status != StatusOK {
					return // the drain cut us off; that's the point
				}
				okCount[i]++
			}
		}(i)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
	<-done
	wg.Wait()

	var total int
	for _, n := range okCount {
		total += n
	}
	m := srv.Metrics()
	if m.Responses(StatusOK) < uint64(total) {
		t.Errorf("server answered %d OK, clients saw %d", m.Responses(StatusOK), total)
	}
	if d := m.QueueDepth(); d != 0 {
		t.Errorf("queues hold %d tasks after a clean drain", d)
	}
	for k, sm := range m.Shards() {
		if inf := sm.inflight.Load(); inf != 0 {
			t.Errorf("shard %d reports %d inflight after drain", k, inf)
		}
	}
}

// TestShardedMetricsRendered checks the per-shard Prometheus families: the
// merged unlabelled series and the {shard="k"} series must both render.
func TestShardedMetricsRendered(t *testing.T) {
	srv, addr := startServer(t, Config{Workload: "map", Shards: 2, Keys: 64})
	res, err := RunLoad(LoadConfig{
		Addr: addr, Workload: "map", Conns: 2, Pipeline: 4,
		Ops: 400, Keys: 64, Check: false,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Ops == 0 {
		t.Fatal("no operations completed")
	}
	var sb strings.Builder
	if err := srv.Metrics().WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{
		"rtled_shards 2",
		`rtled_sections_total{shard="0"}`,
		`rtled_sections_total{shard="1"}`,
		`rtled_shard_queue_depth{shard="0"}`,
		`rtled_coalesce_window{shard="1"}`,
		"rtled_hello_rejects_total 0",
		"rtled_cross_shard_total",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}
