package server

import (
	"context"
	"errors"
	"testing"
	"time"

	"rtle/internal/check"
)

// TestDialOptions covers the functional-option constructor: the hello
// feature mask reaches the server, the deprecated Dial shim still works,
// and both observe the server's negotiation answer.
func TestDialOptions(t *testing.T) {
	_, addr := startServer(t, Config{Workload: "map", Keys: 32})

	c, err := DialContext(context.Background(), addr,
		WithDialTimeout(5*time.Second),
		WithHelloFeatures(1<<7)) // an unknown bit: the server must ignore it
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.ServerFeatures()&FeatureSharded == 0 {
		t.Error("server did not advertise FeatureSharded")
	}
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}

	// The forwarding shim: old signature, same behavior.
	c2, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.ServerShards() != c.ServerShards() {
		t.Errorf("shim client saw %d shards, option client %d", c2.ServerShards(), c.ServerShards())
	}
}

// TestDialContextCanceled checks a dead context fails the dial instead of
// hanging in the hello exchange.
func TestDialContextCanceled(t *testing.T) {
	_, addr := startServer(t, Config{Workload: "map", Keys: 32})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := DialContext(ctx, addr); err == nil {
		t.Fatal("DialContext with a canceled context succeeded")
	}
}

// TestCloseContextDrains checks the graceful close: requests in flight
// when CloseContext starts still get their responses, requests issued
// after it starts are refused, and the connection ends closed.
func TestCloseContextDrains(t *testing.T) {
	_, addr := startServer(t, Config{Workload: "map", Keys: 32})
	c, err := DialContext(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}

	// Keep a stream of requests in flight while the drain begins.
	results := make(chan error, 64)
	for i := 0; i < 16; i++ {
		go func(k uint64) {
			_, err := c.Op(check.OpPut, k, k, 0)
			results <- err
		}(uint64(i))
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := c.CloseContext(ctx); err != nil {
		t.Fatalf("CloseContext: %v", err)
	}
	for i := 0; i < 16; i++ {
		// Each request either completed before the drain finished or was
		// refused by the closing/closed client — never stranded.
		if err := <-results; err != nil && !errors.Is(err, ErrClosed) {
			t.Errorf("in-flight request failed oddly: %v", err)
		}
	}
	if _, err := c.Op(check.OpGet, 1, 0, 0); !errors.Is(err, ErrClosed) {
		t.Errorf("request after CloseContext returned %v, want ErrClosed", err)
	}
}

// TestCloseContextExpiredDeadline checks an already-expired drain bound
// still force-closes and reports the context error.
func TestCloseContextExpiredDeadline(t *testing.T) {
	_, addr := startServer(t, Config{Workload: "map", Keys: 32})
	c, err := DialContext(context.Background(), addr)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if err := c.CloseContext(ctx); !errors.Is(err, context.Canceled) {
		t.Fatalf("CloseContext with dead context returned %v, want context.Canceled", err)
	}
	if _, err := c.Op(check.OpGet, 1, 0, 0); !errors.Is(err, ErrClosed) {
		t.Errorf("request after forced close returned %v, want ErrClosed", err)
	}
}
