package server

import (
	"sort"
	"testing"

	"rtle/internal/check"
)

// crossShardPair returns an account pair owned by different shards, and a
// pair owned by the same shard, under r.
func crossShardPair(t *testing.T, r *router, keys uint64) (cross [2]uint64, same [2]uint64) {
	t.Helper()
	foundCross, foundSame := false, false
	for a := uint64(0); a < keys && !(foundCross && foundSame); a++ {
		for b := uint64(0); b < keys; b++ {
			if a == b {
				continue
			}
			if r.shardOf(a) != r.shardOf(b) && !foundCross {
				cross = [2]uint64{a, b}
				foundCross = true
			}
			if r.shardOf(a) == r.shardOf(b) && !foundSame {
				same = [2]uint64{a, b}
				foundSame = true
			}
		}
	}
	if !foundCross || !foundSame {
		t.Fatal("account space produced no cross-shard or no same-shard pair; shrink the hash?")
	}
	return cross, same
}

// TestShardDistribution checks the router's load spread: hashing a dense
// key space (the serving contract's common shape) across shards must not
// pile onto few shards. The bound is loose — no shard may exceed twice the
// mean, and none may be empty — because consistent hashing trades perfect
// balance for stability.
func TestShardDistribution(t *testing.T) {
	const keys = 100_000
	for _, shards := range []int{2, 4, 8} {
		counts := make([]int, shards)
		for k := uint64(0); k < keys; k++ {
			s := ShardForKey(k, shards)
			if s < 0 || s >= shards {
				t.Fatalf("key %d mapped outside [0,%d): %d", k, shards, s)
			}
			counts[s]++
		}
		mean := keys / shards
		for s, n := range counts {
			if n == 0 {
				t.Errorf("shards=%d: shard %d owns no keys", shards, s)
			}
			if n > 2*mean {
				t.Errorf("shards=%d: shard %d owns %d keys, more than twice the mean %d",
					shards, s, n, mean)
			}
		}
	}
}

// TestJumpHashStability checks the consistent-hash property that motivates
// the choice: growing the shard count moves only keys that land on the new
// shard, never shuffling keys between surviving shards.
func TestJumpHashStability(t *testing.T) {
	const keys = 10_000
	for k := uint64(0); k < keys; k++ {
		old := JumpHash(k, 4)
		grown := JumpHash(k, 5)
		if grown != old && grown != 4 {
			t.Fatalf("key %d moved from shard %d to %d when a 5th shard was added", k, old, grown)
		}
	}
}

// TestRouterBankTables checks the bank partition: every global account is
// owned by exactly one shard, local indices are dense per shard, and
// ownedAccounts agrees with the translation tables.
func TestRouterBankTables(t *testing.T) {
	const keys, shards = 64, 4
	r := newRouter("bank", shards, keys)
	total := 0
	for k := 0; k < shards; k++ {
		owned := r.ownedAccounts(k)
		if len(owned) != r.perShard[k] {
			t.Fatalf("shard %d: ownedAccounts returned %d, perShard says %d",
				k, len(owned), r.perShard[k])
		}
		total += len(owned)
		for idx, g := range owned {
			if int(r.acctShard[g]) != k {
				t.Errorf("account %d listed for shard %d but acctShard says %d", g, k, r.acctShard[g])
			}
			if int(r.acctLocal[g]) != idx {
				t.Errorf("account %d local index %d, want %d", g, r.acctLocal[g], idx)
			}
		}
	}
	if total != keys {
		t.Fatalf("shards own %d accounts in total, want %d", total, keys)
	}
}

// TestRoutePlan checks the fast/slow classification.
func TestRoutePlan(t *testing.T) {
	r := newRouter("bank", 4, 64)

	if p := r.plan(&Request{Op: OpPing}); !p.fast || p.shard != 0 {
		t.Errorf("ping planned %+v, want fast on shard 0", p)
	}

	// A single-key op goes to its key's shard.
	p := r.plan(&Request{Op: check.OpBalance, Arg1: 7})
	if !p.fast || p.shard != r.shardOf(7) {
		t.Errorf("balance(7) planned %+v, want fast on shard %d", p, r.shardOf(7))
	}

	// A same-shard transfer stays fast; a cross-shard one spans both
	// shards in ascending order.
	var same, cross bool
	for a := uint64(0); a < 64 && !(same && cross); a++ {
		for b := uint64(0); b < 64; b++ {
			if a == b {
				continue
			}
			p := r.plan(&Request{Op: check.OpTransfer, Arg1: a, Arg2: b})
			if r.shardOf(a) == r.shardOf(b) {
				same = true
				if !p.fast || p.shard != r.shardOf(a) {
					t.Fatalf("same-shard transfer (%d,%d) planned %+v", a, b, p)
				}
			} else {
				cross = true
				if p.fast || len(p.spans) != 2 || p.spans[0] >= p.spans[1] {
					t.Fatalf("cross-shard transfer (%d,%d) planned %+v, want 2 ascending spans", a, b, p)
				}
			}
		}
	}
	if !same || !cross {
		t.Fatal("account space produced no same-shard or no cross-shard pair; shrink the hash?")
	}

	// A batch confined to one shard is fast; one spanning several is not.
	rm := newRouter("map", 4, 1024)
	one := []BatchEntry{{Op: check.OpGet, Arg1: 3}, {Op: check.OpGet, Arg1: 3}}
	if p := rm.plan(&Request{Op: OpBatch, Batch: one}); !p.fast || p.shard != rm.shardOf(3) {
		t.Errorf("single-shard batch planned %+v", p)
	}
	var a, b uint64 = 0, 1
	for rm.shardOf(b) == rm.shardOf(a) {
		b++
	}
	two := []BatchEntry{{Op: check.OpGet, Arg1: a}, {Op: check.OpGet, Arg1: b}}
	if p := rm.plan(&Request{Op: OpBatch, Batch: two}); p.fast || len(p.spans) != 2 {
		t.Errorf("two-shard batch planned %+v, want 2 spans", p)
	}
}

// TestRoutePlanTransferBatch pins the regression where batch routing
// classified a transfer entry by its source account alone: a batch whose
// entries' first arguments share a shard but whose transfer destination
// lives elsewhere must take the slow path spanning both shards —
// otherwise the destination shard is never gated and the deposit indexes
// a Bank that does not own the account.
func TestRoutePlanTransferBatch(t *testing.T) {
	r := newRouter("bank", 4, 64)
	cross, same := crossShardPair(t, r, 64)

	p := r.plan(&Request{Op: OpBatch, Batch: []BatchEntry{
		{Op: check.OpTransfer, Arg1: cross[0], Arg2: cross[1], Arg3: 1},
		{Op: check.OpBalance, Arg1: cross[0]},
	}})
	if p.fast {
		t.Fatalf("batch with a cross-shard transfer planned fast on shard %d", p.shard)
	}
	want := []int{r.shardOf(cross[0]), r.shardOf(cross[1])}
	sort.Ints(want)
	if len(p.spans) != 2 || p.spans[0] != want[0] || p.spans[1] != want[1] {
		t.Fatalf("spans %v, want %v (both the source and destination shards)", p.spans, want)
	}

	// A batch whose transfers stay inside one shard remains fast.
	p = r.plan(&Request{Op: OpBatch, Batch: []BatchEntry{
		{Op: check.OpTransfer, Arg1: same[0], Arg2: same[1], Arg3: 1},
		{Op: check.OpBalance, Arg1: same[0]},
	}})
	if !p.fast || p.shard != r.shardOf(same[0]) {
		t.Errorf("same-shard transfer batch planned %+v, want fast on shard %d", p, r.shardOf(same[0]))
	}
}

// TestSingleShardRouting pins the degenerate case: with one shard, every
// key routes to shard 0 and nothing takes the slow path.
func TestSingleShardRouting(t *testing.T) {
	r := newRouter("map", 1, 1024)
	for k := uint64(0); k < 1024; k++ {
		if r.shardOf(k) != 0 {
			t.Fatalf("key %d routed to shard %d with one shard", k, r.shardOf(k))
		}
	}
	p := r.plan(&Request{Op: OpBatch, Batch: []BatchEntry{
		{Op: check.OpGet, Arg1: 1}, {Op: check.OpGet, Arg1: 999},
	}})
	if !p.fast || p.shard != 0 {
		t.Errorf("one-shard batch planned %+v, want fast on shard 0", p)
	}
}
