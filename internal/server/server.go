package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"sync/atomic"
	"time"

	"rtle/internal/core"
	"rtle/internal/fault"
	"rtle/internal/harness"
	"rtle/internal/mem"
	"rtle/internal/obs"
	"rtle/internal/repl"
	"rtle/internal/snap"
)

// Config assembles a Server. Zero fields select the documented defaults.
type Config struct {
	// Addr is the TCP listen address (default "127.0.0.1:0").
	Addr string
	// Workload is the served ADT: "set", "map", or "bank" (default "set").
	Workload string
	// Method is the synchronization method's legend name, as accepted by
	// harness.BuildMethod (default "FG-TLE(256)").
	Method string
	// Shards is the number of independent ADT partitions, each with its
	// own simulated heap, method instance, bounded queue, and worker pool.
	// Single-key operations route to their key's shard by consistent hash;
	// multi-key operations spanning shards take a slower quiescing path
	// (default 1: the unsharded server).
	Shards int
	// Workers sizes each shard's worker pool; each worker owns one
	// core.Thread (default 4).
	Workers int
	// QueueDepth bounds each shard's accepted-request queue (and the
	// cross-shard slow queue). A full queue rejects with StatusBusy and a
	// retry-after hint (default 256).
	QueueDepth int
	// Coalesce caps the adaptive coalesce window: the maximum number of
	// pending single operations one worker folds into a shared atomic
	// block. Each shard adapts its live window within [1, Coalesce] from
	// queue depth and observed service time (default 8; 1 pins the window
	// to uncoalesced execution).
	Coalesce int
	// Keys bounds the key space for set/map and is the account count for
	// bank (default 1024, bank 16).
	Keys int
	// Policy carries the speculation knobs (attempts, lazy subscription,
	// HTM config). Registry and Plan are wired into it by New.
	Policy core.Policy
	// Registry, when non-nil, is installed as the method's observer, so
	// /metrics exposes the per-path execution series next to the wire
	// series.
	Registry *obs.Registry
	// Plan, when non-nil and active, wires a fault.Director into the
	// method: chaos runs work over the wire exactly as in-process ones.
	Plan *fault.Plan

	// Repl enables the replication subsystem: committed mutating blocks
	// are appended to an ordered log and streamed to subscribers (see
	// internal/repl and the protocol doc). Implied by any of the fields
	// below.
	Repl bool
	// ReplicaOf, when set, starts this server as a replica of the primary
	// at that address: it rejects writes with StatusNotPrimary, follows
	// the primary's log, and can be promoted (Promote).
	ReplicaOf string
	// ReplAck selects when a primary answers a mutating request: "async"
	// (default; after local commit) or "sync" (after every live stream
	// subscriber acknowledged the commit's log entries — zero acknowledged
	// writes are lost when a subscriber takes over).
	ReplAck string
	// ReplLog, when set, mirrors the log to this append-only file and
	// replays it on boot.
	ReplLog string

	// SnapFile, when set, names the durable snapshot file: restored (if
	// present) before log replay on boot, and rewritten by Compact. A
	// compacted log cannot boot without the snapshot holding its discarded
	// prefix.
	SnapFile string
	// CompactEvery, when > 0, auto-compacts the replication log each time
	// it accumulates this many entries above its floor: the state is
	// snapshotted to SnapFile and the covered log prefix truncated.
	// Requires SnapFile; implies Repl.
	CompactEvery int
}

func (c *Config) fill() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Workload == "" {
		c.Workload = "set"
	}
	if c.Method == "" {
		c.Method = "FG-TLE(256)"
	}
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Coalesce <= 0 {
		c.Coalesce = 8
	}
	if c.Keys <= 0 {
		if c.Workload == "bank" {
			c.Keys = 16
		} else {
			c.Keys = 1024
		}
	}
	if c.Workload == "bank" && c.Shards > c.Keys {
		c.Shards = c.Keys // at least one account per shard
	}
	if c.ReplicaOf != "" || c.ReplAck != "" || c.ReplLog != "" || c.CompactEvery > 0 {
		c.Repl = true
	}
	if c.Repl && c.ReplAck == "" {
		c.ReplAck = "async"
	}
}

// topology is one generation of the serving plane: the key router, the
// shard set it routes over, and the cross-shard slow queue. Admission
// reads the live generation through Server.topo under drainMu; Reshard
// builds a new generation offline, migrates the state into it through a
// snapshot, and swaps the pointer while admission is quiesced — so a task
// always executes on the generation that admitted it, and a worker only
// ever drains queues of its own generation.
type topology struct {
	router *router
	shards []*shard

	// slowQueue feeds this generation's cross-shard slow path (multi-shard
	// transfers and batches).
	slowQueue chan *task
}

// shardMetrics collects the per-shard metric blocks in shard order.
func (tp *topology) shardMetrics() []*ShardMetrics {
	sms := make([]*ShardMetrics, len(tp.shards))
	for i, sh := range tp.shards {
		sms[i] = sh.m
	}
	return sms
}

// Server is the TCP serving layer: an acceptor, per-connection reader and
// writer goroutines, and per-shard bounded worker pools executing requests
// against independently elided data-structure partitions.
type Server struct {
	cfg      Config
	director *fault.Director
	metrics  Metrics

	// policy is the resolved speculation configuration (observer and fault
	// director wired in), kept so Reshard can rebuild method instances.
	policy core.Policy

	// topo is the live serving topology. Swapped only under drainMu held
	// exclusively (Reshard, replica bootstrap); loaded under drainMu shared
	// on the admission path, and freely for read-only accessors.
	topo atomic.Pointer[topology]

	// repl is the replication subsystem state; nil unless Config.Repl.
	repl *replication

	// drainMu serializes request admission against the drain flip: readers
	// admit under RLock, Shutdown flips draining under Lock, so after the
	// flip no reader can be mid-admission and tasksWG covers every
	// accepted task. Topology swaps hold it exclusively for the same
	// reason: after the flip, no admission can target a retired queue.
	drainMu  sync.RWMutex
	draining bool
	// started flips in Listen (under drainMu): topology swaps only manage
	// worker pools once they exist.
	started bool

	tasksWG   sync.WaitGroup // accepted tasks not yet answered
	workersWG sync.WaitGroup
	connsWG   sync.WaitGroup

	// Auto-compactor lifecycle (nil/unused unless CompactEvery > 0).
	compactStop chan struct{}
	compactDone chan struct{}
	compactOnce sync.Once

	mu    sync.Mutex
	lis   net.Listener
	conns map[*conn]struct{}
}

// top returns the live topology generation.
func (s *Server) top() *topology { return s.topo.Load() }

// task is one accepted request bound to its connection. Task headers are
// pooled: admit draws them from the arena and respond/discard recycle
// them, so steady-state admission allocates nothing.
type task struct {
	c       *conn
	req     Request
	arrived time.Time
	// sh is the owning shard for fast-path tasks (nil on the slow path).
	sh *shard
	// spans is the ascending involved-shard set for slow-path tasks.
	spans []int
	// next chains an affinity run: consecutive same-shard single ops the
	// reader handed to the shard queue as one linked batch (see
	// readLoop's run handoff). nil outside a run.
	next *task
}

var taskPool = sync.Pool{
	New: func() any { return new(task) },
}

// getTask draws a clean task header from the arena.
//
//rtle:hotpath
func getTask() *task { return taskPool.Get().(*task) }

// putTask recycles one answered task's header, dropping every reference
// it carried (the batch slice, the connection, the chain link) so the
// arena never pins freed request state.
//
//rtle:hotpath
func putTask(t *task) {
	*t = task{}
	taskPool.Put(t)
}

// conn is one client connection.
type conn struct {
	nc net.Conn
	// out carries encoded response frames to the write loop, which flushes
	// them in vectored batches and recycles every buffer into the frame
	// arena; closed after the last send. Every frame on it MUST come from
	// getFrame.
	out chan *frameBuf
	// features holds the client hello's declared feature bits, written by
	// hello and read only from the same read-loop goroutine (subscriber
	// bootstrap checks FeatureSnapshot).
	features uint32
	// tasks counts this connection's accepted-but-unanswered requests;
	// out closes only once it drains, so workers never send on a closed
	// channel.
	tasks sync.WaitGroup
}

// send queues one pooled frame for writing. Ownership transfers to the
// write loop, which recycles the buffer after the flush.
//
//rtle:hotpath
func (c *conn) send(f *frameBuf) { c.out <- f }

// New builds a Server: per-shard simulated heaps, ADT partitions, and
// synchronization methods, plus the key router, fault director, and worker
// pool state. When Config.SnapFile names an existing snapshot it is
// restored first, and log replay (Config.ReplLog) continues from the
// snapshot's sequence instead of from scratch.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	if cfg.CompactEvery > 0 && cfg.SnapFile == "" {
		return nil, errors.New("server: CompactEvery needs SnapFile; the truncated log prefix must survive somewhere")
	}
	s := &Server{
		cfg:   cfg,
		conns: make(map[*conn]struct{}),
	}
	s.policy = cfg.Policy
	if cfg.Registry != nil {
		s.policy.Observer = cfg.Registry
	}
	if cfg.Plan != nil && cfg.Plan.Active() {
		s.director = fault.NewDirector(*cfg.Plan)
		s.director.Configure(&s.policy)
	}

	tp, err := s.buildTopology(cfg.Shards)
	if err != nil {
		return nil, err
	}
	s.topo.Store(tp)
	s.metrics.attach(tp.shardMetrics())

	// Durable snapshot first: it seeds the shard state the log suffix
	// replays on top of.
	var bootSeq uint64
	var haveSnap bool
	if cfg.SnapFile != "" {
		sn, err := snap.ReadFile(cfg.SnapFile)
		if err != nil {
			return nil, err
		}
		if sn != nil {
			if err := s.restoreTopology(tp, sn); err != nil {
				return nil, err
			}
			bootSeq, haveSnap = sn.Seq, true
		}
	}

	if cfg.Repl {
		var syncAck bool
		switch cfg.ReplAck {
		case "async":
		case "sync":
			syncAck = true
		default:
			return nil, fmt.Errorf("server: unknown replication ack mode %q (want async or sync)", cfg.ReplAck)
		}
		log, err := repl.Open(cfg.ReplLog)
		if err != nil {
			return nil, err
		}
		if floor := log.Floor(); floor > 0 {
			// The log's prefix below the floor was compacted away; only a
			// snapshot at or above the floor holds the missing state.
			if !haveSnap {
				_ = log.Close() // the missing-snapshot error is the one to report
				return nil, fmt.Errorf("server: replication log was compacted below seq %d and no snapshot is available; boot needs the snapshot the compaction left behind", floor)
			}
			if floor > bootSeq {
				_ = log.Close() // the floor-gap error is the one to report
				return nil, fmt.Errorf("server: replication log floor %d is above the snapshot sequence %d; the entries between them are unrecoverable", floor, bootSeq)
			}
		}
		if haveSnap && log.HighWater() < bootSeq {
			// The snapshot is ahead of the whole log (for example a
			// bootstrap file next to a fresh log): the snapshot subsumes
			// every missing entry, so restart the log at its sequence.
			if err := log.ResetTo(bootSeq); err != nil {
				_ = log.Close() // the reset error is the one to report
				return nil, err
			}
		}
		s.repl = newReplication(log, syncAck, cfg.ReplicaOf)
		s.metrics.repl = s.repl
		// Warm boot: replay the log suffix above the snapshot (the whole
		// log on a snapshot-less boot), before any worker or connection
		// exists.
		if err := s.replayLog(bootSeq); err != nil {
			_ = log.Close() // the replay error is the one to report
			return nil, err
		}
	}
	return s, nil
}

// buildTopology assembles one serving generation with n shards: per-shard
// simulated heaps, ADT partitions, method instances, queues, and metric
// blocks. The generation is cold — startWorkers launches its pools — and
// its structures are pristine, which restoreTopology relies on.
func (s *Server) buildTopology(n int) (*topology, error) {
	cfg := &s.cfg
	if cfg.Workload == "bank" && n > cfg.Keys {
		n = cfg.Keys // at least one account per shard
	}
	tp := &topology{
		router:    newRouter(cfg.Workload, n, cfg.Keys),
		slowQueue: make(chan *task, cfg.QueueDepth),
	}
	slots := cfg.Coalesce
	if MaxBatchOps > slots {
		slots = MaxBatchOps
	}
	for k := 0; k < n; k++ {
		m := mem.New(heapWords(cfg.Workload, cfg.Keys, cfg.Workers))
		var owned []uint64
		if cfg.Workload == "bank" {
			owned = tp.router.ownedAccounts(k)
		}
		a, err := newADT(cfg.Workload, m, cfg.Keys, owned)
		if err != nil {
			return nil, err
		}
		method, err := harness.BuildMethod(cfg.Method, m, s.policy)
		if err != nil {
			return nil, err
		}
		sh := &shard{
			id:     k,
			mem:    m,
			adt:    a,
			method: method,
			queue:  make(chan *task, cfg.QueueDepth),
			coal:   newCoalescer(cfg.Coalesce),
			m:      &ShardMetrics{},
		}
		sh.m.coal = sh.coal
		sh.slowThread = method.NewThread()
		sh.slowEx = a.newExecutor(slots)
		tp.shards = append(tp.shards, sh)
	}
	return tp, nil
}

// startWorkers launches one generation's pools: Workers fast-path workers
// per shard plus the generation's slow worker.
func (s *Server) startWorkers(tp *topology) {
	for _, sh := range tp.shards {
		for i := 0; i < s.cfg.Workers; i++ {
			s.workersWG.Add(1)
			go s.worker(sh)
		}
	}
	s.workersWG.Add(1)
	go s.slowWorker(tp)
}

// Metrics returns the server's wire-level metric registry.
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Director returns the fault director wired by Config.Plan, or nil.
func (s *Server) Director() *fault.Director { return s.director }

// MethodName returns the served method's legend name.
func (s *Server) MethodName() string { return s.top().shards[0].method.Name() }

// Workload returns the served ADT kind.
func (s *Server) Workload() string { return s.cfg.Workload }

// Keys returns the served key-space bound (account count for bank).
func (s *Server) Keys() int { return s.cfg.Keys }

// Shards returns the number of served partitions (live: Reshard changes
// it).
func (s *Server) Shards() int { return len(s.top().shards) }

// Listen binds the configured address and starts the worker pools. It
// returns the bound address (Config.Addr may name port 0).
func (s *Server) Listen() (net.Addr, error) {
	lis, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	s.drainMu.Lock()
	s.started = true
	s.drainMu.Unlock()
	s.startWorkers(s.top())
	if r := s.repl; r != nil && r.role.Load() == roleReplica {
		r.started.Store(true)
		go s.runReplica()
	}
	if s.cfg.CompactEvery > 0 {
		s.compactStop = make(chan struct{})
		s.compactDone = make(chan struct{})
		go s.runCompactor()
	}
	return lis.Addr(), nil
}

// Serve accepts connections until the listener closes (Shutdown or Close).
// It returns nil on a drain-initiated close.
func (s *Server) Serve() error {
	s.mu.Lock()
	lis := s.lis
	s.mu.Unlock()
	if lis == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		nc, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		c := &conn{nc: nc, out: make(chan *frameBuf, 64)}
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.metrics.connsOpen.Add(1)
		s.metrics.connsTotal.Add(1)
		s.connsWG.Add(2)
		go s.readLoop(c)
		go s.writeLoop(c)
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe() error {
	if _, err := s.Listen(); err != nil {
		return err
	}
	return s.Serve()
}

// readLoop negotiates the hello exchange, then decodes frames from one
// connection, validating and admitting them.
//
//rtle:hotpath
func (s *Server) readLoop(c *conn) {
	defer s.connsWG.Done()
	//rtle:ignore hotalloc conn-teardown closure; runs once per connection lifetime
	defer func() {
		// The connection stops producing work; release the writer once
		// every accepted task has queued its response.
		//rtle:ignore hotalloc conn-teardown closure; runs once per connection lifetime
		go func() {
			c.tasks.Wait()
			close(c.out)
		}()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.metrics.connsOpen.Add(-1)
	}()

	fr := frameReader{r: bufio.NewReaderSize(c.nc, 1<<16)}
	if !s.hello(c, &fr) {
		// Return without closing the socket: the deferred teardown closes
		// c.out once the (empty) task set drains, and writeLoop flushes
		// the queued rejection before it closes the connection — closing
		// here would race the client out of its explanation.
		return
	}
	var run affRun
	for {
		// Flush the pending affinity run before any read that could block:
		// as long as the next frame is already buffered the run may keep
		// growing, but a parked reader must not sit on admitted-but-unqueued
		// work.
		if run.n > 0 && !fr.ready() {
			s.flushRun(c, &run)
		}
		payload, err := fr.next()
		if err != nil {
			// EOF, connection reset, or an unrecoverable framing error
			// (oversized frame): no way to resynchronize, drop the conn.
			// The run is always empty here: a buffered frame cannot fail to
			// read, and the flush above covered the blocking case.
			_ = c.nc.Close() // double-close on teardown is harmless
			return
		}
		req, err := DecodeRequest(payload)
		if err != nil {
			s.metrics.badOps.Add(1)
			s.reject(c, req.ID, StatusBad, err.Error())
			continue
		}
		s.metrics.requests[opIndex(req.Op)].Add(1)
		if req.Op == OpReplSubscribe {
			// The connection becomes a replication stream; when the
			// subscriber hangs up the deferred teardown runs as usual.
			s.flushRun(c, &run)
			s.serveSubscriber(c, &fr, req)
			return
		}
		if req.Op == OpSnapshot {
			// The full state streams inline as snapshot chunks; the read
			// loop resumes decoding requests once the end chunk is queued.
			s.flushRun(c, &run)
			s.serveSnapshot(c, req)
			continue
		}
		if err := s.validate(&req); err != nil {
			s.metrics.badOps.Add(1)
			s.reject(c, req.ID, StatusBad, err.Error())
			continue
		}
		// A replica serves pings (drain and liveness probes) but rejects
		// everything else before execution: clients retry against the
		// primary or ride out this server's promotion.
		if r := s.repl; r != nil && !r.primary() && req.Op != OpPing {
			s.reject(c, req.ID, StatusNotPrimary,
				"server is a replica of "+r.primaryAddr)
			continue
		}
		// Shard-affinity classification: consecutive fast-path ops that
		// hash to one shard chain into a run and reach the shard queue as
		// one linked handoff, skipping the per-op channel send.
		if run.n > 0 {
			plan := run.tp.router.plan(&req)
			if plan.fast && plan.shard == run.sh && run.n < affinityRunCap {
				run.add(c, req)
				continue
			}
			// Cross-shard op, slow-path op, or a full run: the run flushes
			// in admission order ahead of the newcomer.
			s.flushRun(c, &run)
		}
		tp := s.top()
		plan := tp.router.plan(&req)
		if plan.fast {
			run.tp, run.sh = tp, plan.shard
			run.add(c, req)
			continue
		}
		s.admit(c, req)
	}
}

// affinityRunCap bounds one affinity run's chain length. A run occupies a
// single queue slot however long it is, so the cap keeps the effective
// queue bound (slots × cap) within the same order as QueueDepth while
// still amortizing the channel handoff across a pipelined burst.
const affinityRunCap = 32

// affRun accumulates one connection's pending affinity run: consecutive
// fast-path operations, all planned onto one shard of one topology
// generation, chained through task.next while further frames are already
// buffered. flushRun delivers the whole chain with a single queue send.
type affRun struct {
	head, tail *task
	sh         int       // planned shard index
	tp         *topology // generation the plan was made against
	n          int
}

// add appends one accepted request to the run.
//
//rtle:hotpath
func (run *affRun) add(c *conn, req Request) {
	t := getTask()
	t.c, t.req, t.arrived = c, req, time.Now()
	if run.tail == nil {
		run.head = t
	} else {
		run.tail.next = t
	}
	run.tail = t
	run.n++
}

// flushRun hands the pending run to its shard queue in one send, applying
// the same drain and backpressure discipline as admit. The run was planned
// against a cached topology pointer without holding drainMu; the flush
// re-checks the generation under the lock and re-plans per task if a
// reshard swapped it in between (rare, and the re-plan may legally send
// individual tasks to different shards or the slow path).
//
//rtle:hotpath
func (s *Server) flushRun(c *conn, run *affRun) {
	if run.n == 0 {
		return
	}
	head, shIdx, tp0, n := run.head, run.sh, run.tp, run.n
	run.head, run.tail, run.tp, run.n = nil, nil, nil, 0
	s.drainMu.RLock()
	if s.draining {
		s.drainMu.RUnlock()
		for t := head; t != nil; {
			nx := t.next
			s.reject(c, t.req.ID, StatusShutdown, "server is draining")
			putTask(t)
			t = nx
		}
		return
	}
	tp := s.top()
	if tp != tp0 {
		// The serving generation changed since classification: re-plan
		// every task on the generation whose workers will execute it.
		var rejected *task
		for t := head; t != nil; {
			nx := t.next
			t.next = nil
			if bsh := s.enqueueLocked(tp, t, tp.router.plan(&t.req)); bsh != nil {
				t.sh = bsh // carries the busy-hint target out of the lock
				t.next = rejected
				rejected = t
			}
			t = nx
		}
		s.drainMu.RUnlock()
		for t := rejected; t != nil; {
			nx := t.next
			s.busy(c, t.req.ID, t.sh)
			putTask(t)
			t = nx
		}
		return
	}
	sh := tp.shards[shIdx]
	for t := head; t != nil; t = t.next {
		t.sh = sh
	}
	// Count before the send (see admit): the gauge must never dip negative
	// under a racing pickup.
	c.tasks.Add(n)
	s.tasksWG.Add(n)
	sh.m.queueDepth.Add(int64(n))
	select {
	case sh.queue <- head:
		s.drainMu.RUnlock()
		s.metrics.affineOps.Add(uint64(n))
		s.metrics.affineRuns.Add(1)
	default:
		sh.m.queueDepth.Add(int64(-n))
		c.tasks.Add(-n)
		s.tasksWG.Add(-n)
		s.drainMu.RUnlock()
		for t := head; t != nil; {
			nx := t.next
			s.busy(c, t.req.ID, sh)
			putTask(t)
			t = nx
		}
	}
}

// hello runs the server side of the rtled/1 version negotiation: the first
// frame on every connection must be a client hello with a supported
// version. On success the server answers with its own hello (version,
// feature bits, shard count) and the connection proceeds to requests; on
// failure the client gets one explanatory StatusBad response and the
// connection closes. Runs once per connection: cold by construction.
//
//rtle:coldpath
func (s *Server) hello(c *conn, fr *frameReader) bool {
	payload, err := fr.next()
	if err != nil {
		return false
	}
	ch, err := DecodeClientHello(payload)
	if err != nil {
		s.metrics.helloRejects.Add(1)
		s.reject(c, 0, StatusBad, err.Error())
		return false
	}
	if ch.Version != ProtocolVersion {
		s.metrics.helloRejects.Add(1)
		s.reject(c, 0, StatusBad, fmt.Sprintf(
			"unsupported protocol version %d (server speaks rtled/%d)", ch.Version, ProtocolVersion))
		return false
	}
	// Unrecognized client feature bits are ignored (forward compatibility);
	// the server advertises what it actually runs.
	c.features = ch.Features
	features := FeatureSharded | FeatureSnapshot
	if s.repl != nil {
		features |= FeatureReplicated
	}
	f := getFrame()
	f.b = AppendServerHello(f.b, &ServerHello{
		Version:  ProtocolVersion,
		Features: features,
		Shards:   uint16(len(s.top().shards)),
	})
	c.send(f)
	return true
}

// validate applies the serving contract to a decoded request.
func (s *Server) validate(req *Request) error {
	switch req.Op {
	case OpPing:
		return nil
	case OpBatch:
		if len(req.Batch) == 0 {
			return errors.New("empty batch")
		}
		adt := s.top().shards[0].adt // the contract (key bounds, served ops) is shard-independent
		for i := range req.Batch {
			e := &req.Batch[i]
			if err := adt.validate(e.Op, e.Arg1, e.Arg2); err != nil {
				//rtle:ignore hotalloc validation-failure error path; the request is rejected
				return fmt.Errorf("batch entry %d: %w", i, err)
			}
		}
		return nil
	default:
		return s.top().shards[0].adt.validate(req.Op, req.Arg1, req.Arg2)
	}
}

// admit routes one request and queues it, applying drain and backpressure
// rejection. Fast-path requests go to their shard's bounded queue;
// multi-shard requests go to the slow queue. (The read loop admits
// fast-path singles through affinity runs instead; this is the slow-path
// and direct-call entry.)
//
//rtle:hotpath
func (s *Server) admit(c *conn, req Request) {
	s.drainMu.RLock()
	if s.draining {
		s.drainMu.RUnlock()
		s.reject(c, req.ID, StatusShutdown, "server is draining")
		return
	}
	// The topology load sits inside the drain lock: swaps hold it
	// exclusively, so the task lands on the generation whose workers will
	// drain its queue.
	tp := s.top()
	plan := tp.router.plan(&req)
	t := getTask()
	t.c, t.req, t.arrived = c, req, time.Now()
	bsh := s.enqueueLocked(tp, t, plan)
	s.drainMu.RUnlock()
	if bsh != nil {
		s.busy(c, t.req.ID, bsh)
		putTask(t)
	}
}

// enqueueLocked queues one planned task on its shard or the slow queue,
// with the count-before-send accounting discipline (a worker decrements
// the depth gauge at pickup, so counting after the send could let it dip
// negative — and the coalescer reads it, so a stale negative depth would
// spuriously shrink the window). The caller holds drainMu shared with
// draining false. On backpressure every count is rolled back and the
// busy-hint shard is returned; the caller sends the StatusBusy response
// and recycles the task after releasing the lock (a send can block on a
// stalled peer, and blocking under drainMu would wedge Shutdown).
//
//rtle:hotpath
func (s *Server) enqueueLocked(tp *topology, t *task, plan routePlan) *shard {
	c := t.c
	c.tasks.Add(1)
	s.tasksWG.Add(1)
	if plan.fast {
		sh := tp.shards[plan.shard]
		t.sh = sh
		sh.m.queueDepth.Add(1)
		select {
		case sh.queue <- t:
			return nil
		default:
			sh.m.queueDepth.Add(-1)
			c.tasks.Done()
			s.tasksWG.Done()
			t.sh = nil
			return sh
		}
	}
	t.spans = plan.spans
	s.metrics.slowDepth.Add(1)
	select {
	case tp.slowQueue <- t:
		return nil
	default:
		s.metrics.slowDepth.Add(-1)
		c.tasks.Done()
		s.tasksWG.Done()
		return tp.shards[plan.spans[0]]
	}
}

// reject answers a request that will not execute. Rejection is the error
// branch of admission: cold, allocation is priced in.
//
//rtle:coldpath
func (s *Server) reject(c *conn, id uint32, st Status, msg string) {
	s.metrics.statuses[st].Add(1)
	f := getFrame()
	f.b = AppendResponse(f.b, &Response{ID: id, Status: st, Message: msg})
	c.send(f)
}

// busy answers a request rejected by backpressure, with the target
// shard's queue-depth-aware retry hint. A backpressured server is paying
// for queue pressure, not the response alloc: cold.
//
//rtle:coldpath
func (s *Server) busy(c *conn, id uint32, sh *shard) {
	s.metrics.statuses[StatusBusy].Add(1)
	f := getFrame()
	f.b = AppendResponse(f.b, &Response{
		ID:               id,
		Status:           StatusBusy,
		RetryAfterMicros: sh.m.retryAfterMicros(s.cfg.Workers),
		QueueDepth:       uint32(sh.m.queueDepth.Load()),
	})
	c.send(f)
}

// Write-batch bounds. The frame bound keeps one writev's iovec small
// enough to track the coalesced-block sizes the adaptive controller
// produces (a whole block's responses land in one syscall); the byte
// bound is the latency budget — it flushes before the vectored write
// itself becomes a latency cliff for whoever's response rides last in
// the batch. Gathering never waits: only frames already queued join a
// batch, so batching adds no latency, it only removes syscalls.
const (
	maxWriteBatchFrames = 256
	maxWriteBatchBytes  = 256 << 10
)

// writeLoop flushes encoded responses to the socket in vectored batches:
// every frame already queued on c.out (bounded by the batch limits above)
// is gathered into one net.Buffers and hits the wire as a single writev
// syscall — one syscall per coalesced burst, not per response. Flushed
// buffers return to the frame arena. On a write error it keeps draining
// (recycling) so senders never block on a dead peer.
//
//rtle:hotpath
func (s *Server) writeLoop(c *conn) {
	defer s.connsWG.Done()
	//rtle:ignore hotalloc conn-teardown closure; runs once per connection lifetime
	defer func() {
		_ = c.nc.Close() // double-close on teardown is harmless
	}()
	frames := make([]*frameBuf, 0, maxWriteBatchFrames) //rtle:ignore hotalloc conn-lifetime gather scratch, reused for every batch
	bufs := make(net.Buffers, maxWriteBatchFrames)      //rtle:ignore hotalloc conn-lifetime iovec backing array, reused for every batch
	// The iovec view handed to writeBuffers must live in a conn-lifetime
	// box: net.Buffers.WriteTo consumes the view in place through an
	// interface, so a per-batch &view would escape — one header allocation
	// per writev, exactly the cost this loop exists to remove.
	view := new(net.Buffers) //rtle:ignore hotalloc conn-lifetime iovec view box, reused for every batch
	dead := false
	open := true
	for open {
		f, ok := <-c.out
		if !ok {
			return
		}
		frames = append(frames[:0], f)
		bytes := len(f.b)
		// Gather whatever else is already queued — never wait for more.
	gather:
		for len(frames) < maxWriteBatchFrames && bytes < maxWriteBatchBytes {
			select {
			case f2, ok2 := <-c.out:
				if !ok2 {
					open = false
					break gather
				}
				frames = append(frames, f2)
				bytes += len(f2.b)
			default:
				break gather
			}
		}
		if !dead {
			for i, fb := range frames {
				bufs[i] = fb.b
			}
			*view = bufs[:len(frames)]
			if err := writeBuffers(c.nc, view); err != nil {
				dead = true
			}
			s.metrics.writeBatchFrames.Observe(int64(len(frames)))
		}
		for _, fb := range frames {
			putFrame(fb)
		}
	}
}

// respond answers an executed task and releases its accounting, then
// recycles the task header. results may alias a worker's scratch slice;
// it is encoded into a pooled frame before returning, so the steady-state
// response path allocates nothing: the frame returns to the arena after
// the write loop's vectored flush, the task header after this call.
//
//rtle:hotpath
func (s *Server) respond(t *task, results []Result, resp Response) {
	resp.Results = results
	f := getFrame()
	f.b = AppendResponse(f.b, &resp)
	s.metrics.statuses[resp.Status].Add(1)
	s.metrics.latency[opIndex(t.req.Op)].Observe(time.Since(t.arrived).Nanoseconds())
	c := t.c
	if t.sh != nil {
		t.sh.m.inflight.Add(-1)
	}
	putTask(t)
	c.send(f)
	c.tasks.Done()
	s.tasksWG.Done()
}

// discard releases an executed task's accounting without answering it.
// Used only when server teardown abandoned the task's sync-ack wait: the
// response must not escape to the client (see replWait), which instead
// observes its dying connection and records the operation as pending.
func (s *Server) discard(t *task) {
	c := t.c
	if t.sh != nil {
		t.sh.m.inflight.Add(-1)
	}
	putTask(t)
	c.tasks.Done()
	s.tasksWG.Done()
}

// Shutdown drains gracefully: stop admitting, stop accepting, let every
// accepted request on every shard finish and flush, then tear the
// connections down. It returns ctx's error if the drain does not complete
// in time (the server is then closed hard).
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	s.stopCompactor()

	if s.repl != nil {
		s.repl.shutdownRunner()
	}

	s.mu.Lock()
	lis := s.lis
	s.mu.Unlock()
	if lis != nil {
		_ = lis.Close() // net.ErrClosed on re-close is the expected teardown path
	}

	drained := make(chan struct{})
	go func() {
		s.tasksWG.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		if s.repl != nil {
			s.repl.markClosing()
		}
		s.closeConns()
		return ctx.Err()
	}

	// All accepted tasks are answered and no reader can admit more (the
	// draining flip happened under drainMu, which also pins the topology),
	// so every queue is empty and closing them retires the workers.
	tp := s.top()
	for _, sh := range tp.shards {
		close(sh.queue)
	}
	close(tp.slowQueue)
	s.workersWG.Wait()

	// Unblock readers parked on their sockets; writers flush what remains
	// and exit via the closed out channels.
	s.closeConns()
	done := make(chan struct{})
	go func() {
		s.connsWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		if s.repl != nil {
			return s.repl.log.Close()
		}
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close tears the server down without draining.
func (s *Server) Close() error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	s.stopCompactor()
	if s.repl != nil {
		s.repl.shutdownRunner()
		// Before any connection dies: a sync-ack waiter released by the
		// subscriber teardown below must drop its held response, not race
		// it onto a client socket the loop has not reached yet.
		s.repl.markClosing()
	}
	s.mu.Lock()
	lis := s.lis
	s.mu.Unlock()
	if lis != nil {
		_ = lis.Close() // net.ErrClosed on re-close is the expected teardown path
	}
	s.closeConns()
	if s.repl != nil {
		return s.repl.log.Close()
	}
	return nil
}

// stopCompactor retires the auto-compactor, if Listen started one.
// Idempotent: Shutdown and Close may both run.
func (s *Server) stopCompactor() {
	if s.compactStop == nil {
		return
	}
	s.compactOnce.Do(func() { close(s.compactStop) })
	<-s.compactDone
}

// closeConns force-closes every live connection.
func (s *Server) closeConns() {
	s.mu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		_ = c.nc.Close() // readers and writers observe the close and exit
	}
}
