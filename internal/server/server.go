package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"rtle/internal/core"
	"rtle/internal/fault"
	"rtle/internal/harness"
	"rtle/internal/mem"
	"rtle/internal/obs"
)

// Config assembles a Server. Zero fields select the documented defaults.
type Config struct {
	// Addr is the TCP listen address (default "127.0.0.1:0").
	Addr string
	// Workload is the served ADT: "set", "map", or "bank" (default "set").
	Workload string
	// Method is the synchronization method's legend name, as accepted by
	// harness.BuildMethod (default "FG-TLE(256)").
	Method string
	// Workers sizes the worker pool; each worker owns one core.Thread
	// (default 4).
	Workers int
	// QueueDepth bounds the accepted-request queue. A full queue rejects
	// with StatusBusy and a retry-after hint (default 256).
	QueueDepth int
	// Coalesce is the maximum number of pending single operations one
	// worker folds into a shared atomic block (default 8; 1 disables
	// coalescing).
	Coalesce int
	// Keys bounds the key space for set/map and is the account count for
	// bank (default 1024, bank 16).
	Keys int
	// Policy carries the speculation knobs (attempts, lazy subscription,
	// HTM config). Registry and Plan are wired into it by New.
	Policy core.Policy
	// Registry, when non-nil, is installed as the method's observer, so
	// /metrics exposes the per-path execution series next to the wire
	// series.
	Registry *obs.Registry
	// Plan, when non-nil and active, wires a fault.Director into the
	// method: chaos runs work over the wire exactly as in-process ones.
	Plan *fault.Plan
}

func (c *Config) fill() {
	if c.Addr == "" {
		c.Addr = "127.0.0.1:0"
	}
	if c.Workload == "" {
		c.Workload = "set"
	}
	if c.Method == "" {
		c.Method = "FG-TLE(256)"
	}
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 256
	}
	if c.Coalesce <= 0 {
		c.Coalesce = 8
	}
	if c.Keys <= 0 {
		if c.Workload == "bank" {
			c.Keys = 16
		} else {
			c.Keys = 1024
		}
	}
}

// Server is the TCP serving layer: an acceptor, per-connection reader and
// writer goroutines, and a bounded worker pool executing requests against
// one elided data structure.
type Server struct {
	cfg      Config
	mem      *mem.Memory
	adt      *adt
	method   core.Method
	director *fault.Director
	metrics  Metrics

	queue chan *task

	// drainMu serializes request admission against the drain flip: readers
	// admit under RLock, Shutdown flips draining under Lock, so after the
	// flip no reader can be mid-admission and tasksWG covers every
	// accepted task.
	drainMu  sync.RWMutex
	draining bool

	tasksWG   sync.WaitGroup // accepted tasks not yet answered
	workersWG sync.WaitGroup
	connsWG   sync.WaitGroup

	mu    sync.Mutex
	lis   net.Listener
	conns map[*conn]struct{}
}

// task is one accepted request bound to its connection.
type task struct {
	c       *conn
	req     Request
	arrived time.Time
}

// conn is one client connection.
type conn struct {
	nc  net.Conn
	out chan []byte // encoded response frames, closed after the last send
	// tasks counts this connection's accepted-but-unanswered requests;
	// out closes only once it drains, so workers never send on a closed
	// channel.
	tasks sync.WaitGroup
}

// send queues an encoded response frame for writing.
func (c *conn) send(frame []byte) { c.out <- frame }

// New builds a Server: simulated heap, ADT, synchronization method, fault
// director, and worker pool state.
func New(cfg Config) (*Server, error) {
	cfg.fill()
	m := mem.New(heapWords(cfg.Workload, cfg.Keys, cfg.Workers))
	a, err := newADT(cfg.Workload, m, cfg.Keys)
	if err != nil {
		return nil, err
	}
	s := &Server{
		cfg:   cfg,
		mem:   m,
		adt:   a,
		queue: make(chan *task, cfg.QueueDepth),
		conns: make(map[*conn]struct{}),
	}
	policy := cfg.Policy
	if cfg.Registry != nil {
		policy.Observer = cfg.Registry
	}
	if cfg.Plan != nil && cfg.Plan.Active() {
		s.director = fault.NewDirector(*cfg.Plan)
		s.director.Configure(&policy)
	}
	s.method, err = harness.BuildMethod(cfg.Method, m, policy)
	if err != nil {
		return nil, err
	}
	return s, nil
}

// Metrics returns the server's wire-level metric registry.
func (s *Server) Metrics() *Metrics { return &s.metrics }

// Director returns the fault director wired by Config.Plan, or nil.
func (s *Server) Director() *fault.Director { return s.director }

// MethodName returns the served method's legend name.
func (s *Server) MethodName() string { return s.method.Name() }

// Workload returns the served ADT kind.
func (s *Server) Workload() string { return s.cfg.Workload }

// Keys returns the served key-space bound (account count for bank).
func (s *Server) Keys() int { return s.cfg.Keys }

// Listen binds the configured address and starts the worker pool. It
// returns the bound address (Config.Addr may name port 0).
func (s *Server) Listen() (net.Addr, error) {
	lis, err := net.Listen("tcp", s.cfg.Addr)
	if err != nil {
		return nil, err
	}
	s.mu.Lock()
	s.lis = lis
	s.mu.Unlock()
	for i := 0; i < s.cfg.Workers; i++ {
		s.workersWG.Add(1)
		go s.worker()
	}
	return lis.Addr(), nil
}

// Serve accepts connections until the listener closes (Shutdown or Close).
// It returns nil on a drain-initiated close.
func (s *Server) Serve() error {
	s.mu.Lock()
	lis := s.lis
	s.mu.Unlock()
	if lis == nil {
		return errors.New("server: Serve before Listen")
	}
	for {
		nc, err := lis.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return err
		}
		c := &conn{nc: nc, out: make(chan []byte, 64)}
		s.mu.Lock()
		s.conns[c] = struct{}{}
		s.mu.Unlock()
		s.metrics.connsOpen.Add(1)
		s.metrics.connsTotal.Add(1)
		s.connsWG.Add(2)
		go s.readLoop(c)
		go s.writeLoop(c)
	}
}

// ListenAndServe is Listen followed by Serve.
func (s *Server) ListenAndServe() error {
	if _, err := s.Listen(); err != nil {
		return err
	}
	return s.Serve()
}

// readLoop decodes frames from one connection, validates and admits them.
func (s *Server) readLoop(c *conn) {
	defer s.connsWG.Done()
	defer func() {
		// The connection stops producing work; release the writer once
		// every accepted task has queued its response.
		go func() {
			c.tasks.Wait()
			close(c.out)
		}()
		s.mu.Lock()
		delete(s.conns, c)
		s.mu.Unlock()
		s.metrics.connsOpen.Add(-1)
	}()

	fr := frameReader{r: bufio.NewReaderSize(c.nc, 1<<16)}
	for {
		payload, err := fr.next()
		if err != nil {
			// EOF, connection reset, or an unrecoverable framing error
			// (oversized frame): no way to resynchronize, drop the conn.
			_ = c.nc.Close() // double-close on teardown is harmless
			return
		}
		req, err := DecodeRequest(payload)
		if err != nil {
			s.metrics.badOps.Add(1)
			s.reject(c, req.ID, StatusBad, err.Error())
			continue
		}
		s.metrics.requests[opIndex(req.Op)].Add(1)
		if err := s.validate(&req); err != nil {
			s.metrics.badOps.Add(1)
			s.reject(c, req.ID, StatusBad, err.Error())
			continue
		}
		s.admit(c, req)
	}
}

// validate applies the serving contract to a decoded request.
func (s *Server) validate(req *Request) error {
	switch req.Op {
	case OpPing:
		return nil
	case OpBatch:
		if len(req.Batch) == 0 {
			return errors.New("empty batch")
		}
		for i := range req.Batch {
			e := &req.Batch[i]
			if err := s.adt.validate(e.Op, e.Arg1, e.Arg2); err != nil {
				return fmt.Errorf("batch entry %d: %w", i, err)
			}
		}
		return nil
	default:
		return s.adt.validate(req.Op, req.Arg1, req.Arg2)
	}
}

// admit queues one request, applying drain and backpressure rejection.
func (s *Server) admit(c *conn, req Request) {
	s.drainMu.RLock()
	if s.draining {
		s.drainMu.RUnlock()
		s.reject(c, req.ID, StatusShutdown, "server is draining")
		return
	}
	t := &task{c: c, req: req, arrived: time.Now()}
	c.tasks.Add(1)
	s.tasksWG.Add(1)
	select {
	case s.queue <- t:
		s.metrics.queueDepth.Add(1)
		s.drainMu.RUnlock()
	default:
		c.tasks.Done()
		s.tasksWG.Done()
		s.drainMu.RUnlock()
		s.busy(c, req.ID)
	}
}

// reject answers a request that will not execute.
func (s *Server) reject(c *conn, id uint32, st Status, msg string) {
	s.metrics.statuses[st].Add(1)
	c.send(AppendResponse(nil, &Response{ID: id, Status: st, Message: msg}))
}

// busy answers a request rejected by backpressure, with the queue-depth-
// aware retry hint.
func (s *Server) busy(c *conn, id uint32) {
	s.metrics.statuses[StatusBusy].Add(1)
	c.send(AppendResponse(nil, &Response{
		ID:               id,
		Status:           StatusBusy,
		RetryAfterMicros: s.metrics.retryAfterMicros(s.cfg.Workers),
		QueueDepth:       uint32(s.metrics.queueDepth.Load()),
	}))
}

// writeLoop flushes encoded responses to the socket. On a write error it
// keeps draining (discarding) so senders never block on a dead peer.
func (s *Server) writeLoop(c *conn) {
	defer s.connsWG.Done()
	defer func() {
		_ = c.nc.Close() // double-close on teardown is harmless
	}()
	bw := bufio.NewWriterSize(c.nc, 1<<16)
	dead := false
	for frame := range c.out {
		if dead {
			continue
		}
		if _, err := bw.Write(frame); err != nil {
			dead = true
			continue
		}
		// Flush once the channel momentarily empties: pipelined bursts
		// batch into few syscalls, a lone response leaves immediately.
		if len(c.out) == 0 {
			if err := bw.Flush(); err != nil {
				dead = true
			}
		}
	}
	if !dead {
		_ = bw.Flush() // the conn is closing; a lost final flush is the peer's EOF anyway
	}
}

// worker executes queued tasks. Each worker owns one method thread and one
// executor (with a handle per slot), so the pool maps onto the paper's
// thread model: Workers concurrent critical-section executors.
func (s *Server) worker() {
	defer s.workersWG.Done()
	slots := s.cfg.Coalesce
	if MaxBatchOps > slots {
		slots = MaxBatchOps
	}
	ex := s.adt.newExecutor(slots)
	thread := s.method.NewThread()
	results := make([]Result, slots)
	group := make([]*task, 0, s.cfg.Coalesce)

	for {
		t, ok := <-s.queue
		if !ok {
			return
		}
		s.pickup(t)
		for t != nil {
			var carry *task
			switch t.req.Op {
			case OpPing:
				s.respond(t, nil, Response{ID: t.req.ID, Status: StatusOK})
			case OpBatch:
				s.runBatch(ex, thread, t, results)
			default:
				group = append(group[:0], t)
				carry = s.fillGroup(&group)
				s.runGroup(ex, thread, group, results)
			}
			t = carry
		}
	}
}

// pickup accounts a task's transition from queued to executing.
func (s *Server) pickup(t *task) {
	s.metrics.queueDepth.Add(-1)
	s.metrics.inflight.Add(1)
}

// fillGroup opportunistically drains further pending single operations
// into group (up to the coalesce limit), so one elided critical section
// serves several queued requests. A batch or ping pulled while filling is
// returned for the caller to run next. Coalescing preserves
// linearizability: every grouped operation is pending (invoked, not yet
// answered) when the shared block commits, so placing them all at its
// commit point respects real-time order.
func (s *Server) fillGroup(group *[]*task) *task {
	for len(*group) < s.cfg.Coalesce {
		select {
		case t, ok := <-s.queue:
			if !ok {
				return nil
			}
			s.pickup(t)
			if t.req.Op == OpPing || t.req.Op == OpBatch {
				return t
			}
			*group = append(*group, t)
		default:
			return nil
		}
	}
	return nil
}

// runGroup executes every task of group inside one atomic block, each in
// its own executor slot, then finalizes and answers them.
func (s *Server) runGroup(ex *executor, thread core.Thread, group []*task, results []Result) {
	start := time.Now()
	thread.Atomic(func(c core.Context) {
		for i, t := range group {
			results[i] = ex.run(c, i, t.req.Op, t.req.Arg1, t.req.Arg2, t.req.Arg3)
		}
	})
	s.sectionDone(start)
	if len(group) > 1 {
		s.metrics.coalesced.Add(uint64(len(group)))
	}
	for i, t := range group {
		ex.after(i, t.req.Op, results[i])
		s.respond(t, results[i:i+1], Response{ID: t.req.ID, Status: StatusOK})
	}
}

// runBatch executes one client batch inside one atomic block — the
// protocol's atomicity contract — and answers with per-entry results.
func (s *Server) runBatch(ex *executor, thread core.Thread, t *task, results []Result) {
	entries := t.req.Batch
	start := time.Now()
	thread.Atomic(func(c core.Context) {
		for i := range entries {
			e := &entries[i]
			results[i] = ex.run(c, i, e.Op, e.Arg1, e.Arg2, e.Arg3)
		}
	})
	s.sectionDone(start)
	s.metrics.batchOps.Add(uint64(len(entries)))
	for i := range entries {
		ex.after(i, entries[i].Op, results[i])
	}
	s.respond(t, results[:len(entries)], Response{ID: t.req.ID, Status: StatusOK})
}

// sectionDone folds one atomic block's wall time into the section metrics.
func (s *Server) sectionDone(start time.Time) {
	s.metrics.sections.Add(1)
	s.metrics.observeService(time.Since(start).Nanoseconds())
}

// respond answers an executed task and releases its accounting. results
// may alias a worker's scratch slice; it is encoded before returning.
func (s *Server) respond(t *task, results []Result, resp Response) {
	resp.Results = results
	frame := AppendResponse(nil, &resp)
	s.metrics.statuses[resp.Status].Add(1)
	s.metrics.latency[opIndex(t.req.Op)].Observe(time.Since(t.arrived).Nanoseconds())
	t.c.send(frame)
	s.metrics.inflight.Add(-1)
	t.c.tasks.Done()
	s.tasksWG.Done()
}

// Shutdown drains gracefully: stop admitting, stop accepting, let every
// accepted request finish and flush, then tear the connections down. It
// returns ctx's error if the drain does not complete in time (the server
// is then closed hard).
func (s *Server) Shutdown(ctx context.Context) error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()

	s.mu.Lock()
	lis := s.lis
	s.mu.Unlock()
	if lis != nil {
		_ = lis.Close() // net.ErrClosed on re-close is the expected teardown path
	}

	drained := make(chan struct{})
	go func() {
		s.tasksWG.Wait()
		close(drained)
	}()
	select {
	case <-drained:
	case <-ctx.Done():
		s.closeConns()
		return ctx.Err()
	}

	// All accepted tasks are answered and no reader can admit more (the
	// draining flip happened under drainMu), so the queue is empty and
	// closing it retires the workers.
	close(s.queue)
	s.workersWG.Wait()

	// Unblock readers parked on their sockets; writers flush what remains
	// and exit via the closed out channels.
	s.closeConns()
	done := make(chan struct{})
	go func() {
		s.connsWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close tears the server down without draining.
func (s *Server) Close() error {
	s.drainMu.Lock()
	s.draining = true
	s.drainMu.Unlock()
	s.mu.Lock()
	lis := s.lis
	s.mu.Unlock()
	if lis != nil {
		_ = lis.Close() // net.ErrClosed on re-close is the expected teardown path
	}
	s.closeConns()
	return nil
}

// closeConns force-closes every live connection.
func (s *Server) closeConns() {
	s.mu.Lock()
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	for _, c := range conns {
		_ = c.nc.Close() // readers and writers observe the close and exit
	}
}
