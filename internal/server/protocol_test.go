package server

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"net"
	"reflect"
	"strings"
	"testing"

	"rtle/internal/check"
)

// roundTripRequest encodes r, strips the frame header, and decodes it back.
func roundTripRequest(t *testing.T, r Request) Request {
	t.Helper()
	frame := AppendRequest(nil, &r)
	if got := binary.BigEndian.Uint32(frame); int(got) != len(frame)-4 {
		t.Fatalf("frame length header %d, want %d", got, len(frame)-4)
	}
	dec, err := DecodeRequest(frame[4:])
	if err != nil {
		t.Fatalf("DecodeRequest: %v", err)
	}
	return dec
}

func TestRequestRoundTrip(t *testing.T) {
	cases := []Request{
		{ID: 1, Op: check.OpInsert, Arg1: 42},
		{ID: 0xfffffffe, Op: check.OpTransfer, Arg1: 3, Arg2: 9, Arg3: 100},
		{ID: 7, Op: OpPing},
		{ID: 9, Op: OpBatch, Batch: []BatchEntry{
			{Op: check.OpContains, Arg1: 5},
			{Op: check.OpGet, Arg1: 6},
			{Op: check.OpBalance, Arg1: 0},
		}},
	}
	for _, want := range cases {
		got := roundTripRequest(t, want)
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip %+v -> %+v", want, got)
		}
	}
}

func TestResponseRoundTrip(t *testing.T) {
	cases := []Response{
		{ID: 1, Status: StatusOK, Results: []Result{{Ret: 7, Ok: true}}},
		{ID: 2, Status: StatusOK}, // ping: no results
		{ID: 3, Status: StatusOK, Results: []Result{{Ret: 1, Ok: false}, {Ret: 2, Ok: true}}},
		{ID: 4, Status: StatusBusy, RetryAfterMicros: 1500, QueueDepth: 12},
		{ID: 5, Status: StatusBad, Message: "key 9 outside the served key space [0,8)"},
		{ID: 6, Status: StatusShutdown, Message: "server is draining"},
	}
	for _, want := range cases {
		frame := AppendResponse(nil, &want)
		got, err := DecodeResponse(frame[4:])
		if err != nil {
			t.Fatalf("DecodeResponse(%+v): %v", want, err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Errorf("round trip %+v -> %+v", want, got)
		}
	}
}

func TestDecodeRequestErrors(t *testing.T) {
	short := []byte{0, 0, 0, 1}
	if _, err := DecodeRequest(short); err == nil {
		t.Error("short payload decoded")
	}
	// Truncated single-op body.
	r := Request{ID: 1, Op: check.OpInsert, Arg1: 42}
	frame := AppendRequest(nil, &r)
	if _, err := DecodeRequest(frame[4 : len(frame)-1]); err == nil {
		t.Error("truncated single-op body decoded")
	}
	// Nested batch/ping inside a batch.
	for _, inner := range []Op{OpBatch, OpPing} {
		b := Request{ID: 2, Op: OpBatch, Batch: []BatchEntry{{Op: inner}}}
		frame = AppendRequest(nil, &b)
		if _, err := DecodeRequest(frame[4:]); err == nil {
			t.Errorf("nested %v inside a batch decoded", inner)
		}
	}
	// Oversized batch count.
	big := make([]byte, 7)
	big[4] = byte(OpBatch)
	binary.BigEndian.PutUint16(big[5:], MaxBatchOps+1)
	if _, err := DecodeRequest(big); err == nil ||
		!strings.Contains(err.Error(), "exceeds") {
		t.Errorf("oversized batch count: err = %v", err)
	}
}

func TestReadFrameLimits(t *testing.T) {
	var hdr [4]byte
	binary.BigEndian.PutUint32(hdr[:], maxFrame+1)
	if _, err := readFrame(bytes.NewReader(hdr[:]), nil); err == nil {
		t.Error("oversized frame accepted")
	}
	// A legal frame round-trips through frameReader.
	req := Request{ID: 3, Op: check.OpGet, Arg1: 1}
	fr := frameReader{r: bytes.NewReader(AppendRequest(nil, &req))}
	payload, err := fr.next()
	if err != nil {
		t.Fatalf("next: %v", err)
	}
	dec, err := DecodeRequest(payload)
	if err != nil || dec.ID != 3 {
		t.Fatalf("decode via frameReader: %+v, %v", dec, err)
	}
}

func TestIsRead(t *testing.T) {
	reads := map[Op]bool{
		check.OpContains: true, check.OpGet: true, check.OpBalance: true,
		check.OpInsert: false, check.OpRemove: false, check.OpPut: false,
		check.OpDelete: false, check.OpAdd: false, check.OpTransfer: false,
		OpBatch: false, OpPing: false,
	}
	for op, want := range reads {
		if IsRead(op) != want {
			t.Errorf("IsRead(%v) = %v, want %v", op, !want, want)
		}
	}
}

func TestHelloRoundTrip(t *testing.T) {
	ch := ClientHello{Version: ProtocolVersion, Features: 0}
	frame := AppendClientHello(nil, &ch)
	if got := binary.BigEndian.Uint32(frame); int(got) != len(frame)-4 {
		t.Fatalf("client hello length header %d, want %d", got, len(frame)-4)
	}
	dch, err := DecodeClientHello(frame[4:])
	if err != nil || dch != ch {
		t.Fatalf("client hello round trip: %+v, %v", dch, err)
	}

	sh := ServerHello{Version: ProtocolVersion, Features: FeatureSharded, Shards: 4}
	frame = AppendServerHello(nil, &sh)
	dsh, err := DecodeServerHello(frame[4:])
	if err != nil || dsh != sh {
		t.Fatalf("server hello round trip: %+v, %v", dsh, err)
	}

	// A request payload must not decode as a hello: that is how the server
	// tells a pre-versioning client from a negotiating one.
	req := AppendRequest(nil, &Request{ID: 1, Op: check.OpInsert, Arg1: 2})
	if _, err := DecodeClientHello(req[4:]); err == nil {
		t.Error("request payload decoded as a client hello")
	}
}

// rawHelloExchange dials srv's addr raw, writes first, and returns the
// first response frame's payload.
func rawHelloExchange(t *testing.T, addr string, first []byte) ([]byte, *bufio.Reader, net.Conn) {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = nc.Close() })
	if _, err := nc.Write(first); err != nil {
		t.Fatal(err)
	}
	br := bufio.NewReader(nc)
	fr := frameReader{r: br}
	payload, err := fr.next()
	if err != nil {
		t.Fatalf("reading hello answer: %v", err)
	}
	out := make([]byte, len(payload))
	copy(out, payload)
	return out, br, nc
}

// TestHelloRejectsOldClient checks the no-flag-day contract: a client that
// opens with a request instead of a hello gets one explanatory StatusBad
// response and a closed connection.
func TestHelloRejectsOldClient(t *testing.T) {
	srv, addr := startServer(t, Config{Workload: "set", Keys: 8})
	first := AppendRequest(nil, &Request{ID: 1, Op: check.OpContains, Arg1: 1})
	payload, br, _ := rawHelloExchange(t, addr, first)
	resp, err := DecodeResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusBad || !strings.Contains(resp.Message, "hello") {
		t.Fatalf("pre-hello request answered %+v, want a bad-request naming the hello", resp)
	}
	// The server hangs up after the rejection.
	if _, err := br.ReadByte(); err == nil {
		t.Error("connection still open after a hello rejection")
	}
	if srv.Metrics().HelloRejects() != 1 {
		t.Errorf("hello rejects %d, want 1", srv.Metrics().HelloRejects())
	}
}

// TestHelloRejectsWrongVersion checks that an unsupported version is
// refused with a message naming both versions.
func TestHelloRejectsWrongVersion(t *testing.T) {
	_, addr := startServer(t, Config{Workload: "set", Keys: 8})
	first := AppendClientHello(nil, &ClientHello{Version: ProtocolVersion + 1})
	payload, _, _ := rawHelloExchange(t, addr, first)
	resp, err := DecodeResponse(payload)
	if err != nil {
		t.Fatal(err)
	}
	if resp.Status != StatusBad || !strings.Contains(resp.Message, "version") {
		t.Fatalf("wrong-version hello answered %+v", resp)
	}
}

// TestHelloAdvertisesShards checks the negotiated topology surfaces on the
// client.
func TestHelloAdvertisesShards(t *testing.T) {
	_, addr := startServer(t, Config{Workload: "map", Shards: 4, Keys: 64})
	c, err := Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if c.ServerShards() != 4 {
		t.Errorf("client saw %d shards, want 4", c.ServerShards())
	}
	if c.ServerFeatures()&FeatureSharded == 0 {
		t.Error("server did not advertise FeatureSharded")
	}
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after hello: %v", err)
	}
}

func TestValidateContract(t *testing.T) {
	srv, err := New(Config{Workload: "set", Keys: 8})
	if err != nil {
		t.Fatal(err)
	}
	if err := srv.validate(&Request{Op: check.OpInsert, Arg1: 7}); err != nil {
		t.Errorf("in-range insert rejected: %v", err)
	}
	if err := srv.validate(&Request{Op: check.OpInsert, Arg1: 8}); err == nil {
		t.Error("out-of-range key accepted")
	}
	if err := srv.validate(&Request{Op: check.OpGet, Arg1: 1}); err == nil {
		t.Error("map op accepted by set workload")
	}
	if err := srv.validate(&Request{Op: OpBatch}); err == nil {
		t.Error("empty batch accepted")
	}
	if err := srv.validate(&Request{Op: OpBatch, Batch: []BatchEntry{
		{Op: check.OpContains, Arg1: 2}, {Op: check.OpContains, Arg1: 99},
	}}); err == nil {
		t.Error("batch with out-of-range entry accepted")
	}
}
