package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"rtle/internal/check"
	"rtle/internal/core"
	"rtle/internal/snap"
)

// This file is the snapshot subsystem's server side: a consistent cut of
// the full served state, taken with every shard gate held exclusively, at
// a stable replication-log sequence. The one capture primitive feeds four
// consumers — the OpSnapshot wire stream (warm checker seeding), live
// resharding, replica fast-bootstrap after compaction, and log compaction
// itself (the durable snapshot file that replaces the truncated prefix).

// captureTopology reads every shard's full state in one consistent cut:
// all gates held exclusively (ascending, the slow path's lock order), so
// no atomic block is in flight anywhere and the log high-water mark is
// stable — fast-path commits append inside their shared-gate region,
// slow-path and replica-mirror commits inside exclusive gates, so with
// every gate held there is no seq the state has not caught up to. The
// captured state is therefore exactly the result of applying the log
// prefix through Seq.
func (s *Server) captureTopology(tp *topology) *snap.Snapshot {
	spans := make([]int, len(tp.shards))
	for i := range spans {
		spans[i] = i
	}
	tp.lockSpans(spans)
	sn := &snap.Snapshot{
		Workload: s.cfg.Workload,
		Keys:     uint64(s.cfg.Keys),
		Shards:   make([][]snap.Item, len(tp.shards)),
	}
	if r := s.repl; r != nil {
		sn.Seq = r.log.HighWater()
	}
	for k, sh := range tp.shards {
		sn.Shards[k] = captureShard(tp, sh)
	}
	tp.unlockSpans(spans)
	return sn
}

// captureShard enumerates one shard's live state. The caller holds the
// shard's gate exclusively, which is what licenses the slow thread and
// makes the enumeration a point-in-time read. Bodies are re-executable
// (speculative retry), so each resets its output before filling it.
func captureShard(tp *topology, sh *shard) []snap.Item {
	var items []snap.Item
	switch sh.adt.kind {
	case "set":
		var keys []uint64
		sh.slowThread.Atomic(func(c core.Context) {
			keys = sh.adt.set.Keys(c)
		})
		if len(keys) == 0 {
			return nil
		}
		items = make([]snap.Item, len(keys))
		for i, k := range keys {
			items[i] = snap.Item{Key: k}
		}
	case "map":
		sh.slowThread.Atomic(func(c core.Context) {
			items = items[:0]
			sh.adt.mp.ForEach(c, func(k, v uint64) bool {
				items = append(items, snap.Item{Key: k, Val: v})
				return true
			})
		})
		if len(items) == 0 {
			return nil
		}
	case "bank":
		owned := tp.router.ownedAccounts(sh.id)
		items = make([]snap.Item, len(owned))
		sh.slowThread.Atomic(func(c core.Context) {
			for i, g := range owned {
				items[i] = snap.Item{Key: g, Val: sh.adt.bk.BalanceCS(c, sh.adt.localIdx(g))}
			}
		})
	}
	return items
}

// CaptureSnapshot captures the full served state in one consistent cut
// (see captureTopology). It fails on a draining server: teardown owns the
// gates' endgame.
func (s *Server) CaptureSnapshot() (*snap.Snapshot, error) {
	s.drainMu.RLock()
	if s.draining {
		s.drainMu.RUnlock()
		return nil, errors.New("server: snapshot on a draining server")
	}
	tp := s.top()
	sn := s.captureTopology(tp)
	s.drainMu.RUnlock()
	return sn, nil
}

// restoreTopology loads a snapshot into a freshly built generation: every
// item routes through tp's router and replays through the owning shard's
// slow executor under its exclusive gate. The shards must be pristine
// (straight from buildTopology) — restore adds state on top of the empty
// structures, it does not reconcile.
func (s *Server) restoreTopology(tp *topology, sn *snap.Snapshot) error {
	if sn.Workload != s.cfg.Workload {
		return fmt.Errorf("server: snapshot carries workload %q, this server serves %q", sn.Workload, s.cfg.Workload)
	}
	if sn.Keys != uint64(s.cfg.Keys) {
		return fmt.Errorf("server: snapshot key space %d does not match the configured %d", sn.Keys, s.cfg.Keys)
	}
	spans := make([]int, len(tp.shards))
	for i := range spans {
		spans[i] = i
	}
	tp.lockSpans(spans)
	err := restoreLocked(tp, sn)
	tp.unlockSpans(spans)
	return err
}

// restoreLocked replays a snapshot's items into tp's shards and stamps
// every shard's sequence cursor with the cut's sequence, all while the
// caller holds every gate exclusively. Bank snapshots must cover every
// account exactly once: a fresh Bank starts all balances at BankInitial,
// so a silently missing account would resurrect its seed balance.
//
//rtle:gated
func restoreLocked(tp *topology, sn *snap.Snapshot) error {
	var seen []bool
	if sn.Workload == "bank" {
		seen = make([]bool, sn.Keys)
	}
	for _, items := range sn.Shards {
		for _, it := range items {
			if it.Key >= sn.Keys {
				return fmt.Errorf("server: snapshot item key %d outside [0,%d)", it.Key, sn.Keys)
			}
			if seen != nil {
				if seen[it.Key] {
					return fmt.Errorf("server: snapshot repeats account %d", it.Key)
				}
				seen[it.Key] = true
			}
			restoreItem(tp.shards[tp.router.shardOf(it.Key)], sn.Workload, it)
		}
	}
	for g, ok := range seen {
		if !ok {
			return fmt.Errorf("server: snapshot is missing account %d", g)
		}
	}
	// Every shard resumes at the cut's sequence: sync-mode read barriers
	// and slow-path appends continue from it, exactly as on the server
	// that took the cut.
	for _, sh := range tp.shards {
		sh.lastSeq.Store(sn.Seq)
	}
	return nil
}

// restoreItem replays one item into its owning shard, one atomic block
// per item through the shard's slow executor — the same machinery client
// operations run through, so the restored structure is bit-for-bit what
// serving those operations would have built. The caller holds the
// shard's gate exclusively. Bank balances are forced exactly: drain the
// fresh account's seed balance, then deposit the captured one (simulated
// writes roll back on speculative abort, so the pair re-executes safely).
func restoreItem(sh *shard, workload string, it snap.Item) {
	switch workload {
	case "set":
		var res Result
		sh.slowThread.Atomic(func(c core.Context) {
			res = sh.slowEx.run(c, 0, check.OpInsert, it.Key, 0, 0)
		})
		sh.slowEx.after(0, check.OpInsert, res)
	case "map":
		var res Result
		sh.slowThread.Atomic(func(c core.Context) {
			res = sh.slowEx.run(c, 0, check.OpPut, it.Key, it.Val, 0)
		})
		sh.slowEx.after(0, check.OpPut, res)
	case "bank":
		sh.slowThread.Atomic(func(c core.Context) {
			idx := sh.adt.localIdx(it.Key)
			sh.adt.bk.WithdrawCS(c, idx, ^uint64(0))
			sh.adt.bk.DepositCS(c, idx, it.Val)
		})
	}
}

// serveSnapshot answers one OpSnapshot request: an OK response, then the
// state streamed as snapshot chunk frames on the same connection. The
// client treats the snapshot as its sole in-flight request (the chunk
// frames carry no request id), and the connection resumes ordinary
// request traffic after the end chunk.
//
//rtle:coldpath
func (s *Server) serveSnapshot(c *conn, req Request) {
	sn, err := s.CaptureSnapshot()
	if err != nil {
		s.reject(c, req.ID, StatusShutdown, err.Error())
		return
	}
	s.metrics.statuses[StatusOK].Add(1)
	ok := getFrame()
	ok.b = AppendResponse(ok.b, &Response{ID: req.ID, Status: StatusOK})
	c.send(ok)
	s.sendSnapshot(c, sn)
}

// sendSnapshot queues a snapshot's chunk frames on c. Encoding happens
// after the gates released (CaptureSnapshot returned), so a slow consumer
// never extends the capture's busy window.
func (s *Server) sendSnapshot(c *conn, sn *snap.Snapshot) {
	w := snap.NewWriter(func(chunk []byte) error {
		f := getFrame()
		f.b = AppendSnapChunk(f.b, chunk)
		c.send(f)
		return nil
	})
	// The emit callback never fails and the snapshot came from our own
	// capture, so encoding cannot error.
	_ = snap.Encode(w, sn)
}

// ErrNoSnapshot reports a server that does not advertise FeatureSnapshot
// (an older build); callers fall back to their snapshot-less path.
var ErrNoSnapshot = errors.New("server: the server does not support snapshot streaming")

// FetchSnapshot opens a dedicated connection to addr and retrieves the
// server's full state as one consistent snapshot. A dedicated connection
// because the chunk frames carry no request id: the snapshot must be the
// connection's sole in-flight request, which a pipelined Client cannot
// guarantee.
func FetchSnapshot(ctx context.Context, addr string) (*snap.Snapshot, error) {
	d := net.Dialer{}
	nc, err := d.DialContext(ctx, "tcp", addr)
	if err != nil {
		return nil, err
	}
	defer nc.Close()
	dl, ok := ctx.Deadline()
	if !ok {
		dl = time.Now().Add(30 * time.Second)
	}
	if err := nc.SetDeadline(dl); err != nil {
		return nil, err
	}
	fr := &frameReader{r: bufio.NewReaderSize(nc, 1<<16)}
	if _, err := nc.Write(AppendClientHello(nil, &ClientHello{
		Version:  ProtocolVersion,
		Features: FeatureSnapshot,
	})); err != nil {
		return nil, err
	}
	payload, err := fr.next()
	if err != nil {
		return nil, err
	}
	sh, err := DecodeServerHello(payload)
	if err != nil {
		if resp, derr := DecodeResponse(payload); derr == nil {
			return nil, fmt.Errorf("server: snapshot hello rejected: %s", resp.Message)
		}
		return nil, err
	}
	if sh.Features&FeatureSnapshot == 0 {
		return nil, ErrNoSnapshot
	}
	if _, err := nc.Write(AppendRequest(nil, &Request{ID: 1, Op: OpSnapshot})); err != nil {
		return nil, err
	}
	payload, err = fr.next()
	if err != nil {
		return nil, err
	}
	resp, err := DecodeResponse(payload)
	if err != nil {
		return nil, err
	}
	if resp.Status != StatusOK {
		return nil, fmt.Errorf("server: snapshot rejected: %v %s", resp.Status, resp.Message)
	}
	r := snap.NewReader()
	for {
		payload, err := fr.next()
		if err != nil {
			return nil, err
		}
		if !snap.IsChunk(payload) {
			return nil, errors.New("server: non-chunk frame inside a snapshot stream")
		}
		done, err := r.Feed(payload)
		if err != nil {
			return nil, err
		}
		if done {
			return r.Snapshot()
		}
	}
}

// swapTopology quiesces admission and installs nt as the live generation
// (see swapTopologyLocked). The caller has already migrated state into nt.
func (s *Server) swapTopology(nt *topology) error {
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return errors.New("server: topology swap on a draining server")
	}
	s.tasksWG.Wait()
	s.swapTopologyLocked(nt)
	return nil
}

// swapTopologyLocked retires the live generation and installs nt: close
// the old queues (empty — admission is quiesced and accepted tasks have
// drained), retire the old worker pools, swap the pointer, attach the new
// metric blocks, and start the new pools. Caller holds drainMu
// exclusively with tasksWG drained.
func (s *Server) swapTopologyLocked(nt *topology) {
	old := s.top()
	if s.started {
		for _, sh := range old.shards {
			close(sh.queue)
		}
		close(old.slowQueue)
		s.workersWG.Wait()
	}
	s.topo.Store(nt)
	s.metrics.attach(nt.shardMetrics())
	if s.started {
		s.startWorkers(nt)
	}
}

// Reshard rebuilds the serving plane at n shards while the server stays
// up: admission quiesces under the drain lock, accepted tasks finish, the
// full state is captured in one gate-held cut, a fresh generation is
// built and restored from it, and the topology pointer swaps. Clients
// stall for the busy window rather than erroring (admission blocks on the
// lock, it is never refused). The replication log is untouched: entries
// carry global keys, not shard ids, so the sequence runs straight through
// the swap and replicas replay it against their own shard count.
func (s *Server) Reshard(n int) error {
	if n < 1 {
		return fmt.Errorf("server: reshard to %d shards", n)
	}
	if r := s.repl; r != nil && !r.primary() {
		return errors.New("server: reshard on a replica (reshard the primary; replicas rebuild from its snapshots)")
	}
	// Build the new generation before quiescing anything: construction is
	// the slow part, and a build error must leave the server untouched.
	nt, err := s.buildTopology(n)
	if err != nil {
		return err
	}
	s.drainMu.Lock()
	defer s.drainMu.Unlock()
	if s.draining {
		return errors.New("server: reshard on a draining server")
	}
	s.tasksWG.Wait()
	sn := s.captureTopology(s.top())
	if err := s.restoreTopology(nt, sn); err != nil {
		// The old generation was only read; it keeps serving.
		return err
	}
	s.swapTopologyLocked(nt)
	return nil
}

// Compact writes the current state to the snapshot file and truncates the
// replication log below the durable snapshot's sequence — bounded by the
// slowest live subscriber's acknowledgement, so no follower's pending
// suffix is yanked out from under its stream. Returns the log's new
// floor.
func (s *Server) Compact() (uint64, error) {
	r := s.repl
	if r == nil {
		return 0, errors.New("server: compaction without replication enabled")
	}
	if s.cfg.SnapFile == "" {
		return 0, errors.New("server: compaction needs Config.SnapFile; the truncated log prefix must survive somewhere")
	}
	sn, err := s.CaptureSnapshot()
	if err != nil {
		return 0, err
	}
	if err := snap.WriteFile(s.cfg.SnapFile, sn); err != nil {
		return 0, err
	}
	// Truncate under the subscriber lock: a subscriber registering
	// concurrently either lands before (its ack floor bounds the cut) or
	// after (it observes the raised floor and takes the bootstrap path) —
	// never between, where its stream start could silently vanish.
	below := sn.Seq
	r.mu.Lock()
	if len(r.subs) > 0 {
		if ma := r.minAckedLocked(); ma < below {
			below = ma
		}
	}
	terr := r.log.TruncateBelow(below)
	r.mu.Unlock()
	if terr != nil {
		return 0, terr
	}
	return r.log.Floor(), nil
}

// runCompactor auto-compacts whenever the log accumulates
// Config.CompactEvery entries above its floor. It watches the log's
// append notifications, so an idle server never wakes.
func (s *Server) runCompactor() {
	defer close(s.compactDone)
	r := s.repl
	notify := r.log.Subscribe()
	defer r.log.Unsubscribe(notify)
	for {
		select {
		case <-s.compactStop:
			return
		case <-notify:
		}
		if st := r.log.LogStats(); st.Entries < s.cfg.CompactEvery {
			continue
		}
		if _, err := s.Compact(); err != nil {
			// Draining, or the snapshot file's disk went bad: stop rather
			// than spin. The admin compact endpoint still works and will
			// surface the error.
			return
		}
	}
}
