package server

import (
	"fmt"
	"sync"
	"sync/atomic"

	"rtle/internal/repl"
)

// Replication roles. The role flips exactly once in a server's life —
// replica to primary at Promote — so a relaxed atomic read suffices on the
// admission path.
const (
	rolePrimary int32 = iota
	roleReplica
)

// replication is a server's replication state: the ordered block log, the
// live stream subscribers with their cumulative acknowledgements, and the
// sync-ack rendezvous. A primary appends every committed mutating block
// and streams the log to subscribers; a replica mirrors the primary's log
// and applies it through the same per-shard machinery that produced it.
//
// Soundness rests on one invariant, log order equals gate order: an
// entry's sequence number is assigned while the commit still holds its
// shard gate(s), so replaying entries in sequence order reproduces exactly
// the state the primary's clients observed. Fast-path commits serialize
// their append with a per-shard logMu held around the gate region
// (commits on different shards are independent and stay concurrent);
// slow-path commits append inside their exclusively held gates.
type replication struct {
	log     *repl.Log
	syncAck bool // hold client replies until every live subscriber acked

	// role is rolePrimary or roleReplica.
	role atomic.Int32

	// primaryAddr is the upstream address a replica follows ("" on a
	// born-primary server).
	primaryAddr string

	// mu guards subs and maxAcked; cond broadcasts on every ack and on
	// subscriber departure so sync-mode waiters re-evaluate.
	mu       sync.Mutex
	cond     *sync.Cond
	subs     map[*replSub]struct{}
	maxAcked uint64 // lowest cumulative ack across live subscribers
	// closing abandons sync-ack waiters during teardown: their held
	// responses are dropped, never released (see waitAcked).
	closing bool

	// waiters is the live sync-ack wait depth (a gauge, not a counter).
	waiters atomic.Int64
	// degraded counts sync-mode commits released without a live
	// subscriber: the primary kept serving, but those commits were
	// acknowledged on one copy only.
	degraded atomic.Uint64

	// appliedSeq is the latest entry applied to this server's ADT state —
	// meaningful on a replica (and after boot replay on a primary).
	appliedSeq atomic.Uint64

	// sessions counts replica stream (re)connections, for observability.
	sessions atomic.Uint64

	// Replica runner lifecycle: stop interrupts the dial/follow loop,
	// runnerDone closes when it exits (started reports whether Listen ever
	// launched it). connMu guards nc, the live upstream connection, so
	// Promote and Close can sever a blocked read.
	stop       chan struct{}
	stopOnce   sync.Once
	started    atomic.Bool
	runnerDone chan struct{}
	connMu     sync.Mutex
	nc         interface{ Close() error }
}

// replSub is one live stream subscriber.
type replSub struct {
	acked uint64        // cumulative ack, guarded by replication.mu
	dead  chan struct{} // closed when the subscriber's connection dies
}

// newReplication builds the state for a server whose Config enabled
// replication.
func newReplication(log *repl.Log, syncAck bool, primaryAddr string) *replication {
	r := &replication{
		log:         log,
		syncAck:     syncAck,
		primaryAddr: primaryAddr,
		subs:        make(map[*replSub]struct{}),
		stop:        make(chan struct{}),
		runnerDone:  make(chan struct{}),
	}
	r.cond = sync.NewCond(&r.mu)
	if primaryAddr != "" {
		r.role.Store(roleReplica)
	}
	return r
}

// primary reports whether this server currently accepts writes.
func (r *replication) primary() bool { return r.role.Load() == rolePrimary }

// append assigns sequence numbers to one committed block's mutating
// operations, chunked by the log's entry bound (a coalesced group may
// exceed it), and returns the last sequence — the commit's sync barrier.
// Called while the commit still holds its shard gate(s).
//
//rtle:gated
func (r *replication) append(ops []repl.Op) uint64 {
	var last uint64
	for len(ops) > 0 {
		n := len(ops)
		if n > repl.MaxOps {
			n = repl.MaxOps
		}
		last = r.log.Append(ops[:n])
		ops = ops[n:]
	}
	return last
}

// waitAcked blocks until every live subscriber has acknowledged through
// seq — the sync ack mode's client-reply barrier. With no live subscriber
// the commit releases immediately and is counted degraded: stalling every
// client on a dead replica would turn one failure into total unavailability,
// which is the wrong trade for a two-node setup (the operator sees the
// counter and the lag gauge instead). In async mode it returns immediately.
// A false return means the wait was abandoned because the server is
// closing: the caller must drop the response, not send it.
func (r *replication) waitAcked(seq uint64) bool {
	if !r.syncAck || seq == 0 {
		return true
	}
	r.waiters.Add(1)
	defer r.waiters.Add(-1)
	r.mu.Lock()
	defer r.mu.Unlock()
	for {
		// Closing wins over every release path. Close severs the
		// subscriber connection before the client connections finish
		// closing, so a waiter released by that removeSub could still
		// win the race to a live client socket — handing the client an
		// acknowledgement for a write no surviving replica has. Dropping
		// the response instead makes the client see the dying connection
		// and record the operation as pending, which the checker can
		// explain either way.
		if r.closing {
			return false
		}
		if r.maxAcked >= seq {
			return true
		}
		if len(r.subs) == 0 {
			r.degraded.Add(1)
			return true
		}
		r.cond.Wait()
	}
}

// markClosing abandons every sync-ack waiter, current and future; their
// held responses are dropped rather than released. Must be called before
// the teardown that severs subscriber connections.
func (r *replication) markClosing() {
	r.mu.Lock()
	r.closing = true
	r.mu.Unlock()
	r.cond.Broadcast()
}

// minAckedLocked recomputes the lowest cumulative ack across live
// subscribers. Called with mu held.
func (r *replication) minAckedLocked() uint64 {
	if len(r.subs) == 0 {
		// No subscribers: the floor stays where the last ack left it, so
		// blocked waiters release through the counted degraded path in
		// waitAcked instead of silently, and the acked-seq gauge reports
		// real acknowledgements rather than the log head.
		return r.maxAcked
	}
	min := ^uint64(0)
	for s := range r.subs {
		if s.acked < min {
			min = s.acked
		}
	}
	return min
}

// minAcked returns the lowest cumulative ack (the acked-seq gauge).
func (r *replication) minAcked() uint64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.minAckedLocked()
}

// subscriberCount returns the live subscriber count.
func (r *replication) subscriberCount() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return len(r.subs)
}

// addSub registers a live subscriber whose stream starts at first (it has
// acknowledged everything before it).
func (r *replication) addSub(first uint64) *replSub {
	sub := &replSub{dead: make(chan struct{})}
	if first > 0 {
		sub.acked = first - 1
	}
	r.mu.Lock()
	r.subs[sub] = struct{}{}
	r.maxAcked = r.minAckedLocked()
	r.mu.Unlock()
	r.cond.Broadcast()
	return sub
}

// removeSub drops a departed subscriber and re-derives the ack floor —
// waiters blocked on the departed subscriber must re-evaluate (and possibly
// release degraded).
func (r *replication) removeSub(sub *replSub) {
	r.mu.Lock()
	delete(r.subs, sub)
	r.maxAcked = r.minAckedLocked()
	r.mu.Unlock()
	r.cond.Broadcast()
}

// ack records a subscriber's cumulative acknowledgement through seq.
func (r *replication) ack(sub *replSub, seq uint64) {
	r.mu.Lock()
	if seq > sub.acked {
		sub.acked = seq
	}
	r.maxAcked = r.minAckedLocked()
	r.mu.Unlock()
	r.cond.Broadcast()
}

// setConn publishes the replica's live upstream connection so Promote and
// Close can sever a blocked read.
func (r *replication) setConn(nc interface{ Close() error }) {
	r.connMu.Lock()
	r.nc = nc
	r.connMu.Unlock()
}

// closeConn severs the live upstream connection, if any.
func (r *replication) closeConn() {
	r.connMu.Lock()
	nc := r.nc
	r.connMu.Unlock()
	if nc != nil {
		_ = nc.Close() // severing a dead conn twice is harmless
	}
}

// shutdownRunner stops the replica dial/follow loop and waits for it.
// Idempotent; a no-op when the runner never started (a born-primary
// server, or Close before Listen).
func (r *replication) shutdownRunner() {
	r.stopOnce.Do(func() { close(r.stop) })
	r.closeConn()
	if r.started.Load() {
		<-r.runnerDone
	}
}

// replGroupOps converts a fast-path group's mutating operations to log
// ops. Reads are stripped: they do not change state, so replaying without
// them reproduces the same history. A nil return means nothing to log.
func replGroupOps(buf []repl.Op, group []*task) []repl.Op {
	buf = buf[:0]
	for _, t := range group {
		if IsRead(t.req.Op) {
			continue
		}
		buf = append(buf, repl.Op{
			Code: uint8(t.req.Op), Arg1: t.req.Arg1, Arg2: t.req.Arg2, Arg3: t.req.Arg3,
		})
	}
	if len(buf) == 0 {
		return nil
	}
	return buf
}

// replBatchOps converts a batch's mutating entries to log ops (see
// replGroupOps).
func replBatchOps(buf []repl.Op, entries []BatchEntry) []repl.Op {
	buf = buf[:0]
	for i := range entries {
		e := &entries[i]
		if IsRead(e.Op) {
			continue
		}
		buf = append(buf, repl.Op{
			Code: uint8(e.Op), Arg1: e.Arg1, Arg2: e.Arg2, Arg3: e.Arg3,
		})
	}
	if len(buf) == 0 {
		return nil
	}
	return buf
}

// serveSubscriber converts one connection into a replication stream: it
// answers the OpReplSubscribe request, then runs two loops — a streamer
// goroutine pushing log entries from the requested sequence, and this
// (the read) loop consuming cumulative acks. It returns when the
// connection dies; readLoop stops decoding requests afterwards. The
// stream setup is once-per-subscriber: cold from readLoop's perspective.
//
//rtle:coldpath
func (s *Server) serveSubscriber(c *conn, fr *frameReader, req Request) {
	r := s.repl
	if r == nil {
		s.reject(c, req.ID, StatusBad, "replication is not enabled on this server")
		return
	}
	first := req.Arg1
	if first == 0 {
		first = 1
	}
	if hw := r.log.HighWater(); first > hw+1 {
		s.reject(c, req.ID, StatusBad, "subscribe sequence is past the log high-water mark")
		return
	}
	bootstrap := false
	if floor := r.log.Floor(); first <= floor {
		// The requested suffix was compacted away. A snapshot-capable
		// subscriber bootstraps from the live state instead of erroring;
		// an older subscriber gets told why it cannot follow.
		if c.features&FeatureSnapshot == 0 {
			s.reject(c, req.ID, StatusBad, fmt.Sprintf(
				"subscribe sequence %d was compacted away (log floor %d) and the subscriber did not declare snapshot support", first, floor))
			return
		}
		bootstrap = true
	}
	s.metrics.statuses[StatusOK].Add(1)
	ok := getFrame()
	ok.b = AppendResponse(ok.b, &Response{ID: req.ID, Status: StatusOK})
	c.send(ok)

	sub := r.addSub(first)
	defer r.removeSub(sub)

	// Registration closes the compaction race: Compact bounds its cut by
	// the live ack floor, which now includes this subscriber at first-1,
	// so the log floor can no longer reach first. Re-check for a
	// compaction that won the race before registration.
	if !bootstrap && r.log.Floor() >= first {
		if c.features&FeatureSnapshot == 0 {
			_ = c.nc.Close() // its reconnect lands on the clean rejection above
			return
		}
		bootstrap = true
	}
	start := first
	if bootstrap {
		sn, err := s.CaptureSnapshot()
		if err != nil {
			_ = c.nc.Close() // draining; nothing to stream
			return
		}
		s.sendSnapshot(c, sn)
		start = sn.Seq + 1
	}

	// The streamer sends via c.send like any worker; c.tasks keeps c.out
	// open until it exits, and writeLoop's dead-drain keeps c.send from
	// blocking on a dead peer.
	c.tasks.Add(1)
	done := make(chan struct{})
	go func() {
		defer c.tasks.Done()
		defer close(done)
		s.streamEntries(c, sub, start)
	}()

	for {
		payload, err := fr.next()
		if err != nil {
			break // EOF or reset: the subscriber is gone
		}
		seq, err := repl.DecodeAckPayload(payload)
		if err != nil {
			break // a desynchronized subscriber cannot be resynced
		}
		r.ack(sub, seq)
	}
	close(sub.dead)
	_ = c.nc.Close() // unblock the streamer's sends and our own teardown
	<-done
}

// streamEntries pushes log entries to one subscriber, from sequence
// `next`, until its connection dies.
func (s *Server) streamEntries(c *conn, sub *replSub, next uint64) {
	r := s.repl
	notify := r.log.Subscribe()
	defer r.log.Unsubscribe(notify)
	for {
		select {
		case <-sub.dead:
			return // stop pushing even if the log keeps growing
		default:
		}
		entries := r.log.From(next, 256)
		if len(entries) == 0 {
			select {
			case <-notify:
				continue
			case <-sub.dead:
				return
			}
		}
		for i := range entries {
			f := getFrame()
			f.b = AppendReplEntry(f.b, &entries[i])
			c.send(f)
		}
		next = entries[len(entries)-1].Seq + 1
	}
}

// ReplStats is a point-in-time replication snapshot, for dashboards and
// the bench sweep (the same numbers /metrics exposes as gauges).
type ReplStats struct {
	// Role is "primary" or "replica".
	Role string
	// LogSeq is the log high-water mark (latest appended entry).
	LogSeq uint64
	// AckedSeq is the lowest cumulative acknowledgement across live
	// subscribers (LogSeq with none).
	AckedSeq uint64
	// AppliedSeq is the latest entry applied to this server's ADT.
	AppliedSeq uint64
	// Subscribers is the live replication stream subscriber count.
	Subscribers int
	// SyncDegraded counts sync-mode commits released without a live
	// subscriber.
	SyncDegraded uint64
}

// ReplStats reports the replication snapshot; ok is false when
// replication is not enabled.
func (s *Server) ReplStats() (stats ReplStats, ok bool) {
	r := s.repl
	if r == nil {
		return ReplStats{}, false
	}
	role := "primary"
	if r.role.Load() == roleReplica {
		role = "replica"
	}
	return ReplStats{
		Role:         role,
		LogSeq:       r.log.HighWater(),
		AckedSeq:     r.minAcked(),
		AppliedSeq:   r.appliedSeq.Load(),
		Subscribers:  r.subscriberCount(),
		SyncDegraded: r.degraded.Load(),
	}, true
}
