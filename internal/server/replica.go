package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"rtle/internal/repl"
	"rtle/internal/snap"
)

// runReplica is the replica's dial/follow loop: connect to the primary,
// subscribe from our own high-water mark, mirror and apply the stream, and
// on any failure back off and reconnect — the primary being briefly down
// must not kill the replica that is about to replace it. It exits when the
// replication stop channel closes (promotion or shutdown).
func (s *Server) runReplica() {
	r := s.repl
	defer close(r.runnerDone)
	backoff := 50 * time.Millisecond
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		nc, fr, err := s.dialPrimary()
		if err != nil {
			select {
			case <-r.stop:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			continue
		}
		backoff = 50 * time.Millisecond
		r.sessions.Add(1)
		s.followStream(nc, fr)
		_ = nc.Close() // followStream may have exited with the conn alive
	}
}

// dialPrimary opens one subscribed replication stream: TCP dial, hello
// exchange declaring FeatureReplicated, and an OpReplSubscribe for the
// suffix this replica is missing. The handshake runs under a deadline so a
// hung primary cannot wedge the loop; the deadline is cleared before the
// open-ended stream phase.
func (s *Server) dialPrimary() (net.Conn, *frameReader, error) {
	r := s.repl
	nc, err := net.DialTimeout("tcp", r.primaryAddr, 2*time.Second)
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (net.Conn, *frameReader, error) {
		_ = nc.Close() // the handshake failed; nothing to keep
		return nil, nil, err
	}
	if err := nc.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		return fail(err)
	}
	fr := &frameReader{r: bufio.NewReaderSize(nc, 1<<16)}
	if _, err := nc.Write(AppendClientHello(nil, &ClientHello{
		Version:  ProtocolVersion,
		Features: FeatureReplicated | FeatureSnapshot,
	})); err != nil {
		return fail(err)
	}
	payload, err := fr.next()
	if err != nil {
		return fail(err)
	}
	sh, err := DecodeServerHello(payload)
	if err != nil {
		// The primary answers a bad hello with a StatusBad response frame;
		// surface its message rather than the magic mismatch.
		if resp, derr := DecodeResponse(payload); derr == nil {
			return fail(fmt.Errorf("repl: primary rejected hello: %s", resp.Message))
		}
		return fail(err)
	}
	if sh.Features&FeatureReplicated == 0 {
		return fail(errors.New("repl: upstream server does not replicate (missing FeatureReplicated)"))
	}
	if _, err := nc.Write(AppendRequest(nil, &Request{
		ID: 1, Op: OpReplSubscribe, Arg1: r.log.HighWater() + 1,
	})); err != nil {
		return fail(err)
	}
	payload, err = fr.next()
	if err != nil {
		return fail(err)
	}
	resp, err := DecodeResponse(payload)
	if err != nil {
		return fail(err)
	}
	if resp.Status != StatusOK {
		return fail(fmt.Errorf("repl: subscribe rejected: %v %s", resp.Status, resp.Message))
	}
	if err := nc.SetDeadline(time.Time{}); err != nil {
		return fail(err)
	}
	return nc, fr, nil
}

// followStream consumes one subscribed stream: decode each entry, mirror
// it into the log, apply it through the shard machinery, and acknowledge.
// It returns on any error; the caller reconnects and resubscribes from the
// new high-water mark. Duplicates below the high-water mark are skipped
// (a resubscribe race replays a suffix), a gap means the stream
// desynchronized.
//
// A primary whose log no longer holds the requested suffix (compaction)
// streams a snapshot first, as snap chunks interleaved nowhere — the
// chunks arrive before any entry — then the log tail above the snapshot's
// sequence. The replica rebuilds its shard state from the snapshot and
// resets its own log to the snapshot's sequence, so the tail mirrors
// contiguously.
func (s *Server) followStream(nc net.Conn, fr *frameReader) {
	r := s.repl
	r.setConn(nc)
	defer r.setConn(nil)
	bw := bufio.NewWriterSize(nc, 1<<12)
	br, _ := fr.r.(*bufio.Reader)
	var sr *snap.Reader
	for {
		payload, err := fr.next()
		if err != nil {
			return
		}
		if snap.IsChunk(payload) {
			if sr == nil {
				sr = snap.NewReader()
			}
			done, err := sr.Feed(payload)
			if err != nil {
				return
			}
			if !done {
				continue
			}
			sn, err := sr.Snapshot()
			if err != nil {
				return
			}
			sr = nil
			if err := s.bootstrapFromSnapshot(sn); err != nil {
				return
			}
			_, _ = bw.Write(AppendReplAck(nil, sn.Seq))
			if err := bw.Flush(); err != nil {
				return
			}
			continue
		}
		e, err := repl.DecodeEntryPayload(payload)
		if err != nil {
			return
		}
		hw := r.log.HighWater()
		if e.Seq <= hw {
			continue // duplicate from a resubscribe race
		}
		if e.Seq != hw+1 {
			return // gap: resubscribe from our own high-water mark
		}
		if err := s.applyEntry(&e, true); err != nil {
			// An entry the shard contract rejects can only mean version or
			// config skew with the primary; applying it would fork state.
			return
		}
		_, _ = bw.Write(AppendReplAck(nil, e.Seq)) // error surfaces at Flush
		// Flush when the read buffer is momentarily empty: a catch-up burst
		// acks once per buffered batch, a live tail acks per entry.
		if br == nil || br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// bootstrapFromSnapshot replaces this replica's entire state with a
// snapshot streamed by the primary: build a fresh generation at the
// current shard count, restore into it, swap it live, and reset the local
// log to the snapshot's sequence so the tail that follows mirrors
// contiguously. The discarded generation held only state the snapshot
// subsumes.
func (s *Server) bootstrapFromSnapshot(sn *snap.Snapshot) error {
	r := s.repl
	nt, err := s.buildTopology(len(s.top().shards))
	if err != nil {
		return err
	}
	if err := s.restoreTopology(nt, sn); err != nil {
		return err
	}
	if err := s.swapTopology(nt); err != nil {
		return err
	}
	if err := r.log.ResetTo(sn.Seq); err != nil {
		return err
	}
	r.appliedSeq.Store(sn.Seq)
	return nil
}

// applyEntry validates one log entry against the serving contract and
// replays it through the cross-shard machinery, under the involved
// shards' exclusive gates — the replica-side mirror of runSlowBatch,
// which makes replay serialization a superset of the primary's: whatever
// interleaving produced the block, executing it alone under exclusive
// gates reproduces its effect. Validation first: the entry came off the
// network, and the shard executors trust their inputs.
//
// With mirror set (the replica stream path), the local log append and the
// applied-cursor advance happen inside the same gate region, so the shard
// state, the mirrored log, and the cursor always agree — the consistency
// a snapshot captured on this server rests on.
func (s *Server) applyEntry(e *repl.Entry, mirror bool) error {
	entries := make([]BatchEntry, len(e.Ops))
	for i, op := range e.Ops {
		entries[i] = BatchEntry{Op: Op(op.Code), Arg1: op.Arg1, Arg2: op.Arg2, Arg3: op.Arg3}
	}
	req := Request{Op: OpBatch, Batch: entries}
	if err := s.validate(&req); err != nil {
		return fmt.Errorf("repl: entry %d: %w", e.Seq, err)
	}
	// The admission lock pins the topology: a concurrent admin reshard
	// waits for this apply, and this apply never straddles a swap.
	s.drainMu.RLock()
	tp := s.top()
	spans := tp.router.batchSpans(entries)
	results := make([]Result, len(entries))
	var merr error
	tp.lockSpans(spans)
	s.execEntriesLocked(tp, entries, results)
	if mirror {
		r := s.repl
		if merr = r.log.AppendEntry(*e); merr == nil {
			r.appliedSeq.Store(e.Seq)
		}
	}
	tp.unlockSpans(spans)
	s.drainMu.RUnlock()
	return merr
}

// replayLog replays the log's entries above seq `from` through the shard
// machinery — the warm-boot path, before any worker or connection exists
// (from is the restored snapshot's sequence, or zero on a snapshot-less
// boot). Invalid entries abort the boot: serving on top of a half-applied
// log would fork state.
func (s *Server) replayLog(from uint64) error {
	r := s.repl
	seq := from
	for {
		entries := r.log.From(seq+1, 256)
		if len(entries) == 0 {
			r.appliedSeq.Store(seq)
			return nil
		}
		for i := range entries {
			if err := s.applyEntry(&entries[i], false); err != nil {
				return err
			}
			seq = entries[i].Seq
		}
	}
}

// Promote flips a replica into the primary role: stop following the old
// primary, finish applying what already arrived, and accept writes from
// the log's high-water mark. Acknowledged writes the old primary streamed
// before dying are applied (that is the sync-ack guarantee); writes it
// never streamed die with it, which is exactly what "unacknowledged" means
// to a client. Returns the sequence the new primary starts from.
func (s *Server) Promote(ctx context.Context) (uint64, error) {
	r := s.repl
	if r == nil {
		return 0, errors.New("server: Promote without replication enabled")
	}
	if r.role.Load() != roleReplica {
		return 0, errors.New("server: Promote on a server that is already primary")
	}
	r.shutdownRunner()
	select {
	case <-ctx.Done():
		return 0, ctx.Err()
	default:
	}
	r.role.Store(rolePrimary)
	return r.log.HighWater(), nil
}
