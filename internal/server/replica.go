package server

import (
	"bufio"
	"context"
	"errors"
	"fmt"
	"net"
	"time"

	"rtle/internal/repl"
)

// runReplica is the replica's dial/follow loop: connect to the primary,
// subscribe from our own high-water mark, mirror and apply the stream, and
// on any failure back off and reconnect — the primary being briefly down
// must not kill the replica that is about to replace it. It exits when the
// replication stop channel closes (promotion or shutdown).
func (s *Server) runReplica() {
	r := s.repl
	defer close(r.runnerDone)
	backoff := 50 * time.Millisecond
	for {
		select {
		case <-r.stop:
			return
		default:
		}
		nc, fr, err := s.dialPrimary()
		if err != nil {
			select {
			case <-r.stop:
				return
			case <-time.After(backoff):
			}
			if backoff *= 2; backoff > 2*time.Second {
				backoff = 2 * time.Second
			}
			continue
		}
		backoff = 50 * time.Millisecond
		r.sessions.Add(1)
		s.followStream(nc, fr)
		_ = nc.Close() // followStream may have exited with the conn alive
	}
}

// dialPrimary opens one subscribed replication stream: TCP dial, hello
// exchange declaring FeatureReplicated, and an OpReplSubscribe for the
// suffix this replica is missing. The handshake runs under a deadline so a
// hung primary cannot wedge the loop; the deadline is cleared before the
// open-ended stream phase.
func (s *Server) dialPrimary() (net.Conn, *frameReader, error) {
	r := s.repl
	nc, err := net.DialTimeout("tcp", r.primaryAddr, 2*time.Second)
	if err != nil {
		return nil, nil, err
	}
	fail := func(err error) (net.Conn, *frameReader, error) {
		_ = nc.Close() // the handshake failed; nothing to keep
		return nil, nil, err
	}
	if err := nc.SetDeadline(time.Now().Add(5 * time.Second)); err != nil {
		return fail(err)
	}
	fr := &frameReader{r: bufio.NewReaderSize(nc, 1<<16)}
	if _, err := nc.Write(AppendClientHello(nil, &ClientHello{
		Version:  ProtocolVersion,
		Features: FeatureReplicated,
	})); err != nil {
		return fail(err)
	}
	payload, err := fr.next()
	if err != nil {
		return fail(err)
	}
	sh, err := DecodeServerHello(payload)
	if err != nil {
		// The primary answers a bad hello with a StatusBad response frame;
		// surface its message rather than the magic mismatch.
		if resp, derr := DecodeResponse(payload); derr == nil {
			return fail(fmt.Errorf("repl: primary rejected hello: %s", resp.Message))
		}
		return fail(err)
	}
	if sh.Features&FeatureReplicated == 0 {
		return fail(errors.New("repl: upstream server does not replicate (missing FeatureReplicated)"))
	}
	if _, err := nc.Write(AppendRequest(nil, &Request{
		ID: 1, Op: OpReplSubscribe, Arg1: r.log.HighWater() + 1,
	})); err != nil {
		return fail(err)
	}
	payload, err = fr.next()
	if err != nil {
		return fail(err)
	}
	resp, err := DecodeResponse(payload)
	if err != nil {
		return fail(err)
	}
	if resp.Status != StatusOK {
		return fail(fmt.Errorf("repl: subscribe rejected: %v %s", resp.Status, resp.Message))
	}
	if err := nc.SetDeadline(time.Time{}); err != nil {
		return fail(err)
	}
	return nc, fr, nil
}

// followStream consumes one subscribed stream: decode each entry, mirror
// it into the log, apply it through the shard machinery, and acknowledge.
// It returns on any error; the caller reconnects and resubscribes from the
// new high-water mark. Duplicates below the high-water mark are skipped
// (a resubscribe race replays a suffix), a gap means the stream
// desynchronized.
func (s *Server) followStream(nc net.Conn, fr *frameReader) {
	r := s.repl
	r.setConn(nc)
	defer r.setConn(nil)
	bw := bufio.NewWriterSize(nc, 1<<12)
	br, _ := fr.r.(*bufio.Reader)
	for {
		payload, err := fr.next()
		if err != nil {
			return
		}
		e, err := repl.DecodeEntryPayload(payload)
		if err != nil {
			return
		}
		hw := r.log.HighWater()
		if e.Seq <= hw {
			continue // duplicate from a resubscribe race
		}
		if e.Seq != hw+1 {
			return // gap: resubscribe from our own high-water mark
		}
		if err := s.applyEntry(&e); err != nil {
			// An entry the shard contract rejects can only mean version or
			// config skew with the primary; applying it would fork state.
			return
		}
		if err := r.log.AppendEntry(e); err != nil {
			return
		}
		r.appliedSeq.Store(e.Seq)
		_, _ = bw.Write(AppendReplAck(nil, e.Seq)) // error surfaces at Flush
		// Flush when the read buffer is momentarily empty: a catch-up burst
		// acks once per buffered batch, a live tail acks per entry.
		if br == nil || br.Buffered() == 0 {
			if err := bw.Flush(); err != nil {
				return
			}
		}
	}
}

// applyEntry validates one log entry against the serving contract and
// replays it through the cross-shard machinery. Validation first: the
// entry came off the network, and the shard executors trust their inputs.
func (s *Server) applyEntry(e *repl.Entry) error {
	entries := make([]BatchEntry, len(e.Ops))
	for i, op := range e.Ops {
		entries[i] = BatchEntry{Op: Op(op.Code), Arg1: op.Arg1, Arg2: op.Arg2, Arg3: op.Arg3}
	}
	req := Request{Op: OpBatch, Batch: entries}
	if err := s.validate(&req); err != nil {
		return fmt.Errorf("repl: entry %d: %w", e.Seq, err)
	}
	s.applyBlock(entries)
	return nil
}

// applyBlock replays one block's operations under the involved shards'
// exclusive gates, in entry order — the replica-side mirror of
// runSlowBatch, which makes replay serialization a superset of the
// primary's: whatever interleaving produced the block, executing it alone
// under exclusive gates reproduces its effect.
func (s *Server) applyBlock(entries []BatchEntry) {
	spans := s.router.batchSpans(entries)
	results := make([]Result, len(entries))
	s.lockSpans(spans)
	s.execEntriesLocked(entries, results)
	s.unlockSpans(spans)
}

// replayLog replays the log's entries through the shard machinery — the
// warm-boot path, before any worker or connection exists. Invalid entries
// abort the boot: serving on top of a half-applied log would fork state.
func (s *Server) replayLog() error {
	r := s.repl
	var seq uint64
	for {
		entries := r.log.From(seq+1, 256)
		if len(entries) == 0 {
			r.appliedSeq.Store(seq)
			return nil
		}
		for i := range entries {
			if err := s.applyEntry(&entries[i]); err != nil {
				return err
			}
			seq = entries[i].Seq
		}
	}
}

// Promote flips a replica into the primary role: stop following the old
// primary, finish applying what already arrived, and accept writes from
// the log's high-water mark. Acknowledged writes the old primary streamed
// before dying are applied (that is the sync-ack guarantee); writes it
// never streamed die with it, which is exactly what "unacknowledged" means
// to a client. Returns the sequence the new primary starts from.
func (s *Server) Promote(ctx context.Context) (uint64, error) {
	r := s.repl
	if r == nil {
		return 0, errors.New("server: Promote without replication enabled")
	}
	if r.role.Load() != roleReplica {
		return 0, errors.New("server: Promote on a server that is already primary")
	}
	r.shutdownRunner()
	select {
	case <-ctx.Done():
		return 0, ctx.Err()
	default:
	}
	r.role.Store(rolePrimary)
	return r.log.HighWater(), nil
}
