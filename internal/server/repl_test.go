package server

import (
	"context"
	"fmt"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"rtle/internal/check"
	"rtle/internal/repl"
)

// bootRepl boots a server whose teardown tolerates an abrupt mid-test
// Close — startServer's cleanup insists on a clean Shutdown, which a
// deliberately killed primary cannot deliver.
func bootRepl(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	cfg.Addr = "127.0.0.1:0"
	srv, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }() // an abrupt Close makes Serve's error meaningless
	t.Cleanup(func() { _ = srv.Close() })
	return srv, addr.String()
}

// waitFor polls cond until it holds or the deadline passes.
func waitFor(t *testing.T, d time.Duration, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// caughtUp reports whether the replica has applied everything the
// primary has logged (and at least one entry, so an idle pair does not
// vacuously pass).
func caughtUp(primary, replica *Server) func() bool {
	return func() bool {
		hw := primary.repl.log.HighWater()
		return hw > 0 && replica.repl.appliedSeq.Load() >= hw
	}
}

// TestReplicaFollowsAndPromotes is the subsystem's core integration
// claim: a replica subscribed to a live primary converges to the same
// state, refuses writes while following, and serves the full history
// after promotion.
func TestReplicaFollowsAndPromotes(t *testing.T) {
	primary, pAddr := bootRepl(t, Config{Workload: "map", Keys: 64, Shards: 2, Repl: true})
	replica, rAddr := bootRepl(t, Config{Workload: "map", Keys: 64, Shards: 2, ReplicaOf: pAddr})

	c, err := Dial(pAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	const writes = 200
	for i := 0; i < writes; i++ {
		key := uint64(i % 64)
		if resp, err := c.Op(check.OpPut, key, uint64(1000+i), 0); err != nil || resp.Status != StatusOK {
			t.Fatalf("put %d: %v / %v", i, err, resp.Status)
		}
	}

	waitFor(t, 10*time.Second, "replica catch-up", caughtUp(primary, replica))

	// A following replica must reject mutations and reads alike — serving
	// reads from a lagging copy would break linearizability.
	rc, err := Dial(rAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	if resp, err := rc.Op(check.OpPut, 1, 1, 0); err != nil || resp.Status != StatusNotPrimary {
		t.Fatalf("replica answered write with %v / %v, want StatusNotPrimary", err, resp.Status)
	}
	if resp, err := rc.Op(check.OpGet, 1, 0, 0); err != nil || resp.Status != StatusNotPrimary {
		t.Fatalf("replica answered read with %v / %v, want StatusNotPrimary", err, resp.Status)
	}
	if err := rc.Ping(); err != nil {
		t.Fatalf("replica refused a ping: %v", err)
	}

	wantHW := primary.repl.log.HighWater()
	_ = primary.Close()
	seq, err := replica.Promote(context.Background())
	if err != nil {
		t.Fatalf("Promote: %v", err)
	}
	if seq != wantHW {
		t.Errorf("promoted at seq %d, primary logged %d", seq, wantHW)
	}
	if _, err := replica.Promote(context.Background()); err == nil {
		t.Error("second Promote succeeded")
	}

	// The promoted server must hold exactly the primary's final state.
	rc2, err := Dial(rAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer rc2.Close()
	for key := uint64(0); key < 64; key++ {
		// The last write to key k in the loop above was 1000 + the largest
		// i < writes with i % 64 == k.
		last := uint64(1000 + int(key) + 64*((writes-1-int(key))/64))
		resp, err := rc2.Op(check.OpGet, key, 0, 0)
		if err != nil || resp.Status != StatusOK {
			t.Fatalf("get %d after promote: %v / %v", key, err, resp.Status)
		}
		if !resp.Results[0].Ok || resp.Results[0].Ret != last {
			t.Fatalf("key %d = (%d,%v) after promote, want (%d,true)",
				key, resp.Results[0].Ret, resp.Results[0].Ok, last)
		}
	}
}

// TestSyncAckWaitsForReplica checks sync mode's commit barrier: with a
// live subscriber, a write releases only after the replica acknowledged
// its log entry, so acked tracks the high-water mark with no degraded
// releases.
func TestSyncAckWaitsForReplica(t *testing.T) {
	primary, pAddr := bootRepl(t, Config{Workload: "map", Keys: 32, ReplAck: "sync"})
	replica, _ := bootRepl(t, Config{Workload: "map", Keys: 32, ReplicaOf: pAddr})

	waitFor(t, 10*time.Second, "replica subscription", func() bool {
		primary.repl.mu.Lock()
		n := len(primary.repl.subs)
		primary.repl.mu.Unlock()
		return n == 1
	})

	c, err := Dial(pAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 50; i++ {
		if resp, err := c.Op(check.OpPut, uint64(i%32), uint64(i), 0); err != nil || resp.Status != StatusOK {
			t.Fatalf("put %d: %v / %v", i, err, resp.Status)
		}
	}

	hw := primary.repl.log.HighWater()
	if hw == 0 {
		t.Fatal("no log entries after 50 writes")
	}
	if acked := primary.repl.minAcked(); acked < hw {
		t.Errorf("sync mode released writes at acked %d < high water %d", acked, hw)
	}
	if d := primary.repl.degraded.Load(); d != 0 {
		t.Errorf("%d degraded releases with a live subscriber", d)
	}
	waitFor(t, 10*time.Second, "replica catch-up", caughtUp(primary, replica))
}

// TestSyncAckDegradedWithoutReplica checks sync mode's availability
// escape hatch: with no subscriber at all, commits release immediately
// and are counted degraded instead of stalling the server.
func TestSyncAckDegradedWithoutReplica(t *testing.T) {
	primary, pAddr := bootRepl(t, Config{Workload: "map", Keys: 32, ReplAck: "sync"})
	c, err := Dial(pAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	done := make(chan error, 1)
	go func() {
		resp, err := c.Op(check.OpPut, 1, 7, 0)
		if err == nil && resp.Status != StatusOK {
			err = fmt.Errorf("status %v", resp.Status)
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("degraded sync write failed: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("sync write with no subscriber stalled")
	}
	if primary.repl.degraded.Load() == 0 {
		t.Error("degraded counter did not record the unreplicated release")
	}
}

// TestWaitAckedReleasePaths pins the three ways a sync-ack wait ends:
// acknowledged (respond), no subscribers (respond, counted degraded),
// and teardown (false — the response must be discarded, because a waiter
// released by Close's subscriber teardown could otherwise race its held
// acknowledgement onto a client socket the close loop has not reached).
func TestWaitAckedReleasePaths(t *testing.T) {
	mklog := func() *repl.Log {
		l, err := repl.Open("")
		if err != nil {
			t.Fatal(err)
		}
		return l
	}

	// Acknowledged: a live subscriber acks through the sequence.
	r := newReplication(mklog(), true, "")
	seq := r.log.Append([]repl.Op{{Code: uint8(check.OpPut), Arg1: 1}})
	sub := r.addSub(1)
	released := make(chan bool, 1)
	go func() { released <- r.waitAcked(seq) }()
	r.ack(sub, seq)
	if ok := <-released; !ok {
		t.Error("acknowledged wait returned false")
	}
	if d := r.degraded.Load(); d != 0 {
		t.Errorf("acknowledged release counted degraded (%d)", d)
	}

	// Last subscriber departs without acking: released true, degraded.
	r = newReplication(mklog(), true, "")
	seq = r.log.Append([]repl.Op{{Code: uint8(check.OpPut), Arg1: 1}})
	sub = r.addSub(1)
	go func() { released <- r.waitAcked(seq) }()
	waitFor(t, 5*time.Second, "waiter parked", func() bool { return r.waiters.Load() == 1 })
	r.removeSub(sub)
	if ok := <-released; !ok {
		t.Error("degraded release returned false")
	}
	if d := r.degraded.Load(); d != 1 {
		t.Errorf("degraded releases = %d, want 1", d)
	}

	// Teardown: markClosing abandons the waiter with false, not degraded.
	r = newReplication(mklog(), true, "")
	seq = r.log.Append([]repl.Op{{Code: uint8(check.OpPut), Arg1: 1}})
	r.addSub(1)
	go func() { released <- r.waitAcked(seq) }()
	waitFor(t, 5*time.Second, "waiter parked", func() bool { return r.waiters.Load() == 1 })
	r.markClosing()
	if ok := <-released; ok {
		t.Error("teardown-released wait returned true; the held response would escape")
	}
	if d := r.degraded.Load(); d != 0 {
		t.Errorf("teardown release counted degraded (%d)", d)
	}
	// Closing wins over later release paths too.
	if r.waitAcked(seq) {
		t.Error("waitAcked after markClosing returned true")
	}
}

// TestReplGauges checks the replication block of the Prometheus surface
// on both roles.
func TestReplGauges(t *testing.T) {
	primary, pAddr := bootRepl(t, Config{Workload: "map", Keys: 32, Repl: true})
	replica, _ := bootRepl(t, Config{Workload: "map", Keys: 32, ReplicaOf: pAddr})

	c, err := Dial(pAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 20; i++ {
		if _, err := c.Op(check.OpPut, uint64(i), uint64(i), 0); err != nil {
			t.Fatal(err)
		}
	}
	waitFor(t, 10*time.Second, "replica catch-up", caughtUp(primary, replica))

	var pOut, rOut strings.Builder
	if err := primary.Metrics().WritePrometheus(&pOut); err != nil {
		t.Fatal(err)
	}
	if err := replica.Metrics().WritePrometheus(&rOut); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`rtled_repl_role{role="primary"} 0`,
		"rtled_repl_log_seq",
		"rtled_repl_acked_seq",
		"rtled_repl_lag_entries",
		"rtled_repl_subscribers 1",
		"rtled_repl_log_entries 20",
		"rtled_repl_log_bytes",
		"rtled_repl_log_floor 0",
		"rtled_repl_log_truncations_total 0",
	} {
		if !strings.Contains(pOut.String(), want) {
			t.Errorf("primary metrics missing %q", want)
		}
	}

	// Compaction moves the floor series and bumps the truncation counter.
	// Wait for the replica's acks to land on the primary first: the cut is
	// bounded by the slowest subscriber's acknowledgement.
	waitFor(t, 10*time.Second, "subscriber acks", func() bool {
		return primary.repl.minAcked() >= primary.repl.log.HighWater()
	})
	snapPath := filepath.Join(t.TempDir(), "state.snap")
	primary.cfg.SnapFile = snapPath
	if _, err := primary.Compact(); err != nil {
		t.Fatalf("Compact: %v", err)
	}
	var pOut2 strings.Builder
	if err := primary.Metrics().WritePrometheus(&pOut2); err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"rtled_repl_log_entries 0",
		"rtled_repl_log_floor 20",
		"rtled_repl_log_truncations_total 1",
	} {
		if !strings.Contains(pOut2.String(), want) {
			t.Errorf("post-compaction metrics missing %q", want)
		}
	}
	for _, want := range []string{
		`rtled_repl_role{role="replica"} 1`,
		"rtled_repl_applied_seq",
	} {
		if !strings.Contains(rOut.String(), want) {
			t.Errorf("replica metrics missing %q", want)
		}
	}
}

// TestBootReplayFromLog checks crash recovery through the file-backed
// log: a server rebooted onto its predecessor's log serves the
// predecessor's final state.
func TestBootReplayFromLog(t *testing.T) {
	logPath := filepath.Join(t.TempDir(), "repl.log")

	srv, err := New(Config{Workload: "map", Keys: 32, Addr: "127.0.0.1:0", ReplLog: logPath})
	if err != nil {
		t.Fatal(err)
	}
	addr, err := srv.Listen()
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve() }() // shut down cleanly below
	c, err := Dial(addr.String())
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 40; i++ {
		if resp, err := c.Op(check.OpPut, uint64(i%32), uint64(2000+i), 0); err != nil || resp.Status != StatusOK {
			t.Fatalf("put %d: %v / %v", i, err, resp.Status)
		}
	}
	_ = c.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}

	reborn, addr2 := bootRepl(t, Config{Workload: "map", Keys: 32, ReplLog: logPath})
	if hw := reborn.repl.log.HighWater(); hw == 0 {
		t.Fatal("reborn server loaded an empty log")
	}
	c2, err := Dial(addr2)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	for key := uint64(0); key < 32; key++ {
		// The last write to key k was 2000 + the largest i < 40 with
		// i % 32 == k.
		last := uint64(2000 + int(key) + 32*((40-1-int(key))/32))
		resp, err := c2.Op(check.OpGet, key, 0, 0)
		if err != nil || resp.Status != StatusOK {
			t.Fatalf("get %d after replay: %v / %v", key, err, resp.Status)
		}
		if !resp.Results[0].Ok || resp.Results[0].Ret != last {
			t.Fatalf("key %d = (%d,%v) after replay, want (%d,true)",
				key, resp.Results[0].Ret, resp.Results[0].Ok, last)
		}
	}
}

// TestFailoverUnderLoad is the in-process version of the e2e failover
// scenario and the PR's central soundness claim: kill the primary under
// recorded load, promote the replica, and the merged wire-level history
// — with lost-response operations recorded as pending — stays
// linearizable. Sync ack mode makes the claim "zero acknowledged-write
// loss": every response the clients saw came from an entry the replica
// had already acknowledged.
func TestFailoverUnderLoad(t *testing.T) {
	primary, pAddr := bootRepl(t, Config{Workload: "map", Keys: 48, Shards: 2, ReplAck: "sync"})
	replica, rAddr := bootRepl(t, Config{Workload: "map", Keys: 48, Shards: 2, ReplicaOf: pAddr, ReplAck: "sync"})

	waitFor(t, 10*time.Second, "replica subscription", func() bool {
		primary.repl.mu.Lock()
		n := len(primary.repl.subs)
		primary.repl.mu.Unlock()
		return n == 1
	})

	// Kill the primary mid-run, then promote the replica after a beat of
	// dead air so clients exercise the not-primary retry path too.
	killed := make(chan struct{})
	go func() {
		defer close(killed)
		time.Sleep(150 * time.Millisecond)
		_ = primary.Close()
		time.Sleep(100 * time.Millisecond)
		if _, err := replica.Promote(context.Background()); err != nil {
			t.Errorf("Promote: %v", err)
		}
	}()

	res, err := RunLoad(LoadConfig{
		Addrs:    []string{pAddr, rAddr},
		Workload: "map",
		Keys:     48,
		Conns:    2,
		Pipeline: 4,
		Ops:      1 << 30, // the duration, not the budget, ends the run
		Duration: 1500 * time.Millisecond,
		ReadPct:  60,
		BatchPct: 5,
		Check:    true,
	})
	<-killed
	if err != nil {
		t.Fatalf("RunLoad: %v", err)
	}
	if !res.Checked || !res.Linearizable {
		t.Fatalf("history not linearizable across failover: %s", res.CheckDetail)
	}
	if res.Reconnects == 0 {
		t.Error("no reconnects recorded — the kill did not land mid-run")
	}
	if res.Ops == 0 {
		t.Error("no completed operations recorded")
	}
	if res.FailoverWindow <= 0 {
		t.Error("no failover window measured")
	}
	t.Logf("failover run: ops=%d cut=%d notPrimaryRetries=%d reconnects=%d window=%v",
		res.Ops, res.Cut, res.NotPrimaryRetries, res.Reconnects, res.FailoverWindow)
}
