package server

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rtle/internal/check"
	"rtle/internal/obs"
	"rtle/internal/rng"
	"rtle/internal/snap"
)

// LoadConfig drives RunLoad against a live rtled server. Conns × Pipeline
// sequential logical clients ("slots") are multiplexed over Conns
// connections: each slot issues one request at a time, so a connection
// carries Pipeline outstanding requests and the whole run Conns×Pipeline —
// the recording discipline check.ThreadRecorder requires (one pending
// operation per recorder) while the wire still sees deep pipelines.
type LoadConfig struct {
	// Addr is the rtled server address.
	Addr string
	// Addrs, when it lists more than one address, switches the run to
	// failover clients: each connection rides through server death by
	// reconnecting across the list (primary first, then replicas), an
	// operation whose response was lost is recorded as pending
	// (check.ThreadRecorder.Cut) instead of aborting the run, and
	// StatusNotPrimary rejections are retried until a promotion lands.
	// When empty, Addr is used alone.
	Addrs []string
	// Workload must match the server's ("set", "map", "bank").
	Workload string
	// Conns is the TCP connection count (default 4).
	Conns int
	// Pipeline is the slot count per connection (default 8).
	Pipeline int
	// Ops bounds the recorded single operations across all slots
	// (default 4000).
	Ops int
	// Duration, when positive, additionally stops the run at a deadline.
	Duration time.Duration
	// RatePerSec, when positive, switches from a closed loop (every slot
	// re-issues immediately) to an open loop: arrivals are scheduled at
	// the aggregate rate and latency is measured from the scheduled
	// arrival, so queueing delay under overload is visible instead of
	// being absorbed by coordinated omission.
	RatePerSec int
	// ReadPct is the read percentage of single operations (default 90).
	ReadPct int
	// BatchPct is the percentage of issue slots that send a read-only
	// atomicity-witness batch instead of a recorded single operation.
	BatchPct int
	// BatchSize is the witness batch length for set/map (default 8; bank
	// witnesses always read every account).
	BatchSize int
	// Keys is the key space for set/map and the account count for bank;
	// it must match the server's serving contract (default 1024, bank 16).
	Keys int
	// KeyDist selects the key distribution: "uniform" (default) or
	// "zipf" (skewed; key 0 hottest), deterministic under Seed.
	KeyDist string
	// ZipfS is the zipf exponent (default 1.1; larger is more skewed).
	ZipfS float64
	// Seed derives every slot's PRNG stream.
	Seed uint64
	// Check runs the wire-level linearizability check after the run.
	Check bool
}

func (c *LoadConfig) fill() {
	if c.Conns <= 0 {
		c.Conns = 4
	}
	if c.Pipeline <= 0 {
		c.Pipeline = 8
	}
	if c.Ops <= 0 {
		c.Ops = 4000
	}
	if c.ReadPct < 0 || c.ReadPct > 100 {
		c.ReadPct = 90
	}
	if c.BatchSize <= 0 {
		c.BatchSize = 8
	}
	if c.BatchSize > MaxBatchOps {
		c.BatchSize = MaxBatchOps
	}
	if c.Keys <= 0 {
		if c.Workload == "bank" {
			c.Keys = 16
		} else {
			c.Keys = 1024
		}
	}
	if c.KeyDist == "" {
		c.KeyDist = "uniform"
	}
	if c.ZipfS <= 0 {
		c.ZipfS = 1.1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if len(c.Addrs) == 0 && c.Addr != "" {
		c.Addrs = []string{c.Addr}
	}
}

// LoadResult is one RunLoad outcome.
type LoadResult struct {
	// Ops counts recorded single operations that completed OK.
	Ops uint64
	// Batches counts witness batches that completed OK.
	Batches uint64
	// BusyRetries counts StatusBusy rejections absorbed by retry.
	BusyRetries uint64
	// Rejected counts operations abandoned on StatusShutdown/StatusBad.
	Rejected uint64
	// Elapsed is the issuing phase's wall time.
	Elapsed time.Duration
	// Shards is the shard count the server advertised in its hello.
	Shards int
	// Latency aggregates single-operation latency (closed loop: send to
	// response; open loop: scheduled arrival to response).
	Latency obs.LatencySnapshot
	// WitnessViolations lists batch-atomicity violations (a batch whose
	// duplicate reads disagreed, or a bank batch breaking conservation).
	WitnessViolations []string
	// Cut counts operations whose response was lost to a connection
	// failure and were recorded as pending instead of completed
	// (failover mode only). The checker must explain each one both ways:
	// executed-then-crashed and never-executed.
	Cut uint64
	// NotPrimaryRetries counts StatusNotPrimary rejections absorbed
	// while waiting for a promotion (failover mode only).
	NotPrimaryRetries uint64
	// Reconnects counts connection re-establishments summed across all
	// failover clients.
	Reconnects uint64
	// FailoverWindow is the longest observed service disruption: from
	// the first lost response or not-primary rejection to the next
	// StatusOK completion.
	FailoverWindow time.Duration
	// Checked reports whether the linearizability check ran; Linearizable
	// is its verdict and CheckDetail names the failing partition.
	Checked      bool
	Linearizable bool
	CheckDetail  string
	// Seeded reports the check's models started from a pre-run server
	// snapshot instead of the empty state (warm checking); SeedSeq is the
	// snapshot's replication-log stamp. Unseeded checked runs are sound
	// only against a fresh server.
	Seeded  bool
	SeedSeq uint64
}

// Throughput returns completed single operations per second.
func (r *LoadResult) Throughput() float64 {
	if r.Elapsed <= 0 {
		return 0
	}
	return float64(r.Ops) / r.Elapsed.Seconds()
}

// Percentile returns the q-quantile (0 < q <= 1) of the latency
// distribution in seconds, linearly interpolated within its log2 histogram
// bucket. The buckets are wide (each spans a 2× range), so resolving a
// quantile to the raw bucket bound — as this method once did — quantizes
// every distribution whose quantile lands in the same bucket to one
// byte-identical value; interpolating by the quantile's rank within the
// bucket recovers sub-bucket resolution under the usual assumption that
// samples spread uniformly inside a bucket.
func (r *LoadResult) Percentile(q float64) float64 {
	if r.Latency.Count == 0 {
		return 0
	}
	target := q * float64(r.Latency.Count)
	if target < 1 {
		target = 1
	}
	var cum uint64
	for b := 0; b < obs.NumLatencyBuckets; b++ {
		n := r.Latency.Counts[b]
		if n == 0 {
			continue
		}
		if float64(cum+n) >= target {
			lo := obs.BucketLowerBoundSeconds(b)
			hi := obs.BucketUpperBoundSeconds(b)
			frac := (target - float64(cum)) / float64(n)
			return lo + (hi-lo)*frac
		}
		cum += n
	}
	return obs.BucketUpperBoundSeconds(obs.NumLatencyBuckets - 1)
}

// loadConn is the connection surface the load generator drives — both
// *Client (one address) and *FailoverClient (an address list) satisfy it.
type loadConn interface {
	Do(req *Request) (Response, error)
	DoInto(req *Request, res []Result) (Response, error)
	Batch(entries []BatchEntry) (Response, error)
	ServerShards() int
	Close() error
}

// loadState is the shared mutable state of one run.
type loadState struct {
	cfg       LoadConfig
	failover  bool         // more than one address: ride through server death
	zipf      *rng.Zipf    // non-nil when KeyDist is "zipf"
	remaining atomic.Int64 // the run's op budget
	deadline  time.Time
	hist      *check.History
	latency   obs.Histogram
	outage    atomic.Bool // a disruption window is open (cheap gate for noteHealthy)

	mu          sync.Mutex
	busy        uint64
	rejected    uint64
	batches     uint64
	cut         uint64
	notPrimary  uint64
	outageStart time.Time     // zero when healthy
	maxOutage   time.Duration // the longest closed disruption window
	violations  []string
	firstErr    error
}

// noteDisrupt opens the disruption window (if not already open): the
// service stopped answering — a lost response or a not-primary rejection.
func (st *loadState) noteDisrupt() {
	st.mu.Lock()
	if st.outageStart.IsZero() {
		st.outageStart = time.Now()
	}
	st.mu.Unlock()
	st.outage.Store(true)
}

// noteHealthy closes the disruption window on the first StatusOK after a
// disruption, folding its span into the maximum.
func (st *loadState) noteHealthy() {
	if !st.outage.Load() {
		return
	}
	st.outage.Store(false)
	st.mu.Lock()
	if !st.outageStart.IsZero() {
		if d := time.Since(st.outageStart); d > st.maxOutage {
			st.maxOutage = d
		}
		st.outageStart = time.Time{}
	}
	st.mu.Unlock()
}

// RunLoad drives the configured load against a live server, then (with
// cfg.Check) validates the recorded wire-level history: set/map histories
// are partitioned by key — single-key operations make linearizability
// compositional per key, which keeps the WGL search tractable at high slot
// counts — and bank histories are checked whole against the conservation
// model. Witness batches are read-only, so they never perturb the recorded
// history; their duplicate reads are checked for internal agreement
// instead, which is exactly the atomicity the batch contract promises.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	cfg.fill()
	slots := cfg.Conns * cfg.Pipeline

	st := &loadState{cfg: cfg, hist: check.NewHistory(slots)}
	switch cfg.KeyDist {
	case "uniform":
	case "zipf":
		st.zipf = rng.NewZipf(cfg.Keys, cfg.ZipfS)
	default:
		return nil, fmt.Errorf("server: unknown key distribution %q (want uniform or zipf)", cfg.KeyDist)
	}
	st.failover = len(cfg.Addrs) > 1

	clients := make([]loadConn, cfg.Conns)
	for i := range clients {
		var c loadConn
		var err error
		if st.failover {
			c, err = NewFailoverClient(FailoverConfig{Addrs: cfg.Addrs})
		} else {
			addr := cfg.Addr
			if len(cfg.Addrs) == 1 {
				addr = cfg.Addrs[0]
			}
			c, err = DialContext(context.Background(), addr)
		}
		if err != nil {
			for _, prev := range clients[:i] {
				_ = prev.Close() // unwinding a failed dial; the dial error is the one to report
			}
			return nil, err
		}
		clients[i] = c
	}
	defer func() {
		for _, c := range clients {
			_ = c.Close() // the run is over; close errors carry no signal
		}
	}()

	// Warm checking: fetch a pre-run snapshot and seed the checker's models
	// from it, extending soundness from "fresh server" to "server at the
	// snapshot-stamped prefix" — the cut is consistent at its sequence, and
	// every recorded operation runs after the fetch returned, so the seeded
	// model is exactly the state the history starts from. A server without
	// FeatureSnapshot falls back to the old fresh-server contract.
	var seed *snap.Snapshot
	if cfg.Check {
		var ferr error
		for _, a := range cfg.Addrs {
			sctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			seed, ferr = FetchSnapshot(sctx, a)
			cancel()
			if ferr == nil || errors.Is(ferr, ErrNoSnapshot) {
				break
			}
		}
		switch {
		case seed != nil:
			if seed.Workload != cfg.Workload || seed.Keys != uint64(cfg.Keys) {
				return nil, fmt.Errorf("server: warm-check snapshot carries %s/%d keys, the run is %s/%d",
					seed.Workload, seed.Keys, cfg.Workload, cfg.Keys)
			}
		case errors.Is(ferr, ErrNoSnapshot):
			// An older server: unseeded, sound only if the server is fresh.
		default:
			return nil, fmt.Errorf("server: warm-check snapshot fetch: %w", ferr)
		}
	}

	st.remaining.Store(int64(cfg.Ops))
	if cfg.Duration > 0 {
		st.deadline = time.Now().Add(cfg.Duration)
	}

	start := time.Now()
	var wg sync.WaitGroup
	for s := 0; s < slots; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			st.slot(s, clients[s%cfg.Conns], start)
		}(s)
	}
	wg.Wait()
	elapsed := time.Since(start)

	// A run that ended mid-disruption still owes its window to the max.
	st.mu.Lock()
	if !st.outageStart.IsZero() {
		if d := time.Since(st.outageStart); d > st.maxOutage {
			st.maxOutage = d
		}
		st.outageStart = time.Time{}
	}
	st.mu.Unlock()

	res := &LoadResult{
		Ops:               0,
		Batches:           st.batches,
		BusyRetries:       st.busy,
		Rejected:          st.rejected,
		Elapsed:           elapsed,
		Shards:            clients[0].ServerShards(),
		Latency:           st.latency.Snapshot(),
		WitnessViolations: st.violations,
		Cut:               st.cut,
		NotPrimaryRetries: st.notPrimary,
		FailoverWindow:    st.maxOutage,
	}
	for _, c := range clients {
		if fc, ok := c.(*FailoverClient); ok {
			res.Reconnects += fc.Reconnects()
		}
	}
	if st.firstErr != nil {
		return res, st.firstErr
	}
	events := st.hist.Events()
	res.Ops = uint64(len(events)) - st.cut
	if cfg.Check {
		res.Checked = true
		if seed != nil {
			res.Seeded, res.SeedSeq = true, seed.Seq
		}
		res.Linearizable, res.CheckDetail = checkEvents(cfg.Workload, cfg.Keys, res.Shards, events, seed)
	}
	return res, nil
}

// slot runs one sequential logical client.
func (st *loadState) slot(s int, c loadConn, start time.Time) {
	cfg := &st.cfg
	rec := st.hist.Recorder(s)
	r := rng.NewXoshiro256(cfg.Seed + uint64(s)*0x9e3779b97f4a7c15 + 1)
	slots := cfg.Conns * cfg.Pipeline

	// Per-slot round-trip scratch: one request header and one result slot,
	// reused for every single operation, so the slot's steady state rides
	// the client's zero-alloc path end to end.
	var req Request
	var resBuf [1]Result

	// Open loop: this slot owns every slots'th arrival of the aggregate
	// schedule.
	var period time.Duration
	next := start
	if cfg.RatePerSec > 0 {
		period = time.Duration(int64(time.Second) * int64(slots) / int64(cfg.RatePerSec))
		next = start.Add(time.Duration(s) * period / time.Duration(slots))
	}

	for {
		if !st.deadline.IsZero() && time.Now().After(st.deadline) {
			return
		}
		if st.remaining.Add(-1) < 0 {
			return
		}
		issueAt := time.Now()
		if period > 0 {
			if d := time.Until(next); d > 0 {
				time.Sleep(d)
			}
			issueAt = next
			next = next.Add(period)
		}
		if cfg.BatchPct > 0 && r.Intn(100) < cfg.BatchPct {
			st.witnessBatch(c, r)
			continue
		}
		if !st.single(rec, c, r, issueAt, &req, resBuf[:]) {
			return
		}
	}
}

// single issues one recorded operation, absorbing busy rejections below
// the recording layer: Invoke stamps before the first send and Return
// after the final response, so retries only widen the pending interval —
// sound, because a StatusBusy request was rejected before execution. In
// failover mode the same soundness argument extends to StatusNotPrimary
// (rejected before execution, safe to re-issue), while a transport error
// is the one genuinely ambiguous outcome — the operation may or may not
// have executed — so the event is cut to pending rather than abandoned,
// and the checker must explain it both ways.
func (st *loadState) single(rec *check.ThreadRecorder, c loadConn, r *rng.Xoshiro256, issueAt time.Time, req *Request, res []Result) bool {
	op, a1, a2, a3 := st.pick(r)
	rec.Invoke(op, a1, a2, a3)
	for {
		*req = Request{Op: op, Arg1: a1, Arg2: a2, Arg3: a3}
		resp, err := c.DoInto(req, res)
		if err != nil {
			if errors.Is(err, ErrNotPrimary) {
				// Typed, not string-matched: the failover client classified
				// the rejection, whatever the server's message said. Rejected
				// before execution, so keep the pending interval open and
				// re-issue once the promotion lands.
				st.mu.Lock()
				st.notPrimary++
				st.mu.Unlock()
				st.noteDisrupt()
				time.Sleep(2 * time.Millisecond)
				continue
			}
			if st.failover {
				rec.Cut() // the response is lost; the op may have executed
				st.mu.Lock()
				st.cut++
				st.mu.Unlock()
				st.noteDisrupt()
				return true
			}
			rec.Abandon() // unsound to keep: the op may have executed; the error voids the check
			st.fail(err)
			return false
		}
		switch resp.Status {
		case StatusOK:
			rec.Return(resp.Results[0].Ret, resp.Results[0].Ok)
			st.latency.Observe(time.Since(issueAt).Nanoseconds())
			st.noteHealthy()
			return true
		case StatusBusy:
			st.mu.Lock()
			st.busy++
			st.mu.Unlock()
			backoff := time.Duration(resp.RetryAfterMicros) * time.Microsecond
			if backoff > 20*time.Millisecond {
				backoff = 20 * time.Millisecond
			}
			time.Sleep(backoff)
		case StatusNotPrimary:
			if !st.failover {
				rec.Abandon() // rejected before execution: sound to discard
				st.mu.Lock()
				st.rejected++
				st.mu.Unlock()
				st.fail(fmt.Errorf("server rejected %v(%d,%d,%d): %s", op, a1, a2, a3, resp.Message))
				return false
			}
			// Rejected before execution: keep the pending interval open and
			// re-issue once the promotion lands.
			st.mu.Lock()
			st.notPrimary++
			st.mu.Unlock()
			st.noteDisrupt()
			time.Sleep(2 * time.Millisecond)
		case StatusShutdown:
			rec.Abandon() // rejected before execution: sound to discard
			st.mu.Lock()
			st.rejected++
			st.mu.Unlock()
			if st.failover {
				// The primary is draining; ride through to its successor.
				st.noteDisrupt()
				time.Sleep(time.Millisecond)
				return true
			}
			return false
		default:
			rec.Abandon() // rejected before execution: sound to discard
			st.mu.Lock()
			st.rejected++
			st.mu.Unlock()
			st.fail(fmt.Errorf("server rejected %v(%d,%d,%d): %s", op, a1, a2, a3, resp.Message))
			return false
		}
	}
}

// witnessBatch issues one read-only batch and validates the atomicity
// witness: duplicate reads inside one batch must agree (set/map), and a
// bank batch reading every account must observe conserved total money.
// Half the set/map witnesses interleave reads of two distinct keys — on a
// sharded server those keys usually hash to different shards, so the
// witness exercises the cross-shard slow path and checks that its gated
// per-shard blocks are jointly atomic.
func (st *loadState) witnessBatch(c loadConn, r *rng.Xoshiro256) {
	cfg := &st.cfg
	var entries []BatchEntry
	switch cfg.Workload {
	case "set", "map":
		op := check.OpContains
		if cfg.Workload == "map" {
			op = check.OpGet
		}
		keyA := st.key(r)
		keyB := keyA
		if cfg.Keys > 1 && r.Intn(2) == 0 {
			keyB = (keyA + 1 + r.Uint64n(uint64(cfg.Keys)-1)) % uint64(cfg.Keys)
		}
		entries = make([]BatchEntry, cfg.BatchSize)
		for i := range entries {
			key := keyA
			if i%2 == 1 {
				key = keyB
			}
			entries[i] = BatchEntry{Op: op, Arg1: key}
		}
	case "bank":
		n := cfg.Keys
		if n > MaxBatchOps {
			// A partial-coverage batch cannot witness conservation.
			return
		}
		entries = make([]BatchEntry, n)
		for i := range entries {
			entries[i] = BatchEntry{Op: check.OpBalance, Arg1: uint64(i)}
		}
	}
	for {
		resp, err := c.Batch(entries)
		if err != nil {
			if errors.Is(err, ErrNotPrimary) {
				// Typed rejection from the failover client: wait out the
				// promotion and re-issue (witnesses are read-only, re-issuing
				// is free).
				st.noteDisrupt()
				time.Sleep(2 * time.Millisecond)
				continue
			}
			if st.failover {
				// Witness batches are read-only and unrecorded: a lost
				// response costs nothing, so just note the disruption.
				st.noteDisrupt()
				return
			}
			st.fail(err)
			return
		}
		switch resp.Status {
		case StatusOK:
			st.mu.Lock()
			st.batches++
			st.mu.Unlock()
			st.noteHealthy()
			st.judgeWitness(entries, resp.Results)
			return
		case StatusBusy:
			st.mu.Lock()
			st.busy++
			st.mu.Unlock()
			time.Sleep(time.Duration(resp.RetryAfterMicros) * time.Microsecond)
		case StatusNotPrimary:
			if !st.failover {
				st.fail(fmt.Errorf("server rejected witness batch: %s", resp.Message))
				return
			}
			st.noteDisrupt()
			time.Sleep(2 * time.Millisecond)
		case StatusShutdown:
			st.mu.Lock()
			st.rejected++
			st.mu.Unlock()
			if st.failover {
				st.noteDisrupt()
				time.Sleep(time.Millisecond)
			}
			return
		default:
			st.fail(fmt.Errorf("server rejected witness batch: %s", resp.Message))
			return
		}
	}
}

// judgeWitness validates one witness batch's results.
func (st *loadState) judgeWitness(entries []BatchEntry, results []Result) {
	if len(results) != len(entries) {
		st.violate(fmt.Sprintf("batch answered %d results for %d entries", len(results), len(entries)))
		return
	}
	switch st.cfg.Workload {
	case "set", "map":
		// Duplicate reads of the same key inside one batch must agree;
		// a two-key witness checks agreement per key.
		first := make(map[uint64]int, 2)
		for i := range results {
			j, seen := first[entries[i].Arg1]
			if !seen {
				first[entries[i].Arg1] = i
				continue
			}
			if results[i] != results[j] {
				st.violate(fmt.Sprintf(
					"batch atomicity: duplicate read %d of key %d saw (%d,%v), read %d saw (%d,%v)",
					i, entries[i].Arg1, results[i].Ret, results[i].Ok, j, results[j].Ret, results[j].Ok))
				return
			}
		}
	case "bank":
		var sum uint64
		for _, res := range results {
			sum += res.Ret
		}
		want := uint64(len(entries)) * BankInitial
		if sum != want {
			st.violate(fmt.Sprintf("bank conservation: batch of %d balances summed to %d, want %d",
				len(entries), sum, want))
		}
	}
}

// key draws one key from the configured distribution: uniform, or the
// precomputed zipf table (key 0 hottest). Both draw exactly one variate
// from r, so switching distributions keeps runs seed-deterministic.
func (st *loadState) key(r *rng.Xoshiro256) uint64 {
	if st.zipf != nil {
		return st.zipf.Sample(r)
	}
	return r.Uint64n(uint64(st.cfg.Keys))
}

// pick draws one single operation from the configured mix.
func (st *loadState) pick(r *rng.Xoshiro256) (Op, uint64, uint64, uint64) {
	cfg := &st.cfg
	keys := uint64(cfg.Keys)
	read := r.Intn(100) < cfg.ReadPct
	switch cfg.Workload {
	case "map":
		key := st.key(r)
		if read {
			return check.OpGet, key, 0, 0
		}
		switch r.Intn(3) {
		case 0:
			return check.OpPut, key, r.Uint64n(1 << 20), 0
		case 1:
			return check.OpAdd, key, 1 + r.Uint64n(9), 0
		default:
			return check.OpDelete, key, 0, 0
		}
	case "bank":
		if read {
			return check.OpBalance, st.key(r), 0, 0
		}
		// The source account follows the skew (a hot account contends);
		// the destination stays uniform among the other accounts so a
		// transfer never degenerates to from == to.
		from := st.key(r)
		to := (from + 1 + r.Uint64n(keys-1)) % keys
		return check.OpTransfer, from, to, 1 + r.Uint64n(100)
	default: // set
		key := st.key(r)
		if read {
			return check.OpContains, key, 0, 0
		}
		if r.Intn(2) == 0 {
			return check.OpInsert, key, 0, 0
		}
		return check.OpRemove, key, 0, 0
	}
}

func (st *loadState) fail(err error) {
	st.mu.Lock()
	if st.firstErr == nil {
		st.firstErr = err
	}
	st.mu.Unlock()
}

func (st *loadState) violate(msg string) {
	st.mu.Lock()
	st.violations = append(st.violations, msg)
	st.mu.Unlock()
}

// checkEvents validates a recorded wire history. Set and map operations
// each touch exactly one key, so the history is linearizable iff every
// per-key subhistory is — the standard locality property — and partitioned
// checking stays tractable where a whole-history WGL search over dozens of
// concurrent slots would not. The same locality is what makes the check
// compose across shards: every key lives on exactly one shard, so a
// per-key verdict is a per-shard verdict, and a failure is attributed to
// the shard that served the key. Bank transfers couple account pairs
// (possibly on different shards), so that history is checked whole — the
// strongest statement, covering the cross-shard slow path too.
//
// A non-nil seed starts every model from the snapshot's state instead of
// empty — the warm-checking contract (see RunLoad).
func checkEvents(workload string, keys, shards int, events []Event, seed *snap.Snapshot) (bool, string) {
	switch workload {
	case "bank":
		model := check.BankModel(keys, BankInitial)
		if seed != nil {
			balances := make([]uint64, keys)
			for i := range balances {
				balances[i] = BankInitial
			}
			for _, items := range seed.Shards {
				for _, it := range items {
					balances[it.Key] = it.Val
				}
			}
			model = check.BankModelFrom(balances)
		}
		if !check.CheckLinearizable(model, events) {
			return false, fmt.Sprintf(
				"bank history of %d events over %d shards is not linearizable", len(events), shards)
		}
		return true, ""
	case "set", "map":
		model := check.SetModel()
		if workload == "map" {
			model = check.MapModel()
		}
		if seed != nil {
			if workload == "map" {
				m := make(map[uint64]uint64)
				for _, items := range seed.Shards {
					for _, it := range items {
						m[it.Key] = it.Val
					}
				}
				model = check.MapModelFrom(m)
			} else {
				m := make(map[uint64]bool)
				for _, items := range seed.Shards {
					for _, it := range items {
						m[it.Key] = true
					}
				}
				model = check.SetModelFrom(m)
			}
		}
		byKey := make(map[uint64][]Event)
		for _, e := range events {
			byKey[e.Arg1] = append(byKey[e.Arg1], e)
		}
		ks := make([]uint64, 0, len(byKey))
		for k := range byKey {
			ks = append(ks, k)
		}
		sort.Slice(ks, func(i, j int) bool { return ks[i] < ks[j] })
		for _, k := range ks {
			if !check.CheckLinearizable(model, byKey[k]) {
				return false, fmt.Sprintf(
					"key %d (shard %d) subhistory (%d events) is not linearizable",
					k, ShardForKey(k, shards), len(byKey[k]))
			}
		}
		return true, ""
	}
	return false, fmt.Sprintf("unknown workload %q", workload)
}

// Event re-exports check.Event for checkEvents' signature.
type Event = check.Event
