package server

import (
	"fmt"

	"rtle/internal/avl"
	"rtle/internal/bank"
	"rtle/internal/check"
	"rtle/internal/core"
	"rtle/internal/mem"
	"rtle/internal/tmap"
)

// Workloads lists the servable ADT kinds, matching internal/check's
// workload names so a served history checks against the same models.
var Workloads = check.Workloads

// BankInitial is the per-account starting balance the server uses, shared
// with the checker's bank model.
const BankInitial = check.BankInitial

// adt is one shard's served data-structure instance. Exactly one of set,
// mp, bk is non-nil, per kind.
type adt struct {
	kind string
	// keys bounds the global key space (set/map) or account count (bank):
	// it caps the simulated heap the structure can consume and is part of
	// the serving contract (out-of-range arguments are StatusBad).
	keys uint64
	set  *avl.Set
	mp   *tmap.Map
	bk   *bank.Bank
	// local translates a global account id to this shard's Bank index
	// (bank only; unowned accounts hold the unownedAccount sentinel and
	// are rejected loudly by localIdx). Set and map shards span the full
	// key space, so their keys need no translation — ownership is purely
	// the router's hash.
	local []uint32
}

// unownedAccount marks a local-translation slot whose global account
// belongs to another shard: indexing the Bank through it would silently
// read or credit whichever owned account shares the slot value, so
// localIdx treats it as a fatal routing bug instead.
const unownedAccount = ^uint32(0)

// heapWords sizes one shard's simulated heap for kind with the given
// key-space bound and worker count: enough lines for every possible key
// plus per-worker spare-node headroom and method metadata (orecs, lock
// words). Set/map shards are sized for the full key space — the hash may
// route any subset of keys to one shard, and simulated words are cheap.
func heapWords(kind string, keys, workers int) int {
	switch kind {
	case "bank":
		return keys*mem.WordsPerLine + 1<<16
	default:
		return keys*2*mem.WordsPerLine + workers*64*mem.WordsPerLine + 1<<16
	}
}

// newADT allocates one shard's instance on m. Structures start empty
// (balances at BankInitial for bank): the linearizability models in
// internal/check begin from the same state. For bank, owned lists the
// global account ids this shard holds, in local index order; set/map pass
// owned nil and span the full key space.
func newADT(kind string, m *mem.Memory, keys int, owned []uint64) (*adt, error) {
	a := &adt{kind: kind, keys: uint64(keys)}
	switch kind {
	case "set":
		a.set = avl.New(m)
	case "map":
		a.mp = tmap.New(m, keys)
	case "bank":
		a.bk = bank.New(m, len(owned), BankInitial)
		a.local = make([]uint32, keys)
		for g := range a.local {
			a.local[g] = unownedAccount
		}
		for idx, g := range owned {
			a.local[g] = uint32(idx)
		}
	default:
		return nil, fmt.Errorf("server: unknown workload %q (want set, map, or bank)", kind)
	}
	return a, nil
}

// validate checks one operation against the serving contract before it is
// queued: the op must belong to the served ADT and its arguments must be
// inside the configured key/account space (unbounded keys would let a
// client exhaust the simulated heap).
func (a *adt) validate(op Op, a1, a2 uint64) error {
	switch a.kind {
	case "set":
		switch op {
		case check.OpContains, check.OpInsert, check.OpRemove:
			if a1 >= a.keys {
				//rtle:ignore hotalloc validation-failure error path; the request is rejected
				return fmt.Errorf("key %d outside the served key space [0,%d)", a1, a.keys)
			}
			return nil
		}
	case "map":
		switch op {
		case check.OpGet, check.OpPut, check.OpDelete, check.OpAdd:
			if a1 >= a.keys {
				//rtle:ignore hotalloc validation-failure error path; the request is rejected
				return fmt.Errorf("key %d outside the served key space [0,%d)", a1, a.keys)
			}
			return nil
		}
	case "bank":
		switch op {
		case check.OpBalance:
			if a1 >= a.keys {
				//rtle:ignore hotalloc validation-failure error path; the request is rejected
				return fmt.Errorf("account %d outside [0,%d)", a1, a.keys)
			}
			return nil
		case check.OpTransfer:
			if a1 >= a.keys || a2 >= a.keys {
				//rtle:ignore hotalloc validation-failure error path; the request is rejected
				return fmt.Errorf("account pair (%d,%d) outside [0,%d)", a1, a2, a.keys)
			}
			return nil
		}
	}
	//rtle:ignore hotalloc validation-failure error path; the request is rejected
	return fmt.Errorf("op %v is not served by the %s workload", op, a.kind)
}

// executor is one worker's execution state over the shared adt: a handle
// per batch/coalesce slot, because a handle carries exactly one spare node
// and one removed-node record, so every operation of a multi-op atomic
// block needs its own.
type executor struct {
	a    *adt
	setH []*avl.Handle
	mapH []*tmap.Handle
}

// newExecutor returns an executor with slots independent handles. Runs
// once per worker at startup; the executor is reused for every block.
//
//rtle:init
func (a *adt) newExecutor(slots int) *executor {
	e := &executor{a: a}
	switch a.kind {
	case "set":
		e.setH = make([]*avl.Handle, slots)
		for i := range e.setH {
			e.setH[i] = a.set.NewHandle()
		}
	case "map":
		e.mapH = make([]*tmap.Handle, slots)
		for i := range e.mapH {
			e.mapH[i] = a.mp.NewHandle()
		}
	}
	return e
}

// run executes one operation inside the current atomic block, using slot
// s's handle. Bodies are re-executable: the handles reset their scratch
// state at the top of every *CS call, and the returned Result overwrites
// the caller's slot on every speculative retry.
func (e *executor) run(c core.Context, s int, op Op, a1, a2, a3 uint64) Result {
	switch op {
	case check.OpContains:
		return Result{0, e.setH[s].FindCS(c, a1)}
	case check.OpInsert:
		return Result{0, e.setH[s].InsertCS(c, a1)}
	case check.OpRemove:
		return Result{0, e.setH[s].RemoveCS(c, a1)}
	case check.OpGet:
		v, ok := e.mapH[s].GetCS(c, a1)
		return Result{v, ok}
	case check.OpPut:
		return Result{0, e.mapH[s].PutCS(c, a1, a2)}
	case check.OpDelete:
		return Result{0, e.mapH[s].DeleteCS(c, a1)}
	case check.OpAdd:
		return Result{e.mapH[s].AddCS(c, a1, a2), true}
	case check.OpTransfer:
		return Result{e.a.bk.TransferCS(c, e.a.localIdx(a1), e.a.localIdx(a2), a3), true}
	case check.OpBalance:
		return Result{e.a.bk.BalanceCS(c, e.a.localIdx(a1)), true}
	}
	return Result{}
}

// localIdx translates global account g to this shard's Bank index. Every
// caller sits behind the router, so receiving an account this shard does
// not own is a routing bug; panicking here turns what would otherwise be
// a silent operation on the wrong account into a loud failure.
func (a *adt) localIdx(g uint64) int {
	l := a.local[g]
	if l == unownedAccount {
		//rtle:ignore hotalloc routing-bug panic path; the process is about to die loudly
		panic(fmt.Sprintf("server: account %d routed to a shard that does not own it", g))
	}
	return int(l)
}

// withdrawCS removes up to amount from global account g's balance on this
// shard, returning the amount moved. Cross-shard transfer half; see
// bank.WithdrawCS for the quiescence contract.
func (a *adt) withdrawCS(c core.Context, g, amount uint64) uint64 {
	return a.bk.WithdrawCS(c, a.localIdx(g), amount)
}

// depositCS adds amount to global account g's balance on this shard.
func (a *adt) depositCS(c core.Context, g, amount uint64) {
	a.bk.DepositCS(c, a.localIdx(g), amount)
}

// after finalizes slot s's handle bookkeeping once the atomic block that
// ran op in it has committed (spare-node consumption, removed-node
// recycling — the After* contract of the ADT packages).
func (e *executor) after(s int, op Op, r Result) {
	switch op {
	case check.OpInsert:
		e.setH[s].AfterInsert(r.Ok)
	case check.OpRemove:
		e.setH[s].AfterRemove(r.Ok)
	case check.OpPut:
		if r.Ok && e.mapH[s].UsedSpare() {
			e.mapH[s].ConsumeSpare()
		}
	case check.OpAdd:
		if e.mapH[s].UsedSpare() {
			e.mapH[s].ConsumeSpare()
		}
	case check.OpDelete:
		if r.Ok {
			e.mapH[s].RecycleRemoved()
		}
	}
}
