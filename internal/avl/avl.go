// Package avl implements the set micro-benchmark of the paper's §6.2: a
// balanced internal binary search tree (AVL), in the style of the
// OpenSolaris/ZFS AVL implementation the paper bases its benchmark on,
// stored entirely in simulated shared memory and accessed through
// core.Context so the same code runs uninstrumented on the HTM fast path,
// instrumented on the slow path, and under the lock.
//
// Each node occupies one cache line (key, left, right, height), making the
// node the conflict-detection unit — as on real hardware, where nodes land
// on distinct lines.
//
// Concurrency protocol: the tree itself is sequential code; all
// synchronization comes from running its operations inside Thread.Atomic
// of some core.Method. Critical-section bodies are re-executable, so all
// per-operation scratch state (path stack, pending allocation, pending
// free) lives in a per-thread Handle and is reset at the top of each body.
package avl

import (
	"fmt"

	"rtle/internal/core"
	"rtle/internal/mem"
)

// Node field offsets within the node's cache line.
const (
	offKey    = 0
	offLeft   = 1
	offRight  = 2
	offHeight = 3
)

// Set is a set of uint64 keys backed by an AVL tree in simulated memory.
type Set struct {
	m    *mem.Memory
	head mem.Addr // word holding the root pointer
}

// New allocates an empty set on m.
func New(m *mem.Memory) *Set {
	return &Set{m: m, head: m.AllocLines(1)}
}

// Memory returns the heap the set lives in.
func (s *Set) Memory() *mem.Memory { return s.m }

// pathEntry records one step of a descent: the node visited, the direction
// taken (false = left), and the node's pre-operation height for the
// early-exit rebalancing check.
type pathEntry struct {
	addr  mem.Addr
	right bool
	oldH  uint64
}

// Handle is the per-thread access handle: scratch buffers plus a private
// node cache. A Handle must not be shared between goroutines.
//
// Node lifecycle: InsertCS draws nodes from the handle's free list (or the
// heap); RemoveCS records the unlinked node, which the wrapper methods
// recycle after the atomic block commits — the simulated analogue of a
// malloc with thread-local caches, which the paper marks transaction_pure.
type Handle struct {
	s         *Set
	path      []pathEntry
	spare     mem.Addr
	freeList  []mem.Addr
	usedSpare bool
	removed   mem.Addr
}

// NewHandle returns a fresh per-thread handle.
func (s *Set) NewHandle() *Handle {
	return &Handle{s: s, path: make([]pathEntry, 0, 64)}
}

// --- Critical-section bodies (compose inside Thread.Atomic) --------------

// FindCS reports whether key is in the set. It must run inside an atomic
// block (or on a quiescent set).
func (h *Handle) FindCS(c core.Context, key uint64) bool {
	cur := mem.Addr(c.Read(h.s.head))
	for cur != mem.Nil {
		k := c.Read(cur + offKey)
		switch {
		case key == k:
			return true
		case key > k:
			cur = mem.Addr(c.Read(cur + offRight))
		default:
			cur = mem.Addr(c.Read(cur + offLeft))
		}
	}
	return false
}

// InsertCS inserts key, reporting whether the set changed. It must run
// inside an atomic block.
func (h *Handle) InsertCS(c core.Context, key uint64) bool {
	h.path = h.path[:0]
	h.usedSpare = false
	cur := mem.Addr(c.Read(h.s.head))
	for cur != mem.Nil {
		k := c.Read(cur + offKey)
		if key == k {
			return false
		}
		right := key > k
		h.path = append(h.path, pathEntry{cur, right, c.Read(cur + offHeight)})
		cur = mem.Addr(c.Read(cur + childOff(right)))
	}

	n := h.ensureSpare()
	c.Write(n+offKey, key)
	c.Write(n+offLeft, uint64(mem.Nil))
	c.Write(n+offRight, uint64(mem.Nil))
	c.Write(n+offHeight, 1)
	h.usedSpare = true
	h.attach(c, len(h.path)-1, n)
	h.rebalancePath(c)
	return true
}

// RemoveCS removes key, reporting whether the set changed. The unlinked
// node is recorded in the handle for post-commit recycling.
func (h *Handle) RemoveCS(c core.Context, key uint64) bool {
	h.path = h.path[:0]
	h.removed = mem.Nil

	cur := mem.Addr(c.Read(h.s.head))
	for cur != mem.Nil {
		k := c.Read(cur + offKey)
		if key == k {
			break
		}
		right := key > k
		h.path = append(h.path, pathEntry{cur, right, c.Read(cur + offHeight)})
		cur = mem.Addr(c.Read(cur + childOff(right)))
	}
	if cur == mem.Nil {
		return false
	}

	target := cur
	left := mem.Addr(c.Read(target + offLeft))
	right := mem.Addr(c.Read(target + offRight))
	if left != mem.Nil && right != mem.Nil {
		// Two children: replace the key with the in-order successor's
		// and splice the successor instead (it has no left child).
		h.path = append(h.path, pathEntry{target, true, c.Read(target + offHeight)})
		succ := right
		for {
			l := mem.Addr(c.Read(succ + offLeft))
			if l == mem.Nil {
				break
			}
			h.path = append(h.path, pathEntry{succ, false, c.Read(succ + offHeight)})
			succ = l
		}
		c.Write(target+offKey, c.Read(succ+offKey))
		target = succ
		left = mem.Nil
		right = mem.Addr(c.Read(target + offRight))
	}

	// Splice out target (at most one child).
	child := left
	if child == mem.Nil {
		child = right
	}
	h.attach(c, len(h.path)-1, child)
	h.removed = target
	h.rebalancePath(c)
	return true
}

// --- Wrappers that run the bodies atomically ------------------------------

// Contains runs FindCS in an atomic block on t.
func (h *Handle) Contains(t core.Thread, key uint64) bool {
	var res bool
	t.Atomic(func(c core.Context) { res = h.FindCS(c, key) })
	return res
}

// Insert runs InsertCS in an atomic block on t and consumes the spare node
// if the committed execution linked it.
func (h *Handle) Insert(t core.Thread, key uint64) bool {
	var res bool
	t.Atomic(func(c core.Context) { res = h.InsertCS(c, key) })
	h.AfterInsert(res)
	return res
}

// Remove runs RemoveCS in an atomic block on t and recycles the unlinked
// node.
func (h *Handle) Remove(t core.Thread, key uint64) bool {
	var res bool
	t.Atomic(func(c core.Context) { res = h.RemoveCS(c, key) })
	h.AfterRemove(res)
	return res
}

// AfterInsert finalizes handle bookkeeping after an atomic block that
// called InsertCS committed; pass the committed execution's result.
// Callers composing InsertCS into custom bodies must call it themselves.
func (h *Handle) AfterInsert(inserted bool) {
	if inserted && h.usedSpare {
		h.spare = mem.Nil
	}
}

// AfterRemove is AfterInsert's counterpart for RemoveCS: it recycles the
// node the committed execution unlinked.
func (h *Handle) AfterRemove(removed bool) {
	if removed && h.removed != mem.Nil {
		h.freeList = append(h.freeList, h.removed)
		h.removed = mem.Nil
	}
}

// --- Internals -------------------------------------------------------------

func childOff(right bool) mem.Addr {
	if right {
		return offRight
	}
	return offLeft
}

// ensureSpare returns the handle's pending node, drawing from the free
// list or the heap on first need. Idempotent across re-executions of the
// same atomic body.
func (h *Handle) ensureSpare() mem.Addr {
	if h.spare == mem.Nil {
		if n := len(h.freeList); n > 0 {
			h.spare = h.freeList[n-1]
			h.freeList = h.freeList[:n-1]
		} else {
			h.spare = h.s.m.AllocLines(1)
		}
	}
	return h.spare
}

// attach links child under path[i] (or as the root when i < 0).
func (h *Handle) attach(c core.Context, i int, child mem.Addr) {
	if i < 0 {
		c.Write(h.s.head, uint64(child))
		return
	}
	p := h.path[i]
	c.Write(p.addr+childOff(p.right), uint64(child))
}

func height(c core.Context, n mem.Addr) uint64 {
	if n == mem.Nil {
		return 0
	}
	return c.Read(n + offHeight)
}

// fixHeight recomputes a node's height, writing only on change (the write
// matters: under FG-TLE it costs an orec acquisition).
func fixHeight(c core.Context, n mem.Addr) uint64 {
	hl := height(c, mem.Addr(c.Read(n+offLeft)))
	hr := height(c, mem.Addr(c.Read(n+offRight)))
	nh := max(hl, hr) + 1
	if c.Read(n+offHeight) != nh {
		c.Write(n+offHeight, nh)
	}
	return nh
}

// rotateRight rotates the subtree rooted at n right and returns the new
// subtree root.
func rotateRight(c core.Context, n mem.Addr) mem.Addr {
	l := mem.Addr(c.Read(n + offLeft))
	lr := c.Read(l + offRight)
	c.Write(n+offLeft, lr)
	c.Write(l+offRight, uint64(n))
	fixHeight(c, n)
	fixHeight(c, l)
	return l
}

// rotateLeft rotates the subtree rooted at n left and returns the new
// subtree root.
func rotateLeft(c core.Context, n mem.Addr) mem.Addr {
	r := mem.Addr(c.Read(n + offRight))
	rl := c.Read(r + offLeft)
	c.Write(n+offRight, rl)
	c.Write(r+offLeft, uint64(n))
	fixHeight(c, n)
	fixHeight(c, r)
	return r
}

// balance restores the AVL invariant at n and returns the subtree's
// (possibly new) root.
func balance(c core.Context, n mem.Addr) mem.Addr {
	hl := height(c, mem.Addr(c.Read(n+offLeft)))
	hr := height(c, mem.Addr(c.Read(n+offRight)))
	switch {
	case hl > hr+1:
		l := mem.Addr(c.Read(n + offLeft))
		if height(c, mem.Addr(c.Read(l+offLeft))) < height(c, mem.Addr(c.Read(l+offRight))) {
			c.Write(n+offLeft, uint64(rotateLeft(c, l)))
		}
		return rotateRight(c, n)
	case hr > hl+1:
		r := mem.Addr(c.Read(n + offRight))
		if height(c, mem.Addr(c.Read(r+offRight))) < height(c, mem.Addr(c.Read(r+offLeft))) {
			c.Write(n+offRight, uint64(rotateRight(c, r)))
		}
		return rotateLeft(c, n)
	default:
		fixHeight(c, n)
		return n
	}
}

// rebalancePath walks the recorded descent path bottom-up, rebalancing and
// reattaching subtree roots, stopping early once a subtree's height is
// unchanged from before the operation (no ancestor can be affected then).
func (h *Handle) rebalancePath(c core.Context) {
	for i := len(h.path) - 1; i >= 0; i-- {
		e := h.path[i]
		nr := balance(c, e.addr)
		if nr != e.addr {
			h.attach(c, i-1, nr)
		}
		if height(c, nr) == e.oldH {
			return
		}
	}
}

// RangeCountCS counts the keys in [lo, hi] by in-order traversal. Its read
// set grows with the range, so on HTM large ranges overflow the capacity
// bound and fall back — the workload §1 of the paper motivates refined TLE
// with: a long pessimistic section under which short read-only operations
// can still commit on the slow path. It must run inside an atomic block.
func (h *Handle) RangeCountCS(c core.Context, lo, hi uint64) int {
	return rangeCount(c, mem.Addr(c.Read(h.s.head)), lo, hi)
}

func rangeCount(c core.Context, n mem.Addr, lo, hi uint64) int {
	if n == mem.Nil {
		return 0
	}
	k := c.Read(n + offKey)
	count := 0
	if k > lo {
		count += rangeCount(c, mem.Addr(c.Read(n+offLeft)), lo, hi)
	}
	if k >= lo && k <= hi {
		count++
	}
	if k < hi {
		count += rangeCount(c, mem.Addr(c.Read(n+offRight)), lo, hi)
	}
	return count
}

// RangeCount runs RangeCountCS atomically on t.
func (h *Handle) RangeCount(t core.Thread, lo, hi uint64) int {
	var n int
	t.Atomic(func(c core.Context) { n = h.RangeCountCS(c, lo, hi) })
	return n
}

// --- Whole-set helpers (quiescent or single-threaded use) -----------------

// Size counts the keys via c.
func (s *Set) Size(c core.Context) int {
	return s.sizeRec(c, mem.Addr(c.Read(s.head)))
}

func (s *Set) sizeRec(c core.Context, n mem.Addr) int {
	if n == mem.Nil {
		return 0
	}
	return 1 + s.sizeRec(c, mem.Addr(c.Read(n+offLeft))) + s.sizeRec(c, mem.Addr(c.Read(n+offRight)))
}

// Keys returns the keys in ascending order via c.
func (s *Set) Keys(c core.Context) []uint64 {
	var out []uint64
	s.keysRec(c, mem.Addr(c.Read(s.head)), &out)
	return out
}

func (s *Set) keysRec(c core.Context, n mem.Addr, out *[]uint64) {
	if n == mem.Nil {
		return
	}
	s.keysRec(c, mem.Addr(c.Read(n+offLeft)), out)
	*out = append(*out, c.Read(n+offKey))
	s.keysRec(c, mem.Addr(c.Read(n+offRight)), out)
}

// CheckInvariants verifies BST ordering, stored heights, and AVL balance
// factors across the whole tree, returning a descriptive error on the
// first violation. Intended for tests on a quiescent set.
func (s *Set) CheckInvariants(c core.Context) error {
	_, err := checkRec(c, mem.Addr(c.Read(s.head)), 0, ^uint64(0))
	return err
}

func checkRec(c core.Context, n mem.Addr, lo, hi uint64) (uint64, error) {
	if n == mem.Nil {
		return 0, nil
	}
	k := c.Read(n + offKey)
	if k < lo || k > hi {
		return 0, fmt.Errorf("avl: key %d at node %d outside bounds [%d, %d]", k, n, lo, hi)
	}
	var hl, hr uint64
	var err error
	if l := mem.Addr(c.Read(n + offLeft)); l != mem.Nil {
		if k == 0 {
			return 0, fmt.Errorf("avl: node %d with key 0 has a left child", n)
		}
		if hl, err = checkRec(c, l, lo, k-1); err != nil {
			return 0, err
		}
	}
	if r := mem.Addr(c.Read(n + offRight)); r != mem.Nil {
		if hr, err = checkRec(c, r, k+1, hi); err != nil {
			return 0, err
		}
	}
	h := max(hl, hr) + 1
	if stored := c.Read(n + offHeight); stored != h {
		return 0, fmt.Errorf("avl: node %d (key %d) stores height %d, actual %d", n, k, stored, h)
	}
	if hl > hr+1 || hr > hl+1 {
		return 0, fmt.Errorf("avl: node %d (key %d) unbalanced: left %d right %d", n, k, hl, hr)
	}
	return h, nil
}
