package avl

import (
	"testing"

	"rtle/internal/core"
	"rtle/internal/mem"
	"rtle/internal/rng"
)

// rootKey reads the current root's key.
func rootKey(s *Set, c core.Context) uint64 {
	root := mem.Addr(c.Read(s.head))
	return c.Read(root + offKey)
}

// The four classic rebalancing cases, checked by root identity: inserting
// three keys in each problematic order must leave the middle key at the
// root with height 2.

func TestRotationLL(t *testing.T) {
	s, h, c := newSet(1 << 12)
	for _, k := range []uint64{30, 20, 10} { // left-left
		h.InsertCS(c, k)
		h.AfterInsert(true)
	}
	if got := rootKey(s, c); got != 20 {
		t.Fatalf("root after LL case = %d, want 20", got)
	}
	if err := s.CheckInvariants(c); err != nil {
		t.Fatal(err)
	}
}

func TestRotationRR(t *testing.T) {
	s, h, c := newSet(1 << 12)
	for _, k := range []uint64{10, 20, 30} { // right-right
		h.InsertCS(c, k)
		h.AfterInsert(true)
	}
	if got := rootKey(s, c); got != 20 {
		t.Fatalf("root after RR case = %d, want 20", got)
	}
	if err := s.CheckInvariants(c); err != nil {
		t.Fatal(err)
	}
}

func TestRotationLR(t *testing.T) {
	s, h, c := newSet(1 << 12)
	for _, k := range []uint64{30, 10, 20} { // left-right (double)
		h.InsertCS(c, k)
		h.AfterInsert(true)
	}
	if got := rootKey(s, c); got != 20 {
		t.Fatalf("root after LR case = %d, want 20", got)
	}
	if err := s.CheckInvariants(c); err != nil {
		t.Fatal(err)
	}
}

func TestRotationRL(t *testing.T) {
	s, h, c := newSet(1 << 12)
	for _, k := range []uint64{10, 30, 20} { // right-left (double)
		h.InsertCS(c, k)
		h.AfterInsert(true)
	}
	if got := rootKey(s, c); got != 20 {
		t.Fatalf("root after RL case = %d, want 20", got)
	}
	if err := s.CheckInvariants(c); err != nil {
		t.Fatal(err)
	}
}

// TestRemoveTriggersRotation: deleting from the light side of a
// borderline-balanced tree must rotate.
func TestRemoveTriggersRotation(t *testing.T) {
	s, h, c := newSet(1 << 12)
	// Build:      20
	//           10  30
	//                 40
	for _, k := range []uint64{20, 10, 30, 40} {
		h.InsertCS(c, k)
		h.AfterInsert(true)
	}
	h.RemoveCS(c, 10)
	h.AfterRemove(true)
	if err := s.CheckInvariants(c); err != nil {
		t.Fatalf("tree unbalanced after removal: %v", err)
	}
	if got := rootKey(s, c); got != 30 {
		t.Fatalf("root after removal rotation = %d, want 30", got)
	}
}

// TestRemoveSuccessorDeep: removing a node whose in-order successor sits
// several levels down the right subtree.
func TestRemoveSuccessorDeep(t *testing.T) {
	s, h, c := newSet(1 << 14)
	for _, k := range []uint64{50, 25, 75, 12, 37, 62, 87, 56, 68} {
		h.InsertCS(c, k)
		h.AfterInsert(true)
	}
	// 50's successor is 56 (left-most of the right subtree, two hops).
	if !h.RemoveCS(c, 50) {
		t.Fatal("remove failed")
	}
	h.AfterRemove(true)
	if h.FindCS(c, 50) {
		t.Fatal("50 still present")
	}
	for _, k := range []uint64{25, 75, 12, 37, 62, 87, 56, 68} {
		if !h.FindCS(c, k) {
			t.Fatalf("key %d lost during successor splice", k)
		}
	}
	if err := s.CheckInvariants(c); err != nil {
		t.Fatal(err)
	}
}

// TestRemoveSuccessorIsDirectChild: the successor is the right child
// itself (no left descent).
func TestRemoveSuccessorIsDirectChild(t *testing.T) {
	s, h, c := newSet(1 << 12)
	for _, k := range []uint64{50, 25, 75, 80} {
		h.InsertCS(c, k)
		h.AfterInsert(true)
	}
	if !h.RemoveCS(c, 50) { // successor 75 is 50's right child
		t.Fatal("remove failed")
	}
	h.AfterRemove(true)
	for _, k := range []uint64{25, 75, 80} {
		if !h.FindCS(c, k) {
			t.Fatalf("key %d lost", k)
		}
	}
	if err := s.CheckInvariants(c); err != nil {
		t.Fatal(err)
	}
}

// TestLargeRandomChurnKeepsHeightTight: extended random insert/remove
// churn must keep the height within the AVL bound at all times.
func TestLargeRandomChurnKeepsHeightTight(t *testing.T) {
	s, h, c := newSet(1 << 22)
	r := rng.NewXoshiro256(99)
	live := 0
	for i := 0; i < 30000; i++ {
		key := r.Uint64n(4096)
		if r.Intn(2) == 0 {
			if h.InsertCS(c, key) {
				live++
			}
			h.AfterInsert(true)
		} else {
			if h.RemoveCS(c, key) {
				live--
			}
			h.AfterRemove(true)
		}
		if i%2500 == 0 && live > 4 {
			root := mem.Addr(c.Read(s.head))
			height := int(c.Read(root + offHeight))
			// AVL bound: h <= 1.4405 log2(n+2)
			bound := 1
			for n := live + 2; n > 1; n /= 2 {
				bound++
			}
			if height > bound*3/2+1 {
				t.Fatalf("op %d: height %d exceeds AVL bound for %d keys", i, height, live)
			}
		}
	}
	if err := s.CheckInvariants(c); err != nil {
		t.Fatal(err)
	}
}
