package avl

import (
	"sort"
	"testing"
	"testing/quick"

	"rtle/internal/core"
	"rtle/internal/htm"
	"rtle/internal/mem"
	"rtle/internal/rng"
)

// newSet returns an empty set, a handle, and a direct (unsynchronized)
// context for sequential testing.
func newSet(words int) (*Set, *Handle, core.Context) {
	m := mem.New(words)
	s := New(m)
	return s, s.NewHandle(), core.Direct(m)
}

func TestEmptySet(t *testing.T) {
	s, h, c := newSet(1 << 12)
	if h.FindCS(c, 1) {
		t.Fatal("empty set claims to contain 1")
	}
	if s.Size(c) != 0 {
		t.Fatalf("empty set size %d", s.Size(c))
	}
	if err := s.CheckInvariants(c); err != nil {
		t.Fatal(err)
	}
}

func TestInsertFind(t *testing.T) {
	_, h, c := newSet(1 << 12)
	if !h.InsertCS(c, 10) {
		t.Fatal("insert into empty set reported no change")
	}
	if !h.FindCS(c, 10) {
		t.Fatal("inserted key not found")
	}
	if h.FindCS(c, 11) {
		t.Fatal("absent key found")
	}
}

func TestInsertDuplicate(t *testing.T) {
	_, h, c := newSet(1 << 12)
	h.InsertCS(c, 5)
	h.AfterInsert(true)
	if h.InsertCS(c, 5) {
		t.Fatal("duplicate insert reported a change")
	}
}

func TestRemove(t *testing.T) {
	s, h, c := newSet(1 << 12)
	h.InsertCS(c, 5)
	h.AfterInsert(true)
	if !h.RemoveCS(c, 5) {
		t.Fatal("remove of present key reported no change")
	}
	if h.FindCS(c, 5) {
		t.Fatal("removed key still found")
	}
	if h.RemoveCS(c, 5) {
		t.Fatal("remove of absent key reported a change")
	}
	if s.Size(c) != 0 {
		t.Fatalf("size %d after removing the only key", s.Size(c))
	}
}

func TestAscendingInsertStaysBalanced(t *testing.T) {
	s, h, c := newSet(1 << 14)
	for k := uint64(0); k < 100; k++ {
		if !h.InsertCS(c, k) {
			t.Fatalf("insert %d failed", k)
		}
		h.AfterInsert(true)
		if err := s.CheckInvariants(c); err != nil {
			t.Fatalf("after inserting %d: %v", k, err)
		}
	}
	if s.Size(c) != 100 {
		t.Fatalf("size %d, want 100", s.Size(c))
	}
}

func TestDescendingInsertStaysBalanced(t *testing.T) {
	s, h, c := newSet(1 << 14)
	for k := 100; k > 0; k-- {
		h.InsertCS(c, uint64(k))
		h.AfterInsert(true)
		if err := s.CheckInvariants(c); err != nil {
			t.Fatalf("after inserting %d: %v", k, err)
		}
	}
}

func TestKeysSorted(t *testing.T) {
	s, h, c := newSet(1 << 14)
	in := []uint64{5, 2, 9, 1, 7, 3, 8, 6, 4}
	for _, k := range in {
		h.InsertCS(c, k)
		h.AfterInsert(true)
	}
	keys := s.Keys(c)
	if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i] < keys[j] }) {
		t.Fatalf("Keys not sorted: %v", keys)
	}
	if len(keys) != len(in) {
		t.Fatalf("len(Keys) = %d, want %d", len(keys), len(in))
	}
}

func TestRemoveLeaf(t *testing.T) {
	s, h, c := newSet(1 << 12)
	for _, k := range []uint64{2, 1, 3} {
		h.InsertCS(c, k)
		h.AfterInsert(true)
	}
	h.RemoveCS(c, 1)
	if err := s.CheckInvariants(c); err != nil {
		t.Fatal(err)
	}
	if h.FindCS(c, 1) || !h.FindCS(c, 2) || !h.FindCS(c, 3) {
		t.Fatal("wrong membership after leaf removal")
	}
}

func TestRemoveNodeWithOneChild(t *testing.T) {
	s, h, c := newSet(1 << 12)
	for _, k := range []uint64{2, 1, 4, 3} {
		h.InsertCS(c, k)
		h.AfterInsert(true)
	}
	h.RemoveCS(c, 4) // has only left child 3
	if err := s.CheckInvariants(c); err != nil {
		t.Fatal(err)
	}
	if h.FindCS(c, 4) || !h.FindCS(c, 3) {
		t.Fatal("wrong membership after one-child removal")
	}
}

func TestRemoveNodeWithTwoChildren(t *testing.T) {
	s, h, c := newSet(1 << 12)
	for _, k := range []uint64{5, 2, 8, 1, 3, 7, 9} {
		h.InsertCS(c, k)
		h.AfterInsert(true)
	}
	h.RemoveCS(c, 5) // root with two children; successor is 7
	if err := s.CheckInvariants(c); err != nil {
		t.Fatal(err)
	}
	for _, k := range []uint64{1, 2, 3, 7, 8, 9} {
		if !h.FindCS(c, k) {
			t.Fatalf("key %d lost", k)
		}
	}
	if h.FindCS(c, 5) {
		t.Fatal("removed key 5 still present")
	}
}

func TestRemoveRootRepeatedly(t *testing.T) {
	s, h, c := newSet(1 << 14)
	for k := uint64(0); k < 64; k++ {
		h.InsertCS(c, k)
		h.AfterInsert(true)
	}
	for s.Size(c) > 0 {
		root := mem.Addr(s.m.Load(s.head))
		key := s.m.Load(root + offKey)
		if !h.RemoveCS(c, key) {
			t.Fatalf("failed to remove root key %d", key)
		}
		h.AfterRemove(true)
		if err := s.CheckInvariants(c); err != nil {
			t.Fatalf("after removing root %d: %v", key, err)
		}
	}
}

func TestNodeRecycling(t *testing.T) {
	s, h, c := newSet(1 << 12)
	h.InsertCS(c, 1)
	h.AfterInsert(true)
	before := s.m.Allocated()
	for i := 0; i < 50; i++ {
		h.RemoveCS(c, 1)
		h.AfterRemove(true)
		h.InsertCS(c, 1)
		h.AfterInsert(true)
	}
	// One extra node may be allocated as the in-flight spare; churn must
	// not grow the heap beyond that.
	if grown := s.m.Allocated() - before; grown > 2*mem.WordsPerLine {
		t.Fatalf("heap grew by %d words over 50 remove/insert cycles; free list not working", grown)
	}
}

func TestSpareSurvivesFailedInsert(t *testing.T) {
	_, h, c := newSet(1 << 12)
	h.InsertCS(c, 1)
	h.AfterInsert(true)
	// Failed insert (duplicate) must not consume the spare.
	h.InsertCS(c, 1)
	h.AfterInsert(false)
	spare := h.spare
	if spare == mem.Nil {
		t.Skip("no spare allocated for duplicate insert (descent found the key first)")
	}
	h.InsertCS(c, 2)
	h.AfterInsert(true)
	if h.spare != mem.Nil {
		t.Fatal("spare not consumed by successful insert")
	}
}

// TestModelRandomOps drives the set against a map model with random
// operations, checking results and invariants.
func TestModelRandomOps(t *testing.T) {
	s, h, c := newSet(1 << 20)
	model := map[uint64]bool{}
	r := rng.NewXoshiro256(7)
	const keyRange = 128
	for i := 0; i < 20000; i++ {
		key := r.Uint64n(keyRange)
		switch r.Intn(3) {
		case 0:
			got := h.InsertCS(c, key)
			h.AfterInsert(got)
			if want := !model[key]; got != want {
				t.Fatalf("op %d: Insert(%d) = %v, want %v", i, key, got, want)
			}
			model[key] = true
		case 1:
			got := h.RemoveCS(c, key)
			h.AfterRemove(got)
			if want := model[key]; got != want {
				t.Fatalf("op %d: Remove(%d) = %v, want %v", i, key, got, want)
			}
			delete(model, key)
		default:
			if got := h.FindCS(c, key); got != model[key] {
				t.Fatalf("op %d: Find(%d) = %v, want %v", i, key, got, model[key])
			}
		}
		if i%500 == 0 {
			if err := s.CheckInvariants(c); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if err := s.CheckInvariants(c); err != nil {
		t.Fatal(err)
	}
	if got, want := s.Size(c), len(model); got != want {
		t.Fatalf("final size %d, want %d", got, want)
	}
	for _, k := range s.Keys(c) {
		if !model[k] {
			t.Fatalf("tree holds key %d absent from model", k)
		}
	}
}

// TestQuickInsertRemoveSequence: any random sequence of inserts followed
// by removing a subset leaves exactly the set difference, balanced.
func TestQuickInsertRemoveSequence(t *testing.T) {
	f := func(ins []uint16, rem []uint16) bool {
		s, h, c := newSet(1 << 21)
		model := map[uint64]bool{}
		for _, k := range ins {
			got := h.InsertCS(c, uint64(k))
			h.AfterInsert(got)
			if got == model[uint64(k)] { // must be inverse
				return false
			}
			model[uint64(k)] = true
		}
		for _, k := range rem {
			got := h.RemoveCS(c, uint64(k))
			h.AfterRemove(got)
			if got != model[uint64(k)] {
				return false
			}
			delete(model, uint64(k))
		}
		if s.CheckInvariants(c) != nil {
			return false
		}
		return s.Size(c) == len(model)
	}
	cfg := &quick.Config{MaxCount: 40}
	if err := quick.Check(f, cfg); err != nil {
		t.Fatal(err)
	}
}

// TestTreeHeightLogarithmic checks the AVL height bound (~1.44 log2 n).
func TestTreeHeightLogarithmic(t *testing.T) {
	s, h, c := newSet(1 << 22)
	const n = 10000
	for k := uint64(0); k < n; k++ {
		h.InsertCS(c, k)
		h.AfterInsert(true)
	}
	root := mem.Addr(c.Read(s.head))
	height := c.Read(root + offHeight)
	// 1.44 * log2(10000) ≈ 19.1
	if height > 20 {
		t.Fatalf("height %d exceeds the AVL bound for %d keys", height, n)
	}
}

func TestRangeCountSequential(t *testing.T) {
	_, h, c := newSet(1 << 16)
	for k := uint64(0); k < 100; k += 2 { // evens 0..98
		h.InsertCS(c, k)
		h.AfterInsert(true)
	}
	cases := []struct {
		lo, hi uint64
		want   int
	}{
		{0, 98, 50},   // everything
		{0, 0, 1},     // single present key
		{1, 1, 0},     // single absent key
		{10, 20, 6},   // 10,12,14,16,18,20
		{11, 19, 4},   // 12,14,16,18
		{90, 200, 5},  // 90..98
		{99, 1000, 0}, // beyond
		{50, 40, 0},   // inverted range
	}
	for _, tc := range cases {
		if got := h.RangeCountCS(c, tc.lo, tc.hi); got != tc.want {
			t.Errorf("RangeCount(%d, %d) = %d, want %d", tc.lo, tc.hi, got, tc.want)
		}
	}
}

func TestQuickRangeCountMatchesModel(t *testing.T) {
	_, h, c := newSet(1 << 20)
	model := map[uint64]bool{}
	r := rng.NewXoshiro256(21)
	for i := 0; i < 300; i++ {
		k := r.Uint64n(512)
		h.InsertCS(c, k)
		h.AfterInsert(true)
		model[k] = true
	}
	f := func(a, b uint16) bool {
		lo, hi := uint64(a)%512, uint64(b)%512
		want := 0
		for k := range model {
			if k >= lo && k <= hi {
				want++
			}
		}
		return h.RangeCountCS(c, lo, hi) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRangeCountCapacityFallback(t *testing.T) {
	// Through a method with a tight HTM read budget, a wide scan must
	// still complete (via the lock) and count correctly.
	m := mem.New(1 << 22)
	pol := core.Policy{HTM: htm.Config{ReadLines: 32}}
	meth := core.NewFGTLE(m, 256, pol)
	s := New(m)
	h := s.NewHandle()
	dc := core.Direct(m)
	for k := uint64(0); k < 1000; k++ {
		h.InsertCS(dc, k)
		h.AfterInsert(true)
	}
	th := meth.NewThread()
	h2 := s.NewHandle()
	if got := h2.RangeCount(th, 0, 999); got != 1000 {
		t.Fatalf("wide scan = %d, want 1000", got)
	}
	st := th.Stats()
	if st.LockRuns != 1 {
		t.Fatalf("wide scan LockRuns = %d, want 1 (capacity fallback)", st.LockRuns)
	}
	if st.FastAborts[htm.Capacity] == 0 {
		t.Fatal("no capacity aborts recorded for a scan exceeding the read budget")
	}
	// A narrow scan fits in HTM.
	th2 := meth.NewThread()
	if got := h2.RangeCount(th2, 10, 20); got != 11 {
		t.Fatalf("narrow scan = %d, want 11", got)
	}
	if th2.Stats().FastCommits != 1 {
		t.Fatalf("narrow scan did not commit on the fast path: %+v", *th2.Stats())
	}
}
