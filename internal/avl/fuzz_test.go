package avl

import (
	"testing"

	"rtle/internal/core"
	"rtle/internal/mem"
)

// FuzzSetOps drives the set with an arbitrary operation tape against a
// model, checking results and structural invariants.
func FuzzSetOps(f *testing.F) {
	f.Add([]byte{0, 1, 2, 3, 0, 1})
	f.Add([]byte{10, 10, 10, 138, 138, 10})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) > 512 {
			tape = tape[:512]
		}
		m := mem.New(1 << 18)
		s := New(m)
		h := s.NewHandle()
		c := core.Direct(m)
		model := map[uint64]bool{}
		for i, b := range tape {
			key := uint64(b % 64)
			switch (b >> 6) % 3 {
			case 0:
				got := h.InsertCS(c, key)
				h.AfterInsert(got)
				if got == model[key] {
					t.Fatalf("op %d: Insert(%d) = %v with model %v", i, key, got, model[key])
				}
				model[key] = true
			case 1:
				got := h.RemoveCS(c, key)
				h.AfterRemove(got)
				if got != model[key] {
					t.Fatalf("op %d: Remove(%d) = %v with model %v", i, key, got, model[key])
				}
				delete(model, key)
			default:
				if got := h.FindCS(c, key); got != model[key] {
					t.Fatalf("op %d: Find(%d) = %v with model %v", i, key, got, model[key])
				}
			}
		}
		if err := s.CheckInvariants(c); err != nil {
			t.Fatal(err)
		}
		if s.Size(c) != len(model) {
			t.Fatalf("size %d, want %d", s.Size(c), len(model))
		}
	})
}

// FuzzMapOps does the same for the ordered map, including floor queries.
func FuzzMapOps(f *testing.F) {
	f.Add([]byte{1, 2, 3, 200, 100})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, tape []byte) {
		if len(tape) > 512 {
			tape = tape[:512]
		}
		m := mem.New(1 << 18)
		mp := NewMap(m)
		h := mp.NewHandle()
		c := core.Direct(m)
		model := map[uint64]uint64{}
		for i, b := range tape {
			key := uint64(b % 48)
			switch (b >> 6) % 4 {
			case 0:
				val := uint64(i)
				_, existed := model[key]
				got := h.PutCS(c, key, val)
				h.AfterPut(got)
				if got == existed {
					t.Fatalf("op %d: Put inserted=%v existed=%v", i, got, existed)
				}
				model[key] = val
			case 1:
				_, existed := model[key]
				if got := h.RemoveCS(c, key); got != existed {
					t.Fatalf("op %d: Remove = %v, existed %v", i, got, existed)
				} else {
					h.AfterRemove(got)
				}
				delete(model, key)
			case 2:
				v, ok := h.GetCS(c, key)
				wv, wok := model[key]
				if ok != wok || v != wv {
					t.Fatalf("op %d: Get = %d,%v want %d,%v", i, v, ok, wv, wok)
				}
			default:
				k, _, ok := h.FloorCS(c, key)
				var wantK uint64
				wantOK := false
				for mk := range model {
					if mk <= key && (!wantOK || mk > wantK) {
						wantK, wantOK = mk, true
					}
				}
				if ok != wantOK || (ok && k != wantK) {
					t.Fatalf("op %d: Floor(%d) = %d,%v want %d,%v", i, key, k, ok, wantK, wantOK)
				}
			}
		}
		if err := mp.CheckInvariants(c); err != nil {
			t.Fatal(err)
		}
	})
}
