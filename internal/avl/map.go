package avl

import (
	"rtle/internal/core"
	"rtle/internal/mem"
)

// Map is an ordered map from uint64 keys to uint64 values, backed by the
// same AVL machinery as Set (nodes carry one extra value word in their
// cache line). It adds the ordered queries an address-space manager needs
// — floor, ceiling, min — which the plain set benchmark does not.
//
// The concurrency contract is Set's: all access through core.Context
// inside atomic blocks; per-thread MapHandle for scratch state.
type Map struct {
	m    *mem.Memory
	head mem.Addr
}

// Node value offset (alongside offKey/offLeft/offRight/offHeight).
const offVal = 4

// NewMap allocates an empty ordered map on m.
func NewMap(m *mem.Memory) *Map {
	return &Map{m: m, head: m.AllocLines(1)}
}

// Memory returns the heap the map lives in.
func (mp *Map) Memory() *mem.Memory { return mp.m }

// MapHandle is the per-thread access handle for a Map.
type MapHandle struct {
	mp        *Map
	path      []pathEntry
	spare     mem.Addr
	freeList  []mem.Addr
	usedSpare bool
	removed   mem.Addr
}

// NewHandle returns a fresh per-thread handle.
func (mp *Map) NewHandle() *MapHandle {
	return &MapHandle{mp: mp, path: make([]pathEntry, 0, 64)}
}

// GetCS looks up key. It must run inside an atomic block (or on a
// quiescent map).
func (h *MapHandle) GetCS(c core.Context, key uint64) (uint64, bool) {
	cur := mem.Addr(c.Read(h.mp.head))
	for cur != mem.Nil {
		k := c.Read(cur + offKey)
		switch {
		case key == k:
			return c.Read(cur + offVal), true
		case key > k:
			cur = mem.Addr(c.Read(cur + offRight))
		default:
			cur = mem.Addr(c.Read(cur + offLeft))
		}
	}
	return 0, false
}

// PutCS sets key's value, inserting if absent; reports whether the key
// was newly inserted.
func (h *MapHandle) PutCS(c core.Context, key, val uint64) bool {
	h.path = h.path[:0]
	h.usedSpare = false
	cur := mem.Addr(c.Read(h.mp.head))
	for cur != mem.Nil {
		k := c.Read(cur + offKey)
		if key == k {
			c.Write(cur+offVal, val)
			return false
		}
		right := key > k
		h.path = append(h.path, pathEntry{cur, right, c.Read(cur + offHeight)})
		cur = mem.Addr(c.Read(cur + childOff(right)))
	}
	n := h.ensureSpare()
	c.Write(n+offKey, key)
	c.Write(n+offVal, val)
	c.Write(n+offLeft, uint64(mem.Nil))
	c.Write(n+offRight, uint64(mem.Nil))
	c.Write(n+offHeight, 1)
	h.usedSpare = true
	h.attach(c, len(h.path)-1, n)
	h.rebalancePath(c)
	return true
}

// RemoveCS removes key, reporting whether the map changed.
func (h *MapHandle) RemoveCS(c core.Context, key uint64) bool {
	h.path = h.path[:0]
	h.removed = mem.Nil
	cur := mem.Addr(c.Read(h.mp.head))
	for cur != mem.Nil {
		k := c.Read(cur + offKey)
		if key == k {
			break
		}
		right := key > k
		h.path = append(h.path, pathEntry{cur, right, c.Read(cur + offHeight)})
		cur = mem.Addr(c.Read(cur + childOff(right)))
	}
	if cur == mem.Nil {
		return false
	}
	target := cur
	left := mem.Addr(c.Read(target + offLeft))
	right := mem.Addr(c.Read(target + offRight))
	if left != mem.Nil && right != mem.Nil {
		h.path = append(h.path, pathEntry{target, true, c.Read(target + offHeight)})
		succ := right
		for {
			l := mem.Addr(c.Read(succ + offLeft))
			if l == mem.Nil {
				break
			}
			h.path = append(h.path, pathEntry{succ, false, c.Read(succ + offHeight)})
			succ = l
		}
		c.Write(target+offKey, c.Read(succ+offKey))
		c.Write(target+offVal, c.Read(succ+offVal))
		target = succ
		left = mem.Nil
		right = mem.Addr(c.Read(target + offRight))
	}
	child := left
	if child == mem.Nil {
		child = right
	}
	h.attach(c, len(h.path)-1, child)
	h.removed = target
	h.rebalancePath(c)
	return true
}

// FloorCS returns the greatest entry with key <= bound.
func (h *MapHandle) FloorCS(c core.Context, bound uint64) (key, val uint64, ok bool) {
	cur := mem.Addr(c.Read(h.mp.head))
	for cur != mem.Nil {
		k := c.Read(cur + offKey)
		switch {
		case k == bound:
			return k, c.Read(cur + offVal), true
		case k < bound:
			key, val, ok = k, c.Read(cur+offVal), true
			cur = mem.Addr(c.Read(cur + offRight))
		default:
			cur = mem.Addr(c.Read(cur + offLeft))
		}
	}
	return key, val, ok
}

// CeilingCS returns the least entry with key >= bound.
func (h *MapHandle) CeilingCS(c core.Context, bound uint64) (key, val uint64, ok bool) {
	cur := mem.Addr(c.Read(h.mp.head))
	for cur != mem.Nil {
		k := c.Read(cur + offKey)
		switch {
		case k == bound:
			return k, c.Read(cur + offVal), true
		case k > bound:
			key, val, ok = k, c.Read(cur+offVal), true
			cur = mem.Addr(c.Read(cur + offLeft))
		default:
			cur = mem.Addr(c.Read(cur + offRight))
		}
	}
	return key, val, ok
}

// MinCS returns the least entry.
func (h *MapHandle) MinCS(c core.Context) (key, val uint64, ok bool) {
	cur := mem.Addr(c.Read(h.mp.head))
	for cur != mem.Nil {
		key, val, ok = c.Read(cur+offKey), c.Read(cur+offVal), true
		cur = mem.Addr(c.Read(cur + offLeft))
	}
	return key, val, ok
}

// MaxCS returns the greatest entry.
func (h *MapHandle) MaxCS(c core.Context) (key, val uint64, ok bool) {
	cur := mem.Addr(c.Read(h.mp.head))
	for cur != mem.Nil {
		key, val, ok = c.Read(cur+offKey), c.Read(cur+offVal), true
		cur = mem.Addr(c.Read(cur + offRight))
	}
	return key, val, ok
}

// --- Post-commit bookkeeping (same contract as Set's Handle) ---------------

// AfterPut finalizes bookkeeping after a committed atomic block that
// called PutCS; pass the committed execution's result.
func (h *MapHandle) AfterPut(inserted bool) {
	if inserted && h.usedSpare {
		h.spare = mem.Nil
	}
}

// AfterRemove recycles the node a committed RemoveCS unlinked.
func (h *MapHandle) AfterRemove(removed bool) {
	if removed && h.removed != mem.Nil {
		h.freeList = append(h.freeList, h.removed)
		h.removed = mem.Nil
	}
}

// --- Atomic wrappers --------------------------------------------------------

// Get runs GetCS atomically on t.
func (h *MapHandle) Get(t core.Thread, key uint64) (uint64, bool) {
	var v uint64
	var ok bool
	t.Atomic(func(c core.Context) { v, ok = h.GetCS(c, key) })
	return v, ok
}

// Put runs PutCS atomically on t.
func (h *MapHandle) Put(t core.Thread, key, val uint64) bool {
	var inserted bool
	t.Atomic(func(c core.Context) { inserted = h.PutCS(c, key, val) })
	h.AfterPut(inserted)
	return inserted
}

// Remove runs RemoveCS atomically on t.
func (h *MapHandle) Remove(t core.Thread, key uint64) bool {
	var ok bool
	t.Atomic(func(c core.Context) { ok = h.RemoveCS(c, key) })
	h.AfterRemove(ok)
	return ok
}

// Floor runs FloorCS atomically on t.
func (h *MapHandle) Floor(t core.Thread, bound uint64) (uint64, uint64, bool) {
	var k, v uint64
	var ok bool
	t.Atomic(func(c core.Context) { k, v, ok = h.FloorCS(c, bound) })
	return k, v, ok
}

// --- Internals shared with Set ----------------------------------------------

func (h *MapHandle) ensureSpare() mem.Addr {
	if h.spare == mem.Nil {
		if n := len(h.freeList); n > 0 {
			h.spare = h.freeList[n-1]
			h.freeList = h.freeList[:n-1]
		} else {
			h.spare = h.mp.m.AllocLines(1)
		}
	}
	return h.spare
}

func (h *MapHandle) attach(c core.Context, i int, child mem.Addr) {
	if i < 0 {
		c.Write(h.mp.head, uint64(child))
		return
	}
	p := h.path[i]
	c.Write(p.addr+childOff(p.right), uint64(child))
}

func (h *MapHandle) rebalancePath(c core.Context) {
	for i := len(h.path) - 1; i >= 0; i-- {
		e := h.path[i]
		nr := balance(c, e.addr)
		if nr != e.addr {
			h.attach(c, i-1, nr)
		}
		if height(c, nr) == e.oldH {
			return
		}
	}
}

// --- Whole-map helpers (quiescent use) ---------------------------------------

// Len counts entries via c.
func (mp *Map) Len(c core.Context) int {
	return lenRec(c, mem.Addr(c.Read(mp.head)))
}

func lenRec(c core.Context, n mem.Addr) int {
	if n == mem.Nil {
		return 0
	}
	return 1 + lenRec(c, mem.Addr(c.Read(n+offLeft))) + lenRec(c, mem.Addr(c.Read(n+offRight)))
}

// Entries returns all (key, value) pairs in ascending key order via c.
func (mp *Map) Entries(c core.Context) (keys, vals []uint64) {
	entriesRec(c, mem.Addr(c.Read(mp.head)), &keys, &vals)
	return keys, vals
}

func entriesRec(c core.Context, n mem.Addr, keys, vals *[]uint64) {
	if n == mem.Nil {
		return
	}
	entriesRec(c, mem.Addr(c.Read(n+offLeft)), keys, vals)
	*keys = append(*keys, c.Read(n+offKey))
	*vals = append(*vals, c.Read(n+offVal))
	entriesRec(c, mem.Addr(c.Read(n+offRight)), keys, vals)
}

// CheckInvariants verifies BST ordering, heights, and balance via c.
func (mp *Map) CheckInvariants(c core.Context) error {
	_, err := checkRec(c, mem.Addr(c.Read(mp.head)), 0, ^uint64(0))
	return err
}
