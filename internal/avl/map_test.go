package avl

import (
	"testing"
	"testing/quick"

	"rtle/internal/core"
	"rtle/internal/mem"
	"rtle/internal/rng"
)

func newMapT(words int) (*Map, *MapHandle, core.Context) {
	m := mem.New(words)
	mp := NewMap(m)
	return mp, mp.NewHandle(), core.Direct(m)
}

func TestMapPutGet(t *testing.T) {
	_, h, c := newMapT(1 << 14)
	if !h.PutCS(c, 10, 100) {
		t.Fatal("first Put reported update")
	}
	h.AfterPut(true)
	if v, ok := h.GetCS(c, 10); !ok || v != 100 {
		t.Fatalf("Get = %d,%v", v, ok)
	}
	if h.PutCS(c, 10, 200) {
		t.Fatal("overwrite reported insertion")
	}
	if v, _ := h.GetCS(c, 10); v != 200 {
		t.Fatalf("overwrite lost: %d", v)
	}
	if _, ok := h.GetCS(c, 11); ok {
		t.Fatal("absent key found")
	}
}

func TestMapRemove(t *testing.T) {
	mp, h, c := newMapT(1 << 14)
	for k := uint64(0); k < 30; k++ {
		h.PutCS(c, k, k*2)
		h.AfterPut(true)
	}
	if !h.RemoveCS(c, 15) {
		t.Fatal("remove failed")
	}
	h.AfterRemove(true)
	if _, ok := h.GetCS(c, 15); ok {
		t.Fatal("removed key still present")
	}
	if mp.Len(c) != 29 {
		t.Fatalf("Len = %d", mp.Len(c))
	}
	if err := mp.CheckInvariants(c); err != nil {
		t.Fatal(err)
	}
}

func TestMapRemovePreservesValues(t *testing.T) {
	// Two-children removal copies key AND value from the successor.
	mp, h, c := newMapT(1 << 14)
	for _, k := range []uint64{50, 25, 75, 60, 90} {
		h.PutCS(c, k, k+1000)
		h.AfterPut(true)
	}
	if !h.RemoveCS(c, 50) { // successor is 60
		t.Fatal("remove failed")
	}
	h.AfterRemove(true)
	for _, k := range []uint64{25, 75, 60, 90} {
		if v, ok := h.GetCS(c, k); !ok || v != k+1000 {
			t.Fatalf("key %d -> %d,%v, want %d", k, v, ok, k+1000)
		}
	}
	if err := mp.CheckInvariants(c); err != nil {
		t.Fatal(err)
	}
}

func TestMapFloorCeiling(t *testing.T) {
	_, h, c := newMapT(1 << 14)
	for _, k := range []uint64{10, 20, 30} {
		h.PutCS(c, k, k*10)
		h.AfterPut(true)
	}
	cases := []struct {
		bound       uint64
		floorK      uint64
		floorOK     bool
		ceilK       uint64
		ceilOK      bool
		description string
	}{
		{5, 0, false, 10, true, "below all"},
		{10, 10, true, 10, true, "exact low"},
		{15, 10, true, 20, true, "between"},
		{30, 30, true, 30, true, "exact high"},
		{35, 30, true, 0, false, "above all"},
	}
	for _, tc := range cases {
		k, v, ok := h.FloorCS(c, tc.bound)
		if ok != tc.floorOK || (ok && (k != tc.floorK || v != tc.floorK*10)) {
			t.Errorf("%s: Floor(%d) = %d,%d,%v", tc.description, tc.bound, k, v, ok)
		}
		k, v, ok = h.CeilingCS(c, tc.bound)
		if ok != tc.ceilOK || (ok && (k != tc.ceilK || v != tc.ceilK*10)) {
			t.Errorf("%s: Ceiling(%d) = %d,%d,%v", tc.description, tc.bound, k, v, ok)
		}
	}
}

func TestMapMinMax(t *testing.T) {
	_, h, c := newMapT(1 << 14)
	if _, _, ok := h.MinCS(c); ok {
		t.Fatal("empty map has a min")
	}
	if _, _, ok := h.MaxCS(c); ok {
		t.Fatal("empty map has a max")
	}
	for _, k := range []uint64{42, 7, 99, 13} {
		h.PutCS(c, k, k)
		h.AfterPut(true)
	}
	if k, _, _ := h.MinCS(c); k != 7 {
		t.Fatalf("Min = %d", k)
	}
	if k, _, _ := h.MaxCS(c); k != 99 {
		t.Fatalf("Max = %d", k)
	}
}

func TestMapEntriesSorted(t *testing.T) {
	mp, h, c := newMapT(1 << 16)
	r := rng.NewXoshiro256(3)
	model := map[uint64]uint64{}
	for i := 0; i < 200; i++ {
		k, v := r.Uint64n(500), r.Next()
		h.PutCS(c, k, v)
		h.AfterPut(true)
		model[k] = v
	}
	keys, vals := mp.Entries(c)
	if len(keys) != len(model) {
		t.Fatalf("entries = %d, want %d", len(keys), len(model))
	}
	for i := range keys {
		if i > 0 && keys[i] <= keys[i-1] {
			t.Fatalf("keys not strictly ascending at %d", i)
		}
		if model[keys[i]] != vals[i] {
			t.Fatalf("key %d -> %d, want %d", keys[i], vals[i], model[keys[i]])
		}
	}
}

func TestMapModelRandomOps(t *testing.T) {
	mp, h, c := newMapT(1 << 20)
	model := map[uint64]uint64{}
	r := rng.NewXoshiro256(17)
	for i := 0; i < 15000; i++ {
		k := r.Uint64n(96)
		switch r.Intn(4) {
		case 0:
			v := r.Next()
			_, existed := model[k]
			got := h.PutCS(c, k, v)
			h.AfterPut(got)
			if got == existed {
				t.Fatalf("op %d: Put(%d) inserted=%v, existed=%v", i, k, got, existed)
			}
			model[k] = v
		case 1:
			_, existed := model[k]
			got := h.RemoveCS(c, k)
			h.AfterRemove(got)
			if got != existed {
				t.Fatalf("op %d: Remove(%d) = %v, want %v", i, k, got, existed)
			}
			delete(model, k)
		case 2:
			v, ok := h.GetCS(c, k)
			wv, wok := model[k]
			if ok != wok || v != wv {
				t.Fatalf("op %d: Get(%d) = %d,%v want %d,%v", i, k, v, ok, wv, wok)
			}
		default:
			gotK, gotV, ok := h.FloorCS(c, k)
			var wantK uint64
			var wantOK bool
			for mk := range model {
				if mk <= k && (!wantOK || mk > wantK) {
					wantK, wantOK = mk, true
				}
			}
			if ok != wantOK || (ok && (gotK != wantK || gotV != model[wantK])) {
				t.Fatalf("op %d: Floor(%d) = %d,%d,%v want %d,%v", i, k, gotK, gotV, ok, wantK, wantOK)
			}
		}
		if i%1000 == 0 {
			if err := mp.CheckInvariants(c); err != nil {
				t.Fatalf("op %d: %v", i, err)
			}
		}
	}
	if mp.Len(c) != len(model) {
		t.Fatalf("Len = %d, want %d", mp.Len(c), len(model))
	}
}

func TestQuickMapFloorCeilingConsistent(t *testing.T) {
	_, h, c := newMapT(1 << 18)
	r := rng.NewXoshiro256(9)
	for i := 0; i < 128; i++ {
		h.PutCS(c, r.Uint64n(1024), uint64(i))
		h.AfterPut(true)
	}
	f := func(bound uint16) bool {
		b := uint64(bound) % 1024
		fk, _, fok := h.FloorCS(c, b)
		ck, _, cok := h.CeilingCS(c, b)
		// Floor <= bound <= Ceiling when both exist; equality iff the
		// bound is present (then both return it).
		if fok && fk > b {
			return false
		}
		if cok && ck < b {
			return false
		}
		if fok && cok && fk == ck && fk != b {
			return false
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestMapNodeRecycling(t *testing.T) {
	mp, h, c := newMapT(1 << 14)
	h.PutCS(c, 1, 1)
	h.AfterPut(true)
	before := mp.m.Allocated()
	for i := 0; i < 40; i++ {
		h.RemoveCS(c, 1)
		h.AfterRemove(true)
		h.PutCS(c, 1, uint64(i))
		h.AfterPut(true)
	}
	if grown := mp.m.Allocated() - before; grown > 2*mem.WordsPerLine {
		t.Fatalf("heap grew %d words across churn", grown)
	}
}
