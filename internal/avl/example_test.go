package avl_test

import (
	"fmt"

	"rtle/internal/avl"
	"rtle/internal/core"
	"rtle/internal/mem"
)

// ExampleSet demonstrates basic set usage through a synchronization
// method: all shared accesses run inside atomic blocks.
func ExampleSet() {
	m := mem.New(1 << 16)
	method := core.NewFGTLE(m, 64, core.Policy{})
	set := avl.New(m)

	th := method.NewThread()
	h := set.NewHandle()

	fmt.Println(h.Insert(th, 42)) // true: newly inserted
	fmt.Println(h.Insert(th, 42)) // false: duplicate
	fmt.Println(h.Contains(th, 42))
	fmt.Println(h.Remove(th, 42))
	fmt.Println(h.Contains(th, 42))
	// Output:
	// true
	// false
	// true
	// true
	// false
}

// ExampleHandle_RangeCount shows an ordered range query; wide ranges
// overflow the simulated HTM capacity and transparently fall back to the
// lock.
func ExampleHandle_RangeCount() {
	m := mem.New(1 << 18)
	method := core.NewTLE(m, core.Policy{})
	set := avl.New(m)
	th := method.NewThread()
	h := set.NewHandle()
	for k := uint64(0); k < 50; k += 5 {
		h.Insert(th, k)
	}
	fmt.Println(h.RangeCount(th, 10, 30))
	// Output:
	// 5
}

// ExampleMap demonstrates the ordered map with floor queries — the
// operation an address-space manager resolves page faults with.
func ExampleMap() {
	m := mem.New(1 << 16)
	method := core.NewRWTLE(m, core.Policy{})
	amap := avl.NewMap(m)
	th := method.NewThread()
	h := amap.NewHandle()

	h.Put(th, 0x1000, 0x2000) // segment start -> length
	h.Put(th, 0x8000, 0x1000)

	start, length, ok := h.Floor(th, 0x1500)
	fmt.Printf("%#x %#x %v\n", start, length, ok)
	// Output:
	// 0x1000 0x2000 true
}
