package core_test

import (
	"fmt"

	"rtle/internal/core"
	"rtle/internal/mem"
)

// Example demonstrates the minimal end-to-end flow: heap, method, thread,
// atomic block.
func Example() {
	m := mem.New(1 << 16)
	method := core.NewFGTLE(m, 256, core.Policy{})
	counter := m.AllocLines(1)

	th := method.NewThread()
	for i := 0; i < 10; i++ {
		th.Atomic(func(c core.Context) {
			c.Write(counter, c.Read(counter)+1)
		})
	}
	fmt.Println(m.Load(counter))
	fmt.Println(th.Stats().FastCommits)
	// Output:
	// 10
	// 10
}

// ExamplePolicy shows the paper's §6.3 corner case: a critical section
// with an HTM-unfriendly instruction exhausts its attempt budget and runs
// under the lock.
func ExamplePolicy() {
	m := mem.New(1 << 16)
	method := core.NewTLE(m, core.Policy{Attempts: 3})
	a := m.AllocLines(1)

	th := method.NewThread()
	th.Atomic(func(c core.Context) {
		c.Unsupported() // divide-by-zero, syscall, ...
		c.Write(a, 7)
	})
	s := th.Stats()
	fmt.Println(m.Load(a), s.FastAttempts, s.LockRuns)
	// Output:
	// 7 3 1
}
