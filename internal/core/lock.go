package core

import (
	"time"

	"rtle/internal/mem"
	"rtle/internal/spinlock"
)

// LockMethod is the pessimistic baseline: every atomic block acquires the
// lock and runs uninstrumented. It anchors the paper's speedup
// normalization (every Fig. 5 curve is relative to single-threaded Lock).
type LockMethod struct {
	m      *mem.Memory
	lock   *spinlock.Lock
	policy Policy
}

// NewLock returns a lock-only method over m with a fresh lock.
func NewLock(m *mem.Memory) *LockMethod {
	return NewLockWithPolicy(m, Policy{})
}

// NewLockWithPolicy is NewLock honouring the policy's concurrency
// virtualization (the lock path paces its accesses like every other path,
// keeping the baseline comparable); the speculation knobs are ignored.
func NewLockWithPolicy(m *mem.Memory, policy Policy) *LockMethod {
	return &LockMethod{m: m, lock: spinlock.New(m), policy: policy}
}

// Name implements Method.
func (l *LockMethod) Name() string { return "Lock" }

// Lock exposes the underlying lock, so tests can share it across methods.
func (l *LockMethod) Lock() *spinlock.Lock { return l.lock }

// NewThread implements Method.
func (l *LockMethod) NewThread() Thread {
	return &lockThread{
		m:     l.m,
		lock:  l.lock,
		pacer: &Pacer{Every: l.policy.HTM.InterleaveEvery},
		rec:   NewRecorder(l.policy, l.Name()),
	}
}

type lockThread struct {
	m     *mem.Memory
	lock  *spinlock.Lock
	pacer *Pacer
	rec   Recorder
}

func (t *lockThread) Stats() *Stats { return t.rec.Stats() }

// Atomic always takes the pessimistic path; the body runs uninstrumented.
//
//rtle:lockpath
func (t *lockThread) Atomic(body func(Context)) {
	t0 := t.rec.Begin()
	t.lock.Acquire()
	t.rec.LockAcquired()
	start := time.Now()
	body(lockPathCtx(t.m, t.pacer))
	t.rec.LockHold(time.Since(start).Nanoseconds())
	t.lock.Release()
	t.rec.LockCommit(t0)
}
