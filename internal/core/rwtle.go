package core

import (
	"time"

	"rtle/internal/htm"
	"rtle/internal/mem"
	"rtle/internal/spinlock"
)

// RWTLEMethod implements RW-TLE (§3): the lock is augmented with a boolean
// write flag. While a thread holds the lock, other threads may complete
// read-only critical sections in hardware transactions on the slow path,
// as long as the lock holder has not yet executed its first write:
//
//   - The lock holder's write barrier raises the flag on its first write.
//   - A slow-path transaction subscribes to the flag at begin (aborting if
//     it is already set), so a later flag raise aborts it.
//   - A slow-path transaction's own write barrier self-aborts — only
//     read-only transactions may commit on the slow path (Figure 2).
//
// The flag deliberately shares a cache line with the lock word, so that the
// lock-release store also aborts slow-path subscribers: this is the eager
// switch back to the fast path that §6.3 contrasts with FG-TLE's behaviour.
type RWTLEMethod struct {
	m        *mem.Memory
	lock     *spinlock.Lock
	flagAddr mem.Addr //rtle:meta
	policy   Policy
}

// NewRWTLE returns an RW-TLE method over m with a fresh lock+flag line.
func NewRWTLE(m *mem.Memory, policy Policy) *RWTLEMethod {
	line := m.AllocLines(1)
	return &RWTLEMethod{
		m:        m,
		lock:     spinlock.NewAt(m, line),
		flagAddr: line + 1,
		policy:   policy,
	}
}

// Name implements Method.
func (r *RWTLEMethod) Name() string { return "RW-TLE" }

// Lock exposes the underlying lock.
func (r *RWTLEMethod) Lock() *spinlock.Lock { return r.lock }

// FlagAddr returns the write-flag address (for tests).
func (r *RWTLEMethod) FlagAddr() mem.Addr { return r.flagAddr }

// NewThread implements Method.
func (r *RWTLEMethod) NewThread() Thread {
	t := &rwtleThread{method: r}
	t.refinedThread = refinedThread{
		m:        r.m,
		lock:     r.lock,
		policy:   r.policy,
		pacer:    &Pacer{Every: r.policy.HTM.InterleaveEvery},
		attempts: attemptPolicyFor(r.policy),
		tx:       htm.NewTx(r.m, r.policy.HTM),
		rec:      NewRecorder(r.policy, r.Name()),
	}
	t.slowAttempt = t.runSlow
	t.lockRun = t.runUnderLock
	return t
}

type rwtleThread struct {
	refinedThread
	method *RWTLEMethod
	wrote  bool //rtle:meta write flag raised during the current lock-held CS
}

// runSlow is one instrumented slow-path attempt: subscribe to the write
// flag, run the body with the aborting write barrier, optionally subscribe
// to the lock lazily.
//
//rtle:slowpath
func (t *rwtleThread) runSlow(body func(Context)) htm.AbortReason {
	return t.tx.Run(func(tx *htm.Tx) {
		if tx.Read(t.method.flagAddr) != 0 {
			tx.Abort()
		}
		body(rwSlowCtx{tx})
		t.lazySubscribe(tx)
	})
}

// runUnderLock is the instrumented pessimistic path: writes raise the flag
// (once per critical section — Figure 2's note that only the first write
// needs the barrier).
//
//rtle:lockpath
func (t *rwtleThread) runUnderLock(body func(Context)) {
	t.lock.Acquire()
	t.rec.LockAcquired()
	start := time.Now()
	t.wrote = false
	body(rwLockCtx{t})
	if t.wrote {
		t.m.Store(t.method.flagAddr, 0)
	}
	t.rec.LockHold(time.Since(start).Nanoseconds())
	t.lock.Release()
}

// rwSlowCtx is the instrumented slow path: reads are plain transactional
// loads; any write self-aborts (Figure 2, line 2).
type rwSlowCtx struct {
	tx *htm.Tx
}

//rtle:slowpath
func (c rwSlowCtx) Read(a mem.Addr) uint64 { return c.tx.Read(a) }

//rtle:slowpath
func (c rwSlowCtx) Write(a mem.Addr, v uint64) { c.tx.Abort() }
func (c rwSlowCtx) InHTM() bool                { return true }
func (c rwSlowCtx) Unsupported()               { c.tx.Unsupported() }

// rwLockCtx is the instrumented pessimistic path: the first write raises
// the write flag before touching data (Figure 2, lines 3–4; under TSO the
// flag store becomes visible no later than the data store).
type rwLockCtx struct {
	t *rwtleThread
}

//rtle:lockpath
func (c rwLockCtx) Read(a mem.Addr) uint64 {
	c.t.pacer.Tick()
	return c.t.m.Load(a)
}

//rtle:lockpath
func (c rwLockCtx) Write(a mem.Addr, v uint64) {
	c.t.pacer.Tick()
	if !c.t.wrote {
		c.t.m.Store(c.t.method.flagAddr, 1)
		c.t.wrote = true
	}
	c.t.m.Store(a, v)
}

func (c rwLockCtx) InHTM() bool  { return false }
func (c rwLockCtx) Unsupported() {}
