package core

import "rtle/internal/htm"

// AttemptPolicy decides, per thread, how many fast-path HTM attempts to
// make before falling back to the lock. The paper fixes the budget at 5
// and notes (§2) that dynamic policies — Dice et al.'s adaptive
// integration [12] and Diegues–Romano's self-tuning TSX [13] — are
// orthogonal work; this interface and the AIMD implementation below
// reproduce that orthogonal extension so it can be ablated.
//
// Implementations are per-thread (no synchronization needed).
type AttemptPolicy interface {
	// Budget returns the attempt budget for the next atomic block.
	Budget() int
	// Record reports how the block went: how many fast-path attempts
	// were spent and whether the block eventually committed in HTM
	// (false means it took the lock).
	Record(attempts int, elided bool)
}

// StaticAttempts is the paper's fixed budget.
type StaticAttempts int

// Budget implements AttemptPolicy.
func (s StaticAttempts) Budget() int { return int(s) }

// Record implements AttemptPolicy (no state).
func (s StaticAttempts) Record(int, bool) {}

// AIMDAttempts adapts the budget with additive increase / multiplicative
// decrease, in the spirit of [12, 13]: commits that needed many retries
// raise the budget (retrying pays off); lock fallbacks halve it (retries
// were wasted).
type AIMDAttempts struct {
	Min, Max int
	budget   int
}

// NewAIMDAttempts returns an adaptive policy bounded to [min, max],
// starting at the paper's default of 5 (clamped).
func NewAIMDAttempts(min, max int) *AIMDAttempts {
	if min < 1 {
		min = 1
	}
	if max < min {
		max = min
	}
	start := DefaultAttempts
	if start < min {
		start = min
	}
	if start > max {
		start = max
	}
	return &AIMDAttempts{Min: min, Max: max, budget: start}
}

// Budget implements AttemptPolicy.
func (a *AIMDAttempts) Budget() int { return a.budget }

// Record implements AttemptPolicy.
func (a *AIMDAttempts) Record(attempts int, elided bool) {
	switch {
	case !elided:
		a.budget /= 2
		if a.budget < a.Min {
			a.budget = a.Min
		}
	case attempts+1 >= a.budget && a.budget < a.Max:
		// The commit used the whole budget: one more retry might
		// rescue the next marginal block too.
		a.budget++
	}
}

// AttemptPolicyFor materializes the per-thread attempt policy from a
// Policy, for execution layers built outside this package (the elision
// guards in internal/guard share the methods' attempt semantics).
func AttemptPolicyFor(p Policy) AttemptPolicy { return attemptPolicyFor(p) }

// attemptPolicyFor materializes the per-thread attempt policy from a
// Policy: the adaptive one when requested, else the static budget.
func attemptPolicyFor(p Policy) AttemptPolicy {
	if p.AdaptiveAttempts {
		return NewAIMDAttempts(1, 4*p.attempts())
	}
	return StaticAttempts(p.attempts())
}

// htmConfig is a convenience accessor used by method constructors.
func (p Policy) htmConfig() htm.Config { return p.HTM }
