package core

import (
	"fmt"
	"time"

	"rtle/internal/htm"
	"rtle/internal/mem"
	"rtle/internal/spinlock"
	"rtle/internal/wanghash"
)

// ALEMethod models Amalgamated Lock Elision (Afek, Matveev, Moll, Shavit —
// DISC 2015), the concurrent work the paper contrasts with refined TLE in
// §2. Like refined TLE, ALE lets one pessimistic thread run alongside
// hardware transactions; the structural differences — both implemented
// here because they are exactly what the paper criticizes — are:
//
//  1. The roles are inverted: in ALE the *hardware* fast path carries the
//     instrumentation (every fast-path write stamps an ownership record),
//     paying overhead even when no thread is in software; the software
//     thread (the lock holder) runs with buffered writes.
//  2. The software thread publishes its write buffer with a small hardware
//     transaction at the end of its critical section; if that write-back
//     transaction cannot commit, a blocked flag halts ALL fast-path
//     transactions — even ones with no data conflict — for a pessimistic
//     write-back.
//
// Reconstruction notes (DESIGN.md §2): the software thread detects
// interference from concurrently committing fast-path transactions through
// the orecs its read barrier checks eagerly, with the simulator's line
// versions standing in for ALE's signature scheme to guarantee the
// software execution never acts on a torn view; the write-back transaction
// re-validates the entire read log by value, so validation and publication
// are one atomic step. Fast-path transactions subscribe to the software
// phase counter, so a beginning software section aborts in-flight fast
// transactions once (the analogue of ALE's synchronized phase start).
type ALEMethod struct {
	m      *mem.Memory
	lock   *spinlock.Lock
	policy Policy

	seqAddr     mem.Addr //rtle:meta software-phase counter (bumped by each sw section)
	blockedAddr mem.Addr //rtle:meta halts the fast path during pessimistic write-back
	orecs       mem.Addr
	norecs      uint64
}

// NewALE returns an ALE-style method over m with the given write-orec
// count (power of two).
//
//rtle:init
func NewALE(m *mem.Memory, orecs int, policy Policy) *ALEMethod {
	if orecs < 1 || orecs > 1<<20 || orecs&(orecs-1) != 0 {
		panic(fmt.Sprintf("core: ALE orec count %d is not a power of two in [1, 2^20]", orecs))
	}
	a := &ALEMethod{
		m:      m,
		lock:   spinlock.New(m),
		policy: policy,
		norecs: uint64(orecs),
	}
	line := m.AllocLines(1)
	a.seqAddr = line
	a.blockedAddr = line + 1
	m.Store(a.seqAddr, 1)
	a.orecs = m.AllocAligned(orecs)
	return a
}

// Name implements Method.
func (a *ALEMethod) Name() string { return fmt.Sprintf("ALE(%d)", a.norecs) }

// Lock exposes the underlying lock.
func (a *ALEMethod) Lock() *spinlock.Lock { return a.lock }

// NewThread implements Method.
func (a *ALEMethod) NewThread() Thread {
	return &aleThread{
		method:   a,
		tx:       htm.NewTx(a.m, a.policy.HTM),
		pacer:    &Pacer{Every: a.policy.HTM.InterleaveEvery},
		attempts: attemptPolicyFor(a.policy),
		writeMap: map[mem.Addr]uint64{},
		rec:      NewRecorder(a.policy, a.Name()),
	}
}

type aleThread struct {
	method   *ALEMethod
	tx       *htm.Tx
	pacer    *Pacer
	attempts AttemptPolicy
	rec      Recorder

	// Software-section state.
	swSeq      uint64              //rtle:meta phase counter value of this section
	swClock    uint64              //rtle:meta memory-clock snapshot at section begin
	readAddrs  []mem.Addr          //rtle:meta
	readVals   []uint64            //rtle:meta
	writeMap   map[mem.Addr]uint64 //rtle:meta
	writeOrder []mem.Addr          //rtle:meta
}

func (t *aleThread) Stats() *Stats { return t.rec.Stats() }

func (t *aleThread) Atomic(body func(Context)) {
	t0 := t.rec.Begin()
	a := t.method
	attempts := 0
	budget := t.attempts.Budget()
	for attempts < budget {
		t.rec.FastAttempt()
		reason := t.tx.Run(func(tx *htm.Tx) {
			// Subscribe to the blocked flag (pessimistic write-back
			// halts us) and the phase counter (a beginning software
			// section invalidates our orec stamps).
			if tx.Read(a.blockedAddr) != 0 {
				tx.Abort()
			}
			seq := tx.Read(a.seqAddr)
			body(aleFastCtx{method: a, tx: tx, seq: seq})
		})
		if reason == htm.None {
			t.rec.FastCommit(t0)
			t.attempts.Record(attempts, true)
			return
		}
		t.rec.FastAbort(reason, false, t.tx.LastAbortInjected())
		attempts++
	}
	t.attempts.Record(attempts, false)
	t.software(body)
	t.rec.LockCommit(t0)
}

// software runs the critical section as the single software thread, under
// the lock, with buffered writes, retrying until the write-back commits.
//
//rtle:lockpath
func (t *aleThread) software(body func(Context)) {
	a := t.method
	a.lock.Acquire()
	t.rec.LockAcquired()
	start := time.Now()
	for {
		if t.attemptSoftware(body) {
			break
		}
		t.rec.STMAbort()
	}
	t.rec.LockHold(time.Since(start).Nanoseconds())
	a.lock.Release()
}

type aleAbort struct{}

// attemptSoftware runs one buffered execution plus write-back; false means
// interference was detected and the section must re-run.
//
//rtle:lockpath
func (t *aleThread) attemptSoftware(body func(Context)) (ok bool) {
	a := t.method
	m := a.m
	// Begin a software phase: the bump aborts all in-flight fast-path
	// transactions (they subscribed to seqAddr), so every fast commit
	// that lands during this section stamps orecs with a value >= swSeq.
	t.swSeq = m.Load(a.seqAddr) + 1
	m.Store(a.seqAddr, t.swSeq)
	t.swClock = m.ClockLoad()
	t.readAddrs = t.readAddrs[:0]
	t.readVals = t.readVals[:0]
	clear(t.writeMap)
	t.writeOrder = t.writeOrder[:0]
	t.rec.STMStart()

	defer func() {
		if r := recover(); r != nil {
			if _, is := r.(aleAbort); is {
				ok = false
				return
			}
			panic(r)
		}
	}()
	body(aleSwCtx{t})
	return t.writeBack()
}

// writeBack publishes the buffered writes: first with a small hardware
// transaction that revalidates the read log by value (atomically with the
// publication), then — after repeated failures — pessimistically behind
// the blocked flag, halting the whole fast path (the §2 criticism).
//
//rtle:lockpath
func (t *aleThread) writeBack() bool {
	a := t.method
	m := a.m
	if len(t.writeOrder) == 0 {
		// Read-only section: reads were validated eagerly (orec +
		// version checks), so the section is consistent as of swClock.
		// ALE software sections are dual-booked: a lock run (the Op,
		// recorded by Atomic) plus the STM commit bucket of the
		// write-back, hence the extraCommit here and below.
		t.rec.ExtraCommit(CommitSTMRO)
		return true
	}
	valid := true
	for i := 0; i < t.method.policyAttempts(); i++ {
		reason := t.tx.Run(func(tx *htm.Tx) {
			// Every logged read is a pre-write observation and must
			// still hold — including reads of addresses this section
			// later wrote (read-modify-writes).
			for j, addr := range t.readAddrs {
				if tx.Read(addr) != t.readVals[j] {
					valid = false
					tx.Abort()
				}
			}
			for _, addr := range t.writeOrder {
				tx.Write(addr, t.writeMap[addr])
			}
		})
		if reason == htm.None {
			t.rec.ExtraCommit(CommitSTMHTM)
			return true
		}
		if !valid {
			return false // real interference: re-run the section
		}
	}
	// Halt the fast path and publish pessimistically.
	m.Store(a.blockedAddr, 1)
	defer m.Store(a.blockedAddr, 0)
	for j, addr := range t.readAddrs {
		if m.Load(addr) != t.readVals[j] {
			return false
		}
	}
	for _, addr := range t.writeOrder {
		m.Store(addr, t.writeMap[addr])
	}
	t.rec.ExtraCommit(CommitSTMLock)
	return true
}

func (a *ALEMethod) policyAttempts() int { return a.policy.attempts() }

func (a *ALEMethod) orecOf(addr mem.Addr) mem.Addr {
	return a.orecs + mem.Addr(wanghash.Hash(uint64(addr), a.norecs))
}

// aleFastCtx is ALE's hardware fast path: reads are raw, writes carry the
// always-on instrumentation (stamp the orec with the subscribed phase
// counter) — the overhead the paper's §2 calls out.
type aleFastCtx struct {
	method *ALEMethod
	tx     *htm.Tx
	seq    uint64
}

//rtle:speculative
func (c aleFastCtx) Read(a mem.Addr) uint64 { return c.tx.Read(a) }

//rtle:speculative
func (c aleFastCtx) Write(a mem.Addr, v uint64) {
	oa := c.method.orecOf(a)
	if c.tx.Read(oa) != c.seq {
		c.tx.Write(oa, c.seq)
	}
	c.tx.Write(a, v)
}

func (c aleFastCtx) InHTM() bool  { return true }
func (c aleFastCtx) Unsupported() { c.tx.Unsupported() }

// aleSwCtx is ALE's software path: buffered writes; reads check the orec
// eagerly (a fast-path commit during this section stamps it with >= swSeq)
// and the line version (no torn views), then log the value for the atomic
// write-back validation.
type aleSwCtx struct {
	t *aleThread
}

//rtle:lockpath
func (c aleSwCtx) Read(a mem.Addr) uint64 {
	t := c.t
	t.pacer.Tick()
	if len(t.writeMap) > 0 {
		if v, ok := t.writeMap[a]; ok {
			return v
		}
	}
	m := t.method.m
	if m.Load(t.method.orecOf(a)) >= t.swSeq {
		panic(aleAbort{})
	}
	line := mem.LineOf(a)
	v := m.Load(a)
	if mw := m.MetaLoad(line); mem.Locked(mw) || mem.VersionOf(mw) > t.swClock {
		// A transaction committed to this line after the section
		// began: the view would be torn.
		panic(aleAbort{})
	}
	t.readAddrs = append(t.readAddrs, a)
	t.readVals = append(t.readVals, v)
	return v
}

//rtle:lockpath
func (c aleSwCtx) Write(a mem.Addr, v uint64) {
	t := c.t
	t.pacer.Tick()
	if _, ok := t.writeMap[a]; !ok {
		t.writeOrder = append(t.writeOrder, a)
	}
	t.writeMap[a] = v
}

func (c aleSwCtx) InHTM() bool  { return false }
func (c aleSwCtx) Unsupported() {}
