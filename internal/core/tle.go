package core

import (
	"time"

	"rtle/internal/htm"
	"rtle/internal/mem"
	"rtle/internal/spinlock"
)

// TLEMethod is standard transactional lock elision (Fig. 1, left path):
// attempt the critical section in a hardware transaction with the lock
// subscribed; after Policy.Attempts failures acquire the lock. While the
// lock is held, every speculating thread waits — the limitation the
// refined variants remove.
type TLEMethod struct {
	m      *mem.Memory
	lock   *spinlock.Lock
	policy Policy
}

// NewTLE returns a TLE method over m with a fresh lock.
func NewTLE(m *mem.Memory, policy Policy) *TLEMethod {
	return &TLEMethod{m: m, lock: spinlock.New(m), policy: policy}
}

// Name implements Method.
func (t *TLEMethod) Name() string { return "TLE" }

// Lock exposes the underlying lock.
func (t *TLEMethod) Lock() *spinlock.Lock { return t.lock }

// NewThread implements Method.
func (t *TLEMethod) NewThread() Thread {
	return &tleThread{
		m:        t.m,
		lock:     t.lock,
		policy:   t.policy,
		tx:       htm.NewTx(t.m, t.policy.HTM),
		pacer:    &Pacer{Every: t.policy.HTM.InterleaveEvery},
		attempts: attemptPolicyFor(t.policy),
		rec:      NewRecorder(t.policy, t.Name()),
	}
}

type tleThread struct {
	m        *mem.Memory
	lock     *spinlock.Lock
	policy   Policy
	tx       *htm.Tx
	pacer    *Pacer
	attempts AttemptPolicy
	rec      Recorder

	lockBusy bool // set when the subscription check sees the lock held
}

func (t *tleThread) Stats() *Stats { return t.rec.Stats() }

// subscribe reads the lock word inside the transaction, adding it to the
// read set so that a later acquisition aborts this transaction; if the lock
// is already held the attempt self-aborts immediately.
//
//rtle:speculative
func (t *tleThread) subscribe(tx *htm.Tx) {
	if tx.Read(t.lock.Addr()) != 0 {
		t.lockBusy = true
		tx.Abort()
	}
}

func (t *tleThread) Atomic(body func(Context)) {
	t0 := t.rec.Begin()
	attempts := 0
	budget := t.attempts.Budget()
	for {
		// "Is lock available?" — do not even start a transaction that
		// is doomed to fail its subscription [16].
		if t.lock.Held() {
			t.lock.WaitUntilFree()
		}
		if attempts >= budget {
			t.runUnderLock(body)
			t.rec.LockCommit(t0)
			t.attempts.Record(attempts, false)
			return
		}
		t.lockBusy = false
		t.rec.FastAttempt()
		reason := t.tx.Run(func(tx *htm.Tx) {
			t.subscribe(tx)
			body(htmCtx{tx})
		})
		if reason == htm.None {
			t.rec.FastCommit(t0)
			t.attempts.Record(attempts, true)
			return
		}
		t.rec.FastAbort(reason, t.lockBusy, t.tx.LastAbortInjected())
		attempts++
	}
}

// runUnderLock executes the pessimistic path: plain TLE runs the
// unmodified (uninstrumented) critical section.
//
//rtle:lockpath
func (t *tleThread) runUnderLock(body func(Context)) {
	t.lock.Acquire()
	t.rec.LockAcquired()
	start := time.Now()
	body(lockPathCtx(t.m, t.pacer))
	t.rec.LockHold(time.Since(start).Nanoseconds())
	t.lock.Release()
}
