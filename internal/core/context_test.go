package core_test

import (
	"testing"

	"rtle/internal/core"
	"rtle/internal/mem"
	"rtle/internal/norec"
	"rtle/internal/rhnorec"
)

func TestDirectContextSemantics(t *testing.T) {
	m := mem.New(1 << 12)
	c := core.Direct(m)
	a := m.Alloc(2)
	c.Write(a, 11)
	c.Write(a+1, 22)
	if c.Read(a) != 11 || c.Read(a+1) != 22 {
		t.Fatal("direct context lost writes")
	}
	if c.InHTM() {
		t.Fatal("direct context claims to be in HTM")
	}
	c.Unsupported() // must be a no-op
	if m.Load(a) != 11 {
		t.Fatal("Unsupported damaged state")
	}
}

func TestDirectWritesVisibleToOtherContexts(t *testing.T) {
	m := mem.New(1 << 12)
	a := m.Alloc(1)
	core.Direct(m).Write(a, 9)
	if m.Load(a) != 9 {
		t.Fatal("direct write not visible via plain load")
	}
	meth := core.NewTLE(m, core.Policy{})
	th := meth.NewThread()
	var got uint64
	th.Atomic(func(c core.Context) { got = c.Read(a) })
	if got != 9 {
		t.Fatal("direct write not visible inside a transaction")
	}
}

// TestContextsAgreeAcrossMethods: the same critical section produces the
// same result through every method's context, including the exotic paths.
func TestContextsAgreeAcrossMethods(t *testing.T) {
	type cs = func(c core.Context) uint64
	body := func(base mem.Addr) cs {
		return func(c core.Context) uint64 {
			// A small read-compute-write kernel.
			x := c.Read(base)
			y := c.Read(base + 1)
			c.Write(base+2, x*31+y)
			return c.Read(base + 2)
		}
	}
	var want uint64
	for i, name := range []string{"Lock", "TLE", "HLE", "RW-TLE", "FG-TLE(16)", "FG-TLE(adaptive)", "ALE(16)", "NOrec", "RHNOrec"} {
		m := mem.New(1 << 18)
		base := m.AllocLines(1)
		m.Store(base, 1234)
		m.Store(base+1, 99)
		meth := methodByNameExt(t, m, name)
		th := meth.NewThread()
		var got uint64
		f := body(base)
		th.Atomic(func(c core.Context) { got = f(c) })
		if i == 0 {
			want = got
		} else if got != want {
			t.Errorf("method %s computed %d, want %d", name, got, want)
		}
		if m.Load(base+2) != want {
			t.Errorf("method %s left %d in memory, want %d", name, m.Load(base+2), want)
		}
	}
}

func methodByNameExt(t *testing.T, m *mem.Memory, name string) core.Method {
	t.Helper()
	switch name {
	case "HLE":
		return core.NewHLE(m, core.Policy{})
	case "ALE(16)":
		return core.NewALE(m, 16, core.Policy{})
	case "NOrec":
		return norec.New(m, core.Policy{})
	case "RHNOrec":
		return rhnorec.New(m, core.Policy{})
	default:
		return methodByName(t, m, name, core.Policy{})
	}
}
