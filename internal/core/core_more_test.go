package core_test

import (
	"sync"
	"testing"
	"time"

	"rtle/internal/avl"
	"rtle/internal/core"
	"rtle/internal/htm"
	"rtle/internal/mem"
	"rtle/internal/rng"
)

// TestFGTLEWriterBlockedByHolderRead: the r_orecs array must prevent a
// slow-path transaction from writing data the lock holder has read
// (Figure 3's write barrier checks both orec arrays).
func TestFGTLEWriterBlockedByHolderRead(t *testing.T) {
	m := mem.New(1 << 16)
	meth := core.NewFGTLE(m, 256, core.Policy{})
	x := m.AllocLines(1)
	m.Store(x, 7)

	holder := meth.NewThread()
	writer := meth.NewThread()
	inCS := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		holdLock(holder, inCS, release, func(c core.Context) {
			c.Read(x) // stamps r_orec[x]
		})
		close(done)
	}()
	<-inCS

	finished := make(chan struct{})
	go func() {
		writer.Atomic(func(c core.Context) { c.Write(x, 9) })
		close(finished)
	}()
	select {
	case <-finished:
		t.Fatal("slow-path writer committed against a holder that read the address")
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	<-finished
	<-done
	if m.Load(x) != 9 {
		t.Fatalf("write lost after release: %d", m.Load(x))
	}
}

// TestFGTLEReadOfHolderReadIsAllowed: read-read sharing with the lock
// holder must commit on the slow path (only w_orecs gate reads).
func TestFGTLEReadOfHolderReadIsAllowed(t *testing.T) {
	m := mem.New(1 << 16)
	meth := core.NewFGTLE(m, 256, core.Policy{})
	x := m.AllocLines(1)
	m.Store(x, 5)

	holder := meth.NewThread()
	reader := meth.NewThread()
	inCS := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		holdLock(holder, inCS, release, func(c core.Context) {
			c.Read(x)
		})
		close(done)
	}()
	<-inCS

	var got uint64
	finished := make(chan struct{})
	go func() {
		reader.Atomic(func(c core.Context) { got = c.Read(x) })
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("read-read sharing with the holder blocked")
	}
	if got != 5 || reader.Stats().SlowCommits != 1 {
		t.Fatalf("got=%d slowCommits=%d", got, reader.Stats().SlowCommits)
	}
	close(release)
	<-done
}

// TestFGTLEOneOrecBlocksEverything: with a single orec, any holder access
// owns the whole address space, so no slow-path transaction that touches
// data can commit (§6.2.1's FG-TLE(1) analysis).
func TestFGTLEOneOrecBlocksEverything(t *testing.T) {
	m := mem.New(1 << 16)
	meth := core.NewFGTLE(m, 1, core.Policy{})
	x := m.AllocLines(1)
	y := m.AllocLines(1)

	holder := meth.NewThread()
	reader := meth.NewThread()
	inCS := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		holdLock(holder, inCS, release, func(c core.Context) {
			c.Write(x, 1) // stamps THE w_orec
		})
		close(done)
	}()
	<-inCS

	finished := make(chan struct{})
	go func() {
		reader.Atomic(func(c core.Context) { c.Read(y) }) // disjoint data, same orec
		close(finished)
	}()
	select {
	case <-finished:
		t.Fatal("FG-TLE(1) allowed a slow-path commit despite a holder write")
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	<-finished
	<-done
}

// TestRWTLEEmptyCSCommitsOnSlowPath: an empty critical section is
// trivially read-only and must commit while the lock is held — this is
// exactly the §5 semantics difference RW-TLE exhibits too.
func TestRWTLEEmptyCSCommitsOnSlowPath(t *testing.T) {
	m := mem.New(1 << 16)
	meth := core.NewRWTLE(m, core.Policy{})
	holder := meth.NewThread()
	other := meth.NewThread()
	inCS := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		holdLock(holder, inCS, release, nil)
		close(done)
	}()
	<-inCS
	finished := make(chan struct{})
	go func() {
		other.Atomic(func(core.Context) {})
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("empty CS blocked under RW-TLE")
	}
	if other.Stats().SlowCommits != 1 {
		t.Fatalf("SlowCommits = %d, want 1", other.Stats().SlowCommits)
	}
	close(release)
	<-done
}

// TestRWTLELazySubscriptionBlocksReaders: with lazy subscription even
// read-only slow-path transactions must wait for the release.
func TestRWTLELazySubscriptionBlocksReaders(t *testing.T) {
	m := mem.New(1 << 16)
	meth := core.NewRWTLE(m, core.Policy{LazySubscription: true})
	x := m.AllocLines(1)
	holder := meth.NewThread()
	reader := meth.NewThread()
	inCS := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		holdLock(holder, inCS, release, nil)
		close(done)
	}()
	<-inCS
	finished := make(chan struct{})
	go func() {
		reader.Atomic(func(c core.Context) { c.Read(x) })
		close(finished)
	}()
	select {
	case <-finished:
		t.Fatal("lazy-subscribed reader committed while the lock was held")
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	<-finished
	<-done
	if reader.Stats().SlowCommits != 0 {
		t.Fatalf("SlowCommits = %d, want 0 under lazy subscription", reader.Stats().SlowCommits)
	}
}

// TestPolicyAttemptsRespected: exactly Attempts fast-path tries happen
// before the lock path.
func TestPolicyAttemptsRespected(t *testing.T) {
	for _, attempts := range []int{1, 2, 7} {
		m := mem.New(1 << 16)
		meth := core.NewTLE(m, core.Policy{Attempts: attempts})
		th := meth.NewThread()
		th.Atomic(func(c core.Context) { c.Unsupported() })
		s := th.Stats()
		if int(s.FastAttempts) != attempts {
			t.Fatalf("attempts=%d: FastAttempts = %d", attempts, s.FastAttempts)
		}
		if s.LockRuns != 1 {
			t.Fatalf("attempts=%d: LockRuns = %d", attempts, s.LockRuns)
		}
	}
}

// TestTLENeverCommitsSlowPath: plain TLE has no slow path by definition.
func TestTLENeverCommitsSlowPath(t *testing.T) {
	m := mem.New(1 << 18)
	meth := core.NewTLE(m, core.Policy{})
	a := m.AllocLines(1)
	const goroutines = 4
	var wg sync.WaitGroup
	wg.Add(goroutines)
	threads := make([]core.Thread, goroutines)
	for g := 0; g < goroutines; g++ {
		threads[g] = meth.NewThread()
	}
	for g := 0; g < goroutines; g++ {
		go func(id int, th core.Thread) {
			defer wg.Done()
			r := rng.NewXoshiro256(uint64(id))
			for i := 0; i < 500; i++ {
				unfriendly := r.Intn(10) == 0
				th.Atomic(func(c core.Context) {
					if unfriendly {
						c.Unsupported()
					}
					c.Write(a, c.Read(a)+1)
				})
			}
		}(g, threads[g])
	}
	wg.Wait()
	for i, th := range threads {
		if th.Stats().SlowCommits != 0 || th.Stats().SlowAttempts != 0 {
			t.Fatalf("thread %d: TLE recorded slow-path activity: %+v", i, *th.Stats())
		}
	}
}

// TestHLESingleAttemptThenLock: the HLE model makes exactly one
// speculative attempt.
func TestHLESingleAttemptThenLock(t *testing.T) {
	m := mem.New(1 << 16)
	meth := core.NewHLE(m, core.Policy{})
	a := m.AllocLines(1)
	th := meth.NewThread()
	th.Atomic(func(c core.Context) {
		c.Unsupported()
		c.Write(a, c.Read(a)+1)
	})
	s := th.Stats()
	if s.FastAttempts != 1 || s.LockRuns != 1 {
		t.Fatalf("FastAttempts=%d LockRuns=%d, want 1/1", s.FastAttempts, s.LockRuns)
	}
	if m.Load(a) != 1 {
		t.Fatal("effect lost")
	}
}

// TestHLECorrectnessConcurrent: HLE preserves atomicity like the others.
func TestHLECorrectnessConcurrent(t *testing.T) {
	m := mem.New(1 << 18)
	meth := core.NewHLE(m, core.Policy{})
	a := m.AllocLines(1)
	const goroutines = 6
	const perG = 800
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		th := meth.NewThread()
		go func(th core.Thread) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				th.Atomic(func(c core.Context) { c.Write(a, c.Read(a)+1) })
			}
		}(th)
	}
	wg.Wait()
	if got := m.Load(a); got != goroutines*perG {
		t.Fatalf("lost updates under HLE: %d, want %d", got, goroutines*perG)
	}
}

// TestPacerYieldsOnSchedule: the pacer must tick exactly every Every
// accesses (observable only as "it does not crash and counts right" —
// Gosched has no externally visible effect — so we check the arithmetic
// via a tiny Every across many ticks).
func TestPacerYieldsOnSchedule(t *testing.T) {
	p := &core.Pacer{Every: 3}
	for i := 0; i < 100; i++ {
		p.Tick() // must not panic, must not hang
	}
	disabled := &core.Pacer{}
	for i := 0; i < 100; i++ {
		disabled.Tick()
	}
}

// TestPacedMethodsStillCorrect: with aggressive interleaving every method
// still maintains atomicity.
func TestPacedMethodsStillCorrect(t *testing.T) {
	pol := core.Policy{HTM: htm.Config{InterleaveEvery: 1}}
	for _, name := range []string{"Lock", "TLE", "RW-TLE", "FG-TLE(16)"} {
		t.Run(name, func(t *testing.T) {
			m := mem.New(1 << 18)
			meth := methodByName(t, m, name, pol)
			a := m.AllocLines(1)
			const goroutines = 4
			const perG = 300
			var wg sync.WaitGroup
			wg.Add(goroutines)
			for g := 0; g < goroutines; g++ {
				th := meth.NewThread()
				go func(th core.Thread) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						th.Atomic(func(c core.Context) { c.Write(a, c.Read(a)+1) })
					}
				}(th)
			}
			wg.Wait()
			if got := m.Load(a); got != goroutines*perG {
				t.Fatalf("lost updates with pacing: %d, want %d", got, goroutines*perG)
			}
		})
	}
}

// TestSpuriousInjectionDrivesFallback: with a high injected abort rate,
// operations land on the lock path and still execute correctly.
func TestSpuriousInjectionDrivesFallback(t *testing.T) {
	pol := core.Policy{HTM: htm.Config{SpuriousProb: 0.9, SpuriousSeed: 3}}
	m := mem.New(1 << 18)
	meth := core.NewFGTLE(m, 64, pol)
	set := avl.New(m)
	h := set.NewHandle()
	th := meth.NewThread()
	for k := uint64(0); k < 50; k++ {
		if !h.Insert(th, k) {
			t.Fatalf("insert %d failed", k)
		}
	}
	s := th.Stats()
	if s.LockRuns == 0 {
		t.Fatal("no lock fallbacks despite 90% injected abort rate")
	}
	if s.FastAborts[htm.Spurious] == 0 {
		t.Fatal("no spurious aborts recorded")
	}
	if err := set.CheckInvariants(core.Direct(m)); err != nil {
		t.Fatal(err)
	}
}

// TestMethodsShareNothing: two methods over the same heap use distinct
// locks; operations under one must not block the other.
func TestMethodsShareNothing(t *testing.T) {
	m := mem.New(1 << 18)
	m1 := core.NewTLE(m, core.Policy{})
	m2 := core.NewTLE(m, core.Policy{})
	if m1.Lock().Addr() == m2.Lock().Addr() {
		t.Fatal("two method instances share a lock word")
	}
}
