package core

import (
	"runtime"

	"rtle/internal/htm"
	"rtle/internal/mem"
	"rtle/internal/spinlock"
)

// refinedThread implements the control flow of Figure 1's right-hand
// (refined TLE) path, shared by RW-TLE, FG-TLE and adaptive FG-TLE:
//
//   - lock free, attempts remaining → fast path: uninstrumented HTM with
//     eager lock subscription;
//   - lock held → slow path: instrumented HTM attempt, concurrent with the
//     lock holder; slow-path failures do not count against the fast-path
//     attempt budget (§6.2.1);
//   - attempt budget exhausted → acquire the lock and run the instrumented
//     pessimistic path.
//
// Variants plug in via the slowAttempt and lockRun hooks.
type refinedThread struct {
	m        *mem.Memory
	lock     *spinlock.Lock
	policy   Policy
	tx       *htm.Tx
	pacer    *Pacer
	attempts AttemptPolicy
	rec      Recorder

	// slowAttempt runs one instrumented HTM attempt of body on tx and
	// returns htm.None on commit.
	slowAttempt func(body func(Context)) htm.AbortReason
	// lockRun acquires the lock, runs body on the instrumented
	// pessimistic path, releases, and maintains LockHoldNanos.
	lockRun func(body func(Context))

	lockBusy bool
}

func (r *refinedThread) Stats() *Stats { return r.rec.Stats() }

//rtle:speculative
func (r *refinedThread) subscribe(tx *htm.Tx) {
	if tx.Read(r.lock.Addr()) != 0 {
		r.lockBusy = true
		tx.Abort()
	}
}

// lazySubscribe implements the §5 option: subscribe to the lock at the end
// of a slow-path transaction, so the transaction cannot commit while the
// lock is held. Variants call it from their slowAttempt when enabled.
//
//rtle:speculative
func (r *refinedThread) lazySubscribe(tx *htm.Tx) {
	if r.policy.LazySubscription && tx.Read(r.lock.Addr()) != 0 {
		tx.Abort()
	}
}

func (r *refinedThread) Atomic(body func(Context)) {
	t0 := r.rec.Begin()
	attempts := 0
	budget := r.attempts.Budget()
	backoff := 1
	for {
		if r.lock.Held() {
			r.rec.SlowAttempt()
			reason := r.slowAttempt(body)
			if reason == htm.None {
				r.rec.SlowCommit(t0)
				return
			}
			r.rec.SlowAbort(reason, r.tx.LastAbortInjected())
			// A slow-path abort usually means a conflict with the
			// lock holder that persists until its critical section
			// retires; back off politely instead of spinning hot.
			spinBackoff(&backoff)
			continue
		}
		backoff = 1
		if attempts >= budget {
			r.lockRun(body)
			r.rec.LockCommit(t0)
			r.attempts.Record(attempts, false)
			return
		}
		r.lockBusy = false
		r.rec.FastAttempt()
		reason := r.tx.Run(func(tx *htm.Tx) {
			r.subscribe(tx)
			body(htmCtx{tx})
		})
		if reason == htm.None {
			r.rec.FastCommit(t0)
			r.attempts.Record(attempts, true)
			return
		}
		r.rec.FastAbort(reason, r.lockBusy, r.tx.LastAbortInjected())
		attempts++
	}
}

// spinBackoff burns a short, exponentially growing number of iterations and
// yields to the scheduler, so that retry storms stay polite under
// GOMAXPROCS=1 and on loaded machines.
func spinBackoff(backoff *int) {
	for i := 0; i < *backoff; i++ {
		if i%16 == 15 {
			runtime.Gosched()
		}
	}
	runtime.Gosched()
	if *backoff < 256 {
		*backoff <<= 1
	}
}
