package core

import (
	"time"

	"rtle/internal/htm"
)

// Recorder couples a thread's quiescent Stats with the optional live
// observer shard, so the two cannot drift: every accounting event flows
// through exactly one Recorder method, which updates the plain counters and
// forwards the event to the ThreadObserver when one is attached. With no
// observer each method reduces to the bare field increments the threads
// performed before observability existed, plus one nil check.
//
// It is exported because the STM and hybrid methods outside this package
// (internal/norec, internal/rhnorec) account through it too.
type Recorder struct {
	stats     Stats
	obs       ThreadObserver // nil when Policy.Observer is unset
	lockFault LockFaultHook  // nil when Policy.LockFault is unset
}

// NewRecorder builds the recorder for one thread of the named method.
func NewRecorder(p Policy, method string) Recorder {
	var r Recorder
	if p.Observer != nil {
		r.obs = p.Observer.ObserveThread(method)
	}
	r.lockFault = p.LockFault
	return r
}

// LockAcquired reports that the thread just acquired the fallback lock
// (before running the critical section), firing the configured fault hook —
// the injection point for lock-holder latency spikes.
func (r *Recorder) LockAcquired() {
	if r.lockFault != nil {
		r.lockFault.OnLockAcquired()
	}
}

// Stats exposes the quiescent counters (Thread.Stats).
func (r *Recorder) Stats() *Stats { return &r.stats }

// Begin returns the atomic block's start time for latency accounting, or 0
// when observation is disabled (the clock is then never read).
func (r *Recorder) Begin() int64 {
	if r.obs == nil {
		return 0
	}
	return time.Now().UnixNano()
}

// FastAttempt records a fast-path hardware attempt beginning.
func (r *Recorder) FastAttempt() {
	r.stats.FastAttempts++
	if r.obs != nil {
		r.obs.Attempt(PathFast)
	}
}

// SlowAttempt records a slow-path hardware attempt beginning.
func (r *Recorder) SlowAttempt() {
	r.stats.SlowAttempts++
	if r.obs != nil {
		r.obs.Attempt(PathSlow)
	}
}

// STMStart records a software-transaction attempt beginning.
func (r *Recorder) STMStart() {
	r.stats.STMStarts++
	if r.obs != nil {
		r.obs.Attempt(PathSTM)
	}
}

// FastAbort records a failed fast-path attempt; subscription marks aborts
// caused by observing the lock held after transaction begin, injected ones
// forced by a fault injector (htm.Tx.LastAbortInjected).
func (r *Recorder) FastAbort(reason htm.AbortReason, subscription, injected bool) {
	r.stats.FastAborts[reason]++
	if subscription {
		r.stats.SubscriptionAborts++
	}
	if injected {
		r.stats.InjectedAborts[reason]++
	}
	if r.obs != nil {
		r.obs.Abort(PathFast, reason, subscription, injected)
	}
}

// SlowAbort records a failed slow-path attempt.
func (r *Recorder) SlowAbort(reason htm.AbortReason, injected bool) {
	r.stats.SlowAborts[reason]++
	if injected {
		r.stats.InjectedAborts[reason]++
	}
	if r.obs != nil {
		r.obs.Abort(PathSlow, reason, false, injected)
	}
}

// STMAbort records a software-transaction validation failure.
func (r *Recorder) STMAbort() {
	r.stats.STMAborts++
	if r.obs != nil {
		r.obs.STMAbort()
	}
}

// Validation records one value-based read-set validation.
func (r *Recorder) Validation() {
	r.stats.Validations++
	if r.obs != nil {
		r.obs.Validation()
	}
}

// LockHold adds nanos of lock-hold time.
func (r *Recorder) LockHold(nanos int64) {
	r.stats.LockHoldNanos += nanos
	if r.obs != nil {
		r.obs.LockHold(nanos)
	}
}

// Resize records an adaptive FG-TLE orec-array resize.
func (r *Recorder) Resize() {
	r.stats.Resizes++
	if r.obs != nil {
		r.obs.Resize()
	}
}

// ModeSwitch records an adaptive FG-TLE mode change.
func (r *Recorder) ModeSwitch() {
	r.stats.ModeSwitches++
	if r.obs != nil {
		r.obs.ModeSwitch()
	}
}

// addCommit bumps the Stats counter matching a commit bucket.
func (s *Stats) addCommit(k CommitKind) {
	switch k {
	case CommitFast:
		s.FastCommits++
	case CommitSlow:
		s.SlowCommits++
	case CommitLock:
		s.LockRuns++
	case CommitSTMHTM:
		s.STMCommitsHTM++
	case CommitSTMLock:
		s.STMCommitsLock++
	case CommitSTMRO:
		s.STMCommitsRO++
	}
}

// commit retires one atomic block in bucket k. t0 is the Begin() value.
func (r *Recorder) commit(k CommitKind, t0 int64) {
	r.stats.Ops++
	r.stats.addCommit(k)
	if r.obs != nil {
		r.obs.Op(k, time.Now().UnixNano()-t0)
	}
}

// FastCommit retires an atomic block that committed on the fast path.
func (r *Recorder) FastCommit(t0 int64) { r.commit(CommitFast, t0) }

// SlowCommit retires an atomic block that committed on the slow path.
func (r *Recorder) SlowCommit(t0 int64) { r.commit(CommitSlow, t0) }

// LockCommit retires an atomic block that ran under the lock.
func (r *Recorder) LockCommit(t0 int64) { r.commit(CommitLock, t0) }

// STMDone retires one atomic block that completed as a software
// transaction: k names its commit bucket and stmNanos the time spent in
// software attempts (Stats.STMTimeNanos).
func (r *Recorder) STMDone(k CommitKind, t0 int64, stmNanos int64) {
	r.stats.STMTimeNanos += stmNanos
	if r.obs != nil {
		r.obs.STMTime(stmNanos)
	}
	r.commit(k, t0)
}

// ExtraCommit bumps a commit bucket without retiring an atomic block (see
// ThreadObserver.ExtraCommit; only ALE's dual-booked software sections).
func (r *Recorder) ExtraCommit(k CommitKind) {
	r.stats.addCommit(k)
	if r.obs != nil {
		r.obs.ExtraCommit(k)
	}
}
