package core_test

import (
	"sync"
	"testing"
	"time"

	"rtle/internal/avl"
	"rtle/internal/core"
	"rtle/internal/htm"
	"rtle/internal/mem"
	"rtle/internal/rng"
)

// allMethods builds one instance of every synchronization method over m.
func allMethods(m *mem.Memory, p core.Policy) []core.Method {
	return []core.Method{
		core.NewLock(m),
		core.NewTLE(m, p),
		core.NewRWTLE(m, p),
		core.NewFGTLE(m, 1, p),
		core.NewFGTLE(m, 16, p),
		core.NewFGTLE(m, 256, p),
		core.NewAdaptiveFGTLE(m, p, core.AdaptiveConfig{Window: 8}),
	}
}

func TestMethodNames(t *testing.T) {
	m := mem.New(1 << 16)
	want := []string{"Lock", "TLE", "RW-TLE", "FG-TLE(1)", "FG-TLE(16)", "FG-TLE(256)", "FG-TLE(adaptive)"}
	for i, meth := range allMethods(m, core.Policy{}) {
		if meth.Name() != want[i] {
			t.Errorf("method %d name %q, want %q", i, meth.Name(), want[i])
		}
	}
}

// TestSingleThreadCounter: each method must execute a read-modify-write
// critical section correctly single-threaded.
func TestSingleThreadCounter(t *testing.T) {
	m := mem.New(1 << 16)
	for _, meth := range allMethods(m, core.Policy{}) {
		t.Run(meth.Name(), func(t *testing.T) {
			a := m.AllocLines(1)
			th := meth.NewThread()
			for i := 0; i < 100; i++ {
				th.Atomic(func(c core.Context) {
					c.Write(a, c.Read(a)+1)
				})
			}
			if got := m.Load(a); got != 100 {
				t.Fatalf("counter = %d, want 100", got)
			}
			if th.Stats().Ops != 100 {
				t.Fatalf("Ops = %d, want 100", th.Stats().Ops)
			}
		})
	}
}

// TestSingleThreadAVLModel: each method drives the AVL set correctly
// against a model.
func TestSingleThreadAVLModel(t *testing.T) {
	for _, name := range []string{"Lock", "TLE", "RW-TLE", "FG-TLE(16)", "FG-TLE(adaptive)"} {
		t.Run(name, func(t *testing.T) {
			m := mem.New(1 << 20)
			meth := methodByName(t, m, name, core.Policy{})
			set := avl.New(m)
			h := set.NewHandle()
			th := meth.NewThread()
			model := map[uint64]bool{}
			r := rng.NewXoshiro256(3)
			for i := 0; i < 3000; i++ {
				key := r.Uint64n(64)
				switch r.Intn(3) {
				case 0:
					got := h.Insert(th, key)
					if got == model[key] {
						t.Fatalf("Insert(%d) = %v with model %v", key, got, model[key])
					}
					model[key] = true
				case 1:
					got := h.Remove(th, key)
					if got != model[key] {
						t.Fatalf("Remove(%d) = %v with model %v", key, got, model[key])
					}
					delete(model, key)
				default:
					if got := h.Contains(th, key); got != model[key] {
						t.Fatalf("Contains(%d) = %v, want %v", key, got, model[key])
					}
				}
			}
			if err := set.CheckInvariants(core.Direct(m)); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func methodByName(t *testing.T, m *mem.Memory, name string, p core.Policy) core.Method {
	t.Helper()
	switch name {
	case "Lock":
		return core.NewLock(m)
	case "TLE":
		return core.NewTLE(m, p)
	case "RW-TLE":
		return core.NewRWTLE(m, p)
	case "FG-TLE(1)":
		return core.NewFGTLE(m, 1, p)
	case "FG-TLE(16)":
		return core.NewFGTLE(m, 16, p)
	case "FG-TLE(256)":
		return core.NewFGTLE(m, 256, p)
	case "FG-TLE(adaptive)":
		return core.NewAdaptiveFGTLE(m, p, core.AdaptiveConfig{Window: 8})
	default:
		t.Fatalf("unknown method %q", name)
		return nil
	}
}

// TestConcurrentCounter: atomicity of increments under real concurrency,
// for every method.
func TestConcurrentCounter(t *testing.T) {
	m := mem.New(1 << 18)
	for _, meth := range allMethods(m, core.Policy{}) {
		t.Run(meth.Name(), func(t *testing.T) {
			a := m.AllocLines(1)
			const goroutines = 6
			const perG = 400
			var wg sync.WaitGroup
			wg.Add(goroutines)
			for g := 0; g < goroutines; g++ {
				th := meth.NewThread()
				go func(th core.Thread) {
					defer wg.Done()
					for i := 0; i < perG; i++ {
						th.Atomic(func(c core.Context) {
							c.Write(a, c.Read(a)+1)
						})
					}
				}(th)
			}
			wg.Wait()
			if got := m.Load(a); got != goroutines*perG {
				t.Fatalf("lost updates: %d, want %d", got, goroutines*perG)
			}
		})
	}
}

// TestConcurrentAVLWithLockHolders is the central barrier-correctness
// test: a mix of normal operations and HTM-unfriendly updates (which
// always fall back to the lock) runs concurrently. Under RW-TLE and
// FG-TLE, hardware transactions commit *while the lock is held*, so any
// defect in the write-flag or orec protocols corrupts the tree or loses
// the per-key accounting. The test checks structural invariants and exact
// net-effect accounting afterwards.
func TestConcurrentAVLWithLockHolders(t *testing.T) {
	const keyRange = 48
	const goroutines = 6
	const perG = 600
	for _, name := range []string{"TLE", "RW-TLE", "FG-TLE(1)", "FG-TLE(16)", "FG-TLE(256)", "FG-TLE(adaptive)"} {
		t.Run(name, func(t *testing.T) {
			m := mem.New(1 << 22)
			meth := methodByName(t, m, name, core.Policy{})
			set := avl.New(m)

			// Seed half the keys.
			initial := map[uint64]bool{}
			seedH := set.NewHandle()
			dc := core.Direct(m)
			for k := uint64(0); k < keyRange; k += 2 {
				seedH.InsertCS(dc, k)
				seedH.AfterInsert(true)
				initial[k] = true
			}

			deltas := make([][]int64, goroutines)
			var wg sync.WaitGroup
			wg.Add(goroutines)
			for g := 0; g < goroutines; g++ {
				deltas[g] = make([]int64, keyRange)
				th := meth.NewThread()
				go func(id int, th core.Thread) {
					defer wg.Done()
					h := set.NewHandle()
					r := rng.NewXoshiro256(uint64(id) + 11)
					for i := 0; i < perG; i++ {
						key := r.Uint64n(keyRange)
						switch r.Intn(10) {
						case 0: // HTM-unfriendly update: forces the lock path
							insert := r.Intn(2) == 0
							var res bool
							th.Atomic(func(c core.Context) {
								c.Unsupported()
								if insert {
									res = h.InsertCS(c, key)
								} else {
									res = h.RemoveCS(c, key)
								}
							})
							if insert {
								h.AfterInsert(res)
								if res {
									deltas[id][key]++
								}
							} else {
								h.AfterRemove(res)
								if res {
									deltas[id][key]--
								}
							}
						case 1, 2:
							if h.Insert(th, key) {
								deltas[id][key]++
							}
						case 3, 4:
							if h.Remove(th, key) {
								deltas[id][key]--
							}
						default:
							h.Contains(th, key)
						}
					}
				}(g, th)
			}
			wg.Wait()

			if err := set.CheckInvariants(dc); err != nil {
				t.Fatalf("tree corrupted: %v", err)
			}
			final := map[uint64]bool{}
			for _, k := range set.Keys(dc) {
				final[k] = true
			}
			for k := uint64(0); k < keyRange; k++ {
				var net int64
				for g := 0; g < goroutines; g++ {
					net += deltas[g][k]
				}
				was, is := b2i(initial[k]), b2i(final[k])
				if is-was != net {
					t.Errorf("key %d: initial %d, final %d, but net successful ops %d — isolation violated", k, was, is, net)
				}
			}
		})
	}
}

func b2i(b bool) int64 {
	if b {
		return 1
	}
	return 0
}

// TestConcurrentCounterMixedPaths is a regression test for a simulator
// atomicity hole: with a single hot counter and occasional HTM-unfriendly
// increments (lock holders), a slow-path commit could interleave between
// its validation and its publication with the lock holder's plain loads,
// losing updates. Exact counting across all paths must hold.
func TestConcurrentCounterMixedPaths(t *testing.T) {
	for _, name := range []string{"TLE", "RW-TLE", "FG-TLE(1)", "FG-TLE(256)", "FG-TLE(adaptive)"} {
		t.Run(name, func(t *testing.T) {
			m := mem.New(1 << 18)
			meth := methodByName(t, m, name, core.Policy{})
			a := m.AllocLines(1)
			const goroutines = 6
			const perG = 2000
			var wg sync.WaitGroup
			wg.Add(goroutines)
			for g := 0; g < goroutines; g++ {
				th := meth.NewThread()
				go func(id int, th core.Thread) {
					defer wg.Done()
					r := rng.NewXoshiro256(uint64(id) + 101)
					for i := 0; i < perG; i++ {
						unfriendly := r.Intn(20) == 0
						th.Atomic(func(c core.Context) {
							if unfriendly {
								c.Unsupported()
							}
							c.Write(a, c.Read(a)+1)
						})
					}
				}(g, th)
			}
			wg.Wait()
			if got := m.Load(a); got != goroutines*perG {
				t.Fatalf("lost updates across mixed paths: %d, want %d", got, goroutines*perG)
			}
		})
	}
}

// TestUnsupportedFallsToLock: an operation with an HTM-unfriendly
// instruction must complete via the lock after exhausting its attempts.
func TestUnsupportedFallsToLock(t *testing.T) {
	m := mem.New(1 << 16)
	for _, name := range []string{"TLE", "RW-TLE", "FG-TLE(16)"} {
		t.Run(name, func(t *testing.T) {
			meth := methodByName(t, m, name, core.Policy{Attempts: 3})
			a := m.AllocLines(1)
			th := meth.NewThread()
			th.Atomic(func(c core.Context) {
				c.Unsupported()
				c.Write(a, c.Read(a)+1)
			})
			s := th.Stats()
			if s.LockRuns != 1 {
				t.Fatalf("LockRuns = %d, want 1", s.LockRuns)
			}
			if s.FastAborts[htm.Unsupported] != 3 {
				t.Fatalf("unsupported fast aborts = %d, want 3", s.FastAborts[htm.Unsupported])
			}
			if m.Load(a) != 1 {
				t.Fatalf("critical section effect lost")
			}
		})
	}
}

// TestFastPathUsedWhenUncontended: without contention every op commits on
// the fast path and the lock is never taken.
func TestFastPathUsedWhenUncontended(t *testing.T) {
	m := mem.New(1 << 16)
	for _, name := range []string{"TLE", "RW-TLE", "FG-TLE(16)", "FG-TLE(adaptive)"} {
		t.Run(name, func(t *testing.T) {
			meth := methodByName(t, m, name, core.Policy{})
			a := m.AllocLines(1)
			th := meth.NewThread()
			for i := 0; i < 50; i++ {
				th.Atomic(func(c core.Context) { c.Write(a, c.Read(a)+1) })
			}
			s := th.Stats()
			if s.FastCommits != 50 {
				t.Fatalf("FastCommits = %d, want 50 (LockRuns %d, SlowCommits %d)", s.FastCommits, s.LockRuns, s.SlowCommits)
			}
		})
	}
}

// holdLock runs an atomic block that is guaranteed to execute on the lock
// path (Unsupported aborts every HTM attempt before the channel
// operations are reached), signals entry, and holds the critical section
// open until release is closed. It returns after the block commits.
func holdLock(th core.Thread, inCS chan<- struct{}, release <-chan struct{}, body func(core.Context)) {
	th.Atomic(func(c core.Context) {
		c.Unsupported() // never reached past this point on HTM
		if body != nil {
			body(c)
		}
		inCS <- struct{}{}
		<-release
	})
}

// TestRefinedSlowPathCommitsWhileLockHeld: the defining behaviour of
// refined TLE — a read-only operation completes on the slow path while
// another thread holds the lock. Plain TLE must instead wait.
func TestRefinedSlowPathCommitsWhileLockHeld(t *testing.T) {
	for _, name := range []string{"RW-TLE", "FG-TLE(16)"} {
		t.Run(name, func(t *testing.T) {
			m := mem.New(1 << 16)
			meth := methodByName(t, m, name, core.Policy{})
			data := m.AllocLines(1)
			m.Store(data, 77)

			holder := meth.NewThread()
			reader := meth.NewThread()
			inCS := make(chan struct{})
			release := make(chan struct{})
			done := make(chan struct{})
			go func() {
				holdLock(holder, inCS, release, nil)
				close(done)
			}()
			<-inCS

			// The lock is held; a read-only op must still complete.
			var got uint64
			finished := make(chan struct{})
			go func() {
				reader.Atomic(func(c core.Context) { got = c.Read(data) })
				close(finished)
			}()
			select {
			case <-finished:
			case <-time.After(5 * time.Second):
				t.Fatal("read-only operation did not complete while the lock was held")
			}
			if got != 77 {
				t.Fatalf("read %d, want 77", got)
			}
			if reader.Stats().SlowCommits != 1 {
				t.Fatalf("SlowCommits = %d, want 1 (the read must have used the instrumented slow path)", reader.Stats().SlowCommits)
			}
			close(release)
			<-done
		})
	}
}

// TestRWTLEWriterCannotCommitOnSlowPath: RW-TLE's slow path must reject
// transactions that write (Figure 2) — they wait for the lock release.
func TestRWTLEWriterCannotCommitOnSlowPath(t *testing.T) {
	m := mem.New(1 << 16)
	meth := core.NewRWTLE(m, core.Policy{})
	data := m.AllocLines(1)

	holder := meth.NewThread()
	writer := meth.NewThread()
	inCS := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		holdLock(holder, inCS, release, nil)
		close(done)
	}()
	<-inCS

	finished := make(chan struct{})
	go func() {
		writer.Atomic(func(c core.Context) { c.Write(data, 5) })
		close(finished)
	}()
	// The writer must not complete while the lock is held.
	select {
	case <-finished:
		t.Fatal("RW-TLE writer committed while the lock was held")
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("writer never completed after lock release")
	}
	<-done
	if m.Load(data) != 5 {
		t.Fatalf("write lost: %d", m.Load(data))
	}
	if writer.Stats().SlowCommits != 0 {
		t.Fatalf("writer SlowCommits = %d, want 0", writer.Stats().SlowCommits)
	}
}

// TestRWTLEReaderAbortsOnceHolderWrites: a slow-path reader must not
// commit after the lock holder's first write (the write flag dooms it).
func TestRWTLEReaderAbortsOnceHolderWrites(t *testing.T) {
	m := mem.New(1 << 16)
	meth := core.NewRWTLE(m, core.Policy{})
	x := m.AllocLines(1)
	y := m.AllocLines(1)

	holder := meth.NewThread()
	reader := meth.NewThread()
	inCS := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		holdLock(holder, inCS, release, func(c core.Context) {
			c.Write(x, 1) // raises the write flag before we signal
		})
		close(done)
	}()
	<-inCS

	// The flag is set: a read-only slow-path op must NOT commit now; it
	// completes only after release.
	finished := make(chan struct{})
	go func() {
		reader.Atomic(func(c core.Context) { c.Read(y) })
		close(finished)
	}()
	select {
	case <-finished:
		t.Fatal("RW-TLE reader committed on the slow path after the holder wrote")
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	<-finished
	<-done
	if reader.Stats().SlowCommits != 0 {
		t.Fatalf("reader SlowCommits = %d, want 0 after flag was raised", reader.Stats().SlowCommits)
	}
}

// TestFGTLEConflictingSlowTxAborts: FG-TLE's orecs must block slow-path
// transactions that touch data the lock holder wrote, while allowing
// disjoint ones (with enough orecs).
func TestFGTLEConflictingSlowTxAborts(t *testing.T) {
	m := mem.New(1 << 16)
	meth := core.NewFGTLE(m, 256, core.Policy{})
	x := m.AllocLines(1) // written by the holder
	y := m.AllocLines(1) // disjoint

	holder := meth.NewThread()
	conflicting := meth.NewThread()
	disjoint := meth.NewThread()
	inCS := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		holdLock(holder, inCS, release, func(c core.Context) {
			c.Write(x, 42)
		})
		close(done)
	}()
	<-inCS

	// Disjoint read must commit on the slow path.
	var got uint64
	finished := make(chan struct{})
	go func() {
		disjoint.Atomic(func(c core.Context) { got = c.Read(y) })
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("disjoint slow-path transaction did not complete while lock held")
	}
	if disjoint.Stats().SlowCommits != 1 {
		t.Fatalf("disjoint SlowCommits = %d, want 1", disjoint.Stats().SlowCommits)
	}
	_ = got

	// Conflicting read (same address the holder wrote) must not commit
	// while the holder is mid-CS.
	conflictDone := make(chan struct{})
	go func() {
		conflicting.Atomic(func(c core.Context) { c.Read(x) })
		close(conflictDone)
	}()
	select {
	case <-conflictDone:
		t.Fatal("conflicting slow-path transaction committed against the lock holder")
	case <-time.After(100 * time.Millisecond):
	}
	close(release)
	<-conflictDone
	<-done
}

// TestFGTLESlowTxSurvivesLockRelease verifies the §6.3 design difference:
// FG-TLE does not abort slow-path transactions when the lock is released
// (the epoch bump releases orecs without storing to them). We check it
// end-to-end: a disjoint slow-path read that starts while the lock is held
// and finishes after release still counts as a slow commit under FG-TLE.
func TestFGTLESlowTxSurvivesLockRelease(t *testing.T) {
	m := mem.New(1 << 16)
	meth := core.NewFGTLE(m, 16, core.Policy{})
	y := m.AllocLines(1)

	holder := meth.NewThread()
	reader := meth.NewThread()
	inCS := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		holdLock(holder, inCS, release, nil)
		close(done)
	}()
	<-inCS
	go func() {
		time.Sleep(20 * time.Millisecond)
		close(release)
	}()
	reader.Atomic(func(c core.Context) { c.Read(y) })
	<-done
	s := reader.Stats()
	if s.SlowCommits+s.FastCommits != 1 {
		t.Fatalf("reader commits: slow %d fast %d, want exactly one", s.SlowCommits, s.FastCommits)
	}
}

// TestLazySubscriptionBlocksEmptyCS reproduces Figure 4's semantics test:
// with lazy subscription an empty critical section cannot complete while
// the lock is held, so the GoFlag synchronization pattern is safe; without
// it, the empty CS commits early (the documented §5 limitation).
func TestLazySubscriptionBlocksEmptyCS(t *testing.T) {
	run := func(lazy bool) (ptrSeen uint64, slowCommits uint64) {
		m := mem.New(1 << 16)
		meth := core.NewFGTLE(m, 16, core.Policy{LazySubscription: lazy})
		goFlag := m.AllocLines(1)
		ptr := m.AllocLines(1)

		t1 := meth.NewThread()
		t2 := meth.NewThread()
		release := make(chan struct{})
		inCS := make(chan struct{})
		done := make(chan struct{})
		go func() {
			holdLock(t1, inCS, release, func(c core.Context) {
				c.Write(goFlag, 1)
			})
			close(done)
		}()
		<-inCS
		// Thread 2 saw GoFlag == 1; it now runs the empty critical
		// section and then dereferences Ptr.
		finished := make(chan struct{})
		go func() {
			t2.Atomic(func(core.Context) {}) // empty CS
			close(finished)
		}()
		var v uint64
		select {
		case <-finished:
			v = m.Load(ptr) // committed while lock held: sees whatever is there now (0)
			close(release)
		case <-time.After(100 * time.Millisecond):
			// Blocked, as lazy subscription requires. Finish the
			// holder's CS — it publishes Ptr before unlocking.
			close(release)
			<-finished
			v = m.Load(ptr)
		}
		<-done
		return v, t2.Stats().SlowCommits
	}

	// The holder writes Ptr after the barrier handshake; emulate the
	// paper's scenario by having holdLock's caller publish Ptr at
	// release time. Simplest faithful arrangement: Ptr is written by
	// the holder *after* t2's wait begins, i.e. right before release —
	// which holdLock cannot express. Instead we rely on the ordering:
	// with eager (non-lazy) slow path the empty CS commits while the
	// lock is held and Ptr is still 0; with lazy subscription it can
	// only commit after the critical section retires.
	if v, slow := run(false); slow != 1 || v != 0 {
		t.Fatalf("without lazy subscription: slowCommits=%d ptr=%d, want 1 and 0 (empty CS completes early)", slow, v)
	}
	if _, slow := run(true); slow != 0 {
		t.Fatalf("with lazy subscription: slowCommits=%d, want 0 (empty CS must wait for release)", slow)
	}
}

// TestAdaptiveShrinksWhenOrecsUnused: tiny critical sections against a
// large orec array must drive the adaptive variant to shrink it.
func TestAdaptiveShrinksWhenOrecsUnused(t *testing.T) {
	m := mem.New(1 << 18)
	meth := core.NewAdaptiveFGTLE(m, core.Policy{}, core.AdaptiveConfig{
		MinOrecs: 1, MaxOrecs: 1024, Window: 4, DisableModeSwitch: true,
	})
	a := m.AllocLines(1)
	th := meth.NewThread()
	before := meth.CurrentOrecs()
	for i := 0; i < 200; i++ {
		// Force the lock path so the adaptation policy runs.
		th.Atomic(func(c core.Context) {
			c.Unsupported()
			c.Write(a, c.Read(a)+1)
		})
	}
	after := meth.CurrentOrecs()
	if after >= before {
		t.Fatalf("orec array did not shrink: %d -> %d", before, after)
	}
	if th.Stats().Resizes == 0 {
		t.Fatal("no resizes recorded")
	}
}

// TestAdaptiveSwitchesToTLEMode: with no slow-path traffic the adaptive
// variant should stop paying for instrumentation.
func TestAdaptiveSwitchesToTLEMode(t *testing.T) {
	m := mem.New(1 << 18)
	meth := core.NewAdaptiveFGTLE(m, core.Policy{}, core.AdaptiveConfig{
		MinOrecs: 1, MaxOrecs: 16, Window: 4,
	})
	a := m.AllocLines(1)
	th := meth.NewThread()
	for i := 0; i < 50; i++ {
		th.Atomic(func(c core.Context) {
			c.Unsupported()
			c.Write(a, c.Read(a)+1)
		})
	}
	if th.Stats().ModeSwitches == 0 {
		t.Fatal("adaptive method never switched modes despite zero slow-path commits")
	}
	if m.Load(a) != 50 {
		t.Fatalf("counter = %d, want 50", m.Load(a))
	}
}

// TestStatsMergeAllFields spot-checks Stats.Merge coverage.
func TestStatsMergeAllFields(t *testing.T) {
	a := core.Stats{Ops: 1, FastCommits: 2, SlowCommits: 3, LockRuns: 4,
		FastAttempts: 5, SlowAttempts: 6, SubscriptionAborts: 7,
		LockHoldNanos: 8, STMStarts: 9, STMCommitsHTM: 10,
		STMCommitsLock: 11, STMCommitsRO: 12, STMAborts: 13,
		Validations: 14, STMTimeNanos: 15, Resizes: 16, ModeSwitches: 17}
	b := a
	a.Merge(&b)
	if a.Ops != 2 || a.FastCommits != 4 || a.SlowCommits != 6 || a.LockRuns != 8 ||
		a.FastAttempts != 10 || a.SlowAttempts != 12 || a.SubscriptionAborts != 14 ||
		a.LockHoldNanos != 16 || a.STMStarts != 18 || a.STMCommitsHTM != 20 ||
		a.STMCommitsLock != 22 || a.STMCommitsRO != 24 || a.STMAborts != 26 ||
		a.Validations != 28 || a.STMTimeNanos != 30 || a.Resizes != 32 || a.ModeSwitches != 34 {
		t.Fatalf("merge incomplete: %+v", a)
	}
	if a.TotalCommits() != 4+6+8+20+22+24 {
		t.Fatalf("TotalCommits = %d", a.TotalCommits())
	}
}

// TestLockHoldTimeMeasured: lock-path runs must record hold time.
func TestLockHoldTimeMeasured(t *testing.T) {
	m := mem.New(1 << 16)
	meth := core.NewTLE(m, core.Policy{Attempts: 1})
	th := meth.NewThread()
	th.Atomic(func(c core.Context) {
		c.Unsupported()
		time.Sleep(2 * time.Millisecond)
	})
	if th.Stats().LockHoldNanos < int64(time.Millisecond) {
		t.Fatalf("LockHoldNanos = %d, want at least 1ms", th.Stats().LockHoldNanos)
	}
}

// TestFGTLEOrecCountValidation: invalid orec counts must panic.
func TestFGTLEOrecCountValidation(t *testing.T) {
	m := mem.New(1 << 16)
	for _, bad := range []int{0, 3, 100, -8} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewFGTLE(%d) did not panic", bad)
				}
			}()
			core.NewFGTLE(m, bad, core.Policy{})
		}()
	}
}
