package core

import (
	"fmt"
	"time"

	"rtle/internal/htm"
	"rtle/internal/mem"
	"rtle/internal/spinlock"
	"rtle/internal/wanghash"
)

// FGTLEMethod implements FG-TLE (§4): fine-grained conflict detection
// between the lock holder and slow-path hardware transactions through two
// arrays of ownership records (orecs) — one for reads, one for writes —
// plus an epoch counter:
//
//   - The lock holder bumps the epoch after acquiring the lock, stamps the
//     epoch into the orec of every address it reads or writes (at most once
//     per orec per critical section), and bumps the epoch again before
//     releasing — implicitly releasing all orecs without a single store to
//     them, so slow-path transactions survive the release.
//   - A slow-path transaction snapshots the epoch before it begins. Its
//     read barrier checks the write orec; its write barrier checks both
//     orecs; an orec stamped at or after the snapshot means a potential
//     conflict with the lock holder and the transaction self-aborts
//     (Figure 3).
//
// The orec count is the tuning knob the paper sweeps (FG-TLE(1) ...
// FG-TLE(8192)).
type FGTLEMethod struct {
	m      *mem.Memory
	lock   *spinlock.Lock
	policy Policy

	epochAddr mem.Addr //rtle:meta
	rOrecs    mem.Addr //rtle:meta
	wOrecs    mem.Addr //rtle:meta
	orecs     uint64
}

// NewFGTLE returns an FG-TLE method over m with orecs ownership records per
// array. orecs must be a power of two between 1 and 1<<20.
//
//rtle:init
func NewFGTLE(m *mem.Memory, orecs int, policy Policy) *FGTLEMethod {
	if orecs < 1 || orecs > 1<<20 || orecs&(orecs-1) != 0 {
		panic(fmt.Sprintf("core: FG-TLE orec count %d is not a power of two in [1, 2^20]", orecs))
	}
	f := &FGTLEMethod{
		m:      m,
		lock:   spinlock.New(m),
		policy: policy,
		orecs:  uint64(orecs),
	}
	f.epochAddr = m.AllocLines(1)
	// Epoch starts at 1 so that zero-initialized orecs read as unowned
	// (orec < snapshot) from the very first transaction.
	m.Store(f.epochAddr, 1)
	f.rOrecs = m.AllocAligned(orecs)
	f.wOrecs = m.AllocAligned(orecs)
	return f
}

// Name implements Method.
func (f *FGTLEMethod) Name() string { return fmt.Sprintf("FG-TLE(%d)", f.orecs) }

// Lock exposes the underlying lock.
func (f *FGTLEMethod) Lock() *spinlock.Lock { return f.lock }

// Orecs returns the orec-array size.
func (f *FGTLEMethod) Orecs() int { return int(f.orecs) }

// NewThread implements Method.
func (f *FGTLEMethod) NewThread() Thread {
	t := &fgtleThread{method: f}
	t.refinedThread = refinedThread{
		m:        f.m,
		lock:     f.lock,
		policy:   f.policy,
		pacer:    &Pacer{Every: f.policy.HTM.InterleaveEvery},
		attempts: attemptPolicyFor(f.policy),
		tx:       htm.NewTx(f.m, f.policy.HTM),
		rec:      NewRecorder(f.policy, f.Name()),
	}
	t.slowAttempt = t.runSlow
	t.lockRun = t.runUnderLock
	return t
}

type fgtleThread struct {
	refinedThread
	method *FGTLEMethod

	// Lock-holder state for the current critical section.
	seq   uint64 //rtle:meta epoch stamped into acquired orecs
	uniqR uint64 //rtle:meta distinct read orecs acquired so far (Figure 3's uniq_r_orecs)
	uniqW uint64 //rtle:meta distinct write orecs acquired so far
}

// runSlow is one instrumented slow-path attempt. The epoch snapshot is
// taken before the transaction begins (local_seq_number in Figure 3), so
// the epoch line itself is not subscribed and the lock release does not
// abort slow-path transactions.
//
//rtle:slowpath
func (t *fgtleThread) runSlow(body func(Context)) htm.AbortReason {
	// The raw load is the algorithm: the snapshot must predate the
	// transaction so the epoch line stays out of the read set.
	//rtle:ignore barrierdiscipline pre-transaction epoch snapshot (Figure 3 local_seq_number)
	localSeq := t.m.Load(t.method.epochAddr)
	return t.tx.Run(func(tx *htm.Tx) {
		body(fgSlowCtx{method: t.method, tx: tx, localSeq: localSeq})
		t.lazySubscribe(tx)
	})
}

// runUnderLock is the instrumented pessimistic path of Figure 3's else
// branches: bump the epoch, stamp orecs while executing, bump the epoch
// again to release all orecs at once.
//
//rtle:lockpath
func (t *fgtleThread) runUnderLock(body func(Context)) {
	t.lock.Acquire()
	t.rec.LockAcquired()
	start := time.Now()
	m := t.m
	t.seq = m.Load(t.method.epochAddr) + 1
	m.Store(t.method.epochAddr, t.seq)
	t.uniqR, t.uniqW = 0, 0
	body(fgLockCtx{t})
	m.Store(t.method.epochAddr, t.seq+1)
	t.rec.LockHold(time.Since(start).Nanoseconds())
	t.lock.Release()
}

// fgSlowCtx is the instrumented slow path of Figure 3's on_htm() branches.
type fgSlowCtx struct {
	method   *FGTLEMethod
	tx       *htm.Tx
	localSeq uint64
}

//rtle:slowpath
func (c fgSlowCtx) Read(a mem.Addr) uint64 {
	f := c.method
	idx := wanghash.Hash(uint64(a), f.orecs)
	if c.tx.Read(f.wOrecs+mem.Addr(idx)) >= c.localSeq {
		c.tx.Abort()
	}
	return c.tx.Read(a)
}

//rtle:slowpath
func (c fgSlowCtx) Write(a mem.Addr, v uint64) {
	f := c.method
	idx := wanghash.Hash(uint64(a), f.orecs)
	if c.tx.Read(f.rOrecs+mem.Addr(idx)) >= c.localSeq ||
		c.tx.Read(f.wOrecs+mem.Addr(idx)) >= c.localSeq {
		c.tx.Abort()
	}
	c.tx.Write(a, v)
}

func (c fgSlowCtx) InHTM() bool  { return true }
func (c fgSlowCtx) Unsupported() { c.tx.Unsupported() }

// fgLockCtx is the instrumented pessimistic path of Figure 3's else
// branches, with both of the paper's §4.2 optimizations: an orec is written
// at most once per critical section (skip if it already holds the current
// epoch), and once every orec has been acquired the barrier reduces to the
// plain access (skip the hash entirely).
type fgLockCtx struct {
	t *fgtleThread
}

//rtle:lockpath
func (c fgLockCtx) Read(a mem.Addr) uint64 {
	t := c.t
	t.pacer.Tick()
	f := t.method
	if t.uniqR < f.orecs {
		idx := wanghash.Hash(uint64(a), f.orecs)
		oa := f.rOrecs + mem.Addr(idx)
		if t.m.Load(oa) < t.seq {
			t.m.Store(oa, t.seq)
			t.uniqR++
		}
	}
	return t.m.Load(a)
}

//rtle:lockpath
func (c fgLockCtx) Write(a mem.Addr, v uint64) {
	t := c.t
	t.pacer.Tick()
	f := t.method
	if t.uniqW < f.orecs {
		idx := wanghash.Hash(uint64(a), f.orecs)
		oa := f.wOrecs + mem.Addr(idx)
		if t.m.Load(oa) < t.seq {
			t.m.Store(oa, t.seq)
			t.uniqW++
		}
	}
	t.m.Store(a, v)
}

func (c fgLockCtx) InHTM() bool  { return false }
func (c fgLockCtx) Unsupported() {}
