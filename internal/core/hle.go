package core

import (
	"time"

	"rtle/internal/htm"
	"rtle/internal/mem"
	"rtle/internal/spinlock"
)

// HLEMethod models Intel's Hardware Lock Elision mode (§1): elision
// implemented *in hardware* via instruction prefixes (XACQUIRE/XRELEASE),
// with the begin-fail-retry logic fixed by the microarchitecture — one
// implicit speculative attempt, then the real atomic acquisition. It is a
// useful floor for the software-controlled TLE policies: identical
// mechanism, no retry budget, no wait-until-free discipline.
type HLEMethod struct {
	m      *mem.Memory
	lock   *spinlock.Lock
	policy Policy
}

// NewHLE returns an HLE-style method over m. Only the policy's HTM
// configuration applies; the retry policy is hardware-fixed (a single
// attempt).
func NewHLE(m *mem.Memory, policy Policy) *HLEMethod {
	return &HLEMethod{m: m, lock: spinlock.New(m), policy: policy}
}

// Name implements Method.
func (h *HLEMethod) Name() string { return "HLE" }

// Lock exposes the underlying lock.
func (h *HLEMethod) Lock() *spinlock.Lock { return h.lock }

// NewThread implements Method.
func (h *HLEMethod) NewThread() Thread {
	return &hleThread{
		m:     h.m,
		lock:  h.lock,
		tx:    htm.NewTx(h.m, h.policy.HTM),
		pacer: &Pacer{Every: h.policy.HTM.InterleaveEvery},
		rec:   NewRecorder(h.policy, h.Name()),
	}
}

type hleThread struct {
	m     *mem.Memory
	lock  *spinlock.Lock
	tx    *htm.Tx
	pacer *Pacer
	rec   Recorder

	lockBusy bool
}

func (t *hleThread) Stats() *Stats { return t.rec.Stats() }

func (t *hleThread) Atomic(body func(Context)) {
	t0 := t.rec.Begin()
	// One hardware attempt: the elided XACQUIRE leaves the lock word
	// unchanged but in the read set, so a real acquisition aborts us.
	t.lockBusy = false
	t.rec.FastAttempt()
	reason := t.tx.Run(func(tx *htm.Tx) {
		if tx.Read(t.lock.Addr()) != 0 {
			t.lockBusy = true
			tx.Abort()
		}
		body(htmCtx{tx})
	})
	if reason == htm.None {
		t.rec.FastCommit(t0)
		return
	}
	t.rec.FastAbort(reason, t.lockBusy, t.tx.LastAbortInjected())
	// Hardware re-execution without elision: take the lock for real.
	t.lock.Acquire()
	t.rec.LockAcquired()
	start := time.Now()
	body(lockPathCtx(t.m, t.pacer))
	t.rec.LockHold(time.Since(start).Nanoseconds())
	t.lock.Release()
	t.rec.LockCommit(t0)
}
