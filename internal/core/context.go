package core

import (
	"rtle/internal/htm"
	"rtle/internal/mem"
)

// htmCtx is the uninstrumented fast path: raw transactional accesses with
// no software barriers, as produced by the compiler for the unmodified
// clone of a critical section.
type htmCtx struct {
	tx *htm.Tx
}

//rtle:speculative
func (c htmCtx) Read(a mem.Addr) uint64 { return c.tx.Read(a) }

//rtle:speculative
func (c htmCtx) Write(a mem.Addr, v uint64) { c.tx.Write(a, v) }
func (c htmCtx) InHTM() bool                { return true }
func (c htmCtx) Unsupported()               { c.tx.Unsupported() }

// directCtx is the uninstrumented pessimistic path: plain loads and stores
// by a thread that holds the lock (or runs single-threaded).
type directCtx struct {
	m *mem.Memory
}

func (c directCtx) Read(a mem.Addr) uint64     { return c.m.Load(a) }
func (c directCtx) Write(a mem.Addr, v uint64) { c.m.Store(a, v) }
func (c directCtx) InHTM() bool                { return false }
func (c directCtx) Unsupported()               {}

// Direct returns a Context that accesses m without any synchronization or
// instrumentation. It is intended for single-threaded setup code (building
// the initial data structure before an experiment starts) and for tests.
func Direct(m *mem.Memory) Context { return directCtx{m} }

// pacedDirectCtx is directCtx plus concurrency-virtualization pacing, used
// by uninstrumented lock paths when InterleaveEvery is configured.
type pacedDirectCtx struct {
	m *mem.Memory
	p *Pacer
}

func (c pacedDirectCtx) Read(a mem.Addr) uint64 {
	c.p.Tick()
	return c.m.Load(a)
}

func (c pacedDirectCtx) Write(a mem.Addr, v uint64) {
	c.p.Tick()
	c.m.Store(a, v)
}

func (c pacedDirectCtx) InHTM() bool  { return false }
func (c pacedDirectCtx) Unsupported() {}

// lockPathCtx picks the uninstrumented pessimistic-path context for a
// thread, paced when virtualization is on.
func lockPathCtx(m *mem.Memory, p *Pacer) Context {
	if p.Every > 0 {
		return pacedDirectCtx{m, p}
	}
	return directCtx{m}
}

// HTMContext returns the uninstrumented fast-path Context over a live
// hardware transaction: every access becomes a Tx.Read/Tx.Write barrier.
// It exists for execution layers built outside this package (the elision
// guards in internal/guard) that run the TLE control flow themselves; the
// caller owns the transaction lifecycle and must only use the Context
// inside tx.Run.
func HTMContext(tx *htm.Tx) Context { return htmCtx{tx} }

// LockContext returns the uninstrumented pessimistic-path Context a
// lock-holding section runs against, paced when p enables concurrency
// virtualization. Like HTMContext, it exports the lock-path half of the
// execution model to external layers such as internal/guard.
func LockContext(m *mem.Memory, p *Pacer) Context { return lockPathCtx(m, p) }
