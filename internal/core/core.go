// Package core implements the paper's primary contribution: transactional
// lock elision (TLE) and its two refinements, RW-TLE and FG-TLE, plus the
// adaptive FG-TLE extension (§4.2.1) and the lazy-subscription option (§5).
//
// # Execution model
//
// A critical section is written once as a function of a Context, the
// analogue of the two code paths GCC generates for transactional programs:
// the same body runs uninstrumented on the HTM fast path, instrumented on
// the HTM slow path, and instrumented (or not) under the lock, with each
// synchronization Method supplying the barrier behaviour per path — exactly
// the role the libitm ABI plays in the paper's implementation (§1, §6.2).
//
// A Method is a synchronization algorithm bound to one lock and one
// simulated heap. Because the algorithms keep per-thread state (retry
// counters, orec bookkeeping, transaction contexts), each worker goroutine
// obtains its own Thread via Method.NewThread and calls Atomic on it.
//
// # Contract for critical-section bodies
//
// Real HTM rolls back registers and stack on abort; a simulation cannot
// roll back Go locals. Bodies therefore must (1) route every access to
// shared simulated memory through the Context, and (2) be re-executable:
// any captured Go state they mutate must be reset at the top of the body or
// only written on the final (committed) execution. All data structures in
// this repository follow that rule.
package core

import (
	"runtime"

	"rtle/internal/htm"
	"rtle/internal/mem"
)

// Context is the access interface a critical section runs against. The
// concrete behaviour of Read and Write depends on the executing path:
// uninstrumented transactional access on the fast path, barrier-
// instrumented transactional access on the slow path, plain or barrier-
// instrumented memory access under the lock.
type Context interface {
	// Read returns the word at a.
	Read(a mem.Addr) uint64
	// Write stores v at a.
	Write(a mem.Addr, v uint64)
	// InHTM reports whether the body is executing inside a hardware
	// transaction (the on_htm() predicate of the paper's barriers).
	InHTM() bool
	// Unsupported models an instruction HTM cannot execute (§6.3's
	// divide-by-zero). Inside a transaction it aborts the attempt; under
	// the lock it is a no-op.
	Unsupported()
}

// Method is a synchronization algorithm: a lock-elision scheme, a plain
// lock, or a TM system, bound to a heap and a lock.
type Method interface {
	// Name identifies the method in reports ("TLE", "FG-TLE(256)", ...).
	Name() string
	// NewThread returns a per-goroutine execution handle. Threads must
	// not be shared between goroutines.
	NewThread() Thread
}

// Thread executes atomic blocks on behalf of one goroutine.
type Thread interface {
	// Atomic runs body with the semantics of a critical section
	// protected by the method's lock. It returns only after the body has
	// executed exactly once with effect (earlier aborted speculative
	// executions have no effect).
	Atomic(body func(Context))
	// Stats exposes this thread's counters. The caller may read them
	// after the thread has quiesced.
	Stats() *Stats
}

// Policy holds the speculation knobs shared by the elision methods. The
// zero value selects the paper's configuration.
type Policy struct {
	// Attempts is the number of fast-path HTM attempts before falling
	// back to the lock. The paper uses a static 5 (§2, footnote 1).
	Attempts int
	// LazySubscription makes slow-path transactions subscribe to the
	// lock just before committing (§5), restoring the "cannot complete
	// while the lock is held" semantics needed by barrier-style lock
	// usages (Figure 4) at the cost of slow-path concurrency.
	LazySubscription bool
	// AdaptiveAttempts replaces the static budget with a per-thread
	// AIMD policy in the spirit of the paper's references [12, 13]
	// (see AttemptPolicy). Attempts then seeds the initial budget.
	AdaptiveAttempts bool
	// Observer, when non-nil, receives every thread's execution events
	// live (commits per path, aborts per reason, latencies, lock-hold
	// time), so metrics can be read while workers run instead of only
	// after they quiesce. internal/obs provides the standard Registry
	// implementation. Nil disables observation at the cost of one nil
	// check per event.
	Observer Observer
	// HTM configures the simulated hardware (capacities, fault
	// injection).
	HTM htm.Config
	// LockFault, when non-nil, is invoked by every method's pessimistic
	// path right after the fallback lock is acquired, letting a fault
	// injector (internal/fault) stretch lock-holder critical sections —
	// latency spikes the transactional paths must survive. Nil disables
	// the hook at the cost of one nil check per lock acquisition.
	LockFault LockFaultHook
}

// DefaultAttempts is the paper's retry budget.
const DefaultAttempts = 5

func (p Policy) attempts() int {
	if p.Attempts > 0 {
		return p.Attempts
	}
	return DefaultAttempts
}

// Stats are per-thread counters. They are written by exactly one goroutine
// and read after it quiesces, so plain fields suffice. Merge aggregates
// across threads.
//
// The fields cover every statistic the paper plots: fast/slow-path commits
// (Figs. 5, 6), executions and time under lock (Figs. 6, 7), abort
// reasons, and the STM counters used by NOrec/RHNOrec (Figs. 8–10).
type Stats struct {
	// Ops is the number of completed atomic blocks.
	Ops uint64

	// FastCommits counts HTM commits on the uninstrumented fast path.
	FastCommits uint64
	// SlowCommits counts HTM commits on the instrumented slow path,
	// i.e. transactions that completed while a thread held the lock
	// (the SlowHTM series of Fig. 6).
	SlowCommits uint64
	// LockRuns counts pessimistic executions under the lock.
	LockRuns uint64

	// FastAttempts and SlowAttempts count transaction attempts per path.
	FastAttempts uint64
	SlowAttempts uint64
	// FastAborts and SlowAborts break down failed attempts by reason.
	FastAborts [htm.NumReasons]uint64
	SlowAborts [htm.NumReasons]uint64
	// InjectedAborts breaks down, by reason, the subset of hardware
	// aborts (either path) that were forced by a fault injector rather
	// than arising organically.
	InjectedAborts [htm.NumReasons]uint64
	// SubscriptionAborts counts fast-path attempts that aborted because
	// the lock was observed held after transaction begin.
	SubscriptionAborts uint64

	// LockHoldNanos is the total time this thread held the lock.
	LockHoldNanos int64

	// STM counters (NOrec and RHNOrec).
	STMStarts      uint64 // software transaction attempts
	STMCommitsHTM  uint64 // software commits completed via a small HTM transaction (STMFastCommit, Fig. 9)
	STMCommitsLock uint64 // software commits that fell back to the global lock (STMSlowCommit, Fig. 9)
	STMCommitsRO   uint64 // read-only software commits (no serialization point needed)
	STMAborts      uint64 // software transaction validation failures
	Validations    uint64 // value-based read-set validations (Fig. 10)
	STMTimeNanos   int64  // total time spent inside software transactions (Fig. 8)

	// Adaptive FG-TLE counters.
	Resizes      uint64 // orec-array resizes
	ModeSwitches uint64 // FG-TLE <-> plain-TLE mode changes
}

// Merge adds other into s.
func (s *Stats) Merge(other *Stats) {
	s.Ops += other.Ops
	s.FastCommits += other.FastCommits
	s.SlowCommits += other.SlowCommits
	s.LockRuns += other.LockRuns
	s.FastAttempts += other.FastAttempts
	s.SlowAttempts += other.SlowAttempts
	for i := range s.FastAborts {
		s.FastAborts[i] += other.FastAborts[i]
		s.SlowAborts[i] += other.SlowAborts[i]
		s.InjectedAborts[i] += other.InjectedAborts[i]
	}
	s.SubscriptionAborts += other.SubscriptionAborts
	s.LockHoldNanos += other.LockHoldNanos
	s.STMStarts += other.STMStarts
	s.STMCommitsHTM += other.STMCommitsHTM
	s.STMCommitsLock += other.STMCommitsLock
	s.STMCommitsRO += other.STMCommitsRO
	s.STMAborts += other.STMAborts
	s.Validations += other.Validations
	s.STMTimeNanos += other.STMTimeNanos
	s.Resizes += other.Resizes
	s.ModeSwitches += other.ModeSwitches
}

// Pacer is the non-transactional half of concurrency virtualization (see
// htm.Config.InterleaveEvery): code running under the lock or in a
// software transaction yields the processor every Every shared-memory
// accesses, so that on hosts with fewer cores than threads every
// execution path advances at a comparable per-access rate — as it would
// on real parallel hardware — and speculation windows against lock
// holders actually open. An Every of zero disables pacing.
type Pacer struct {
	Every int
	n     int
}

// Tick records one shared-memory access, yielding when the quota is hit.
func (p *Pacer) Tick() {
	if p.Every > 0 {
		p.n++
		if p.n%p.Every == 0 {
			runtime.Gosched()
		}
	}
}

// LockFallbackFraction returns the fraction of atomic blocks that
// acquired the lock (§6.4.2 reports it for ccTSA).
func (s *Stats) LockFallbackFraction() float64 {
	if s.Ops == 0 {
		return 0
	}
	return float64(s.LockRuns) / float64(s.Ops)
}

// TotalCommits returns completed critical-section executions by path sum.
func (s *Stats) TotalCommits() uint64 {
	return s.FastCommits + s.SlowCommits + s.LockRuns +
		s.STMCommitsHTM + s.STMCommitsLock + s.STMCommitsRO
}
