package core_test

import (
	"sync"
	"testing"
	"time"

	"rtle/internal/avl"
	"rtle/internal/core"
	"rtle/internal/htm"
	"rtle/internal/mem"
	"rtle/internal/rng"
)

func TestALEName(t *testing.T) {
	m := mem.New(1 << 16)
	if got := core.NewALE(m, 256, core.Policy{}).Name(); got != "ALE(256)" {
		t.Fatalf("Name = %q", got)
	}
}

func TestALEOrecValidation(t *testing.T) {
	m := mem.New(1 << 16)
	for _, bad := range []int{0, 3, -1} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewALE(%d) did not panic", bad)
				}
			}()
			core.NewALE(m, bad, core.Policy{})
		}()
	}
}

func TestALESingleThreadCounter(t *testing.T) {
	m := mem.New(1 << 16)
	meth := core.NewALE(m, 64, core.Policy{})
	a := m.AllocLines(1)
	th := meth.NewThread()
	for i := 0; i < 100; i++ {
		th.Atomic(func(c core.Context) { c.Write(a, c.Read(a)+1) })
	}
	if m.Load(a) != 100 {
		t.Fatalf("counter = %d", m.Load(a))
	}
	if th.Stats().FastCommits != 100 {
		t.Fatalf("FastCommits = %d, want 100", th.Stats().FastCommits)
	}
}

func TestALESoftwarePathCompletes(t *testing.T) {
	m := mem.New(1 << 16)
	meth := core.NewALE(m, 64, core.Policy{Attempts: 2})
	a := m.AllocLines(1)
	th := meth.NewThread()
	th.Atomic(func(c core.Context) {
		c.Unsupported() // kills HTM attempts, no-op in software
		c.Write(a, c.Read(a)+1)
	})
	s := th.Stats()
	if s.LockRuns != 1 {
		t.Fatalf("LockRuns = %d, want 1", s.LockRuns)
	}
	if s.STMCommitsHTM != 1 {
		t.Fatalf("STMCommitsHTM = %d, want 1 (write-back via HTM)", s.STMCommitsHTM)
	}
	if m.Load(a) != 1 {
		t.Fatal("software write-back lost")
	}
}

func TestALESoftwareReadOnly(t *testing.T) {
	m := mem.New(1 << 16)
	meth := core.NewALE(m, 64, core.Policy{Attempts: 1})
	a := m.AllocLines(1)
	m.Store(a, 42)
	th := meth.NewThread()
	var got uint64
	th.Atomic(func(c core.Context) {
		c.Unsupported()
		got = c.Read(a)
	})
	if got != 42 {
		t.Fatalf("read %d", got)
	}
	if th.Stats().STMCommitsRO != 1 {
		t.Fatalf("STMCommitsRO = %d, want 1", th.Stats().STMCommitsRO)
	}
}

// TestALEFastPathRunsWhileSoftwareActive is ALE's defining behaviour: a
// software section in progress does not stop fast-path transactions that
// touch disjoint data (the software thread holds the lock, but the fast
// path does not subscribe to it).
func TestALEFastPathRunsWhileSoftwareActive(t *testing.T) {
	m := mem.New(1 << 16)
	meth := core.NewALE(m, 256, core.Policy{})
	x := m.AllocLines(1)
	y := m.AllocLines(1)

	sw := meth.NewThread()
	hw := meth.NewThread()
	inCS := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		sw.Atomic(func(c core.Context) {
			c.Unsupported() // aborts every fast-path attempt; no-op in software
			c.Read(x)
			inCS <- struct{}{}
			<-release
			c.Write(x, 1)
		})
		close(done)
	}()
	select {
	case <-inCS:
	case <-time.After(5 * time.Second):
		t.Fatal("software section never started")
	}

	// Fast-path op on disjoint data must commit while the software
	// section is open.
	finished := make(chan struct{})
	go func() {
		hw.Atomic(func(c core.Context) { c.Write(y, 9) })
		close(finished)
	}()
	select {
	case <-finished:
	case <-time.After(5 * time.Second):
		t.Fatal("fast path blocked by an active software section")
	}
	if hw.Stats().FastCommits != 1 {
		t.Fatalf("FastCommits = %d, want 1", hw.Stats().FastCommits)
	}
	close(release)
	<-done
	if m.Load(x) != 1 || m.Load(y) != 9 {
		t.Fatalf("x=%d y=%d", m.Load(x), m.Load(y))
	}
}

// TestALESoftwareDetectsInterference: a fast-path commit to data the
// software section read must force the section to re-run; the final state
// must reflect both updates.
func TestALESoftwareDetectsInterference(t *testing.T) {
	m := mem.New(1 << 16)
	meth := core.NewALE(m, 256, core.Policy{})
	a := m.AllocLines(1)
	sw := meth.NewThread()
	hw := meth.NewThread()
	first := true
	sw.Atomic(func(c core.Context) {
		if c.InHTM() {
			c.Unsupported() // force software path
		}
		v := c.Read(a)
		if first {
			first = false
			hw.Atomic(func(c2 core.Context) { c2.Write(a, c2.Read(a)+10) })
		}
		c.Write(a, v+1)
	})
	if got := m.Load(a); got != 11 {
		t.Fatalf("final = %d, want 11 (ALE software section lost a fast-path update)", got)
	}
	if sw.Stats().STMAborts == 0 {
		t.Fatal("no software abort recorded despite interference")
	}
}

// TestALEConcurrentCounterMixed: exact accounting across fast and
// software paths under concurrency.
func TestALEConcurrentCounterMixed(t *testing.T) {
	m := mem.New(1 << 18)
	meth := core.NewALE(m, 64, core.Policy{})
	a := m.AllocLines(1)
	const goroutines = 6
	const perG = 1500
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		th := meth.NewThread()
		go func(id int, th core.Thread) {
			defer wg.Done()
			r := rng.NewXoshiro256(uint64(id) + 41)
			for i := 0; i < perG; i++ {
				unfriendly := r.Intn(15) == 0
				th.Atomic(func(c core.Context) {
					if unfriendly {
						c.Unsupported()
					}
					c.Write(a, c.Read(a)+1)
				})
			}
		}(g, th)
	}
	wg.Wait()
	if got := m.Load(a); got != goroutines*perG {
		t.Fatalf("lost updates under ALE: %d, want %d", got, goroutines*perG)
	}
}

// TestALEConcurrentAVL: structural integrity and net-effect accounting on
// the tree, with unfriendly ops keeping the software path busy.
func TestALEConcurrentAVL(t *testing.T) {
	m := mem.New(1 << 22)
	meth := core.NewALE(m, 1024, core.Policy{})
	set := avl.New(m)
	const keyRange = 48
	const goroutines = 5
	const perG = 500
	deltas := make([][]int64, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		deltas[g] = make([]int64, keyRange)
		th := meth.NewThread()
		go func(id int, th core.Thread) {
			defer wg.Done()
			h := set.NewHandle()
			r := rng.NewXoshiro256(uint64(id) + 13)
			for i := 0; i < perG; i++ {
				key := r.Uint64n(keyRange)
				unfriendly := r.Intn(10) == 0
				switch r.Intn(3) {
				case 0:
					var res bool
					th.Atomic(func(c core.Context) {
						if unfriendly {
							c.Unsupported()
						}
						res = h.InsertCS(c, key)
					})
					h.AfterInsert(res)
					if res {
						deltas[id][key]++
					}
				case 1:
					var res bool
					th.Atomic(func(c core.Context) {
						if unfriendly {
							c.Unsupported()
						}
						res = h.RemoveCS(c, key)
					})
					h.AfterRemove(res)
					if res {
						deltas[id][key]--
					}
				default:
					h.Contains(th, key)
				}
			}
		}(g, th)
	}
	wg.Wait()
	dc := core.Direct(m)
	if err := set.CheckInvariants(dc); err != nil {
		t.Fatalf("tree corrupted under ALE: %v", err)
	}
	final := map[uint64]bool{}
	for _, k := range set.Keys(dc) {
		final[k] = true
	}
	for k := uint64(0); k < keyRange; k++ {
		var net int64
		for g := range deltas {
			net += deltas[g][k]
		}
		var want int64
		if final[k] {
			want = 1
		}
		if net != want {
			t.Errorf("key %d: net %d, final %v — ALE isolation violated", k, net, final[k])
		}
	}
}

// TestALEPessimisticWriteBackBlocksFastPath: when the write-back keeps
// failing, the blocked flag must halt fast transactions and the write-back
// must still complete. We force it with heavy spurious aborts confined to
// the software thread... fault injection is per-method, so instead verify
// the blocked path end-to-end by making HTM unusable entirely.
func TestALEPessimisticWriteBackBlocksFastPath(t *testing.T) {
	m := mem.New(1 << 16)
	meth := core.NewALE(m, 64, core.Policy{
		Attempts: 1,
		HTM:      htm.Config{SpuriousProb: 1.0, SpuriousSeed: 9},
	})
	a := m.AllocLines(1)
	th := meth.NewThread()
	for i := 0; i < 20; i++ {
		th.Atomic(func(c core.Context) { c.Write(a, c.Read(a)+1) })
	}
	if m.Load(a) != 20 {
		t.Fatalf("counter = %d, want 20", m.Load(a))
	}
	s := th.Stats()
	if s.STMCommitsLock != 20 {
		t.Fatalf("STMCommitsLock = %d, want 20 (all write-backs pessimistic)", s.STMCommitsLock)
	}
}
