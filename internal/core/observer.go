package core

import "rtle/internal/htm"

// This file defines the live-observability hook points. A Method's threads
// keep their quiescent per-thread Stats exactly as before; when
// Policy.Observer is set, every accounting event is additionally forwarded
// to a per-thread ThreadObserver, which can publish it through atomic
// counters so an aggregator (internal/obs) can read a coherent view at any
// time — without stopping the workers. With Policy.Observer nil the hooks
// cost one nil check per event.

// Path identifies one of the execution paths an atomic block can take, the
// axis along which the paper's evaluation (Figs. 5–10) breaks every
// statistic down.
type Path uint8

const (
	// PathFast is the uninstrumented HTM fast path.
	PathFast Path = iota
	// PathSlow is the instrumented HTM slow path (concurrent with a lock
	// holder), including RHNOrec's timestamp-bumping hardware commits.
	PathSlow
	// PathLock is the pessimistic path under the lock.
	PathLock
	// PathSTM is the software-transaction path (NOrec family, ALE's
	// buffered software sections).
	PathSTM

	// NumPaths is the number of distinct Path values.
	NumPaths = int(PathSTM) + 1
)

// String returns the path's name.
func (p Path) String() string {
	switch p {
	case PathFast:
		return "fast"
	case PathSlow:
		return "slow"
	case PathLock:
		return "lock"
	case PathSTM:
		return "stm"
	}
	return "unknown"
}

// CommitKind identifies which commit bucket a completed atomic block landed
// in. The six kinds correspond one-to-one with the commit counters of Stats
// (FastCommits, SlowCommits, LockRuns, STMCommitsHTM, STMCommitsLock,
// STMCommitsRO), i.e. with the terms of Stats.TotalCommits.
type CommitKind uint8

const (
	CommitFast CommitKind = iota
	CommitSlow
	CommitLock
	CommitSTMHTM
	CommitSTMLock
	CommitSTMRO

	// NumCommitKinds is the number of distinct CommitKind values.
	NumCommitKinds = int(CommitSTMRO) + 1
)

// Path maps a commit bucket onto the execution path it retired on.
func (k CommitKind) Path() Path {
	switch k {
	case CommitFast:
		return PathFast
	case CommitSlow:
		return PathSlow
	case CommitLock:
		return PathLock
	}
	return PathSTM
}

// String returns the kind's name.
func (k CommitKind) String() string {
	switch k {
	case CommitFast:
		return "fast"
	case CommitSlow:
		return "slow"
	case CommitLock:
		return "lock"
	case CommitSTMHTM:
		return "stm_htm"
	case CommitSTMLock:
		return "stm_lock"
	case CommitSTMRO:
		return "stm_ro"
	}
	return "unknown"
}

// ThreadObserver receives the live execution events of one Thread. Each
// instance is driven by exactly one goroutine (the thread's), but its state
// may be read concurrently by aggregators, so implementations must publish
// through atomics or equivalent.
//
// Event ordering contract (what makes concurrent snapshots coherent): a
// thread emits Attempt before the matching Op or Abort, and exactly one Op
// per completed atomic block. An implementation that increments its Ops
// counter before its per-kind commit counter, and whose reader loads the
// commit counters before the Ops counter, therefore always observes
// TotalCommits <= Ops and Attempts >= Commits+Aborts per path.
type ThreadObserver interface {
	// Op records one completed atomic block: the bucket it committed in
	// and the wall-clock latency of the whole Atomic call (including all
	// aborted speculative attempts).
	Op(k CommitKind, latencyNanos int64)
	// ExtraCommit records a commit-bucket increment that does not retire
	// an additional atomic block. Only ALE uses it: its software sections
	// count both a lock run (the Op) and an STM commit bucket, mirroring
	// how its Stats double-book those paths.
	ExtraCommit(k CommitKind)
	// Attempt records a transaction attempt beginning on p: PathFast and
	// PathSlow for hardware attempts, PathSTM for software-transaction
	// starts (Stats.STMStarts).
	Attempt(p Path)
	// Abort records a failed hardware attempt on p (PathFast or
	// PathSlow). subscription is true when a fast-path attempt aborted
	// because the lock was observed held after transaction begin;
	// injected is true when the abort was forced by a fault injector
	// (htm.Injector) rather than arising organically.
	Abort(p Path, reason htm.AbortReason, subscription, injected bool)
	// STMAbort records a software-transaction validation failure.
	STMAbort()
	// Validation records one value-based read-set validation (Fig. 10).
	Validation()
	// LockHold adds nanos of lock-hold time (Fig. 7).
	LockHold(nanos int64)
	// STMTime adds nanos spent inside software transactions (Fig. 8).
	STMTime(nanos int64)
	// Resize records an adaptive FG-TLE orec-array resize.
	Resize()
	// ModeSwitch records an adaptive FG-TLE mode change.
	ModeSwitch()
}

// Observer hands out per-thread observers. Implementations must be safe
// for concurrent ObserveThread calls (threads can be created while others
// run). internal/obs provides the standard implementation (Registry).
type Observer interface {
	// ObserveThread returns the observer for a newly created thread of
	// the named method.
	ObserveThread(method string) ThreadObserver
}

// LockFaultHook is the pessimistic-path half of fault injection: every
// method's lock path invokes OnLockAcquired immediately after acquiring
// the fallback lock (or, for the NOrec family, the sequence/fallback lock
// of a pessimistic commit), before touching shared data. internal/fault's
// Director implements it to inject lock-holder latency spikes — the
// adversarial regime the refined-TLE slow paths exist for. Implementations
// must be safe for concurrent use (one hook instance serves all threads).
type LockFaultHook interface {
	OnLockAcquired()
}
