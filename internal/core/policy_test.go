package core_test

import (
	"testing"

	"rtle/internal/core"
	"rtle/internal/htm"
	"rtle/internal/mem"
)

func TestStaticAttempts(t *testing.T) {
	p := core.StaticAttempts(5)
	if p.Budget() != 5 {
		t.Fatalf("Budget = %d", p.Budget())
	}
	p.Record(4, false) // must be a no-op
	if p.Budget() != 5 {
		t.Fatal("static policy changed its budget")
	}
}

func TestAIMDDecreasesOnFallback(t *testing.T) {
	p := core.NewAIMDAttempts(1, 20)
	start := p.Budget()
	p.Record(start, false)
	if p.Budget() >= start {
		t.Fatalf("budget %d did not halve from %d on fallback", p.Budget(), start)
	}
	// Repeated fallbacks floor at Min.
	for i := 0; i < 10; i++ {
		p.Record(p.Budget(), false)
	}
	if p.Budget() != 1 {
		t.Fatalf("budget %d, want floor 1", p.Budget())
	}
}

func TestAIMDIncreasesWhenBudgetExhaustedButCommitted(t *testing.T) {
	p := core.NewAIMDAttempts(1, 20)
	start := p.Budget()
	p.Record(start-1, true) // used the whole budget, still elided
	if p.Budget() != start+1 {
		t.Fatalf("budget %d, want %d", p.Budget(), start+1)
	}
	// Easy commits (few attempts) leave the budget alone.
	b := p.Budget()
	p.Record(0, true)
	if p.Budget() != b {
		t.Fatal("budget moved on an easy commit")
	}
	// Ceiling respected.
	for i := 0; i < 100; i++ {
		p.Record(p.Budget()-1, true)
	}
	if p.Budget() != 20 {
		t.Fatalf("budget %d, want ceiling 20", p.Budget())
	}
}

func TestAIMDBoundsNormalization(t *testing.T) {
	p := core.NewAIMDAttempts(0, 0) // degenerate input
	if p.Budget() < 1 {
		t.Fatalf("budget %d below 1", p.Budget())
	}
	p2 := core.NewAIMDAttempts(10, 20)
	if p2.Budget() != 10 {
		t.Fatalf("budget %d, want clamped to min 10", p2.Budget())
	}
}

// TestAdaptiveAttemptsEndToEnd: under a persistently HTM-hostile workload
// the adaptive budget collapses toward 1, so far fewer fast attempts are
// wasted than under the static policy.
func TestAdaptiveAttemptsEndToEnd(t *testing.T) {
	run := func(adaptive bool) (attempts, ops uint64) {
		m := mem.New(1 << 16)
		meth := core.NewTLE(m, core.Policy{AdaptiveAttempts: adaptive})
		a := m.AllocLines(1)
		th := meth.NewThread()
		for i := 0; i < 200; i++ {
			th.Atomic(func(c core.Context) {
				c.Unsupported()
				c.Write(a, c.Read(a)+1)
			})
		}
		return th.Stats().FastAttempts, th.Stats().Ops
	}
	staticAttempts, staticOps := run(false)
	adaptiveAttempts, adaptiveOps := run(true)
	if staticOps != 200 || adaptiveOps != 200 {
		t.Fatalf("ops wrong: %d/%d", staticOps, adaptiveOps)
	}
	if staticAttempts != 200*core.DefaultAttempts {
		t.Fatalf("static attempts = %d, want %d", staticAttempts, 200*core.DefaultAttempts)
	}
	if adaptiveAttempts*2 >= staticAttempts {
		t.Fatalf("adaptive policy did not shed wasted attempts: %d vs %d", adaptiveAttempts, staticAttempts)
	}
}

// TestAdaptiveAttemptsRecoversOnFriendlyWorkload: after the hostile phase
// ends, the budget climbs back and elision resumes.
func TestAdaptiveAttemptsRecoversOnFriendlyWorkload(t *testing.T) {
	m := mem.New(1 << 16)
	// Make speculation flaky-but-viable so recovery needs budget > 1.
	meth := core.NewTLE(m, core.Policy{
		AdaptiveAttempts: true,
		HTM:              htm.Config{SpuriousProb: 0.1, SpuriousSeed: 5},
	})
	a := m.AllocLines(1)
	th := meth.NewThread()
	// Hostile phase: collapse the budget.
	for i := 0; i < 50; i++ {
		th.Atomic(func(c core.Context) { c.Unsupported() })
	}
	before := th.Stats().FastCommits
	// Friendly phase.
	for i := 0; i < 500; i++ {
		th.Atomic(func(c core.Context) { c.Write(a, c.Read(a)+1) })
	}
	fastCommits := th.Stats().FastCommits - before
	if fastCommits < 300 {
		t.Fatalf("only %d/500 friendly ops elided; budget did not recover", fastCommits)
	}
}
