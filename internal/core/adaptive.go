package core

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"rtle/internal/htm"
	"rtle/internal/mem"
	"rtle/internal/spinlock"
	"rtle/internal/wanghash"
)

// AdaptiveConfig tunes AdaptiveFGTLE. The zero value selects defaults.
// The adaptation policy itself is this repository's design: the paper
// (§4.2.1) describes the mechanisms — resizing the orec array while
// holding the lock, and a mode flag that turns instrumentation off to
// recover plain TLE — and leaves the policy to future work.
type AdaptiveConfig struct {
	// MinOrecs and MaxOrecs bound the orec-array size (powers of two;
	// defaults 1 and 8192).
	MinOrecs int
	MaxOrecs int
	// Window is the number of lock-path executions between adaptation
	// decisions (default 64).
	Window int
	// DisableModeSwitch keeps the method in FG-TLE mode always.
	DisableModeSwitch bool
}

func (c AdaptiveConfig) min() uint64 {
	if c.MinOrecs > 0 {
		return uint64(c.MinOrecs)
	}
	return 1
}

func (c AdaptiveConfig) max() uint64 {
	if c.MaxOrecs > 0 {
		return uint64(c.MaxOrecs)
	}
	return 8192
}

func (c AdaptiveConfig) window() uint64 {
	if c.Window > 0 {
		return uint64(c.Window)
	}
	return 64
}

// Adaptive mode values stored at modeAddr.
const (
	modeTLE uint64 = 0 // instrumentation off; slow path disabled
	modeFG  uint64 = 1 // FG-TLE behaviour
)

// AdaptiveFGTLE is FG-TLE with a self-tuning orec array (§4.2.1):
//
//   - The current orec count lives in simulated memory and is read inside
//     every slow-path transaction, so a resize (performed by a lock holder,
//     which is the only writer) aborts concurrent slow-path transactions
//     and the new size takes effect safely. Stale orec stamps need no
//     cleanup: they carry old epochs and read as unowned.
//   - A mode flag, also read inside every slow-path transaction, lets the
//     method fall back to plain TLE: the lock holder runs uninstrumented
//     and slow-path speculation is disabled.
//
// Policy (ours): every Window lock-path executions the holder inspects the
// mean number of orecs its critical sections acquired. If most orecs went
// unused the array shrinks (cheaper saturation optimization); if the
// critical sections saturated the array and slow-path transactions were
// aborting, it grows. If a full window passes with slow-path speculation
// enabled but no slow-path commits, the method switches to TLE mode; it
// probes back to FG-TLE mode a window later.
type AdaptiveFGTLE struct {
	m      *mem.Memory
	lock   *spinlock.Lock
	policy Policy
	cfg    AdaptiveConfig

	epochAddr mem.Addr //rtle:meta
	sizeAddr  mem.Addr //rtle:meta
	modeAddr  mem.Addr //rtle:meta
	rOrecs    mem.Addr //rtle:meta
	wOrecs    mem.Addr //rtle:meta

	// Adaptation state, mutated only while holding the lock.
	windowRuns  uint64 //rtle:meta
	usageSum    uint64 //rtle:meta
	saturations uint64 //rtle:meta
	slowBase    uint64 //rtle:meta slow commits observed at window start (approximate)
	slowCommits *counterSet
}

// counterSet lets lock holders observe approximate global slow-path commit
// counts without scanning thread stats: each thread increments its own slot.
// The mutex guards the slots slice itself (threads can be created while
// others already run); slot increments are lock-free.
type counterSet struct {
	mu    sync.Mutex
	slots []*paddedCounter
}

type paddedCounter struct {
	n atomic.Uint64
	_ [7]uint64 // pad to a cache line to avoid false sharing between threads
}

func (c *counterSet) add() *paddedCounter {
	c.mu.Lock()
	defer c.mu.Unlock()
	slot := &paddedCounter{}
	c.slots = append(c.slots, slot)
	return slot
}

func (c *counterSet) sum() uint64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	var t uint64
	for _, s := range c.slots {
		t += s.n.Load()
	}
	return t
}

// NewAdaptiveFGTLE returns an adaptive FG-TLE method over m. The orec
// array is allocated at cfg.MaxOrecs and the live size starts there.
//
//rtle:init
func NewAdaptiveFGTLE(m *mem.Memory, policy Policy, cfg AdaptiveConfig) *AdaptiveFGTLE {
	minN, maxN := cfg.min(), cfg.max()
	if minN&(minN-1) != 0 || maxN&(maxN-1) != 0 || minN > maxN {
		panic(fmt.Sprintf("core: adaptive orec bounds [%d, %d] must be powers of two with min <= max", minN, maxN))
	}
	a := &AdaptiveFGTLE{
		m:           m,
		lock:        spinlock.New(m),
		policy:      policy,
		cfg:         cfg,
		slowCommits: &counterSet{},
	}
	a.epochAddr = m.AllocLines(1)
	m.Store(a.epochAddr, 1)
	ctl := m.AllocLines(1)
	a.sizeAddr = ctl
	a.modeAddr = ctl + 1
	m.Store(a.sizeAddr, maxN)
	m.Store(a.modeAddr, modeFG)
	a.rOrecs = m.AllocAligned(int(maxN))
	a.wOrecs = m.AllocAligned(int(maxN))
	return a
}

// Name implements Method.
func (a *AdaptiveFGTLE) Name() string { return "FG-TLE(adaptive)" }

// Lock exposes the underlying lock.
func (a *AdaptiveFGTLE) Lock() *spinlock.Lock { return a.lock }

// CurrentOrecs returns the live orec-array size (racy probe, for tests and
// reports).
func (a *AdaptiveFGTLE) CurrentOrecs() int { return int(a.m.Load(a.sizeAddr)) }

// InTLEMode reports whether the method is currently running as plain TLE.
func (a *AdaptiveFGTLE) InTLEMode() bool { return a.m.Load(a.modeAddr) == modeTLE }

// NewThread implements Method.
func (a *AdaptiveFGTLE) NewThread() Thread {
	t := &adaptiveThread{method: a, slot: a.slowCommits.add()}
	t.refinedThread = refinedThread{
		m:        a.m,
		lock:     a.lock,
		policy:   a.policy,
		pacer:    &Pacer{Every: a.policy.HTM.InterleaveEvery},
		attempts: attemptPolicyFor(a.policy),
		tx:       htm.NewTx(a.m, a.policy.HTM),
		rec:      NewRecorder(a.policy, a.Name()),
	}
	t.slowAttempt = t.runSlow
	t.lockRun = t.runUnderLock
	return t
}

type adaptiveThread struct {
	refinedThread
	method *AdaptiveFGTLE
	slot   *paddedCounter

	seq   uint64 //rtle:meta
	size  uint64 //rtle:meta
	uniqR uint64 //rtle:meta
	uniqW uint64 //rtle:meta
}

// runSlow mirrors fgtleThread.runSlow but additionally reads the mode flag
// and the live orec count inside the transaction, subscribing to both.
//
//rtle:slowpath
func (t *adaptiveThread) runSlow(body func(Context)) htm.AbortReason {
	a := t.method
	// The raw load is the algorithm: the snapshot must predate the
	// transaction so the epoch line stays out of the read set.
	//rtle:ignore barrierdiscipline pre-transaction epoch snapshot (Figure 3 local_seq_number)
	localSeq := t.m.Load(a.epochAddr)
	reason := t.tx.Run(func(tx *htm.Tx) {
		if tx.Read(a.modeAddr) != modeFG {
			tx.Abort() // TLE mode: no slow-path speculation
		}
		size := tx.Read(a.sizeAddr)
		body(adaptiveSlowCtx{method: a, tx: tx, localSeq: localSeq, size: size})
		t.lazySubscribe(tx)
	})
	if reason == htm.None {
		t.slot.n.Add(1)
	}
	return reason
}

//rtle:lockpath
func (t *adaptiveThread) runUnderLock(body func(Context)) {
	a := t.method
	t.lock.Acquire()
	t.rec.LockAcquired()
	start := time.Now()
	m := t.m

	t.adapt()

	t.size = m.Load(a.sizeAddr)
	mode := m.Load(a.modeAddr)
	t.seq = m.Load(a.epochAddr) + 1
	if mode == modeFG {
		m.Store(a.epochAddr, t.seq)
		t.uniqR, t.uniqW = 0, 0
		body(adaptiveLockCtx{t})
		m.Store(a.epochAddr, t.seq+1)
		a.usageSum += t.uniqR + t.uniqW
		if t.uniqR >= t.size && t.uniqW >= t.size {
			a.saturations++
		}
	} else {
		body(lockPathCtx(m, t.pacer)) // TLE mode: uninstrumented
	}
	a.windowRuns++
	t.rec.LockHold(time.Since(start).Nanoseconds())
	t.lock.Release()
}

// adapt runs the adaptation policy. Called with the lock held, before the
// critical section, so resizes and mode switches are safe (§4.2.1).
//
//rtle:lockpath
func (t *adaptiveThread) adapt() {
	a := t.method
	if a.windowRuns < a.cfg.window() {
		return
	}
	m := t.m
	size := m.Load(a.sizeAddr)
	mode := m.Load(a.modeAddr)
	slowNow := a.slowCommits.sum()
	slowDelta := slowNow - a.slowBase

	if mode == modeFG {
		switch {
		case !a.cfg.DisableModeSwitch && slowDelta == 0:
			// A full window of lock-path executions with zero
			// slow-path commits: instrumentation is pure overhead.
			m.Store(a.modeAddr, modeTLE)
			t.rec.ModeSwitch()
		case a.windowRuns > 0 && a.usageSum/a.windowRuns*4 <= size && size > a.cfg.min():
			// Most orecs never used: shrink so the saturation
			// optimization kicks in sooner (the paper's hint).
			m.Store(a.sizeAddr, size/2)
			t.rec.Resize()
		case a.saturations*2 >= a.windowRuns && size < a.cfg.max():
			// Critical sections keep acquiring every orec while
			// speculation continues: refine the granularity.
			m.Store(a.sizeAddr, size*2)
			t.rec.Resize()
		}
	} else {
		// Probe back into FG-TLE mode each window; if speculation
		// still yields nothing, adapt will switch away again.
		m.Store(a.modeAddr, modeFG)
		t.rec.ModeSwitch()
	}

	a.windowRuns, a.usageSum, a.saturations = 0, 0, 0
	a.slowBase = slowNow
}

// adaptiveSlowCtx is fgSlowCtx with the transactionally-read orec count.
type adaptiveSlowCtx struct {
	method   *AdaptiveFGTLE
	tx       *htm.Tx
	localSeq uint64
	size     uint64
}

//rtle:slowpath
func (c adaptiveSlowCtx) Read(a mem.Addr) uint64 {
	f := c.method
	idx := wanghash.Hash(uint64(a), c.size)
	if c.tx.Read(f.wOrecs+mem.Addr(idx)) >= c.localSeq {
		c.tx.Abort()
	}
	return c.tx.Read(a)
}

//rtle:slowpath
func (c adaptiveSlowCtx) Write(a mem.Addr, v uint64) {
	f := c.method
	idx := wanghash.Hash(uint64(a), c.size)
	if c.tx.Read(f.rOrecs+mem.Addr(idx)) >= c.localSeq ||
		c.tx.Read(f.wOrecs+mem.Addr(idx)) >= c.localSeq {
		c.tx.Abort()
	}
	c.tx.Write(a, v)
}

func (c adaptiveSlowCtx) InHTM() bool  { return true }
func (c adaptiveSlowCtx) Unsupported() { c.tx.Unsupported() }

// adaptiveLockCtx is fgLockCtx against the live orec count.
type adaptiveLockCtx struct {
	t *adaptiveThread
}

//rtle:lockpath
func (c adaptiveLockCtx) Read(a mem.Addr) uint64 {
	t := c.t
	t.pacer.Tick()
	f := t.method
	if t.uniqR < t.size {
		idx := wanghash.Hash(uint64(a), t.size)
		oa := f.rOrecs + mem.Addr(idx)
		if t.m.Load(oa) < t.seq {
			t.m.Store(oa, t.seq)
			t.uniqR++
		}
	}
	return t.m.Load(a)
}

//rtle:lockpath
func (c adaptiveLockCtx) Write(a mem.Addr, v uint64) {
	t := c.t
	t.pacer.Tick()
	f := t.method
	if t.uniqW < t.size {
		idx := wanghash.Hash(uint64(a), t.size)
		oa := f.wOrecs + mem.Addr(idx)
		if t.m.Load(oa) < t.seq {
			t.m.Store(oa, t.seq)
			t.uniqW++
		}
	}
	t.m.Store(a, v)
}

func (c adaptiveLockCtx) InHTM() bool  { return false }
func (c adaptiveLockCtx) Unsupported() {}
