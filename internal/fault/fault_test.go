package fault

import (
	"reflect"
	"sync"
	"testing"

	"rtle/internal/htm"
	"rtle/internal/mem"
)

func TestPlanJSONRoundTrip(t *testing.T) {
	plans := []Plan{
		{},
		{Seed: 42, BeginProb: 0.25, Reason: htm.Capacity},
		{Seed: 7, NthAccess: 3, NthEvery: 2, NthReason: htm.Spurious},
		{Seed: 9, SqueezeEvery: 10, SqueezeLen: 3, SqueezeReadLines: 4, SqueezeWriteLines: 2},
		{Seed: 1, StormEvery: 16, StormLen: 4, LockSpikeEvery: 5, LockSpikeSpins: 1000},
	}
	for _, p := range plans {
		got, err := ParsePlan(p.String())
		if err != nil {
			t.Fatalf("ParsePlan(%s): %v", p, err)
		}
		if !reflect.DeepEqual(got, p) {
			t.Fatalf("round trip changed the plan: %s -> %s", p, got)
		}
	}
	if _, err := ParsePlan("{nonsense"); err == nil {
		t.Fatal("ParsePlan accepted malformed input")
	}
}

func TestZeroPlanInjectsNothing(t *testing.T) {
	d := NewDirector(Plan{Seed: 5})
	if inj := d.NewInjector(); inj != nil {
		t.Fatalf("inactive plan produced an injector: %v", inj)
	}
	m := mem.New(64)
	tx := htm.NewTx(m, htm.Config{NewInjector: d.NewInjector})
	a := m.Alloc(1)
	for i := 0; i < 100; i++ {
		if r := tx.Run(func(tx *htm.Tx) { tx.Write(a, tx.Read(a)+1) }); r != htm.None {
			t.Fatalf("attempt %d aborted: %v", i, r)
		}
	}
	if n := tx.Stats.TotalInjected(); n != 0 {
		t.Fatalf("zero plan injected %d faults", n)
	}
}

// runAborts executes attempts single-threaded and returns the per-attempt
// outcome sequence.
func runAborts(t *testing.T, plan Plan, attempts, accesses int) []htm.AbortReason {
	t.Helper()
	d := NewDirector(plan)
	m := mem.New(1 << 12)
	tx := htm.NewTx(m, htm.Config{NewInjector: d.NewInjector})
	base := m.AllocLines(accesses)
	out := make([]htm.AbortReason, 0, attempts)
	for i := 0; i < attempts; i++ {
		out = append(out, tx.Run(func(tx *htm.Tx) {
			for j := 0; j < accesses; j++ {
				tx.Read(base + mem.Addr(j*mem.WordsPerLine))
			}
		}))
	}
	return out
}

func TestProbabilisticFaultsDeterministic(t *testing.T) {
	plan := Plan{Seed: 1234, BeginProb: 0.2, AccessProb: 0.05, CommitProb: 0.1, Reason: htm.Spurious}
	a := runAborts(t, plan, 400, 8)
	b := runAborts(t, plan, 400, 8)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same plan, same thread order: outcome sequences differ")
	}
	var injected int
	for _, r := range a {
		if r == htm.Spurious {
			injected++
		}
	}
	if injected == 0 {
		t.Fatal("probabilistic plan injected nothing in 400 attempts")
	}
	c := runAborts(t, Plan{Seed: 1235, BeginProb: 0.2, AccessProb: 0.05, CommitProb: 0.1}, 400, 8)
	if reflect.DeepEqual(a, c) {
		t.Fatal("different seeds produced identical outcome sequences")
	}
}

func TestNthAccessRule(t *testing.T) {
	// Kill the 3rd access of every 2nd attempt.
	plan := Plan{Seed: 1, NthAccess: 3, NthEvery: 2, NthReason: htm.Conflict}
	out := runAborts(t, plan, 10, 8)
	for i, r := range out {
		attempt := i + 1 // injector counts attempts from 1
		want := htm.None
		if attempt%2 == 0 {
			want = htm.Conflict
		}
		if r != want {
			t.Fatalf("attempt %d: got %v, want %v", attempt, r, want)
		}
	}
	// With fewer accesses than NthAccess the rule never fires.
	for i, r := range runAborts(t, plan, 10, 2) {
		if r != htm.None {
			t.Fatalf("short attempt %d aborted: %v", i+1, r)
		}
	}
}

func TestStormWindows(t *testing.T) {
	plan := Plan{Seed: 1, StormEvery: 4, StormLen: 2}
	out := runAborts(t, plan, 20, 1)
	for i, r := range out {
		global := int64(i + 1) // single thread: global counter == attempt ordinal
		want := htm.None
		if int(global%4) < 2 {
			want = htm.Conflict
		}
		if r != want {
			t.Fatalf("attempt %d: got %v, want %v", global, r, want)
		}
	}
}

func TestCapacitySqueeze(t *testing.T) {
	// Squeeze every attempt down to 2 read lines; a 4-line read set
	// overflows only under the squeeze.
	plan := Plan{Seed: 1, SqueezeEvery: 1, SqueezeReadLines: 2}
	d := NewDirector(plan)
	m := mem.New(1 << 12)
	tx := htm.NewTx(m, htm.Config{ReadLines: 8, NewInjector: d.NewInjector})
	base := m.AllocLines(4)
	r := tx.Run(func(tx *htm.Tx) {
		for j := 0; j < 4; j++ {
			tx.Read(base + mem.Addr(j*mem.WordsPerLine))
		}
	})
	if r != htm.Capacity {
		t.Fatalf("squeezed attempt: got %v, want Capacity", r)
	}
	if !tx.LastAbortInjected() {
		t.Fatal("squeezed capacity abort not marked injected")
	}
	if tx.Stats.Injected[htm.Capacity] != 1 {
		t.Fatalf("Stats.Injected[Capacity] = %d, want 1", tx.Stats.Injected[htm.Capacity])
	}

	// The same footprint passes with no squeeze configured.
	d2 := NewDirector(Plan{Seed: 1, StormEvery: 1 << 30}) // active plan, windows never hit twice
	tx2 := htm.NewTx(m, htm.Config{ReadLines: 8, NewInjector: d2.NewInjector})
	r2 := tx2.Run(func(tx *htm.Tx) {
		for j := 0; j < 4; j++ {
			tx.Read(base + mem.Addr(j*mem.WordsPerLine))
		}
	})
	if r2 != htm.None {
		t.Fatalf("unsqueezed attempt aborted: %v", r2)
	}
}

func TestLockSpike(t *testing.T) {
	d := NewDirector(Plan{Seed: 1, LockSpikeEvery: 3, LockSpikeSpins: 50})
	for i := 0; i < 9; i++ {
		d.OnLockAcquired()
	}
	if got := d.LockSpins(); got != 3 {
		t.Fatalf("LockSpins = %d after 9 acquisitions at every=3, want 3", got)
	}
	// A spike-free plan must be a no-op (and not divide by zero).
	d2 := NewDirector(Plan{Seed: 1})
	d2.OnLockAcquired()
	if got := d2.LockSpins(); got != 0 {
		t.Fatalf("no-spike LockSpins = %d, want 0", got)
	}
}

// TestChaosConcurrentInjection drives many goroutines through every fault
// type at once under -race: progress must continue (all ops eventually
// commit via retry), counters must balance, and injected faults must
// actually occur. The CI chaos job selects this test by the Chaos name.
func TestChaosConcurrentInjection(t *testing.T) {
	plan := Plan{
		Seed:             99,
		BeginProb:        0.05,
		AccessProb:       0.01,
		CommitProb:       0.05,
		Reason:           htm.Spurious,
		NthAccess:        5,
		NthEvery:         7,
		SqueezeEvery:     50,
		SqueezeLen:       5,
		SqueezeReadLines: 2,
		StormEvery:       40,
		StormLen:         4,
		LockSpikeEvery:   10,
		LockSpikeSpins:   100,
	}
	d := NewDirector(plan)
	const threads, ops = 8, 300
	m := mem.New(1 << 16)
	base := m.AllocLines(8)

	var wg sync.WaitGroup
	stats := make([]htm.Stats, threads)
	for th := 0; th < threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			tx := htm.NewTx(m, htm.Config{NewInjector: d.NewInjector})
			for op := 0; op < ops; op++ {
				for {
					r := tx.Run(func(tx *htm.Tx) {
						a := base + mem.Addr((op%8)*mem.WordsPerLine)
						tx.Write(a, tx.Read(a)+1)
						for j := 0; j < 6; j++ {
							tx.Read(base + mem.Addr(j*mem.WordsPerLine))
						}
					})
					if r == htm.None {
						break
					}
					// Model the fallback-lock acquisition so lock
					// spikes fire too.
					d.OnLockAcquired()
				}
			}
			stats[th] = tx.Stats
		}(th)
	}
	wg.Wait()

	var total htm.Stats
	for i := range stats {
		total.Merge(&stats[i])
	}
	if total.Commits != threads*ops {
		t.Fatalf("commits = %d, want %d", total.Commits, threads*ops)
	}
	if total.Starts != total.Commits+total.TotalAborts() {
		t.Fatalf("starts %d != commits %d + aborts %d",
			total.Starts, total.Commits, total.TotalAborts())
	}
	if total.TotalInjected() == 0 {
		t.Fatal("chaos plan injected nothing")
	}
	if total.TotalInjected() > total.TotalAborts() {
		t.Fatalf("injected %d exceeds total aborts %d",
			total.TotalInjected(), total.TotalAborts())
	}
	if d.TotalInjected() == 0 {
		t.Fatal("director live counter saw no injected faults")
	}
	if total.Injected[htm.Spurious] == 0 || total.Injected[htm.Conflict] == 0 {
		t.Fatalf("expected both spurious and conflict injections, got %v", total.Injected)
	}
}
