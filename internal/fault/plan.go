// Package fault is the deterministic fault-injection subsystem: it drives
// the htm.Injector and core.LockFaultHook hooks from a compact, loggable,
// replayable Plan, turning the simulation's advantage over real RTM — we
// can decide when the "hardware" fails — into reproducible adversity.
//
// A Plan describes a whole fault schedule as a handful of scalar rules:
// probabilistic aborts at the three injection points (begin, per access,
// pre-commit), a deterministic "kill the Nth access of every Kth attempt"
// rule, periodic capacity squeezes, synchronized conflict storms (every
// thread's begin fails inside the same global window — the lemming-effect
// trigger), and lock-holder latency spikes. Because the Plan is plain data,
// a failing schedule is logged as one JSON line and replays exactly; and
// because it is a handful of scalars, a shrinker (cmd/rtlefuzz) can walk it
// toward a minimal reproducer field by field.
//
// Determinism: probabilistic decisions come from per-thread xoshiro256**
// streams derived from Plan.Seed and a thread ordinal assigned in injector
// creation order, so each thread's decision sequence is a pure function of
// the plan. Window rules (storms, squeezes) count attempts on a shared
// atomic, which synchronizes threads against each other — that cross-thread
// interleaving is scheduler-dependent, exactly like the conflicts it is
// designed to provoke.
package fault

import (
	"encoding/json"
	"fmt"

	"rtle/internal/htm"
)

// Plan is a complete, replayable fault schedule. The zero value injects
// nothing. All probabilities are per decision point in [0, 1].
type Plan struct {
	// Seed derives the per-thread decision streams.
	Seed uint64 `json:"seed"`

	// BeginProb aborts an attempt at transaction begin; AccessProb
	// aborts before a transactional access; CommitProb aborts after the
	// body, before commit processing. Reason is the abort reason used
	// for these probabilistic faults (default Spurious).
	BeginProb  float64         `json:"begin_prob,omitempty"`
	AccessProb float64         `json:"access_prob,omitempty"`
	CommitProb float64         `json:"commit_prob,omitempty"`
	Reason     htm.AbortReason `json:"reason,omitempty"`

	// NthAccess, when positive, aborts the NthAccess-th (1-based)
	// transactional access with NthReason (default Conflict) on every
	// NthEvery-th attempt of each thread (default every attempt). This
	// is the surgical rule: "the 7th read of every 3rd attempt dies".
	NthAccess int             `json:"nth_access,omitempty"`
	NthEvery  int             `json:"nth_every,omitempty"`
	NthReason htm.AbortReason `json:"nth_reason,omitempty"`

	// SqueezeEvery, when positive, opens a capacity-squeeze window of
	// SqueezeLen attempts (default 1) every SqueezeEvery attempts
	// (counted globally across threads): attempts beginning inside the
	// window run with their effective read/write-set limits shrunk to
	// SqueezeReadLines/SqueezeWriteLines (0 keeps the configured
	// limit). This models dynamic capacity loss — SMT siblings, cache
	// pollution — that static Config bounds cannot.
	SqueezeEvery      int `json:"squeeze_every,omitempty"`
	SqueezeLen        int `json:"squeeze_len,omitempty"`
	SqueezeReadLines  int `json:"squeeze_read_lines,omitempty"`
	SqueezeWriteLines int `json:"squeeze_write_lines,omitempty"`

	// StormEvery, when positive, opens a conflict storm of StormLen
	// begin-aborts (default 1) every StormEvery attempts (counted
	// globally): every attempt beginning inside the window aborts with
	// Conflict regardless of thread. Concurrent threads fall into the
	// same window together, which is precisely the synchronized abort
	// volley that provokes the lemming effect (all threads pile onto
	// the lock at once).
	StormEvery int `json:"storm_every,omitempty"`
	StormLen   int `json:"storm_len,omitempty"`

	// LockSpikeEvery, when positive, stretches every LockSpikeEvery-th
	// lock acquisition (counted globally) by LockSpikeSpins busy-work
	// iterations — a lock holder that suddenly goes slow, the regime
	// the paper's refined slow paths exist to survive.
	LockSpikeEvery int `json:"lock_spike_every,omitempty"`
	LockSpikeSpins int `json:"lock_spike_spins,omitempty"`
}

// Active reports whether the plan injects any fault at all.
func (p Plan) Active() bool {
	return p.BeginProb > 0 || p.AccessProb > 0 || p.CommitProb > 0 ||
		p.NthAccess > 0 || p.SqueezeEvery > 0 || p.StormEvery > 0 ||
		p.LockSpikeEvery > 0
}

// reason returns the probabilistic-fault reason, defaulting to Spurious.
func (p Plan) reason() htm.AbortReason {
	if p.Reason != htm.None {
		return p.Reason
	}
	return htm.Spurious
}

// nthReason returns the Nth-access fault reason, defaulting to Conflict.
func (p Plan) nthReason() htm.AbortReason {
	if p.NthReason != htm.None {
		return p.NthReason
	}
	return htm.Conflict
}

func (p Plan) nthEvery() int {
	if p.NthEvery > 0 {
		return p.NthEvery
	}
	return 1
}

func (p Plan) squeezeLen() int {
	if p.SqueezeLen > 0 {
		return p.SqueezeLen
	}
	return 1
}

func (p Plan) stormLen() int {
	if p.StormLen > 0 {
		return p.StormLen
	}
	return 1
}

// String renders the plan as its compact JSON form — the representation
// logged next to failures and accepted back by ParsePlan.
func (p Plan) String() string {
	b, err := json.Marshal(p)
	if err != nil {
		return fmt.Sprintf("fault.Plan{unmarshalable: %v}", err)
	}
	return string(b)
}

// ParsePlan decodes a plan from its JSON form (Plan.String output).
func ParsePlan(s string) (Plan, error) {
	var p Plan
	if err := json.Unmarshal([]byte(s), &p); err != nil {
		return Plan{}, fmt.Errorf("fault: bad plan %q: %w", s, err)
	}
	return p, nil
}
