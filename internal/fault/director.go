package fault

import (
	"runtime"
	"sync/atomic"

	"rtle/internal/core"
	"rtle/internal/htm"
	"rtle/internal/rng"
)

// Director executes one Plan across all threads of a run. It implements
// core.LockFaultHook and hands out per-thread htm.Injector instances via
// NewInjector; wire both into a run with Configure (or manually through
// Policy.LockFault and Config.NewInjector). A Director must not be reused
// across runs when exact replay matters — its global counters carry over.
type Director struct {
	plan Plan

	// threads hands out per-thread stream ordinals in injector-creation
	// order; attempts and locks are the global counters behind the
	// window rules (storms, squeezes) and lock spikes.
	threads  atomic.Int64
	attempts atomic.Int64
	locks    atomic.Int64

	// injected counts the faults the injectors decided to force,
	// maintained live so tests and the fuzzer can see activity without
	// quiescing threads. Capacity aborts caused by a squeeze are decided
	// inside htm (the injector only shrinks the limit), so they appear in
	// the Txs' Stats.Injected but not here.
	injected [htm.NumReasons]atomic.Uint64
}

// NewDirector returns a Director that executes plan.
func NewDirector(plan Plan) *Director {
	return &Director{plan: plan}
}

// Plan returns the plan this Director executes.
func (d *Director) Plan() Plan { return d.plan }

// Configure wires the Director into a Policy: every Tx the methods create
// gets a per-thread injector, and every fallback-lock acquisition reports
// to the Director for lock-spike injection.
func (d *Director) Configure(p *core.Policy) {
	p.HTM.NewInjector = d.NewInjector
	p.LockFault = d
}

// Injected returns a live snapshot of faults injected so far, by reason.
func (d *Director) Injected() [htm.NumReasons]uint64 {
	var out [htm.NumReasons]uint64
	for i := range out {
		out[i] = d.injected[i].Load()
	}
	return out
}

// TotalInjected returns the total faults injected so far.
func (d *Director) TotalInjected() uint64 {
	var n uint64
	for i := range d.injected {
		n += d.injected[i].Load()
	}
	return n
}

// LockSpins returns the number of lock acquisitions stretched so far.
func (d *Director) LockSpins() uint64 {
	if d.plan.LockSpikeEvery <= 0 {
		return 0
	}
	return uint64(d.locks.Load()) / uint64(d.plan.LockSpikeEvery)
}

// OnLockAcquired implements core.LockFaultHook: every LockSpikeEvery-th
// global lock acquisition spins for LockSpikeSpins iterations while holding
// the lock, simulating a lock holder that suddenly goes slow.
func (d *Director) OnLockAcquired() {
	p := d.plan
	if p.LockSpikeEvery <= 0 || p.LockSpikeSpins <= 0 {
		return
	}
	n := d.locks.Add(1)
	if n%int64(p.LockSpikeEvery) != 0 {
		return
	}
	for i := 0; i < p.LockSpikeSpins; i++ {
		if i%64 == 63 {
			// Yield so a GOMAXPROCS-bound host still schedules the
			// waiters we are deliberately stalling.
			runtime.Gosched()
		}
	}
}

// NewInjector returns the next per-thread injector. Matches the signature
// of htm.Config.NewInjector. Each injector owns a private xoshiro256**
// stream derived from (Seed, thread ordinal), so one thread's
// probabilistic decisions are a pure function of the plan and its creation
// rank.
func (d *Director) NewInjector() htm.Injector {
	id := d.threads.Add(1) - 1
	if !d.plan.Active() {
		return nil
	}
	return &injector{
		d:   d,
		rng: rng.NewXoshiro256(d.plan.Seed ^ (uint64(id)+1)*0x9e3779b97f4a7c15),
	}
}

// injector is the per-thread htm.Injector. Single-threaded by construction
// (one per Tx, one Tx per thread), so its fields need no synchronization;
// only the Director's counters are shared.
type injector struct {
	d   *Director
	rng *rng.Xoshiro256

	attempt int64 // this thread's attempt count (for NthEvery)
}

// count records an injected fault in the Director's live mirror. The Tx's
// own Stats.Injected is bumped by htm.Run when the abort unwinds; this
// mirror exists so fault activity is visible without quiescing threads.
func (in *injector) count(r htm.AbortReason) htm.AbortReason {
	if r != htm.None {
		in.d.injected[r].Add(1)
	}
	return r
}

// TxBegin implements htm.Injector.
func (in *injector) TxBegin() (readLines, writeLines int, reason htm.AbortReason) {
	p := in.d.plan
	in.attempt++
	global := in.d.attempts.Add(1)

	// Conflict storm: every attempt starting inside the window dies,
	// whichever thread it belongs to — the synchronized volley that
	// triggers the lemming effect.
	if p.StormEvery > 0 && int(global%int64(p.StormEvery)) < p.stormLen() {
		return 0, 0, in.count(htm.Conflict)
	}

	if p.BeginProb > 0 && in.rng.Float64() < p.BeginProb {
		return 0, 0, in.count(p.reason())
	}

	// Capacity squeeze: attempts starting inside the window run with
	// shrunk effective read/write-set limits (0 keeps the configured
	// limit; htm clamps at the configured caps).
	if p.SqueezeEvery > 0 && int(global%int64(p.SqueezeEvery)) < p.squeezeLen() {
		readLines, writeLines = p.SqueezeReadLines, p.SqueezeWriteLines
	}
	return readLines, writeLines, htm.None
}

// TxAccess implements htm.Injector. nth is the 1-based transactional access
// ordinal within the current attempt.
func (in *injector) TxAccess(nth int, write bool) htm.AbortReason {
	p := in.d.plan
	if p.NthAccess > 0 && nth == p.NthAccess && in.attempt%int64(p.nthEvery()) == 0 {
		return in.count(p.nthReason())
	}
	if p.AccessProb > 0 && in.rng.Float64() < p.AccessProb {
		return in.count(p.reason())
	}
	return htm.None
}

// TxPreCommit implements htm.Injector.
func (in *injector) TxPreCommit() htm.AbortReason {
	p := in.d.plan
	if p.CommitProb > 0 && in.rng.Float64() < p.CommitProb {
		return in.count(p.reason())
	}
	return htm.None
}
