package check

import (
	"maps"
	"slices"

	"rtle/internal/wanghash"
)

// SetModel is the sequential specification of a set of uint64 keys
// (internal/avl's operations: OpContains, OpInsert, OpRemove).
func SetModel() Model {
	return Model{
		Init: func() any { return map[uint64]bool{} },
		Step: func(state any, e Event) (any, bool) {
			s := state.(map[uint64]bool)
			present := s[e.Arg1]
			switch e.Op {
			case OpContains:
				return state, e.Ok == present
			case OpInsert:
				if e.Ok != !present {
					return state, false
				}
				if !e.Ok {
					return state, true
				}
				ns := maps.Clone(s)
				ns[e.Arg1] = true
				return ns, true
			case OpRemove:
				if e.Ok != present {
					return state, false
				}
				if !e.Ok {
					return state, true
				}
				ns := maps.Clone(s)
				delete(ns, e.Arg1)
				return ns, true
			}
			return state, false
		},
		Apply: func(state any, e Event) any {
			s := state.(map[uint64]bool)
			switch e.Op {
			case OpInsert:
				if !s[e.Arg1] {
					ns := maps.Clone(s)
					ns[e.Arg1] = true
					return ns
				}
			case OpRemove:
				if s[e.Arg1] {
					ns := maps.Clone(s)
					delete(ns, e.Arg1)
					return ns
				}
			}
			return state
		},
		Hash: func(state any) uint64 {
			var h uint64
			for k := range state.(map[uint64]bool) {
				h ^= wanghash.Mix(k) // commutative: iteration order free
			}
			return h
		},
		Equal: func(a, b any) bool {
			return maps.Equal(a.(map[uint64]bool), b.(map[uint64]bool))
		},
	}
}

// SetModelFrom is SetModel started from a known key set instead of empty
// — the warm-checking seed, taken from a server snapshot. Init hands out a
// fresh copy per search branch, so the caller's map is never mutated.
func SetModelFrom(seed map[uint64]bool) Model {
	m := SetModel()
	m.Init = func() any {
		s := make(map[uint64]bool, len(seed))
		maps.Copy(s, seed)
		return s
	}
	return m
}

// MapModel is the sequential specification of a uint64->uint64 map
// (internal/tmap's operations: OpGet, OpPut, OpDelete, OpAdd).
func MapModel() Model {
	return Model{
		Init: func() any { return map[uint64]uint64{} },
		Step: func(state any, e Event) (any, bool) {
			s := state.(map[uint64]uint64)
			cur, present := s[e.Arg1]
			switch e.Op {
			case OpGet:
				if e.Ok != present {
					return state, false
				}
				return state, !present || e.Ret == cur
			case OpPut:
				// Ok reports "newly inserted".
				if e.Ok != !present {
					return state, false
				}
				ns := maps.Clone(s)
				ns[e.Arg1] = e.Arg2
				return ns, true
			case OpDelete:
				if e.Ok != present {
					return state, false
				}
				if !e.Ok {
					return state, true
				}
				ns := maps.Clone(s)
				delete(ns, e.Arg1)
				return ns, true
			case OpAdd:
				nv := cur + e.Arg2
				if e.Ret != nv {
					return state, false
				}
				ns := maps.Clone(s)
				ns[e.Arg1] = nv
				return ns, true
			}
			return state, false
		},
		Apply: func(state any, e Event) any {
			s := state.(map[uint64]uint64)
			cur, present := s[e.Arg1]
			switch e.Op {
			case OpPut:
				ns := maps.Clone(s)
				ns[e.Arg1] = e.Arg2
				return ns
			case OpDelete:
				if present {
					ns := maps.Clone(s)
					delete(ns, e.Arg1)
					return ns
				}
			case OpAdd:
				ns := maps.Clone(s)
				ns[e.Arg1] = cur + e.Arg2
				return ns
			}
			return state
		},
		Hash: func(state any) uint64 {
			var h uint64
			for k, v := range state.(map[uint64]uint64) {
				h ^= wanghash.Mix(k ^ wanghash.Mix(v))
			}
			return h
		},
		Equal: func(a, b any) bool {
			return maps.Equal(a.(map[uint64]uint64), b.(map[uint64]uint64))
		},
	}
}

// MapModelFrom is MapModel started from known key→value pairs — the
// warm-checking seed, taken from a server snapshot.
func MapModelFrom(seed map[uint64]uint64) Model {
	m := MapModel()
	m.Init = func() any {
		s := make(map[uint64]uint64, len(seed))
		maps.Copy(s, seed)
		return s
	}
	return m
}

// BankModel is the sequential specification of internal/bank: accounts
// balances with the given initial value, clamped transfers (OpTransfer's
// Ret is the amount actually moved) and balance reads.
func BankModel(accounts int, initial uint64) Model {
	return Model{
		Init: func() any {
			s := make([]uint64, accounts)
			for i := range s {
				s[i] = initial
			}
			return s
		},
		Step: func(state any, e Event) (any, bool) {
			s := state.([]uint64)
			switch e.Op {
			case OpBalance:
				return state, e.Ret == s[e.Arg1]
			case OpTransfer:
				from, to, amount := int(e.Arg1), int(e.Arg2), e.Arg3
				moved := min(amount, s[from])
				if e.Ret != moved {
					return state, false
				}
				if moved == 0 || from == to {
					return state, true
				}
				ns := slices.Clone(s)
				ns[from] -= moved
				ns[to] += moved
				return ns, true
			}
			return state, false
		},
		Apply: func(state any, e Event) any {
			s := state.([]uint64)
			if e.Op != OpTransfer {
				return state
			}
			from, to, amount := int(e.Arg1), int(e.Arg2), e.Arg3
			moved := min(amount, s[from])
			if moved == 0 || from == to {
				return state
			}
			ns := slices.Clone(s)
			ns[from] -= moved
			ns[to] += moved
			return ns
		},
		Hash: func(state any) uint64 {
			var h uint64
			for i, v := range state.([]uint64) {
				h ^= wanghash.Mix(uint64(i+1)*0x9e3779b97f4a7c15 + v)
			}
			return h
		},
		Equal: func(a, b any) bool {
			return slices.Equal(a.([]uint64), b.([]uint64))
		},
	}
}

// BankModelFrom is BankModel started from known balances — the
// warm-checking seed, taken from a server snapshot. Init hands out a
// fresh copy per search branch, so the caller's slice is never mutated.
func BankModelFrom(balances []uint64) Model {
	m := BankModel(len(balances), 0)
	m.Init = func() any { return slices.Clone(balances) }
	return m
}
