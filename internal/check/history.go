// Package check verifies that the synchronization methods actually provide
// the semantics they claim, under adversity: a per-thread history recorder,
// a WGL-style linearizability checker for the repository's data-structure
// workloads (set, map, bank), and an opacity validator for raw HTM
// histories. Together with internal/fault it closes the loop the paper
// leaves implicit — TLE and its refinements are only interesting if they
// stay correct precisely when the hardware misbehaves, and a simulation can
// force the hardware to misbehave on demand.
//
// The recorder stamps invocation and response events with tickets from one
// shared atomic counter. Ticket order is consistent with real time (an
// operation that returned before another was invoked has a smaller return
// ticket than the other's invoke ticket), which is exactly the partial
// order linearizability is defined over; using tickets instead of
// nanosecond clocks removes timer-resolution ties.
package check

import (
	"fmt"
	"sync/atomic"
)

// Op identifies the abstract operation an Event performed.
type Op uint8

const (
	// Set operations (internal/avl).
	OpContains Op = iota // Arg1 = key; Ok = present
	OpInsert             // Arg1 = key; Ok = newly inserted
	OpRemove             // Arg1 = key; Ok = removed
	// Map operations (internal/tmap).
	OpGet    // Arg1 = key; Ret, Ok = value, present
	OpPut    // Arg1 = key, Arg2 = value; Ok = newly inserted
	OpDelete // Arg1 = key; Ok = deleted
	OpAdd    // Arg1 = key, Arg2 = delta; Ret = new value
	// Bank operations (internal/bank).
	OpTransfer // Arg1 = from, Arg2 = to, Arg3 = amount; Ret = amount moved
	OpBalance  // Arg1 = account; Ret = balance
)

// String returns the operation's name.
func (o Op) String() string {
	switch o {
	case OpContains:
		return "contains"
	case OpInsert:
		return "insert"
	case OpRemove:
		return "remove"
	case OpGet:
		return "get"
	case OpPut:
		return "put"
	case OpDelete:
		return "delete"
	case OpAdd:
		return "add"
	case OpTransfer:
		return "transfer"
	case OpBalance:
		return "balance"
	default:
		return fmt.Sprintf("Op(%d)", uint8(o))
	}
}

// Event is one recorded operation: its invocation arguments, its observed
// response, and the ticket interval during which it was pending. A
// Pending event never observed a response (the connection died with the
// request in flight — see ThreadRecorder.Cut); its Ret/Ok are meaningless
// and its Return ticket is unset, placing it after every completed
// operation for the checker.
type Event struct {
	Thread           int
	Op               Op
	Arg1, Arg2, Arg3 uint64
	Ret              uint64
	Ok               bool
	Pending          bool
	Invoke, Return   int64 // tickets from the history's shared counter
}

// String renders the event for failure reports.
func (e Event) String() string {
	if e.Pending {
		return fmt.Sprintf("t%d %s(%d,%d,%d) -> ? @[%d,∞)",
			e.Thread, e.Op, e.Arg1, e.Arg2, e.Arg3, e.Invoke)
	}
	return fmt.Sprintf("t%d %s(%d,%d,%d) -> (%d,%v) @[%d,%d]",
		e.Thread, e.Op, e.Arg1, e.Arg2, e.Arg3, e.Ret, e.Ok, e.Invoke, e.Return)
}

// History collects per-thread operation recordings. Create one per run,
// hand each worker its Recorder, and read Events after the workers quiesce.
type History struct {
	clock atomic.Int64
	recs  []*ThreadRecorder
}

// NewHistory returns a History with one recorder per thread.
func NewHistory(threads int) *History {
	h := &History{}
	h.recs = make([]*ThreadRecorder, threads)
	for i := range h.recs {
		h.recs[i] = &ThreadRecorder{h: h, thread: i}
	}
	return h
}

// Recorder returns thread i's recorder. Each recorder must be used by
// exactly one goroutine.
func (h *History) Recorder(i int) *ThreadRecorder { return h.recs[i] }

// Events concatenates all threads' events. Call only after every recording
// goroutine has quiesced.
func (h *History) Events() []Event {
	var out []Event
	for _, r := range h.recs {
		if r.pending {
			panic("check: Events with an operation still pending")
		}
		out = append(out, r.events...)
	}
	return out
}

// ThreadRecorder records one thread's operations. Not safe for concurrent
// use; each operation must complete (Return) before the next Invoke.
type ThreadRecorder struct {
	h       *History
	thread  int
	events  []Event
	pending bool
}

// Invoke records the start of an operation. Unused arguments pass zero.
func (r *ThreadRecorder) Invoke(op Op, a1, a2, a3 uint64) {
	if r.pending {
		panic("check: Invoke while a previous operation is pending")
	}
	r.pending = true
	r.events = append(r.events, Event{
		Thread: r.thread, Op: op, Arg1: a1, Arg2: a2, Arg3: a3,
		Invoke: r.h.clock.Add(1),
	})
}

// Abandon discards the pending operation's invocation without recording a
// response. It is sound only when the operation is known not to have
// executed — e.g. a server rejected the request before running it — since
// an executed-but-unrecorded mutation would falsify the history.
func (r *ThreadRecorder) Abandon() {
	if !r.pending {
		panic("check: Abandon without a pending Invoke")
	}
	r.events = r.events[:len(r.events)-1]
	r.pending = false
}

// Cut closes the pending operation as incomplete: the response was lost
// (a connection died with the request in flight), so whether the
// operation executed is unknowable. The event stays in the history marked
// Pending; the checker may linearize it with any legal effect or drop it
// entirely — exactly the ambiguity a crashed server leaves. This is the
// sound counterpart to Abandon when the operation MAY have executed: an
// executed-but-discarded mutation would falsify the history, an
// executed-but-pending one cannot.
func (r *ThreadRecorder) Cut() {
	if !r.pending {
		panic("check: Cut without a pending Invoke")
	}
	r.events[len(r.events)-1].Pending = true
	r.pending = false
}

// Return records the pending operation's response.
func (r *ThreadRecorder) Return(ret uint64, ok bool) {
	if !r.pending {
		panic("check: Return without a pending Invoke")
	}
	e := &r.events[len(r.events)-1]
	e.Ret, e.Ok = ret, ok
	e.Return = r.h.clock.Add(1)
	r.pending = false
}
