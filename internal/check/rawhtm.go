package check

import (
	"sync"

	"rtle/internal/htm"
	"rtle/internal/mem"
	"rtle/internal/rng"
)

// RawConfig configures RunRawHTM.
type RawConfig struct {
	// Threads and Attempts: each of Threads goroutines runs Attempts
	// transaction attempts (committed or not, each yields one TxRecord).
	Threads  int
	Attempts int
	// Lines is the shared-region size; attempts touch the first word of
	// random lines.
	Lines int
	// AccessesPerAttempt is how many reads/writes each attempt performs.
	AccessesPerAttempt int
	// Seed derives per-thread operation streams.
	Seed uint64
}

func (c RawConfig) lines() int {
	if c.Lines > 0 {
		return c.Lines
	}
	return 8
}

func (c RawConfig) accesses() int {
	if c.AccessesPerAttempt > 0 {
		return c.AccessesPerAttempt
	}
	return 6
}

// RunRawHTM hammers a shared region with raw htm.Tx attempts (random reads
// and writes, no retry discipline, no fallback) and records every attempt's
// observable footprint. It returns the inputs CheckOpacity needs: the
// post-initialization clock value, the region's initial values, and the
// attempt records. htmCfg carries the capacity bounds and — the point of
// the exercise — the fault injector.
//
// Written values are made globally unique (thread, sequence) so an
// observed read pins down exactly which committed write produced it.
func RunRawHTM(cfg RawConfig, htmCfg htm.Config) (uint64, map[mem.Addr]uint64, []TxRecord) {
	m := mem.New((cfg.lines() + 8) * mem.WordsPerLine)
	region := m.AllocLines(cfg.lines())
	addrs := make([]mem.Addr, cfg.lines())
	for i := range addrs {
		addrs[i] = region + mem.Addr(i*mem.WordsPerLine)
		m.Store(addrs[i], uint64(i)) // distinct initial values
	}
	base := m.ClockLoad()
	initial := make(map[mem.Addr]uint64, len(addrs))
	for _, a := range addrs {
		initial[a] = m.Load(a)
	}

	perThread := make([][]TxRecord, cfg.Threads)
	var wg sync.WaitGroup
	for th := 0; th < cfg.Threads; th++ {
		wg.Add(1)
		go func(th int) {
			defer wg.Done()
			r := rng.NewXoshiro256(cfg.Seed + uint64(th)*0x9e3779b97f4a7c15 + 1)
			tx := htm.NewTx(m, htmCfg)
			recs := make([]TxRecord, 0, cfg.Attempts)
			var seq uint64
			for at := 0; at < cfg.Attempts; at++ {
				rec := TxRecord{Thread: th, Attempt: at}
				written := make(map[mem.Addr]uint64)
				var order []mem.Addr
				reason := tx.Run(func(tx *htm.Tx) {
					for k := 0; k < cfg.accesses(); k++ {
						a := addrs[r.Intn(len(addrs))]
						if r.Intn(2) == 0 {
							v := tx.Read(a)
							if _, own := written[a]; !own {
								// The observation log is checker state, not
								// transaction state: recording it inside the
								// body is the whole point (aborted attempts
								// feed the opacity validator too).
								//rtle:ignore txbody checker observation log
								rec.Reads = append(rec.Reads, ReadObs{a, v})
							}
						} else {
							seq++
							v := uint64(th+1)<<32 | seq
							tx.Write(a, v)
							if _, dup := written[a]; !dup {
								//rtle:ignore txbody checker observation log
								order = append(order, a)
							}
							written[a] = v
						}
					}
				})
				if reason == htm.None {
					rec.Committed = true
					rec.CommitVersion = tx.CommitVersion()
					for _, a := range order {
						rec.Writes = append(rec.Writes, WriteObs{a, written[a]})
					}
				} else {
					// An abort unwinds mid-body: Reads holds the
					// prefix observed before the abort, which is
					// exactly what opacity constrains.
					rec.Writes = nil
				}
				recs = append(recs, rec)
			}
			perThread[th] = recs
		}(th)
	}
	wg.Wait()

	var all []TxRecord
	for _, recs := range perThread {
		all = append(all, recs...)
	}
	return base, initial, all
}
