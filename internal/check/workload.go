package check

import (
	"fmt"
	"sync"

	"rtle/internal/avl"
	"rtle/internal/bank"
	"rtle/internal/core"
	"rtle/internal/mem"
	"rtle/internal/rng"
	"rtle/internal/tmap"
)

// Workloads names the checked ADT workloads, in the order the fuzzer
// cycles through them.
var Workloads = []string{"set", "map", "bank"}

// ChaosMethods is the method roster the chaos suite and cmd/rtlefuzz
// cover: every synchronization scheme in the repository.
var ChaosMethods = []string{
	"Lock", "TLE", "HLE", "RW-TLE", "FG-TLE(256)", "FG-TLE(adaptive)",
	"ALE(256)", "NOrec", "RHNOrec",
}

// RunConfig configures one recorded workload run.
type RunConfig struct {
	Threads      int
	OpsPerThread int
	Seed         uint64
	// Keys is the key-space size for set/map and the account count for
	// bank (default 16 / 8).
	Keys int
}

func (c RunConfig) keys(def int) int {
	if c.Keys > 0 {
		return c.Keys
	}
	return def
}

// BankInitial is the per-account starting balance of the bank workload.
const BankInitial = 1000

// RunWorkload executes the named ADT workload ("set", "map", or "bank")
// over method — which must have been built over m, where the structure is
// allocated too — recording every operation. It returns the history and
// the sequential model to check it against.
func RunWorkload(kind string, method core.Method, m *mem.Memory, cfg RunConfig) (*History, Model, error) {
	switch kind {
	case "set":
		s := avl.New(m)
		return runThreads(cfg, method, func(t core.Thread, rec *ThreadRecorder, r *rng.Xoshiro256) {
			h := s.NewHandle()
			keys := uint64(cfg.keys(16))
			for i := 0; i < cfg.OpsPerThread; i++ {
				key := r.Uint64n(keys)
				switch p := r.Intn(100); {
				case p < 40:
					rec.Invoke(OpContains, key, 0, 0)
					rec.Return(0, h.Contains(t, key))
				case p < 70:
					rec.Invoke(OpInsert, key, 0, 0)
					rec.Return(0, h.Insert(t, key))
				default:
					rec.Invoke(OpRemove, key, 0, 0)
					rec.Return(0, h.Remove(t, key))
				}
			}
		}), SetModel(), nil
	case "map":
		mp := tmap.New(m, cfg.keys(16))
		return runThreads(cfg, method, func(t core.Thread, rec *ThreadRecorder, r *rng.Xoshiro256) {
			h := mp.NewHandle()
			keys := uint64(cfg.keys(16))
			for i := 0; i < cfg.OpsPerThread; i++ {
				key := r.Uint64n(keys)
				switch p := r.Intn(100); {
				case p < 30:
					rec.Invoke(OpGet, key, 0, 0)
					v, ok := h.Get(t, key)
					rec.Return(v, ok)
				case p < 55:
					val := r.Uint64n(1 << 20)
					rec.Invoke(OpPut, key, val, 0)
					rec.Return(0, h.Put(t, key, val))
				case p < 80:
					delta := 1 + r.Uint64n(9)
					rec.Invoke(OpAdd, key, delta, 0)
					rec.Return(h.Add(t, key, delta), true)
				default:
					rec.Invoke(OpDelete, key, 0, 0)
					rec.Return(0, h.Delete(t, key))
				}
			}
		}), MapModel(), nil
	case "bank":
		accounts := cfg.keys(8)
		b := bank.New(m, accounts, BankInitial)
		return runThreads(cfg, method, func(t core.Thread, rec *ThreadRecorder, r *rng.Xoshiro256) {
			for i := 0; i < cfg.OpsPerThread; i++ {
				if r.Intn(100) < 70 {
					from := r.Intn(accounts)
					to := (from + 1 + r.Intn(accounts-1)) % accounts
					amount := 1 + r.Uint64n(100)
					rec.Invoke(OpTransfer, uint64(from), uint64(to), amount)
					rec.Return(b.Transfer(t, from, to, amount), true)
				} else {
					acct := r.Intn(accounts)
					rec.Invoke(OpBalance, uint64(acct), 0, 0)
					var v uint64
					t.Atomic(func(c core.Context) { v = b.BalanceCS(c, acct) })
					rec.Return(v, true)
				}
			}
		}), BankModel(accounts, BankInitial), nil
	}
	return nil, Model{}, fmt.Errorf("check: unknown workload %q", kind)
}

// runThreads spawns cfg.Threads goroutines, each with its own method
// thread, recorder, and PRNG stream, and waits for them.
func runThreads(cfg RunConfig, method core.Method, worker func(core.Thread, *ThreadRecorder, *rng.Xoshiro256)) *History {
	n := cfg.Threads
	if n <= 0 {
		n = 1
	}
	h := NewHistory(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			worker(method.NewThread(), h.Recorder(i),
				rng.NewXoshiro256(cfg.Seed+uint64(i)*0x9e3779b97f4a7c15+1))
		}(i)
	}
	wg.Wait()
	return h
}
