package check

import (
	"sync"
	"testing"
)

// ev builds an event with explicit tickets.
func ev(thread int, op Op, a1, ret uint64, ok bool, inv, ret2 int64) Event {
	return Event{Thread: thread, Op: op, Arg1: a1, Ret: ret, Ok: ok, Invoke: inv, Return: ret2}
}

func TestLinearizableEmptyAndSequential(t *testing.T) {
	m := SetModel()
	if !CheckLinearizable(m, nil) {
		t.Fatal("empty history rejected")
	}
	h := []Event{
		ev(0, OpInsert, 5, 0, true, 1, 2),
		ev(0, OpContains, 5, 0, true, 3, 4),
		ev(0, OpRemove, 5, 0, true, 5, 6),
		ev(0, OpContains, 5, 0, false, 7, 8),
	}
	if !CheckLinearizable(m, h) {
		t.Fatal("legal sequential set history rejected")
	}
}

func TestSequentialIllegalRejected(t *testing.T) {
	m := SetModel()
	h := []Event{
		ev(0, OpInsert, 5, 0, true, 1, 2),
		ev(0, OpContains, 5, 0, false, 3, 4), // lost insert
	}
	if CheckLinearizable(m, h) {
		t.Fatal("lost-insert history accepted")
	}
}

func TestConcurrentOverlapUsesFreedom(t *testing.T) {
	m := SetModel()
	// contains(5)=true overlaps insert(5): legal only because the insert
	// may linearize first.
	h := []Event{
		ev(0, OpInsert, 5, 0, true, 1, 4),
		ev(1, OpContains, 5, 0, true, 2, 3),
	}
	if !CheckLinearizable(m, h) {
		t.Fatal("overlapping insert/contains rejected")
	}
	// The same responses without overlap are illegal: contains returned
	// true strictly before the insert was invoked.
	h2 := []Event{
		ev(1, OpContains, 5, 0, true, 1, 2),
		ev(0, OpInsert, 5, 0, true, 3, 4),
	}
	if CheckLinearizable(m, h2) {
		t.Fatal("contains-before-insert history accepted")
	}
}

func TestBankModelChecks(t *testing.T) {
	m := BankModel(2, 100)
	h := []Event{
		{Thread: 0, Op: OpTransfer, Arg1: 0, Arg2: 1, Arg3: 30, Ret: 30, Ok: true, Invoke: 1, Return: 2},
		{Thread: 0, Op: OpBalance, Arg1: 0, Ret: 70, Ok: true, Invoke: 3, Return: 4},
		{Thread: 0, Op: OpTransfer, Arg1: 0, Arg2: 1, Arg3: 200, Ret: 70, Ok: true, Invoke: 5, Return: 6}, // clamped
		{Thread: 0, Op: OpBalance, Arg1: 1, Ret: 200, Ok: true, Invoke: 7, Return: 8},
	}
	if !CheckLinearizable(m, h) {
		t.Fatal("legal bank history rejected")
	}
	bad := append(h[:3:3], Event{Thread: 0, Op: OpBalance, Arg1: 1, Ret: 130, Ok: true, Invoke: 7, Return: 8})
	if CheckLinearizable(m, bad) {
		t.Fatal("bank history with wrong balance accepted")
	}
}

func TestMapModelChecks(t *testing.T) {
	m := MapModel()
	h := []Event{
		{Op: OpPut, Arg1: 1, Arg2: 10, Ok: true, Invoke: 1, Return: 2},
		{Op: OpAdd, Arg1: 1, Arg2: 5, Ret: 15, Invoke: 3, Return: 4},
		{Op: OpGet, Arg1: 1, Ret: 15, Ok: true, Invoke: 5, Return: 6},
		{Op: OpDelete, Arg1: 1, Ok: true, Invoke: 7, Return: 8},
		{Op: OpGet, Arg1: 1, Ret: 0, Ok: false, Invoke: 9, Return: 10},
	}
	if !CheckLinearizable(m, h) {
		t.Fatal("legal map history rejected")
	}
	h[2].Ret = 10 // stale read after add
	if CheckLinearizable(m, h) {
		t.Fatal("stale-read map history accepted")
	}
}

// TestRecorderTicketOrder exercises the recorder concurrently under -race
// and verifies ticket intervals are well-formed and real-time consistent.
func TestRecorderTicketOrder(t *testing.T) {
	const threads, ops = 4, 100
	h := NewHistory(threads)
	var wg sync.WaitGroup
	for i := 0; i < threads; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rec := h.Recorder(i)
			for k := 0; k < ops; k++ {
				rec.Invoke(OpInsert, uint64(k), 0, 0)
				rec.Return(0, true)
			}
		}(i)
	}
	wg.Wait()
	events := h.Events()
	if len(events) != threads*ops {
		t.Fatalf("recorded %d events, want %d", len(events), threads*ops)
	}
	seen := make(map[int64]bool)
	for _, e := range events {
		if e.Invoke >= e.Return {
			t.Fatalf("event %v has Invoke >= Return", e)
		}
		if seen[e.Invoke] || seen[e.Return] {
			t.Fatalf("duplicate ticket in %v", e)
		}
		seen[e.Invoke], seen[e.Return] = true, true
	}
}
