package check

import "sort"

// Model is a sequential specification for the linearizability checker.
// States are immutable from the checker's point of view: Step must return a
// fresh value (or the unchanged input) rather than mutating in place,
// because the checker keeps superseded states on its undo stack.
type Model struct {
	// Init returns the initial state.
	Init func() any
	// Step applies e to state. It returns the successor state and whether
	// e's recorded response (Ret, Ok) is legal from state.
	Step func(state any, e Event) (any, bool)
	// Hash returns a value equal for equal states (used to bucket the
	// memoization cache).
	Hash func(state any) uint64
	// Equal reports state equality (resolves Hash collisions).
	Equal func(a, b any) bool
}

// CheckLinearizable reports whether events — a complete history from a
// History — is linearizable with respect to model: whether there exists a
// total order of the operations, consistent with the ticket-interval
// partial order, under which every recorded response is legal.
//
// The checker is the Wing & Gong tree search with Lowe's memoization
// (the algorithm behind porcupine/knossos): entries sorted by ticket, a
// linked list of pending operations, an undo stack, and a cache of
// (linearized-set, state) configurations already proven fruitless.
func CheckLinearizable(model Model, events []Event) bool {
	n := len(events)
	if n == 0 {
		return true
	}

	type stamp struct {
		id     int
		invoke bool
		time   int64
	}
	stamps := make([]stamp, 0, 2*n)
	for i, e := range events {
		stamps = append(stamps,
			stamp{i, true, e.Invoke}, stamp{i, false, e.Return})
	}
	sort.Slice(stamps, func(i, j int) bool { return stamps[i].time < stamps[j].time })

	// Linked list of entries. Invoke nodes carry match = their return
	// node; return nodes have match == nil.
	type node struct {
		id         int
		match      *node
		prev, next *node
	}
	head := &node{id: -1}
	tail := head
	invokes := make([]*node, n)
	for _, s := range stamps {
		nd := &node{id: s.id, prev: tail}
		tail.next = nd
		tail = nd
		if s.invoke {
			invokes[s.id] = nd
		} else {
			invokes[s.id].match = nd
		}
	}

	lift := func(e *node) {
		e.prev.next = e.next
		e.next.prev = e.prev
		m := e.match
		m.prev.next = m.next
		if m.next != nil {
			m.next.prev = m.prev
		}
	}
	unlift := func(e *node) {
		m := e.match
		m.prev.next = m
		if m.next != nil {
			m.next.prev = m
		}
		e.prev.next = e
		e.next.prev = e
	}

	linearized := newBitset(n)
	type cacheEntry struct {
		bits  bitset
		state any
	}
	cache := make(map[uint64][]cacheEntry)
	cacheHas := func(key uint64, state any) bool {
		for _, ce := range cache[key] {
			if ce.bits.equal(linearized) && model.Equal(ce.state, state) {
				return true
			}
		}
		return false
	}

	type frame struct {
		entry *node
		state any
	}
	var calls []frame
	state := model.Init()
	entry := head.next
	for head.next != nil {
		if entry.match != nil { // invoke: try to linearize this op next
			newState, legal := model.Step(state, events[entry.id])
			if legal {
				linearized.set(entry.id)
				key := linearized.hash() ^ model.Hash(newState)
				if !cacheHas(key, newState) {
					cache[key] = append(cache[key],
						cacheEntry{linearized.clone(), newState})
					calls = append(calls, frame{entry, state})
					state = newState
					lift(entry)
					entry = head.next
					continue
				}
				linearized.clear(entry.id)
			}
			entry = entry.next
		} else { // return: every op pending before it failed — backtrack
			if len(calls) == 0 {
				return false
			}
			f := calls[len(calls)-1]
			calls = calls[:len(calls)-1]
			entry, state = f.entry, f.state
			linearized.clear(entry.id)
			unlift(entry)
			entry = entry.next
		}
	}
	return true
}

// bitset is a fixed-size bit vector over operation ids.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)   { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int) { b[i/64] &^= 1 << (i % 64) }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

func (b bitset) hash() uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	for _, w := range b {
		h = (h ^ w) * 1099511628211
	}
	return h
}
