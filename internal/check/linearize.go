package check

import "sort"

// Model is a sequential specification for the linearizability checker.
// States are immutable from the checker's point of view: Step must return a
// fresh value (or the unchanged input) rather than mutating in place,
// because the checker keeps superseded states on its undo stack.
type Model struct {
	// Init returns the initial state.
	Init func() any
	// Step applies e to state. It returns the successor state and whether
	// e's recorded response (Ret, Ok) is legal from state.
	Step func(state any, e Event) (any, bool)
	// Apply returns the successor state of e's operation regardless of its
	// response — the completion the checker assumes when linearizing a
	// Pending event, whose response was lost. It is well-defined for the
	// repository's models because every operation's state effect is a
	// function of (state, op, args) alone; the response only reports what
	// happened. A model with Apply == nil rejects pending events (Step
	// judges their zeroed response, which typically fails).
	Apply func(state any, e Event) any
	// Hash returns a value equal for equal states (used to bucket the
	// memoization cache).
	Hash func(state any) uint64
	// Equal reports state equality (resolves Hash collisions).
	Equal func(a, b any) bool
}

// CheckLinearizable reports whether events — a complete history from a
// History — is linearizable with respect to model: whether there exists a
// total order of the operations, consistent with the ticket-interval
// partial order, under which every recorded response is legal.
//
// The checker is the Wing & Gong tree search with Lowe's memoization
// (the algorithm behind porcupine/knossos): entries sorted by ticket, a
// linked list of pending operations, an undo stack, and a cache of
// (linearized-set, state) configurations already proven fruitless.
//
// Events marked Pending (see ThreadRecorder.Cut) never observed a
// response: each is given a synthetic return ticket after every real
// stamp, may linearize with any legal effect (model.Apply) or not at all,
// and the history is linearizable once every completed operation is
// placed. This is exactly the crash semantics a failover run records — an
// in-flight write at the kill may or may not have executed, and either
// completion must be accepted; a write whose OK response was recorded
// remains obligatory, so an acknowledged write lost by the promotion is
// still a verdict of non-linearizable.
func CheckLinearizable(model Model, events []Event) bool {
	n := len(events)
	if n == 0 {
		return true
	}

	// Synthetic return tickets place every pending operation's return
	// after all real stamps: nothing is ordered after a pending op, which
	// is what "still in flight at the crash" means.
	var maxTicket int64
	complete := 0
	for _, e := range events {
		if e.Invoke > maxTicket {
			maxTicket = e.Invoke
		}
		if !e.Pending {
			complete++
			if e.Return > maxTicket {
				maxTicket = e.Return
			}
		}
	}
	if complete == 0 {
		return true // nothing observed a response; any completion works
	}
	returns := make([]int64, n)
	for i, e := range events {
		returns[i] = e.Return
		if e.Pending {
			maxTicket++
			returns[i] = maxTicket
		}
	}

	type stamp struct {
		id     int
		invoke bool
		time   int64
	}
	stamps := make([]stamp, 0, 2*n)
	for i, e := range events {
		stamps = append(stamps,
			stamp{i, true, e.Invoke}, stamp{i, false, returns[i]})
	}
	sort.Slice(stamps, func(i, j int) bool { return stamps[i].time < stamps[j].time })

	// Linked list of entries. Invoke nodes carry match = their return
	// node; return nodes have match == nil.
	type node struct {
		id         int
		match      *node
		prev, next *node
	}
	head := &node{id: -1}
	tail := head
	invokes := make([]*node, n)
	for _, s := range stamps {
		nd := &node{id: s.id, prev: tail}
		tail.next = nd
		tail = nd
		if s.invoke {
			invokes[s.id] = nd
		} else {
			invokes[s.id].match = nd
		}
	}

	lift := func(e *node) {
		e.prev.next = e.next
		e.next.prev = e.prev
		m := e.match
		m.prev.next = m.next
		if m.next != nil {
			m.next.prev = m.prev
		}
	}
	unlift := func(e *node) {
		m := e.match
		m.prev.next = m
		if m.next != nil {
			m.next.prev = m
		}
		e.prev.next = e
		e.next.prev = e
	}

	linearized := newBitset(n)
	type cacheEntry struct {
		bits  bitset
		state any
	}
	cache := make(map[uint64][]cacheEntry)
	cacheHas := func(key uint64, state any) bool {
		for _, ce := range cache[key] {
			if ce.bits.equal(linearized) && model.Equal(ce.state, state) {
				return true
			}
		}
		return false
	}

	type frame struct {
		entry *node
		state any
	}
	var calls []frame
	state := model.Init()
	// completeRemaining counts completed (non-Pending) operations not yet
	// linearized: the history is linearizable once it reaches zero —
	// remaining pending operations are the ones that never executed.
	completeRemaining := complete
	entry := head.next
	for head.next != nil {
		if entry.match != nil { // invoke: try to linearize this op next
			e := events[entry.id]
			var newState any
			var legal bool
			if e.Pending && model.Apply != nil {
				// No response to judge: the operation executes with
				// whatever effect the model assigns it.
				newState, legal = model.Apply(state, e), true
			} else {
				newState, legal = model.Step(state, e)
			}
			if legal {
				linearized.set(entry.id)
				key := linearized.hash() ^ model.Hash(newState)
				if !cacheHas(key, newState) {
					cache[key] = append(cache[key],
						cacheEntry{linearized.clone(), newState})
					if !e.Pending {
						completeRemaining--
						if completeRemaining == 0 {
							return true
						}
					}
					calls = append(calls, frame{entry, state})
					state = newState
					lift(entry)
					entry = head.next
					continue
				}
				linearized.clear(entry.id)
			}
			entry = entry.next
		} else { // return: every op pending before it failed — backtrack
			if len(calls) == 0 {
				return false
			}
			f := calls[len(calls)-1]
			calls = calls[:len(calls)-1]
			entry, state = f.entry, f.state
			linearized.clear(entry.id)
			if !events[entry.id].Pending {
				completeRemaining++
			}
			unlift(entry)
			entry = entry.next
		}
	}
	return true
}

// bitset is a fixed-size bit vector over operation ids.
type bitset []uint64

func newBitset(n int) bitset { return make(bitset, (n+63)/64) }

func (b bitset) set(i int)   { b[i/64] |= 1 << (i % 64) }
func (b bitset) clear(i int) { b[i/64] &^= 1 << (i % 64) }

func (b bitset) clone() bitset {
	c := make(bitset, len(b))
	copy(c, b)
	return c
}

func (b bitset) equal(o bitset) bool {
	for i := range b {
		if b[i] != o[i] {
			return false
		}
	}
	return true
}

func (b bitset) hash() uint64 {
	h := uint64(1469598103934665603) // FNV offset basis
	for _, w := range b {
		h = (h ^ w) * 1099511628211
	}
	return h
}
