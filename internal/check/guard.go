package check

import (
	"fmt"
	"sync"

	"rtle/internal/avl"
	"rtle/internal/bank"
	"rtle/internal/core"
	"rtle/internal/guard"
	"rtle/internal/mem"
	"rtle/internal/rng"
	"rtle/internal/tmap"
)

// GuardVariants names the guard types the fuzzer and the chaos suite
// drive through RunGuardWorkload.
var GuardVariants = []string{"Guard(TLE)", "Guard(RW-TLE)"}

// guardOps erases the difference between Mutex and RWMutex so one
// workload body can drive either. For the plain Mutex the read forms
// degrade to the write forms, exactly as a sync.Mutex user would write
// it.
type guardOps struct {
	do  func(func(core.Context))
	rdo func(func(core.Context))
	// lock acquires the (writer) bracket and returns its context;
	// unlock releases it. rlock/runlock are the reader bracket.
	lock    func() core.Context
	unlock  func()
	rlock   func() core.Context
	runlock func()
}

// buildGuardOps constructs the named guard variant over m.
func buildGuardOps(variant string, m *mem.Memory, gcfg guard.Config) (*guardOps, error) {
	switch variant {
	case "Guard(TLE)":
		// Plain TLE has no slow path; the lazy-subscription knob would
		// silently do nothing, so strip it rather than mislead.
		gcfg.Policy.LazySubscription = false
		g := guard.NewMutex(m, gcfg)
		//rtle:ignore guardmisuse acquire-helper: guardOps.write pairs it with unlock
		w := func() core.Context { g.Lock(); return g.Ctx() }
		return &guardOps{
			do: g.Do, rdo: g.Do,
			lock: w, unlock: g.Unlock,
			rlock: w, runlock: g.Unlock,
		}, nil
	case "Guard(RW-TLE)":
		g := guard.NewRWMutex(m, gcfg)
		return &guardOps{
			do: g.Do, rdo: g.RDo,
			//rtle:ignore guardmisuse acquire-helper: guardOps.write pairs it with unlock
			lock:   func() core.Context { g.Lock(); return g.Ctx() },
			unlock: g.Unlock,
			//rtle:ignore guardmisuse acquire-helper: guardOps.read pairs it with runlock
			rlock:   func() core.Context { g.RLock(); return g.RCtx() },
			runlock: g.RUnlock,
		}, nil
	}
	return nil, fmt.Errorf("check: unknown guard variant %q", variant)
}

// Guard form mixing: every bracketEvery-th operation per thread uses the
// bracket (Lock/Unlock) form instead of the closure form, so histories
// always interleave pessimistic sections with speculative ones — that
// interoperation is precisely what the checker must vouch for.
const bracketEvery = 8

// read runs a read-only critical section through g, choosing the bracket
// reader for every bracketEvery-th op.
func (g *guardOps) read(i int, body func(core.Context)) {
	if i%bracketEvery == bracketEvery-1 {
		c := g.rlock()
		body(c)
		g.runlock()
		return
	}
	g.rdo(body)
}

// write runs a mutating critical section through g, choosing the bracket
// writer for every bracketEvery-th op.
func (g *guardOps) write(i int, body func(core.Context)) {
	if i%bracketEvery == bracketEvery-1 {
		c := g.lock()
		body(c)
		g.unlock()
		return
	}
	g.do(body)
}

// RunGuardWorkload is RunWorkload's guard twin: it executes the named ADT
// workload ("set", "map", or "bank") with every critical section guarded
// by the named guard variant built over m with gcfg, mixing closure and
// bracket forms, and records every operation. It returns the history and
// the sequential model to check it against.
//
// Reads go through RDo/RLock and writes through Do/Lock, so on the
// RW-TLE variant read-mostly phases exercise reader-reader parallelism
// and the instrumented slow path, while the TLE variant collapses both
// onto the single writer guard.
func RunGuardWorkload(kind, variant string, m *mem.Memory, gcfg guard.Config, cfg RunConfig) (*History, Model, error) {
	g, err := buildGuardOps(variant, m, gcfg)
	if err != nil {
		return nil, Model{}, err
	}
	switch kind {
	case "set":
		s := avl.New(m)
		return runGuardThreads(cfg, func(rec *ThreadRecorder, r *rng.Xoshiro256) {
			h := s.NewHandle()
			keys := uint64(cfg.keys(16))
			for i := 0; i < cfg.OpsPerThread; i++ {
				key := r.Uint64n(keys)
				switch p := r.Intn(100); {
				case p < 40:
					rec.Invoke(OpContains, key, 0, 0)
					var ok bool
					g.read(i, func(c core.Context) { ok = h.FindCS(c, key) })
					rec.Return(0, ok)
				case p < 70:
					rec.Invoke(OpInsert, key, 0, 0)
					var ok bool
					g.write(i, func(c core.Context) { ok = h.InsertCS(c, key) })
					h.AfterInsert(ok)
					rec.Return(0, ok)
				default:
					rec.Invoke(OpRemove, key, 0, 0)
					var ok bool
					g.write(i, func(c core.Context) { ok = h.RemoveCS(c, key) })
					h.AfterRemove(ok)
					rec.Return(0, ok)
				}
			}
		}), SetModel(), nil
	case "map":
		mp := tmap.New(m, cfg.keys(16))
		return runGuardThreads(cfg, func(rec *ThreadRecorder, r *rng.Xoshiro256) {
			h := mp.NewHandle()
			keys := uint64(cfg.keys(16))
			for i := 0; i < cfg.OpsPerThread; i++ {
				key := r.Uint64n(keys)
				switch p := r.Intn(100); {
				case p < 30:
					rec.Invoke(OpGet, key, 0, 0)
					var v uint64
					var ok bool
					g.read(i, func(c core.Context) { v, ok = h.GetCS(c, key) })
					rec.Return(v, ok)
				case p < 55:
					val := r.Uint64n(1 << 20)
					rec.Invoke(OpPut, key, val, 0)
					var inserted bool
					g.write(i, func(c core.Context) { inserted = h.PutCS(c, key, val) })
					if inserted && h.UsedSpare() {
						h.ConsumeSpare()
					}
					rec.Return(0, inserted)
				case p < 80:
					delta := 1 + r.Uint64n(9)
					rec.Invoke(OpAdd, key, delta, 0)
					var nv uint64
					g.write(i, func(c core.Context) { nv = h.AddCS(c, key, delta) })
					if h.UsedSpare() {
						h.ConsumeSpare()
					}
					rec.Return(nv, true)
				default:
					rec.Invoke(OpDelete, key, 0, 0)
					var ok bool
					g.write(i, func(c core.Context) { ok = h.DeleteCS(c, key) })
					if ok {
						h.RecycleRemoved()
					}
					rec.Return(0, ok)
				}
			}
		}), MapModel(), nil
	case "bank":
		accounts := cfg.keys(8)
		b := bank.New(m, accounts, BankInitial)
		return runGuardThreads(cfg, func(rec *ThreadRecorder, r *rng.Xoshiro256) {
			for i := 0; i < cfg.OpsPerThread; i++ {
				if r.Intn(100) < 70 {
					from := r.Intn(accounts)
					to := (from + 1 + r.Intn(accounts-1)) % accounts
					amount := 1 + r.Uint64n(100)
					rec.Invoke(OpTransfer, uint64(from), uint64(to), amount)
					var moved uint64
					g.write(i, func(c core.Context) { moved = b.TransferCS(c, from, to, amount) })
					rec.Return(moved, true)
				} else {
					acct := r.Intn(accounts)
					rec.Invoke(OpBalance, uint64(acct), 0, 0)
					var v uint64
					g.read(i, func(c core.Context) { v = b.BalanceCS(c, acct) })
					rec.Return(v, true)
				}
			}
		}), BankModel(accounts, BankInitial), nil
	}
	return nil, Model{}, fmt.Errorf("check: unknown workload %q", kind)
}

// runGuardThreads is runThreads without the per-thread method identity:
// guards are callable from any goroutine, so each worker gets only a
// recorder and a PRNG stream.
func runGuardThreads(cfg RunConfig, worker func(*ThreadRecorder, *rng.Xoshiro256)) *History {
	n := cfg.Threads
	if n <= 0 {
		n = 1
	}
	h := NewHistory(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			worker(h.Recorder(i),
				rng.NewXoshiro256(cfg.Seed+uint64(i)*0x9e3779b97f4a7c15+1))
		}(i)
	}
	wg.Wait()
	return h
}
