package check

import (
	"strings"
	"testing"

	"rtle/internal/htm"
	"rtle/internal/mem"
)

// Synthetic opacity fixtures over two addresses (word 0 of lines 1 and 2).
const (
	addrA = mem.Addr(1 * mem.WordsPerLine)
	addrB = mem.Addr(2 * mem.WordsPerLine)
)

func baseState() (uint64, map[mem.Addr]uint64) {
	return 10, map[mem.Addr]uint64{addrA: 1, addrB: 2}
}

func TestOpacitySerialHistoryPasses(t *testing.T) {
	base, init := baseState()
	recs := []TxRecord{
		// Writer at v=11: reads the initial state, writes A=100.
		{Thread: 0, Committed: true, CommitVersion: 11,
			Reads:  []ReadObs{{addrA, 1}, {addrB, 2}},
			Writes: []WriteObs{{addrA, 100}}},
		// Read-only at snapshot 11: must see A=100.
		{Thread: 1, Committed: true, CommitVersion: 11,
			Reads: []ReadObs{{addrA, 100}, {addrB, 2}}},
		// Read-only at snapshot 10: still sees the initial A.
		{Thread: 1, Committed: true, CommitVersion: 10,
			Reads: []ReadObs{{addrA, 1}}},
		// Writer at v=13 saw the first writer's A.
		{Thread: 2, Committed: true, CommitVersion: 13,
			Reads:  []ReadObs{{addrA, 100}},
			Writes: []WriteObs{{addrB, 200}}},
		// Aborted attempt that read a consistent prefix (state at v=11).
		{Thread: 3, Reads: []ReadObs{{addrA, 100}, {addrB, 2}}},
	}
	if err := CheckOpacity(base, init, recs); err != nil {
		t.Fatalf("consistent history rejected: %v", err)
	}
}

func TestOpacityCommittedWriterStaleRead(t *testing.T) {
	base, init := baseState()
	recs := []TxRecord{
		{Thread: 0, Committed: true, CommitVersion: 11,
			Writes: []WriteObs{{addrA, 100}}},
		// This writer serializes after the first but read the old A.
		{Thread: 1, Committed: true, CommitVersion: 12,
			Reads:  []ReadObs{{addrA, 1}},
			Writes: []WriteObs{{addrB, 5}}},
	}
	err := CheckOpacity(base, init, recs)
	if err == nil || !strings.Contains(err.Error(), "committed writer") {
		t.Fatalf("stale committed read not caught: %v", err)
	}
}

func TestOpacityAbortedTornRead(t *testing.T) {
	base, init := baseState()
	recs := []TxRecord{
		// One committed writer updates both addresses atomically.
		{Thread: 0, Committed: true, CommitVersion: 11,
			Writes: []WriteObs{{addrA, 100}, {addrB, 200}}},
		// The aborted attempt saw new A but old B: no single version
		// has that combination.
		{Thread: 1, Reads: []ReadObs{{addrA, 100}, {addrB, 2}}},
	}
	err := CheckOpacity(base, init, recs)
	if err == nil || !strings.Contains(err.Error(), "torn state") {
		t.Fatalf("torn aborted read not caught: %v", err)
	}
}

func TestOpacityReadOnlySnapshotMismatch(t *testing.T) {
	base, init := baseState()
	recs := []TxRecord{
		{Thread: 0, Committed: true, CommitVersion: 11,
			Writes: []WriteObs{{addrA, 100}}},
		// Snapshot 11 must already include the write.
		{Thread: 1, Committed: true, CommitVersion: 11,
			Reads: []ReadObs{{addrA, 1}}},
	}
	err := CheckOpacity(base, init, recs)
	if err == nil || !strings.Contains(err.Error(), "read-only") {
		t.Fatalf("read-only snapshot mismatch not caught: %v", err)
	}
}

func TestOpacityDuplicateCommitVersions(t *testing.T) {
	base, init := baseState()
	recs := []TxRecord{
		{Committed: true, CommitVersion: 11, Writes: []WriteObs{{addrA, 3}}},
		{Committed: true, CommitVersion: 11, Writes: []WriteObs{{addrB, 4}}},
	}
	if err := CheckOpacity(base, init, recs); err == nil {
		t.Fatal("duplicate commit versions not caught")
	}
}

// TestRawHTMOpacityCleanRun validates the harness itself: without fault
// injection, a concurrent raw-HTM run must produce an opaque history with
// some commits and (under contention) some aborts.
func TestRawHTMOpacityCleanRun(t *testing.T) {
	base, initial, recs := RunRawHTM(RawConfig{
		Threads: 4, Attempts: 200, Lines: 4, AccessesPerAttempt: 5, Seed: 7,
	}, htm.Config{})
	if err := CheckOpacity(base, initial, recs); err != nil {
		t.Fatalf("clean raw-HTM run not opaque: %v", err)
	}
	var committed int
	for _, r := range recs {
		if r.Committed {
			committed++
		}
	}
	if committed == 0 {
		t.Fatal("no attempt committed")
	}
}
