package check

import (
	"sync"
	"testing"

	"rtle/internal/bank"
	"rtle/internal/core"
	"rtle/internal/fault"
	"rtle/internal/guard"
	"rtle/internal/htm"
	"rtle/internal/mem"
	"rtle/internal/rng"
)

// TestGuardWorkloadsLinearizable runs every ADT workload over both guard
// variants — closure and bracket forms mixed — and checks each recorded
// history for linearizability. This is the guard analogue of the method
// sweep: sync-shaped elision must be indistinguishable from a real lock.
func TestGuardWorkloadsLinearizable(t *testing.T) {
	for _, variant := range GuardVariants {
		for _, kind := range Workloads {
			t.Run(variant+"/"+kind, func(t *testing.T) {
				m := mem.New(1 << 18)
				gcfg := guard.Config{Policy: core.Policy{
					Attempts: 5,
					HTM:      htm.Config{InterleaveEvery: 4},
				}}
				h, model, err := RunGuardWorkload(kind, variant, m, gcfg, RunConfig{
					Threads: 4, OpsPerThread: 150, Seed: 0xD1CE,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !CheckLinearizable(model, h.Events()) {
					t.Errorf("%s over %s: history NOT linearizable", variant, kind)
				}
			})
		}
	}
}

// TestGuardLinearizableUnderFaults repeats the sweep under seeded fault
// plans: spurious aborts, capacity squeezes, and lock-acquisition spikes
// must never let a guarded section observe or publish a torn state.
func TestGuardLinearizableUnderFaults(t *testing.T) {
	seeds := chaosSeeds(t)
	var injectedTotal uint64
	for _, variant := range GuardVariants {
		for _, kind := range Workloads {
			for _, seed := range seeds {
				plan := chaosPlan(seed)
				d := fault.NewDirector(plan)
				policy := core.Policy{
					Attempts: 5,
					HTM:      htm.Config{InterleaveEvery: 8},
				}
				d.Configure(&policy)
				m := mem.New(1 << 18)
				h, model, err := RunGuardWorkload(kind, variant, m,
					guard.Config{Policy: policy}, RunConfig{
						Threads: 4, OpsPerThread: 120, Seed: seed,
					})
				if err != nil {
					t.Fatal(err)
				}
				if !CheckLinearizable(model, h.Events()) {
					t.Errorf("%s over %s with plan %s: history NOT linearizable",
						variant, kind, plan)
				}
				injectedTotal += d.TotalInjected()
			}
		}
	}
	if injectedTotal == 0 {
		t.Fatal("guard chaos sweep injected no faults at all")
	}
	t.Logf("guard chaos sweep injected %d faults across %d runs",
		injectedTotal, len(GuardVariants)*len(Workloads)*len(seeds))
}

// TestGuardStressBankConservation is the -race stress: many goroutines
// hammer one bank through an RWMutex guard using all four forms at once,
// and the total balance must be conserved exactly. Unlike the workload
// sweep this drives the guard object directly, so it also covers the
// probe methods a recorded history cannot.
func TestGuardStressBankConservation(t *testing.T) {
	const (
		goroutines = 8
		opsEach    = 400
		accounts   = 8
	)
	m := mem.New(1 << 16)
	g := guard.NewRWMutex(m, guard.Config{Policy: core.Policy{
		Attempts: 4,
		HTM:      htm.Config{InterleaveEvery: 4},
	}})
	b := bank.New(m, accounts, BankInitial)

	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			r := rng.NewXoshiro256(0xBEEF + uint64(id))
			for j := 0; j < opsEach; j++ {
				from := r.Intn(accounts)
				to := (from + 1 + r.Intn(accounts-1)) % accounts
				amount := 1 + r.Uint64n(50)
				switch j % 4 {
				case 0:
					g.Do(func(c core.Context) { b.TransferCS(c, from, to, amount) })
				case 1:
					g.Lock()
					b.TransferCS(g.Ctx(), from, to, amount)
					g.Unlock()
				case 2:
					g.RDo(func(c core.Context) { _ = b.BalanceCS(c, from) })
				default:
					g.RLock()
					_ = b.BalanceCS(g.RCtx(), from)
					g.RUnlock()
				}
			}
		}(i)
	}
	wg.Wait()

	g.RLock()
	err := b.CheckConservation(g.RCtx(), accounts*BankInitial)
	g.RUnlock()
	if err != nil {
		t.Fatal(err)
	}
	// All four forms count as guard ops, plus the conservation check.
	if got := g.Stats().Ops; got != goroutines*opsEach+1 {
		t.Fatalf("Stats.Ops = %d, want %d", got, goroutines*opsEach+1)
	}
}
