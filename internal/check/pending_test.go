package check

import "testing"

// cev builds a completed event.
func cev(thread int, op Op, a1, a2, a3, ret uint64, ok bool, inv, ret2 int64) Event {
	return Event{Thread: thread, Op: op, Arg1: a1, Arg2: a2, Arg3: a3,
		Ret: ret, Ok: ok, Invoke: inv, Return: ret2}
}

// pend builds a pending (cut) event: invoked, response lost.
func pend(thread int, op Op, a1, a2, a3 uint64, inv int64) Event {
	return Event{Thread: thread, Op: op, Arg1: a1, Arg2: a2, Arg3: a3,
		Pending: true, Invoke: inv}
}

// TestPendingEitherWay checks a cut write is accepted whether a later read
// observes it or not: the crash left both completions possible.
func TestPendingEitherWay(t *testing.T) {
	// t0 cuts put(k=1, v=5); t1 then reads k=1.
	for _, read := range []struct {
		name    string
		ret     uint64
		ok      bool
		applied bool
	}{
		{"write-applied", 5, true, true},
		{"write-lost", 0, false, false},
	} {
		events := []Event{
			pend(0, OpPut, 1, 5, 0, 1),
			cev(1, OpGet, 1, 0, 0, read.ret, read.ok, 2, 3),
		}
		if !CheckLinearizable(MapModel(), events) {
			t.Errorf("%s: history rejected; a pending write must admit both completions", read.name)
		}
	}
}

// TestPendingOnly checks a history whose every event is pending passes
// trivially: nothing observed a response, so nothing constrains the state.
func TestPendingOnly(t *testing.T) {
	events := []Event{
		pend(0, OpPut, 1, 5, 0, 1),
		pend(1, OpDelete, 1, 0, 0, 2),
	}
	if !CheckLinearizable(MapModel(), events) {
		t.Fatal("all-pending history rejected")
	}
}

// TestAcknowledgedWriteRemainsObligatory checks that marking ONE write
// pending does not excuse losing a DIFFERENT, acknowledged write: the
// failover soundness property the wire checker enforces.
func TestAcknowledgedWriteRemainsObligatory(t *testing.T) {
	events := []Event{
		// t0's put(k=1,v=7) was acknowledged (newly inserted) ...
		cev(0, OpPut, 1, 7, 0, 0, true, 1, 2),
		// ... t1's put(k=2,v=9) was in flight at the crash ...
		pend(1, OpPut, 2, 9, 0, 3),
		// ... and after failover t0 reads k=1 as absent: the acknowledged
		// write was lost. No completion choice for the pending op fixes it.
		cev(0, OpGet, 1, 0, 0, 0, false, 4, 5),
	}
	if CheckLinearizable(MapModel(), events) {
		t.Fatal("lost acknowledged write accepted")
	}
}

// TestPendingCannotExplainContradiction checks a pending write linearizes
// at most once: two reads that disagree in a way requiring the write to
// both happen and not happen stay non-linearizable.
func TestPendingCannotExplainContradiction(t *testing.T) {
	events := []Event{
		pend(0, OpPut, 1, 5, 0, 1),
		// Sequential reads on t1: first sees the write, then doesn't.
		// No single placement of the pending put explains both.
		cev(1, OpGet, 1, 0, 0, 5, true, 2, 3),
		cev(1, OpGet, 1, 0, 0, 0, false, 4, 5),
	}
	if CheckLinearizable(MapModel(), events) {
		t.Fatal("contradictory reads around a pending write accepted")
	}
}

// TestPendingBankTransfer checks the bank model's pending semantics: a cut
// transfer may or may not have moved funds, and balance reads consistent
// with either outcome pass.
func TestPendingBankTransfer(t *testing.T) {
	model := BankModel(2, 100)
	for _, c := range []struct {
		name string
		bal0 uint64
	}{
		{"transfer-applied", 70},
		{"transfer-lost", 100},
	} {
		events := []Event{
			pend(0, OpTransfer, 0, 1, 30, 1),
			cev(1, OpBalance, 0, 0, 0, c.bal0, true, 2, 3),
		}
		if !CheckLinearizable(model, events) {
			t.Errorf("%s: rejected", c.name)
		}
	}
	// A balance neither outcome produces stays rejected.
	events := []Event{
		pend(0, OpTransfer, 0, 1, 30, 1),
		cev(1, OpBalance, 0, 0, 0, 55, true, 2, 3),
	}
	if CheckLinearizable(model, events) {
		t.Fatal("impossible balance accepted alongside a pending transfer")
	}
}

// TestCutRecorder checks the ThreadRecorder Cut flow: the event survives
// with Pending set, and the recorder accepts a fresh Invoke afterwards.
func TestCutRecorder(t *testing.T) {
	h := NewHistory(1)
	r := h.Recorder(0)
	r.Invoke(OpPut, 1, 5, 0)
	r.Cut()
	r.Invoke(OpGet, 1, 0, 0)
	r.Return(0, false)
	events := h.Events()
	if len(events) != 2 {
		t.Fatalf("got %d events, want 2", len(events))
	}
	if !events[0].Pending || events[1].Pending {
		t.Fatalf("pending flags: %v, %v", events[0].Pending, events[1].Pending)
	}
	if !CheckLinearizable(MapModel(), events) {
		t.Fatal("cut history rejected")
	}

	defer func() {
		if recover() == nil {
			t.Error("Cut without a pending Invoke did not panic")
		}
	}()
	r.Cut()
}
