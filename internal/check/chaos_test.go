package check

import (
	"os"
	"strconv"
	"testing"

	"rtle/internal/core"
	"rtle/internal/fault"
	"rtle/internal/harness"
	"rtle/internal/htm"
	"rtle/internal/mem"
	"rtle/internal/rng"
)

// chaosSeeds returns the bounded seed list: CHAOS_SEEDS (a count) from the
// environment, else 1 under -short, else 2.
func chaosSeeds(t *testing.T) []uint64 {
	n := 2
	if testing.Short() {
		n = 1
	}
	if s := os.Getenv("CHAOS_SEEDS"); s != "" {
		v, err := strconv.Atoi(s)
		if err != nil || v <= 0 {
			t.Fatalf("bad CHAOS_SEEDS %q", s)
		}
		n = v
	}
	seeds := make([]uint64, n)
	for i := range seeds {
		seeds[i] = 0xC0FFEE + uint64(i)*7919
	}
	return seeds
}

// chaosPlan derives a fault plan exercising every fault type from one seed.
func chaosPlan(seed uint64) fault.Plan {
	sm := rng.NewSplitMix64(seed)
	return fault.Plan{
		Seed:              sm.Next(),
		BeginProb:         0.02 + float64(sm.Next()%4)/100,
		AccessProb:        0.004,
		CommitProb:        0.02,
		Reason:            htm.Spurious,
		NthAccess:         int(3 + sm.Next()%8),
		NthEvery:          int(5 + sm.Next()%5),
		SqueezeEvery:      40,
		SqueezeLen:        4,
		SqueezeReadLines:  3,
		SqueezeWriteLines: 2,
		StormEvery:        int(30 + sm.Next()%30),
		StormLen:          3,
		LockSpikeEvery:    8,
		LockSpikeSpins:    200,
	}
}

// TestChaosLinearizableUnderFaults runs every method over every ADT
// workload under seeded fault plans and checks each recorded history for
// linearizability. This is the end-to-end claim of the paper's algorithms:
// the critical sections stay atomic no matter how the hardware misbehaves.
func TestChaosLinearizableUnderFaults(t *testing.T) {
	seeds := chaosSeeds(t)
	var injectedTotal uint64
	for _, methodName := range ChaosMethods {
		for _, kind := range Workloads {
			for _, seed := range seeds {
				plan := chaosPlan(seed)
				d := fault.NewDirector(plan)
				policy := core.Policy{
					Attempts: 5,
					HTM:      htm.Config{InterleaveEvery: 8},
				}
				d.Configure(&policy)
				m := mem.New(1 << 18)
				method, err := harness.BuildMethod(methodName, m, policy)
				if err != nil {
					t.Fatalf("%s: %v", methodName, err)
				}
				h, model, err := RunWorkload(kind, method, m, RunConfig{
					Threads: 4, OpsPerThread: 120, Seed: seed,
				})
				if err != nil {
					t.Fatal(err)
				}
				if !CheckLinearizable(model, h.Events()) {
					t.Errorf("%s over %s with plan %s: history NOT linearizable",
						methodName, kind, plan)
				}
				injectedTotal += d.TotalInjected()
			}
		}
	}
	if injectedTotal == 0 {
		t.Fatal("chaos sweep injected no faults at all")
	}
	t.Logf("chaos sweep injected %d faults across %d runs",
		injectedTotal, len(ChaosMethods)*len(Workloads)*len(seeds))
}

// TestChaosOpacityUnderFaults validates the raw HTM engine itself: under
// seeded fault plans, committed and aborted attempts alike must observe
// consistent states.
func TestChaosOpacityUnderFaults(t *testing.T) {
	for _, seed := range chaosSeeds(t) {
		plan := chaosPlan(seed)
		d := fault.NewDirector(plan)
		base, initial, recs := RunRawHTM(RawConfig{
			Threads: 4, Attempts: 400, Lines: 4, AccessesPerAttempt: 5, Seed: seed,
		}, htm.Config{NewInjector: d.NewInjector})
		if err := CheckOpacity(base, initial, recs); err != nil {
			t.Errorf("seed %d plan %s: opacity violated: %v", seed, plan, err)
		}
		if d.TotalInjected() == 0 {
			t.Errorf("seed %d: plan injected nothing over 1600 attempts", seed)
		}
	}
}

// --- Mutant detection -------------------------------------------------------

// lossyMethod is an intentionally broken test-only method: every Nth atomic
// block silently discards its writes. It exists to prove the checker has
// teeth — a recorder plus checker that cannot catch a method that lies
// about its commits would be worthless.
type lossyMethod struct {
	inner core.Method
	every int
}

func (m *lossyMethod) Name() string { return "Lossy(" + m.inner.Name() + ")" }
func (m *lossyMethod) NewThread() core.Thread {
	return &lossyThread{inner: m.inner.NewThread(), every: m.every}
}

type lossyThread struct {
	inner core.Thread
	every int
	n     int
}

func (t *lossyThread) Stats() *core.Stats { return t.inner.Stats() }

func (t *lossyThread) Atomic(body func(core.Context)) {
	t.n++
	if t.n%t.every != 0 {
		t.inner.Atomic(body)
		return
	}
	t.inner.Atomic(func(c core.Context) { body(dropWrites{c}) })
}

// dropWrites forwards reads and swallows writes.
type dropWrites struct{ core.Context }

func (d dropWrites) Write(mem.Addr, uint64) {}

// TestMutantLossyMethodCaught runs the bank workload single-threaded over
// the lossy mutant — fully deterministic — and requires the checker to
// reject the history, while the unbroken method over the identical workload
// passes.
func TestMutantLossyMethodCaught(t *testing.T) {
	run := func(mutate bool) bool {
		m := mem.New(1 << 16)
		var method core.Method = core.NewTLE(m, core.Policy{Attempts: 5})
		if mutate {
			method = &lossyMethod{inner: method, every: 3}
		}
		h, model, err := RunWorkload("bank", method, m, RunConfig{
			Threads: 1, OpsPerThread: 60, Seed: 42,
		})
		if err != nil {
			t.Fatal(err)
		}
		return CheckLinearizable(model, h.Events())
	}
	if !run(false) {
		t.Fatal("unbroken method's history rejected")
	}
	if run(true) {
		t.Fatal("lossy mutant's history accepted: the checker has no teeth")
	}
}
