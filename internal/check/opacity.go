package check

import (
	"fmt"
	"math"
	"sort"

	"rtle/internal/mem"
)

// ReadObs is one transactional read observed from memory (reads satisfied
// from the transaction's own write buffer are excluded — they say nothing
// about the shared state).
type ReadObs struct {
	Addr mem.Addr
	Val  uint64
}

// WriteObs is one address's final buffered value at the end of an attempt.
type WriteObs struct {
	Addr mem.Addr
	Val  uint64
}

// TxRecord is the observable footprint of one hardware-transaction attempt,
// committed or aborted.
type TxRecord struct {
	Thread  int
	Attempt int
	// Reads are the memory reads in order, excluding read-your-writes.
	// For aborted attempts they cover the prefix executed before the
	// abort.
	Reads []ReadObs
	// Writes hold each written address's final value (committed attempts
	// only; aborted writes never become visible and are not checked).
	Writes    []WriteObs
	Committed bool
	// CommitVersion is htm.Tx.CommitVersion() of a committed attempt:
	// the global-clock value at which its writes were published, or the
	// snapshot for a read-only attempt.
	CommitVersion uint64
}

// CheckOpacity validates a set of attempt records against TL2-style
// versioned semantics:
//
//   - Committed writers, ordered by CommitVersion, form the serial history;
//     each one's reads must match the state immediately before its own
//     writes are applied at its serial position.
//   - A committed read-only attempt serializes at its snapshot: its reads
//     must match the state at version CommitVersion.
//   - An aborted attempt must still have observed a consistent prefix
//     (opacity's whole point: even doomed transactions never see torn
//     state): there must exist a single version at which every one of its
//     reads is simultaneously correct.
//
// baseVersion is the global clock value after initialization; initial maps
// every address the attempts may touch to its value at baseVersion.
func CheckOpacity(baseVersion uint64, initial map[mem.Addr]uint64, recs []TxRecord) error {
	// The committed writers in serial (publication) order.
	var writers []*TxRecord
	for i := range recs {
		r := &recs[i]
		if r.Committed && len(r.Writes) > 0 {
			writers = append(writers, r)
		}
	}
	sort.Slice(writers, func(i, j int) bool {
		return writers[i].CommitVersion < writers[j].CommitVersion
	})

	// Replay the serial history, validating each writer's reads against
	// the state at its own serial position and building per-address value
	// timelines for the interval checks below.
	state := make(map[mem.Addr]uint64, len(initial))
	timeline := make(map[mem.Addr][]verVal, len(initial))
	for a, v := range initial {
		state[a] = v
		timeline[a] = []verVal{{baseVersion, v}}
	}
	lookup := func(a mem.Addr) (uint64, error) {
		v, ok := state[a]
		if !ok {
			return 0, fmt.Errorf("read of address %d outside the tracked initial state", a)
		}
		return v, nil
	}
	var prevVer uint64
	for _, w := range writers {
		if w.CommitVersion <= baseVersion {
			return fmt.Errorf("writer (thread %d attempt %d) commit version %d not after base %d",
				w.Thread, w.Attempt, w.CommitVersion, baseVersion)
		}
		if w.CommitVersion == prevVer {
			return fmt.Errorf("two committed writers share commit version %d", w.CommitVersion)
		}
		prevVer = w.CommitVersion
		for _, r := range w.Reads {
			cur, err := lookup(r.Addr)
			if err != nil {
				return err
			}
			if cur != r.Val {
				return fmt.Errorf(
					"committed writer (thread %d attempt %d, version %d) read addr %d = %d, serial state has %d",
					w.Thread, w.Attempt, w.CommitVersion, r.Addr, r.Val, cur)
			}
		}
		for _, wr := range w.Writes {
			if _, err := lookup(wr.Addr); err != nil {
				return err
			}
			state[wr.Addr] = wr.Val
			timeline[wr.Addr] = append(timeline[wr.Addr], verVal{w.CommitVersion, wr.Val})
		}
	}

	// valueAt returns addr's value at version v (the last change <= v).
	valueAt := func(addr mem.Addr, v uint64) (uint64, bool) {
		tl := timeline[addr]
		for i := len(tl) - 1; i >= 0; i-- {
			if tl[i].ver <= v {
				return tl[i].val, true
			}
		}
		return 0, false
	}

	for i := range recs {
		r := &recs[i]
		switch {
		case r.Committed && len(r.Writes) == 0:
			// Read-only committed: exact point check at its snapshot.
			if r.CommitVersion < baseVersion {
				return fmt.Errorf("read-only attempt (thread %d attempt %d) snapshot %d before base %d",
					r.Thread, r.Attempt, r.CommitVersion, baseVersion)
			}
			for _, rd := range r.Reads {
				want, ok := valueAt(rd.Addr, r.CommitVersion)
				if !ok {
					return fmt.Errorf("read of address %d outside the tracked initial state", rd.Addr)
				}
				if want != rd.Val {
					return fmt.Errorf(
						"read-only attempt (thread %d attempt %d, snapshot %d) read addr %d = %d, state at snapshot has %d",
						r.Thread, r.Attempt, r.CommitVersion, rd.Addr, rd.Val, want)
				}
			}
		case !r.Committed:
			// Aborted: some single version must explain every read.
			if err := consistentPrefix(timeline, baseVersion, r); err != nil {
				return err
			}
		}
	}
	return nil
}

// verVal is one entry of an address's value timeline: the address held val
// from version ver until the next entry's version.
type verVal struct {
	ver uint64
	val uint64
}

// consistentPrefix verifies an aborted attempt's reads are simultaneously
// explainable at one version: it intersects, across reads, the version
// intervals during which each address held the observed value.
func consistentPrefix(timeline map[mem.Addr][]verVal, baseVersion uint64, r *TxRecord) error {
	type iv struct{ lo, hi uint64 } // [lo, hi)
	acc := []iv{{baseVersion, math.MaxUint64}}
	for _, rd := range r.Reads {
		tl, ok := timeline[rd.Addr]
		if !ok {
			return fmt.Errorf("read of address %d outside the tracked initial state", rd.Addr)
		}
		var valid []iv
		for i, e := range tl {
			if e.val != rd.Val {
				continue
			}
			hi := uint64(math.MaxUint64)
			if i+1 < len(tl) {
				hi = tl[i+1].ver
			}
			valid = append(valid, iv{e.ver, hi})
		}
		var next []iv
		for _, a := range acc {
			for _, b := range valid {
				lo, hi := max(a.lo, b.lo), min(a.hi, b.hi)
				if lo < hi {
					next = append(next, iv{lo, hi})
				}
			}
		}
		if len(next) == 0 {
			return fmt.Errorf(
				"aborted attempt (thread %d attempt %d) observed torn state: no single version explains its %d reads (first failing read: addr %d = %d)",
				r.Thread, r.Attempt, len(r.Reads), rd.Addr, rd.Val)
		}
		acc = next
	}
	return nil
}
