package wanghash

import (
	"testing"
	"testing/quick"
)

func TestMixDeterministic(t *testing.T) {
	if Mix(12345) != Mix(12345) {
		t.Fatal("Mix is not deterministic")
	}
}

func TestMixSpreadsSequentialInputs(t *testing.T) {
	// Consecutive line-aligned addresses must not collide trivially in a
	// small table — the paper's orec indexing depends on it.
	const buckets = 64
	counts := make([]int, buckets)
	for i := uint64(0); i < 1024; i++ {
		counts[Hash(i*8, buckets)]++
	}
	for b, c := range counts {
		// Perfectly uniform would be 16 per bucket.
		if c == 0 {
			t.Errorf("bucket %d empty for sequential input", b)
		}
		if c > 64 {
			t.Errorf("bucket %d pathologically hot: %d of 1024", b, c)
		}
	}
}

func TestHashInRange(t *testing.T) {
	for _, r := range []uint64{1, 2, 7, 16, 100, 8192} {
		for i := uint64(0); i < 100; i++ {
			if h := Hash(i*0x9e3779b9, r); h >= r {
				t.Fatalf("Hash(%d, %d) = %d out of range", i, r, h)
			}
		}
	}
}

func TestHashRangeOne(t *testing.T) {
	for i := uint64(0); i < 50; i++ {
		if Hash(i, 1) != 0 {
			t.Fatal("Hash with range 1 must always be 0")
		}
	}
}

func TestPowerOfTwoMatchesModulo(t *testing.T) {
	// The mask fast path must agree with the generic reduction.
	for _, r := range []uint64{2, 8, 1024} {
		for i := uint64(0); i < 200; i++ {
			if Hash(i, r) != Mix(i)%r {
				t.Fatalf("mask path diverges from modulo at x=%d r=%d", i, r)
			}
		}
	}
}

func TestQuickHashBounded(t *testing.T) {
	f := func(x uint64, r uint16) bool {
		rr := uint64(r) + 1
		return Hash(x, rr) < rr
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickMixInjectiveOnSample(t *testing.T) {
	// Wang's mix is a bijection on 64 bits; no collisions on any sample.
	seen := map[uint64]uint64{}
	f := func(x uint64) bool {
		h := Mix(x)
		if prev, ok := seen[h]; ok {
			return prev == x
		}
		seen[h] = x
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
