// Package wanghash implements Thomas Wang's 64-bit integer hash function,
// the fast_hash of the paper (reference [25]): a short sequence of bitwise
// operations mapping a 64-bit value — here, a memory address — to an index
// in [0, r). FG-TLE uses it to map addresses to ownership records.
package wanghash

// Mix applies Wang's 64-bit mix to x. The result is well distributed even
// for sequential or line-aligned inputs, which matters because simulated
// heap addresses are allocated sequentially.
func Mix(x uint64) uint64 {
	x = ^x + (x << 21) // x = (x << 21) - x - 1
	x ^= x >> 24
	x = (x + (x << 3)) + (x << 8) // x * 265
	x ^= x >> 14
	x = (x + (x << 2)) + (x << 4) // x * 21
	x ^= x >> 28
	x += x << 31
	return x
}

// Hash maps x to a value in [0, r). r must be > 0. When r is a power of
// two the reduction is a mask; otherwise a modulo is used.
func Hash(x, r uint64) uint64 {
	h := Mix(x)
	if r&(r-1) == 0 {
		return h & (r - 1)
	}
	return h % r
}
