// Package bank implements the read-modify-write corner-case
// micro-benchmark of the paper's §6.3: an array of account balances, each
// padded to its own cache line, with critical sections that transfer a
// random amount between two random accounts. Every critical section
// performs writes, so RW-TLE's read-only slow path never commits and the
// benchmark isolates FG-TLE's fine-grained conflict detection (and the
// NOrec family's writer-commit serialization).
package bank

import (
	"fmt"

	"rtle/internal/core"
	"rtle/internal/mem"
)

// Bank is an array of account balances in simulated memory, one cache line
// per account.
type Bank struct {
	m        *mem.Memory
	base     mem.Addr
	accounts int
}

// New allocates n accounts, each with the given initial balance. The total
// balance n*initial is the conserved invariant tests check.
func New(m *mem.Memory, n int, initial uint64) *Bank {
	b := &Bank{m: m, base: m.AllocLines(n), accounts: n}
	for i := 0; i < n; i++ {
		m.Store(b.addr(i), initial)
	}
	return b
}

// Accounts returns the number of accounts.
func (b *Bank) Accounts() int { return b.accounts }

// Memory returns the heap the bank lives in.
func (b *Bank) Memory() *mem.Memory { return b.m }

func (b *Bank) addr(i int) mem.Addr {
	return b.base + mem.Addr(i*mem.WordsPerLine)
}

// TransferCS moves amount from one account to the other, clamping to the
// source balance (balances never go negative). It returns the amount
// actually moved. It must run inside an atomic block. Note the paper's
// setup: choosing the accounts and the amount happens before the critical
// section; only the transfer itself is inside it.
func (b *Bank) TransferCS(c core.Context, from, to int, amount uint64) uint64 {
	fa, ta := b.addr(from), b.addr(to)
	src := c.Read(fa)
	if amount > src {
		amount = src
	}
	c.Write(fa, src-amount)
	c.Write(ta, c.Read(ta)+amount)
	return amount
}

// Transfer runs TransferCS atomically on t.
func (b *Bank) Transfer(t core.Thread, from, to int, amount uint64) uint64 {
	var moved uint64
	t.Atomic(func(c core.Context) { moved = b.TransferCS(c, from, to, amount) })
	return moved
}

// WithdrawCS removes up to amount from one account, clamping to the
// current balance (balances never go negative), and returns the amount
// actually removed. It must run inside an atomic block. Together with
// DepositCS it splits TransferCS into halves that can run against two
// different Bank instances — the serving layer's cross-shard transfer,
// which is only conservation-safe while both instances are otherwise
// quiescent (the caller holds both shards' drain gates).
func (b *Bank) WithdrawCS(c core.Context, i int, amount uint64) uint64 {
	a := b.addr(i)
	src := c.Read(a)
	if amount > src {
		amount = src
	}
	c.Write(a, src-amount)
	return amount
}

// DepositCS adds amount to one account. It must run inside an atomic
// block. See WithdrawCS for the cross-instance transfer contract.
func (b *Bank) DepositCS(c core.Context, i int, amount uint64) {
	a := b.addr(i)
	c.Write(a, c.Read(a)+amount)
}

// BalanceCS reads one account's balance inside an atomic block.
func (b *Bank) BalanceCS(c core.Context, i int) uint64 {
	return c.Read(b.addr(i))
}

// Total sums all balances via c. It reads every account line, so inside a
// transaction it needs a read capacity of at least Accounts lines; tests
// use it on a quiescent bank to check conservation.
func (b *Bank) Total(c core.Context) uint64 {
	var sum uint64
	for i := 0; i < b.accounts; i++ {
		sum += c.Read(b.addr(i))
	}
	return sum
}

// CheckConservation verifies the total equals want.
func (b *Bank) CheckConservation(c core.Context, want uint64) error {
	if got := b.Total(c); got != want {
		return fmt.Errorf("bank: total balance %d, want %d", got, want)
	}
	return nil
}
