package bank

import (
	"sync"
	"testing"
	"testing/quick"

	"rtle/internal/core"
	"rtle/internal/mem"
	"rtle/internal/rng"
)

func TestInitialBalances(t *testing.T) {
	m := mem.New(1 << 14)
	b := New(m, 8, 100)
	c := core.Direct(m)
	if got := b.Total(c); got != 800 {
		t.Fatalf("total = %d, want 800", got)
	}
	for i := 0; i < 8; i++ {
		if got := b.BalanceCS(c, i); got != 100 {
			t.Fatalf("account %d = %d, want 100", i, got)
		}
	}
}

func TestAccountsPadded(t *testing.T) {
	m := mem.New(1 << 14)
	b := New(m, 4, 1)
	for i := 1; i < 4; i++ {
		if mem.LineOf(b.addr(i)) == mem.LineOf(b.addr(i-1)) {
			t.Fatalf("accounts %d and %d share a cache line", i-1, i)
		}
	}
}

func TestTransferMovesMoney(t *testing.T) {
	m := mem.New(1 << 14)
	b := New(m, 4, 100)
	c := core.Direct(m)
	moved := b.TransferCS(c, 0, 1, 30)
	if moved != 30 {
		t.Fatalf("moved %d, want 30", moved)
	}
	if b.BalanceCS(c, 0) != 70 || b.BalanceCS(c, 1) != 130 {
		t.Fatalf("balances %d/%d, want 70/130", b.BalanceCS(c, 0), b.BalanceCS(c, 1))
	}
}

func TestTransferClampsToBalance(t *testing.T) {
	m := mem.New(1 << 14)
	b := New(m, 2, 50)
	c := core.Direct(m)
	moved := b.TransferCS(c, 0, 1, 500)
	if moved != 50 {
		t.Fatalf("moved %d, want the full 50", moved)
	}
	if b.BalanceCS(c, 0) != 0 {
		t.Fatalf("source balance %d, want 0", b.BalanceCS(c, 0))
	}
	if err := b.CheckConservation(c, 100); err != nil {
		t.Fatal(err)
	}
}

func TestQuickTransferConserves(t *testing.T) {
	m := mem.New(1 << 16)
	b := New(m, 16, 1000)
	c := core.Direct(m)
	f := func(from, to uint8, amount uint16) bool {
		f1 := int(from) % 16
		t1 := int(to) % 16
		if f1 == t1 {
			return true
		}
		b.TransferCS(c, f1, t1, uint64(amount))
		return b.Total(c) == 16*1000
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestConcurrentConservation is the §6.3 workload as a correctness test:
// conservation of the total under every synchronization method, including
// ones that exercise the slow path (HTM-unfriendly transfers force lock
// holders while other transfers speculate).
func TestConcurrentConservation(t *testing.T) {
	builders := []func(m *mem.Memory) core.Method{
		func(m *mem.Memory) core.Method { return core.NewLock(m) },
		func(m *mem.Memory) core.Method { return core.NewTLE(m, core.Policy{}) },
		func(m *mem.Memory) core.Method { return core.NewRWTLE(m, core.Policy{}) },
		func(m *mem.Memory) core.Method { return core.NewFGTLE(m, 256, core.Policy{}) },
		func(m *mem.Memory) core.Method {
			return core.NewAdaptiveFGTLE(m, core.Policy{}, core.AdaptiveConfig{Window: 16, MaxOrecs: 256})
		},
	}
	for _, build := range builders {
		m := mem.New(1 << 18)
		meth := build(m)
		t.Run(meth.Name(), func(t *testing.T) {
			const accounts = 16
			const initial = 1000
			b := New(m, accounts, initial)
			const goroutines = 5
			const perG = 400
			var wg sync.WaitGroup
			wg.Add(goroutines)
			for g := 0; g < goroutines; g++ {
				th := meth.NewThread()
				go func(id int, th core.Thread) {
					defer wg.Done()
					r := rng.NewXoshiro256(uint64(id) + 31)
					for i := 0; i < perG; i++ {
						from := r.Intn(accounts)
						to := r.Intn(accounts - 1)
						if to >= from {
							to++
						}
						amount := r.Uint64n(20) + 1
						unfriendly := r.Intn(10) == 0
						th.Atomic(func(c core.Context) {
							if unfriendly {
								c.Unsupported()
							}
							b.TransferCS(c, from, to, amount)
						})
					}
				}(g, th)
			}
			wg.Wait()
			if err := b.CheckConservation(core.Direct(m), accounts*initial); err != nil {
				t.Fatalf("%s violated conservation: %v", meth.Name(), err)
			}
		})
	}
}
