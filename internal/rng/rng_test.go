package rng

import (
	"testing"
	"testing/quick"
)

func TestSplitMix64Deterministic(t *testing.T) {
	a, b := NewSplitMix64(1), NewSplitMix64(1)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSplitMix64KnownValues(t *testing.T) {
	// Reference values for seed 1234567 from the public-domain
	// implementation.
	s := NewSplitMix64(1234567)
	got := []uint64{s.Next(), s.Next(), s.Next()}
	want := []uint64{6457827717110365317, 3203168211198807973, 9817491932198370423}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("value %d = %d, want %d", i, got[i], want[i])
		}
	}
}

func TestXoshiroDeterministic(t *testing.T) {
	a, b := NewXoshiro256(99), NewXoshiro256(99)
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatal("same seed diverged")
		}
	}
}

func TestXoshiroSeedsDiffer(t *testing.T) {
	a, b := NewXoshiro256(1), NewXoshiro256(2)
	same := 0
	for i := 0; i < 64; i++ {
		if a.Next() == b.Next() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("%d identical outputs from different seeds", same)
	}
}

func TestUint64nBounds(t *testing.T) {
	r := NewXoshiro256(7)
	for _, n := range []uint64{1, 2, 3, 100, 8192} {
		for i := 0; i < 1000; i++ {
			if v := r.Uint64n(n); v >= n {
				t.Fatalf("Uint64n(%d) = %d", n, v)
			}
		}
	}
}

func TestUint64nZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Uint64n(0) did not panic")
		}
	}()
	NewXoshiro256(1).Uint64n(0)
}

func TestUint64nOneIsZero(t *testing.T) {
	r := NewXoshiro256(5)
	for i := 0; i < 100; i++ {
		if r.Uint64n(1) != 0 {
			t.Fatal("Uint64n(1) must be 0")
		}
	}
}

func TestIntnCoversRange(t *testing.T) {
	r := NewXoshiro256(11)
	seen := make([]bool, 10)
	for i := 0; i < 10000; i++ {
		seen[r.Intn(10)] = true
	}
	for v, ok := range seen {
		if !ok {
			t.Fatalf("value %d never drawn in 10000 tries", v)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewXoshiro256(3)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 = %v out of [0,1)", f)
		}
	}
}

func TestUint64nRoughlyUniform(t *testing.T) {
	r := NewXoshiro256(17)
	const buckets = 16
	const draws = 160000
	counts := make([]int, buckets)
	for i := 0; i < draws; i++ {
		counts[r.Uint64n(buckets)]++
	}
	want := draws / buckets
	for b, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Fatalf("bucket %d count %d deviates more than 10%% from %d", b, c, want)
		}
	}
}

func TestQuickUint64nBounded(t *testing.T) {
	r := NewXoshiro256(23)
	f := func(n uint32) bool {
		nn := uint64(n) + 1
		return r.Uint64n(nn) < nn
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
