package rng

import "testing"

// TestZipfBoundsAndDeterminism checks every sample lands in [0, n) and
// that the same seed reproduces the same stream.
func TestZipfBoundsAndDeterminism(t *testing.T) {
	const n = 64
	z := NewZipf(n, 1.1)
	a, b := NewXoshiro256(7), NewXoshiro256(7)
	for i := 0; i < 10_000; i++ {
		ka, kb := z.Sample(a), z.Sample(b)
		if ka != kb {
			t.Fatalf("sample %d diverged under the same seed: %d vs %d", i, ka, kb)
		}
		if ka >= n {
			t.Fatalf("sample %d out of range: %d", i, ka)
		}
	}
}

// TestZipfSkew checks the popularity ordering (key 0 hottest) and that a
// larger exponent concentrates more mass on the head.
func TestZipfSkew(t *testing.T) {
	const n, draws = 32, 200_000
	head := func(s float64) (k0, k1 int) {
		z := NewZipf(n, s)
		x := NewXoshiro256(42)
		for i := 0; i < draws; i++ {
			switch z.Sample(x) {
			case 0:
				k0++
			case 1:
				k1++
			}
		}
		return k0, k1
	}
	k0, k1 := head(1.1)
	if k0 <= k1 {
		t.Fatalf("key 0 (%d draws) not hotter than key 1 (%d draws)", k0, k1)
	}
	if frac := float64(k0) / draws; frac < 0.2 {
		t.Fatalf("key 0 drew only %.1f%% of samples at s=1.1", 100*frac)
	}
	h0, _ := head(2.0)
	if h0 <= k0 {
		t.Fatalf("s=2.0 head mass (%d) not above s=1.1 head mass (%d)", h0, k0)
	}
}
