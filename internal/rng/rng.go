// Package rng provides small, fast, seedable pseudo-random number
// generators for workload generation.
//
// The benchmark harness needs per-thread generators that are cheap (no
// locking, no allocation per draw) and deterministic under a seed so that
// experiments and tests are reproducible. The implementations here are the
// public-domain SplitMix64 and xoshiro256** generators.
package rng

import "math/bits"

// SplitMix64 is the 64-bit SplitMix generator. It is primarily used to seed
// other generators and to derive independent per-thread streams from a
// single experiment seed.
type SplitMix64 struct {
	state uint64
}

// NewSplitMix64 returns a SplitMix64 seeded with seed.
func NewSplitMix64(seed uint64) *SplitMix64 {
	return &SplitMix64{state: seed}
}

// Next returns the next value in the stream.
func (s *SplitMix64) Next() uint64 {
	s.state += 0x9e3779b97f4a7c15
	z := s.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Xoshiro256 is the xoshiro256** generator: fast, 256 bits of state, and
// good statistical quality for simulation workloads.
type Xoshiro256 struct {
	s [4]uint64
}

// NewXoshiro256 returns a generator whose state is derived from seed via
// SplitMix64, as recommended by the xoshiro authors.
func NewXoshiro256(seed uint64) *Xoshiro256 {
	sm := NewSplitMix64(seed)
	var x Xoshiro256
	for i := range x.s {
		x.s[i] = sm.Next()
	}
	// All-zero state is invalid; SplitMix64 cannot produce four zero
	// outputs in a row from any seed, but keep the guard for clarity.
	if x.s[0]|x.s[1]|x.s[2]|x.s[3] == 0 {
		x.s[0] = 0x9e3779b97f4a7c15
	}
	return &x
}

func rotl(x uint64, k uint) uint64 { return (x << k) | (x >> (64 - k)) }

// Next returns the next value in the stream.
func (x *Xoshiro256) Next() uint64 {
	result := rotl(x.s[1]*5, 7) * 9
	t := x.s[1] << 17
	x.s[2] ^= x.s[0]
	x.s[3] ^= x.s[1]
	x.s[1] ^= x.s[2]
	x.s[0] ^= x.s[3]
	x.s[2] ^= t
	x.s[3] = rotl(x.s[3], 45)
	return result
}

// Uint64n returns a uniform value in [0, n). n must be > 0.
func (x *Xoshiro256) Uint64n(n uint64) uint64 {
	if n == 0 {
		panic("rng: Uint64n with n == 0")
	}
	// Lemire's multiply-shift rejection method.
	v := x.Next()
	hi, lo := bits.Mul64(v, n)
	if lo < n {
		threshold := (-n) % n
		for lo < threshold {
			v = x.Next()
			hi, lo = bits.Mul64(v, n)
		}
	}
	return hi
}

// Intn returns a uniform value in [0, n). n must be > 0.
func (x *Xoshiro256) Intn(n int) int {
	return int(x.Uint64n(uint64(n)))
}

// Float64 returns a uniform value in [0, 1).
func (x *Xoshiro256) Float64() float64 {
	return float64(x.Next()>>11) / (1 << 53)
}
