package rng

import (
	"math"
	"sort"
)

// Zipf samples keys in [0, n) with probability P(k) proportional to
// 1/(k+1)^s — the standard skewed key-popularity model, with key 0 the
// hottest. It is implemented as a precomputed CDF table plus binary
// search: construction is O(n), each sample O(log n) with no allocation,
// and sampling is deterministic under the caller's generator — exactly
// the contract the load generator's seeded runs need. (math/rand's Zipf
// exists but draws from its own source type; this one composes with
// Xoshiro256.)
type Zipf struct {
	cum []float64 // cum[k] = P(key <= k), cum[n-1] == 1
}

// NewZipf builds the table for n keys with exponent s > 0. Larger s is
// more skewed; s near 0 degenerates toward uniform.
func NewZipf(n int, s float64) *Zipf {
	if n <= 0 {
		panic("rng: NewZipf with n <= 0")
	}
	if s <= 0 || math.IsNaN(s) {
		panic("rng: NewZipf with s <= 0")
	}
	cum := make([]float64, n)
	var total float64
	for k := 0; k < n; k++ {
		total += math.Pow(float64(k+1), -s)
		cum[k] = total
	}
	for k := range cum {
		cum[k] /= total
	}
	return &Zipf{cum: cum}
}

// Sample draws one key from x.
func (z *Zipf) Sample(x *Xoshiro256) uint64 {
	r := x.Float64()
	return uint64(sort.SearchFloat64s(z.cum, r))
}
