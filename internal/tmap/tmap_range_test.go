package tmap

import (
	"testing"

	"rtle/internal/mem"
)

func TestForEachBucketRangeDisjointCover(t *testing.T) {
	mp, h, c := newMap(16)
	for k := uint64(0); k < 200; k++ {
		h.PutDirect(c, k, k)
	}
	// Four disjoint chunks must partition the key space exactly.
	seen := map[uint64]int{}
	nb := mp.Buckets()
	for chunk := 0; chunk < 4; chunk++ {
		lo, hi := chunk*nb/4, (chunk+1)*nb/4
		mp.ForEachBucketRange(c, lo, hi, func(k, v uint64) {
			seen[k]++
		})
	}
	if len(seen) != 200 {
		t.Fatalf("chunked iteration saw %d keys, want 200", len(seen))
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("key %d visited %d times", k, n)
		}
	}
}

func TestForEachBucketRangeClamps(t *testing.T) {
	mp, h, c := newMap(8)
	h.PutDirect(c, 1, 1)
	n := 0
	mp.ForEachBucketRange(c, -5, 1000, func(uint64, uint64) { n++ })
	if n != 1 {
		t.Fatalf("clamped range visited %d entries, want 1", n)
	}
	mp.ForEachBucketRange(c, 5, 3, func(uint64, uint64) {
		t.Fatal("empty range visited an entry")
	})
}

func TestDirectWrappersBookkeeping(t *testing.T) {
	mp, h, c := newMap(8)
	// AddDirect consumes spares so churn cannot corrupt chains.
	for i := 0; i < 20; i++ {
		h.AddDirect(c, uint64(i), 1)
	}
	if mp.Len(c) != 20 {
		t.Fatalf("Len = %d, want 20", mp.Len(c))
	}
	// DeleteDirect recycles; PutDirect reuses the recycled node.
	before := mp.m.Allocated()
	for i := 0; i < 30; i++ {
		if !h.DeleteDirect(c, 5) {
			t.Fatal("delete failed")
		}
		if !h.PutDirect(c, 5, 1) {
			t.Fatal("re-insert failed")
		}
	}
	if grown := mp.m.Allocated() - before; grown > 2*mem.WordsPerLine {
		t.Fatalf("heap grew %d words during churn", grown)
	}
	if mp.Len(c) != 20 {
		t.Fatalf("Len after churn = %d, want 20", mp.Len(c))
	}
}

func TestHandleSpareAccessors(t *testing.T) {
	_, h, c := newMap(8)
	h.PutCS(c, 1, 1)
	if !h.UsedSpare() {
		t.Fatal("UsedSpare false after inserting PutCS")
	}
	h.ConsumeSpare()
	h.PutCS(c, 1, 2) // update: no spare involved
	if h.UsedSpare() {
		t.Fatal("UsedSpare true after update-only PutCS")
	}
	if !h.DeleteCS(c, 1) {
		t.Fatal("delete failed")
	}
	h.RecycleRemoved()
	h.RecycleRemoved() // idempotent
}
