package tmap

import (
	"sync"
	"testing"
	"testing/quick"

	"rtle/internal/core"
	"rtle/internal/mem"
	"rtle/internal/rng"
)

func newMap(buckets int) (*Map, *Handle, core.Context) {
	m := mem.New(1 << 20)
	mp := New(m, buckets)
	return mp, mp.NewHandle(), core.Direct(m)
}

func TestBucketsRoundedToPowerOfTwo(t *testing.T) {
	mp, _, _ := newMap(100)
	if mp.Buckets() != 128 {
		t.Fatalf("Buckets = %d, want 128", mp.Buckets())
	}
}

func TestGetMissing(t *testing.T) {
	_, h, c := newMap(16)
	if _, ok := h.GetCS(c, 5); ok {
		t.Fatal("empty map returned a value")
	}
}

func TestAddInsertsAndIncrements(t *testing.T) {
	_, h, c := newMap(16)
	if got := h.AddDirect(c, 7, 1); got != 1 {
		t.Fatalf("first Add = %d, want 1", got)
	}
	if got := h.AddDirect(c, 7, 2); got != 3 {
		t.Fatalf("second Add = %d, want 3", got)
	}
	if v, ok := h.GetCS(c, 7); !ok || v != 3 {
		t.Fatalf("Get = %d,%v, want 3,true", v, ok)
	}
}

func TestPut(t *testing.T) {
	_, h, c := newMap(16)
	if !h.PutDirect(c, 1, 10) {
		t.Fatal("Put of a new key did not report insertion")
	}
	if h.PutDirect(c, 1, 20) {
		t.Fatal("Put of an existing key reported insertion")
	}
	if v, _ := h.GetCS(c, 1); v != 20 {
		t.Fatalf("value = %d, want 20", v)
	}
}

func TestDelete(t *testing.T) {
	mp, h, c := newMap(16)
	h.PutDirect(c, 1, 10)
	h.PutDirect(c, 2, 20)
	if !h.DeleteDirect(c, 1) {
		t.Fatal("Delete of present key failed")
	}
	if h.DeleteDirect(c, 1) {
		t.Fatal("Delete of absent key succeeded")
	}
	if _, ok := h.GetCS(c, 1); ok {
		t.Fatal("deleted key still present")
	}
	if v, _ := h.GetCS(c, 2); v != 20 {
		t.Fatal("unrelated key damaged by delete")
	}
	if mp.Len(c) != 1 {
		t.Fatalf("Len = %d, want 1", mp.Len(c))
	}
}

func TestDeleteMiddleOfChain(t *testing.T) {
	// With a single bucket every key chains; delete each position.
	mp, h, c := newMap(1)
	for _, k := range []uint64{1, 2, 3} {
		h.PutDirect(c, k, k*10)
	}
	if !h.DeleteDirect(c, 2) {
		t.Fatal("delete of middle chain entry failed")
	}
	for _, k := range []uint64{1, 3} {
		if v, ok := h.GetCS(c, k); !ok || v != k*10 {
			t.Fatalf("chain broken: key %d -> %d,%v", k, v, ok)
		}
	}
	if mp.Len(c) != 2 {
		t.Fatalf("Len = %d, want 2", mp.Len(c))
	}
}

func TestCollidingKeysCoexist(t *testing.T) {
	_, h, c := newMap(1) // everything collides
	for k := uint64(0); k < 50; k++ {
		h.AddDirect(c, k, k+1)
	}
	for k := uint64(0); k < 50; k++ {
		if v, ok := h.GetCS(c, k); !ok || v != k+1 {
			t.Fatalf("key %d -> %d,%v, want %d", k, v, ok, k+1)
		}
	}
}

func TestForEachVisitsAll(t *testing.T) {
	mp, h, c := newMap(8)
	want := map[uint64]uint64{}
	for k := uint64(0); k < 30; k++ {
		h.PutDirect(c, k, k*k)
		want[k] = k * k
	}
	got := map[uint64]uint64{}
	mp.ForEach(c, func(k, v uint64) bool { got[k] = v; return true })
	if len(got) != len(want) {
		t.Fatalf("visited %d entries, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("key %d -> %d, want %d", k, got[k], v)
		}
	}
}

func TestForEachEarlyStop(t *testing.T) {
	mp, h, c := newMap(8)
	for k := uint64(0); k < 30; k++ {
		h.PutDirect(c, k, 1)
	}
	n := 0
	mp.ForEach(c, func(uint64, uint64) bool { n++; return n < 5 })
	if n != 5 {
		t.Fatalf("ForEach visited %d after early stop, want 5", n)
	}
}

func TestNodeRecyclingAfterDelete(t *testing.T) {
	mp, h, c := newMap(4)
	h.PutDirect(c, 1, 1)
	if h.usedSpare {
		h.spare = mem.Nil
	}
	before := mp.m.Allocated()
	for i := 0; i < 40; i++ {
		if !h.DeleteDirect(c, 1) {
			t.Fatal("delete failed")
		}
		if h.removed != mem.Nil {
			h.freeList = append(h.freeList, h.removed)
			h.removed = mem.Nil
		}
		h.PutDirect(c, 1, 1)
		if h.usedSpare {
			h.spare = mem.Nil
		}
	}
	if grown := mp.m.Allocated() - before; grown > 2*mem.WordsPerLine {
		t.Fatalf("heap grew %d words across churn; free list broken", grown)
	}
}

func TestModelRandomOps(t *testing.T) {
	mp, h, c := newMap(32)
	model := map[uint64]uint64{}
	r := rng.NewXoshiro256(13)
	for i := 0; i < 20000; i++ {
		k := r.Uint64n(100)
		switch r.Intn(4) {
		case 0:
			d := r.Uint64n(5) + 1
			got := h.AddDirect(c, k, d)
			model[k] += d
			if got != model[k] {
				t.Fatalf("op %d: Add(%d,%d) = %d, want %d", i, k, d, got, model[k])
			}
			if h.usedSpare {
				h.spare = mem.Nil
			}
		case 1:
			v := r.Next()
			h.PutDirect(c, k, v)
			model[k] = v
			if h.usedSpare {
				h.spare = mem.Nil
			}
		case 2:
			_, wantOK := model[k]
			if got := h.DeleteDirect(c, k); got != wantOK {
				t.Fatalf("op %d: Delete(%d) = %v, want %v", i, k, got, wantOK)
			}
			delete(model, k)
			if h.removed != mem.Nil {
				h.freeList = append(h.freeList, h.removed)
				h.removed = mem.Nil
			}
		default:
			v, ok := h.GetCS(c, k)
			wv, wok := model[k]
			if ok != wok || v != wv {
				t.Fatalf("op %d: Get(%d) = %d,%v, want %d,%v", i, k, v, ok, wv, wok)
			}
		}
	}
	if mp.Len(c) != len(model) {
		t.Fatalf("Len = %d, want %d", mp.Len(c), len(model))
	}
}

func TestQuickAddAccumulates(t *testing.T) {
	_, h, c := newMap(64)
	totals := map[uint64]uint64{}
	f := func(k uint16, d uint8) bool {
		key, delta := uint64(k), uint64(d)+1
		totals[key] += delta
		got := h.AddDirect(c, key, delta)
		if h.usedSpare {
			h.spare = mem.Nil
		}
		return got == totals[key]
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestConcurrentAddWithMethod(t *testing.T) {
	m := mem.New(1 << 22)
	meth := core.NewFGTLE(m, 64, core.Policy{})
	mp := New(m, 64)
	const goroutines = 5
	const perG = 400
	const keyRange = 40
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		th := meth.NewThread()
		go func(id int, th core.Thread) {
			defer wg.Done()
			h := mp.NewHandle()
			r := rng.NewXoshiro256(uint64(id) + 3)
			for i := 0; i < perG; i++ {
				h.Add(th, r.Uint64n(keyRange), 1)
			}
		}(g, th)
	}
	wg.Wait()
	var total uint64
	mp.ForEach(core.Direct(m), func(_, v uint64) bool { total += v; return true })
	if total != goroutines*perG {
		t.Fatalf("total count %d, want %d — increments lost", total, goroutines*perG)
	}
}
