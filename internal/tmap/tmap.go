// Package tmap implements the transaction-safe hash map of the paper's
// §6.4.1: the structure that replaces the STL hash map in the
// transactified ccTSA, instantiated for uint64 keys and values (packed
// k-mers and their counts).
//
// The map is a fixed-capacity chained hash table in simulated memory.
// Buckets are head-pointer words (eight share a cache line, so neighbouring
// buckets conflict — as they would on real hardware); chain nodes occupy a
// line each. All mutation happens through core.Context inside atomic
// blocks; sizing is fixed at construction, as ccTSA sizes its tables up
// front from the expected k-mer count.
package tmap

import (
	"rtle/internal/core"
	"rtle/internal/mem"
	"rtle/internal/wanghash"
)

// Chain-node field offsets.
const (
	offKey  = 0
	offVal  = 1
	offNext = 2
)

// Map is a fixed-capacity chained hash map in simulated memory.
type Map struct {
	m       *mem.Memory
	buckets mem.Addr
	nb      uint64
}

// New allocates a map with nbuckets chains (rounded up to a power of two).
func New(m *mem.Memory, nbuckets int) *Map {
	nb := uint64(1)
	for nb < uint64(nbuckets) {
		nb <<= 1
	}
	return &Map{m: m, buckets: m.AllocAligned(int(nb)), nb: nb}
}

// Memory returns the heap the map lives in.
func (mp *Map) Memory() *mem.Memory { return mp.m }

// Buckets returns the bucket count.
func (mp *Map) Buckets() int { return int(mp.nb) }

// Handle is the per-thread access handle (scratch allocation cache). A
// Handle must not be shared between goroutines.
type Handle struct {
	mp        *Map
	spare     mem.Addr
	freeList  []mem.Addr
	usedSpare bool
	removed   mem.Addr
}

// NewHandle returns a fresh per-thread handle.
func (mp *Map) NewHandle() *Handle { return &Handle{mp: mp} }

func (mp *Map) bucketAddr(key uint64) mem.Addr {
	return mp.buckets + mem.Addr(wanghash.Hash(key, mp.nb))
}

// GetCS looks up key. It must run inside an atomic block (or on a
// quiescent map).
func (h *Handle) GetCS(c core.Context, key uint64) (uint64, bool) {
	n := mem.Addr(c.Read(h.mp.bucketAddr(key)))
	for n != mem.Nil {
		if c.Read(n+offKey) == key {
			return c.Read(n + offVal), true
		}
		n = mem.Addr(c.Read(n + offNext))
	}
	return 0, false
}

// AddCS adds delta to key's value, inserting the key (with value delta) if
// absent, and returns the new value. This is ccTSA's insert-or-increment
// k-mer counting critical section.
func (h *Handle) AddCS(c core.Context, key, delta uint64) uint64 {
	h.usedSpare = false
	ba := h.mp.bucketAddr(key)
	head := mem.Addr(c.Read(ba))
	for n := head; n != mem.Nil; n = mem.Addr(c.Read(n + offNext)) {
		if c.Read(n+offKey) == key {
			nv := c.Read(n+offVal) + delta
			c.Write(n+offVal, nv)
			return nv
		}
	}
	n := h.ensureSpare()
	c.Write(n+offKey, key)
	c.Write(n+offVal, delta)
	c.Write(n+offNext, uint64(head))
	c.Write(ba, uint64(n))
	h.usedSpare = true
	return delta
}

// PutCS sets key's value, inserting if absent; reports whether the key was
// newly inserted.
func (h *Handle) PutCS(c core.Context, key, val uint64) bool {
	h.usedSpare = false
	ba := h.mp.bucketAddr(key)
	head := mem.Addr(c.Read(ba))
	for n := head; n != mem.Nil; n = mem.Addr(c.Read(n + offNext)) {
		if c.Read(n+offKey) == key {
			c.Write(n+offVal, val)
			return false
		}
	}
	n := h.ensureSpare()
	c.Write(n+offKey, key)
	c.Write(n+offVal, val)
	c.Write(n+offNext, uint64(head))
	c.Write(ba, uint64(n))
	h.usedSpare = true
	return true
}

// DeleteCS removes key, reporting whether it was present. The unlinked
// node is recorded for post-commit recycling.
func (h *Handle) DeleteCS(c core.Context, key uint64) bool {
	h.removed = mem.Nil
	ba := h.mp.bucketAddr(key)
	prev := mem.Nil
	n := mem.Addr(c.Read(ba))
	for n != mem.Nil {
		next := mem.Addr(c.Read(n + offNext))
		if c.Read(n+offKey) == key {
			if prev == mem.Nil {
				c.Write(ba, uint64(next))
			} else {
				c.Write(prev+offNext, uint64(next))
			}
			h.removed = n
			return true
		}
		prev, n = n, next
	}
	return false
}

// --- Atomic wrappers -------------------------------------------------------

// Get runs GetCS atomically on t.
func (h *Handle) Get(t core.Thread, key uint64) (uint64, bool) {
	var v uint64
	var ok bool
	t.Atomic(func(c core.Context) { v, ok = h.GetCS(c, key) })
	return v, ok
}

// Add runs AddCS atomically on t, consuming the spare node if used.
func (h *Handle) Add(t core.Thread, key, delta uint64) uint64 {
	var nv uint64
	t.Atomic(func(c core.Context) { nv = h.AddCS(c, key, delta) })
	if h.usedSpare {
		h.spare = mem.Nil
	}
	return nv
}

// Put runs PutCS atomically on t.
func (h *Handle) Put(t core.Thread, key, val uint64) bool {
	var inserted bool
	t.Atomic(func(c core.Context) { inserted = h.PutCS(c, key, val) })
	if inserted && h.usedSpare {
		h.spare = mem.Nil
	}
	return inserted
}

// Delete runs DeleteCS atomically on t and recycles the unlinked node.
func (h *Handle) Delete(t core.Thread, key uint64) bool {
	var ok bool
	t.Atomic(func(c core.Context) { ok = h.DeleteCS(c, key) })
	if ok && h.removed != mem.Nil {
		h.freeList = append(h.freeList, h.removed)
		h.removed = mem.Nil
	}
	return ok
}

// --- Direct (unsynchronized) wrappers --------------------------------------
//
// For single-threaded setup and quiescent phases: they run the CS body via
// the given context and perform the post-commit bookkeeping immediately
// (there is no speculation to wait for).

// AddDirect is AddCS plus bookkeeping, for quiescent use.
func (h *Handle) AddDirect(c core.Context, key, delta uint64) uint64 {
	nv := h.AddCS(c, key, delta)
	if h.usedSpare {
		h.spare = mem.Nil
	}
	return nv
}

// PutDirect is PutCS plus bookkeeping, for quiescent use.
func (h *Handle) PutDirect(c core.Context, key, val uint64) bool {
	inserted := h.PutCS(c, key, val)
	if inserted && h.usedSpare {
		h.spare = mem.Nil
	}
	return inserted
}

// DeleteDirect is DeleteCS plus bookkeeping, for quiescent use.
func (h *Handle) DeleteDirect(c core.Context, key uint64) bool {
	ok := h.DeleteCS(c, key)
	if ok {
		h.RecycleRemoved()
	}
	return ok
}

func (h *Handle) ensureSpare() mem.Addr {
	if h.spare == mem.Nil {
		if n := len(h.freeList); n > 0 {
			h.spare = h.freeList[n-1]
			h.freeList = h.freeList[:n-1]
		} else {
			h.spare = h.mp.m.AllocLines(1)
		}
	}
	return h.spare
}

// --- Whole-map helpers (quiescent use) -------------------------------------

// Len counts entries via c.
func (mp *Map) Len(c core.Context) int {
	n := 0
	mp.ForEach(c, func(uint64, uint64) bool { n++; return true })
	return n
}

// ForEach visits every (key, value) pair via c until fn returns false.
// Iteration order is unspecified. Intended for quiescent phases (ccTSA's
// processing phase walks the table after the build phase completes).
func (mp *Map) ForEach(c core.Context, fn func(key, val uint64) bool) {
	mp.forEachRange(c, 0, int(mp.nb), fn)
}

// ForEachBucketRange visits every pair whose bucket index lies in
// [lo, hi), quiescently. Workers use disjoint ranges as work chunks.
func (mp *Map) ForEachBucketRange(c core.Context, lo, hi int, fn func(key, val uint64)) {
	mp.forEachRange(c, lo, hi, func(k, v uint64) bool { fn(k, v); return true })
}

func (mp *Map) forEachRange(c core.Context, lo, hi int, fn func(key, val uint64) bool) {
	if lo < 0 {
		lo = 0
	}
	if hi > int(mp.nb) {
		hi = int(mp.nb)
	}
	for b := lo; b < hi; b++ {
		n := mem.Addr(c.Read(mp.buckets + mem.Addr(b)))
		for n != mem.Nil {
			if !fn(c.Read(n+offKey), c.Read(n+offVal)) {
				return
			}
			n = mem.Addr(c.Read(n + offNext))
		}
	}
}

// UsedSpare reports whether the most recent *CS call on this handle linked
// its spare node into the map (callers composing CS bodies themselves use
// it for post-commit bookkeeping, like the Add/Put wrappers do).
func (h *Handle) UsedSpare() bool { return h.usedSpare }

// ConsumeSpare finalizes a committed insertion performed via a raw *CS
// call: the linked node no longer belongs to the handle.
func (h *Handle) ConsumeSpare() { h.spare = mem.Nil }

// RecycleRemoved recycles the node unlinked by a committed DeleteCS.
func (h *Handle) RecycleRemoved() {
	if h.removed != mem.Nil {
		h.freeList = append(h.freeList, h.removed)
		h.removed = mem.Nil
	}
}
