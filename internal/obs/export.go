package obs

import (
	"encoding/json"
	"fmt"
	"io"

	"rtle/internal/core"
	"rtle/internal/htm"
)

// WritePrometheus renders the snapshot in the Prometheus text exposition
// format (version 0.0.4). Counter values are cumulative since the registry
// was created; pass a Delta snapshot to export interval values instead.
func (snap *Snapshot) WritePrometheus(w io.Writer) error {
	var err error
	p := func(format string, args ...any) {
		if err == nil {
			_, err = fmt.Fprintf(w, format, args...)
		}
	}

	p("# HELP rtle_ops_total Completed atomic blocks.\n")
	p("# TYPE rtle_ops_total counter\n")
	p("rtle_ops_total %d\n", snap.Stats.Ops)

	p("# HELP rtle_commits_total Committed atomic blocks by execution path.\n")
	p("# TYPE rtle_commits_total counter\n")
	commits := [core.NumCommitKinds]uint64{
		snap.Stats.FastCommits, snap.Stats.SlowCommits, snap.Stats.LockRuns,
		snap.Stats.STMCommitsHTM, snap.Stats.STMCommitsLock, snap.Stats.STMCommitsRO,
	}
	for k := 0; k < core.NumCommitKinds; k++ {
		p("rtle_commits_total{kind=%q} %d\n", core.CommitKind(k).String(), commits[k])
	}

	p("# HELP rtle_attempts_total Transaction attempts by path.\n")
	p("# TYPE rtle_attempts_total counter\n")
	p("rtle_attempts_total{path=\"fast\"} %d\n", snap.Stats.FastAttempts)
	p("rtle_attempts_total{path=\"slow\"} %d\n", snap.Stats.SlowAttempts)
	p("rtle_attempts_total{path=\"stm\"} %d\n", snap.Stats.STMStarts)

	p("# HELP rtle_aborts_total Failed hardware attempts by path and reason.\n")
	p("# TYPE rtle_aborts_total counter\n")
	for i := 1; i < htm.NumReasons; i++ {
		reason := htm.AbortReason(i).String()
		p("rtle_aborts_total{path=\"fast\",reason=%q} %d\n", reason, snap.Stats.FastAborts[i])
		p("rtle_aborts_total{path=\"slow\",reason=%q} %d\n", reason, snap.Stats.SlowAborts[i])
	}

	p("# HELP rtle_injected_faults_total Hardware aborts forced by the fault injector, by reason.\n")
	p("# TYPE rtle_injected_faults_total counter\n")
	for i := 1; i < htm.NumReasons; i++ {
		p("rtle_injected_faults_total{reason=%q} %d\n", htm.AbortReason(i).String(), snap.Stats.InjectedAborts[i])
	}

	p("# HELP rtle_subscription_aborts_total Fast-path aborts caused by lock subscription.\n")
	p("# TYPE rtle_subscription_aborts_total counter\n")
	p("rtle_subscription_aborts_total %d\n", snap.Stats.SubscriptionAborts)

	p("# HELP rtle_stm_aborts_total Software-transaction validation failures.\n")
	p("# TYPE rtle_stm_aborts_total counter\n")
	p("rtle_stm_aborts_total %d\n", snap.Stats.STMAborts)

	p("# HELP rtle_validations_total Value-based read-set validations.\n")
	p("# TYPE rtle_validations_total counter\n")
	p("rtle_validations_total %d\n", snap.Stats.Validations)

	p("# HELP rtle_lock_hold_seconds_total Time spent holding the fallback lock.\n")
	p("# TYPE rtle_lock_hold_seconds_total counter\n")
	p("rtle_lock_hold_seconds_total %g\n", float64(snap.Stats.LockHoldNanos)/1e9)

	p("# HELP rtle_stm_seconds_total Time spent inside software transactions.\n")
	p("# TYPE rtle_stm_seconds_total counter\n")
	p("rtle_stm_seconds_total %g\n", float64(snap.Stats.STMTimeNanos)/1e9)

	p("# HELP rtle_resizes_total Adaptive FG-TLE orec-array resizes.\n")
	p("# TYPE rtle_resizes_total counter\n")
	p("rtle_resizes_total %d\n", snap.Stats.Resizes)

	p("# HELP rtle_mode_switches_total Adaptive FG-TLE mode changes.\n")
	p("# TYPE rtle_mode_switches_total counter\n")
	p("rtle_mode_switches_total %d\n", snap.Stats.ModeSwitches)

	p("# HELP rtle_threads Observed worker threads.\n")
	p("# TYPE rtle_threads gauge\n")
	p("rtle_threads %d\n", snap.Threads)

	p("# HELP rtle_atomic_latency_seconds Whole-Atomic-call latency by execution path.\n")
	p("# TYPE rtle_atomic_latency_seconds histogram\n")
	for path := 0; path < core.NumPaths; path++ {
		l := &snap.Latency[path]
		if l.Count == 0 {
			continue
		}
		name := core.Path(path).String()
		var cum uint64
		for b := 0; b < NumLatencyBuckets; b++ {
			if l.Counts[b] == 0 {
				continue
			}
			cum += l.Counts[b]
			p("rtle_atomic_latency_seconds_bucket{path=%q,le=\"%g\"} %d\n",
				name, BucketUpperBoundSeconds(b), cum)
		}
		p("rtle_atomic_latency_seconds_bucket{path=%q,le=\"+Inf\"} %d\n", name, l.Count)
		p("rtle_atomic_latency_seconds_sum{path=%q} %g\n", name, float64(l.SumNanos)/1e9)
		p("rtle_atomic_latency_seconds_count{path=%q} %d\n", name, l.Count)
	}

	p("# HELP rtle_trace_dropped_total Path transitions lost to trace-ring overwrites.\n")
	p("# TYPE rtle_trace_dropped_total counter\n")
	p("rtle_trace_dropped_total %d\n", snap.TraceDropped)
	return err
}

// WriteJSON renders the snapshot as indented JSON.
func (snap *Snapshot) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(snap)
}
