// Package obs is the live-observability layer: a lock-free metrics registry
// that the synchronization methods publish into while they run.
//
// The quiescent counters of core.Stats answer "what happened" after a run;
// obs answers "what is happening" during one. A Registry implements
// core.Observer: install it via Policy.Observer (or rtle.WithObserver) and
// every thread the method creates gets a private shard of atomic counters
// mirroring core.Stats, plus per-path latency histograms and a sampled trace
// of path transitions. Registry.Snapshot aggregates the shards at any moment
// without stopping the workers, and guarantees a coherent view: the counters
// in a snapshot always satisfy TotalCommits <= Ops and, per hardware path,
// attempts >= commits + aborts.
//
// The coherence argument is purely ordering-based (no locks on the hot
// path). A shard's writer increments its ops counter before the per-kind
// commit counter of the same event; the snapshot reader loads the commit
// counters first and the ops counter afterwards. Any commit the reader sees
// therefore has its op already counted. Symmetrically, attempts are
// incremented before their outcome and read after everything else.
package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"

	"rtle/internal/core"
	"rtle/internal/htm"
)

// NumLatencyBuckets is the number of log2-spaced histogram buckets. Bucket i
// counts latencies in [2^i, 2^(i+1)) nanoseconds (bucket 0 also absorbs 0),
// so 64 buckets cover every int64 nanosecond value.
const NumLatencyBuckets = 64

// bucketOf maps a latency to its histogram bucket: floor(log2(n)), clamped.
func bucketOf(nanos int64) int {
	if nanos <= 0 {
		return 0
	}
	b := bits.Len64(uint64(nanos)) - 1
	if b >= NumLatencyBuckets {
		return NumLatencyBuckets - 1
	}
	return b
}

// Histogram is a lock-free log2 latency histogram: Observe is wait-free and
// safe for any number of concurrent writers. The Registry uses one per
// (shard, path); other subsystems (internal/server's per-op wire latency
// series) embed their own.
type Histogram struct {
	counts [NumLatencyBuckets]atomic.Uint64
	sum    atomic.Int64 // total nanos, for mean latency
}

// Observe records one latency sample.
func (h *Histogram) Observe(nanos int64) {
	h.counts[bucketOf(nanos)].Add(1)
	h.sum.Add(nanos)
}

// Snapshot reads the histogram into an aggregate value. Like the Registry's
// snapshots it is safe against concurrent Observe calls: sum is loaded before
// the counts, so the mean stays well-defined under skew.
func (h *Histogram) Snapshot() LatencySnapshot {
	var l LatencySnapshot
	l.SumNanos = h.sum.Load()
	for b := 0; b < NumLatencyBuckets; b++ {
		n := h.counts[b].Load()
		l.Counts[b] = n
		l.Count += n
	}
	return l
}

// BucketUpperBoundSeconds returns the exclusive upper bound of histogram
// bucket b in seconds (bucket b covers [2^b, 2^(b+1)) nanoseconds), the `le`
// label value Prometheus exporters render.
func BucketUpperBoundSeconds(b int) float64 {
	return float64(uint64(1)<<uint(b+1)) / 1e9
}

// BucketLowerBoundSeconds returns the inclusive lower bound of histogram
// bucket b in seconds. Together with the upper bound it brackets every
// sample the bucket holds, which is what sub-bucket percentile
// interpolation needs: a log2 bucket is wide (its bounds differ by 2×), so
// reporting the raw upper bound quantizes every quantile falling inside it
// to one identical value.
func BucketLowerBoundSeconds(b int) float64 {
	return float64(uint64(1)<<uint(b)) / 1e9
}

// Config tunes a Registry. The zero value selects the defaults.
type Config struct {
	// TraceCapacity bounds the path-transition trace ring; older events
	// are overwritten. Default 1024. Negative disables tracing.
	TraceCapacity int
	// TraceSample records only every Nth transition (per thread), so hot
	// workloads don't serialize on the trace mutex. Default 1 (record
	// all).
	TraceSample int
}

func (c Config) traceCapacity() int {
	if c.TraceCapacity == 0 {
		return 1024
	}
	if c.TraceCapacity < 0 {
		return 0
	}
	return c.TraceCapacity
}

func (c Config) traceSample() int {
	if c.TraceSample <= 0 {
		return 1
	}
	return c.TraceSample
}

// TraceEvent is one recorded path transition: at UnixNanos, the thread
// completed an atomic block on To after its previous block completed on From.
type TraceEvent struct {
	UnixNanos int64           `json:"unix_nanos"`
	Thread    int             `json:"thread"`
	Method    string          `json:"method"`
	From      core.Path       `json:"-"`
	To        core.Path       `json:"-"`
	FromName  string          `json:"from"`
	ToName    string          `json:"to"`
	Kind      core.CommitKind `json:"-"`
	KindName  string          `json:"commit"`
}

// Registry implements core.Observer: it hands a Shard to every thread and
// aggregates them on demand. The zero value is NOT ready; use NewRegistry.
type Registry struct {
	cfg Config

	mu     sync.Mutex // guards shards slice and trace ring
	shards []*Shard

	trace        []TraceEvent // ring buffer, len == cap
	traceNext    int          // next write position
	traceLen     int          // valid entries (<= len(trace))
	traceDropped uint64       // transitions overwritten or sampled away

	start time.Time
	prev  atomic.Pointer[Snapshot] // last snapshot, for Registry.Delta
}

// NewRegistry returns a Registry with cfg (zero value for defaults).
func NewRegistry(cfg Config) *Registry {
	r := &Registry{cfg: cfg, start: time.Now()}
	if n := cfg.traceCapacity(); n > 0 {
		r.trace = make([]TraceEvent, n)
	}
	return r
}

// ObserveThread implements core.Observer.
func (r *Registry) ObserveThread(method string) core.ThreadObserver {
	r.mu.Lock()
	defer r.mu.Unlock()
	s := &Shard{reg: r, id: len(r.shards), method: method, lastPath: -1}
	r.shards = append(r.shards, s)
	return s
}

// record appends a trace event (called by shards, already sampled).
func (r *Registry) record(ev TraceEvent) {
	r.mu.Lock()
	if len(r.trace) == 0 {
		r.mu.Unlock()
		return
	}
	if r.traceLen == len(r.trace) {
		r.traceDropped++
	} else {
		r.traceLen++
	}
	r.trace[r.traceNext] = ev
	r.traceNext = (r.traceNext + 1) % len(r.trace)
	r.mu.Unlock()
}

// Shard is the per-thread observer: a cache-friendly block of atomic
// counters mirroring core.Stats, written by exactly one thread and read by
// Registry.Snapshot at any time.
type Shard struct {
	reg    *Registry
	id     int
	method string

	ops      atomic.Uint64
	commits  [core.NumCommitKinds]atomic.Uint64
	extras   [core.NumCommitKinds]atomic.Uint64 // ExtraCommit (ALE dual-booking)
	attempts [core.NumPaths]atomic.Uint64       // fast, slow; stm slot = STMStarts

	fastAborts         [htm.NumReasons]atomic.Uint64
	slowAborts         [htm.NumReasons]atomic.Uint64
	injectedAborts     [htm.NumReasons]atomic.Uint64
	subscriptionAborts atomic.Uint64
	stmAborts          atomic.Uint64
	validations        atomic.Uint64

	lockHoldNanos atomic.Int64
	stmTimeNanos  atomic.Int64

	resizes      atomic.Uint64
	modeSwitches atomic.Uint64

	latency [core.NumPaths]Histogram

	// Single-writer trace state (only the owning thread touches these).
	lastPath    int8 // -1 before the first op
	transitionN int  // transitions seen, for sampling
}

// Method returns the method name this shard's thread belongs to.
func (s *Shard) Method() string { return s.method }

// Op implements core.ThreadObserver. Ordering: ops before commits, so a
// concurrent reader that loads commits first sees TotalCommits <= Ops.
func (s *Shard) Op(k core.CommitKind, latencyNanos int64) {
	s.ops.Add(1)
	s.commits[k].Add(1)
	p := k.Path()
	s.latency[p].Observe(latencyNanos)
	s.tracePath(p, k)
}

// tracePath records a path transition into the registry's trace ring.
func (s *Shard) tracePath(p core.Path, k core.CommitKind) {
	if s.reg == nil || len(s.reg.trace) == 0 {
		return
	}
	from := s.lastPath
	s.lastPath = int8(p)
	if from < 0 || core.Path(from) == p {
		return
	}
	s.transitionN++
	if sample := s.reg.cfg.traceSample(); s.transitionN%sample != 0 {
		return
	}
	s.reg.record(TraceEvent{
		UnixNanos: time.Now().UnixNano(),
		Thread:    s.id,
		Method:    s.method,
		From:      core.Path(from),
		To:        p,
		FromName:  core.Path(from).String(),
		ToName:    p.String(),
		Kind:      k,
		KindName:  k.String(),
	})
}

// ExtraCommit implements core.ThreadObserver (ALE's dual-booked software
// sections). Kept out of the commits array so the TotalCommits <= Ops
// invariant holds per shard; Snapshot folds extras back into Stats.
func (s *Shard) ExtraCommit(k core.CommitKind) { s.extras[k].Add(1) }

// Attempt implements core.ThreadObserver.
func (s *Shard) Attempt(p core.Path) { s.attempts[p].Add(1) }

// Abort implements core.ThreadObserver.
func (s *Shard) Abort(p core.Path, reason htm.AbortReason, subscription, injected bool) {
	if subscription {
		s.subscriptionAborts.Add(1)
	}
	if injected {
		s.injectedAborts[reason].Add(1)
	}
	if p == core.PathSlow {
		s.slowAborts[reason].Add(1)
	} else {
		s.fastAborts[reason].Add(1)
	}
}

// STMAbort implements core.ThreadObserver.
func (s *Shard) STMAbort() { s.stmAborts.Add(1) }

// Validation implements core.ThreadObserver.
func (s *Shard) Validation() { s.validations.Add(1) }

// LockHold implements core.ThreadObserver.
func (s *Shard) LockHold(nanos int64) { s.lockHoldNanos.Add(nanos) }

// STMTime implements core.ThreadObserver.
func (s *Shard) STMTime(nanos int64) { s.stmTimeNanos.Add(nanos) }

// Resize implements core.ThreadObserver.
func (s *Shard) Resize() { s.resizes.Add(1) }

// ModeSwitch implements core.ThreadObserver.
func (s *Shard) ModeSwitch() { s.modeSwitches.Add(1) }
