package obs

import (
	"reflect"
	"time"

	"rtle/internal/core"
	"rtle/internal/htm"
)

// LatencySnapshot is the aggregated latency histogram of one execution path.
type LatencySnapshot struct {
	// Counts[i] holds completed atomic blocks whose whole-call latency
	// fell in [2^i, 2^(i+1)) nanoseconds.
	Counts [NumLatencyBuckets]uint64 `json:"counts"`
	// Count and SumNanos give the total observations and nanoseconds.
	Count    uint64 `json:"count"`
	SumNanos int64  `json:"sum_nanos"`
}

// MeanNanos returns the mean latency, or 0 with no observations.
func (l *LatencySnapshot) MeanNanos() float64 {
	if l.Count == 0 {
		return 0
	}
	return float64(l.SumNanos) / float64(l.Count)
}

// ThreadSnapshot is one shard's view inside a Snapshot.
type ThreadSnapshot struct {
	Thread int        `json:"thread"`
	Method string     `json:"method"`
	Stats  core.Stats `json:"stats"`
}

// Snapshot is a coherent point-in-time aggregate of a Registry. Coherent
// means: even while workers run, Stats.TotalCommits() <= Stats.Ops and, per
// hardware path, attempts >= commits + aborts (see the package comment; the
// one documented exception is ALE, whose Stats dual-book software sections
// by design, so its TotalCommits exceeds Ops even at rest).
type Snapshot struct {
	// TakenUnixNanos is when the snapshot was read.
	TakenUnixNanos int64 `json:"taken_unix_nanos"`
	// ElapsedNanos is the time since the registry was created (for
	// cumulative snapshots) or since the previous snapshot (for deltas).
	ElapsedNanos int64 `json:"elapsed_nanos"`
	// Threads is the number of shards aggregated.
	Threads int `json:"threads"`
	// Stats aggregates every shard into the same counter layout the
	// methods report after quiescing.
	Stats core.Stats `json:"stats"`
	// PerThread holds each shard's individual counters.
	PerThread []ThreadSnapshot `json:"per_thread"`
	// Latency aggregates the per-path latency histograms, indexed by
	// core.Path.
	Latency [core.NumPaths]LatencySnapshot `json:"latency"`
	// Trace is the sampled path-transition ring, oldest first.
	Trace []TraceEvent `json:"trace,omitempty"`
	// TraceDropped counts transitions lost to ring overwrites.
	TraceDropped uint64 `json:"trace_dropped"`
}

// readStats loads one shard's counters in the coherence order: commit
// buckets first, everything else next, ops after commits, attempts last.
func (s *Shard) readStats() core.Stats {
	var st core.Stats
	var commits [core.NumCommitKinds]uint64
	for k := 0; k < core.NumCommitKinds; k++ {
		commits[k] = s.commits[k].Load() + s.extras[k].Load()
	}
	st.FastCommits = commits[core.CommitFast]
	st.SlowCommits = commits[core.CommitSlow]
	st.LockRuns = commits[core.CommitLock]
	st.STMCommitsHTM = commits[core.CommitSTMHTM]
	st.STMCommitsLock = commits[core.CommitSTMLock]
	st.STMCommitsRO = commits[core.CommitSTMRO]

	for i := 0; i < htm.NumReasons; i++ {
		st.FastAborts[i] = s.fastAborts[i].Load()
		st.SlowAborts[i] = s.slowAborts[i].Load()
		st.InjectedAborts[i] = s.injectedAborts[i].Load()
	}
	st.SubscriptionAborts = s.subscriptionAborts.Load()
	st.STMAborts = s.stmAborts.Load()
	st.Validations = s.validations.Load()
	st.LockHoldNanos = s.lockHoldNanos.Load()
	st.STMTimeNanos = s.stmTimeNanos.Load()
	st.Resizes = s.resizes.Load()
	st.ModeSwitches = s.modeSwitches.Load()

	// Ops strictly after the commit buckets: every commit the loads above
	// saw had already bumped ops, so TotalCommits <= Ops.
	st.Ops = s.ops.Load()

	// Attempts strictly after commits and aborts: every outcome counted
	// above had already counted its attempt.
	st.FastAttempts = s.attempts[core.PathFast].Load()
	st.SlowAttempts = s.attempts[core.PathSlow].Load()
	st.STMStarts = s.attempts[core.PathSTM].Load()
	return st
}

// Snapshot aggregates all shards into a coherent point-in-time view without
// stopping the workers. It also becomes the baseline for the next Delta.
func (r *Registry) Snapshot() *Snapshot {
	r.mu.Lock()
	shards := make([]*Shard, len(r.shards))
	copy(shards, r.shards)
	var trace []TraceEvent
	if r.traceLen > 0 {
		trace = make([]TraceEvent, 0, r.traceLen)
		start := r.traceNext - r.traceLen
		if start < 0 {
			start += len(r.trace)
		}
		for i := 0; i < r.traceLen; i++ {
			trace = append(trace, r.trace[(start+i)%len(r.trace)])
		}
	}
	dropped := r.traceDropped
	r.mu.Unlock()

	now := time.Now()
	snap := &Snapshot{
		TakenUnixNanos: now.UnixNano(),
		ElapsedNanos:   now.Sub(r.start).Nanoseconds(),
		Threads:        len(shards),
		PerThread:      make([]ThreadSnapshot, 0, len(shards)),
		Trace:          trace,
		TraceDropped:   dropped,
	}
	for _, s := range shards {
		st := s.readStats()
		snap.Stats.Merge(&st)
		snap.PerThread = append(snap.PerThread, ThreadSnapshot{
			Thread: s.id, Method: s.method, Stats: st,
		})
		for p := 0; p < core.NumPaths; p++ {
			h := &s.latency[p]
			agg := &snap.Latency[p]
			// Sum before counts: a concurrent observe bumps the
			// count after the sum, so mean stays well-defined
			// (sum covers at least the counted events' order —
			// both are monotone, slight skew is acceptable for a
			// live histogram).
			agg.SumNanos += h.sum.Load()
			for b := 0; b < NumLatencyBuckets; b++ {
				n := h.counts[b].Load()
				agg.Counts[b] += n
				agg.Count += n
			}
		}
	}
	r.prev.Store(snap)
	return snap
}

// Delta returns snap - prev field-by-field: the activity between the two
// snapshots, with ElapsedNanos set to the interval. Trace is the events
// recorded after prev was taken.
func (snap *Snapshot) Delta(prev *Snapshot) *Snapshot {
	if prev == nil {
		c := *snap
		return &c
	}
	d := &Snapshot{
		TakenUnixNanos: snap.TakenUnixNanos,
		ElapsedNanos:   snap.TakenUnixNanos - prev.TakenUnixNanos,
		Threads:        snap.Threads,
		Stats:          subStats(snap.Stats, prev.Stats),
		TraceDropped:   snap.TraceDropped - prev.TraceDropped,
	}
	for p := 0; p < core.NumPaths; p++ {
		for b := 0; b < NumLatencyBuckets; b++ {
			d.Latency[p].Counts[b] = snap.Latency[p].Counts[b] - prev.Latency[p].Counts[b]
		}
		d.Latency[p].Count = snap.Latency[p].Count - prev.Latency[p].Count
		d.Latency[p].SumNanos = snap.Latency[p].SumNanos - prev.Latency[p].SumNanos
	}
	prevThreads := make(map[int]*core.Stats, len(prev.PerThread))
	for i := range prev.PerThread {
		prevThreads[prev.PerThread[i].Thread] = &prev.PerThread[i].Stats
	}
	for _, ts := range snap.PerThread {
		if p, ok := prevThreads[ts.Thread]; ok {
			ts.Stats = subStats(ts.Stats, *p)
		}
		d.PerThread = append(d.PerThread, ts)
	}
	for _, ev := range snap.Trace {
		if ev.UnixNanos > prev.TakenUnixNanos {
			d.Trace = append(d.Trace, ev)
		}
	}
	return d
}

// subStats returns a - b for every counter field, via reflection so a new
// Stats field cannot be silently dropped from deltas.
func subStats(a, b core.Stats) core.Stats {
	av := reflect.ValueOf(&a).Elem()
	bv := reflect.ValueOf(b)
	for i := 0; i < av.NumField(); i++ {
		f := av.Field(i)
		g := bv.Field(i)
		switch f.Kind() {
		case reflect.Uint64:
			f.SetUint(f.Uint() - g.Uint())
		case reflect.Int64:
			f.SetInt(f.Int() - g.Int())
		case reflect.Array:
			for j := 0; j < f.Len(); j++ {
				f.Index(j).SetUint(f.Index(j).Uint() - g.Index(j).Uint())
			}
		}
	}
	return a
}

// DeltaSince returns the activity since the last Snapshot/DeltaSince call on
// this registry (or since creation for the first call): a convenience for
// periodic rate sampling.
func (r *Registry) DeltaSince() *Snapshot {
	prev := r.prev.Load()
	return r.Snapshot().Delta(prev)
}

// Throughput returns completed atomic blocks per second over the snapshot's
// elapsed interval.
func (snap *Snapshot) Throughput() float64 {
	if snap.ElapsedNanos <= 0 {
		return 0
	}
	return float64(snap.Stats.Ops) / (float64(snap.ElapsedNanos) / 1e9)
}

// AbortRate returns hardware aborts per hardware attempt.
func (snap *Snapshot) AbortRate() float64 {
	attempts := snap.Stats.FastAttempts + snap.Stats.SlowAttempts
	if attempts == 0 {
		return 0
	}
	var aborts uint64
	for i := 0; i < htm.NumReasons; i++ {
		aborts += snap.Stats.FastAborts[i] + snap.Stats.SlowAborts[i]
	}
	return float64(aborts) / float64(attempts)
}
