package obs_test

import (
	"bytes"
	"encoding/json"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"rtle/internal/avl"
	"rtle/internal/core"
	"rtle/internal/harness"
	"rtle/internal/htm"
	"rtle/internal/mem"
	"rtle/internal/obs"
)

// allMethods covers every synchronization method in the repository.
var allMethods = []string{
	"Lock", "TLE", "HLE", "RW-TLE", "FG-TLE(64)", "FG-TLE(adaptive)",
	"ALE(64)", "NOrec", "RHNOrec",
}

// runSet drives a small AVL-set workload on the named method with reg
// attached and returns the harness result (merged quiescent stats).
func runSet(t testing.TB, method string, reg *obs.Registry, threads, ops int) *harness.Result {
	t.Helper()
	const keyRange = 512
	m := mem.New(harness.DefaultSetHeapWords(keyRange, threads) + 1<<18)
	set := avl.New(m)
	harness.SeedSet(set, keyRange)
	policy := core.Policy{Observer: reg, HTM: htm.Config{InterleaveEvery: 8}}
	meth, err := harness.BuildMethod(method, m, policy)
	if err != nil {
		t.Fatal(err)
	}
	return harness.Run(meth, harness.Config{
		Threads: threads, OpsPerThread: ops, Seed: 42,
	}, harness.SetWorkerFactory(set, harness.SetMix{InsertPct: 30, RemovePct: 30}, keyRange))
}

// TestSnapshotMatchesMergedStats checks, for every method, that the
// registry's aggregated snapshot agrees field-for-field with the quiescent
// core.Stats merge the harness computes — i.e. that the live layer and the
// classic counters can never drift.
func TestSnapshotMatchesMergedStats(t *testing.T) {
	for _, method := range allMethods {
		t.Run(method, func(t *testing.T) {
			reg := obs.NewRegistry(obs.Config{})
			res := runSet(t, method, reg, 4, 2000)
			snap := reg.Snapshot()

			if !reflect.DeepEqual(snap.Stats, res.Total) {
				t.Errorf("snapshot stats diverge from merged quiescent stats:\nsnapshot: %+v\nmerged:   %+v",
					snap.Stats, res.Total)
			}
			if snap.Threads != res.Threads {
				t.Errorf("snapshot saw %d threads, harness ran %d", snap.Threads, res.Threads)
			}
			for i, ts := range snap.PerThread {
				if !reflect.DeepEqual(ts.Stats, res.PerThread[ts.Thread]) {
					t.Errorf("thread %d shard diverges from its quiescent stats", i)
				}
			}
			// Latency histograms must count exactly the completed ops
			// (ALE's extra STM bookings don't observe latency twice).
			var histTotal uint64
			for p := 0; p < core.NumPaths; p++ {
				histTotal += snap.Latency[p].Count
			}
			if histTotal != snap.Stats.Ops {
				t.Errorf("latency histograms count %d observations, want Ops=%d", histTotal, snap.Stats.Ops)
			}
		})
	}
}

// TestSnapshotCoherentMidRun hammers Snapshot concurrently with running
// workers (this is the test the race detector exercises) and checks the
// ordering invariants on every mid-run view: TotalCommits <= Ops, and per
// hardware path attempts >= commits + aborts. ALE is excluded: its Stats
// dual-book software sections by design, so TotalCommits > Ops even at
// rest.
func TestSnapshotCoherentMidRun(t *testing.T) {
	methods := []string{"TLE", "RW-TLE", "FG-TLE(64)", "FG-TLE(adaptive)", "HLE", "NOrec", "RHNOrec"}
	for _, method := range methods {
		t.Run(method, func(t *testing.T) {
			t.Parallel()
			reg := obs.NewRegistry(obs.Config{TraceCapacity: 256})
			var stop atomic.Bool
			var snaps int
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				var prev *obs.Snapshot
				for !stop.Load() {
					snap := reg.Snapshot()
					snaps++
					checkCoherent(t, method, snap)
					if prev != nil {
						d := snap.Delta(prev)
						if d.Stats.Ops > snap.Stats.Ops {
							t.Errorf("delta ops %d exceed cumulative ops %d", d.Stats.Ops, snap.Stats.Ops)
						}
					}
					prev = snap
					time.Sleep(time.Millisecond)
				}
			}()
			runSet(t, method, reg, 4, 3000)
			stop.Store(true)
			wg.Wait()
			if snaps == 0 {
				t.Fatal("snapshot goroutine never ran")
			}
			// The final view must also be coherent and non-empty.
			final := reg.Snapshot()
			checkCoherent(t, method, final)
			if final.Stats.Ops == 0 {
				t.Fatal("no ops observed")
			}
		})
	}
}

func checkCoherent(t *testing.T, method string, snap *obs.Snapshot) {
	t.Helper()
	st := &snap.Stats
	if st.TotalCommits() > st.Ops {
		t.Errorf("%s: incoherent snapshot: TotalCommits %d > Ops %d", method, st.TotalCommits(), st.Ops)
	}
	var fastAborts, slowAborts uint64
	for i := 0; i < htm.NumReasons; i++ {
		fastAborts += st.FastAborts[i]
		slowAborts += st.SlowAborts[i]
	}
	if st.FastCommits+fastAborts > st.FastAttempts {
		t.Errorf("%s: fast commits %d + aborts %d exceed attempts %d",
			method, st.FastCommits, fastAborts, st.FastAttempts)
	}
	if st.SlowCommits+slowAborts > st.SlowAttempts {
		t.Errorf("%s: slow commits %d + aborts %d exceed attempts %d",
			method, st.SlowCommits, slowAborts, st.SlowAttempts)
	}
}

// TestDelta checks that consecutive snapshots subtract to the activity in
// between, field for field.
func TestDelta(t *testing.T) {
	reg := obs.NewRegistry(obs.Config{})
	runSet(t, "TLE", reg, 2, 500)
	first := reg.Snapshot()
	runSet(t, "TLE", reg, 2, 500)
	second := reg.Snapshot()

	d := second.Delta(first)
	var want core.Stats = second.Stats
	sub := first.Stats
	// Reconstruct via Merge: d + first == second.
	got := d.Stats
	got.Merge(&sub)
	if !reflect.DeepEqual(got, want) {
		t.Errorf("delta + first != second:\ndelta+first: %+v\nsecond:      %+v", got, want)
	}
	if d.Stats.Ops == 0 {
		t.Error("delta shows no activity between snapshots")
	}
	if d.ElapsedNanos <= 0 {
		t.Errorf("delta elapsed %d, want positive", d.ElapsedNanos)
	}
}

// TestDeltaSince checks the registry's built-in baseline tracking.
func TestDeltaSince(t *testing.T) {
	reg := obs.NewRegistry(obs.Config{})
	runSet(t, "TLE", reg, 1, 300)
	d1 := reg.DeltaSince()
	if d1.Stats.Ops == 0 {
		t.Fatal("first delta empty")
	}
	d2 := reg.DeltaSince()
	if d2.Stats.Ops != 0 {
		t.Errorf("second delta with no activity shows %d ops", d2.Stats.Ops)
	}
}

// TestTraceRing checks capacity bounding and drop accounting.
func TestTraceRing(t *testing.T) {
	reg := obs.NewRegistry(obs.Config{TraceCapacity: 8})
	// HLE on a contended workload transitions between fast and lock paths.
	runSet(t, "HLE", reg, 4, 2000)
	snap := reg.Snapshot()
	if len(snap.Trace) > 8 {
		t.Errorf("trace holds %d events, capacity 8", len(snap.Trace))
	}
	for i := 1; i < len(snap.Trace); i++ {
		if snap.Trace[i].UnixNanos < snap.Trace[i-1].UnixNanos {
			t.Errorf("trace not in time order at %d", i)
		}
	}
	for _, ev := range snap.Trace {
		if ev.From == ev.To {
			t.Errorf("self-transition recorded: %+v", ev)
		}
	}
}

// TestExporters smoke-tests the Prometheus and JSON renderings.
func TestExporters(t *testing.T) {
	reg := obs.NewRegistry(obs.Config{})
	runSet(t, "FG-TLE(64)", reg, 2, 1000)
	snap := reg.Snapshot()

	var prom bytes.Buffer
	if err := snap.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	out := prom.String()
	for _, want := range []string{
		"rtle_ops_total", "rtle_commits_total{kind=\"fast\"}",
		"rtle_attempts_total{path=\"fast\"}", "rtle_atomic_latency_seconds_bucket",
		"le=\"+Inf\"", "rtle_threads 2",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}

	var js bytes.Buffer
	if err := snap.WriteJSON(&js); err != nil {
		t.Fatal(err)
	}
	var decoded map[string]any
	if err := json.Unmarshal(js.Bytes(), &decoded); err != nil {
		t.Fatalf("json output does not parse: %v", err)
	}
	if _, ok := decoded["stats"]; !ok {
		t.Error("json output missing stats")
	}
}

// TestLatencyBuckets pins the log2 bucketing.
func TestLatencyBuckets(t *testing.T) {
	reg := obs.NewRegistry(obs.Config{TraceCapacity: -1})
	sh := reg.ObserveThread("test")
	for _, nanos := range []int64{0, 1, 2, 3, 1000, 1 << 40} {
		sh.Op(core.CommitFast, nanos)
	}
	snap := reg.Snapshot()
	l := snap.Latency[core.PathFast]
	if l.Count != 6 {
		t.Fatalf("count %d, want 6", l.Count)
	}
	// 0 and 1 land in bucket 0; 2 and 3 in bucket 1; 1000 in bucket 9
	// ([512, 1024)); 1<<40 in bucket 40.
	for b, want := range map[int]uint64{0: 2, 1: 2, 9: 1, 40: 1} {
		if l.Counts[b] != want {
			t.Errorf("bucket %d holds %d, want %d", b, l.Counts[b], want)
		}
	}
	if l.SumNanos != 0+1+2+3+1000+1<<40 {
		t.Errorf("sum %d wrong", l.SumNanos)
	}
}
