package snap

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// collect runs a Writer over s and returns the emitted chunk payloads.
func collect(t *testing.T, s *Snapshot) [][]byte {
	t.Helper()
	var chunks [][]byte
	w := NewWriter(func(p []byte) error {
		chunks = append(chunks, p)
		return nil
	})
	if err := Encode(w, s); err != nil {
		t.Fatalf("Encode: %v", err)
	}
	return chunks
}

// decode feeds chunks through a Reader and returns the snapshot.
func decode(t *testing.T, chunks [][]byte) *Snapshot {
	t.Helper()
	r := NewReader()
	for i, p := range chunks {
		done, err := r.Feed(p)
		if err != nil {
			t.Fatalf("Feed chunk %d: %v", i, err)
		}
		if done != (i == len(chunks)-1) {
			t.Fatalf("Feed chunk %d reported done=%v", i, done)
		}
	}
	s, err := r.Snapshot()
	if err != nil {
		t.Fatalf("Snapshot: %v", err)
	}
	return s
}

func TestRoundTrip(t *testing.T) {
	s := &Snapshot{
		Workload: "map",
		Keys:     1024,
		Seq:      77,
		Shards: [][]Item{
			{{Key: 1, Val: 10}, {Key: 5, Val: 50}},
			nil, // an empty shard emits no items chunks but must survive
			{{Key: 9, Val: 90}},
		},
	}
	got := decode(t, collect(t, s))
	if got.Workload != "map" || got.Keys != 1024 || got.Seq != 77 {
		t.Fatalf("header round-trip: %+v", got)
	}
	if len(got.Shards) != 3 || got.Shards[1] != nil {
		t.Fatalf("shards round-trip: %+v", got.Shards)
	}
	if !reflect.DeepEqual(got.Shards[0], s.Shards[0]) || !reflect.DeepEqual(got.Shards[2], s.Shards[2]) {
		t.Fatalf("items round-trip: %+v", got.Shards)
	}
}

func TestChunking(t *testing.T) {
	items := make([]Item, MaxChunkItems*2+7)
	for i := range items {
		items[i] = Item{Key: uint64(i), Val: uint64(i) * 3}
	}
	s := &Snapshot{Workload: "set", Keys: uint64(len(items)), Seq: 1, Shards: [][]Item{items}}
	chunks := collect(t, s)
	// header + 3 items chunks (512+512+7) + end
	if len(chunks) != 5 {
		t.Fatalf("got %d chunks, want 5", len(chunks))
	}
	got := decode(t, chunks)
	if !reflect.DeepEqual(got.Shards[0], items) {
		t.Fatalf("chunked items did not reassemble")
	}
}

func TestIsChunkDisjointFromEntryPayloads(t *testing.T) {
	// A replication entry payload begins with a u64 sequence; the magic
	// would require seq >= 0x534e4150<<32, unreachable in practice. A
	// realistic entry payload must not look like a chunk.
	entry := binary.BigEndian.AppendUint64(nil, 123456)
	entry = binary.BigEndian.AppendUint16(entry, 1)
	if IsChunk(entry) {
		t.Fatalf("entry payload misidentified as snapshot chunk")
	}
	chunks := collect(t, &Snapshot{Workload: "set", Keys: 1, Seq: 0, Shards: [][]Item{{{Key: 1}}}})
	for i, p := range chunks {
		if !IsChunk(p) {
			t.Fatalf("chunk %d not identified", i)
		}
	}
}

func TestReaderRejectsCorruption(t *testing.T) {
	base := &Snapshot{Workload: "bank", Keys: 4, Seq: 9,
		Shards: [][]Item{{{Key: 0, Val: 100}, {Key: 1, Val: 100}, {Key: 2, Val: 100}, {Key: 3, Val: 100}}}}

	t.Run("flipped item byte fails CRC", func(t *testing.T) {
		chunks := collect(t, base)
		bad := append([][]byte(nil), chunks...)
		tampered := append([]byte(nil), bad[1]...)
		tampered[len(tampered)-1] ^= 0xff
		bad[1] = tampered
		r := NewReader()
		var ferr error
		for _, p := range bad {
			if _, ferr = r.Feed(p); ferr != nil {
				break
			}
		}
		if ferr == nil {
			t.Fatalf("tampered stream accepted")
		}
	})

	t.Run("items before header", func(t *testing.T) {
		chunks := collect(t, base)
		r := NewReader()
		if _, err := r.Feed(chunks[1]); err == nil {
			t.Fatalf("items chunk before header accepted")
		}
	})

	t.Run("incomplete stream", func(t *testing.T) {
		chunks := collect(t, base)
		r := NewReader()
		for _, p := range chunks[:len(chunks)-1] {
			if _, err := r.Feed(p); err != nil {
				t.Fatalf("Feed: %v", err)
			}
		}
		if _, err := r.Snapshot(); err == nil {
			t.Fatalf("incomplete stream yielded a snapshot")
		}
	})

	t.Run("shard out of range", func(t *testing.T) {
		chunks := collect(t, base)
		tampered := append([]byte(nil), chunks[1]...)
		binary.BigEndian.PutUint16(tampered[5:], 7) // header declared 1 shard
		r := NewReader()
		if _, err := r.Feed(chunks[0]); err != nil {
			t.Fatalf("Feed header: %v", err)
		}
		if _, err := r.Feed(tampered); err == nil {
			t.Fatalf("out-of-range shard accepted")
		}
	})
}

func TestFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "state.snap")

	if s, err := ReadFile(path); err != nil || s != nil {
		t.Fatalf("missing file: got %+v, %v; want nil, nil", s, err)
	}

	want := &Snapshot{Workload: "map", Keys: 64, Seq: 42,
		Shards: [][]Item{{{Key: 3, Val: 33}}, {{Key: 4, Val: 44}, {Key: 8, Val: 88}}}}
	if err := WriteFile(path, want); err != nil {
		t.Fatalf("WriteFile: %v", err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("file round-trip: got %+v, want %+v", got, want)
	}

	// Truncate the file mid-stream: the load must fail, not yield a prefix.
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, raw[:len(raw)-5], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(path); err == nil {
		t.Fatalf("torn snapshot file accepted")
	}
}
