// Package snap is the snapshot engine behind rtled's state-transfer
// story: a consistent cut of the full three-ADT state of every shard,
// stamped with the replication-log sequence it reflects, encoded as a
// stream of small self-describing chunks.
//
// A snapshot is the serving layer's bridge between the replication log
// and materialized state. The capture runs under the same exclusive
// drain gates that order the log (DESIGN.md §7/§11), so a snapshot
// stamped Seq=S is exactly the state produced by replaying the log
// prefix ≤ S from genesis. That one equivalence powers four consumers:
// warm checker seeding, live resharding, replica fast-bootstrap, and
// log compaction.
//
// # Chunk encoding
//
// Every chunk payload begins with the 4-byte magic "SNAP" followed by a
// chunk-type byte, so snapshot chunks are distinguishable from
// replication entry payloads sharing a frame stream (an entry payload
// begins with a u64 sequence; sequences near 0x534e4150_00000000 are
// ~6×10^18 entries away, far past any reachable log). Three chunk types:
//
//	header: "SNAP" | u8 1 | u8 version | u8 workload | u64 keys | u64 seq | u16 shards
//	items:  "SNAP" | u8 2 | u16 shard | u16 n | n × (u64 key | u64 val)
//	end:    "SNAP" | u8 3 | u64 count | u32 crc32
//
// Items chunks carry at most MaxChunkItems pairs, so every chunk fits
// comfortably inside one rtled/1 wire frame. The end chunk carries the
// total item count and a CRC32-IEEE over the item bytes in stream order,
// making a snapshot self-validating wherever it travels — wire frames or
// the snapshot file's length-prefixed records.
//
// The same chunk bytes serve as wire-frame payloads (the serving layer
// adds the u32 length prefix) and as file-record payloads (WriteFile
// adds the same prefix), so there is exactly one encoder and one
// decoder.
package snap

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// Version is the snapshot encoding version carried in the header chunk.
const Version = 1

// MaxChunkItems bounds the key/val pairs of one items chunk: 512 pairs
// is 8 KiB of item data, far under the serving layer's frame cap, and
// small enough that streaming a large shard never builds one giant
// buffer.
const MaxChunkItems = 512

// Chunk types, after the magic.
const (
	chunkHeader = 1
	chunkItems  = 2
	chunkEnd    = 3
)

// Workload codes carried in the header chunk.
const (
	workloadSet  = 1
	workloadMap  = 2
	workloadBank = 3
)

const magic = "SNAP"

// headerLen is the exact encoded size of a header chunk.
const headerLen = 4 + 1 + 1 + 1 + 8 + 8 + 2

// endLen is the exact encoded size of an end chunk.
const endLen = 4 + 1 + 8 + 4

// Item is one key/value pair of snapshot state. For the set workload Val
// is 0 (membership is the state); for map it is the mapped value; for
// bank the Key is the global account and Val its balance.
type Item struct {
	Key, Val uint64
}

// itemBytes is the fixed encoding size of one Item.
const itemBytes = 16

// Snapshot is one decoded (or to-be-encoded) consistent cut.
type Snapshot struct {
	Workload string // "set", "map", or "bank"
	Keys     uint64 // the server's key-space size (bank: account count)
	Seq      uint64 // replication-log sequence the state reflects (0: unreplicated)
	Shards   [][]Item
}

// Count returns the total item count across all source shards.
func (s *Snapshot) Count() int {
	n := 0
	for _, items := range s.Shards {
		n += len(items)
	}
	return n
}

// workloadCode maps a workload name to its header byte.
func workloadCode(w string) (uint8, error) {
	switch w {
	case "set":
		return workloadSet, nil
	case "map":
		return workloadMap, nil
	case "bank":
		return workloadBank, nil
	}
	return 0, fmt.Errorf("snap: unknown workload %q", w)
}

// workloadName maps a header byte back to the workload name.
func workloadName(c uint8) (string, error) {
	switch c {
	case workloadSet:
		return "set", nil
	case workloadMap:
		return "map", nil
	case workloadBank:
		return "bank", nil
	}
	return "", fmt.Errorf("snap: unknown workload code %d", c)
}

// IsChunk reports whether payload is a snapshot chunk (begins with the
// snapshot magic). Used by stream readers that interleave snapshot
// chunks with replication entries.
func IsChunk(payload []byte) bool {
	return len(payload) >= 5 && string(payload[:4]) == magic
}

// Writer encodes a snapshot as a chunk stream, handing each complete
// chunk payload to emit. Every payload is freshly allocated: emit may
// retain it (the serving layer queues frames for an asynchronous write
// loop).
type Writer struct {
	emit  func(payload []byte) error
	crc   uint32
	count uint64
	state int // 0 fresh, 1 header sent, 2 ended
}

// NewWriter returns a Writer streaming chunks to emit.
func NewWriter(emit func(payload []byte) error) *Writer {
	return &Writer{emit: emit}
}

// Header emits the header chunk. Must be called exactly once, first.
func (w *Writer) Header(workload string, keys, seq uint64, shards int) error {
	if w.state != 0 {
		return fmt.Errorf("snap: header chunk out of order")
	}
	code, err := workloadCode(workload)
	if err != nil {
		return err
	}
	if shards < 1 || shards > int(^uint16(0)) {
		return fmt.Errorf("snap: %d shards outside uint16", shards)
	}
	p := make([]byte, 0, headerLen)
	p = append(p, magic...)
	p = append(p, chunkHeader, Version, code)
	p = binary.BigEndian.AppendUint64(p, keys)
	p = binary.BigEndian.AppendUint64(p, seq)
	p = binary.BigEndian.AppendUint16(p, uint16(shards))
	w.state = 1
	return w.emit(p)
}

// Items emits the items of one source shard, split into chunks of at
// most MaxChunkItems pairs.
func (w *Writer) Items(shard int, items []Item) error {
	if w.state != 1 {
		return fmt.Errorf("snap: items chunk out of order")
	}
	for len(items) > 0 {
		n := len(items)
		if n > MaxChunkItems {
			n = MaxChunkItems
		}
		p := make([]byte, 0, 4+1+2+2+n*itemBytes)
		p = append(p, magic...)
		p = append(p, chunkItems)
		p = binary.BigEndian.AppendUint16(p, uint16(shard))
		p = binary.BigEndian.AppendUint16(p, uint16(n))
		for _, it := range items[:n] {
			p = binary.BigEndian.AppendUint64(p, it.Key)
			p = binary.BigEndian.AppendUint64(p, it.Val)
		}
		w.crc = crc32.Update(w.crc, crc32.IEEETable, p[9:])
		w.count += uint64(n)
		if err := w.emit(p); err != nil {
			return err
		}
		items = items[n:]
	}
	return nil
}

// End emits the end chunk carrying the running item count and CRC.
func (w *Writer) End() error {
	if w.state != 1 {
		return fmt.Errorf("snap: end chunk out of order")
	}
	p := make([]byte, 0, endLen)
	p = append(p, magic...)
	p = append(p, chunkEnd)
	p = binary.BigEndian.AppendUint64(p, w.count)
	p = binary.BigEndian.AppendUint32(p, w.crc)
	w.state = 2
	return w.emit(p)
}

// Encode streams s through w: header, every shard's items, end.
func Encode(w *Writer, s *Snapshot) error {
	if err := w.Header(s.Workload, s.Keys, s.Seq, len(s.Shards)); err != nil {
		return err
	}
	for k, items := range s.Shards {
		if err := w.Items(k, items); err != nil {
			return err
		}
	}
	return w.End()
}

// Reader decodes a chunk stream back into a Snapshot. Feed it chunk
// payloads in stream order; it validates ordering, shard indices, and
// the end chunk's count and CRC.
type Reader struct {
	s     *Snapshot
	crc   uint32
	count uint64
	done  bool
}

// NewReader returns a Reader awaiting a header chunk.
func NewReader() *Reader { return &Reader{} }

// Feed consumes one chunk payload. It returns done=true once the end
// chunk has validated; Snapshot may then be called. Feeding a malformed
// or out-of-order chunk returns an error and poisons nothing — the
// caller abandons the stream.
func (r *Reader) Feed(payload []byte) (done bool, err error) {
	if r.done {
		return true, fmt.Errorf("snap: chunk after end chunk")
	}
	if !IsChunk(payload) {
		return false, fmt.Errorf("snap: payload without snapshot magic")
	}
	switch payload[4] {
	case chunkHeader:
		if r.s != nil {
			return false, fmt.Errorf("snap: duplicate header chunk")
		}
		if len(payload) != headerLen {
			return false, fmt.Errorf("snap: header chunk of %d bytes, want %d", len(payload), headerLen)
		}
		if v := payload[5]; v != Version {
			return false, fmt.Errorf("snap: snapshot version %d, reader speaks %d", v, Version)
		}
		w, err := workloadName(payload[6])
		if err != nil {
			return false, err
		}
		shards := int(binary.BigEndian.Uint16(payload[23:]))
		if shards < 1 {
			return false, fmt.Errorf("snap: header declares 0 shards")
		}
		r.s = &Snapshot{
			Workload: w,
			Keys:     binary.BigEndian.Uint64(payload[7:]),
			Seq:      binary.BigEndian.Uint64(payload[15:]),
			Shards:   make([][]Item, shards),
		}
		return false, nil
	case chunkItems:
		if r.s == nil {
			return false, fmt.Errorf("snap: items chunk before header")
		}
		if len(payload) < 9 {
			return false, fmt.Errorf("snap: truncated items chunk (%d bytes)", len(payload))
		}
		shard := int(binary.BigEndian.Uint16(payload[5:]))
		n := int(binary.BigEndian.Uint16(payload[7:]))
		if shard >= len(r.s.Shards) {
			return false, fmt.Errorf("snap: items chunk for shard %d of %d", shard, len(r.s.Shards))
		}
		if n == 0 || n > MaxChunkItems {
			return false, fmt.Errorf("snap: items chunk of %d pairs outside [1,%d]", n, MaxChunkItems)
		}
		body := payload[9:]
		if len(body) != n*itemBytes {
			return false, fmt.Errorf("snap: items chunk body of %d bytes, want %d", len(body), n*itemBytes)
		}
		r.crc = crc32.Update(r.crc, crc32.IEEETable, body)
		r.count += uint64(n)
		items := r.s.Shards[shard]
		for i := 0; i < n; i++ {
			items = append(items, Item{
				Key: binary.BigEndian.Uint64(body[i*itemBytes:]),
				Val: binary.BigEndian.Uint64(body[i*itemBytes+8:]),
			})
		}
		r.s.Shards[shard] = items
		return false, nil
	case chunkEnd:
		if r.s == nil {
			return false, fmt.Errorf("snap: end chunk before header")
		}
		if len(payload) != endLen {
			return false, fmt.Errorf("snap: end chunk of %d bytes, want %d", len(payload), endLen)
		}
		count := binary.BigEndian.Uint64(payload[5:])
		crc := binary.BigEndian.Uint32(payload[13:])
		if count != r.count {
			return false, fmt.Errorf("snap: end chunk declares %d items, stream carried %d", count, r.count)
		}
		if crc != r.crc {
			return false, fmt.Errorf("snap: snapshot CRC mismatch")
		}
		r.done = true
		return true, nil
	}
	return false, fmt.Errorf("snap: unknown chunk type %d", payload[4])
}

// Snapshot returns the decoded snapshot after Feed reported done.
func (r *Reader) Snapshot() (*Snapshot, error) {
	if !r.done {
		return nil, fmt.Errorf("snap: snapshot stream incomplete")
	}
	return r.s, nil
}

// WriteFile persists s at path atomically (tmp + rename + sync). The
// file is the chunk stream with each chunk as a `u32 len | payload`
// record; integrity rides on the end chunk's count and CRC.
func WriteFile(path string, s *Snapshot) error {
	tmp, err := os.CreateTemp(filepath.Dir(path), ".rtle-snap-*")
	if err != nil {
		return err
	}
	w := NewWriter(func(payload []byte) error {
		var hdr [4]byte
		binary.BigEndian.PutUint32(hdr[:], uint32(len(payload)))
		if _, err := tmp.Write(hdr[:]); err != nil {
			return err
		}
		_, err := tmp.Write(payload)
		return err
	})
	werr := Encode(w, s)
	if werr == nil {
		werr = tmp.Sync()
	}
	if cerr := tmp.Close(); werr == nil {
		werr = cerr
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), path)
	}
	if werr != nil {
		_ = os.Remove(tmp.Name())
		return werr
	}
	return nil
}

// ReadFile loads the snapshot at path. A missing file returns (nil, nil)
// — the boot path treats that as "no snapshot yet". Any torn or corrupt
// file is an error: unlike the replication log, a snapshot has no usable
// prefix.
func ReadFile(path string) (*Snapshot, error) {
	f, err := os.Open(path)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	defer f.Close()
	r := NewReader()
	var hdr [4]byte
	for {
		if _, err := io.ReadFull(f, hdr[:]); err != nil {
			return nil, fmt.Errorf("snap: %s: truncated snapshot file", path)
		}
		n := binary.BigEndian.Uint32(hdr[:])
		const maxChunk = 16 + MaxChunkItems*itemBytes
		if n < 5 || n > maxChunk {
			return nil, fmt.Errorf("snap: %s: corrupt chunk length %d", path, n)
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(f, payload); err != nil {
			return nil, fmt.Errorf("snap: %s: truncated snapshot file", path)
		}
		done, err := r.Feed(payload)
		if err != nil {
			return nil, fmt.Errorf("snap: %s: %w", path, err)
		}
		if done {
			return r.Snapshot()
		}
	}
}
