package guard

import (
	"time"

	"rtle/internal/core"
	"rtle/internal/htm"
	"rtle/internal/mem"
	"rtle/internal/spinlock"
)

// Mutex is a sync.Mutex-shaped elision guard backed by plain TLE. Do runs
// a critical section speculatively with the lock word subscribed, falling
// back to the real lock after the attempt budget (or while the guard is
// in retreat). Lock/Unlock bracket a pessimistic section under the real
// lock; speculating Do sections abort the moment a bracket section
// acquires it, so the two forms compose soundly.
//
// Create with NewMutex; the zero value is not usable.
type Mutex struct {
	base
	lock *spinlock.Lock

	// Bracket state, written only by the lock holder while it holds the
	// lock (the spinlock's atomics order these writes between successive
	// holders, as with any lock-protected field).
	holder    *gthread
	holdT0    int64
	holdStart time.Time
}

// NewMutex returns a TLE-backed guard whose lock lives on its own cache
// line of m.
func NewMutex(m *mem.Memory, cfg Config) *Mutex {
	g := &Mutex{}
	g.base.init(m, "Guard(TLE)", cfg)
	g.lock = spinlock.New(m)
	return g
}

// LockAddr returns the lock word's address (for tests and subscription
// diagnostics).
func (g *Mutex) LockAddr() mem.Addr { return g.lock.Addr() }

// Do runs body as one atomic section, eliding the lock when it can: the
// paper's TLE loop with the guard's retreat gate in front. body must
// access shared data only through the Context and must be re-executable
// (it can run several times before one run commits).
func (g *Mutex) Do(body func(core.Context)) {
	t := g.get()
	defer g.put(t)
	t0 := t.rec.Begin()
	if !g.retreat.speculate(t) {
		g.lockRun(t, body)
		t.rec.LockCommit(t0)
		return
	}
	attempts := 0
	budget := t.attempts.Budget()
	for {
		// Anti-lemming [16]: do not start a transaction doomed to fail
		// its subscription.
		if g.lock.Held() {
			g.lock.WaitUntilFree()
		}
		if attempts >= budget {
			g.lockRun(t, body)
			t.rec.LockCommit(t0)
			t.attempts.Record(attempts, false)
			g.retreat.record(t, attempts, attempts)
			return
		}
		t.lockBusy = false
		t.rec.FastAttempt()
		reason := t.tx.Run(func(tx *htm.Tx) {
			g.subscribe(t, tx)
			body(core.HTMContext(tx))
		})
		if reason == htm.None {
			t.rec.FastCommit(t0)
			t.attempts.Record(attempts, true)
			g.retreat.record(t, attempts, attempts+1)
			return
		}
		t.rec.FastAbort(reason, t.lockBusy, t.tx.LastAbortInjected())
		attempts++
	}
}

// subscribe reads the lock word inside the transaction, adding it to the
// read set so a later acquisition aborts this attempt; if the lock is
// already held the attempt self-aborts immediately.
//
//rtle:speculative
func (g *Mutex) subscribe(t *gthread, tx *htm.Tx) {
	if tx.Read(g.lock.Addr()) != 0 {
		t.lockBusy = true
		tx.Abort()
	}
}

// lockRun is Do's pessimistic fallback: the uninstrumented critical
// section under the real lock.
//
//rtle:lockpath
func (g *Mutex) lockRun(t *gthread, body func(core.Context)) {
	g.lock.Acquire()
	t.rec.LockAcquired()
	start := time.Now()
	body(core.LockContext(g.m, t.pacer))
	t.rec.LockHold(time.Since(start).Nanoseconds())
	g.lock.Release()
}

// Lock acquires the guard pessimistically, as sync.Mutex.Lock would. A
// bracket section cannot elide — Go cannot re-execute the code between
// Lock and Unlock after an abort — so it always takes the lock, which in
// turn aborts every speculating Do section via their subscriptions.
// Access shared data through Ctx between Lock and Unlock.
//
//rtle:lockpath
func (g *Mutex) Lock() {
	t := g.get()
	g.lock.Acquire()
	t.rec.LockAcquired()
	g.holder = t
	g.holdT0 = t.rec.Begin()
	g.holdStart = time.Now()
}

// Unlock releases a Lock-acquired guard.
//
//rtle:lockpath
func (g *Mutex) Unlock() {
	t := g.holder
	if t == nil {
		panic("guard: Unlock of unlocked Mutex")
	}
	g.holder = nil
	t.rec.LockHold(time.Since(g.holdStart).Nanoseconds())
	t.rec.LockCommit(g.holdT0)
	g.lock.Release()
	g.put(t)
}

// Ctx returns the Context a bracket section accesses shared data through.
// It must only be used between Lock and Unlock.
func (g *Mutex) Ctx() core.Context {
	t := g.holder
	if t == nil {
		panic("guard: Mutex.Ctx outside Lock/Unlock")
	}
	return core.LockContext(g.m, t.pacer)
}
