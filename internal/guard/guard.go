// Package guard implements the sync-shaped elision guards behind
// rtle.Mutex and rtle.RWMutex: lock APIs ordinary Go code can adopt
// without building a Method + Thread pair or restructuring workers around
// fixed thread identity.
//
// A guard is a lock in simulated memory plus the TLE control flow around
// it. The closure forms Do and RDo are the elidable entry points: they run
// the critical section as a hardware transaction with the lock word
// subscribed, retry up to the attempt budget, and fall back to really
// acquiring the lock — exactly the paper's Figure 1 loop (and, for
// RWMutex, the §3 RW-TLE refinement with its write flag). The bracket
// forms Lock/Unlock and RLock/RUnlock are deliberately pessimistic: Go
// cannot re-execute the straight-line code between two method calls after
// an abort, so a bracket section always takes the real lock and instead
// *interoperates* with elision — speculating Do sections subscribe to the
// words the brackets mutate and abort when a bracket section enters.
//
// Guards differ from Threads in two ways that matter to callers:
//
//   - Identity-free: any goroutine may call any method at any time. Each
//     Do borrows per-execution state (transaction, attempt policy,
//     recorder) from a sync.Pool keyed to the guard, so the hot path
//     stays allocation-free without requiring per-worker handles.
//   - Abort-rate-aware retreat: beyond the per-block attempt budget, a
//     guard watches its recent abort rate and, when speculation is
//     persistently futile, retreats to the pessimistic path for a
//     (backoff-doubled) span of operations before probing again. Mode
//     changes surface as Stats.ModeSwitches.
//
// Accounting flows through the same core.Recorder plumbing as the nine
// methods, so guard sections feed Stats, live Observers, and
// fault.Director injection identically.
package guard

import (
	"sync"

	"rtle/internal/core"
	"rtle/internal/htm"
	"rtle/internal/mem"
)

// Config assembles a guard. The zero value of Policy and Retreat are
// usable defaults; Memory must be non-nil (the root package's
// constructors always supply it).
type Config struct {
	// Policy carries the speculation knobs shared with the Method
	// constructors: attempt budget, adaptive attempts, lazy subscription
	// (RWMutex only), observer, HTM configuration, and the lock fault
	// hook a fault.Director installs.
	Policy core.Policy
	// Retreat tunes the per-guard abort-rate-aware retreat.
	Retreat RetreatConfig
}

// gthread is the per-execution state a guard lends to whichever goroutine
// is currently inside one of its sections: a hardware transaction, a
// pacer, an attempt policy, and a recorder. It is the guard-layer
// equivalent of a Thread, minus the fixed goroutine identity.
type gthread struct {
	tx       *htm.Tx
	pacer    *core.Pacer
	attempts core.AttemptPolicy
	rec      core.Recorder

	lockBusy bool // subscription check saw the lock held
}

// base holds the machinery shared by Mutex and RWMutex.
type base struct {
	m       *mem.Memory
	policy  core.Policy
	name    string // observer/method label, e.g. "Guard(TLE)"
	retreat retreat

	pool sync.Pool // of *gthread

	mu      sync.Mutex
	threads []*gthread    // every gthread ever created, for Stats
	brec    core.Recorder // accounting for shared-bracket (RLock) sections
}

// init wires the pool and the bracket recorder. Single-threaded
// constructor use only.
//
//rtle:init
func (b *base) init(m *mem.Memory, name string, cfg Config) {
	if m == nil {
		panic("guard: nil Memory")
	}
	b.m = m
	b.policy = cfg.Policy
	b.name = name
	b.retreat.init(cfg.Retreat)
	b.brec = core.NewRecorder(cfg.Policy, name)
	b.pool.New = func() any { return b.newThread() }
}

// newThread builds and registers one gthread.
func (b *base) newThread() *gthread {
	t := &gthread{
		tx:       htm.NewTx(b.m, b.policy.HTM),
		pacer:    &core.Pacer{Every: b.policy.HTM.InterleaveEvery},
		attempts: core.AttemptPolicyFor(b.policy),
		rec:      core.NewRecorder(b.policy, b.name),
	}
	b.mu.Lock()
	b.threads = append(b.threads, t)
	b.mu.Unlock()
	return t
}

// get borrows per-execution state for the calling goroutine.
func (b *base) get() *gthread { return b.pool.Get().(*gthread) }

// put returns borrowed state to the cache. The gthread stays registered
// either way, so its counters survive a pool drop.
func (b *base) put(t *gthread) { b.pool.Put(t) }

// Memory returns the simulated heap the guard's lock lives in; data the
// guard protects must be allocated here.
func (b *base) Memory() *mem.Memory { return b.m }

// Name returns the guard's observer label.
func (b *base) Name() string { return b.name }

// Stats merges the counters of every execution the guard has served. Like
// Thread.Stats, the result is only coherent while no section is running
// (read-after-quiesce).
func (b *base) Stats() core.Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	var s core.Stats
	for _, t := range b.threads {
		s.Merge(t.rec.Stats())
	}
	s.Merge(b.brec.Stats())
	return s
}
