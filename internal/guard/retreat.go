package guard

import "sync/atomic"

// RetreatConfig tunes a guard's abort-rate-aware retreat. The attempt
// budget bounds retries *within* one atomic block; retreat works across
// blocks: when a decision window shows speculation mostly aborting, the
// guard stops speculating entirely for a span of operations, doubling the
// span while the contention persists and shrinking it while windows stay
// healthy. This is the guard-level analogue of the adaptive integration
// policies the paper cites as orthogonal work (§2, [12][13]), keyed to
// the observed abort *rate* rather than a per-block attempt count.
type RetreatConfig struct {
	// Window is the number of fast/slow attempts per decision window
	// (default 128).
	Window int
	// AbortFraction is the windowed abort fraction (in percent, so the
	// config stays integral) at or above which the guard retreats.
	// Default 70.
	AbortFraction int
	// MinPause and MaxPause bound the pessimistic span, in operations
	// (defaults 64 and 4096). Each consecutive retreat doubles the span
	// up to MaxPause; healthy windows halve it down to MinPause.
	MinPause, MaxPause int
	// Disable turns retreat off (the per-block attempt budget still
	// applies).
	Disable bool
}

func (c RetreatConfig) withDefaults() RetreatConfig {
	if c.Window <= 0 {
		c.Window = 128
	}
	if c.AbortFraction <= 0 {
		c.AbortFraction = 70
	}
	if c.MinPause <= 0 {
		c.MinPause = 64
	}
	if c.MaxPause < c.MinPause {
		c.MaxPause = 4096
		if c.MaxPause < c.MinPause {
			c.MaxPause = c.MinPause
		}
	}
	return c
}

// retreat is the windowed abort-rate controller. All fields are atomics:
// any goroutine inside the guard may tick it, and the occasional lost
// update only perturbs a heuristic, never correctness.
type retreat struct {
	cfg RetreatConfig

	attempts  atomic.Int64 // window attempt count
	aborts    atomic.Int64 // window abort count
	pause     atomic.Int64 // current retreat span (ops)
	remaining atomic.Int64 // >0: pessimistic ops left in the current retreat
}

//rtle:init
func (r *retreat) init(cfg RetreatConfig) {
	r.cfg = cfg.withDefaults()
	r.pause.Store(int64(r.cfg.MinPause))
}

// speculate reports whether the next block may attempt elision, consuming
// one pessimistic operation when the guard is in retreat. The operation
// that drains the retreat records the mode switch back to speculation.
func (r *retreat) speculate(t *gthread) bool {
	if r.cfg.Disable {
		return true
	}
	for {
		left := r.remaining.Load()
		if left <= 0 {
			return true
		}
		if r.remaining.CompareAndSwap(left, left-1) {
			if left == 1 {
				t.rec.ModeSwitch()
			}
			return false
		}
	}
}

// record feeds one finished block's attempt/abort counts into the current
// window and, at window boundaries, decides whether to retreat. aborted is
// the number of aborted attempts, total the number made.
func (r *retreat) record(t *gthread, aborted, total int) {
	if r.cfg.Disable || total == 0 {
		return
	}
	r.aborts.Add(int64(aborted))
	n := r.attempts.Add(int64(total))
	if n < int64(r.cfg.Window) {
		return
	}
	// One goroutine wins the reset and applies the window's verdict; the
	// losers' counts fold into the next window.
	if !r.attempts.CompareAndSwap(n, 0) {
		return
	}
	a := r.aborts.Swap(0)
	pause := r.pause.Load()
	if a*100 >= n*int64(r.cfg.AbortFraction) {
		// Speculation is mostly wasted work: retreat, and double the
		// span for the next episode.
		r.remaining.Store(pause)
		if next := pause * 2; next <= int64(r.cfg.MaxPause) {
			r.pause.Store(next)
		}
		t.rec.ModeSwitch()
		return
	}
	if next := pause / 2; next >= int64(r.cfg.MinPause) {
		r.pause.Store(next)
	}
}
