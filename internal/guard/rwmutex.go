package guard

import (
	"runtime"
	"time"

	"rtle/internal/core"
	"rtle/internal/htm"
	"rtle/internal/mem"
	"rtle/internal/spinlock"
)

// RWMutex is a sync.RWMutex-shaped elision guard backed by the RW-TLE
// refinement (§3). Its lock state lives in simulated memory as two cache
// lines:
//
//	line 1: [writer lock word | write flag]   (deliberately co-located)
//	line 2: [reader count]
//
// Do (write section) speculates with both the writer word and the reader
// count subscribed, so a bracket writer *or* a bracket reader entering
// aborts it. RDo (read section) speculates with only the writer word
// subscribed while the lock is free; while a bracket/fallback writer
// holds the lock, RDo switches to the RW-TLE slow path — subscribe the
// write flag, run the body read-only, commit concurrently with the lock
// holder until its first write raises the flag. The flag shares the
// writer word's line so the release store also aborts slow-path
// subscribers: the eager switch back to the fast path (§6.3).
//
// The bracket forms are a real reader-writer lock: RLock/RUnlock keep a
// reader count writers wait out; Lock/Unlock is the writer acquisition
// whose Ctx raises the write flag on its first write, exactly like the
// RW-TLE lock path. Bracket sections never elide (Go cannot re-execute
// code between two calls after an abort); they interoperate with
// speculation through the subscriptions above.
//
// Create with NewRWMutex; the zero value is not usable.
type RWMutex struct {
	base
	wlock       *spinlock.Lock
	flagAddr    mem.Addr //rtle:meta
	readersAddr mem.Addr

	// Writer-bracket state, written only by the writer-lock holder.
	holder    *gthread
	holdT0    int64
	holdStart time.Time
	wrote     bool //rtle:meta write flag raised during the current section

	// Bracket-reader start times (base.mu-guarded), paired LIFO.
	rstarts []int64
}

// NewRWMutex returns an RW-TLE-backed guard over m.
func NewRWMutex(m *mem.Memory, cfg Config) *RWMutex {
	g := &RWMutex{}
	g.base.init(m, "Guard(RW-TLE)", cfg)
	line := m.AllocLines(1)
	g.wlock = spinlock.NewAt(m, line)
	g.flagAddr = line + 1
	g.readersAddr = m.AllocLines(1)
	return g
}

// LockAddr returns the writer lock word's address (for tests).
func (g *RWMutex) LockAddr() mem.Addr { return g.wlock.Addr() }

// FlagAddr returns the write-flag address (for tests).
func (g *RWMutex) FlagAddr() mem.Addr { return g.flagAddr }

// Readers returns the current bracket-reader count (a racy probe, for
// tests and diagnostics).
func (g *RWMutex) Readers() uint64 { return g.m.Load(g.readersAddr) }

// Do runs body as one atomic write section, eliding the writer lock when
// it can. body must access shared data only through the Context and must
// be re-executable.
func (g *RWMutex) Do(body func(core.Context)) {
	t := g.get()
	defer g.put(t)
	t0 := t.rec.Begin()
	if !g.retreat.speculate(t) {
		g.wlockRun(t, body)
		t.rec.LockCommit(t0)
		return
	}
	attempts := 0
	budget := t.attempts.Budget()
	for {
		if g.wlock.Held() {
			g.wlock.WaitUntilFree()
		}
		if attempts >= budget {
			g.wlockRun(t, body)
			t.rec.LockCommit(t0)
			t.attempts.Record(attempts, false)
			g.retreat.record(t, attempts, attempts)
			return
		}
		t.lockBusy = false
		t.rec.FastAttempt()
		reason := t.tx.Run(func(tx *htm.Tx) {
			g.subscribeWriter(t, tx)
			body(core.HTMContext(tx))
		})
		if reason == htm.None {
			t.rec.FastCommit(t0)
			t.attempts.Record(attempts, true)
			g.retreat.record(t, attempts, attempts+1)
			return
		}
		t.rec.FastAbort(reason, t.lockBusy, t.tx.LastAbortInjected())
		attempts++
	}
}

// RDo runs body as one atomic read-only section. While the writer lock is
// free it speculates exactly like Do (minus the reader-count
// subscription: concurrent readers do not conflict); while a writer holds
// the lock it runs the RW-TLE slow path, committing concurrently with the
// lock holder until the write flag rises. After the attempt budget it
// falls back to a bracket reader acquisition, preserving reader-reader
// concurrency even in the fallback. A body that calls Context.Write
// aborts its speculative attempts and panics on the fallback path.
func (g *RWMutex) RDo(body func(core.Context)) {
	t := g.get()
	defer g.put(t)
	t0 := t.rec.Begin()
	if !g.retreat.speculate(t) {
		g.rlockRun(t, body)
		t.rec.LockCommit(t0)
		return
	}
	attempts := 0
	budget := t.attempts.Budget()
	backoff := 1
	for {
		if attempts >= budget {
			g.rlockRun(t, body)
			t.rec.LockCommit(t0)
			t.attempts.Record(attempts, false)
			g.retreat.record(t, attempts, attempts)
			return
		}
		if g.wlock.Held() {
			t.rec.SlowAttempt()
			reason := g.runSlow(t, body)
			if reason == htm.None {
				t.rec.SlowCommit(t0)
				t.attempts.Record(attempts, true)
				g.retreat.record(t, attempts, attempts+1)
				return
			}
			t.rec.SlowAbort(reason, t.tx.LastAbortInjected())
			// A slow-path abort usually means a conflict with the lock
			// holder that persists until its section retires.
			spinBackoff(&backoff)
			attempts++
			continue
		}
		backoff = 1
		t.lockBusy = false
		t.rec.FastAttempt()
		reason := t.tx.Run(func(tx *htm.Tx) {
			g.subscribeRead(t, tx)
			body(core.HTMContext(tx))
		})
		if reason == htm.None {
			t.rec.FastCommit(t0)
			t.attempts.Record(attempts, true)
			g.retreat.record(t, attempts, attempts+1)
			return
		}
		t.rec.FastAbort(reason, t.lockBusy, t.tx.LastAbortInjected())
		attempts++
	}
}

// subscribeWriter adds the writer word and the reader count to the read
// set: a write section conflicts with bracket writers and bracket
// readers alike.
//
//rtle:speculative
func (g *RWMutex) subscribeWriter(t *gthread, tx *htm.Tx) {
	if tx.Read(g.wlock.Addr()) != 0 {
		t.lockBusy = true
		tx.Abort()
	}
	if tx.Read(g.readersAddr) != 0 {
		tx.Abort()
	}
}

// subscribeRead adds only the writer word: concurrent readers — bracket
// or speculative — do not conflict with a read-only section.
//
//rtle:speculative
func (g *RWMutex) subscribeRead(t *gthread, tx *htm.Tx) {
	if tx.Read(g.wlock.Addr()) != 0 {
		t.lockBusy = true
		tx.Abort()
	}
}

// runSlow is one instrumented RW-TLE slow-path attempt: subscribe the
// write flag (abort if already raised), run the body with the aborting
// write barrier, optionally subscribe the writer word lazily (§5).
//
//rtle:slowpath
func (g *RWMutex) runSlow(t *gthread, body func(core.Context)) htm.AbortReason {
	return t.tx.Run(func(tx *htm.Tx) {
		if tx.Read(g.flagAddr) != 0 {
			tx.Abort()
		}
		body(rSlowCtx{tx})
		if g.policy.LazySubscription && tx.Read(g.wlock.Addr()) != 0 {
			tx.Abort()
		}
	})
}

// wlockRun is Do's pessimistic fallback: acquire the writer lock, wait
// out the bracket readers, and run the instrumented lock path whose first
// write raises the flag.
//
//rtle:lockpath
func (g *RWMutex) wlockRun(t *gthread, body func(core.Context)) {
	g.acquireWriter()
	t.rec.LockAcquired()
	start := time.Now()
	g.wrote = false
	body(wLockCtx{g, t.pacer})
	if g.wrote {
		g.m.Store(g.flagAddr, 0)
	}
	t.rec.LockHold(time.Since(start).Nanoseconds())
	g.wlock.Release()
}

// rlockRun is RDo's pessimistic fallback: a bracket-reader acquisition
// around the uninstrumented read-only path.
func (g *RWMutex) rlockRun(t *gthread, body func(core.Context)) {
	g.acquireReader()
	body(rDirectCtx{g.m, t.pacer})
	g.releaseReader()
}

// acquireWriter takes the writer lock and waits until the bracket-reader
// count drains. New readers cannot enter once the writer word is held
// (RLock re-checks it after incrementing), so the wait is bounded by the
// sections already in flight.
//
//rtle:lockpath
func (g *RWMutex) acquireWriter() {
	g.wlock.Acquire()
	for spins := 0; g.m.Load(g.readersAddr) != 0; spins++ {
		if spins%8 == 7 {
			runtime.Gosched()
		}
	}
}

// acquireReader performs the bracket-reader entry protocol: announce by
// incrementing the count, then re-check the writer word; if a writer got
// in first, withdraw and retry.
func (g *RWMutex) acquireReader() {
	for {
		g.wlock.WaitUntilFree()
		g.m.FetchAdd(g.readersAddr, 1)
		if !g.wlock.Held() {
			return
		}
		g.m.FetchAdd(g.readersAddr, ^uint64(0))
		runtime.Gosched()
	}
}

// releaseReader undoes acquireReader.
func (g *RWMutex) releaseReader() {
	g.m.FetchAdd(g.readersAddr, ^uint64(0))
}

// Lock acquires the guard as a pessimistic writer: it takes the writer
// lock and waits out the bracket readers, aborting every speculating
// section via their subscriptions. Access shared data through Ctx; its
// first Write raises the write flag, exactly like the RW-TLE lock path,
// so concurrent slow-path readers stay sound.
//
//rtle:lockpath
func (g *RWMutex) Lock() {
	t := g.get()
	g.acquireWriter()
	t.rec.LockAcquired()
	g.holder = t
	g.holdT0 = t.rec.Begin()
	g.holdStart = time.Now()
	g.wrote = false
}

// Unlock releases a Lock-acquired guard, lowering the write flag if the
// section raised it.
//
//rtle:lockpath
func (g *RWMutex) Unlock() {
	t := g.holder
	if t == nil {
		panic("guard: Unlock of unlocked RWMutex")
	}
	g.holder = nil
	if g.wrote {
		g.m.Store(g.flagAddr, 0)
	}
	t.rec.LockHold(time.Since(g.holdStart).Nanoseconds())
	t.rec.LockCommit(g.holdT0)
	g.wlock.Release()
	g.put(t)
}

// Ctx returns the writer-bracket Context. It must only be used between
// Lock and Unlock.
func (g *RWMutex) Ctx() core.Context {
	t := g.holder
	if t == nil {
		panic("guard: RWMutex.Ctx outside Lock/Unlock")
	}
	return wLockCtx{g, t.pacer}
}

// RLock acquires the guard as a bracket reader. Reader sections run
// concurrently with each other and with speculative RDo sections; they
// conflict (by design) with writers, bracket and speculative alike.
// Access shared data through RCtx between RLock and RUnlock.
func (g *RWMutex) RLock() {
	g.acquireReader()
	// Bracket readers are anonymous (no per-section state survives
	// RLock→RUnlock), so they account through the shared bracket
	// recorder under the guard's mutex; start times pair up LIFO, which
	// is exact for nested sections and approximate for overlapping ones.
	g.mu.Lock()
	g.rstarts = append(g.rstarts, g.brec.Begin())
	g.mu.Unlock()
}

// RUnlock releases an RLock-acquired guard and retires the section.
func (g *RWMutex) RUnlock() {
	g.mu.Lock()
	n := len(g.rstarts)
	if n == 0 {
		g.mu.Unlock()
		panic("guard: RUnlock of RLock-free RWMutex")
	}
	t0 := g.rstarts[n-1]
	g.rstarts = g.rstarts[:n-1]
	g.brec.LockCommit(t0)
	g.mu.Unlock()
	g.releaseReader()
}

// RCtx returns the read-only Context bracket-reader sections access
// shared data through. Its Write panics: read sections do not write.
func (g *RWMutex) RCtx() core.Context {
	return rDirectCtx{g.m, nil}
}

// rSlowCtx is the instrumented RW-TLE slow path: reads are transactional
// loads; any write self-aborts (Figure 2, line 2).
type rSlowCtx struct {
	tx *htm.Tx
}

//rtle:slowpath
func (c rSlowCtx) Read(a mem.Addr) uint64 { return c.tx.Read(a) }

//rtle:slowpath
func (c rSlowCtx) Write(a mem.Addr, v uint64) { c.tx.Abort() }
func (c rSlowCtx) InHTM() bool                { return true }
func (c rSlowCtx) Unsupported()               { c.tx.Unsupported() }

// rDirectCtx is the pessimistic read-only path: plain loads under a
// bracket-reader acquisition. Writes are an API misuse and panic rather
// than silently corrupting reader-concurrent state.
type rDirectCtx struct {
	m *mem.Memory
	p *core.Pacer // nil for bracket sections (no borrowed state)
}

func (c rDirectCtx) Read(a mem.Addr) uint64 {
	if c.p != nil {
		c.p.Tick()
	}
	return c.m.Load(a)
}

func (c rDirectCtx) Write(a mem.Addr, v uint64) {
	panic("guard: Write inside a read-only RWMutex section")
}

func (c rDirectCtx) InHTM() bool  { return false }
func (c rDirectCtx) Unsupported() {}

// wLockCtx is the instrumented writer path: the first write raises the
// write flag before touching data (Figure 2, lines 3–4).
type wLockCtx struct {
	g *RWMutex
	p *core.Pacer
}

//rtle:lockpath
func (c wLockCtx) Read(a mem.Addr) uint64 {
	c.p.Tick()
	return c.g.m.Load(a)
}

//rtle:lockpath
func (c wLockCtx) Write(a mem.Addr, v uint64) {
	c.p.Tick()
	if !c.g.wrote {
		c.g.m.Store(c.g.flagAddr, 1)
		c.g.wrote = true
	}
	c.g.m.Store(a, v)
}

func (c wLockCtx) InHTM() bool  { return false }
func (c wLockCtx) Unsupported() {}

// spinBackoff burns a short, exponentially growing number of iterations
// and yields, keeping slow-path retry storms polite under GOMAXPROCS=1.
func spinBackoff(backoff *int) {
	for i := 0; i < *backoff; i++ {
		if i%16 == 15 {
			runtime.Gosched()
		}
	}
	runtime.Gosched()
	if *backoff < 256 {
		*backoff <<= 1
	}
}
