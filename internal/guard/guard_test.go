package guard

import (
	"sync"
	"testing"

	"rtle/internal/core"
	"rtle/internal/htm"
	"rtle/internal/mem"
)

func newHeap() *mem.Memory { return mem.New(1 << 16) }

// TestMutexDoCounter hammers one counter through Do from many goroutines
// and checks the total and the Stats accounting.
func TestMutexDoCounter(t *testing.T) {
	m := newHeap()
	g := NewMutex(m, Config{Policy: core.Policy{HTM: htm.Config{InterleaveEvery: 4}}})
	counter := m.AllocLines(1)

	const goroutines, opsEach = 4, 500
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < opsEach; j++ {
				g.Do(func(c core.Context) {
					c.Write(counter, c.Read(counter)+1)
				})
			}
		}()
	}
	wg.Wait()

	if got := m.Load(counter); got != goroutines*opsEach {
		t.Fatalf("counter = %d, want %d", got, goroutines*opsEach)
	}
	s := g.Stats()
	if s.Ops != goroutines*opsEach {
		t.Fatalf("Stats.Ops = %d, want %d", s.Ops, goroutines*opsEach)
	}
	if s.FastCommits+s.SlowCommits+s.LockRuns != s.Ops {
		t.Fatalf("commit buckets %d+%d+%d do not cover %d ops",
			s.FastCommits, s.SlowCommits, s.LockRuns, s.Ops)
	}
}

// TestMutexBracketForms mixes Do with Lock/Unlock bracket sections.
func TestMutexBracketForms(t *testing.T) {
	m := newHeap()
	g := NewMutex(m, Config{})
	counter := m.AllocLines(1)

	const goroutines, opsEach = 4, 300
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < opsEach; j++ {
				if (id+j)%4 == 0 {
					g.Lock()
					c := g.Ctx()
					c.Write(counter, c.Read(counter)+1)
					g.Unlock()
				} else {
					g.Do(func(c core.Context) {
						c.Write(counter, c.Read(counter)+1)
					})
				}
			}
		}(i)
	}
	wg.Wait()

	if got := m.Load(counter); got != goroutines*opsEach {
		t.Fatalf("counter = %d, want %d", got, goroutines*opsEach)
	}
	if s := g.Stats(); s.Ops != goroutines*opsEach {
		t.Fatalf("Stats.Ops = %d, want %d", s.Ops, goroutines*opsEach)
	}
}

// TestRWMutexMixedForms mixes all four RWMutex forms over a pair of words
// whose invariant (a + b constant) every reader checks.
func TestRWMutexMixedForms(t *testing.T) {
	m := newHeap()
	g := NewRWMutex(m, Config{Policy: core.Policy{HTM: htm.Config{InterleaveEvery: 4}}})
	a := m.AllocLines(1)
	b := m.AllocLines(1)
	const total = 10000
	m.Store(a, total)

	const goroutines, opsEach = 4, 400
	var wg sync.WaitGroup
	bad := make(chan uint64, goroutines*opsEach)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			for j := 0; j < opsEach; j++ {
				switch (id + j) % 4 {
				case 0: // speculative write
					g.Do(func(c core.Context) {
						va := c.Read(a)
						if va > 0 {
							c.Write(a, va-1)
							c.Write(b, c.Read(b)+1)
						}
					})
				case 1: // bracket write
					g.Lock()
					c := g.Ctx()
					va := c.Read(a)
					if va > 0 {
						c.Write(a, va-1)
						c.Write(b, c.Read(b)+1)
					}
					g.Unlock()
				case 2: // speculative read
					g.RDo(func(c core.Context) {
						if sum := c.Read(a) + c.Read(b); sum != total {
							bad <- sum
						}
					})
				default: // bracket read
					g.RLock()
					c := g.RCtx()
					if sum := c.Read(a) + c.Read(b); sum != total {
						bad <- sum
					}
					g.RUnlock()
				}
			}
		}(i)
	}
	wg.Wait()
	close(bad)
	for sum := range bad {
		t.Fatalf("reader observed a+b = %d, want %d", sum, total)
	}
	if sum := m.Load(a) + m.Load(b); sum != total {
		t.Fatalf("final a+b = %d, want %d", sum, total)
	}
	if s := g.Stats(); s.Ops != goroutines*opsEach {
		t.Fatalf("Stats.Ops = %d, want %d", s.Ops, goroutines*opsEach)
	}
}

// TestRWMutexSlowPathUnderWriter checks that RDo sections commit on the
// instrumented slow path while a bracket writer holds the lock but has
// not yet written (the §3 scenario the refinement exists for).
func TestRWMutexSlowPathUnderWriter(t *testing.T) {
	m := newHeap()
	g := NewRWMutex(m, Config{})
	word := m.AllocLines(1)
	m.Store(word, 42)

	g.Lock() // writer in, flag down: slow-path reads may commit
	var got uint64
	g.RDo(func(c core.Context) { got = c.Read(word) })
	if got != 42 {
		t.Fatalf("slow-path read %d, want 42", got)
	}
	s := g.Stats()
	if s.SlowCommits == 0 {
		t.Fatalf("expected a slow-path commit under the writer lock; stats %+v", s)
	}

	// Raise the flag; read-only speculation must now fail over to the
	// bracket-reader fallback... which blocks until Unlock, so check the
	// flag semantics directly instead: the slow attempt aborts.
	g.Ctx().Write(word, 7)
	if m.Load(g.FlagAddr()) == 0 {
		t.Fatal("writer Ctx did not raise the write flag")
	}
	g.Unlock()
	if m.Load(g.FlagAddr()) != 0 {
		t.Fatal("Unlock did not lower the write flag")
	}
	if m.Load(word) != 7 {
		t.Fatalf("word = %d after bracket write, want 7", m.Load(word))
	}
}

// TestRWMutexReadOnlyViolation pins the dynamic misuse checks: a Write in
// an RDo fallback panics, as does unbalanced bracket use.
func TestRWMutexReadOnlyViolation(t *testing.T) {
	m := newHeap()
	g := NewRWMutex(m, Config{})
	word := m.AllocLines(1)

	mustPanic(t, "RCtx Write", func() { g.RCtx().Write(word, 1) })
	mustPanic(t, "Unlock of unlocked", func() { g.Unlock() })
	mustPanic(t, "RUnlock of unlocked", func() { g.RUnlock() })
	mustPanic(t, "Ctx outside Lock", func() { g.Ctx() })

	mg := NewMutex(m, Config{})
	mustPanic(t, "Mutex Unlock of unlocked", func() { mg.Unlock() })
	mustPanic(t, "Mutex Ctx outside Lock", func() { mg.Ctx() })
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatalf("%s did not panic", what)
		}
	}()
	f()
}

// TestRetreatEngages drives a guard whose transactions always abort
// (injected capacity) and checks the retreat controller kicks in: mode
// switches recorded, and operations complete via the lock path anyway.
func TestRetreatEngages(t *testing.T) {
	m := newHeap()
	g := NewMutex(m, Config{
		Policy:  core.Policy{Attempts: 2, HTM: htm.Config{ReadLines: 1, WriteLines: 1}},
		Retreat: RetreatConfig{Window: 16, AbortFraction: 50, MinPause: 8, MaxPause: 64},
	})
	counter := m.AllocLines(1)
	addrs := make([]mem.Addr, 8)
	for i := range addrs {
		addrs[i] = m.AllocLines(1)
	}
	const ops = 400
	for i := 0; i < ops; i++ {
		g.Do(func(c core.Context) {
			// Touch enough lines to blow the 1-line capacity every time.
			var sum uint64
			for _, a := range addrs {
				sum += c.Read(a)
			}
			c.Write(counter, c.Read(counter)+1+sum*0)
		})
	}
	if got := m.Load(counter); got != ops {
		t.Fatalf("counter = %d, want %d", got, ops)
	}
	s := g.Stats()
	if s.ModeSwitches == 0 {
		t.Fatalf("expected retreat mode switches under 100%% aborts; stats %+v", s)
	}
	if s.FastCommits != 0 {
		t.Fatalf("capacity-doomed workload fast-committed %d times", s.FastCommits)
	}
}

// TestRetreatRecovers checks the pause decays back once speculation
// becomes healthy again: after a doomed phase, a friendly phase should
// reach mostly fast commits.
func TestRetreatRecovers(t *testing.T) {
	m := newHeap()
	g := NewMutex(m, Config{
		Policy:  core.Policy{Attempts: 3},
		Retreat: RetreatConfig{Window: 16, AbortFraction: 50, MinPause: 4, MaxPause: 32},
	})
	counter := m.AllocLines(1)
	addrs := make([]mem.Addr, 64)
	for i := range addrs {
		addrs[i] = m.AllocLines(1)
	}
	// Doomed phase: single-line capacity is impossible to respect.
	gDoomed := NewMutex(m, Config{
		Policy:  core.Policy{Attempts: 2, HTM: htm.Config{ReadLines: 1, WriteLines: 1}},
		Retreat: RetreatConfig{Window: 16, AbortFraction: 50, MinPause: 4, MaxPause: 32},
	})
	for i := 0; i < 100; i++ {
		gDoomed.Do(func(c core.Context) {
			for _, a := range addrs[:4] {
				c.Read(a)
			}
		})
	}
	// Friendly phase on the healthy guard: all fast.
	before := g.Stats()
	for i := 0; i < 200; i++ {
		g.Do(func(c core.Context) { c.Write(counter, c.Read(counter)+1) })
	}
	after := g.Stats()
	fast := after.FastCommits - before.FastCommits
	if fast < 190 {
		t.Fatalf("healthy phase fast-committed only %d/200", fast)
	}
}

// TestStatsSurvivePoolDrop checks counters outlive pool eviction: Stats
// merges the registry, not the pool.
func TestStatsSurvivePoolDrop(t *testing.T) {
	m := newHeap()
	g := NewMutex(m, Config{})
	counter := m.AllocLines(1)
	for i := 0; i < 50; i++ {
		g.Do(func(c core.Context) { c.Write(counter, c.Read(counter)+1) })
	}
	// Empty the pool behind the guard's back; the registry keeps refs.
	g.pool.New = nil
	for g.pool.Get() != nil {
	}
	if s := g.Stats(); s.Ops != 50 {
		t.Fatalf("Stats.Ops = %d after pool drain, want 50", s.Ops)
	}
}
