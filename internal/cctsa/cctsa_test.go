package cctsa

import (
	"bytes"
	"testing"
	"testing/quick"

	"rtle/internal/core"
	"rtle/internal/mem"
	"rtle/internal/rng"
)

func TestGenerateGenomeAlphabetAndLength(t *testing.T) {
	r := rng.NewXoshiro256(1)
	g := GenerateGenome(r, 500)
	if len(g) != 500 {
		t.Fatalf("length %d, want 500", len(g))
	}
	for i, b := range g {
		if baseCode[b] == 0xFF {
			t.Fatalf("invalid base %q at %d", b, i)
		}
	}
}

func TestGenerateGenomeDeterministic(t *testing.T) {
	a := GenerateGenome(rng.NewXoshiro256(7), 100)
	b := GenerateGenome(rng.NewXoshiro256(7), 100)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed produced different genomes")
	}
}

func TestSampleReadsCoverage(t *testing.T) {
	r := rng.NewXoshiro256(2)
	g := GenerateGenome(r, 3600)
	reads := SampleReads(r, g, 36, 10, 0)
	if want := 1000; len(reads) != want {
		t.Fatalf("reads = %d, want %d", len(reads), want)
	}
	for _, rd := range reads {
		if len(rd) != 36 {
			t.Fatalf("read length %d, want 36", len(rd))
		}
		if !bytes.Contains(g, rd) {
			t.Fatal("error-free read is not a substring of the genome")
		}
	}
}

func TestSampleReadsWithErrors(t *testing.T) {
	r := rng.NewXoshiro256(3)
	g := GenerateGenome(r, 2000)
	reads := SampleReads(r, g, 36, 20, 0.5)
	mismatched := 0
	for _, rd := range reads {
		if !bytes.Contains(g, rd) {
			mismatched++
		}
	}
	if mismatched == 0 {
		t.Fatal("50% error rate produced no corrupted reads")
	}
}

func TestPackUnpackRoundTrip(t *testing.T) {
	seqs := []string{"ACGT", "AAAA", "TTTT", "GATTACA"}
	for _, s := range seqs {
		v, ok := PackKmer([]byte(s), len(s))
		if !ok {
			t.Fatalf("PackKmer(%q) failed", s)
		}
		if got := string(UnpackKmer(v, len(s))); got != s {
			t.Fatalf("round trip %q -> %q", s, got)
		}
	}
}

func TestPackKmerRejectsInvalid(t *testing.T) {
	if _, ok := PackKmer([]byte("ACGN"), 4); ok {
		t.Fatal("packed a k-mer with an invalid base")
	}
	if _, ok := PackKmer([]byte("AC"), 4); ok {
		t.Fatal("packed a k-mer longer than the sequence")
	}
	if _, ok := PackKmer([]byte("ACGT"), 0); ok {
		t.Fatal("packed k = 0")
	}
	if _, ok := PackKmer(make([]byte, 40), 32); ok {
		t.Fatal("packed k > 31")
	}
}

func TestPackKmerGuardBitDisambiguates(t *testing.T) {
	a, _ := PackKmer([]byte("AA"), 2)
	b, _ := PackKmer([]byte("AAA"), 3)
	if a == b {
		t.Fatal("k-mers of different lengths collide")
	}
	if a == 0 || b == 0 {
		t.Fatal("packed k-mer is 0 (reserved)")
	}
}

func TestExtendRightMatchesRepack(t *testing.T) {
	seq := []byte("ACGTACGTACG")
	k := 5
	v, _ := PackKmer(seq, k)
	for i := 1; i+k <= len(seq); i++ {
		v = ExtendRight(v, k, uint64(baseCode[seq[i+k-1]]))
		want, _ := PackKmer(seq[i:], k)
		if v != want {
			t.Fatalf("ExtendRight diverges from repacking at offset %d", i)
		}
	}
}

func TestExtendLeftMatchesRepack(t *testing.T) {
	seq := []byte("ACGTACGTACG")
	k := 5
	last := len(seq) - k
	v, _ := PackKmer(seq[last:], k)
	for i := last - 1; i >= 0; i-- {
		v = ExtendLeft(v, k, uint64(baseCode[seq[i]]))
		want, _ := PackKmer(seq[i:], k)
		if v != want {
			t.Fatalf("ExtendLeft diverges from repacking at offset %d", i)
		}
	}
}

func TestFirstLastBase(t *testing.T) {
	v, _ := PackKmer([]byte("GAT"), 3)
	if Bases[FirstBase(v, 3)] != 'G' {
		t.Fatal("FirstBase wrong")
	}
	if Bases[LastBase(v)] != 'T' {
		t.Fatal("LastBase wrong")
	}
}

func TestQuickPackRoundTrip(t *testing.T) {
	f := func(raw []byte) bool {
		if len(raw) == 0 {
			return true
		}
		k := len(raw)
		if k > 31 {
			k = 31
		}
		seq := make([]byte, k)
		for i := 0; i < k; i++ {
			seq[i] = Bases[raw[i]&3]
		}
		v, ok := PackKmer(seq, k)
		return ok && bytes.Equal(UnpackKmer(v, k), seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// TestAssemblyReconstructsGenomeExact is the end-to-end correctness test
// with deterministic full coverage: one read per genome position (sliding
// window), so every k-mer is present, the De Bruijn graph of a repeat-free
// genome is a single path, and single-threaded assembly must return the
// genome as exactly one contig.
func TestAssemblyReconstructsGenomeExact(t *testing.T) {
	cfg := Config{GenomeLen: 3000, Threads: 1, Seed: 5}.withDefaults()
	genome := GenerateGenome(rng.NewXoshiro256(cfg.Seed), cfg.GenomeLen)
	var reads [][]byte
	for i := 0; i+cfg.ReadLen <= len(genome); i++ {
		reads = append(reads, genome[i:i+cfg.ReadLen])
	}
	in := &Input{Cfg: cfg, Genome: genome, Reads: reads}
	res := in.RunTransactified(func(m *mem.Memory) core.Method {
		return core.NewLock(m)
	})
	if len(res.Contigs) != 1 {
		t.Fatalf("contigs = %d, want 1 (repeat-free genome, full coverage)", len(res.Contigs))
	}
	if !bytes.Equal(res.Contigs[0], in.Genome) {
		t.Fatalf("assembled contig (len %d) differs from genome (len %d)", len(res.Contigs[0]), len(in.Genome))
	}
}

// TestAssemblyFromSampledReads uses realistic random read sampling: k-mers
// near the genome ends can be uncovered, so assembly may split or trim
// contigs slightly — but every contig must be a genome substring and the
// longest must cover almost everything.
func TestAssemblyFromSampledReads(t *testing.T) {
	cfg := Config{GenomeLen: 3000, Coverage: 50, Threads: 1, Seed: 5}
	in := Prepare(cfg)
	res := in.RunTransactified(func(m *mem.Memory) core.Method {
		return core.NewLock(m)
	})
	if len(res.Contigs) == 0 || len(res.Contigs) > 5 {
		t.Fatalf("contigs = %d, want a handful at coverage 50", len(res.Contigs))
	}
	if res.Longest < cfg.GenomeLen*9/10 {
		t.Fatalf("longest contig %d, want at least 90%% of %d", res.Longest, cfg.GenomeLen)
	}
	for _, c := range res.Contigs {
		if !bytes.Contains(in.Genome, c) {
			t.Fatalf("contig of length %d is not a genome substring", len(c))
		}
	}
}

// TestAssemblyVariantsAgree: original-style and transactified assembly
// must produce identical k-mer tables and equivalent contigs.
func TestAssemblyVariantsAgree(t *testing.T) {
	cfg := Config{GenomeLen: 2000, Coverage: 12, Threads: 2, Seed: 9, Stripes: 64}
	in := Prepare(cfg)
	tx := in.RunTransactified(func(m *mem.Memory) core.Method {
		return core.NewTLE(m, core.Policy{})
	})
	orig := in.RunOriginal()
	if tx.DistinctKmers != orig.DistinctKmers {
		t.Fatalf("distinct k-mers differ: tx %d vs original %d", tx.DistinctKmers, orig.DistinctKmers)
	}
	// Contig boundaries depend on thread races, but the k-mers consumed
	// across all contigs must equal the solid-k-mer population either
	// way (MinCount is 1 here, so every distinct k-mer is solid).
	if tx.KmersInContigs != tx.DistinctKmers {
		t.Fatalf("transactified: %d k-mers in contigs, want %d", tx.KmersInContigs, tx.DistinctKmers)
	}
	if orig.KmersInContigs != orig.DistinctKmers {
		t.Fatalf("original: %d k-mers in contigs, want %d", orig.KmersInContigs, orig.DistinctKmers)
	}
}

// TestAssemblyConcurrentMatchesSequential: multi-threaded counting must
// produce the same table as single-threaded, for every elision method.
func TestAssemblyConcurrentMatchesSequential(t *testing.T) {
	cfg1 := Config{GenomeLen: 1500, Coverage: 10, Seed: 4, Threads: 1}
	base := Prepare(cfg1).RunTransactified(func(m *mem.Memory) core.Method {
		return core.NewLock(m)
	})
	for _, name := range []string{"TLE", "RW-TLE", "FG-TLE"} {
		t.Run(name, func(t *testing.T) {
			cfgN := cfg1
			cfgN.Threads = 4
			in := Prepare(cfgN)
			res := in.RunTransactified(func(m *mem.Memory) core.Method {
				switch name {
				case "TLE":
					return core.NewTLE(m, core.Policy{})
				case "RW-TLE":
					return core.NewRWTLE(m, core.Policy{})
				default:
					return core.NewFGTLE(m, 1024, core.Policy{})
				}
			})
			if res.DistinctKmers != base.DistinctKmers {
				t.Fatalf("distinct k-mers %d, want %d — counts corrupted under %s", res.DistinctKmers, base.DistinctKmers, name)
			}
			if res.KmersInContigs != base.KmersInContigs {
				t.Fatalf("k-mers in contigs %d, want %d — extension lost/duplicated k-mers under %s", res.KmersInContigs, base.KmersInContigs, name)
			}
		})
	}
}

// TestAssemblyWithErrorsFiltersWeakKmers: with sequencing errors and
// MinCount 2+, erroneous k-mers must not enter contigs, and the genome is
// still largely reconstructed.
func TestAssemblyWithErrorsFiltersWeakKmers(t *testing.T) {
	cfg := Config{GenomeLen: 2000, Coverage: 30, ErrorRate: 0.002, MinCount: 3, Threads: 2, Seed: 8}
	in := Prepare(cfg)
	res := in.RunTransactified(func(m *mem.Memory) core.Method {
		return core.NewTLE(m, core.Policy{})
	})
	if res.Longest < cfg.GenomeLen/4 {
		t.Fatalf("longest contig %d too short for a lightly-corrupted genome of %d", res.Longest, cfg.GenomeLen)
	}
	for _, contig := range res.Contigs {
		if len(contig) >= 200 && !bytes.Contains(in.Genome, contig) {
			t.Fatalf("a long contig (len %d) is not a genome substring — error k-mers leaked through", len(contig))
		}
	}
}

func TestLockFallbackRateLow(t *testing.T) {
	// §6.4.2: elision variants rarely fall back to the lock in ccTSA.
	cfg := Config{GenomeLen: 1500, Coverage: 8, Threads: 4, Seed: 6}
	in := Prepare(cfg)
	res := in.RunTransactified(func(m *mem.Memory) core.Method {
		return core.NewTLE(m, core.Policy{})
	})
	rate := float64(res.Stats.LockRuns) / float64(res.Stats.Ops)
	if rate > 0.05 {
		t.Fatalf("lock fallback rate %.3f too high for this workload", rate)
	}
}

func TestN50(t *testing.T) {
	r := &Result{
		Contigs:    [][]byte{make([]byte, 100), make([]byte, 50), make([]byte, 10)},
		TotalBases: 160,
	}
	// Half of 160 is 80; the longest contig (100) already covers it.
	if got := r.N50(); got != 100 {
		t.Fatalf("N50 = %d, want 100", got)
	}
	r2 := &Result{
		Contigs:    [][]byte{make([]byte, 60), make([]byte, 50), make([]byte, 40), make([]byte, 10)},
		TotalBases: 160,
	}
	// Cumulative 60, 110 >= 80 -> N50 is 50.
	if got := r2.N50(); got != 50 {
		t.Fatalf("N50 = %d, want 50", got)
	}
	if (&Result{}).N50() != 0 {
		t.Fatal("empty assembly N50 should be 0")
	}
}

func TestN50SingleContigEqualsGenome(t *testing.T) {
	cfg := Config{GenomeLen: 2000, Threads: 1, Seed: 3}.withDefaults()
	genome := GenerateGenome(rng.NewXoshiro256(cfg.Seed), cfg.GenomeLen)
	var reads [][]byte
	for i := 0; i+cfg.ReadLen <= len(genome); i++ {
		reads = append(reads, genome[i:i+cfg.ReadLen])
	}
	in := &Input{Cfg: cfg, Genome: genome, Reads: reads}
	res := in.RunTransactified(func(m *mem.Memory) core.Method { return core.NewLock(m) })
	if res.N50() != cfg.GenomeLen {
		t.Fatalf("N50 = %d, want %d for a single-contig assembly", res.N50(), cfg.GenomeLen)
	}
}

func TestDefaults(t *testing.T) {
	cfg := Config{}.withDefaults()
	if cfg.ReadLen != 36 || cfg.K != 27 || cfg.Stripes != 4096 {
		t.Fatalf("paper defaults wrong: %+v", cfg)
	}
}
