package cctsa

import (
	"bytes"
	"testing"
)

// FuzzPackKmer checks the pack/unpack round trip and guard-bit invariants
// on arbitrary inputs.
func FuzzPackKmer(f *testing.F) {
	f.Add([]byte("ACGTACGTACGTACGTACGTACGTACG"), 27)
	f.Add([]byte("A"), 1)
	f.Add([]byte("TTTT"), 4)
	f.Add([]byte("ACGN"), 4)
	f.Add([]byte{}, 0)
	f.Fuzz(func(t *testing.T, seq []byte, k int) {
		v, ok := PackKmer(seq, k)
		if !ok {
			return
		}
		if k <= 0 || k > 31 || len(seq) < k {
			t.Fatalf("PackKmer accepted invalid input k=%d len=%d", k, len(seq))
		}
		if v == 0 {
			t.Fatal("packed k-mer is 0 (reserved for absent)")
		}
		if got := UnpackKmer(v, k); !bytes.Equal(got, seq[:k]) {
			t.Fatalf("round trip %q -> %q", seq[:k], got)
		}
		// Extension inverses.
		if k >= 2 {
			last := v & 3
			first := FirstBase(v, k)
			r := ExtendRight(v, k, 2)
			if LastBase(r) != 2 {
				t.Fatal("ExtendRight did not install the new base")
			}
			l := ExtendLeft(v, k, 1)
			if FirstBase(l, k) != 1 {
				t.Fatal("ExtendLeft did not install the new base")
			}
			_ = last
			_ = first
		}
	})
}

// FuzzSampleReads checks that error-free reads are always genome
// substrings and lengths are respected.
func FuzzSampleReads(f *testing.F) {
	f.Add(uint64(1), 200, 36)
	f.Add(uint64(9), 50, 36)
	f.Add(uint64(3), 10, 36)
	f.Fuzz(func(t *testing.T, seed uint64, genomeLen, readLen int) {
		if genomeLen <= 0 || genomeLen > 5000 || readLen <= 0 || readLen > 100 {
			return
		}
		in := Prepare(Config{GenomeLen: genomeLen, ReadLen: readLen, Coverage: 2, Seed: seed | 1})
		for _, r := range in.Reads {
			if len(r) > genomeLen {
				t.Fatalf("read longer than genome: %d > %d", len(r), genomeLen)
			}
			if !bytes.Contains(in.Genome, r) {
				t.Fatal("error-free read not a genome substring")
			}
		}
	})
}
