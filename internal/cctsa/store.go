package cctsa

import (
	"rtle/internal/core"
	"rtle/internal/mem"
	"rtle/internal/spinlock"
	"rtle/internal/tmap"
	"rtle/internal/wanghash"
)

// K-mer table value layout: low 32 bits hold the occurrence count, bit 63
// the visited flag used by the unitig-extension phase.
const (
	countMask  = (uint64(1) << 32) - 1
	visitedBit = uint64(1) << 63
)

// kmerStore abstracts the two §6.4.1 variants behind the operations the
// assembler needs. Implementations must support: concurrent add during the
// build phase; quiescent count reads and atomic visited-marking during the
// processing phase; and chunked iteration for claiming processing work.
type kmerStore interface {
	// add counts one occurrence of kmer (thread tid).
	add(tid int, kmer uint64)
	// count returns kmer's occurrence count. Quiescent phase only.
	count(kmer uint64) uint64
	// tryVisit atomically claims kmer for unitig extension: it returns
	// true iff the count is at least minCount and the visited flag was
	// clear, setting the flag.
	tryVisit(tid int, kmer uint64, minCount uint64) bool
	// chunks returns the number of work chunks for the processing phase.
	chunks() int
	// forEachInChunk visits every (kmer, value) pair in one chunk,
	// quiescently.
	forEachInChunk(chunk int, fn func(kmer, val uint64))
	// distinct returns the number of distinct k-mers. Quiescent only.
	distinct() int
}

// --- Transactified variant ---------------------------------------------------

// txStore is the transactified variant: one shared tmap synchronized by a
// core.Method. Each worker thread gets a (thread, handle) pair.
type txStore struct {
	m       *mem.Memory
	mp      *tmap.Map
	threads []core.Thread
	handles []*tmap.Handle
	nchunks int
}

func newTxStore(m *mem.Memory, method core.Method, buckets, threads int) *txStore {
	s := &txStore{
		m:       m,
		mp:      tmap.New(m, buckets),
		nchunks: threads * 8,
	}
	for i := 0; i < threads; i++ {
		s.threads = append(s.threads, method.NewThread())
		s.handles = append(s.handles, s.mp.NewHandle())
	}
	return s
}

func (s *txStore) add(tid int, kmer uint64) {
	s.handles[tid].Add(s.threads[tid], kmer, 1)
}

func (s *txStore) count(kmer uint64) uint64 {
	v, _ := s.handles[0].GetCS(core.Direct(s.m), kmer)
	return v & countMask
}

func (s *txStore) tryVisit(tid int, kmer uint64, minCount uint64) bool {
	h := s.handles[tid]
	var ok bool
	s.threads[tid].Atomic(func(c core.Context) {
		ok = false
		v, found := h.GetCS(c, kmer)
		if !found || v&countMask < minCount || v&visitedBit != 0 {
			return
		}
		h.PutCS(c, kmer, v|visitedBit)
		ok = true
	})
	return ok
}

func (s *txStore) chunks() int { return s.nchunks }

func (s *txStore) forEachInChunk(chunk int, fn func(kmer, val uint64)) {
	c := core.Direct(s.m)
	nb := s.mp.Buckets()
	lo := chunk * nb / s.nchunks
	hi := (chunk + 1) * nb / s.nchunks
	s.mp.ForEachBucketRange(c, lo, hi, fn)
}

func (s *txStore) distinct() int { return s.mp.Len(core.Direct(s.m)) }

// mergedStats returns the merged synchronization statistics of the store's
// threads.
func (s *txStore) mergedStats() core.Stats {
	var st core.Stats
	for _, t := range s.threads {
		st.Merge(t.Stats())
	}
	return st
}

// --- Original-style variant --------------------------------------------------

// stripedStore is the original ccTSA structure: the key space is hashed
// across many sub-tables ("the main hash-map is split into thousands of
// hash-maps, each protected by its own lock"), which also serve as the
// processing phase's work chunks.
type stripedStore struct {
	m       *mem.Memory
	locks   []*spinlock.Lock
	maps    []*tmap.Map
	handles [][]*tmap.Handle // [tid][stripe]
}

func newStripedStore(m *mem.Memory, stripes, bucketsPerStripe, threads int) *stripedStore {
	s := &stripedStore{m: m}
	for i := 0; i < stripes; i++ {
		s.locks = append(s.locks, spinlock.New(m))
		s.maps = append(s.maps, tmap.New(m, bucketsPerStripe))
	}
	s.handles = make([][]*tmap.Handle, threads)
	for t := 0; t < threads; t++ {
		s.handles[t] = make([]*tmap.Handle, stripes)
		for i := 0; i < stripes; i++ {
			s.handles[t][i] = s.maps[i].NewHandle()
		}
	}
	return s
}

func (s *stripedStore) stripeOf(kmer uint64) int {
	// A different mix than tmap's bucket hash, so stripes and buckets
	// stay independent.
	return int(wanghash.Hash(kmer^0xdeadbeefcafef00d, uint64(len(s.maps))))
}

func (s *stripedStore) add(tid int, kmer uint64) {
	st := s.stripeOf(kmer)
	h := s.handles[tid][st]
	l := s.locks[st]
	l.Acquire()
	h.AddCS(core.Direct(s.m), kmer, 1)
	if h.UsedSpare() {
		h.ConsumeSpare()
	}
	l.Release()
}

func (s *stripedStore) count(kmer uint64) uint64 {
	st := s.stripeOf(kmer)
	v, _ := s.handles[0][st].GetCS(core.Direct(s.m), kmer)
	return v & countMask
}

func (s *stripedStore) tryVisit(tid int, kmer uint64, minCount uint64) bool {
	st := s.stripeOf(kmer)
	h := s.handles[tid][st]
	l := s.locks[st]
	l.Acquire()
	defer l.Release()
	c := core.Direct(s.m)
	v, found := h.GetCS(c, kmer)
	if !found || v&countMask < minCount || v&visitedBit != 0 {
		return false
	}
	h.PutCS(c, kmer, v|visitedBit)
	return true
}

func (s *stripedStore) chunks() int { return len(s.maps) }

func (s *stripedStore) forEachInChunk(chunk int, fn func(kmer, val uint64)) {
	s.maps[chunk].ForEach(core.Direct(s.m), func(k, v uint64) bool { fn(k, v); return true })
}

func (s *stripedStore) distinct() int {
	c := core.Direct(s.m)
	n := 0
	for _, mp := range s.maps {
		n += mp.Len(c)
	}
	return n
}
