package cctsa

import (
	"testing"

	"rtle/internal/core"
	"rtle/internal/mem"
)

func newTx(threads int) (*txStore, *mem.Memory) {
	m := mem.New(1 << 20)
	method := core.NewTLE(m, core.Policy{})
	return newTxStore(m, method, 256, threads), m
}

func TestTxStoreAddAndCount(t *testing.T) {
	s, _ := newTx(1)
	s.add(0, 0b1_01_10) // some packed k-mer
	s.add(0, 0b1_01_10)
	s.add(0, 0b1_11_00)
	if got := s.count(0b1_01_10); got != 2 {
		t.Fatalf("count = %d, want 2", got)
	}
	if got := s.count(0b1_11_00); got != 1 {
		t.Fatalf("count = %d, want 1", got)
	}
	if got := s.count(12345); got != 0 {
		t.Fatalf("missing k-mer count = %d, want 0", got)
	}
	if s.distinct() != 2 {
		t.Fatalf("distinct = %d, want 2", s.distinct())
	}
}

func TestTxStoreTryVisit(t *testing.T) {
	s, _ := newTx(1)
	kmer := uint64(0b1_00_01)
	s.add(0, kmer)
	s.add(0, kmer)
	if s.tryVisit(0, kmer, 3) {
		t.Fatal("tryVisit succeeded below minCount")
	}
	if !s.tryVisit(0, kmer, 2) {
		t.Fatal("first tryVisit at minCount failed")
	}
	if s.tryVisit(0, kmer, 2) {
		t.Fatal("second tryVisit succeeded (visited flag ignored)")
	}
	// The count must be preserved alongside the flag.
	if got := s.count(kmer); got != 2 {
		t.Fatalf("count after visit = %d, want 2", got)
	}
	if s.tryVisit(0, 999, 1) {
		t.Fatal("tryVisit on a missing k-mer succeeded")
	}
}

func TestTxStoreChunksPartition(t *testing.T) {
	s, _ := newTx(2)
	for k := uint64(1); k <= 100; k++ {
		s.add(0, k|1<<20)
	}
	seen := map[uint64]int{}
	for ck := 0; ck < s.chunks(); ck++ {
		s.forEachInChunk(ck, func(kmer, val uint64) {
			seen[kmer]++
			if val&countMask != 1 {
				t.Fatalf("k-mer %d count %d, want 1", kmer, val&countMask)
			}
		})
	}
	if len(seen) != 100 {
		t.Fatalf("chunks visited %d distinct k-mers, want 100", len(seen))
	}
	for k, n := range seen {
		if n != 1 {
			t.Fatalf("k-mer %d visited %d times across chunks", k, n)
		}
	}
}

func TestStripedStoreMatchesTxStore(t *testing.T) {
	m := mem.New(1 << 20)
	st := newStripedStore(m, 16, 16, 2)
	tx, _ := newTx(2)
	keys := []uint64{5, 9, 5, 123, 5, 9, 1 << 30}
	for _, k := range keys {
		st.add(0, k|1<<40)
		tx.add(0, k|1<<40)
	}
	for _, k := range keys {
		if st.count(k|1<<40) != tx.count(k|1<<40) {
			t.Fatalf("stores disagree on %d: %d vs %d", k, st.count(k|1<<40), tx.count(k|1<<40))
		}
	}
	if st.distinct() != tx.distinct() {
		t.Fatalf("distinct disagree: %d vs %d", st.distinct(), tx.distinct())
	}
}

func TestStripedStoreTryVisit(t *testing.T) {
	m := mem.New(1 << 20)
	s := newStripedStore(m, 8, 8, 1)
	kmer := uint64(0b1_10_01)
	s.add(0, kmer)
	if !s.tryVisit(0, kmer, 1) {
		t.Fatal("tryVisit failed")
	}
	if s.tryVisit(0, kmer, 1) {
		t.Fatal("double visit")
	}
}

func TestStripedStoreChunksAreStripes(t *testing.T) {
	m := mem.New(1 << 20)
	s := newStripedStore(m, 32, 8, 1)
	if s.chunks() != 32 {
		t.Fatalf("chunks = %d, want 32", s.chunks())
	}
	for k := uint64(1); k <= 64; k++ {
		s.add(0, k|1<<21)
	}
	total := 0
	for ck := 0; ck < s.chunks(); ck++ {
		s.forEachInChunk(ck, func(uint64, uint64) { total++ })
	}
	if total != 64 {
		t.Fatalf("stripe iteration visited %d, want 64", total)
	}
}

func TestVisitedBitLayout(t *testing.T) {
	v := uint64(7) | visitedBit
	if v&countMask != 7 {
		t.Fatalf("count extraction broken: %d", v&countMask)
	}
	if v&visitedBit == 0 {
		t.Fatal("visited bit lost")
	}
}
