// Package cctsa reproduces the paper's §6.4 application study: ccTSA, a
// coverage-centric threaded sequence assembler. The original consumes real
// E. coli reads; this reproduction substitutes a synthetic pipeline that
// preserves the synchronization-relevant structure (documented in
// DESIGN.md): a genome generator, a 36-bp read sampler with configurable
// coverage, k-mer extraction (k = 27 by default), a De Bruijn-graph k-mer
// counting phase whose insert-or-increment critical sections are the
// contended operations, and a greedy unitig-extension processing phase.
//
// Two variants mirror §6.4.1:
//
//   - Original-style: the k-mer table is split into thousands of
//     lock-striped sub-tables (4096 by default), each protected by its own
//     spin lock — fine-grained locking with its bookkeeping overhead.
//   - Transactified: a single shared transaction-safe table (package tmap)
//     synchronized by any core.Method (Lock, TLE, RW-TLE, FG-TLE, ...),
//     with per-thread read vectors kept thread-local (the
//     "transaction_pure" simplification the paper highlights).
package cctsa

import (
	"rtle/internal/rng"
)

// Bases is the DNA alphabet.
var Bases = [4]byte{'A', 'C', 'G', 'T'}

// baseCode maps a base to its 2-bit encoding; 0xFF marks invalid bytes.
var baseCode [256]byte

func init() {
	for i := range baseCode {
		baseCode[i] = 0xFF
	}
	for code, b := range Bases {
		baseCode[b] = byte(code)
	}
}

// GenerateGenome returns a uniformly random genome of the given length.
// For lengths well below 4^k the resulting De Bruijn graph of k-mers is a
// simple path with overwhelming probability, which the assembler tests
// exploit: the assembly must reconstruct the genome as one contig.
func GenerateGenome(r *rng.Xoshiro256, length int) []byte {
	g := make([]byte, length)
	for i := range g {
		g[i] = Bases[r.Intn(4)]
	}
	return g
}

// SampleReads draws reads of length readLen uniformly from genome until
// the requested coverage (average number of reads covering each base) is
// reached. errorRate, if positive, flips each base to a random different
// base with that probability — the sequencing noise that makes weak
// (count 1) k-mers worth filtering, as in the real assembler.
func SampleReads(r *rng.Xoshiro256, genome []byte, readLen int, coverage float64, errorRate float64) [][]byte {
	if readLen > len(genome) {
		readLen = len(genome)
	}
	n := int(coverage * float64(len(genome)) / float64(readLen))
	if n < 1 {
		n = 1
	}
	reads := make([][]byte, n)
	span := len(genome) - readLen + 1
	for i := range reads {
		start := r.Intn(span)
		read := make([]byte, readLen)
		copy(read, genome[start:start+readLen])
		if errorRate > 0 {
			for j := range read {
				if r.Float64() < errorRate {
					read[j] = Bases[(int(baseCode[read[j]])+1+r.Intn(3))%4]
				}
			}
		}
		reads[i] = read
	}
	return reads
}

// PackKmer encodes seq[0:k] into a 2-bit-per-base integer. k must be at
// most 31 (so the packed value plus a guard bit fits 63 bits). The guard
// bit above the encoding makes packed k-mers self-delimiting: no k-mer
// packs to 0, and k-mers of different lengths never collide.
func PackKmer(seq []byte, k int) (uint64, bool) {
	if k <= 0 || k > 31 || len(seq) < k {
		return 0, false
	}
	v := uint64(1) // guard bit
	for i := 0; i < k; i++ {
		c := baseCode[seq[i]]
		if c == 0xFF {
			return 0, false
		}
		v = v<<2 | uint64(c)
	}
	return v, true
}

// UnpackKmer reverses PackKmer.
func UnpackKmer(v uint64, k int) []byte {
	out := make([]byte, k)
	for i := k - 1; i >= 0; i-- {
		out[i] = Bases[v&3]
		v >>= 2
	}
	return out
}

// ExtendRight returns the packed k-mer obtained by shifting in base code
// c (0..3) on the right.
func ExtendRight(v uint64, k int, c uint64) uint64 {
	mask := (uint64(1) << (2 * uint(k))) - 1
	return (uint64(1) << (2 * uint(k))) | ((v<<2 | c) & mask)
}

// ExtendLeft returns the packed k-mer obtained by shifting in base code c
// on the left.
func ExtendLeft(v uint64, k int, c uint64) uint64 {
	body := v & ((uint64(1) << (2 * uint(k))) - 1)
	body = body>>2 | c<<(2*uint(k-1))
	return (uint64(1) << (2 * uint(k))) | body
}

// LastBase returns the 2-bit code of the rightmost base.
func LastBase(v uint64) uint64 { return v & 3 }

// FirstBase returns the 2-bit code of the leftmost base of a packed k-mer.
func FirstBase(v uint64, k int) uint64 {
	return (v >> (2 * uint(k-1))) & 3
}
