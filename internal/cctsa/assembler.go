package cctsa

import (
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"rtle/internal/core"
	"rtle/internal/mem"
	"rtle/internal/rng"
)

// Config parameterizes an assembly run. Zero fields select the defaults
// noted per field (matching the paper's setup where applicable: 36-bp
// reads, k = 27).
type Config struct {
	GenomeLen int     // genome length (default 20000)
	ReadLen   int     // read length (default 36)
	Coverage  float64 // mean per-base read coverage (default 8)
	ErrorRate float64 // per-base sequencing error probability (default 0)
	K         int     // k-mer length (default 27)
	Threads   int     // worker threads (default 1)
	Seed      uint64  // PRNG seed (default 1)
	MinCount  uint64  // minimum count for a solid k-mer (default 1; use 2+ with errors)
	Stripes   int     // sub-tables in the original-style variant (default 4096)
}

func (c Config) withDefaults() Config {
	if c.GenomeLen == 0 {
		c.GenomeLen = 20000
	}
	if c.ReadLen == 0 {
		c.ReadLen = 36
	}
	if c.Coverage == 0 {
		c.Coverage = 8
	}
	if c.K == 0 {
		c.K = 27
	}
	if c.Threads == 0 {
		c.Threads = 1
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.MinCount == 0 {
		c.MinCount = 1
	}
	if c.Stripes == 0 {
		c.Stripes = 4096
	}
	return c
}

// Input is a prepared workload: a genome and the reads sampled from it.
// Preparing input is excluded from timed phases, like reading the FASTA
// input in the original.
type Input struct {
	Cfg    Config
	Genome []byte
	Reads  [][]byte
}

// Prepare generates the synthetic genome and reads for cfg.
func Prepare(cfg Config) *Input {
	cfg = cfg.withDefaults()
	r := rng.NewXoshiro256(cfg.Seed)
	genome := GenerateGenome(r, cfg.GenomeLen)
	reads := SampleReads(r, genome, cfg.ReadLen, cfg.Coverage, cfg.ErrorRate)
	return &Input{Cfg: cfg, Genome: genome, Reads: reads}
}

// Result reports one assembly run.
type Result struct {
	Variant       string
	Threads       int
	Reads         int
	DistinctKmers int
	Contigs       [][]byte
	TotalBases    int
	// KmersInContigs is the total number of k-mers consumed across all
	// contigs, Σ(len(contig)−k+1). Unlike TotalBases it is invariant
	// under contig splits at thread race points, so it equals the
	// number of solid k-mers regardless of thread count.
	KmersInContigs int
	Longest        int
	BuildTime      time.Duration
	ProcessTime    time.Duration
	Total          time.Duration
	Stats          core.Stats // synchronization stats (transactified variant)
}

// MethodFactory builds the synchronization method over the run's heap.
type MethodFactory func(m *mem.Memory) core.Method

// heapWords sizes the simulated heap for an assembly run.
func heapWords(cfg Config) int {
	return cfg.GenomeLen*48 + cfg.Stripes*24 + 1<<20
}

// RunTransactified assembles with the transactified variant: one shared
// k-mer table synchronized by the method that factory builds.
func (in *Input) RunTransactified(factory MethodFactory) *Result {
	cfg := in.Cfg
	m := mem.New(heapWords(cfg))
	method := factory(m)
	buckets := 2 * cfg.GenomeLen
	store := newTxStore(m, method, buckets, cfg.Threads)
	res := in.assemble(store, cfg)
	res.Variant = "transactified/" + method.Name()
	res.Stats = store.mergedStats()
	return res
}

// RunOriginal assembles with the original-style fine-grained-locking
// variant (cfg.Stripes lock-striped sub-tables).
func (in *Input) RunOriginal() *Result {
	cfg := in.Cfg
	m := mem.New(heapWords(cfg))
	perStripe := 2 * cfg.GenomeLen / cfg.Stripes
	if perStripe < 4 {
		perStripe = 4
	}
	store := newStripedStore(m, cfg.Stripes, perStripe, cfg.Threads)
	res := in.assemble(store, cfg)
	res.Variant = "original(fine-grained)"
	return res
}

// assemble runs the two timed phases over any store.
func (in *Input) assemble(store kmerStore, cfg Config) *Result {
	res := &Result{Threads: cfg.Threads, Reads: len(in.Reads)}

	// --- Build phase: count k-mers -----------------------------------
	start := time.Now()
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(cfg.Threads)
	localReads := make([][][]byte, cfg.Threads)
	for t := 0; t < cfg.Threads; t++ {
		go func(tid int) {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(in.Reads) {
					return
				}
				read := in.Reads[i]
				// Thread-local storage of the read (the
				// transactified design's simplification).
				localReads[tid] = append(localReads[tid], read)
				for off := 0; off+cfg.K <= len(read); off++ {
					if kmer, ok := PackKmer(read[off:], cfg.K); ok {
						store.add(tid, kmer)
					}
				}
			}
		}(t)
	}
	wg.Wait()
	res.BuildTime = time.Since(start)

	// --- Processing phase: greedy unitig extension -------------------
	pstart := time.Now()
	var chunk atomic.Int64
	contigs := make([][][]byte, cfg.Threads)
	wg.Add(cfg.Threads)
	for t := 0; t < cfg.Threads; t++ {
		go func(tid int) {
			defer wg.Done()
			for {
				ck := int(chunk.Add(1)) - 1
				if ck >= store.chunks() {
					return
				}
				store.forEachInChunk(ck, func(kmer, val uint64) {
					if val&countMask < cfg.MinCount || val&visitedBit != 0 {
						return
					}
					if !store.tryVisit(tid, kmer, cfg.MinCount) {
						return
					}
					contigs[tid] = append(contigs[tid], extend(store, tid, kmer, cfg))
				})
			}
		}(t)
	}
	wg.Wait()
	res.ProcessTime = time.Since(pstart)
	res.Total = res.BuildTime + res.ProcessTime

	for _, cs := range contigs {
		for _, c := range cs {
			res.Contigs = append(res.Contigs, c)
			res.TotalBases += len(c)
			res.KmersInContigs += len(c) - cfg.K + 1
			if len(c) > res.Longest {
				res.Longest = len(c)
			}
		}
	}
	res.DistinctKmers = store.distinct()
	return res
}

// N50 returns the standard assembly-quality metric: the length L such
// that contigs of length >= L cover at least half of the assembled bases.
// Zero for an empty assembly.
func (r *Result) N50() int {
	if len(r.Contigs) == 0 {
		return 0
	}
	lengths := make([]int, len(r.Contigs))
	for i, c := range r.Contigs {
		lengths[i] = len(c)
	}
	sort.Sort(sort.Reverse(sort.IntSlice(lengths)))
	half := (r.TotalBases + 1) / 2
	covered := 0
	for _, l := range lengths {
		covered += l
		if covered >= half {
			return l
		}
	}
	return lengths[len(lengths)-1]
}

// extend grows a unitig from seed in both directions, claiming each
// incorporated k-mer with tryVisit so concurrent workers never emit the
// same k-mer twice.
func extend(store kmerStore, tid int, seed uint64, cfg Config) []byte {
	k := cfg.K
	contig := UnpackKmer(seed, k)

	// Rightward.
	cur := seed
	for {
		next, ok := uniqueSuccessor(store, cur, cfg)
		if !ok || !uniqueJoin(store, next, cur, cfg, true) {
			break
		}
		if !store.tryVisit(tid, next, cfg.MinCount) {
			break
		}
		contig = append(contig, Bases[LastBase(next)])
		cur = next
	}

	// Leftward.
	cur = seed
	for {
		prev, ok := uniquePredecessor(store, cur, cfg)
		if !ok || !uniqueJoin(store, prev, cur, cfg, false) {
			break
		}
		if !store.tryVisit(tid, prev, cfg.MinCount) {
			break
		}
		contig = append([]byte{Bases[FirstBase(prev, k)]}, contig...)
		cur = prev
	}
	return contig
}

// uniqueSuccessor returns the only solid right-extension of cur, if it is
// unique.
func uniqueSuccessor(store kmerStore, cur uint64, cfg Config) (uint64, bool) {
	var found uint64
	n := 0
	for c := uint64(0); c < 4; c++ {
		cand := ExtendRight(cur, cfg.K, c)
		if store.count(cand) >= cfg.MinCount {
			found = cand
			n++
		}
	}
	return found, n == 1
}

// uniquePredecessor returns the only solid left-extension of cur, if it is
// unique.
func uniquePredecessor(store kmerStore, cur uint64, cfg Config) (uint64, bool) {
	var found uint64
	n := 0
	for c := uint64(0); c < 4; c++ {
		cand := ExtendLeft(cur, cfg.K, c)
		if store.count(cand) >= cfg.MinCount {
			found = cand
			n++
		}
	}
	return found, n == 1
}

// uniqueJoin verifies the edge between a new k-mer and the current one is
// unambiguous from the new k-mer's side too (a unitig requires out-degree
// and in-degree one across the joint). rightward indicates the direction
// of travel.
func uniqueJoin(store kmerStore, next, cur uint64, cfg Config, rightward bool) bool {
	if rightward {
		back, ok := uniquePredecessor(store, next, cfg)
		return ok && back == cur
	}
	fwd, ok := uniqueSuccessor(store, next, cfg)
	return ok && fwd == cur
}
