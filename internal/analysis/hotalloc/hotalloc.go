// Package hotalloc defines the rtlevet pass that polices allocation on
// the serving fast path. Functions marked //rtle:hotpath — the shard fast
// path, frame encode/decode, and the Client send/receive loops — plus
// everything statically reachable from them in-package (propagated over
// the framework call graph, cut at //rtle:coldpath and //rtle:init) must
// not allocate per operation. ROADMAP's zero-alloc framing item starts
// here: the pass turns "the hot path allocates" from a benchmark surprise
// into a vet finding.
//
// Flagged allocation effects:
//
//   - escaping composite literals (&T{...}) and slice/map literals
//   - make / new on the hot path
//   - string <-> []byte conversions (always copy)
//   - interface boxing: a concrete non-pointer value passed, assigned or
//     converted to an interface type
//   - closures that capture variables (the closure and its captures move
//     to the heap when it escapes)
//   - un-pooled append growth: appending onto a freshly made/nil base,
//     including passing a nil buffer to an Append-style callee
//
// Every finding is waivable by a reasoned //rtle:ignore hotalloc pragma;
// the suite's unused-ignore check keeps the waiver set honest. The pass
// is intentionally a conservative pattern checker, not an escape
// analysis: it flags constructs that *usually* allocate, and the waiver
// text documents why a particular site is accepted (amortized, per-conn
// setup, error path priced in, ...).
package hotalloc

import (
	"go/ast"
	"go/types"

	"rtle/internal/analysis/framework"
)

// Analyzer is the hotalloc pass.
var Analyzer = &framework.Analyzer{
	Name:    "hotalloc",
	Doc:     "no unwaived allocation in functions reachable from //rtle:hotpath roots",
	Version: 1,
	Run:     run,
}

func run(pass *framework.Pass) error {
	g := framework.NewGraph(pass)
	g.MarkReachable(framework.MarkHotpath, framework.MarkColdpath|framework.MarkInit)
	for _, s := range g.Functions() {
		if !s.Marks.Has(framework.MarkHotpath) {
			continue
		}
		checkBody(pass, s)
	}
	return nil
}

func checkBody(pass *framework.Pass, s *framework.Summary) {
	info := pass.TypesInfo
	name := s.Fn.Name()
	ast.Inspect(s.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if lit, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok && n.Op.String() == "&" {
				pass.Report(n.Pos(),
					"hot path: escaping composite literal &%s in %s allocates per call",
					typeLabel(info, lit), name)
				return true
			}
		case *ast.CompositeLit:
			switch info.TypeOf(n).Underlying().(type) {
			case *types.Slice, *types.Map:
				pass.Report(n.Pos(),
					"hot path: %s literal in %s allocates per call; hoist or pool the buffer",
					typeLabel(info, n), name)
			}
		case *ast.FuncLit:
			if capt := capturedVar(info, n); capt != nil {
				pass.Report(n.Pos(),
					"hot path: closure in %s captures %s; an escaping capturing closure allocates per call",
					name, capt.Name())
			}
		case *ast.CallExpr:
			checkCall(pass, info, n, name)
		case *ast.AssignStmt:
			for i := range n.Lhs {
				if i < len(n.Rhs) {
					checkBoxing(pass, info, info.TypeOf(n.Lhs[i]), n.Rhs[i], name)
				}
			}
		case *ast.ValueSpec:
			for _, v := range n.Values {
				if len(n.Names) > 0 {
					checkBoxing(pass, info, info.TypeOf(n.Names[0]), v, name)
				}
			}
		}
		return true
	})
}

// checkCall handles the call-shaped allocation effects: builtins, string
// conversions, interface-boxing arguments, and fresh append bases.
func checkCall(pass *framework.Pass, info *types.Info, call *ast.CallExpr, name string) {
	// Built-ins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, ok := info.Uses[id].(*types.Builtin); ok {
			switch b.Name() {
			case "make":
				switch info.TypeOf(call).Underlying().(type) {
				case *types.Slice, *types.Map, *types.Chan:
					pass.Report(call.Pos(),
						"hot path: make in %s allocates per call; preallocate or pool the buffer", name)
				}
			case "new":
				pass.Report(call.Pos(), "hot path: new in %s allocates per call", name)
			case "append":
				if len(call.Args) > 0 && freshBase(info, call.Args[0]) {
					pass.Report(call.Pos(),
						"hot path: append onto a fresh base in %s grows an un-pooled buffer per call", name)
				}
			}
			return
		}
	}

	// Type conversions: string <-> []byte copy, or boxing into an
	// interface type.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			to, from := tv.Type, info.TypeOf(call.Args[0])
			if isStringBytes(to, from) || isStringBytes(from, to) {
				pass.Report(call.Pos(),
					"hot path: string <-> []byte conversion in %s copies per call", name)
			} else {
				checkBoxing(pass, info, to, call.Args[0], name)
			}
		}
		return
	}

	// Ordinary call: check each argument against its parameter type.
	sig, _ := info.TypeOf(call.Fun).Underlying().(*types.Signature)
	if sig == nil {
		return
	}
	params := sig.Params()
	np := params.Len()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= np-1:
			pt = params.At(np - 1).Type()
			if !call.Ellipsis.IsValid() {
				if sl, ok := pt.Underlying().(*types.Slice); ok {
					pt = sl.Elem()
				}
			}
		case i < np:
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if isNilExpr(info, arg) {
			if _, ok := pt.Underlying().(*types.Slice); ok {
				pass.Report(arg.Pos(),
					"hot path: nil buffer argument in %s forces callee append growth per call; pass a pooled buffer", name)
			}
			continue
		}
		checkBoxing(pass, info, pt, arg, name)
	}
}

// checkBoxing reports expr when assigning/passing it as dst requires an
// interface box: dst is an interface and expr's concrete type is not
// already pointer-shaped.
func checkBoxing(pass *framework.Pass, info *types.Info, dst types.Type, expr ast.Expr, name string) {
	if dst == nil || !types.IsInterface(dst) {
		return
	}
	at := info.TypeOf(expr)
	if at == nil || types.IsInterface(at) || isNilExpr(info, expr) {
		return
	}
	switch at.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return // pointer-shaped: fits the interface word without boxing
	}
	pass.Report(expr.Pos(),
		"hot path: %s value boxed into interface in %s allocates per call", at.String(), name)
}

// freshBase reports whether an append base expression is a buffer born at
// this site — a nil, a composite literal, or a call result — rather than a
// reused/pooled slice (an identifier or a reslice like buf[:0]).
func freshBase(info *types.Info, base ast.Expr) bool {
	switch b := ast.Unparen(base).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.CallExpr:
		return true
	case *ast.Ident:
		return b.Name == "nil"
	}
	return false
}

func isNilExpr(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(expr)]
	return ok && tv.IsNil()
}

// isStringBytes reports a (string, []byte) type pair in the given order.
func isStringBytes(a, b types.Type) bool {
	ab, ok := a.Underlying().(*types.Basic)
	if !ok || ab.Kind() != types.String {
		return false
	}
	sl, ok := b.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	el, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && el.Kind() == types.Uint8
}

// capturedVar returns one variable lit captures from its enclosing
// function, or nil for a capture-free closure.
func capturedVar(info *types.Info, lit *ast.FuncLit) *types.Var {
	var capt *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if capt != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured = declared outside the literal but not at package
		// scope (package vars need no capture slot).
		if v.Pkg() == nil || v.Parent() == nil {
			return true
		}
		if v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			capt = v
		}
		return true
	})
	return capt
}

// typeLabel renders a composite literal's type compactly for diagnostics.
func typeLabel(info *types.Info, lit *ast.CompositeLit) string {
	t := info.TypeOf(lit)
	if t == nil {
		return "composite"
	}
	return t.String()
}
