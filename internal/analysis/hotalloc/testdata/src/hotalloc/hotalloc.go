// Package hotalloc is the golden input for the hotalloc analyzer: a
// miniature wire codec whose pooled-buffer idioms are clean, whose
// allocation effects seed true positives (directly in a root and in an
// unannotated helper reached by propagation), and whose //rtle:coldpath
// cut and //rtle:ignore waiver prove the escape hatches work.
package hotalloc

type req struct {
	id  uint64
	arg uint64
}

type sink struct {
	buf []byte
}

// encode is a hotpath root: reslicing the pooled buffer is clean, the
// escaping literal and the make are per-call allocations.
//
//rtle:hotpath
func (s *sink) encode(r *req) {
	s.buf = append(s.buf[:0], byte(r.id))
	h := &req{id: r.id} // want `hot path: escaping composite literal`
	_ = h
	tmp := make([]byte, 8) // want `hot path: make in encode allocates per call`
	_ = tmp
	s.helper(r)
	s.cold(r)
}

// helper carries no annotation; it is hot because encode reaches it, and
// both the conversion copy and the interface box are findings.
func (s *sink) helper(r *req) {
	b := []byte("x") // want `hot path: string <-> \[\]byte conversion in helper copies per call`
	_ = b
	var x interface{} = r.arg // want `hot path: uint64 value boxed into interface in helper allocates per call`
	_ = x
}

// cold cuts propagation: the error/setup branch may allocate freely.
//
//rtle:coldpath
func (s *sink) cold(r *req) {
	m := map[uint64]uint64{}
	m[r.id] = r.arg
}

// notHot is unreachable from any root: slice literals here are nobody's
// business.
func notHot() []int {
	return []int{1, 2, 3}
}

// closures allocates a capture cell plus the closure itself per call.
//
//rtle:hotpath
func closures(n int) func() int {
	f := func() int { return n } // want `hot path: closure in closures captures n`
	return f
}

// growth appends onto a base born at the call site: un-pooled growth.
//
//rtle:hotpath
func growth(dst []byte) []byte {
	out := append([]byte(nil), dst...) // want `hot path: append onto a fresh base in growth`
	return out
}

// frame passes a nil buffer to an Append-style callee, forcing the callee
// to grow a fresh allocation every call.
//
//rtle:hotpath
func frame(r *req) []byte {
	return appendReq(nil, r) // want `hot path: nil buffer argument in frame forces callee append growth`
}

// appendReq is hot by propagation from frame; appending onto the caller's
// buffer is the pooled idiom and stays clean.
func appendReq(b []byte, r *req) []byte {
	return append(b, byte(r.id))
}

// sendStat's boxing is a reviewed false positive: the variadic record
// sits on a failure branch and the waiver prices it in.
//
//rtle:hotpath
func sendStat(id uint64) {
	//rtle:ignore hotalloc failure-path telemetry; boxing amortized by rarity
	record("send", id)
}

func record(event string, args ...any) {
	_ = event
	_ = args
}
