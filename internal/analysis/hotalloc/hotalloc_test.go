package hotalloc_test

import (
	"testing"

	"rtle/internal/analysis/analysistest"
	"rtle/internal/analysis/hotalloc"
)

func TestHotAlloc(t *testing.T) {
	analysistest.Run(t, hotalloc.Analyzer, "hotalloc")
}
