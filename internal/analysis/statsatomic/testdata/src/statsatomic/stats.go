// Package statsatomic is the golden input for the statsatomic analyzer:
// counter fields with mixed atomic/plain access seed true positives; the
// uniform fields, the atomic.Uint64-typed field, and the //rtle:ignore
// site stay silent.
package statsatomic

import "sync/atomic"

// Stats is a counter struct by naming convention.
type Stats struct {
	Commits uint64
	Aborts  [4]uint64
	Ops     uint64        // only ever plain: uniform, ok
	Fast    atomic.Uint64 // atomic value type: uniform by construction
}

// PathCounters opts in by annotation rather than by name.
//
//rtle:counters
type PathCounters struct {
	Slow uint64
}

type local struct{ n uint64 }

func record(s *Stats) {
	atomic.AddUint64(&s.Commits, 1)
	s.Commits++   // want `counter field Commits is accessed atomically elsewhere in this package; this plain write races with it`
	_ = s.Commits // want `counter field Commits is accessed atomically elsewhere in this package; this plain read races with it`

	atomic.AddUint64(&s.Aborts[1], 1)
	s.Aborts[0]++ // want `counter field Aborts is accessed atomically elsewhere in this package; this plain write races with it`

	s.Ops++ // uniform plain access: ok
	s.Fast.Add(1)
}

func mixed(p *PathCounters) {
	atomic.AddUint64(&p.Slow, 1)
	p.Slow++ // want `counter field Slow is accessed atomically elsewhere in this package; this plain write races with it`
}

func bump(l *local) { l.n++ } // not a counter type: ok

// quiesced reads after all writers have joined; the waiver records that.
func quiesced(s *Stats) uint64 {
	//rtle:ignore statsatomic read-after-quiesce in a single-threaded reporter
	return s.Commits
}
