// Package statsatomic defines the rtlevet pass that flags mixed
// atomic/plain access to statistics counters.
//
// The repo's counter structs (htm.Stats, core.Stats, and anything marked
// //rtle:counters) follow a single-writer discipline: each instance is
// written plainly by exactly one goroutine and read only after it
// quiesces. Code that "upgrades" one access site to sync/atomic while
// others stay plain gets the worst of both worlds — the atomic site
// suggests concurrent access is expected, and every remaining plain
// access is then a data race. The pass collects, per counter field, every
// access in the package; a field with at least one atomic access and at
// least one plain access is reported at each plain site. Fields of the
// sync/atomic value types (atomic.Uint64 etc.) are uniform by
// construction and ignored.
package statsatomic

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"

	"rtle/internal/analysis/framework"
)

// Analyzer is the statsatomic pass.
var Analyzer = &framework.Analyzer{
	Name:    "statsatomic",
	Doc:     "flag mixed atomic/plain access to Stats and observer counter fields",
	Version: 1,
	Run:     run,
}

type access struct {
	pos    token.Pos
	atomic bool
	write  bool
}

func run(pass *framework.Pass) error {
	accesses := map[*types.Var][]access{}

	for _, file := range pass.Files {
		// Selector expressions consumed by a sync/atomic call operand
		// (&s.Field) are atomic accesses; everything else is plain.
		atomicSels := map[*ast.SelectorExpr]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			fn := framework.CalleeFunc(pass.TypesInfo, call)
			if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
				return true
			}
			for _, arg := range call.Args {
				if addr, ok := ast.Unparen(arg).(*ast.UnaryExpr); ok && addr.Op == token.AND {
					if sel := baseSelector(addr.X); sel != nil {
						atomicSels[sel] = true
					}
				}
			}
			return true
		})

		writes := map[*ast.SelectorExpr]bool{}
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if sel := baseSelector(lhs); sel != nil {
						writes[sel] = true
					}
				}
			case *ast.IncDecStmt:
				if sel := baseSelector(n.X); sel != nil {
					writes[sel] = true
				}
			}
			return true
		})

		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			field := counterField(pass, sel)
			if field == nil {
				return true
			}
			accesses[field] = append(accesses[field], access{
				pos:    sel.Pos(),
				atomic: atomicSels[sel],
				write:  writes[sel],
			})
			return true
		})
	}

	var fields []*types.Var
	for f := range accesses {
		fields = append(fields, f)
	}
	sort.Slice(fields, func(i, j int) bool { return fields[i].Pos() < fields[j].Pos() })
	for _, field := range fields {
		var nAtomic, nPlain int
		for _, a := range accesses[field] {
			if a.atomic {
				nAtomic++
			} else {
				nPlain++
			}
		}
		if nAtomic == 0 || nPlain == 0 {
			continue
		}
		for _, a := range accesses[field] {
			if a.atomic {
				continue
			}
			kind := "read"
			if a.write {
				kind = "write"
			}
			pass.Report(a.pos,
				"counter field %s is accessed atomically elsewhere in this package; this plain %s races with it (make every access atomic, or none)",
				field.Name(), kind)
		}
	}
	return nil
}

// baseSelector strips parens and index expressions, returning the
// underlying selector (`s.Aborts[i]` -> `s.Aborts`), or nil.
func baseSelector(expr ast.Expr) *ast.SelectorExpr {
	for {
		switch e := ast.Unparen(expr).(type) {
		case *ast.SelectorExpr:
			return e
		case *ast.IndexExpr:
			expr = e.X
		default:
			return nil
		}
	}
}

// counterField resolves sel to a field of a counter struct — a named
// struct type called Stats or marked //rtle:counters — unless the field
// itself has a sync/atomic value type (those cannot be accessed plainly).
func counterField(pass *framework.Pass, sel *ast.SelectorExpr) *types.Var {
	s, ok := pass.TypesInfo.Selections[sel]
	if !ok || s.Kind() != types.FieldVal {
		return nil
	}
	field, ok := s.Obj().(*types.Var)
	if !ok {
		return nil
	}
	recv := s.Recv()
	if p, ok := recv.(*types.Pointer); ok {
		recv = p.Elem()
	}
	named, ok := recv.(*types.Named)
	if !ok {
		return nil
	}
	tn := named.Obj()
	if tn.Name() != "Stats" && !pass.Ann.IsCounterType(tn) {
		return nil
	}
	if ft, ok := field.Type().(*types.Named); ok {
		if pkg := ft.Obj().Pkg(); pkg != nil && pkg.Path() == "sync/atomic" {
			return nil
		}
	}
	return field
}
