package statsatomic_test

import (
	"testing"

	"rtle/internal/analysis/analysistest"
	"rtle/internal/analysis/statsatomic"
)

// TestGolden runs the analyzer over its golden package: every seeded
// mixed-access site must be reported (so the test fails if the pass is
// disabled) and uniform fields plus the waived read must stay silent.
func TestGolden(t *testing.T) {
	analysistest.Run(t, statsatomic.Analyzer, "statsatomic")
}
