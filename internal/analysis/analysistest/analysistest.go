// Package analysistest runs framework analyzers over golden packages and
// checks their diagnostics against `// want "regexp"` expectations, in the
// style of golang.org/x/tools/go/analysis/analysistest.
//
// A golden package lives in testdata/src/<name>/ next to the analyzer's
// test. Its files may import the real rtle packages (imports resolve
// against the enclosing module). Every line that should trigger a
// diagnostic carries a trailing comment:
//
//	t.m.Load(a) // want `raw heap access`
//
// Multiple expectations may follow one want: `// want "a" "b"`. Each
// expectation is a regular expression matched against the diagnostic
// message; diagnostics and expectations must match one-to-one per line.
// Lines suppressed with //rtle:ignore carry no want comment — that a
// suppressed site yields no diagnostic is exactly what the golden test
// then proves.
package analysistest

import (
	"fmt"
	"go/ast"
	"go/token"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"rtle/internal/analysis/framework"
)

type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	raw  string
	met  bool
}

// Run loads testdata/src/<pkg> for each named golden package and applies
// the analyzer, reporting any mismatch between diagnostics and want
// comments as test errors.
func Run(t *testing.T, analyzer *framework.Analyzer, pkgs ...string) {
	t.Helper()
	moduleRoot, err := framework.ModuleRoot("")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	for _, name := range pkgs {
		dir := filepath.Join("testdata", "src", name)
		loader := framework.NewLoader(moduleRoot)
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: golden package does not type-check: %v", dir, terr)
		}
		if len(pkg.TypeErrors) > 0 {
			continue
		}
		diags, err := framework.RunAnalyzer(analyzer, pkg)
		if err != nil {
			t.Fatalf("running %s on %s: %v", analyzer.Name, dir, err)
		}
		expects, err := parseExpectations(pkg.Fset, pkg.Files)
		if err != nil {
			t.Fatalf("parsing want comments in %s: %v", dir, err)
		}
		match(t, diags, expects)
	}
}

func match(t *testing.T, diags []framework.Diagnostic, expects []*expectation) {
	t.Helper()
	for _, d := range diags {
		found := false
		for _, e := range expects {
			if e.met || e.file != d.Pos.Filename || e.line != d.Pos.Line {
				continue
			}
			if e.re.MatchString(d.Message) {
				e.met = true
				found = true
				break
			}
		}
		if !found {
			t.Errorf("%s: unexpected diagnostic: %s", d.Pos, d.Message)
		}
	}
	for _, e := range expects {
		if !e.met {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", e.file, e.line, e.raw)
		}
	}
}

// wantRe requires the pattern to start with a quote so that the word
// "want" in ordinary prose comments is never mistaken for an expectation.
var wantRe = regexp.MustCompile("(?:^|\\s)want\\s+([\"`].*)")

func parseExpectations(fset *token.FileSet, files []*ast.File) ([]*expectation, error) {
	var out []*expectation
	for _, f := range files {
		for _, g := range f.Comments {
			for _, c := range g.List {
				text := strings.TrimPrefix(c.Text, "//")
				m := wantRe.FindStringSubmatch(text)
				if m == nil {
					continue
				}
				pos := fset.Position(c.Pos())
				patterns, err := parsePatterns(m[1])
				if err != nil {
					return nil, fmt.Errorf("%s: %v", pos, err)
				}
				for _, p := range patterns {
					re, err := regexp.Compile(p)
					if err != nil {
						return nil, fmt.Errorf("%s: bad want pattern %q: %v", pos, p, err)
					}
					out = append(out, &expectation{
						file: pos.Filename,
						line: pos.Line,
						re:   re,
						raw:  p,
					})
				}
			}
		}
	}
	return out, nil
}

// parsePatterns splits `"a" "b"` or backquoted equivalents into their
// unquoted pattern strings.
func parsePatterns(s string) ([]string, error) {
	var out []string
	s = strings.TrimSpace(s)
	for s != "" {
		var quote byte
		switch s[0] {
		case '"', '`':
			quote = s[0]
		default:
			return nil, fmt.Errorf("want pattern must be a quoted string, got %q", s)
		}
		end := strings.IndexByte(s[1:], quote)
		if end < 0 {
			return nil, fmt.Errorf("unterminated want pattern in %q", s)
		}
		lit := s[:end+2]
		unquoted, err := strconv.Unquote(lit)
		if err != nil {
			return nil, fmt.Errorf("bad want pattern %s: %v", lit, err)
		}
		out = append(out, unquoted)
		s = strings.TrimSpace(s[end+2:])
	}
	return out, nil
}
