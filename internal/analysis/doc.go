// Package analysis bundles the rtlevet static-analysis suite: eight
// passes that enforce the HTM/TLE instrumentation discipline the paper's
// refined algorithms depend on, plus the serving layer's gate, log and
// allocation disciplines. One un-instrumented word access on a slow
// path breaks opacity in a way runtime checking (internal/check) can only
// catch probabilistically; these passes make the discipline a
// compile-time property.
//
// The passes are:
//
//   - txbody: no HTM-unfriendly operations (raw heap access, blocking
//     ops, Go-level synchronization, aggressive allocation) inside
//     hardware-transaction bodies.
//   - abortpath: abort codes from (*htm.Tx).Run — and error returns from
//     this module's APIs — are never silently dropped; every transaction
//     begin has a reachable abort/retry handler.
//   - barrierdiscipline: code reachable from the instrumented slow paths
//     goes through the htm.Tx read/write barriers, and writer metadata is
//     only mutated on the lock-holder path (declared //rtle:lockpath or
//     inherited from an all-lockpath caller set).
//   - gateorder: exclusive shard drain gates are acquired only inside the
//     //rtle:gatelock helper, in an ascending range loop, and no shared
//     gate is taken while exclusive gates are held.
//   - loggate: replication-log appends and barrier-seq (lastSeq) accesses
//     happen inside a held gate region, or inside //rtle:gated functions
//     whose call sites all hold the gates.
//   - hotalloc: functions reachable from //rtle:hotpath roots are free of
//     per-call allocation effects (escaping literals, make/new,
//     string<->[]byte copies, interface boxing, capturing closures,
//     un-pooled append growth) unless waived by a reasoned //rtle:ignore.
//   - guardmisuse: elision guards follow the acquire/defer-release shape.
//   - statsatomic: no mixed atomic/plain access to Stats and observer
//     counter fields.
//
// The framework underneath is interprocedural: per-function summaries
// (marks, gate/log effects) are computed bottom-up over an in-package
// call graph, and marks propagate — //rtle:hotpath forward to everything
// it calls, //rtle:lockpath backward onto helpers all of whose callers
// hold the lock — so annotations live at roots, not at every helper.
//
// Run the suite standalone or as a vet tool:
//
//	go run rtle/cmd/rtlevet ./...
//	go vet -vettool=$(which rtlevet) ./...
//
// # Annotation convention
//
// The analyzers classify function bodies by execution path through //rtle:
// pragma comments rather than brittle name matching. The vocabulary:
//
//	//rtle:speculative
//
// On a function declaration: the body executes inside a hardware
// transaction (fast or slow path). txbody applies in full. Func literals
// passed to (*htm.Tx).Run are classified automatically and need no
// pragma.
//
//	//rtle:slowpath
//
// On a function declaration: the function implements the instrumented
// slow path (RW-TLE/FG-TLE barrier Contexts, and anything they call).
// barrierdiscipline requires the function — and every same-package
// function statically reachable from it — to route all simulated-heap
// access through the htm.Tx barriers.
//
//	//rtle:lockpath
//
// On a function declaration: the function only runs while the method's
// fallback lock is held. This is the one path allowed to mutate
// //rtle:meta fields.
//
//	//rtle:init
//
// On a function declaration: single-threaded setup (constructors).
// Metadata stores are allowed; no concurrent reader exists yet.
//
//	//rtle:hotpath
//
// On a function declaration: a serving fast-path root (shard fast
// section, frame encode/decode, Client send/recv). hotalloc checks the
// function and everything statically reachable from it in-package for
// per-call allocation effects. Conflicts with //rtle:coldpath and
// //rtle:init on the same declaration (a parse error, not last-wins).
//
//	//rtle:coldpath
//
// On a function declaration: an error/setup branch called from hot code;
// hotpath propagation stops here and the body may allocate.
//
//	//rtle:gatelock
//
// On a function declaration: the one sanctioned multi-gate acquisition
// helper. gateorder requires every exclusive gate.Lock in the package to
// be here, inside an ascending range loop over the span list.
//
//	//rtle:gated
//
// On a function declaration: the function's contract is caller-holds-
// gates. loggate allows its log appends and barrier-seq accesses, and in
// exchange requires every call site to sit inside a held gate region.
//
//	//rtle:meta
//
// On a struct field: the field is writer metadata of the barrier protocol
// (RW-TLE's write flag and wrote bit, FG-TLE's epoch/orec addresses and
// per-section counters). For mem.Addr fields, barrierdiscipline guards
// Memory.Store/CAS/FetchAdd calls whose address derives from the field;
// for ordinary Go fields it guards direct assignment. Both are only legal
// inside //rtle:lockpath or //rtle:init functions.
//
//	//rtle:counters
//
// On a type declaration: the struct's fields are statistics counters;
// statsatomic enforces unmixed (all-atomic or all-plain) access. Types
// named Stats are covered automatically.
//
//	//rtle:engine
//
// Anywhere in a package's comments: the package implements the simulated
// hardware itself (mem, htm, spinlock) and sits below the barrier layer;
// txbody and barrierdiscipline do not apply.
//
//	//rtle:ignore [analyzer] [reason...]
//
// On the flagged line, or on the line directly above it: suppress the
// named analyzer's diagnostics there (all analyzers when no name is
// given). Use it to mark reviewed false positives; the golden tests under
// testdata/ keep at least one suppressed case per analyzer honest.
//
// Test files (_test.go) are exempt from all passes: tests poke internals
// on purpose.
package analysis
