// Package analysis bundles the rtlevet static-analysis suite: four
// passes that enforce the HTM/TLE instrumentation discipline the paper's
// refined algorithms depend on. One un-instrumented word access on a slow
// path breaks opacity in a way runtime checking (internal/check) can only
// catch probabilistically; these passes make the discipline a
// compile-time property.
//
// The passes are:
//
//   - txbody: no HTM-unfriendly operations (raw heap access, blocking
//     ops, Go-level synchronization, aggressive allocation) inside
//     hardware-transaction bodies.
//   - abortpath: abort codes from (*htm.Tx).Run — and error returns from
//     this module's APIs — are never silently dropped; every transaction
//     begin has a reachable abort/retry handler.
//   - barrierdiscipline: code reachable from the instrumented slow paths
//     goes through the htm.Tx read/write barriers, and writer metadata is
//     only mutated on the lock-holder path.
//   - statsatomic: no mixed atomic/plain access to Stats and observer
//     counter fields.
//
// Run the suite standalone or as a vet tool:
//
//	go run rtle/cmd/rtlevet ./...
//	go vet -vettool=$(which rtlevet) ./...
//
// # Annotation convention
//
// The analyzers classify function bodies by execution path through //rtle:
// pragma comments rather than brittle name matching. The vocabulary:
//
//	//rtle:speculative
//
// On a function declaration: the body executes inside a hardware
// transaction (fast or slow path). txbody applies in full. Func literals
// passed to (*htm.Tx).Run are classified automatically and need no
// pragma.
//
//	//rtle:slowpath
//
// On a function declaration: the function implements the instrumented
// slow path (RW-TLE/FG-TLE barrier Contexts, and anything they call).
// barrierdiscipline requires the function — and every same-package
// function statically reachable from it — to route all simulated-heap
// access through the htm.Tx barriers.
//
//	//rtle:lockpath
//
// On a function declaration: the function only runs while the method's
// fallback lock is held. This is the one path allowed to mutate
// //rtle:meta fields.
//
//	//rtle:init
//
// On a function declaration: single-threaded setup (constructors).
// Metadata stores are allowed; no concurrent reader exists yet.
//
//	//rtle:meta
//
// On a struct field: the field is writer metadata of the barrier protocol
// (RW-TLE's write flag and wrote bit, FG-TLE's epoch/orec addresses and
// per-section counters). For mem.Addr fields, barrierdiscipline guards
// Memory.Store/CAS/FetchAdd calls whose address derives from the field;
// for ordinary Go fields it guards direct assignment. Both are only legal
// inside //rtle:lockpath or //rtle:init functions.
//
//	//rtle:counters
//
// On a type declaration: the struct's fields are statistics counters;
// statsatomic enforces unmixed (all-atomic or all-plain) access. Types
// named Stats are covered automatically.
//
//	//rtle:engine
//
// Anywhere in a package's comments: the package implements the simulated
// hardware itself (mem, htm, spinlock) and sits below the barrier layer;
// txbody and barrierdiscipline do not apply.
//
//	//rtle:ignore [analyzer] [reason...]
//
// On the flagged line, or on the line directly above it: suppress the
// named analyzer's diagnostics there (all analyzers when no name is
// given). Use it to mark reviewed false positives; the golden tests under
// testdata/ keep at least one suppressed case per analyzer honest.
//
// Test files (_test.go) are exempt from all passes: tests poke internals
// on purpose.
package analysis
