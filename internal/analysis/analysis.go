package analysis

import (
	"rtle/internal/analysis/abortpath"
	"rtle/internal/analysis/barrierdiscipline"
	"rtle/internal/analysis/framework"
	"rtle/internal/analysis/gateorder"
	"rtle/internal/analysis/guardmisuse"
	"rtle/internal/analysis/hotalloc"
	"rtle/internal/analysis/loggate"
	"rtle/internal/analysis/statsatomic"
	"rtle/internal/analysis/txbody"
)

// Analyzers returns the full rtlevet suite in its canonical order.
func Analyzers() []*framework.Analyzer {
	return []*framework.Analyzer{
		txbody.Analyzer,
		abortpath.Analyzer,
		barrierdiscipline.Analyzer,
		gateorder.Analyzer,
		loggate.Analyzer,
		hotalloc.Analyzer,
		guardmisuse.Analyzer,
		statsatomic.Analyzer,
	}
}
