package abortpath_test

import (
	"testing"

	"rtle/internal/analysis/abortpath"
	"rtle/internal/analysis/analysistest"
)

// TestGolden runs the analyzer over its golden package: every seeded
// violation must be reported (so the test fails if the pass is disabled)
// and the justified discards must stay silent.
func TestGolden(t *testing.T) {
	analysistest.Run(t, abortpath.Analyzer, "abortpath")
}
