// Package abortpath defines the rtlevet pass that keeps abort codes and
// in-module errors from being silently dropped.
//
// (*htm.Tx).Run never retries — the caller owns the retry/fallback
// decision, exactly as with XBEGIN's fallback path on real hardware. A
// call to Run (or to any API returning htm.AbortReason) whose result is
// discarded is therefore a transaction begin with no reachable abort
// handler: on the first conflict or capacity overflow the critical
// section silently does not execute. The same goes for discarded error
// returns from this module's own APIs (exporters, plan parsers, checkers).
//
// Two discard shapes are flagged:
//
//	tx.Run(body)          // expression statement: always a bug
//	_ = tx.Run(body)      // explicit discard: needs a justifying comment
//
// An explicit `_ =` discard is accepted when a comment sits on the same
// line or on the line directly above it (an //rtle:ignore abortpath
// pragma works too, and also silences the expression-statement form).
package abortpath

import (
	"go/ast"
	"go/types"

	"rtle/internal/analysis/framework"
)

// Analyzer is the abortpath pass.
var Analyzer = &framework.Analyzer{
	Name:    "abortpath",
	Doc:     "flag discarded htm abort codes and discarded in-module errors",
	Version: 1,
	Run:     run,
}

func run(pass *framework.Pass) error {
	for _, file := range pass.Files {
		file := file
		ast.Inspect(file, func(n ast.Node) bool {
			switch stmt := n.(type) {
			case *ast.ExprStmt:
				call, ok := ast.Unparen(stmt.X).(*ast.CallExpr)
				if !ok {
					return true
				}
				if what := discardedResult(pass, call); what != "" {
					pass.Report(stmt.Pos(),
						"%s discarded: every transaction begin needs a reachable abort/retry handler (use the result, or `_ =` it with a justifying comment)",
						what)
				}
			case *ast.AssignStmt:
				checkBlankAssign(pass, file, stmt)
			}
			return true
		})
	}
	return nil
}

// checkBlankAssign flags `_ = call` discards of abort codes or in-module
// errors that carry no justifying comment.
func checkBlankAssign(pass *framework.Pass, file *ast.File, stmt *ast.AssignStmt) {
	if len(stmt.Rhs) != 1 {
		return
	}
	for _, lhs := range stmt.Lhs {
		id, ok := lhs.(*ast.Ident)
		if !ok || id.Name != "_" {
			return // at least one result is kept
		}
	}
	call, ok := ast.Unparen(stmt.Rhs[0]).(*ast.CallExpr)
	if !ok {
		return
	}
	what := discardedResult(pass, call)
	if what == "" {
		return
	}
	if framework.HasAdjacentComment(pass.Fset, file, stmt.Pos()) {
		return
	}
	pass.Report(stmt.Pos(), "%s explicitly discarded without a justifying comment", what)
}

// discardedResult reports what dropping the call's results would discard:
// an htm.AbortReason from any API, or an error produced by this module's
// own functions. Empty means the discard is unremarkable.
func discardedResult(pass *framework.Pass, call *ast.CallExpr) string {
	tv, ok := pass.TypesInfo.Types[call]
	if !ok {
		return ""
	}
	fn := framework.CalleeFunc(pass.TypesInfo, call)
	describe := func(kind string) string {
		if fn != nil {
			return kind + " from " + callName(fn)
		}
		return kind
	}
	check := func(t types.Type) string {
		if framework.IsAbortReason(t) {
			return describe("abort code")
		}
		if framework.IsErrorType(t) && fn != nil && framework.InModule(fn.Pkg(), pass.Module) {
			return describe("error")
		}
		return ""
	}
	if tuple, ok := tv.Type.(*types.Tuple); ok {
		for i := 0; i < tuple.Len(); i++ {
			if what := check(tuple.At(i).Type()); what != "" {
				return what
			}
		}
		return ""
	}
	return check(tv.Type)
}

func callName(fn *types.Func) string {
	if recv := framework.ReceiverNamed(fn); recv != nil {
		return recv.Obj().Name() + "." + fn.Name()
	}
	if fn.Pkg() != nil {
		return fn.Pkg().Name() + "." + fn.Name()
	}
	return fn.Name()
}
