// Package abortpath is the golden input for the abortpath analyzer: each
// expectation comment seeds a true positive; the commented discard and the
// //rtle:ignore site prove the two suppression shapes.
package abortpath

import (
	"fmt"

	"rtle/internal/htm"
	"rtle/internal/mem"
)

func doWork() error { return nil }

func dropped(m *mem.Memory, tx *htm.Tx) {
	tx.Run(func(tx *htm.Tx) {}) // want `abort code from Tx\.Run discarded`
	doWork()                    // want `error from abortpath\.doWork discarded`

	_ = tx.Run(func(tx *htm.Tx) {}) // want `abort code from Tx\.Run explicitly discarded without a justifying comment`
}

func handled(m *mem.Memory, tx *htm.Tx, a mem.Addr) {
	// A kept result is a reachable abort handler: ok.
	if reason := tx.Run(func(tx *htm.Tx) { tx.Write(a, 1) }); reason != htm.None {
		m.Store(a, 1)
	}
	if err := doWork(); err != nil {
		panic(err)
	}

	// Warm-up attempt: an abort here is fine, the caller re-runs anyway.
	_ = tx.Run(func(tx *htm.Tx) {})

	//rtle:ignore abortpath best-effort warm-up attempt
	tx.Run(func(tx *htm.Tx) {})

	// Discarded errors from outside this module are vet's business, not
	// ours: no diagnostic.
	fmt.Println("done")
}
