package analysis_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"rtle/internal/analysis/framework"
	"rtle/internal/analysis/gateorder"
	"rtle/internal/analysis/hotalloc"
	"rtle/internal/analysis/loggate"
)

// TestSuiteTeeth proves the serving-discipline passes bite on the real
// code, not just on golden files: it copies internal/server aside, checks
// the copy analyzes clean, then seeds one violation per pass — a
// descending gate-acquisition loop, a log append after the gates drop, a
// boxing allocation on the response path — and requires the corresponding
// pass to fire. If a refactor ever neuters a recognizer (renames the gate
// field, changes the append signature), the seeded mutation stops firing
// and this test fails before the discipline silently erodes.
func TestSuiteTeeth(t *testing.T) {
	if testing.Short() {
		t.Skip("copies and repeatedly type-checks internal/server")
	}
	root, err := framework.ModuleRoot("")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}

	dir := t.TempDir()
	src := filepath.Join(root, "internal", "server")
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	originals := map[string]string{} // base name -> content
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, name))
		if err != nil {
			t.Fatal(err)
		}
		originals[name] = string(data)
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o666); err != nil {
			t.Fatal(err)
		}
	}

	loader := framework.NewLoader(root)
	analyze := func(a *framework.Analyzer) []framework.Diagnostic {
		t.Helper()
		pkg, err := loader.LoadDir(dir)
		if err != nil {
			t.Fatalf("loading mutated copy: %v", err)
		}
		if len(pkg.TypeErrors) > 0 {
			t.Fatalf("mutated copy does not type-check: %v", pkg.TypeErrors)
		}
		diags, err := framework.RunAnalyzer(a, pkg)
		if err != nil {
			t.Fatalf("running %s: %v", a.Name, err)
		}
		return diags
	}

	// Baseline: the verbatim copy must be as clean as the real tree, so
	// any diagnostic below is attributable to the seeded mutation alone.
	for _, a := range []*framework.Analyzer{gateorder.Analyzer, loggate.Analyzer, hotalloc.Analyzer} {
		if diags := analyze(a); len(diags) > 0 {
			t.Fatalf("baseline copy not clean under %s: %v", a.Name, diags)
		}
	}

	mutations := []struct {
		name     string
		file     string
		old, new string
		analyzer *framework.Analyzer
		want     string // substring of the expected diagnostic message
	}{
		{
			name: "gateorder/descending-acquisition",
			file: "shard.go",
			old: `	for _, k := range spans {
		tp.shards[k].gate.Lock()
	}`,
			new: `	for i := len(spans) - 1; i >= 0; i-- {
		tp.shards[spans[i]].gate.Lock()
	}`,
			analyzer: gateorder.Analyzer,
			want:     "range loop",
		},
		{
			name: "loggate/append-after-release",
			file: "shard.go",
			old: `	bar := s.replAppendSlow(tp, spans, ops)
	tp.unlockSpans(spans)`,
			new: `	tp.unlockSpans(spans)
	bar := s.replAppendSlow(tp, spans, ops)`,
			analyzer: loggate.Analyzer,
			want:     "outside a held gate region",
		},
		{
			name: "hotalloc/boxing-on-response-path",
			file: "server.go",
			old:  `	s.metrics.statuses[resp.Status].Add(1)`,
			new: `	trace := fmt.Sprint(resp.ID)
	_ = trace
	s.metrics.statuses[resp.Status].Add(1)`,
			analyzer: hotalloc.Analyzer,
			want:     "boxed into interface",
		},
	}

	for _, m := range mutations {
		t.Run(m.name, func(t *testing.T) {
			orig, ok := originals[m.file]
			if !ok {
				t.Fatalf("no copied file %s", m.file)
			}
			if !strings.Contains(orig, m.old) {
				t.Fatalf("%s no longer contains the mutation anchor %q; update the teeth test alongside the refactor", m.file, m.old)
			}
			mutated := strings.Replace(orig, m.old, m.new, 1)
			path := filepath.Join(dir, m.file)
			if err := os.WriteFile(path, []byte(mutated), 0o666); err != nil {
				t.Fatal(err)
			}
			defer func() {
				if err := os.WriteFile(path, []byte(orig), 0o666); err != nil {
					t.Fatal(err)
				}
			}()

			diags := analyze(m.analyzer)
			found := false
			for _, d := range diags {
				if strings.Contains(d.Message, m.want) && filepath.Base(d.Pos.Filename) == m.file {
					found = true
				}
			}
			if !found {
				t.Fatalf("%s did not fire on the seeded violation (want a diagnostic containing %q); got: %v",
					m.analyzer.Name, m.want, diags)
			}
		})
	}
}
