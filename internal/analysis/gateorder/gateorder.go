// Package gateorder defines the rtlevet pass that statically enforces the
// cross-shard drain-gate locking discipline (DESIGN.md §7):
//
//  1. Exclusive gate acquisition (`gate.Lock`) is legal only inside the
//     one sanctioned multi-gate helper, marked //rtle:gatelock. Everywhere
//     else an exclusive Lock is a second, unordered acquisition site —
//     the raw material of a deadlock cycle.
//
//  2. Inside the //rtle:gatelock helper, every Lock must sit in a range
//     loop: the helper receives the span list already sorted ascending
//     (router.plan), so ranging over it is ascending-by-construction. A
//     hand-rolled index loop (which could iterate descending) is flagged.
//
//  3. While exclusive gates are held — between a call to a gatelock
//     helper and the matching call to its releasing twin — acquiring a
//     gate in shared mode is a lock-order inversion: the fast path takes
//     shared gates with no ordering protocol, so an exclusive holder that
//     blocks on RLock can deadlock against a writer queued behind its own
//     exclusive gates.
//
// The pass is interprocedural via the framework call graph: acquire and
// release events include calls to helpers whose summaries show a direct
// exclusive Lock/Unlock, and the inversion check also fires on calls to
// functions that transitively take a shared gate. Region tracking is
// positional (textual order within one body) — the discipline keeps
// acquire and release in the same straight-line function, so this is
// exact for conforming code and conservative for contortions.
package gateorder

import (
	"go/ast"
	"go/token"
	"sort"

	"rtle/internal/analysis/framework"
)

// Analyzer is the gateorder pass.
var Analyzer = &framework.Analyzer{
	Name:    "gateorder",
	Doc:     "exclusive shard gates only via the //rtle:gatelock helper, ascending, with no shared acquisition while held",
	Version: 1,
	Run:     run,
}

func run(pass *framework.Pass) error {
	g := framework.NewGraph(pass)
	for _, s := range g.Functions() {
		checkAcquisitions(pass, s)
		checkInversions(pass, g, s)
	}
	return nil
}

// checkAcquisitions flags exclusive gate Locks outside //rtle:gatelock
// helpers, and non-range Locks inside them.
func checkAcquisitions(pass *framework.Pass, s *framework.Summary) {
	gatelock := s.Declared.Has(framework.MarkGatelock)
	var rangeSpans [][2]token.Pos
	ast.Inspect(s.Decl.Body, func(n ast.Node) bool {
		if r, ok := n.(*ast.RangeStmt); ok {
			rangeSpans = append(rangeSpans, [2]token.Pos{r.Body.Pos(), r.Body.End()})
		}
		return true
	})
	inRange := func(pos token.Pos) bool {
		for _, r := range rangeSpans {
			if r[0] <= pos && pos <= r[1] {
				return true
			}
		}
		return false
	}
	ast.Inspect(s.Decl.Body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		name, ok := framework.GateMethod(pass.TypesInfo, call)
		if !ok || name != "Lock" {
			return true
		}
		switch {
		case !gatelock:
			pass.Report(call.Pos(),
				"exclusive gate.Lock in %s, outside a //rtle:gatelock helper; all multi-gate acquisition must go through the sanctioned ascending helper",
				s.Fn.Name())
		case !inRange(call.Pos()):
			pass.Report(call.Pos(),
				"exclusive gate.Lock in //rtle:gatelock helper %s is not inside a range loop; acquisition must range over the ascending span list to stay ascending-by-construction",
				s.Fn.Name())
		}
		return true
	})
}

// event is one gate-relevant site in a function body, in textual order.
type event struct {
	pos  token.Pos
	kind int // eAcquire / eRelease / eShared
	what string
}

const (
	eAcquire = iota
	eRelease
	eShared
)

// checkInversions flags shared gate acquisition (direct RLock or a call
// into code that transitively RLocks) while exclusive gates are held.
func checkInversions(pass *framework.Pass, g *framework.Graph, s *framework.Summary) {
	if s.Declared.Has(framework.MarkGatelock) {
		return // the acquisition helper itself is checked above
	}
	var events []event
	ast.Inspect(s.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			// Deferred, spawned, and closure code runs at another time;
			// positional region tracking does not apply to it.
			_ = n
			return false
		case *ast.CallExpr:
			if name, ok := framework.GateMethod(pass.TypesInfo, n); ok {
				switch name {
				case "Lock":
					events = append(events, event{n.Pos(), eAcquire, "gate.Lock"})
				case "Unlock":
					events = append(events, event{n.Pos(), eRelease, "gate.Unlock"})
				case "RLock":
					events = append(events, event{n.Pos(), eShared, "gate.RLock"})
				}
				return true
			}
			callee := framework.CalleeFunc(pass.TypesInfo, n)
			if callee == nil {
				return true
			}
			cs := g.Summary(callee)
			if cs == nil {
				return true
			}
			switch {
			case cs.Direct.Has(framework.EffectExclusiveGate):
				events = append(events, event{n.Pos(), eAcquire, callee.Name()})
			case cs.Direct.Has(framework.EffectExclusiveUngate):
				events = append(events, event{n.Pos(), eRelease, callee.Name()})
			case cs.Effects.Has(framework.EffectSharedGate):
				events = append(events, event{n.Pos(), eShared, callee.Name()})
			}
		}
		return true
	})
	sort.Slice(events, func(i, j int) bool { return events[i].pos < events[j].pos })
	depth := 0
	for _, e := range events {
		switch e.kind {
		case eAcquire:
			depth++
		case eRelease:
			if depth > 0 {
				depth--
			}
		case eShared:
			if depth > 0 {
				pass.Report(e.pos,
					"shared gate acquisition (%s) while exclusive gates are held in %s; RLock under a held exclusive gate inverts the drain-gate order",
					e.what, s.Fn.Name())
			}
		}
	}
}
