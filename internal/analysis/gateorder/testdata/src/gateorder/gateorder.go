// Package gateorder is the golden input for the gateorder analyzer: a
// miniature sharded server whose sanctioned locking helper is clean and
// whose rogue/descending/inverted acquisitions seed true positives. The
// //rtle:ignore site proves a reviewed single-gate teardown drain stays
// silent.
package gateorder

import "sync"

type shard struct {
	gate sync.RWMutex
}

type srv struct {
	shards []*shard
}

// lockSpans is the sanctioned multi-gate helper: spans arrives sorted
// ascending, the range loop preserves that order, so acquisition is
// ascending-by-construction.
//
//rtle:gatelock
func (s *srv) lockSpans(spans []int) {
	for _, k := range spans {
		s.shards[k].gate.Lock()
	}
}

// unlockSpans releases the gates taken by lockSpans.
func (s *srv) unlockSpans(spans []int) {
	for _, k := range spans {
		s.shards[k].gate.Unlock()
	}
}

// lockDescending is marked gatelock but hand-rolls a descending index
// loop — exactly the mutation that breaks the deadlock-freedom argument.
//
//rtle:gatelock
func (s *srv) lockDescending(spans []int) {
	for i := len(spans) - 1; i >= 0; i-- {
		s.shards[spans[i]].gate.Lock() // want `exclusive gate\.Lock in //rtle:gatelock helper lockDescending is not inside a range loop`
	}
}

// rogueLock takes an exclusive gate outside any sanctioned helper: a
// second, unordered acquisition site.
func (s *srv) rogueLock(k int) {
	s.shards[k].gate.Lock() // want `exclusive gate\.Lock in rogueLock, outside a //rtle:gatelock helper`
	s.shards[k].gate.Unlock()
}

// fastSection takes a gate in shared mode — fine on its own; the fast
// path has no ordering protocol because shared acquisitions cannot form
// a cycle among themselves.
func (s *srv) fastSection(k int, body func()) {
	s.shards[k].gate.RLock()
	body()
	s.shards[k].gate.RUnlock()
}

// slowThenFast acquires a shared gate (via fastSection, one call deep)
// while exclusive gates are held: a lock-order inversion.
func (s *srv) slowThenFast(spans []int, body func()) {
	s.lockSpans(spans)
	s.fastSection(spans[0], body) // want `shared gate acquisition \(fastSection\) while exclusive gates are held in slowThenFast`
	s.unlockSpans(spans)
}

// slowThenRLock is the same inversion without the helper indirection.
func (s *srv) slowThenRLock(spans []int) {
	s.lockSpans(spans)
	s.shards[0].gate.RLock() // want `shared gate acquisition \(gate\.RLock\) while exclusive gates are held in slowThenRLock`
	s.shards[0].gate.RUnlock()
	s.unlockSpans(spans)
}

// slowClean releases before touching the fast path: no inversion.
func (s *srv) slowClean(spans []int, body func()) {
	s.lockSpans(spans)
	s.unlockSpans(spans)
	s.fastSection(spans[0], body)
}

// drainOne is a reviewed false positive: a single-shard teardown drain
// can hold at most one gate, so no cycle is possible, and the waiver
// records that argument.
func (s *srv) drainOne(k int) {
	//rtle:ignore gateorder single-gate teardown drain; one gate cannot form a cycle
	s.shards[k].gate.Lock()
	s.shards[k].gate.Unlock()
}
