package gateorder_test

import (
	"testing"

	"rtle/internal/analysis/analysistest"
	"rtle/internal/analysis/gateorder"
)

func TestGateOrder(t *testing.T) {
	analysistest.Run(t, gateorder.Analyzer, "gateorder")
}
