package barrierdiscipline_test

import (
	"testing"

	"rtle/internal/analysis/analysistest"
	"rtle/internal/analysis/barrierdiscipline"
)

// TestGolden runs the analyzer over its golden package: every seeded
// violation must be reported (so the test fails if the pass is disabled)
// and the annotated lock-holder/constructor/snapshot sites must stay
// silent.
func TestGolden(t *testing.T) {
	analysistest.Run(t, barrierdiscipline.Analyzer, "barrierdiscipline")
}
