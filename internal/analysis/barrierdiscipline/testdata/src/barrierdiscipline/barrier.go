// Package barrierdiscipline is the golden input for the barrierdiscipline
// analyzer: a miniature FG-TLE-shaped method whose annotated paths are
// clean and whose unannotated paths seed true positives. The //rtle:ignore
// site proves the sanctioned pre-transaction snapshot idiom stays silent.
package barrierdiscipline

import (
	"rtle/internal/htm"
	"rtle/internal/mem"
)

type method struct {
	m         *mem.Memory
	epochAddr mem.Addr //rtle:meta
	orecs     mem.Addr //rtle:meta
	wrote     bool     //rtle:meta
}

// newMethod is single-threaded setup: metadata stores are allowed.
//
//rtle:init
func newMethod(m *mem.Memory) *method {
	f := &method{m: m}
	f.epochAddr = m.AllocLines(1)
	f.orecs = m.AllocAligned(8)
	m.Store(f.epochAddr, 1)
	return f
}

// runUnderLock is the lock-holder path: the only place metadata writes are
// legal.
//
//rtle:lockpath
func (f *method) runUnderLock() {
	f.m.Store(f.epochAddr, 2)
	oa := f.orecs + mem.Addr(1)
	f.m.Store(oa, 2)
	f.wrote = true
}

// sneakyBump mutates writer metadata without holding the lock.
func (f *method) sneakyBump() {
	f.m.Store(f.epochAddr, 3) // want `writer metadata epochAddr mutated via Memory\.Store outside the lock-holder path`
	oa := f.orecs + mem.Addr(4)
	f.m.Store(oa, 9) // want `writer metadata oa mutated via Memory\.Store outside the lock-holder path`
	f.wrote = true   // want `writer metadata wrote assigned outside the lock-holder path`
}

//rtle:slowpath
func (f *method) slowAttempt(tx *htm.Tx) htm.AbortReason {
	return tx.Run(func(tx *htm.Tx) {
		helper(f, tx)
	})
}

// helper is reachable from the instrumented slow path (both via the
// //rtle:slowpath mark above and via the Run closure), so its raw load is
// an uninstrumented access inside speculation.
func helper(f *method, tx *htm.Tx) {
	f.m.Load(f.epochAddr) // want `raw heap access Memory\.Load in helper, which is reachable from the instrumented slow path`
	_ = tx.Read(f.epochAddr)
}

// bumpOrecs is never annotated, but its only callers are the lockpath
// function below and the //rtle:init constructor path — the framework's
// backward propagation infers it runs with the lock held, so the metadata
// store stays silent.
func (f *method) bumpOrecs(v uint64) {
	f.m.Store(f.orecs, v)
	f.wrote = true
}

// runUnderLockViaHelper shows the propagation in action: no restated mark
// on bumpOrecs.
//
//rtle:lockpath
func (f *method) runUnderLockViaHelper() {
	f.bumpOrecs(7)
}

// mixedHelper has one lockpath caller and one unannotated caller, so the
// all-callers rule does NOT fire and its metadata write is still a
// violation.
func (f *method) mixedHelper() {
	f.wrote = true // want `writer metadata wrote assigned outside the lock-holder path`
}

//rtle:lockpath
func (f *method) lockCallsMixed() { f.mixedHelper() }

func (f *method) openCallsMixed() { f.mixedHelper() }

// chainTail is two hops below a lockpath function through chainMid; the
// fixpoint covers the whole chain.
func (f *method) chainTail() { f.wrote = true }

func (f *method) chainMid() { f.chainTail() }

//rtle:lockpath
func (f *method) lockChainRoot() { f.chainMid() }

// coveredStop mutates metadata through a raw store; because its only
// caller is lockpath, coverage exempts it from the meta check exactly as a
// declared //rtle:lockpath would.
//
//rtle:lockpath
func (f *method) coveredStopCaller() { f.coveredStop() }

func (f *method) coveredStop() {
	f.m.Store(f.epochAddr, 5)
}

// snapshotThenRun is the paper's Figure 3 idiom: the epoch is read raw
// BEFORE the transaction begins so the epoch line stays out of the read
// set. The waiver documents exactly that.
//
//rtle:slowpath
func (f *method) snapshotThenRun(tx *htm.Tx) htm.AbortReason {
	//rtle:ignore barrierdiscipline pre-transaction epoch snapshot
	seq := f.m.Load(f.epochAddr)
	return tx.Run(func(tx *htm.Tx) {
		if tx.Read(f.epochAddr) >= seq {
			tx.Abort()
		}
	})
}
