// Package barrierdiscipline defines the rtlevet pass that statically
// enforces the RW-TLE/FG-TLE barrier protocol:
//
//  1. Slow-path code — functions marked //rtle:slowpath, plus every
//     same-package function statically reachable from one of them or from
//     a (*htm.Tx).Run closure — must route all simulated-heap access
//     through the htm.Tx barriers. A raw mem.Memory call there escapes
//     transactional conflict tracking, which is precisely the one
//     un-instrumented access that breaks opacity. (Raw access directly
//     inside a Run closure is txbody's report; this pass owns the code
//     *reachable* from those closures.)
//
//  2. Writer metadata — struct fields marked //rtle:meta (the RW-TLE
//     write flag, FG-TLE orec arrays and epoch, per-section counters) —
//     may only be mutated on the lock-holder path, i.e. inside functions
//     marked //rtle:lockpath (or //rtle:init for single-threaded
//     constructors). For fields of type mem.Addr the guarded operation is
//     a mem.Memory.Store/CAS/FetchAdd whose address derives from the
//     field (a simple local taint follows the address through local
//     variables); for ordinary Go fields it is direct assignment.
//
// Both rules are interprocedural over the framework call graph. The
// //rtle:lockpath mark propagates backward onto unannotated private
// helpers all of whose callers are lockpath (or init) — the helper runs
// with the lock held without restating the mark — and the slow-path mark
// propagates forward from its roots, stopping at effective lockpath/init
// functions.
//
// Packages marked //rtle:engine are exempt (they *are* the raw layer).
package barrierdiscipline

import (
	"go/ast"
	"go/types"

	"rtle/internal/analysis/framework"
)

// Analyzer is the barrierdiscipline pass.
var Analyzer = &framework.Analyzer{
	Name:    "barrierdiscipline",
	Doc:     "enforce instrumented barriers on slow paths and lock-holder-only metadata writes",
	Version: 2, // v2: interprocedural lockpath propagation onto covered helpers
	Run:     run,
}

var rawMemMethods = []string{
	"Load", "Store", "CAS", "FetchAdd",
	"WordLoad", "WordStore", "MetaLoad", "TryLockLine", "UnlockLine",
	"ClockLoad", "ClockTick", "Alloc", "AllocAligned", "AllocLines",
}

var mutatingMemMethods = []string{"Store", "CAS", "FetchAdd"}

func run(pass *framework.Pass) error {
	if pass.Ann.Engine {
		return nil
	}
	g := framework.NewGraph(pass)
	// Backward lockpath propagation first: a private helper called only
	// from lockpath/init code runs with the lock held, which both exempts
	// it from the meta check and stops slow-path propagation at it.
	g.MarkCovered(framework.MarkLockpath, framework.MarkLockpath|framework.MarkInit)
	checkSlowReachable(pass, g)
	if pass.Ann.HasMeta() {
		checkMetaDiscipline(pass, g)
	}
	return nil
}

const offPath = framework.MarkLockpath | framework.MarkInit

// checkSlowReachable flags raw mem.Memory access in every function
// reachable from the instrumented slow path.
func checkSlowReachable(pass *framework.Pass, g *framework.Graph) {
	// Seed with //rtle:slowpath functions (declared) plus same-package
	// functions called directly from (*htm.Tx).Run closures, then
	// propagate forward, stopping at effective lockpath/init functions
	// (a different execution path; the meta check covers them).
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			if !framework.IsTxMethod(framework.CalleeFunc(pass.TypesInfo, call), "Run") {
				return true
			}
			if lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
				ast.Inspect(lit.Body, func(n ast.Node) bool {
					if inner, ok := n.(*ast.CallExpr); ok {
						if callee := framework.CalleeFunc(pass.TypesInfo, inner); callee != nil {
							g.Mark(callee, framework.MarkSlowpath)
						}
					}
					return true
				})
			}
			return true
		})
	}
	g.MarkReachable(framework.MarkSlowpath, offPath)

	for _, s := range g.Functions() {
		if s.Marks&framework.MarkSlowpath == 0 || s.Marks&offPath != 0 {
			continue
		}
		fn, body := s.Fn, s.Decl.Body
		// Run-closure bodies inside a slow-path function are txbody's
		// scope; do not double-report them.
		skipLits := map[*ast.FuncLit]bool{}
		ast.Inspect(body, func(n ast.Node) bool {
			if call, ok := n.(*ast.CallExpr); ok && len(call.Args) > 0 &&
				framework.IsTxMethod(framework.CalleeFunc(pass.TypesInfo, call), "Run") {
				if lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
					skipLits[lit] = true
				}
			}
			return true
		})
		ast.Inspect(body, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok && skipLits[lit] {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := framework.CalleeFunc(pass.TypesInfo, call); framework.IsMemoryMethod(callee, rawMemMethods...) {
				pass.Report(call.Pos(),
					"raw heap access Memory.%s in %s, which is reachable from the instrumented slow path; slow-path code must use the htm.Tx barriers",
					callee.Name(), fn.Name())
			}
			return true
		})
	}
}

// checkMetaDiscipline enforces that //rtle:meta fields are only mutated
// inside //rtle:lockpath (or //rtle:init) functions — declared or
// inherited from an all-lockpath caller set.
func checkMetaDiscipline(pass *framework.Pass, g *framework.Graph) {
	for _, s := range g.Functions() {
		if s.Marks&offPath != 0 {
			continue
		}
		fd := s.Decl
		taint := taintedLocals(pass, fd.Body)
		ast.Inspect(fd.Body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				callee := framework.CalleeFunc(pass.TypesInfo, n)
				if !framework.IsMemoryMethod(callee, mutatingMemMethods...) || len(n.Args) == 0 {
					return true
				}
				if field := metaFieldIn(pass, taint, n.Args[0]); field != nil {
					pass.Report(n.Pos(),
						"writer metadata %s mutated via Memory.%s outside the lock-holder path; mark the enclosing function //rtle:lockpath if it only runs with the lock held",
						field.Name(), callee.Name())
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					reportGoFieldWrite(pass, lhs)
				}
			case *ast.IncDecStmt:
				reportGoFieldWrite(pass, n.X)
			}
			return true
		})
	}
}

// reportGoFieldWrite flags direct assignment to a non-Addr meta field
// (Go-level lock-holder state such as RW-TLE's wrote flag).
func reportGoFieldWrite(pass *framework.Pass, lhs ast.Expr) {
	sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr)
	if !ok {
		return
	}
	field := fieldVar(pass, sel)
	if field == nil || !pass.Ann.IsMeta(field) || isMemAddr(field.Type()) {
		return
	}
	pass.Report(lhs.Pos(),
		"writer metadata %s assigned outside the lock-holder path; mark the enclosing function //rtle:lockpath if it only runs with the lock held",
		field.Name())
}

// isMemAddr reports whether t is mem.Addr — an address-holding metadata
// field, for which assignment of the Go value itself (in a constructor)
// is configuration, not a metadata write.
func isMemAddr(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "Addr" && framework.PkgPathIs(named.Obj().Pkg(), "internal/mem")
}

// taintedLocals returns the local variables whose value derives from a
// meta field's address (a forward fixed point over the body's
// assignments, so `oa := f.orecs + idx; m.Store(oa, v)` is caught).
func taintedLocals(pass *framework.Pass, body *ast.BlockStmt) map[*types.Var]bool {
	taint := map[*types.Var]bool{}
	for changed := true; changed; {
		changed = false
		ast.Inspect(body, func(n ast.Node) bool {
			assign, ok := n.(*ast.AssignStmt)
			if !ok || len(assign.Lhs) != len(assign.Rhs) {
				return true
			}
			for i, rhs := range assign.Rhs {
				if metaFieldIn(pass, taint, rhs) == nil {
					continue
				}
				id, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.Defs[id]
				if obj == nil {
					obj = pass.TypesInfo.Uses[id]
				}
				if v, ok := obj.(*types.Var); ok && !taint[v] {
					taint[v] = true
					changed = true
				}
			}
			return true
		})
	}
	return taint
}

// metaFieldIn returns a meta field referenced (directly or via a tainted
// local) anywhere inside expr, or nil.
func metaFieldIn(pass *framework.Pass, taint map[*types.Var]bool, expr ast.Expr) *types.Var {
	var found *types.Var
	ast.Inspect(expr, func(n ast.Node) bool {
		if found != nil {
			return false
		}
		switch n := n.(type) {
		case *ast.SelectorExpr:
			if field := fieldVar(pass, n); field != nil && pass.Ann.IsMeta(field) {
				found = field
				return false
			}
		case *ast.Ident:
			if v, ok := pass.TypesInfo.Uses[n].(*types.Var); ok && (taint[v] || pass.Ann.IsMeta(v)) {
				found = v
				return false
			}
		}
		return true
	})
	return found
}

// fieldVar resolves sel to the struct field it selects, or nil.
func fieldVar(pass *framework.Pass, sel *ast.SelectorExpr) *types.Var {
	if s, ok := pass.TypesInfo.Selections[sel]; ok && s.Kind() == types.FieldVal {
		if v, ok := s.Obj().(*types.Var); ok {
			return v
		}
	}
	return nil
}
