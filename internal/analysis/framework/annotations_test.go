package framework

import (
	"go/ast"
	"go/parser"
	"go/token"
	"go/types"
	"testing"
)

// checkSource parses and type-checks one import-free source file.
func checkSource(t *testing.T, filename, src string) *Package {
	t.Helper()
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, filename, src, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	pkg := &Package{
		PkgPath: "rtle/testdata/" + file.Name.Name,
		Module:  "rtle",
		Fset:    fset,
		Files:   []*ast.File{file},
		TypesInfo: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
		},
	}
	conf := types.Config{Error: func(err error) { t.Fatalf("type check: %v", err) }}
	pkg.Types, _ = conf.Check(pkg.PkgPath, fset, pkg.Files, pkg.TypesInfo)
	return pkg
}

const annotatedSrc = `package p

//rtle:engine

type state struct {
	flag uint64 //rtle:meta
	// epoch is the lock holder's clock.
	//rtle:meta
	epoch uint64
	plain uint64
}

//rtle:counters
type hits struct {
	n uint64
}

// run is both speculative and, after fallback, a lock holder.
//
//rtle:speculative
//rtle:lockpath
func run(s *state) { s.flag = 1 }

//rtle:init
func setup() *state { return &state{} }

func unmarked() {}
`

func TestParseAnnotations(t *testing.T) {
	pkg := checkSource(t, "p.go", annotatedSrc)
	ann := ParseAnnotations(pkg.Fset, pkg.Files, pkg.TypesInfo)

	if !ann.Engine {
		t.Errorf("Engine = false, want true")
	}

	funcs := map[string]Marks{}
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		if fn, ok := scope.Lookup(name).(*types.Func); ok {
			funcs[name] = ann.FuncMarks(fn)
		}
	}
	if m := funcs["run"]; !m.Has(MarkSpeculative) || !m.Has(MarkLockpath) || m.Has(MarkSlowpath) {
		t.Errorf("run marks = %b, want speculative|lockpath", m)
	}
	if m := funcs["setup"]; !m.Has(MarkInit) {
		t.Errorf("setup marks = %b, want init", m)
	}
	if m := funcs["unmarked"]; m != 0 {
		t.Errorf("unmarked marks = %b, want none", m)
	}

	st := scope.Lookup("state").Type().Underlying().(*types.Struct)
	wantMeta := map[string]bool{"flag": true, "epoch": true, "plain": false}
	for i := 0; i < st.NumFields(); i++ {
		f := st.Field(i)
		if got := ann.IsMeta(f); got != wantMeta[f.Name()] {
			t.Errorf("IsMeta(%s) = %v, want %v", f.Name(), got, wantMeta[f.Name()])
		}
	}
	if !ann.HasMeta() {
		t.Errorf("HasMeta() = false, want true")
	}

	if tn := scope.Lookup("hits").(*types.TypeName); !ann.IsCounterType(tn) {
		t.Errorf("IsCounterType(hits) = false, want true")
	}
	if tn := scope.Lookup("state").(*types.TypeName); ann.IsCounterType(tn) {
		t.Errorf("IsCounterType(state) = true, want false")
	}
}

const suppressSrc = `package p

func a() {}
func b() {}
func c() {}
func d() {}

func calls() {
	a()
	//rtle:ignore fake covered by the standalone pragma above the next line
	b()
	c() //rtle:ignore fake trailing pragma covers its own line
	//rtle:ignore other a different analyzer's pragma does not apply
	d()
}
`

// TestReportSuppression drives Pass.Report through a fake analyzer and
// checks which //rtle:ignore shapes silence it.
func TestReportSuppression(t *testing.T) {
	fake := &Analyzer{
		Name: "fake",
		Doc:  "flags every call",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						pass.Report(call.Pos(), "call flagged")
					}
					return true
				})
			}
			return nil
		},
	}
	pkg := checkSource(t, "p.go", suppressSrc)
	diags, err := RunAnalyzer(fake, pkg)
	if err != nil {
		t.Fatalf("RunAnalyzer: %v", err)
	}
	var lines []int
	for _, d := range diags {
		lines = append(lines, d.Pos.Line)
	}
	// a() on line 9 (unprotected) and d() on line 14 (pragma names another
	// analyzer) must survive; b() and c() are suppressed.
	want := []int{9, 14}
	if len(lines) != len(want) || lines[0] != want[0] || lines[1] != want[1] {
		t.Fatalf("diagnostic lines = %v, want %v", lines, want)
	}
}

// TestRunAnalyzerSkipsTestFiles checks the framework-level _test.go
// exemption: the discipline binds production paths only.
func TestRunAnalyzerSkipsTestFiles(t *testing.T) {
	fset := token.NewFileSet()
	parse := func(name, src string) *ast.File {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		return f
	}
	files := []*ast.File{
		parse("p.go", "package p\n\nfunc a() {}\n"),
		parse("p_test.go", "package p\n\nfunc helper() { a() }\n"),
	}
	pkg := &Package{
		PkgPath: "rtle/testdata/p", Module: "rtle", Fset: fset, Files: files,
		TypesInfo: &types.Info{
			Types: map[ast.Expr]types.TypeAndValue{},
			Defs:  map[*ast.Ident]types.Object{},
			Uses:  map[*ast.Ident]types.Object{},
		},
	}
	conf := types.Config{Error: func(error) {}}
	pkg.Types, _ = conf.Check(pkg.PkgPath, fset, files, pkg.TypesInfo)

	fake := &Analyzer{
		Name: "fake",
		Doc:  "flags every call",
		Run: func(pass *Pass) error {
			for _, f := range pass.Files {
				ast.Inspect(f, func(n ast.Node) bool {
					if call, ok := n.(*ast.CallExpr); ok {
						pass.Report(call.Pos(), "call flagged")
					}
					return true
				})
			}
			return nil
		},
	}
	diags, err := RunAnalyzer(fake, pkg)
	if err != nil {
		t.Fatalf("RunAnalyzer: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("got %d diagnostics from a call that only exists in _test.go, want 0: %v", len(diags), diags)
	}
}

const adjacentSrc = `package p

var a, b, c, d int

func f() {
	a = 1 // same-line comment
	// the line above this assignment
	b = 2
	c = 3
	d = 4 // want "only an expectation"
}
`

func TestHasAdjacentComment(t *testing.T) {
	fset := token.NewFileSet()
	file, err := parser.ParseFile(fset, "p.go", adjacentSrc, parser.ParseComments|parser.SkipObjectResolution)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	byLine := map[int]token.Pos{}
	ast.Inspect(file, func(n ast.Node) bool {
		if as, ok := n.(*ast.AssignStmt); ok {
			byLine[fset.Position(as.Pos()).Line] = as.Pos()
		}
		return true
	})
	for line, want := range map[int]bool{6: true, 8: true, 9: false, 10: false} {
		pos, ok := byLine[line]
		if !ok {
			t.Fatalf("no assignment found on line %d", line)
		}
		if got := HasAdjacentComment(fset, file, pos); got != want {
			t.Errorf("HasAdjacentComment(line %d) = %v, want %v", line, got, want)
		}
	}
}

const edgeSrc = `package p

type State struct{ n uint64 }

// Mark's receiver type is parenthesized: grouping must not hide the
// method from the annotation walk.
//
//rtle:hotpath
func (s *(State)) Mark() { s.n++ }

// hot carries a compiler directive between the mark and the declaration;
// both live in the same doc group and the mark must still bind.
//
//rtle:hotpath
//go:noinline
func hot() {}
`

// TestParseAnnotationsEdgeCases pins two shapes that once silently lost
// marks in prototype parsers: parenthesized (grouped) receiver types, and
// marks stacked above //go: compiler directives.
func TestParseAnnotationsEdgeCases(t *testing.T) {
	pkg := checkSource(t, "p.go", edgeSrc)
	ann := ParseAnnotations(pkg.Fset, pkg.Files, pkg.TypesInfo)
	if len(ann.Errors) != 0 {
		t.Fatalf("unexpected annotation errors: %v", ann.Errors)
	}

	scope := pkg.Types.Scope()
	named := scope.Lookup("State").Type()
	var method *types.Func
	for ms, i := types.NewMethodSet(types.NewPointer(named)), 0; i < ms.Len(); i++ {
		if fn := ms.At(i).Obj().(*types.Func); fn.Name() == "Mark" {
			method = fn
		}
	}
	if method == nil {
		t.Fatal("method Mark not found on *State")
	}
	if m := ann.FuncMarks(method); !m.Has(MarkHotpath) {
		t.Errorf("FuncMarks((*(State)).Mark) = %b, want hotpath: grouped receiver dropped the mark", m)
	}
	if m := ann.FuncMarks(scope.Lookup("hot").(*types.Func)); !m.Has(MarkHotpath) {
		t.Errorf("FuncMarks(hot) = %b, want hotpath: //go: directive shadowed the mark", m)
	}
}

const conflictSrc = `package p

// torn claims both temperatures; last-wins would silently honor whichever
// pragma sorts later, so the parser must reject the pair instead.
//
//rtle:hotpath
//rtle:coldpath
func torn() {}

//rtle:gated
//rtle:gatelock
func tornGate() {}

//rtle:hotpath
func fine() {}
`

// TestParseAnnotationsConflict requires conflicting mark pairs to produce
// a parse error and apply neither bit — not last-wins.
func TestParseAnnotationsConflict(t *testing.T) {
	pkg := checkSource(t, "p.go", conflictSrc)
	ann := ParseAnnotations(pkg.Fset, pkg.Files, pkg.TypesInfo)
	if len(ann.Errors) != 2 {
		t.Fatalf("got %d annotation errors, want 2: %v", len(ann.Errors), ann.Errors)
	}
	for _, e := range ann.Errors {
		if e.Analyzer != "annotations" {
			t.Errorf("error attributed to %q, want \"annotations\"", e.Analyzer)
		}
	}
	scope := pkg.Types.Scope()
	if m := ann.FuncMarks(scope.Lookup("torn").(*types.Func)); m.Has(MarkHotpath) || m.Has(MarkColdpath) {
		t.Errorf("torn marks = %b, want neither hotpath nor coldpath applied", m)
	}
	if m := ann.FuncMarks(scope.Lookup("tornGate").(*types.Func)); m.Has(MarkGated) || m.Has(MarkGatelock) {
		t.Errorf("tornGate marks = %b, want neither gated nor gatelock applied", m)
	}
	if m := ann.FuncMarks(scope.Lookup("fine").(*types.Func)); !m.Has(MarkHotpath) {
		t.Errorf("fine marks = %b, want hotpath: a conflict elsewhere must not leak", m)
	}
}

// TestAnnotationsSkipTestFiles checks that Package.Annotations ignores
// marks and waivers living in _test.go files: test scaffolding cannot
// grant the production tree exemptions.
func TestAnnotationsSkipTestFiles(t *testing.T) {
	fset := token.NewFileSet()
	parse := func(name, src string) *ast.File {
		f, err := parser.ParseFile(fset, name, src, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			t.Fatalf("parse %s: %v", name, err)
		}
		return f
	}
	files := []*ast.File{
		parse("p.go", "package p\n\nfunc a() {}\n"),
		parse("p_test.go", "package p\n\n//rtle:hotpath\nfunc helper() {}\n"),
	}
	pkg := &Package{
		PkgPath: "rtle/testdata/p", Module: "rtle", Fset: fset, Files: files,
		TypesInfo: &types.Info{
			Types: map[ast.Expr]types.TypeAndValue{},
			Defs:  map[*ast.Ident]types.Object{},
			Uses:  map[*ast.Ident]types.Object{},
		},
	}
	conf := types.Config{Error: func(error) {}}
	pkg.Types, _ = conf.Check(pkg.PkgPath, fset, files, pkg.TypesInfo)

	ann := pkg.Annotations()
	scope := pkg.Types.Scope()
	if fn, ok := scope.Lookup("helper").(*types.Func); ok {
		if m := ann.FuncMarks(fn); m != 0 {
			t.Errorf("helper (declared in _test.go) marks = %b, want none", m)
		}
	}
}
