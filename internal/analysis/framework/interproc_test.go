package framework

import (
	"go/types"
	"testing"
)

// graphSrc is an import-free package exercising the interprocedural layer:
// a local type named "replication" with an append method triggers the
// log-append recognizer (it keys on receiver type name within the module),
// so effect closure is testable without loading internal/repl.
const graphSrc = `package p

type replication struct{}

// append mirrors the serving layer's log-append wrapper shape.
func (r *replication) append(n int) {}

//rtle:hotpath
func root(r *replication) {
	mid(r)
	cold(r)
}

func mid(r *replication) { leaf(r) }

func leaf(r *replication) { r.append(1) }

//rtle:coldpath
func cold(r *replication) { colder(r) }

func colder(r *replication) { r.append(2) }

//rtle:lockpath
func lockA() {
	helper()
	mixed()
	taken()
	_ = taken // value use: address taken, so taken is callable from anywhere
}

//rtle:lockpath
func lockB() {
	helper()
	chainTop()
}

func open() { mixed() }

func helper() {}

func mixed() {}

func taken() {}

func chainTop() { chainMid() }

func chainMid() {}

func Pub() {}

//rtle:lockpath
func callsPub() { Pub() }
`

// buildGraph runs NewGraph through a fake analyzer so the Pass carries
// parsed annotations, and returns the graph plus a name→summary index.
func buildGraph(t *testing.T, src string) (*Graph, map[string]*Summary) {
	t.Helper()
	pkg := checkSource(t, "p.go", src)
	var g *Graph
	fake := &Analyzer{
		Name: "fake",
		Doc:  "captures the call graph",
		Run: func(pass *Pass) error {
			g = NewGraph(pass)
			return nil
		},
	}
	if _, err := RunAnalyzer(fake, pkg); err != nil {
		t.Fatalf("RunAnalyzer: %v", err)
	}
	byName := map[string]*Summary{}
	for _, s := range g.Functions() {
		byName[s.Fn.Name()] = s
	}
	return g, byName
}

func TestGraphEffectsClosure(t *testing.T) {
	_, fns := buildGraph(t, graphSrc)

	if !fns["leaf"].Direct.Has(EffectLogAppend) {
		t.Errorf("leaf.Direct = %b, want EffectLogAppend: the append call is in its own body", fns["leaf"].Direct)
	}
	if fns["mid"].Direct != 0 {
		t.Errorf("mid.Direct = %b, want none: mid only calls", fns["mid"].Direct)
	}
	if !fns["mid"].Effects.Has(EffectLogAppend) {
		t.Errorf("mid.Effects = %b, want EffectLogAppend inherited from leaf", fns["mid"].Effects)
	}
	if !fns["root"].Effects.Has(EffectLogAppend) {
		t.Errorf("root.Effects = %b, want EffectLogAppend two hops down", fns["root"].Effects)
	}
	if got := len(fns["root"].Callees); got != 2 {
		t.Errorf("root has %d callees, want 2 (mid, cold)", got)
	}
}

func TestMarkReachable(t *testing.T) {
	g, fns := buildGraph(t, graphSrc)
	g.MarkReachable(MarkHotpath, MarkColdpath|MarkInit)

	for _, name := range []string{"root", "mid", "leaf", "append"} {
		if !fns[name].Marks.Has(MarkHotpath) {
			t.Errorf("%s not marked hot; want hotpath via forward propagation", name)
		}
	}
	if fns["cold"].Marks.Has(MarkHotpath) {
		t.Errorf("cold gained hotpath; //rtle:coldpath must stop propagation")
	}
	if fns["colder"].Marks.Has(MarkHotpath) {
		t.Errorf("colder gained hotpath; propagation must not cross a coldpath cut")
	}
	if fns["helper"].Marks.Has(MarkHotpath) {
		t.Errorf("helper gained hotpath; it is not reachable from any hot root")
	}
}

func TestMarkCovered(t *testing.T) {
	g, fns := buildGraph(t, graphSrc)
	g.MarkCovered(MarkLockpath, MarkLockpath|MarkInit)

	if !fns["helper"].Marks.Has(MarkLockpath) {
		t.Errorf("helper not covered; every caller (lockA, lockB) is lockpath")
	}
	if !fns["chainTop"].Marks.Has(MarkLockpath) || !fns["chainMid"].Marks.Has(MarkLockpath) {
		t.Errorf("chainTop/chainMid not covered; coverage must chain through helpers to a fixpoint")
	}
	if fns["mixed"].Marks.Has(MarkLockpath) {
		t.Errorf("mixed covered; open() is an unmarked caller, so coverage must not apply")
	}
	if fns["taken"].Marks.Has(MarkLockpath) {
		t.Errorf("taken covered; an address-taken function is callable from anywhere")
	}
	if fns["Pub"].Marks.Has(MarkLockpath) {
		t.Errorf("Pub covered; exported functions never inherit context")
	}
	if fns["cold"].Marks.Has(MarkLockpath) {
		t.Errorf("cold covered; declared marks keep the author's word")
	}
}

func TestGraphMarkSeeding(t *testing.T) {
	g, fns := buildGraph(t, graphSrc)
	g.Mark(fns["open"].Fn, MarkSlowpath)
	g.MarkReachable(MarkSlowpath, MarkLockpath|MarkInit)

	if !fns["open"].Marks.Has(MarkSlowpath) {
		t.Errorf("open not marked after explicit seeding")
	}
	if fns["open"].Declared != 0 {
		t.Errorf("seeding leaked into Declared = %b; Declared holds only the author's marks", fns["open"].Declared)
	}
	if !fns["mixed"].Marks.Has(MarkSlowpath) {
		t.Errorf("mixed did not inherit the seeded mark from open")
	}
	var missing *types.Func
	g.Mark(missing, MarkSlowpath) // no summary: must be a no-op, not a panic
}
