package framework

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package.
type Package struct {
	PkgPath   string
	Module    string
	Fset      *token.FileSet
	Files     []*ast.File
	Types     *types.Package
	TypesInfo *types.Info
	// TypeErrors collects non-fatal type-checking errors. Analyses still
	// run (types.Info is filled best-effort), but drivers should surface
	// them: a package that does not type-check yields unreliable
	// diagnostics.
	TypeErrors []error

	ann *Annotations
}

// Annotations returns the package's parsed //rtle: pragmas, computed once
// over the non-test files and cached. Sharing one value across analyzers
// is what lets //rtle:ignore usage accumulate for UnusedIgnores.
func (pkg *Package) Annotations() *Annotations {
	if pkg.ann == nil {
		pkg.ann = ParseAnnotations(pkg.Fset, NonTestFiles(pkg), pkg.TypesInfo)
	}
	return pkg.ann
}

// Loader loads and type-checks module packages without x/tools: package
// metadata comes from `go list -export -deps -json`, and imports resolve
// through the standard library's gc export-data importer pointed at the
// build cache. Loading therefore (re)compiles dependencies on first use —
// the same cost `go vet` pays.
type Loader struct {
	// Dir is the module root the `go list` invocations run from.
	Dir string

	fset    *token.FileSet
	module  string
	exports map[string]string // import path -> export data file
	listed  map[string]*listedPackage
	imp     types.Importer
}

type listedPackage struct {
	ImportPath      string
	Name            string
	Dir             string
	Export          string
	GoFiles         []string
	CompiledGoFiles []string
	Standard        bool
	DepOnly         bool
	Incomplete      bool
	Module          *struct{ Path string }
	Error           *struct{ Err string }
}

// NewLoader returns a loader rooted at the given module directory.
func NewLoader(moduleDir string) *Loader {
	l := &Loader{
		Dir:     moduleDir,
		fset:    token.NewFileSet(),
		exports: map[string]string{},
		listed:  map[string]*listedPackage{},
	}
	l.imp = importer.ForCompiler(l.fset, "gc", func(path string) (io.ReadCloser, error) {
		file, ok := l.exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q (not reachable from the loaded patterns)", path)
		}
		return os.Open(file)
	})
	return l
}

// ModuleRoot locates the enclosing module's root directory starting from
// dir (or the working directory when dir is empty).
func ModuleRoot(dir string) (string, error) {
	cmd := exec.Command("go", "env", "GOMOD")
	cmd.Dir = dir
	out, err := cmd.Output()
	if err != nil {
		return "", fmt.Errorf("go env GOMOD: %w", err)
	}
	gomod := strings.TrimSpace(string(out))
	if gomod == "" || gomod == os.DevNull {
		return "", fmt.Errorf("not inside a Go module (go env GOMOD is empty)")
	}
	return filepath.Dir(gomod), nil
}

// list runs `go list -e -export -deps -json` over patterns and merges the
// results into the loader's metadata tables.
func (l *Loader) list(patterns ...string) ([]*listedPackage, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,Export,GoFiles,CompiledGoFiles,Standard,DepOnly,Incomplete,Module,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = l.Dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %s: %v\n%s", strings.Join(patterns, " "), err, stderr.String())
	}
	var pkgs []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		p := new(listedPackage)
		if err := dec.Decode(p); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("go list: decoding output: %w", err)
		}
		pkgs = append(pkgs, p)
		l.listed[p.ImportPath] = p
		if p.Export != "" {
			l.exports[p.ImportPath] = p.Export
		}
		if l.module == "" && !p.Standard && p.Module != nil {
			l.module = p.Module.Path
		}
	}
	return pkgs, nil
}

// Module returns the module path of the loaded tree ("rtle").
func (l *Loader) Module() string { return l.module }

// Load loads, parses and type-checks the packages matching the go
// patterns (for example "./..."), excluding dependencies.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	listed, err := l.list(patterns...)
	if err != nil {
		return nil, err
	}
	var out []*Package
	for _, lp := range listed {
		if lp.DepOnly || lp.Standard {
			continue
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: %s: %s", lp.ImportPath, lp.Error.Err)
		}
		pkg, err := l.check(lp)
		if err != nil {
			return nil, err
		}
		out = append(out, pkg)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].PkgPath < out[j].PkgPath })
	return out, nil
}

// LoadDir parses and type-checks the single package rooted at dir — a
// directory that need not be part of any build (analysistest golden
// packages under testdata/). Imports resolve against the enclosing
// module, so golden files may import the real rtle packages.
func (l *Loader) LoadDir(dir string) (*Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var filenames []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			filenames = append(filenames, filepath.Join(dir, e.Name()))
		}
	}
	if len(filenames) == 0 {
		return nil, fmt.Errorf("no Go files in %s", dir)
	}
	sort.Strings(filenames)
	files, err := l.parse(filenames)
	if err != nil {
		return nil, err
	}

	// Resolve every import (transitively, via -deps) before checking.
	imports := map[string]bool{}
	for _, f := range files {
		for _, imp := range f.Imports {
			path := strings.Trim(imp.Path.Value, `"`)
			if path != "" && l.exports[path] == "" {
				imports[path] = true
			}
		}
	}
	if len(imports) > 0 {
		paths := make([]string, 0, len(imports))
		for p := range imports {
			paths = append(paths, p)
		}
		sort.Strings(paths)
		if _, err := l.list(paths...); err != nil {
			return nil, err
		}
	}
	if l.module == "" {
		// A testdata package importing only std: name the module anyway.
		cmd := exec.Command("go", "list", "-m")
		cmd.Dir = l.Dir
		if out, err := cmd.Output(); err == nil {
			l.module = strings.TrimSpace(string(out))
		}
	}

	name := files[0].Name.Name
	pkgPath := l.module + "/testdata/" + name
	return l.typecheck(pkgPath, files), nil
}

func (l *Loader) parse(filenames []string) ([]*ast.File, error) {
	var files []*ast.File
	for _, fn := range filenames {
		f, err := parser.ParseFile(l.fset, fn, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	return files, nil
}

func (l *Loader) check(lp *listedPackage) (*Package, error) {
	filenames := lp.CompiledGoFiles
	if len(filenames) == 0 {
		filenames = lp.GoFiles
	}
	abs := make([]string, 0, len(filenames))
	for _, fn := range filenames {
		if !filepath.IsAbs(fn) {
			fn = filepath.Join(lp.Dir, fn)
		}
		abs = append(abs, fn)
	}
	files, err := l.parse(abs)
	if err != nil {
		return nil, err
	}
	return l.typecheck(lp.ImportPath, files), nil
}

func (l *Loader) typecheck(pkgPath string, files []*ast.File) *Package {
	pkg := &Package{
		PkgPath: pkgPath,
		Module:  l.module,
		Fset:    l.fset,
		Files:   files,
		TypesInfo: &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
			Scopes:     map[ast.Node]*types.Scope{},
		},
	}
	conf := types.Config{
		Importer: l.imp,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	// Check returns the package even on error; errors are in TypeErrors.
	pkg.Types, _ = conf.Check(pkgPath, l.fset, files, pkg.TypesInfo)
	return pkg
}
