package framework

import (
	"go/ast"
	"go/types"
)

// This file is the framework's lightweight interprocedural layer: an
// in-package call graph with per-function summaries (declared marks,
// gate/log effects) computed bottom-up, plus the two propagation rules the
// serving-discipline passes rely on:
//
//   - MarkReachable: a root mark (//rtle:hotpath, slow-path seeds) flows
//     forward to everything the root calls, stopping at cut marks.
//   - MarkCovered: a contextual mark (//rtle:lockpath) flows backward onto
//     helpers all of whose callers carry it, so the mark need not be
//     restated at every private helper.
//
// The graph is deliberately in-package and static-call only — the same
// scope the intra-function passes already assumed — so it stays cheap
// (one AST walk per function) and needs nothing beyond go/types.

// Effects is a bit set of facts a function body establishes about gate and
// replication-log state. Direct effects come from the body itself;
// Summary.Effects closes them over in-package callees.
type Effects uint16

const (
	// EffectSharedGate: acquires a shard drain gate in shared mode
	// (gate.RLock).
	EffectSharedGate Effects = 1 << iota
	// EffectSharedUngate: releases a shared gate (gate.RUnlock).
	EffectSharedUngate
	// EffectExclusiveGate: acquires a drain gate exclusively (gate.Lock).
	EffectExclusiveGate
	// EffectExclusiveUngate: releases an exclusive gate (gate.Unlock).
	EffectExclusiveUngate
	// EffectLogAppend: appends to the replication log (replication.append
	// or repl.Log.Append).
	EffectLogAppend
	// EffectBarrierSeq: reads or writes the sync-ack barrier sequence
	// (the lastSeq atomic).
	EffectBarrierSeq
)

// Has reports whether all bits of e2 are set in e.
func (e Effects) Has(e2 Effects) bool { return e&e2 == e2 }

// Summary is one function's interprocedural summary.
type Summary struct {
	Fn   *types.Func
	Decl *ast.FuncDecl

	// Declared holds the marks written at the declaration itself.
	Declared Marks
	// Marks holds the effective marks: Declared plus anything seeded via
	// Graph.Mark or propagated by MarkReachable / MarkCovered.
	Marks Marks

	// Direct holds the effects established by this body alone; Effects
	// closes them over in-package callees (bottom-up fixpoint).
	Direct  Effects
	Effects Effects

	// Callees lists the in-package functions this body statically calls
	// (including from closures), deduplicated, in source order.
	Callees []*types.Func

	callers      map[*types.Func]bool
	addressTaken bool
}

// Graph is the in-package call graph over one Pass's syntax.
type Graph struct {
	pass  *Pass
	funcs map[*types.Func]*Summary
	order []*types.Func
}

// NewGraph builds the call graph and function summaries for pass, and
// closes each function's Effects over its in-package callees.
func NewGraph(pass *Pass) *Graph {
	g := &Graph{pass: pass, funcs: map[*types.Func]*Summary{}}

	// First pass: one summary per declared function body.
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			marks := pass.Ann.FuncMarks(fn)
			g.funcs[fn] = &Summary{
				Fn:       fn,
				Decl:     fd,
				Declared: marks,
				Marks:    marks,
				callers:  map[*types.Func]bool{},
			}
			g.order = append(g.order, fn)
		}
	}

	// Second pass: direct effects, call edges, and address-taken uses.
	for _, fn := range g.order {
		s := g.funcs[fn]
		seen := map[*types.Func]bool{}
		funIdents := map[*ast.Ident]bool{}
		ast.Inspect(s.Decl.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			switch fun := ast.Unparen(call.Fun).(type) {
			case *ast.Ident:
				funIdents[fun] = true
			case *ast.SelectorExpr:
				funIdents[fun.Sel] = true
			}
			if name, ok := GateMethod(pass.TypesInfo, call); ok {
				switch name {
				case "RLock":
					s.Direct |= EffectSharedGate
				case "RUnlock":
					s.Direct |= EffectSharedUngate
				case "Lock":
					s.Direct |= EffectExclusiveGate
				case "Unlock":
					s.Direct |= EffectExclusiveUngate
				}
			}
			if IsLogAppend(pass.TypesInfo, pass.Module, call) {
				s.Direct |= EffectLogAppend
			}
			if IsBarrierSeqAccess(pass.TypesInfo, call) {
				s.Direct |= EffectBarrierSeq
			}
			callee := CalleeFunc(pass.TypesInfo, call)
			if callee == nil || seen[callee] {
				return true
			}
			if cs, ok := g.funcs[callee]; ok {
				seen[callee] = true
				s.Callees = append(s.Callees, callee)
				cs.callers[fn] = true
			}
			return true
		})
		ast.Inspect(s.Decl.Body, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || funIdents[id] {
				return true
			}
			if ref, ok := g.pass.TypesInfo.Uses[id].(*types.Func); ok {
				if rs, ok := g.funcs[ref]; ok {
					rs.addressTaken = true
				}
			}
			return true
		})
	}

	// Bottom-up effect closure (fixpoint; the graph may be cyclic).
	for changed := true; changed; {
		changed = false
		for _, fn := range g.order {
			s := g.funcs[fn]
			eff := s.Direct
			for _, callee := range s.Callees {
				eff |= g.funcs[callee].Effects
			}
			if eff != s.Effects {
				s.Effects = eff
				changed = true
			}
		}
	}
	return g
}

// Summary returns fn's summary, or nil when fn has no body in this
// package.
func (g *Graph) Summary(fn *types.Func) *Summary { return g.funcs[fn] }

// Functions returns every summary in source order.
func (g *Graph) Functions() []*Summary {
	out := make([]*Summary, 0, len(g.order))
	for _, fn := range g.order {
		out = append(out, g.funcs[fn])
	}
	return out
}

// Mark seeds additional effective marks on fn (a no-op for functions
// without a summary). Passes use it to plant roots that are not literal
// annotations, e.g. closure callees of a Run combinator.
func (g *Graph) Mark(fn *types.Func, m Marks) {
	if s := g.funcs[fn]; s != nil {
		s.Marks |= m
	}
}

// MarkReachable propagates mark m forward: every function statically
// reachable from a function whose effective marks include any bit of m
// gains m, except that propagation neither enters nor crosses functions
// whose effective marks include a bit of stop. Roots carrying a stop bit
// do not propagate.
func (g *Graph) MarkReachable(m Marks, stop Marks) {
	var work []*types.Func
	for _, fn := range g.order {
		s := g.funcs[fn]
		if s.Marks&m != 0 && s.Marks&stop == 0 {
			work = append(work, fn)
		}
	}
	for len(work) > 0 {
		fn := work[0]
		work = work[1:]
		for _, callee := range g.funcs[fn].Callees {
			cs := g.funcs[callee]
			if cs.Marks&stop != 0 || cs.Marks&m == m {
				continue
			}
			cs.Marks |= m
			work = append(work, callee)
		}
	}
}

// MarkCovered propagates mark m backward: an unannotated, unexported
// function with at least one in-package caller, all of whose callers'
// effective marks intersect coverers, gains m — the helper inherits its
// callers' context instead of restating it. Functions that carry any
// declared mark keep their author's word; functions that are exported or
// referenced as values (address taken, so callable from anywhere) never
// inherit. Iterates to a fixpoint so chains of helpers resolve.
func (g *Graph) MarkCovered(m Marks, coverers Marks) {
	for changed := true; changed; {
		changed = false
		for _, fn := range g.order {
			s := g.funcs[fn]
			if s.Declared != 0 || s.Marks.Has(m) || s.addressTaken || fn.Exported() || len(s.callers) == 0 {
				continue
			}
			covered := true
			for caller := range s.callers {
				if g.funcs[caller].Marks&coverers == 0 {
					covered = false
					break
				}
			}
			if covered {
				s.Marks |= m
				changed = true
			}
		}
	}
}

// --- serving-layer recognizers ---------------------------------------------

// GateMethod reports whether call invokes a sync.RWMutex method on a
// shard drain gate — a field or variable named "gate" — returning the
// method name (Lock, Unlock, RLock, RUnlock).
func GateMethod(info *types.Info, call *ast.CallExpr) (string, bool) {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", false
	}
	recv := ReceiverNamed(fn)
	if recv == nil || recv.Obj().Name() != "RWMutex" {
		return "", false
	}
	switch fn.Name() {
	case "Lock", "Unlock", "RLock", "RUnlock":
	default:
		return "", false
	}
	var name string
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		name = x.Sel.Name
	case *ast.Ident:
		name = x.Name
	default:
		return "", false
	}
	if name != "gate" {
		return "", false
	}
	return fn.Name(), true
}

// IsLogAppend reports whether call appends to the replication log: either
// the low-level repl.Log.Append or the serving layer's replication.append
// wrapper. The replica mirror's Log.AppendEntry is deliberately excluded —
// followers replay an already-ordered stream and hold no gates.
func IsLogAppend(info *types.Info, module string, call *ast.CallExpr) bool {
	fn := CalleeFunc(info, call)
	if fn == nil {
		return false
	}
	if IsMethodOf(fn, "internal/repl", "Log", "Append") {
		return true
	}
	if fn.Name() != "append" || !InModule(fn.Pkg(), module) {
		return false
	}
	recv := ReceiverNamed(fn)
	return recv != nil && recv.Obj().Name() == "replication"
}

// IsBarrierSeqAccess reports whether call loads or stores the sync-ack
// barrier sequence: an atomic.Uint64 method on a field or variable named
// "lastSeq".
func IsBarrierSeqAccess(info *types.Info, call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, _ := info.Uses[sel.Sel].(*types.Func)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "sync/atomic" {
		return false
	}
	recv := ReceiverNamed(fn)
	if recv == nil || recv.Obj().Name() != "Uint64" {
		return false
	}
	var name string
	switch x := ast.Unparen(sel.X).(type) {
	case *ast.SelectorExpr:
		name = x.Sel.Name
	case *ast.Ident:
		name = x.Name
	default:
		return false
	}
	return name == "lastSeq"
}
