package framework

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// The //rtle: pragma vocabulary. See rtle/internal/analysis's package
// documentation for the full convention.
const (
	pragmaPrefix = "//rtle:"

	// MarkSpeculative marks a function whose body executes inside a
	// hardware transaction (fast or slow path).
	MarkSpeculative Marks = 1 << iota
	// MarkSlowpath marks a function that implements (or is called from)
	// the instrumented slow path: all simulated-heap access must go
	// through the htm.Tx barriers.
	MarkSlowpath
	// MarkLockpath marks a function that only runs while its method's
	// fallback lock is held; it is the only place writer metadata
	// (//rtle:meta fields) may be mutated.
	MarkLockpath
	// MarkInit marks single-threaded setup code (constructors): raw heap
	// access and metadata stores are allowed because no concurrent
	// reader exists yet.
	MarkInit
	// MarkHotpath marks a wire/shard fast-path root: the function and
	// everything reachable from it in-package (minus //rtle:coldpath
	// cuts) must be allocation-free per hotalloc.
	MarkHotpath
	// MarkColdpath cuts hotpath propagation: the function runs on an
	// error/setup branch and may allocate even when called from a
	// hotpath root.
	MarkColdpath
	// MarkGated marks a function whose contract is caller-holds-gates:
	// its body may append to the replication log and touch the barrier
	// sequence, and every call site must itself sit in a held gate
	// region (or in another gated function).
	MarkGated
	// MarkGatelock marks the one sanctioned multi-gate acquisition
	// helper: exclusive shard-gate Locks are legal only here, and only
	// inside an ascending range loop.
	MarkGatelock
)

// Marks is a bit set of function path annotations.
type Marks uint16

// conflictingMarks lists mark pairs that cannot coexist on one function:
// a declaration carrying both is a parse error (reported unconditionally,
// never last-wins), and both bits are dropped so downstream passes see a
// consistent view.
var conflictingMarks = [][2]struct {
	bit  Marks
	name string
}{
	{{MarkHotpath, "hotpath"}, {MarkColdpath, "coldpath"}},
	{{MarkHotpath, "hotpath"}, {MarkInit, "init"}},
	{{MarkGated, "gated"}, {MarkGatelock, "gatelock"}},
}

// Has reports whether all bits of m2 are set in m.
func (m Marks) Has(m2 Marks) bool { return m&m2 == m2 }

// Annotations holds one package's parsed //rtle: pragmas.
type Annotations struct {
	// Engine reports a package marked //rtle:engine: it implements the
	// simulated hardware itself (mem, htm, spinlock), sits below the
	// barrier layer, and is exempt from txbody and barrierdiscipline.
	Engine bool

	// Errors records malformed pragma combinations (today: conflicting
	// marks on one declaration). They are reported once per package by
	// RunAnalyzers under the pseudo-analyzer name "annotations" and are
	// not waivable.
	Errors []Diagnostic

	funcs    map[*types.Func]Marks
	meta     map[*types.Var]bool
	counters map[*types.TypeName]bool

	// suppress maps filename -> line -> the //rtle:ignore pragmas
	// covering that line.
	suppress map[string]map[int][]*ignorePragma
}

// ignorePragma is one parsed //rtle:ignore comment. used flips when the
// pragma actually suppresses a diagnostic, feeding UnusedIgnores.
type ignorePragma struct {
	analyzer string // pass name, or "*" for all
	pos      token.Position
	used     bool
}

// FuncMarks returns the path marks of fn (zero when unannotated).
func (a *Annotations) FuncMarks(fn *types.Func) Marks { return a.funcs[fn] }

// MarkedFuncs returns every annotated function carrying the given mark.
func (a *Annotations) MarkedFuncs(m Marks) []*types.Func {
	var out []*types.Func
	for fn, marks := range a.funcs {
		if marks.Has(m) {
			out = append(out, fn)
		}
	}
	return out
}

// IsMeta reports whether field is marked //rtle:meta (writer metadata).
func (a *Annotations) IsMeta(field *types.Var) bool { return a.meta[field] }

// HasMeta reports whether any field in the package is marked //rtle:meta.
func (a *Annotations) HasMeta() bool { return len(a.meta) > 0 }

// IsCounterType reports whether tn is marked //rtle:counters.
func (a *Annotations) IsCounterType(tn *types.TypeName) bool { return a.counters[tn] }

// suppressed reports whether an //rtle:ignore pragma covers analyzer at
// pos, marking any matching pragma as used. A pragma suppresses its own
// line and the following line, so it works both as a trailing comment and
// as a standalone comment above the flagged statement.
func (a *Annotations) suppressed(analyzer string, pos token.Position) bool {
	lines := a.suppress[pos.Filename]
	hit := false
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, p := range lines[l] {
			if p.analyzer == "*" || p.analyzer == analyzer {
				p.used = true
				hit = true
			}
		}
	}
	return hit
}

// UnusedIgnores returns a diagnostic for every //rtle:ignore pragma that
// never suppressed a finding, restricted to pragmas whose target analyzer
// actually ran (ran maps pass names; full reports whether the whole suite
// ran, which is required before condemning an unnamed "*" pragma). Call it
// only after every analyzer of interest has reported through this
// Annotations value.
func (a *Annotations) UnusedIgnores(ran map[string]bool, full bool) []Diagnostic {
	var out []Diagnostic
	for _, lines := range a.suppress {
		for _, ps := range lines {
			for _, p := range ps {
				if p.used {
					continue
				}
				if p.analyzer == "*" && !full {
					continue
				}
				if p.analyzer != "*" && !ran[p.analyzer] {
					continue
				}
				out = append(out, Diagnostic{
					Analyzer: "unusedignores",
					Pos:      p.pos,
					Message:  "//rtle:ignore " + strings.TrimSuffix(p.analyzer+" ", "* ") + "suppresses nothing; delete the stale waiver",
				})
			}
		}
	}
	sortDiagnostics(out)
	return out
}

// pragmaLines extracts the "verb rest" pairs of all //rtle: pragma lines
// in a comment group.
func pragmaLines(g *ast.CommentGroup) [][2]string {
	if g == nil {
		return nil
	}
	var out [][2]string
	for _, c := range g.List {
		text := strings.TrimSpace(c.Text)
		if !strings.HasPrefix(text, pragmaPrefix) {
			continue
		}
		body := strings.TrimPrefix(text, pragmaPrefix)
		verb, rest, _ := strings.Cut(body, " ")
		out = append(out, [2]string{verb, strings.TrimSpace(rest)})
	}
	return out
}

func marksOf(groups ...*ast.CommentGroup) Marks {
	var m Marks
	for _, g := range groups {
		for _, p := range pragmaLines(g) {
			switch p[0] {
			case "speculative":
				m |= MarkSpeculative
			case "slowpath":
				m |= MarkSlowpath
			case "lockpath":
				m |= MarkLockpath
			case "init":
				m |= MarkInit
			case "hotpath":
				m |= MarkHotpath
			case "coldpath":
				m |= MarkColdpath
			case "gated":
				m |= MarkGated
			case "gatelock":
				m |= MarkGatelock
			}
		}
	}
	return m
}

// ParseAnnotations scans the package syntax for //rtle: pragmas.
func ParseAnnotations(fset *token.FileSet, files []*ast.File, info *types.Info) *Annotations {
	a := &Annotations{
		funcs:    map[*types.Func]Marks{},
		meta:     map[*types.Var]bool{},
		counters: map[*types.TypeName]bool{},
		suppress: map[string]map[int][]*ignorePragma{},
	}
	for _, file := range files {
		filename := fset.Position(file.Package).Filename

		// Engine marker and //rtle:ignore pragmas can appear in any
		// comment group.
		for _, g := range file.Comments {
			for _, p := range pragmaLines(g) {
				switch p[0] {
				case "engine":
					a.Engine = true
				case "ignore":
					// Locate the pragma's own line.
					for _, c := range g.List {
						text := strings.TrimSpace(c.Text)
						if !strings.HasPrefix(text, pragmaPrefix+"ignore") {
							continue
						}
						pos := fset.Position(c.Pos())
						names := strings.Fields(strings.TrimPrefix(text, pragmaPrefix+"ignore"))
						// Reasons follow the analyzer name; only the
						// first field selects. No name = all analyzers.
						name := "*"
						if len(names) > 0 {
							name = names[0]
						}
						if a.suppress[filename] == nil {
							a.suppress[filename] = map[int][]*ignorePragma{}
						}
						a.suppress[filename][pos.Line] = append(a.suppress[filename][pos.Line],
							&ignorePragma{analyzer: name, pos: pos})
					}
				}
			}
		}

		for _, decl := range file.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if m := marksOf(d.Doc); m != 0 {
					for _, pair := range conflictingMarks {
						if m.Has(pair[0].bit) && m.Has(pair[1].bit) {
							a.Errors = append(a.Errors, Diagnostic{
								Analyzer: "annotations",
								Pos:      fset.Position(d.Name.Pos()),
								Message: "conflicting marks //rtle:" + pair[0].name +
									" and //rtle:" + pair[1].name + " on " + d.Name.Name +
									"; pick one (neither is applied)",
							})
							m &^= pair[0].bit | pair[1].bit
						}
					}
					if fn, ok := info.Defs[d.Name].(*types.Func); ok {
						a.funcs[fn] |= m
					}
				}
			case *ast.GenDecl:
				for _, spec := range d.Specs {
					ts, ok := spec.(*ast.TypeSpec)
					if !ok {
						continue
					}
					for _, g := range []*ast.CommentGroup{d.Doc, ts.Doc, ts.Comment} {
						for _, p := range pragmaLines(g) {
							if p[0] == "counters" {
								if tn, ok := info.Defs[ts.Name].(*types.TypeName); ok {
									a.counters[tn] = true
								}
							}
						}
					}
					st, ok := ts.Type.(*ast.StructType)
					if !ok {
						continue
					}
					for _, field := range st.Fields.List {
						meta := false
						for _, g := range []*ast.CommentGroup{field.Doc, field.Comment} {
							for _, p := range pragmaLines(g) {
								if p[0] == "meta" {
									meta = true
								}
							}
						}
						if !meta {
							continue
						}
						for _, name := range field.Names {
							if v, ok := info.Defs[name].(*types.Var); ok {
								a.meta[v] = true
							}
						}
					}
				}
			}
		}
	}
	return a
}

// HasAdjacentComment reports whether any comment in file sits on the same
// line as pos or ends on the line directly above it — the "justifying
// comment" test abortpath applies to explicit `_ =` discards. Analysistest
// expectations (`// want "re"`) are markers for the golden-test harness,
// not justifications, and never count.
func HasAdjacentComment(fset *token.FileSet, file *ast.File, pos token.Pos) bool {
	line := fset.Position(pos).Line
	for _, g := range file.Comments {
		for _, c := range g.List {
			if strings.HasPrefix(strings.TrimSpace(strings.TrimPrefix(c.Text, "//")), "want ") {
				continue
			}
			cl := fset.Position(c.Pos()).Line
			end := fset.Position(c.End()).Line
			if cl == line || end == line-1 {
				return true
			}
		}
	}
	return false
}
