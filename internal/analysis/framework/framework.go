// Package framework is a minimal, dependency-free analogue of
// golang.org/x/tools/go/analysis: just enough driver, annotation and
// suppression machinery to host the rtlevet passes (txbody, abortpath,
// barrierdiscipline, statsatomic) without importing anything outside the
// standard library.
//
// The shape deliberately mirrors go/analysis — an Analyzer owns a Run
// function over a Pass carrying syntax plus type information — so the
// passes can be ported to the real framework wholesale if x/tools ever
// becomes an acceptable dependency.
package framework

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one static-analysis pass.
type Analyzer struct {
	// Name identifies the pass in diagnostics and in //rtle:ignore
	// pragmas. It must be a valid identifier.
	Name string
	// Doc is the help text.
	Doc string
	// Version is bumped whenever the pass's semantics change. It feeds
	// the rtlevet -V=full fingerprint so go vet's unit-result cache is
	// invalidated when a pass is added or modified.
	Version int
	// Run applies the pass to one package. Diagnostics are reported via
	// Pass.Report; the error return is for operational failures only.
	Run func(*Pass) error
}

// Diagnostic is one finding, resolved to a concrete file position.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzed package through one Analyzer.
type Pass struct {
	Analyzer *Analyzer

	Fset *token.FileSet
	// Files is the package syntax, excluding _test.go files: the
	// instrumentation discipline binds production paths; tests poke
	// internals on purpose.
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info
	// Module is the module path of the analyzed tree ("rtle"), used by
	// passes that restrict themselves to in-module APIs.
	Module string
	// Ann is the package's parsed //rtle: annotations.
	Ann *Annotations

	diags []Diagnostic
}

// Report records a diagnostic at pos unless an //rtle:ignore pragma
// suppresses this analyzer at that line.
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if p.Ann.suppressed(p.Analyzer.Name, position) {
		return
	}
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// NonTestFiles returns pkg's syntax excluding _test.go files.
func NonTestFiles(pkg *Package) []*ast.File {
	files := make([]*ast.File, 0, len(pkg.Files))
	for _, f := range pkg.Files {
		name := pkg.Fset.Position(f.Package).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		files = append(files, f)
	}
	return files
}

// RunAnalyzer applies a to pkg and returns its diagnostics in file/line
// order. The package's Annotations are parsed once and shared across
// analyzers so //rtle:ignore usage accumulates for UnusedIgnores.
func RunAnalyzer(a *Analyzer, pkg *Package) ([]Diagnostic, error) {
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     NonTestFiles(pkg),
		Pkg:       pkg.Types,
		TypesInfo: pkg.TypesInfo,
		Module:    pkg.Module,
		Ann:       pkg.Annotations(),
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.PkgPath, err)
	}
	sortDiagnostics(pass.diags)
	return pass.diags, nil
}

// RunAnalyzers applies every analyzer to every package, concatenating the
// diagnostics in (package, analyzer, position) order. Annotation parse
// errors (conflicting marks) are prepended once per package: a malformed
// pragma must fail the run even when no pass consults the mark.
func RunAnalyzers(analyzers []*Analyzer, pkgs []*Package) ([]Diagnostic, error) {
	var all []Diagnostic
	for _, pkg := range pkgs {
		all = append(all, pkg.Annotations().Errors...)
		for _, a := range analyzers {
			diags, err := RunAnalyzer(a, pkg)
			if err != nil {
				return nil, err
			}
			all = append(all, diags...)
		}
	}
	return all, nil
}

// UnusedIgnores reports, for every package, the //rtle:ignore pragmas that
// suppressed nothing across the analyzers already run via RunAnalyzer(s)
// on these same Package values. full must be true only when the complete
// registered suite ran; unnamed ("*") pragmas are otherwise given the
// benefit of the doubt.
func UnusedIgnores(analyzers []*Analyzer, pkgs []*Package, full bool) []Diagnostic {
	ran := map[string]bool{}
	for _, a := range analyzers {
		ran[a.Name] = true
	}
	var all []Diagnostic
	for _, pkg := range pkgs {
		all = append(all, pkg.Annotations().UnusedIgnores(ran, full)...)
	}
	return all
}

func sortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Message < b.Message
	})
}

// --- shared type-query helpers ---------------------------------------------

// PkgPathIs reports whether pkg is the package with the given in-module
// path suffix ("internal/mem", "internal/htm", ...). Matching by suffix
// keeps the passes working if the module is ever renamed or vendored.
func PkgPathIs(pkg *types.Package, suffix string) bool {
	if pkg == nil {
		return false
	}
	p := pkg.Path()
	return p == suffix || strings.HasSuffix(p, "/"+suffix)
}

// CalleeFunc resolves the static callee of call, or nil for calls through
// function values, built-ins and type conversions.
func CalleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	var obj types.Object
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj = info.Uses[fun]
	case *ast.SelectorExpr:
		obj = info.Uses[fun.Sel]
	}
	fn, _ := obj.(*types.Func)
	return fn
}

// ReceiverNamed returns the named type of fn's receiver (dereferencing one
// pointer), or nil for plain functions.
func ReceiverNamed(fn *types.Func) *types.Named {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// IsMethodOf reports whether fn is a method named name on the named type
// typeName declared in the package with the given path suffix.
func IsMethodOf(fn *types.Func, pkgSuffix, typeName, name string) bool {
	if fn == nil || fn.Name() != name || !PkgPathIs(fn.Pkg(), pkgSuffix) {
		return false
	}
	recv := ReceiverNamed(fn)
	return recv != nil && recv.Obj().Name() == typeName
}

// IsMemoryMethod reports whether fn is a method on mem.Memory with one of
// the given names (any name if none given).
func IsMemoryMethod(fn *types.Func, names ...string) bool {
	if fn == nil || !PkgPathIs(fn.Pkg(), "internal/mem") {
		return false
	}
	recv := ReceiverNamed(fn)
	if recv == nil || recv.Obj().Name() != "Memory" {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// IsTxMethod reports whether fn is a method on htm.Tx with one of the
// given names (any name if none given).
func IsTxMethod(fn *types.Func, names ...string) bool {
	if fn == nil || !PkgPathIs(fn.Pkg(), "internal/htm") {
		return false
	}
	recv := ReceiverNamed(fn)
	if recv == nil || recv.Obj().Name() != "Tx" {
		return false
	}
	if len(names) == 0 {
		return true
	}
	for _, n := range names {
		if fn.Name() == n {
			return true
		}
	}
	return false
}

// IsAbortReason reports whether t is htm.AbortReason.
func IsAbortReason(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return named.Obj().Name() == "AbortReason" && PkgPathIs(named.Obj().Pkg(), "internal/htm")
}

// IsErrorType reports whether t is the built-in error interface.
func IsErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// InModule reports whether pkg belongs to the analyzed module.
func InModule(pkg *types.Package, module string) bool {
	if pkg == nil || module == "" {
		return false
	}
	p := pkg.Path()
	return p == module || strings.HasPrefix(p, module+"/")
}

// EnclosingFuncDecl returns the innermost FuncDecl in file whose body
// contains pos, or nil.
func EnclosingFuncDecl(file *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, decl := range file.Decls {
		fd, ok := decl.(*ast.FuncDecl)
		if !ok || fd.Body == nil {
			continue
		}
		if fd.Body.Pos() <= pos && pos <= fd.Body.End() {
			return fd
		}
	}
	return nil
}
