// Package loggate is the golden input for the loggate analyzer: a
// miniature replicating primary whose gate-held appends are clean and
// whose stray appends/barrier reads seed true positives. The
// //rtle:ignore site proves a reviewed startup-replay append stays
// silent.
package loggate

import (
	"sync"
	"sync/atomic"

	"rtle/internal/repl"
)

type replication struct {
	log *repl.Log
}

// append is the primary's log append; its contract is caller-holds-gates.
//
//rtle:gated
func (r *replication) append(ops []repl.Op) uint64 {
	return r.log.Append(ops)
}

type shard struct {
	gate    sync.RWMutex
	lastSeq atomic.Uint64
}

type srv struct {
	shards []*shard
	r      *replication
	log    *repl.Log
}

// lockSpans is the exclusive acquisition helper (gateorder's domain, but
// loggate counts calls to it as entering a held region).
//
//rtle:gatelock
func (s *srv) lockSpans(spans []int) {
	for _, k := range spans {
		s.shards[k].gate.Lock()
	}
}

// unlockSpans releases the gates taken by lockSpans.
func (s *srv) unlockSpans(spans []int) {
	for _, k := range spans {
		s.shards[k].gate.Unlock()
	}
}

// fastAppend is the conforming fast path: append and barrier accesses sit
// between RLock and RUnlock, so the logged block cannot interleave with a
// drain.
func (s *srv) fastAppend(sh *shard, ops []repl.Op) uint64 {
	sh.gate.RLock()
	bar := s.r.append(ops)
	sh.lastSeq.Store(bar)
	bar = sh.lastSeq.Load()
	sh.gate.RUnlock()
	return bar
}

// appendSlow advances every span's barrier under its gated contract; the
// body itself holds nothing.
//
//rtle:gated
func (s *srv) appendSlow(spans []int, ops []repl.Op) uint64 {
	seq := s.r.append(ops)
	for _, k := range spans {
		s.shards[k].lastSeq.Store(seq)
	}
	return seq
}

// slowBlock discharges appendSlow's obligation: the call sits between
// lockSpans and unlockSpans.
func (s *srv) slowBlock(spans []int, ops []repl.Op) {
	s.lockSpans(spans)
	s.appendSlow(spans, ops)
	s.unlockSpans(spans)
}

// strayAppend calls the gated append with no gate held: the appended
// block races a concurrent drain and log order detaches from gate order.
func (s *srv) strayAppend(ops []repl.Op) {
	s.r.append(ops) // want `call to //rtle:gated append in strayAppend outside a held gate region`
}

// rawStray bypasses even the wrapper.
func (s *srv) rawStray(ops []repl.Op) {
	s.log.Append(ops) // want `replication append in rawStray outside a held gate region`
}

// strayBarrier reads the sync-ack barrier outside the gate: it can
// observe a sequence whose block has not reached the log.
func (s *srv) strayBarrier(sh *shard) uint64 {
	return sh.lastSeq.Load() // want `barrier-seq \(lastSeq\) access in strayBarrier outside a held gate region`
}

// afterRelease shows the positional tracking: the same append is a
// violation once the gates are gone.
func (s *srv) afterRelease(spans []int, ops []repl.Op) {
	s.lockSpans(spans)
	s.unlockSpans(spans)
	s.appendSlow(spans, ops) // want `call to //rtle:gated appendSlow in afterRelease outside a held gate region`
}

// restore is single-threaded recovery: barrier stores before any worker
// exists are legal via //rtle:init.
//
//rtle:init
func (s *srv) restore(sh *shard, seq uint64) {
	sh.lastSeq.Store(seq)
}

// bootstrap replays a snapshot during startup, before the gates (or any
// competitor) exist; the waiver records that argument.
func (s *srv) bootstrap(ops []repl.Op) {
	//rtle:ignore loggate startup replay; no worker is running yet, gate order is vacuous
	s.log.Append(ops)
}
