// Package loggate defines the rtlevet pass that statically enforces the
// log-order-equals-gate-order invariant (DESIGN.md §9): replica replay is
// sound only because every replication-log append happens while the
// mutated shards' drain gates are held, so the log's total order is a
// linearization of gate order.
//
// Concretely, in every package except the log engine itself
// (internal/repl):
//
//  1. A replication append — `replication.append` or the low-level
//     `repl.Log.Append` — must sit inside a held gate region: between a
//     gate.RLock/Lock (or a call to a //rtle:gatelock helper) and the
//     matching release. Outside a gate the appended block can interleave
//     with a concurrent drain, and log order detaches from gate order.
//
//  2. Sync-ack barrier-sequence accesses (the `lastSeq` atomic) must also
//     be inside the gate: a barrier read outside the region can observe a
//     sequence from a block that has not reached the log yet.
//
//  3. A function marked //rtle:gated gets both for free — its contract is
//     caller-holds-gates — but then every call site of a gated function
//     must itself sit in a held gate region (or inside another gated
//     function), which is how the obligation discharges interprocedurally.
//
// The replica mirror's Log.AppendEntry is deliberately not an append in
// this sense: followers replay an already-ordered stream and hold no
// gates.
//
// Region tracking is positional per body, exactly as in gateorder:
// acquires (shared or exclusive, direct or via a gatelock/releasing
// helper, plus the serving layer's logMu which wraps the gate) are
// counted in textual order. The disciplines this pass guards keep
// acquire, append, and release in one straight-line function.
package loggate

import (
	"go/ast"
	"go/token"
	"sort"

	"rtle/internal/analysis/framework"
)

// Analyzer is the loggate pass.
var Analyzer = &framework.Analyzer{
	Name:    "loggate",
	Doc:     "replication-log appends and barrier-seq accesses only inside held gate regions (or //rtle:gated functions)",
	Version: 1,
	Run:     run,
}

func run(pass *framework.Pass) error {
	if framework.PkgPathIs(pass.Pkg, "internal/repl") {
		return nil // the log engine itself sits below the invariant
	}
	g := framework.NewGraph(pass)
	for _, s := range g.Functions() {
		check(pass, g, s)
	}
	return nil
}

type site struct {
	pos  token.Pos
	kind int // sAcquire / sRelease / sAppend / sBarrier / sGatedCall
	what string
}

const (
	sAcquire = iota
	sRelease
	sAppend
	sBarrier
	sGatedCall
)

func check(pass *framework.Pass, g *framework.Graph, s *framework.Summary) {
	gated := s.Declared.Has(framework.MarkGated)
	var sites []site
	ast.Inspect(s.Decl.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit, *ast.DeferStmt, *ast.GoStmt:
			_ = n
			return false
		case *ast.CallExpr:
			if name, ok := framework.GateMethod(pass.TypesInfo, n); ok {
				switch name {
				case "Lock", "RLock":
					sites = append(sites, site{n.Pos(), sAcquire, "gate." + name})
				case "Unlock", "RUnlock":
					sites = append(sites, site{n.Pos(), sRelease, "gate." + name})
				}
				return true
			}
			// An in-package callee with a //rtle:gated (or gate-moving)
			// summary classifies by its contract even when it is also a
			// log-append recognizer — the gated wrapper *is* the append.
			callee := framework.CalleeFunc(pass.TypesInfo, n)
			if callee != nil {
				if cs := g.Summary(callee); cs != nil {
					switch {
					case cs.Declared.Has(framework.MarkGated):
						sites = append(sites, site{n.Pos(), sGatedCall, callee.Name()})
						return true
					case cs.Declared.Has(framework.MarkGatelock) || cs.Direct.Has(framework.EffectExclusiveGate):
						sites = append(sites, site{n.Pos(), sAcquire, callee.Name()})
						return true
					case cs.Direct.Has(framework.EffectExclusiveUngate):
						sites = append(sites, site{n.Pos(), sRelease, callee.Name()})
						return true
					}
				}
			}
			if framework.IsLogAppend(pass.TypesInfo, pass.Module, n) {
				sites = append(sites, site{n.Pos(), sAppend, "replication append"})
				return true
			}
			if framework.IsBarrierSeqAccess(pass.TypesInfo, n) {
				sites = append(sites, site{n.Pos(), sBarrier, "barrier-seq (lastSeq) access"})
				return true
			}
		}
		return true
	})
	sort.Slice(sites, func(i, j int) bool { return sites[i].pos < sites[j].pos })
	depth := 0
	for _, e := range sites {
		held := depth > 0
		switch e.kind {
		case sAcquire:
			depth++
		case sRelease:
			if depth > 0 {
				depth--
			}
		case sAppend:
			if !held && !gated {
				pass.Report(e.pos,
					"%s in %s outside a held gate region; log order must equal gate order — append inside the gate, or mark the function //rtle:gated if every caller holds the gates",
					e.what, s.Fn.Name())
			}
		case sBarrier:
			if !held && !gated && !s.Declared.Has(framework.MarkInit) {
				pass.Report(e.pos,
					"%s in %s outside a held gate region; the sync-ack barrier is only meaningful while the shard's gate pins the log tail",
					e.what, s.Fn.Name())
			}
		case sGatedCall:
			if !held && !gated {
				pass.Report(e.pos,
					"call to //rtle:gated %s in %s outside a held gate region; the callee's contract is caller-holds-gates",
					e.what, s.Fn.Name())
			}
		}
	}
}
