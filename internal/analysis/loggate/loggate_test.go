package loggate_test

import (
	"testing"

	"rtle/internal/analysis/analysistest"
	"rtle/internal/analysis/loggate"
)

func TestLogGate(t *testing.T) {
	analysistest.Run(t, loggate.Analyzer, "loggate")
}
