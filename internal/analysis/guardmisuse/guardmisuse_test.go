package guardmisuse_test

import (
	"testing"

	"rtle/internal/analysis/analysistest"
	"rtle/internal/analysis/guardmisuse"
)

// TestGolden runs the analyzer over its golden package: every seeded
// misuse must be reported (so the test fails if the pass is disabled)
// and the clean idioms plus the //rtle:ignore site must stay silent.
func TestGolden(t *testing.T) {
	analysistest.Run(t, guardmisuse.Analyzer, "guardmisuse")
}
