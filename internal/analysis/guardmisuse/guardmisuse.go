// Package guardmisuse defines the rtlevet pass that checks call sites of
// the elision guards (rtle.Mutex / rtle.RWMutex, implemented in
// internal/guard) for the misuse patterns the guards cannot catch — or
// can only catch — at runtime:
//
//   - Unbalanced brackets: a function whose Lock (or RLock) calls
//     outnumber its Unlock (RUnlock) calls leaves the guard held on some
//     path, and every later section — speculative or not — deadlocks.
//     A `return` reached while a Lock is linearly held with no deferred
//     Unlock is flagged too (the classic `Lock(); if err { return }`
//     leak). Both checks scan the body in source order, so they are
//     approximations: a helper that deliberately returns with the guard
//     held must carry an //rtle:ignore guardmisuse pragma saying why.
//   - `defer g.Lock()`: the classic typo for `defer g.Unlock()`. It
//     compiles, then acquires at return instead of releasing.
//   - Re-acquisition while held: g.Lock() with g already held in the
//     same function self-deadlocks (the guards are not reentrant).
//   - Inconsistent acquisition order: if one function brackets guard A
//     then B and another brackets B then A, the two deadlock under
//     contention. Orders are collected per package across function
//     bodies, keyed by the receiver expression text.
//   - Nested acquisition inside Do/RDo closures: acquiring any guard
//     (closure or bracket form) inside a speculative body either
//     self-deadlocks on the fallback path (same guard) or serializes the
//     elision (other guards); acquisition belongs outside the closure.
//   - HTM-unfriendly operations inside Do/RDo closures: the bodies run
//     as hardware transactions, so the txbody rules apply verbatim —
//     this pass reuses txbody.CheckBody on every closure argument.
//
// The internal/guard package itself is exempt: it implements the guards
// and manipulates their innards under its own //rtle: path marks.
package guardmisuse

import (
	"go/ast"
	"go/token"
	"go/types"

	"rtle/internal/analysis/framework"
	"rtle/internal/analysis/txbody"
)

// Analyzer is the guardmisuse pass.
var Analyzer = &framework.Analyzer{
	Name:    "guardmisuse",
	Doc:     "flag unbalanced, misordered, or HTM-unfriendly use of the elision guards",
	Version: 1,
	Run:     run,
}

// guardCall resolves call as a method call on a guard type, returning the
// receiver expression text (the analysis key: "g", "s.mu", ...) and the
// method name.
func guardCall(info *types.Info, call *ast.CallExpr) (key, method string, ok bool) {
	fn := framework.CalleeFunc(info, call)
	if fn == nil {
		return "", "", false
	}
	named := framework.ReceiverNamed(fn)
	if named == nil {
		return "", "", false
	}
	obj := named.Obj()
	if obj.Pkg() == nil || !framework.PkgPathIs(obj.Pkg(), "internal/guard") {
		return "", "", false
	}
	if name := obj.Name(); name != "Mutex" && name != "RWMutex" {
		return "", "", false
	}
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	return types.ExprString(sel.X), fn.Name(), true
}

// acquires reports whether method takes the guard (in either form).
func acquires(method string) bool {
	switch method {
	case "Lock", "RLock", "Do", "RDo":
		return true
	}
	return false
}

// orderEdge records the first observed acquisition order between two
// guard keys, for the package-wide inversion check.
type orderEdge struct {
	first, second string
	pos           token.Pos
}

func run(pass *framework.Pass) error {
	if framework.PkgPathIs(pass.Pkg, "internal/guard") {
		return nil
	}
	orders := map[[2]string]orderEdge{}
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkScope(pass, fn.Body, orders)
				}
			case *ast.FuncLit:
				checkScope(pass, fn.Body, orders)
			}
			return true
		})
	}
	return nil
}

// checkScope analyzes one function body. Nested func literals are skipped
// (each gets its own checkScope via the outer Inspect) except that Do/RDo
// closure arguments are additionally checked for nested acquisition and
// HTM-unfriendly operations.
func checkScope(pass *framework.Pass, body *ast.BlockStmt, orders map[[2]string]orderEdge) {
	type sideCount struct {
		locks, unlocks int
		firstLock      token.Pos
	}
	write := map[string]*sideCount{} // Lock/Unlock
	read := map[string]*sideCount{}  // RLock/RUnlock
	count := func(m map[string]*sideCount, key string) *sideCount {
		c := m[key]
		if c == nil {
			c = &sideCount{}
			m[key] = c
		}
		return c
	}
	var held []string // writer-held keys, in acquisition order
	deferredRelease := map[string]bool{}

	walk := func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			return false // its own scope
		case *ast.DeferStmt:
			if key, method, ok := guardCall(pass.TypesInfo, n.Call); ok {
				switch method {
				case "Lock":
					pass.Report(n.Pos(),
						"deferred %s.Lock acquires the guard at return instead of releasing it (did you mean defer %s.Unlock?)", key, key)
				case "RLock":
					pass.Report(n.Pos(),
						"deferred %s.RLock acquires the guard at return instead of releasing it (did you mean defer %s.RUnlock?)", key, key)
				case "Unlock":
					count(write, key).unlocks++
					deferredRelease[key] = true
				case "RUnlock":
					count(read, key).unlocks++
				}
				// A deferred release runs at return, so the guard stays
				// held for ordering purposes below this statement.
				return false
			}
			return true
		case *ast.ReturnStmt:
			for _, key := range held {
				if !deferredRelease[key] {
					pass.Report(n.Pos(),
						"return while guard %s is held with no deferred Unlock: this path leaves the guard locked", key)
				}
			}
			return true
		case *ast.CallExpr:
			key, method, ok := guardCall(pass.TypesInfo, n)
			if !ok {
				return true
			}
			switch method {
			case "Lock":
				c := count(write, key)
				if c.firstLock == token.NoPos {
					c.firstLock = n.Pos()
				}
				c.locks++
				for _, h := range held {
					if h == key {
						pass.Report(n.Pos(),
							"guard %s locked again while already held in this function: the guards are not reentrant, this self-deadlocks", key)
					} else {
						recordOrder(pass, orders, h, key, n.Pos())
					}
				}
				held = append(held, key)
			case "Unlock":
				count(write, key).unlocks++
				for i := len(held) - 1; i >= 0; i-- {
					if held[i] == key {
						held = append(held[:i], held[i+1:]...)
						break
					}
				}
			case "RLock":
				c := count(read, key)
				if c.firstLock == token.NoPos {
					c.firstLock = n.Pos()
				}
				c.locks++
			case "RUnlock":
				count(read, key).unlocks++
			case "Do", "RDo":
				if len(n.Args) == 1 {
					if lit, isLit := ast.Unparen(n.Args[0]).(*ast.FuncLit); isLit {
						checkClosure(pass, key, method, lit)
					}
				}
			}
			return true
		}
		return true
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if n == nil {
			return false
		}
		if n == body {
			return true
		}
		return walk(n)
	})

	for key, c := range write {
		if c.locks > c.unlocks {
			pass.Report(c.firstLock,
				"guard %s: %d Lock call(s) but only %d Unlock call(s) in this function — some path returns with the guard held", key, c.locks, c.unlocks)
		}
	}
	for key, c := range read {
		if c.locks > c.unlocks {
			pass.Report(c.firstLock,
				"guard %s: %d RLock call(s) but only %d RUnlock call(s) in this function — some path returns with the read guard held", key, c.locks, c.unlocks)
		}
	}
}

// recordOrder notes that outer was held when inner was acquired and
// reports a package-level inversion if the opposite order was seen first.
func recordOrder(pass *framework.Pass, orders map[[2]string]orderEdge, outer, inner string, pos token.Pos) {
	pair := [2]string{outer, inner}
	if pair[0] > pair[1] {
		pair[0], pair[1] = pair[1], pair[0]
	}
	prev, seen := orders[pair]
	if !seen {
		orders[pair] = orderEdge{first: outer, second: inner, pos: pos}
		return
	}
	if prev.first != outer {
		pass.Report(pos,
			"guards %s and %s acquired in conflicting orders (%s then %s here, %s then %s at %s): lock-order inversion deadlocks under contention",
			outer, inner, outer, inner, prev.first, prev.second,
			pass.Fset.Position(prev.pos))
	}
}

// checkClosure vets a Do/RDo closure body: no further guard acquisition,
// and nothing a hardware transaction cannot speculate through.
func checkClosure(pass *framework.Pass, outerKey, outerMethod string, lit *ast.FuncLit) {
	where := "guard " + outerMethod + " body"
	txbody.CheckBody(pass, lit.Body, where)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		call, isCall := n.(*ast.CallExpr)
		if !isCall {
			return true
		}
		key, method, ok := guardCall(pass.TypesInfo, call)
		if !ok || !acquires(method) {
			return true
		}
		if key == outerKey {
			pass.Report(call.Pos(),
				"nested acquisition %s.%s inside its own %s: the closure runs speculatively and again on the fallback lock, where this self-deadlocks", key, method, where)
		} else {
			pass.Report(call.Pos(),
				"acquisition %s.%s inside %s: a speculative body must not take other guards (it aborts every hardware attempt and serializes the fallback); acquire before %s.%s", key, method, where, outerKey, outerMethod)
		}
		return true
	})
}
