// Package guardmisuse is the golden input for the guardmisuse analyzer:
// each want comment seeds a true positive, the clean functions prove the
// accepted idioms stay silent, and the //rtle:ignore site proves the
// suppression route.
package guardmisuse

import (
	"time"

	"rtle/internal/core"
	"rtle/internal/guard"
	"rtle/internal/mem"
)

// --- balanced brackets ------------------------------------------------------

func leak(g *guard.Mutex) {
	g.Lock() // want `guard g: 1 Lock call\(s\) but only 0 Unlock call\(s\) in this function`
}

func leakOnBranch(g *guard.Mutex, a mem.Addr) uint64 {
	g.Lock()
	if a == mem.Nil {
		return 0 // want `return while guard g is held with no deferred Unlock`
	}
	v := g.Ctx().Read(a)
	g.Unlock()
	return v
}

func leakRead(g *guard.RWMutex) {
	g.RLock() // want `guard g: 1 RLock call\(s\) but only 0 RUnlock call\(s\) in this function`
	_ = g.RCtx()
}

func reacquire(g *guard.Mutex) {
	g.Lock()
	g.Lock() // want `guard g locked again while already held in this function`
	g.Unlock()
	g.Unlock()
}

func deferTypo(g *guard.Mutex, rw *guard.RWMutex) {
	g.Lock()
	defer g.Lock() // want `deferred g\.Lock acquires the guard at return instead of releasing it`
	g.Unlock()
	rw.RLock()
	defer rw.RLock() // want `deferred rw\.RLock acquires the guard at return instead of releasing it`
	rw.RUnlock()
}

func balanced(g *guard.Mutex, a mem.Addr) {
	g.Lock()
	defer g.Unlock()
	g.Ctx().Write(a, 1)
}

func balancedBranches(g *guard.RWMutex, a mem.Addr) uint64 {
	g.RLock()
	if a == mem.Nil {
		g.RUnlock()
		return 0
	}
	v := g.RCtx().Read(a)
	g.RUnlock()
	return v
}

// A helper that intentionally returns with the guard held must say so —
// once for the count, once for the held return.
func acquireHelper(g *guard.Mutex) core.Context {
	g.Lock() //rtle:ignore guardmisuse acquire-helper: the caller releases
	//rtle:ignore guardmisuse acquire-helper: the caller releases
	return g.Ctx()
}

// --- acquisition order ------------------------------------------------------

func orderAB(a, b *guard.Mutex) {
	a.Lock()
	b.Lock()
	b.Unlock()
	a.Unlock()
}

func orderBA(a, b *guard.Mutex) {
	b.Lock()
	a.Lock() // want `guards b and a acquired in conflicting orders`
	a.Unlock()
	b.Unlock()
}

// --- closures ---------------------------------------------------------------

func nested(g *guard.Mutex, other *guard.RWMutex, a mem.Addr) {
	g.Do(func(c core.Context) {
		g.Lock() // want `nested acquisition g\.Lock inside its own guard Do body`
		g.Unlock()
	})
	g.Do(func(c core.Context) {
		other.RDo(func(c2 core.Context) { // want `acquisition other\.RDo inside guard Do body`
			_ = c2.Read(a)
		})
	})
}

func unfriendly(g *guard.RWMutex, a mem.Addr, ch chan int) {
	g.Do(func(c core.Context) {
		time.Sleep(time.Nanosecond) // want `call to time\.Sleep inside guard Do body`
		c.Write(a, 1)
	})
	g.RDo(func(c core.Context) {
		ch <- int(c.Read(a)) // want `channel send inside guard RDo body`
	})
}

func friendly(g *guard.RWMutex, a mem.Addr) uint64 {
	var v uint64
	g.Do(func(c core.Context) { c.Write(a, c.Read(a)+1) })
	g.RDo(func(c core.Context) { v = c.Read(a) })
	return v
}
