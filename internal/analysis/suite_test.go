package analysis_test

import (
	"testing"

	"rtle/internal/analysis"
	"rtle/internal/analysis/framework"
)

// TestRepoIsClean runs the full rtlevet suite over the real tree and
// requires zero diagnostics — the same gate CI applies via cmd/rtlevet.
// Deliberate exceptions in the tree must carry //rtle:ignore pragmas (or
// path marks), so a failure here means either a new violation or an
// undocumented exception.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("loads and type-checks the whole module")
	}
	root, err := framework.ModuleRoot("")
	if err != nil {
		t.Fatalf("locating module root: %v", err)
	}
	loader := framework.NewLoader(root)
	pkgs, err := loader.Load("./...")
	if err != nil {
		t.Fatalf("loading ./...: %v", err)
	}
	if len(pkgs) < 10 {
		t.Fatalf("loaded only %d packages; expected the whole tree", len(pkgs))
	}
	for _, pkg := range pkgs {
		for _, terr := range pkg.TypeErrors {
			t.Errorf("%s: type error: %v", pkg.PkgPath, terr)
		}
	}
	diags, err := framework.RunAnalyzers(analysis.Analyzers(), pkgs)
	if err != nil {
		t.Fatalf("running suite: %v", err)
	}
	for _, d := range diags {
		t.Errorf("unexpected diagnostic: %s", d)
	}
	// Every //rtle:ignore in the tree must still excuse a live finding.
	// The full suite just ran, so a pragma that suppressed nothing is
	// provably stale — the finding it excused was fixed, or it never
	// matched. Stale waivers are how real violations hide.
	for _, d := range framework.UnusedIgnores(analysis.Analyzers(), pkgs, true) {
		t.Errorf("stale waiver: %s", d)
	}
}
