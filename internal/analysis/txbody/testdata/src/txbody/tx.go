// Package txbody is the golden input for the txbody analyzer: each want
// comment seeds a true positive; the //rtle:ignore site proves suppression.
package txbody

import (
	"sync/atomic"

	"rtle/internal/htm"
	"rtle/internal/mem"
)

var counter int64

type node struct{ next *node }

func txBodyViolations(m *mem.Memory, tx *htm.Tx, ch chan int, a mem.Addr) {
	reason := tx.Run(func(tx *htm.Tx) {
		v := tx.Read(a) // instrumented barrier: ok
		tx.Write(a, v+1)
		m.Load(a)                    // want `raw heap access Memory\.Load inside transaction body`
		m.Store(a, 1)                // want `raw heap access Memory\.Store inside transaction body`
		ch <- 1                      // want `channel send inside transaction body`
		<-ch                         // want `channel receive inside transaction body`
		_ = make([]uint64, 8)        // want `allocation via make inside transaction body`
		atomic.AddInt64(&counter, 1) // want `sync/atomic\.AddInt64 inside transaction body`
		go func() {}()               // want `goroutine launch inside transaction body`
	})
	_ = reason
}

// specAlloc is instrumented speculative code outside a literal Run call, so
// only the //rtle:speculative mark brings it in scope.
//
//rtle:speculative
func specAlloc(tx *htm.Tx) *node {
	return &node{} // want `heap allocation \(&composite literal\) inside speculative function specAlloc`
}

//rtle:speculative
func specOK(tx *htm.Tx, a mem.Addr) uint64 {
	return tx.Read(a) // barrier access: ok
}

// logged shows the sanctioned escape hatch: the append touches Go-level
// checker state, not the simulated heap, and is explicitly waived.
func logged(tx *htm.Tx, a mem.Addr, log *[]uint64) {
	reason := tx.Run(func(tx *htm.Tx) {
		v := tx.Read(a)
		//rtle:ignore txbody observation log lives outside the simulated heap
		*log = append(*log, v)
	})
	_ = reason
}
