// Package txbody defines the rtlevet pass that flags HTM-unfriendly
// operations inside hardware-transaction bodies.
//
// A transaction body is a func literal passed to (*htm.Tx).Run or any
// function marked //rtle:speculative. On real hardware (and in the htm
// simulation, via Tx.Unsupported and capacity aborts) such code must not:
//
//   - access the simulated heap except through the Tx.Read/Tx.Write
//     barriers — a raw mem.Memory access bypasses conflict tracking and
//     silently breaks opacity;
//   - block: channel operations, select, goroutine launches and calls
//     into time/os/syscall/net/io/fmt/log abort every attempt
//     (the paper's "unsupported instruction" case, §6.3);
//   - use Go-level synchronization (sync, sync/atomic): it bypasses the
//     transactional barriers and deadlocks against the fallback lock;
//   - allocate aggressively (make/new/append/&T{}): allocation triggers
//     runtime machinery a hardware transaction cannot speculate through
//     and inflates the write set toward a capacity abort.
//
// Packages marked //rtle:engine (mem, htm, spinlock) implement the
// simulated hardware itself and are exempt.
package txbody

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"rtle/internal/analysis/framework"
)

// Analyzer is the txbody pass.
var Analyzer = &framework.Analyzer{
	Name:    "txbody",
	Doc:     "flag HTM-unfriendly operations inside hardware-transaction bodies",
	Version: 1,
	Run:     run,
}

// rawMemMethods are the mem.Memory entry points that bypass transactional
// tracking when called from inside a transaction body.
var rawMemMethods = []string{
	"Load", "Store", "CAS", "FetchAdd",
	"WordLoad", "WordStore", "MetaLoad", "TryLockLine", "UnlockLine",
	"ClockLoad", "ClockTick", "Alloc", "AllocAligned", "AllocLines",
}

// blockedPkgs are import paths whose calls block or execute instructions
// HTM cannot speculate through.
var blockedPkgs = map[string]string{
	"time":    "blocks or reads the clock",
	"os":      "performs a syscall",
	"syscall": "performs a syscall",
	"net":     "performs network I/O",
	"io":      "performs I/O",
	"bufio":   "performs I/O",
	"fmt":     "formats and allocates (and may write)",
	"log":     "performs I/O",
	"runtime": "invokes runtime machinery",
}

var syncPkgs = map[string]string{
	"sync":        "Go-level synchronization deadlocks against the fallback lock",
	"sync/atomic": "atomic operations bypass the transactional barriers",
}

func run(pass *framework.Pass) error {
	if pass.Ann.Engine {
		return nil
	}
	for _, file := range pass.Files {
		// Func literals passed to (*htm.Tx).Run.
		ast.Inspect(file, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				return true
			}
			fn := framework.CalleeFunc(pass.TypesInfo, call)
			if !framework.IsTxMethod(fn, "Run") {
				return true
			}
			if lit, ok := ast.Unparen(call.Args[0]).(*ast.FuncLit); ok {
				checkBody(pass, lit.Body, "transaction body")
			}
			return true
		})
		// Functions marked //rtle:speculative.
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn != nil && pass.Ann.FuncMarks(fn).Has(framework.MarkSpeculative) {
				checkBody(pass, fd.Body, "speculative function "+fd.Name.Name)
			}
		}
	}
	return nil
}

// CheckBody reports every HTM-unfriendly operation in body, attributing
// the diagnostics to pass's own analyzer and describing the location as
// where (e.g. "transaction body", "guard Do body"). It is exported so
// passes over other speculative-closure surfaces — the guardmisuse pass
// checks rtle.Mutex.Do / rtle.RWMutex.RDo bodies — reuse one definition
// of "HTM-unfriendly" instead of drifting from this one.
func CheckBody(pass *framework.Pass, body *ast.BlockStmt, where string) {
	checkBody(pass, body, where)
}

func checkBody(pass *framework.Pass, body *ast.BlockStmt, where string) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.SendStmt:
			pass.Report(n.Pos(), "channel send inside %s: blocking operations abort every hardware attempt", where)
		case *ast.UnaryExpr:
			switch n.Op {
			case token.ARROW:
				pass.Report(n.Pos(), "channel receive inside %s: blocking operations abort every hardware attempt", where)
			case token.AND:
				if _, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					pass.Report(n.Pos(), "heap allocation (&composite literal) inside %s risks a capacity or unsupported-instruction abort", where)
				}
			}
		case *ast.SelectStmt:
			pass.Report(n.Pos(), "select inside %s: blocking operations abort every hardware attempt", where)
		case *ast.GoStmt:
			pass.Report(n.Pos(), "goroutine launch inside %s cannot be rolled back on abort", where)
		case *ast.CallExpr:
			checkCall(pass, n, where)
		}
		return true
	})
}

func checkCall(pass *framework.Pass, call *ast.CallExpr, where string) {
	// Built-ins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if _, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin); isBuiltin {
			switch id.Name {
			case "make", "new", "append":
				pass.Report(call.Pos(), "allocation via %s inside %s risks a capacity or unsupported-instruction abort", id.Name, where)
			case "print", "println":
				pass.Report(call.Pos(), "%s inside %s performs I/O, which HTM cannot speculate through", id.Name, where)
			}
			return
		}
	}
	fn := framework.CalleeFunc(pass.TypesInfo, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	if framework.IsMemoryMethod(fn, rawMemMethods...) {
		pass.Report(call.Pos(),
			"raw heap access Memory.%s inside %s bypasses the transactional read/write barriers; route it through Tx.Read/Tx.Write (or a Context)",
			fn.Name(), where)
		return
	}
	path := fn.Pkg().Path()
	if why, ok := syncPkgs[path]; ok {
		pass.Report(call.Pos(), "call to %s.%s inside %s: %s", path, fn.Name(), where, why)
		return
	}
	for pkg, why := range blockedPkgs {
		if path == pkg || strings.HasPrefix(path, pkg+"/") {
			pass.Report(call.Pos(), "call to %s.%s inside %s: %s — HTM cannot speculate through it", path, fn.Name(), where, why)
			return
		}
	}
}
