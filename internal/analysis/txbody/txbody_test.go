package txbody_test

import (
	"testing"

	"rtle/internal/analysis/analysistest"
	"rtle/internal/analysis/txbody"
)

// TestGolden runs the analyzer over its golden package: every seeded
// violation must be reported (so the test fails if the pass is disabled)
// and the //rtle:ignore site must stay silent.
func TestGolden(t *testing.T) {
	analysistest.Run(t, txbody.Analyzer, "txbody")
}
