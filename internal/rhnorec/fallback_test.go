package rhnorec

import (
	"testing"

	"rtle/internal/core"
	"rtle/internal/htm"
	"rtle/internal/mem"
)

// TestFallbackLockCommit: with HTM made unusable entirely, every
// operation must flow fast-path → software path → reduced-commit attempts
// → global fallback lock, and still be correct.
func TestFallbackLockCommit(t *testing.T) {
	m := mem.New(1 << 16)
	meth := New(m, core.Policy{
		Attempts: 2,
		HTM:      htm.Config{SpuriousProb: 1.0, SpuriousSeed: 11},
	})
	a := m.AllocLines(1)
	th := meth.NewThread()
	for i := 0; i < 25; i++ {
		th.Atomic(func(c core.Context) { c.Write(a, c.Read(a)+1) })
	}
	if m.Load(a) != 25 {
		t.Fatalf("counter = %d, want 25", m.Load(a))
	}
	s := th.Stats()
	if s.STMCommitsLock != 25 {
		t.Fatalf("STMCommitsLock = %d, want 25 (all commits via fallback lock)", s.STMCommitsLock)
	}
	if s.STMCommitsHTM != 0 || s.FastCommits != 0 {
		t.Fatalf("unexpected HTM success with 100%% fault injection: %+v", *s)
	}
	// The fallback lock must be released afterwards.
	if meth.fallback.Held() {
		t.Fatal("fallback lock leaked")
	}
	// And the sequence lock must be quiescent (even).
	if m.Load(meth.seqAddr)%2 != 0 {
		t.Fatal("sequence lock left odd")
	}
}

// TestSwCountReturnsToZero: the running-software-transaction counter must
// drain to zero after mixed traffic, or future fast commits would pay the
// timestamp bump forever.
func TestSwCountReturnsToZero(t *testing.T) {
	m := mem.New(1 << 16)
	meth := New(m, core.Policy{Attempts: 1})
	a := m.AllocLines(1)
	th := meth.NewThread()
	for i := 0; i < 30; i++ {
		unfriendly := i%3 == 0
		th.Atomic(func(c core.Context) {
			if unfriendly {
				c.Unsupported()
			}
			c.Write(a, c.Read(a)+1)
		})
	}
	if got := m.Load(meth.swAddr); got != 0 {
		t.Fatalf("software-transaction count leaked: %d", got)
	}
	// With no software transactions running, a fresh op must commit
	// HTMFast (no timestamp bump).
	seqBefore := m.Load(meth.seqAddr)
	th2 := meth.NewThread()
	th2.Atomic(func(c core.Context) { c.Write(a, c.Read(a)+1) })
	if th2.Stats().FastCommits != 1 {
		t.Fatalf("expected an HTMFast commit, got %+v", *th2.Stats())
	}
	if m.Load(meth.seqAddr) != seqBefore {
		t.Fatal("timestamp bumped with no software transactions running")
	}
}

// TestValidationUnderFallbackLockReleasesOnAbort: a value mismatch during
// the under-lock validation must release the fallback lock before the
// retry, or the whole system wedges. The interference is a second
// software transaction's fallback-lock commit (with HTM disabled
// entirely, every commit takes that path) — note that interference must
// be transactional: unlike refined TLE, a hybrid TM gives no guarantees
// against plain concurrent stores (paper §1).
func TestValidationUnderFallbackLockReleasesOnAbort(t *testing.T) {
	m := mem.New(1 << 16)
	meth := New(m, core.Policy{
		Attempts: 1,
		HTM:      htm.Config{SpuriousProb: 1.0, SpuriousSeed: 3},
	})
	a := m.AllocLines(1)
	sw := meth.NewThread()
	other := meth.NewThread()
	first := true
	sw.Atomic(func(c core.Context) {
		v := c.Read(a)
		if first {
			first = false
			// A competing software transaction commits via the
			// fallback lock, bumping the timestamp.
			other.Atomic(func(c2 core.Context) { c2.Write(a, c2.Read(a)+10) })
		}
		c.Write(a, v+1)
	})
	if got := m.Load(a); got != 11 {
		t.Fatalf("final = %d, want 11 (retry must observe the interference)", got)
	}
	if meth.fallback.Held() {
		t.Fatal("fallback lock leaked after validation abort")
	}
	if sw.Stats().STMAborts == 0 {
		t.Fatal("no software abort recorded")
	}
	if other.Stats().STMCommitsLock != 1 {
		t.Fatalf("interferer commits: %+v", *other.Stats())
	}
}
