// Package rhnorec implements the Reduced Hardware NOrec hybrid TM of
// Matveev and Shavit (TRANSACT 2014), the hybrid comparison point of the
// paper's evaluation (§6.2.2). It follows the variant the paper compares
// against ([18], not the later ASPLOS'15 redesign):
//
//   - Transactions first attempt to run entirely in HTM. If no software
//     transaction is running they commit without touching shared metadata
//     (HTMFast); otherwise they must increment the global timestamp at
//     commit so software readers revalidate (HTMSlow) — the increment that
//     §6.2.2 identifies as the scalability bottleneck.
//   - After the fast-path budget is exhausted the transaction switches to a
//     NOrec-style software path with value-based validation. Its commit is
//     attempted as a small ("reduced") hardware transaction that bumps the
//     timestamp and publishes the write set (STMFastCommit); if that keeps
//     failing, a global fallback lock halts all speculation and the commit
//     happens pessimistically (STMSlowCommit).
package rhnorec

import (
	"runtime"
	"time"

	"rtle/internal/core"
	"rtle/internal/htm"
	"rtle/internal/mem"
	"rtle/internal/spinlock"
)

// Method implements core.Method with the RHNOrec hybrid TM.
type Method struct {
	m        *mem.Memory
	policy   core.Policy
	seqAddr  mem.Addr // global timestamp / sequence lock (even = quiescent)
	swAddr   mem.Addr // count of running software transactions
	fallback *spinlock.Lock
}

// New returns an RHNOrec method over m. policy.Attempts bounds both the
// all-hardware path and the reduced commit transaction (the paper uses 5
// for each, §6.2.2).
func New(m *mem.Memory, policy core.Policy) *Method {
	line := m.AllocLines(1)
	r := &Method{
		m:       m,
		policy:  policy,
		seqAddr: line,
		swAddr:  line + 1,
	}
	r.fallback = spinlock.New(m)
	return r
}

// Name implements core.Method.
func (r *Method) Name() string { return "RHNOrec" }

func (r *Method) attempts() int {
	if r.policy.Attempts > 0 {
		return r.policy.Attempts
	}
	return core.DefaultAttempts
}

// NewThread implements core.Method.
func (r *Method) NewThread() core.Thread {
	return &thread{
		method:    r,
		tx:        htm.NewTx(r.m, r.policy.HTM),
		writeVals: make(map[mem.Addr]uint64, 64),
		pacer:     &core.Pacer{Every: r.policy.HTM.InterleaveEvery},
		rec:       core.NewRecorder(r.policy, r.Name()),
	}
}

type stmAbort struct{}

type thread struct {
	method *Method
	tx     *htm.Tx
	pacer  *core.Pacer
	rec    core.Recorder

	// Software-transaction state.
	snapshot   uint64
	readAddrs  []mem.Addr
	readVals   []uint64
	writeVals  map[mem.Addr]uint64
	writeOrder []mem.Addr

	bumped    bool            // current HTM fast attempt had to bump the timestamp
	committed core.CommitKind // bucket of the last successful software commit
}

func (t *thread) Stats() *core.Stats { return t.rec.Stats() }

// Atomic implements core.Thread.
func (t *thread) Atomic(body func(core.Context)) {
	t0 := t.rec.Begin()
	r := t.method
	for i := 0; i < r.attempts(); i++ {
		t.rec.FastAttempt()
		t.bumped = false
		reason := t.tx.Run(func(tx *htm.Tx) {
			// Subscribe to the fallback lock: a pessimistic commit
			// halts all hardware speculation.
			if tx.Read(r.fallback.Addr()) != 0 {
				tx.Abort()
			}
			swRunning := tx.Read(r.swAddr) != 0
			body(hwCtx{tx})
			if swRunning {
				// Software transactions are running: bump the
				// timestamp so they revalidate against our
				// writes. This is the contended increment of
				// Figs. 8–10. Even read-only transactions pay
				// it: without instrumentation the fast path
				// cannot know it performed no writes (§6.3).
				s := tx.Read(r.seqAddr)
				if s&1 != 0 {
					tx.Abort()
				}
				tx.Write(r.seqAddr, s+2)
				t.bumped = true
			}
		})
		if reason == htm.None {
			if t.bumped {
				t.rec.SlowCommit(t0) // HTMSlow in Fig. 9
			} else {
				t.rec.FastCommit(t0) // HTMFast in Fig. 9
			}
			return
		}
		t.rec.FastAbort(reason, false, t.tx.LastAbortInjected())
	}
	t.software(body, t0)
}

// software runs the NOrec-style software path until it commits.
func (t *thread) software(body func(core.Context), t0 int64) {
	start := time.Now()
	r := t.method
	r.m.FetchAdd(r.swAddr, 1)
	for !t.attempt(body) {
		t.rec.STMAbort()
	}
	r.m.FetchAdd(r.swAddr, ^uint64(0)) // decrement
	t.rec.STMDone(t.committed, t0, time.Since(start).Nanoseconds())
}

func (t *thread) attempt(body func(core.Context)) (ok bool) {
	t.rec.STMStart()
	t.snapshot = t.waitEven()
	defer func() {
		t.reset()
		if rec := recover(); rec != nil {
			if _, is := rec.(stmAbort); is {
				ok = false
				return
			}
			panic(rec)
		}
	}()
	body(swCtx{t})
	t.commit()
	return true
}

func (t *thread) reset() {
	t.readAddrs = t.readAddrs[:0]
	t.readVals = t.readVals[:0]
	clear(t.writeVals)
	t.writeOrder = t.writeOrder[:0]
}

func (t *thread) waitEven() uint64 {
	m := t.method.m
	for spins := 0; ; spins++ {
		s := m.Load(t.method.seqAddr)
		if s&1 == 0 {
			return s
		}
		if spins%8 == 7 {
			runtime.Gosched()
		}
	}
}

// validate is NOrec value-based validation (counted for Fig. 10).
func (t *thread) validate() uint64 {
	m := t.method.m
	for {
		s := t.waitEven()
		t.rec.Validation()
		for i, a := range t.readAddrs {
			if m.Load(a) != t.readVals[i] {
				panic(stmAbort{})
			}
		}
		if m.Load(t.method.seqAddr) == s {
			return s
		}
	}
}

func (t *thread) read(a mem.Addr) uint64 {
	t.pacer.Tick()
	if len(t.writeVals) > 0 {
		if v, ok := t.writeVals[a]; ok {
			return v
		}
	}
	m := t.method.m
	v := m.Load(a)
	// Every software load checks the timestamp — the cache-line
	// ping-pong §6.2.2 blames for the validation storms.
	for t.snapshot != m.Load(t.method.seqAddr) {
		t.snapshot = t.validate()
		v = m.Load(a)
	}
	t.readAddrs = append(t.readAddrs, a)
	t.readVals = append(t.readVals, v)
	return v
}

func (t *thread) write(a mem.Addr, v uint64) {
	t.pacer.Tick()
	if _, ok := t.writeVals[a]; !ok {
		t.writeOrder = append(t.writeOrder, a)
	}
	t.writeVals[a] = v
}

// commit publishes the software transaction: first with the reduced
// hardware transaction, then under the fallback lock.
func (t *thread) commit() {
	if len(t.writeVals) == 0 {
		t.committed = core.CommitSTMRO
		return
	}
	r := t.method
	m := r.m
	for i := 0; i < r.attempts(); i++ {
		seqChanged := false
		reason := t.tx.Run(func(tx *htm.Tx) {
			if tx.Read(r.fallback.Addr()) != 0 {
				tx.Abort()
			}
			s := tx.Read(r.seqAddr)
			if s != t.snapshot {
				// The timestamp moved since our last
				// validation: revalidate outside and retry.
				seqChanged = true
				tx.Abort()
			}
			for _, a := range t.writeOrder {
				tx.Write(a, t.writeVals[a])
			}
			tx.Write(r.seqAddr, s+2)
		})
		if reason == htm.None {
			t.committed = core.CommitSTMHTM
			return
		}
		if seqChanged {
			t.snapshot = t.validate() // aborts on value mismatch
		}
	}
	// Pessimistic commit: halt all speculation with the fallback lock.
	r.fallback.Acquire()
	t.rec.LockAcquired()
	for !m.CAS(r.seqAddr, t.snapshot, t.snapshot+1) {
		t.snapshot = t.validateUnderLock()
	}
	for _, a := range t.writeOrder {
		m.Store(a, t.writeVals[a])
	}
	m.Store(r.seqAddr, t.snapshot+2)
	r.fallback.Release()
	t.committed = core.CommitSTMLock
}

// validateUnderLock revalidates while holding the fallback lock; on a
// value mismatch it must release the lock before aborting the attempt.
func (t *thread) validateUnderLock() uint64 {
	m := t.method.m
	for {
		s := t.waitEven()
		t.rec.Validation()
		for i, a := range t.readAddrs {
			if m.Load(a) != t.readVals[i] {
				t.method.fallback.Release()
				panic(stmAbort{})
			}
		}
		if m.Load(t.method.seqAddr) == s {
			return s
		}
	}
}

// hwCtx is the all-hardware path (uninstrumented, as RHNOrec advertises).
type hwCtx struct {
	tx *htm.Tx
}

//rtle:speculative
func (c hwCtx) Read(a mem.Addr) uint64 { return c.tx.Read(a) }

//rtle:speculative
func (c hwCtx) Write(a mem.Addr, v uint64) { c.tx.Write(a, v) }
func (c hwCtx) InHTM() bool                { return true }
func (c hwCtx) Unsupported()               { c.tx.Unsupported() }

// swCtx is the software path.
type swCtx struct {
	t *thread
}

func (c swCtx) Read(a mem.Addr) uint64     { return c.t.read(a) }
func (c swCtx) Write(a mem.Addr, v uint64) { c.t.write(a, v) }
func (c swCtx) InHTM() bool                { return false }
func (c swCtx) Unsupported()               {}
