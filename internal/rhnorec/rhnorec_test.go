package rhnorec

import (
	"sync"
	"testing"

	"rtle/internal/avl"
	"rtle/internal/core"
	"rtle/internal/htm"
	"rtle/internal/mem"
	"rtle/internal/rng"
)

func TestSingleThreadFastPath(t *testing.T) {
	m := mem.New(1 << 14)
	meth := New(m, core.Policy{})
	a := m.AllocLines(1)
	th := meth.NewThread()
	for i := 0; i < 50; i++ {
		th.Atomic(func(c core.Context) { c.Write(a, c.Read(a)+1) })
	}
	if m.Load(a) != 50 {
		t.Fatalf("counter = %d, want 50", m.Load(a))
	}
	s := th.Stats()
	if s.FastCommits != 50 {
		t.Fatalf("FastCommits = %d, want 50 (no sw txns running, no timestamp bumps)", s.FastCommits)
	}
	if s.SlowCommits != 0 || s.STMStarts != 0 {
		t.Fatalf("unexpected slow/software activity: %+v", *s)
	}
	// No software transactions ran, so the timestamp must be untouched.
	if m.Load(meth.seqAddr) != 0 {
		t.Fatal("timestamp bumped without software transactions")
	}
}

func TestUnsupportedFallsToSoftware(t *testing.T) {
	m := mem.New(1 << 14)
	meth := New(m, core.Policy{Attempts: 3})
	a := m.AllocLines(1)
	th := meth.NewThread()
	th.Atomic(func(c core.Context) {
		c.Unsupported() // aborts HTM, no-op in software
		c.Write(a, c.Read(a)+1)
	})
	s := th.Stats()
	if s.FastAborts[htm.Unsupported] != 3 {
		t.Fatalf("fast unsupported aborts = %d, want 3", s.FastAborts[htm.Unsupported])
	}
	if s.STMStarts == 0 {
		t.Fatal("operation never reached the software path")
	}
	if m.Load(a) != 1 {
		t.Fatal("effect lost")
	}
}

func TestSoftwareCommitViaReducedHTM(t *testing.T) {
	m := mem.New(1 << 14)
	meth := New(m, core.Policy{Attempts: 2})
	a := m.AllocLines(1)
	th := meth.NewThread()
	th.Atomic(func(c core.Context) {
		c.Unsupported()
		c.Write(a, 42)
	})
	s := th.Stats()
	if s.STMCommitsHTM != 1 {
		t.Fatalf("STMCommitsHTM = %d, want 1 (reduced hardware commit)", s.STMCommitsHTM)
	}
	if s.STMCommitsLock != 0 {
		t.Fatalf("unexpected fallback-lock commit")
	}
	if m.Load(a) != 42 {
		t.Fatal("software write lost")
	}
}

func TestHTMBumpsTimestampWhileSoftwareRuns(t *testing.T) {
	m := mem.New(1 << 16)
	meth := New(m, core.Policy{})
	a := m.AllocLines(1)
	b := m.AllocLines(1)

	sw := meth.NewThread()
	hw := meth.NewThread()
	inSW := make(chan struct{})
	release := make(chan struct{})
	done := make(chan struct{})
	go func() {
		sw.Atomic(func(c core.Context) {
			c.Unsupported() // force software path
			c.Read(a)
			inSW <- struct{}{}
			<-release
			c.Write(a, 1)
		})
		close(done)
	}()
	<-inSW
	// A software transaction is running (swCount > 0): hardware commits
	// must bump the timestamp and be classified HTMSlow.
	before := m.Load(meth.seqAddr)
	hw.Atomic(func(c core.Context) { c.Write(b, 5) })
	if hw.Stats().SlowCommits != 1 {
		t.Fatalf("SlowCommits = %d, want 1 while software transaction runs", hw.Stats().SlowCommits)
	}
	if after := m.Load(meth.seqAddr); after != before+2 {
		t.Fatalf("timestamp %d -> %d, want +2", before, after)
	}
	close(release)
	<-done
}

func TestSoftwareValidationSeesHTMWrites(t *testing.T) {
	// A software transaction whose read is overwritten by a hardware
	// commit must abort and retry, never commit stale state.
	m := mem.New(1 << 16)
	meth := New(m, core.Policy{})
	a := m.AllocLines(1)
	sw := meth.NewThread()
	hw := meth.NewThread()
	first := true
	sw.Atomic(func(c core.Context) {
		if c.InHTM() {
			// Force this op onto the software path regardless of
			// the attempt budget.
			c.Unsupported()
		}
		v := c.Read(a)
		if first {
			first = false
			hw.Atomic(func(c2 core.Context) { c2.Write(a, c2.Read(a)+10) })
		}
		c.Write(a, v+1)
	})
	if got := m.Load(a); got != 11 {
		t.Fatalf("final = %d, want 11 (software transaction lost a hardware update)", got)
	}
	if sw.Stats().STMAborts == 0 {
		t.Fatal("software transaction never aborted despite interference")
	}
}

func TestConcurrentCounter(t *testing.T) {
	m := mem.New(1 << 16)
	meth := New(m, core.Policy{})
	a := m.AllocLines(1)
	const goroutines = 6
	const perG = 300
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		th := meth.NewThread()
		go func(th core.Thread) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				th.Atomic(func(c core.Context) { c.Write(a, c.Read(a)+1) })
			}
		}(th)
	}
	wg.Wait()
	if got := m.Load(a); got != goroutines*perG {
		t.Fatalf("lost updates: %d, want %d", got, goroutines*perG)
	}
}

func TestConcurrentMixedPathsAVL(t *testing.T) {
	// Hardware and software transactions interleave on a shared tree;
	// some ops are HTM-unfriendly so the software path stays busy.
	m := mem.New(1 << 22)
	meth := New(m, core.Policy{})
	set := avl.New(m)
	const keyRange = 32
	const goroutines = 5
	const perG = 300
	deltas := make([][]int64, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		deltas[g] = make([]int64, keyRange)
		th := meth.NewThread()
		go func(id int, th core.Thread) {
			defer wg.Done()
			h := set.NewHandle()
			r := rng.NewXoshiro256(uint64(id) + 5)
			for i := 0; i < perG; i++ {
				key := r.Uint64n(keyRange)
				unfriendly := r.Intn(5) == 0
				switch r.Intn(3) {
				case 0:
					var res bool
					th.Atomic(func(c core.Context) {
						if unfriendly {
							c.Unsupported()
						}
						res = h.InsertCS(c, key)
					})
					h.AfterInsert(res)
					if res {
						deltas[id][key]++
					}
				case 1:
					var res bool
					th.Atomic(func(c core.Context) {
						if unfriendly {
							c.Unsupported()
						}
						res = h.RemoveCS(c, key)
					})
					h.AfterRemove(res)
					if res {
						deltas[id][key]--
					}
				default:
					h.Contains(th, key)
				}
			}
		}(g, th)
	}
	wg.Wait()
	dc := core.Direct(m)
	if err := set.CheckInvariants(dc); err != nil {
		t.Fatalf("tree corrupted under RHNOrec: %v", err)
	}
	final := map[uint64]bool{}
	for _, k := range set.Keys(dc) {
		final[k] = true
	}
	for k := uint64(0); k < keyRange; k++ {
		var net int64
		for g := range deltas {
			net += deltas[g][k]
		}
		var want int64
		if final[k] {
			want = 1
		}
		if net != want {
			t.Errorf("key %d: net %d, final %v — hybrid isolation violated", k, net, final[k])
		}
	}
}

func TestReadOnlySoftwareCommit(t *testing.T) {
	m := mem.New(1 << 14)
	meth := New(m, core.Policy{Attempts: 1})
	a := m.AllocLines(1)
	m.Store(a, 3)
	th := meth.NewThread()
	var got uint64
	th.Atomic(func(c core.Context) {
		c.Unsupported()
		got = c.Read(a)
	})
	if got != 3 {
		t.Fatalf("read %d, want 3", got)
	}
	if th.Stats().STMCommitsRO != 1 {
		t.Fatalf("STMCommitsRO = %d, want 1", th.Stats().STMCommitsRO)
	}
}
