package norec

import (
	"sync"
	"testing"

	"rtle/internal/avl"
	"rtle/internal/core"
	"rtle/internal/mem"
	"rtle/internal/rng"
)

func TestSingleThreadCounter(t *testing.T) {
	m := mem.New(1 << 14)
	meth := New(m, core.Policy{})
	a := m.AllocLines(1)
	th := meth.NewThread()
	for i := 0; i < 100; i++ {
		th.Atomic(func(c core.Context) { c.Write(a, c.Read(a)+1) })
	}
	if m.Load(a) != 100 {
		t.Fatalf("counter = %d, want 100", m.Load(a))
	}
	s := th.Stats()
	if s.Ops != 100 || s.STMCommitsLock != 100 {
		t.Fatalf("stats wrong: %+v", *s)
	}
}

func TestReadOnlyCommitsFree(t *testing.T) {
	m := mem.New(1 << 14)
	meth := New(m, core.Policy{})
	a := m.AllocLines(1)
	m.Store(a, 9)
	th := meth.NewThread()
	var got uint64
	th.Atomic(func(c core.Context) { got = c.Read(a) })
	if got != 9 {
		t.Fatalf("read %d, want 9", got)
	}
	s := th.Stats()
	if s.STMCommitsRO != 1 || s.STMCommitsLock != 0 {
		t.Fatalf("read-only op not committed as RO: %+v", *s)
	}
	// The global sequence lock must be untouched by a read-only commit.
	if m.Load(meth.SeqAddr()) != 0 {
		t.Fatal("read-only commit moved the sequence lock")
	}
}

func TestReadOwnWrite(t *testing.T) {
	m := mem.New(1 << 14)
	meth := New(m, core.Policy{})
	a := m.AllocLines(1)
	th := meth.NewThread()
	th.Atomic(func(c core.Context) {
		c.Write(a, 5)
		if c.Read(a) != 5 {
			t.Error("software transaction cannot read its own write")
		}
	})
	if m.Load(a) != 5 {
		t.Fatal("write not published")
	}
}

func TestWritesInvisibleUntilCommit(t *testing.T) {
	m := mem.New(1 << 14)
	meth := New(m, core.Policy{})
	a := m.AllocLines(1)
	th := meth.NewThread()
	th.Atomic(func(c core.Context) {
		c.Write(a, 7)
		if m.Load(a) != 0 {
			t.Error("buffered software write visible before commit")
		}
	})
}

func TestValidationDetectsInterference(t *testing.T) {
	m := mem.New(1 << 14)
	meth := New(m, core.Policy{})
	a := m.AllocLines(1)
	other := meth.NewThread()
	th := meth.NewThread()
	first := true
	th.Atomic(func(c core.Context) {
		v := c.Read(a)
		if first {
			first = false
			// Interfering committed writer transaction.
			other.Atomic(func(c2 core.Context) { c2.Write(a, c2.Read(a)+10) })
		}
		c.Write(a, v+1)
	})
	// The first attempt read 0, then the interferer set 10; the retry
	// must observe 10 and commit 11.
	if got := m.Load(a); got != 11 {
		t.Fatalf("final value %d, want 11 (lost update)", got)
	}
	if th.Stats().STMAborts == 0 {
		t.Fatal("no abort recorded despite interference")
	}
}

func TestValidationsCounted(t *testing.T) {
	m := mem.New(1 << 14)
	meth := New(m, core.Policy{})
	a := m.AllocLines(1)
	b := m.AllocLines(1)
	other := meth.NewThread()
	th := meth.NewThread()
	first := true
	th.Atomic(func(c core.Context) {
		c.Read(a)
		if first {
			first = false
			other.Atomic(func(c2 core.Context) { c2.Write(b, 1) }) // moves the clock, no value conflict
		}
		c.Read(b) // post-validation sees the clock moved and revalidates
	})
	if th.Stats().Validations == 0 {
		t.Fatal("no validations counted despite a concurrent commit")
	}
	if th.Stats().STMAborts != 0 {
		t.Fatal("value-based validation aborted without a real conflict")
	}
}

func TestConcurrentCounter(t *testing.T) {
	m := mem.New(1 << 16)
	meth := New(m, core.Policy{})
	a := m.AllocLines(1)
	const goroutines = 6
	const perG = 300
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		th := meth.NewThread()
		go func(th core.Thread) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				th.Atomic(func(c core.Context) { c.Write(a, c.Read(a)+1) })
			}
		}(th)
	}
	wg.Wait()
	if got := m.Load(a); got != goroutines*perG {
		t.Fatalf("lost updates: %d, want %d", got, goroutines*perG)
	}
}

func TestConcurrentAVL(t *testing.T) {
	m := mem.New(1 << 22)
	meth := New(m, core.Policy{})
	set := avl.New(m)
	const keyRange = 32
	const goroutines = 4
	const perG = 400
	var wg sync.WaitGroup
	wg.Add(goroutines)
	deltas := make([][]int64, goroutines)
	for g := 0; g < goroutines; g++ {
		deltas[g] = make([]int64, keyRange)
		th := meth.NewThread()
		go func(id int, th core.Thread) {
			defer wg.Done()
			h := set.NewHandle()
			r := rng.NewXoshiro256(uint64(id) + 77)
			for i := 0; i < perG; i++ {
				key := r.Uint64n(keyRange)
				switch r.Intn(3) {
				case 0:
					if h.Insert(th, key) {
						deltas[id][key]++
					}
				case 1:
					if h.Remove(th, key) {
						deltas[id][key]--
					}
				default:
					h.Contains(th, key)
				}
			}
		}(g, th)
	}
	wg.Wait()
	dc := core.Direct(m)
	if err := set.CheckInvariants(dc); err != nil {
		t.Fatalf("tree corrupted under NOrec: %v", err)
	}
	final := map[uint64]bool{}
	for _, k := range set.Keys(dc) {
		final[k] = true
	}
	for k := uint64(0); k < keyRange; k++ {
		var net int64
		for g := range deltas {
			net += deltas[g][k]
		}
		var want int64
		if final[k] {
			want = 1
		}
		if net != want {
			t.Errorf("key %d: net ops %d but final presence %v", k, net, final[k])
		}
	}
}

func TestUnsupportedIsNoOp(t *testing.T) {
	m := mem.New(1 << 14)
	meth := New(m, core.Policy{})
	a := m.AllocLines(1)
	th := meth.NewThread()
	th.Atomic(func(c core.Context) {
		if c.InHTM() {
			t.Error("NOrec context claims to be in HTM")
		}
		c.Unsupported() // must not abort software transactions
		c.Write(a, 1)
	})
	if m.Load(a) != 1 {
		t.Fatal("op with Unsupported lost its effect")
	}
}

func TestUserPanicPropagates(t *testing.T) {
	m := mem.New(1 << 14)
	meth := New(m, core.Policy{})
	th := meth.NewThread()
	defer func() {
		if r := recover(); r != "boom" {
			t.Fatalf("recovered %v, want boom", r)
		}
	}()
	th.Atomic(func(c core.Context) { panic("boom") })
}
