// Package norec implements the NOrec software transactional memory of
// Dalessandro, Spear and Scott (PPoPP 2010), the software-only comparison
// point of the paper's evaluation (§6.2.2) and the substrate of the
// RHNOrec hybrid.
//
// NOrec keeps no ownership records: a single global sequence lock
// serializes writer commits, and readers detect interference by
// value-based validation — re-reading every location in the read set and
// comparing values — whenever the sequence lock changes. Read-only
// transactions commit without touching shared metadata.
package norec

import (
	"runtime"
	"time"

	"rtle/internal/core"
	"rtle/internal/mem"
)

// Method implements core.Method with the NOrec STM. All atomic blocks run
// as software transactions; there is no hardware component.
type Method struct {
	m       *mem.Memory
	seqAddr mem.Addr
	policy  core.Policy
}

// New returns a NOrec method over m. Only the policy's concurrency
// virtualization (InterleaveEvery) applies; software transactions retry
// until they commit regardless of the attempt budget.
func New(m *mem.Memory, policy core.Policy) *Method {
	return &Method{m: m, seqAddr: m.AllocLines(1), policy: policy}
}

// Name implements core.Method.
func (n *Method) Name() string { return "NOrec" }

// SeqAddr returns the global sequence-lock address (for RHNOrec and tests).
func (n *Method) SeqAddr() mem.Addr { return n.seqAddr }

// NewThread implements core.Method.
func (n *Method) NewThread() core.Thread {
	return &thread{
		method:    n,
		writeVals: make(map[mem.Addr]uint64, 64),
		pacer:     &core.Pacer{Every: n.policy.HTM.InterleaveEvery},
		rec:       core.NewRecorder(n.policy, n.Name()),
	}
}

// stmAbort is the private panic value that unwinds an aborting software
// transaction attempt.
type stmAbort struct{}

type thread struct {
	method *Method
	pacer  *core.Pacer
	rec    core.Recorder

	snapshot   uint64
	readAddrs  []mem.Addr
	readVals   []uint64
	writeVals  map[mem.Addr]uint64
	writeOrder []mem.Addr

	committed core.CommitKind // bucket of the last successful commit
}

func (t *thread) Stats() *core.Stats { return t.rec.Stats() }

// Atomic implements core.Thread: retry the software transaction until it
// commits.
func (t *thread) Atomic(body func(core.Context)) {
	t0 := t.rec.Begin()
	start := time.Now()
	for !t.attempt(body) {
		t.rec.STMAbort()
	}
	t.rec.STMDone(t.committed, t0, time.Since(start).Nanoseconds())
}

// attempt runs one software transaction attempt; false means validation
// failed and the caller must retry.
func (t *thread) attempt(body func(core.Context)) (ok bool) {
	t.begin()
	defer func() {
		t.reset()
		if r := recover(); r != nil {
			if _, is := r.(stmAbort); is {
				ok = false
				return
			}
			panic(r)
		}
	}()
	body(ctx{t})
	t.commit()
	return true
}

func (t *thread) begin() {
	t.rec.STMStart()
	t.snapshot = t.waitEven()
}

func (t *thread) reset() {
	t.readAddrs = t.readAddrs[:0]
	t.readVals = t.readVals[:0]
	clear(t.writeVals)
	t.writeOrder = t.writeOrder[:0]
}

// waitEven spins until the sequence lock is even (no writer committing)
// and returns its value.
func (t *thread) waitEven() uint64 {
	m := t.method.m
	for spins := 0; ; spins++ {
		s := m.Load(t.method.seqAddr)
		if s&1 == 0 {
			return s
		}
		if spins%8 == 7 {
			runtime.Gosched()
		}
	}
}

// validate re-reads the entire read set and compares values (NOrec's
// signature mechanism, counted for Fig. 10). It returns the new consistent
// snapshot, or aborts the attempt on a changed value.
func (t *thread) validate() uint64 {
	m := t.method.m
	for {
		s := t.waitEven()
		t.rec.Validation()
		consistent := true
		for i, a := range t.readAddrs {
			if m.Load(a) != t.readVals[i] {
				consistent = false
				break
			}
		}
		if !consistent {
			panic(stmAbort{})
		}
		if m.Load(t.method.seqAddr) == s {
			return s
		}
	}
}

// read performs a transactional load with the NOrec post-validation loop.
func (t *thread) read(a mem.Addr) uint64 {
	t.pacer.Tick()
	if len(t.writeVals) > 0 {
		if v, ok := t.writeVals[a]; ok {
			return v
		}
	}
	m := t.method.m
	v := m.Load(a)
	for t.snapshot != m.Load(t.method.seqAddr) {
		t.snapshot = t.validate()
		v = m.Load(a)
	}
	t.readAddrs = append(t.readAddrs, a)
	t.readVals = append(t.readVals, v)
	return v
}

func (t *thread) write(a mem.Addr, v uint64) {
	t.pacer.Tick()
	if _, ok := t.writeVals[a]; !ok {
		t.writeOrder = append(t.writeOrder, a)
	}
	t.writeVals[a] = v
}

// commit publishes buffered writes under the sequence lock. Read-only
// transactions are already consistent at snapshot time and commit for free.
func (t *thread) commit() {
	if len(t.writeVals) == 0 {
		t.committed = core.CommitSTMRO
		return
	}
	m := t.method.m
	for !m.CAS(t.method.seqAddr, t.snapshot, t.snapshot+1) {
		t.snapshot = t.validate()
	}
	// The odd sequence number is NOrec's writer lock: fire the
	// lock-holder fault hook while every other commit is excluded.
	t.rec.LockAcquired()
	for _, a := range t.writeOrder {
		m.Store(a, t.writeVals[a])
	}
	m.Store(t.method.seqAddr, t.snapshot+2)
	// Plain NOrec serializes every writer commit on the sequence lock;
	// report those in the "slow" software-commit bucket.
	t.committed = core.CommitSTMLock
}

// ctx adapts a thread to core.Context.
type ctx struct {
	t *thread
}

func (c ctx) Read(a mem.Addr) uint64     { return c.t.read(a) }
func (c ctx) Write(a mem.Addr, v uint64) { c.t.write(a, v) }
func (c ctx) InHTM() bool                { return false }

// Unsupported is a no-op: software transactions can run anything, which is
// why the HTM-unfriendly thread of §6.3 always lands on the software path.
func (c ctx) Unsupported() {}
