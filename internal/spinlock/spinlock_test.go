package spinlock

import (
	"sync"
	"testing"

	"rtle/internal/mem"
)

func TestAcquireRelease(t *testing.T) {
	m := mem.New(1 << 10)
	l := New(m)
	if l.Held() {
		t.Fatal("fresh lock reports held")
	}
	l.Acquire()
	if !l.Held() {
		t.Fatal("acquired lock reports free")
	}
	l.Release()
	if l.Held() {
		t.Fatal("released lock reports held")
	}
}

func TestTryAcquire(t *testing.T) {
	m := mem.New(1 << 10)
	l := New(m)
	if !l.TryAcquire() {
		t.Fatal("TryAcquire on a free lock failed")
	}
	if l.TryAcquire() {
		t.Fatal("TryAcquire on a held lock succeeded")
	}
	l.Release()
	if !l.TryAcquire() {
		t.Fatal("TryAcquire after release failed")
	}
}

func TestAddrIsLineAligned(t *testing.T) {
	m := mem.New(1 << 10)
	l := New(m)
	if uint64(l.Addr())%mem.WordsPerLine != 0 {
		t.Fatalf("lock word %d not line-aligned", l.Addr())
	}
}

func TestNewAtWrapsWord(t *testing.T) {
	m := mem.New(1 << 10)
	a := m.AllocLines(1)
	l := NewAt(m, a)
	if l.Addr() != a {
		t.Fatalf("Addr = %d, want %d", l.Addr(), a)
	}
	l.Acquire()
	if m.Load(a) != 1 {
		t.Fatal("lock word not set by Acquire")
	}
	l.Release()
}

func TestMutualExclusion(t *testing.T) {
	m := mem.New(1 << 10)
	l := New(m)
	counter := 0
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				l.Acquire()
				counter++
				l.Release()
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*perG {
		t.Fatalf("counter = %d, want %d: mutual exclusion violated", counter, goroutines*perG)
	}
}

func TestWaitUntilFree(t *testing.T) {
	m := mem.New(1 << 10)
	l := New(m)
	l.Acquire()
	released := make(chan struct{})
	go func() {
		l.WaitUntilFree()
		close(released)
	}()
	select {
	case <-released:
		t.Fatal("WaitUntilFree returned while lock held")
	default:
	}
	l.Release()
	<-released
}

func TestAcquireBumpsLineVersion(t *testing.T) {
	// Transactional subscribers rely on acquisition being visible as a
	// version change on the lock's line.
	m := mem.New(1 << 10)
	l := New(m)
	line := mem.LineOf(l.Addr())
	before := mem.VersionOf(m.MetaLoad(line))
	l.Acquire()
	if after := mem.VersionOf(m.MetaLoad(line)); after <= before {
		t.Fatalf("acquire did not advance line version: %d -> %d", before, after)
	}
	l.Release()
}
