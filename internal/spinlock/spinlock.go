// Package spinlock implements the elidable lock used by all TLE variants: a
// test-and-test-and-set spin lock with bounded exponential backoff, living
// in simulated shared memory so that hardware transactions can subscribe to
// its word (read it transactionally) and abort when it changes — the
// mechanism at the heart of transactional lock elision.
//
// This mirrors the paper's experimental setup (§6.2): "a simple
// test-and-test-and-set lock with exponential backoff". Neither the paper
// nor this implementation addresses fairness or anti-starvation.
package spinlock

// The lock word lives in raw simulated memory by design; the rtlevet
// txbody and barrierdiscipline passes do not apply here.
//
//rtle:engine

import (
	"runtime"

	"rtle/internal/mem"
)

// Lock word states.
const (
	free uint64 = 0
	held uint64 = 1
)

// maxBackoff bounds the exponential backoff (in local spin iterations).
const maxBackoff = 1 << 10

// Lock is a test-and-test-and-set spin lock in simulated memory. Create
// with New; the zero value is not usable.
type Lock struct {
	m    *mem.Memory
	addr mem.Addr
}

// New allocates a lock on its own cache line of m, so that subscription
// conflicts are confined to the lock word.
func New(m *mem.Memory) *Lock {
	return &Lock{m: m, addr: m.AllocLines(1)}
}

// NewAt wraps an existing word address as a lock. The word must be 0
// (unlocked) and should not share a line with unrelated data unless the
// caller wants the false-sharing semantics that implies (RW-TLE
// deliberately co-locates its write flag with the lock; see package core).
func NewAt(m *mem.Memory, addr mem.Addr) *Lock {
	return &Lock{m: m, addr: addr}
}

// Addr returns the address of the lock word, for transactional
// subscription.
func (l *Lock) Addr() mem.Addr { return l.addr }

// Memory returns the heap the lock lives in.
func (l *Lock) Memory() *mem.Memory { return l.m }

// Held reports whether the lock is currently held (a plain, racy probe, as
// in the TLE fast path's "is lock available?" test).
func (l *Lock) Held() bool { return l.m.Load(l.addr) == held }

// TryAcquire attempts one atomic acquisition and reports success.
func (l *Lock) TryAcquire() bool { return l.m.CAS(l.addr, free, held) }

// Acquire spins until it owns the lock, using test-and-test-and-set with
// exponential backoff. Under GOMAXPROCS=1 the backoff yields to the
// scheduler so the owner can run.
func (l *Lock) Acquire() {
	backoff := 1
	for {
		if !l.Held() && l.TryAcquire() {
			return
		}
		for i := 0; i < backoff; i++ {
			if i%16 == 15 {
				runtime.Gosched()
			}
		}
		runtime.Gosched()
		if backoff < maxBackoff {
			backoff <<= 1
		}
	}
}

// Release frees the lock. Calling Release on a lock that is not held
// corrupts it; the caller owns that protocol, as with a real spin lock.
func (l *Lock) Release() { l.m.Store(l.addr, free) }

// WaitUntilFree spins (politely) until the lock is observed free. TLE uses
// it between elision attempts, per Intel's anti-lemming guidance [16]: do
// not start a transaction that is doomed to abort on subscription.
func (l *Lock) WaitUntilFree() {
	for spins := 0; l.Held(); spins++ {
		if spins%8 == 7 {
			runtime.Gosched()
		}
	}
}
