package mem

import "testing"

// Micro-benchmarks for the simulation substrate's per-access costs. These
// anchor the cost model discussion in DESIGN.md: the ratio between a plain
// access and a transactional access (htm's benchmarks) is the simulated
// analogue of the paper's "uninstrumented vs instrumented" gap.

func BenchmarkLoad(b *testing.B) {
	m := New(1 << 12)
	a := m.Alloc(1)
	m.Store(a, 1)
	b.ResetTimer()
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink += m.Load(a)
	}
	_ = sink
}

func BenchmarkStore(b *testing.B) {
	m := New(1 << 12)
	a := m.Alloc(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Store(a, uint64(i))
	}
}

func BenchmarkCASSuccess(b *testing.B) {
	m := New(1 << 12)
	a := m.Alloc(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.CAS(a, uint64(i), uint64(i+1))
	}
}

func BenchmarkFetchAdd(b *testing.B) {
	m := New(1 << 12)
	a := m.Alloc(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.FetchAdd(a, 1)
	}
}

func BenchmarkAllocLines(b *testing.B) {
	m := New((b.N + 2) * WordsPerLine * 2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.AllocLines(1)
	}
}
