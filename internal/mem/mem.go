// Package mem provides the simulated word-addressable shared memory that
// underpins the HTM simulation.
//
// Real hardware transactional memory observes every load and store a core
// issues and detects conflicts at cache-line granularity. A software
// simulation can only observe traffic that flows through it, so every piece
// of shared state in this repository — data-structure nodes, locks, flags,
// ownership records — lives in a Memory heap and is accessed through it.
//
// The heap is an array of 64-bit words grouped into cache lines of
// WordsPerLine words. Each line carries a versioned lock word ("meta"):
// bit 0 is a lock bit used during non-transactional stores and transaction
// commits, and the remaining bits hold the version — the value of the
// global clock at the time of the line's last modification. Transactions
// (package htm) validate the version against a clock snapshot to obtain
// opacity, exactly as in the TL2 lineage of STM designs.
//
// Non-transactional accesses model what the paper calls uninstrumented code
// running outside any transaction (for example, the thread holding the
// lock): Load is a plain atomic load, and Store bumps the line version so
// that any in-flight transaction that read the line is doomed — the
// simulated analogue of HTM strong atomicity. Crucially, a sequence of
// Stores is NOT atomic as a group; nothing protects a multi-access critical
// section run by a lock holder. Providing that protection is the job of the
// RW-TLE and FG-TLE instrumentation barriers, as in the paper.
package mem

// This package IS the raw layer the rtlevet suite protects: its accessors
// are what everything else must route around, so the txbody and
// barrierdiscipline passes do not apply here.
//
//rtle:engine

import (
	"fmt"
	"runtime"
	"sync/atomic"
)

const (
	// LineShift is log2(WordsPerLine).
	LineShift = 3
	// WordsPerLine is the number of 64-bit words per simulated cache
	// line: 8 words = 64 bytes, matching x86.
	WordsPerLine = 1 << LineShift
)

// Addr is a word address in a simulated heap. Address 0 is reserved as the
// nil pointer: the first line of the heap is never allocated.
type Addr uint64

// Nil is the null simulated address.
const Nil Addr = 0

// Memory is a simulated shared heap. All methods are safe for concurrent
// use. The zero value is not usable; call New.
type Memory struct {
	words []atomic.Uint64
	meta  []atomic.Uint64 // per line: version<<1 | lockbit
	clock atomic.Uint64   // global version clock
	next  atomic.Uint64   // bump-allocation cursor (in words)
}

// New returns a Memory with capacity for at least words 64-bit words,
// rounded up to a whole number of lines. The first line is reserved so that
// Addr 0 can serve as nil.
func New(words int) *Memory {
	if words < 2*WordsPerLine {
		words = 2 * WordsPerLine
	}
	lines := (words + WordsPerLine - 1) / WordsPerLine
	m := &Memory{
		words: make([]atomic.Uint64, lines*WordsPerLine),
		meta:  make([]atomic.Uint64, lines),
	}
	m.next.Store(WordsPerLine) // skip the nil line
	return m
}

// Size returns the heap capacity in words.
func (m *Memory) Size() int { return len(m.words) }

// Lines returns the number of cache lines in the heap.
func (m *Memory) Lines() int { return len(m.meta) }

// Allocated returns the number of words handed out so far (including the
// reserved nil line).
func (m *Memory) Allocated() int { return int(m.next.Load()) }

// LineOf returns the cache-line index of a word address.
func LineOf(a Addr) uint64 { return uint64(a) >> LineShift }

// Locked reports whether a meta word has its lock bit set.
func Locked(meta uint64) bool { return meta&1 != 0 }

// VersionOf extracts the version from a meta word.
func VersionOf(meta uint64) uint64 { return meta >> 1 }

// Alloc reserves n consecutive words and returns the address of the first.
// The words are zeroed (they are never reused by Alloc itself; data
// structures that recycle memory keep their own free lists, as a real
// allocator would). Alloc panics if the heap is exhausted — heaps are sized
// per experiment and exhaustion is a configuration bug, not a runtime
// condition callers can recover from meaningfully.
func (m *Memory) Alloc(n int) Addr {
	if n <= 0 {
		panic("mem: Alloc with non-positive size")
	}
	a := m.next.Add(uint64(n)) - uint64(n)
	if a+uint64(n) > uint64(len(m.words)) {
		panic(fmt.Sprintf("mem: heap exhausted (capacity %d words, requested %d at %d)", len(m.words), n, a))
	}
	return Addr(a)
}

// AllocAligned reserves n words starting on a cache-line boundary. It is
// used for data that must not share a line with neighbours (for example,
// the padded bank-account counters of the paper's §6.3 benchmark).
func (m *Memory) AllocAligned(n int) Addr {
	if n <= 0 {
		panic("mem: AllocAligned with non-positive size")
	}
	for {
		cur := m.next.Load()
		start := (cur + WordsPerLine - 1) &^ uint64(WordsPerLine-1)
		end := start + uint64(n)
		if end > uint64(len(m.words)) {
			panic(fmt.Sprintf("mem: heap exhausted (capacity %d words, aligned request %d)", len(m.words), n))
		}
		if m.next.CompareAndSwap(cur, end) {
			return Addr(start)
		}
	}
}

// AllocLines reserves n whole cache lines and returns the address of the
// first word of the first line.
func (m *Memory) AllocLines(n int) Addr {
	return m.AllocAligned(n * WordsPerLine)
}

// Load performs a non-transactional read of a word. It corresponds to an
// uninstrumented load executed outside any hardware transaction. It is
// atomic at word granularity but provides no snapshot consistency across
// multiple loads — exactly like a plain load on real hardware.
//
// Load never returns a value from the middle of a transaction commit: if
// the line is locked by a committing transaction (or a concurrent Store),
// it waits for the publication to finish. This preserves real HTM's
// single-instant commit semantics for non-transactional observers — a
// plain load on real hardware either precedes a transaction's commit
// entirely or sees all of that transaction's writes; without this wait, a
// lock-holding thread could read pre-commit data after the transaction
// had already validated, breaking the strong atomicity the TLE barrier
// protocols depend on.
func (m *Memory) Load(a Addr) uint64 {
	line := LineOf(a)
	for spins := 0; ; spins++ {
		m1 := m.meta[line].Load()
		if !Locked(m1) {
			v := m.words[a].Load()
			if m.meta[line].Load() == m1 {
				return v
			}
		}
		if spins%32 == 31 {
			runtime.Gosched()
		}
	}
}

// Store performs a non-transactional write of a word. The line's version is
// advanced past the global clock so that every in-flight transaction whose
// read set includes the line will fail validation — the simulated analogue
// of HTM strong atomicity (a conflicting plain store aborts transactional
// readers). Store briefly locks the line to exclude committing
// transactions, mirroring the cache-coherence exclusivity of a real store.
func (m *Memory) Store(a Addr, v uint64) {
	line := LineOf(a)
	m.lockLine(line)
	m.words[a].Store(v)
	nv := m.clock.Add(1)
	m.meta[line].Store(nv << 1)
}

// CAS performs a non-transactional compare-and-swap on a word, returning
// whether the swap happened. On success the line version is advanced as in
// Store. It models the atomic read-modify-write instructions lock
// implementations use.
func (m *Memory) CAS(a Addr, old, new uint64) bool {
	line := LineOf(a)
	mw := m.lockLine(line)
	if m.words[a].Load() != old {
		m.meta[line].Store(mw) // restore; no modification happened
		return false
	}
	m.words[a].Store(new)
	nv := m.clock.Add(1)
	m.meta[line].Store(nv << 1)
	return true
}

// FetchAdd atomically adds delta to a word and returns the new value,
// advancing the line version as in Store.
func (m *Memory) FetchAdd(a Addr, delta uint64) uint64 {
	line := LineOf(a)
	m.lockLine(line)
	nv := m.words[a].Load() + delta
	m.words[a].Store(nv)
	ver := m.clock.Add(1)
	m.meta[line].Store(ver << 1)
	return nv
}

// lockLine spins until it owns the line's lock bit and returns the meta
// value observed before locking (with the lock bit clear).
func (m *Memory) lockLine(line uint64) uint64 {
	for spins := 0; ; spins++ {
		mw := m.meta[line].Load()
		if !Locked(mw) && m.meta[line].CompareAndSwap(mw, mw|1) {
			return mw
		}
		if spins%64 == 63 {
			runtime.Gosched()
		}
	}
}

// --- Hooks for package htm -------------------------------------------------
//
// The transaction engine needs raw access to line metadata and the clock.
// These methods are exported for htm's use only; application code should
// never call them.

// MetaLoad returns the current meta word of a line.
func (m *Memory) MetaLoad(line uint64) uint64 { return m.meta[line].Load() }

// TryLockLine attempts to set the lock bit of a line whose meta word was
// observed as observed (which must have the lock bit clear). It returns
// false if the meta word changed or is locked.
func (m *Memory) TryLockLine(line uint64, observed uint64) bool {
	if Locked(observed) {
		return false
	}
	return m.meta[line].CompareAndSwap(observed, observed|1)
}

// UnlockLine releases a line lock, installing version as the line's new
// version (callers pass the pre-lock version to undo, or a fresh clock
// value to publish).
func (m *Memory) UnlockLine(line uint64, version uint64) {
	m.meta[line].Store(version << 1)
}

// WordLoad is a raw word read used by the transaction engine between its
// own meta validations.
func (m *Memory) WordLoad(a Addr) uint64 { return m.words[a].Load() }

// WordStore is a raw word write used by the transaction engine while it
// holds the line lock during commit.
func (m *Memory) WordStore(a Addr, v uint64) { m.words[a].Store(v) }

// ClockLoad returns the current global clock value.
func (m *Memory) ClockLoad() uint64 { return m.clock.Load() }

// ClockTick advances the global clock and returns the new value.
func (m *Memory) ClockTick() uint64 { return m.clock.Add(1) }
