package mem

import (
	"sync"
	"testing"
	"testing/quick"
)

func TestNewReservesNilLine(t *testing.T) {
	m := New(1024)
	a := m.Alloc(1)
	if a == Nil {
		t.Fatalf("first allocation returned the nil address")
	}
	if a < WordsPerLine {
		t.Fatalf("first allocation %d lies in the reserved nil line", a)
	}
}

func TestNewRoundsUpToLines(t *testing.T) {
	m := New(17)
	if m.Size()%WordsPerLine != 0 {
		t.Fatalf("size %d is not a whole number of lines", m.Size())
	}
	if m.Lines()*WordsPerLine != m.Size() {
		t.Fatalf("lines %d inconsistent with size %d", m.Lines(), m.Size())
	}
}

func TestNewMinimumCapacity(t *testing.T) {
	m := New(0)
	if m.Size() < 2*WordsPerLine {
		t.Fatalf("tiny heap size %d cannot hold the nil line plus data", m.Size())
	}
}

func TestAllocSequentialDistinct(t *testing.T) {
	m := New(1 << 12)
	a := m.Alloc(3)
	b := m.Alloc(3)
	if b < a+3 {
		t.Fatalf("allocations overlap: %d then %d", a, b)
	}
}

func TestAllocZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Alloc(0) did not panic")
		}
	}()
	New(1024).Alloc(0)
}

func TestAllocExhaustionPanics(t *testing.T) {
	m := New(2 * WordsPerLine)
	defer func() {
		if recover() == nil {
			t.Fatal("allocating past capacity did not panic")
		}
	}()
	for {
		m.Alloc(WordsPerLine)
	}
}

func TestAllocAlignedIsLineAligned(t *testing.T) {
	m := New(1 << 12)
	m.Alloc(3) // misalign the cursor
	a := m.AllocAligned(5)
	if uint64(a)%WordsPerLine != 0 {
		t.Fatalf("aligned allocation %d not on a line boundary", a)
	}
}

func TestAllocLines(t *testing.T) {
	m := New(1 << 12)
	a := m.AllocLines(2)
	b := m.AllocLines(1)
	if uint64(a)%WordsPerLine != 0 || uint64(b)%WordsPerLine != 0 {
		t.Fatalf("line allocations misaligned: %d, %d", a, b)
	}
	if uint64(b-a) < 2*WordsPerLine {
		t.Fatalf("second line allocation %d overlaps the first %d (2 lines)", b, a)
	}
}

func TestLoadInitiallyZero(t *testing.T) {
	m := New(1024)
	a := m.Alloc(4)
	for i := 0; i < 4; i++ {
		if v := m.Load(a + Addr(i)); v != 0 {
			t.Fatalf("fresh word %d holds %d, want 0", i, v)
		}
	}
}

func TestStoreLoadRoundTrip(t *testing.T) {
	m := New(1024)
	a := m.Alloc(2)
	m.Store(a, 42)
	m.Store(a+1, 99)
	if got := m.Load(a); got != 42 {
		t.Fatalf("Load = %d, want 42", got)
	}
	if got := m.Load(a + 1); got != 99 {
		t.Fatalf("Load = %d, want 99", got)
	}
}

func TestStoreBumpsLineVersion(t *testing.T) {
	m := New(1024)
	a := m.Alloc(1)
	line := LineOf(a)
	before := VersionOf(m.MetaLoad(line))
	m.Store(a, 7)
	after := VersionOf(m.MetaLoad(line))
	if after <= before {
		t.Fatalf("version did not advance: %d -> %d", before, after)
	}
	if Locked(m.MetaLoad(line)) {
		t.Fatal("line left locked after Store")
	}
}

func TestStoreAdvancesGlobalClock(t *testing.T) {
	m := New(1024)
	a := m.Alloc(1)
	before := m.ClockLoad()
	m.Store(a, 1)
	if m.ClockLoad() <= before {
		t.Fatal("global clock did not advance on Store")
	}
}

func TestCASSuccessAndFailure(t *testing.T) {
	m := New(1024)
	a := m.Alloc(1)
	if !m.CAS(a, 0, 5) {
		t.Fatal("CAS from correct old value failed")
	}
	if m.CAS(a, 0, 9) {
		t.Fatal("CAS from stale old value succeeded")
	}
	if got := m.Load(a); got != 5 {
		t.Fatalf("value after CAS = %d, want 5", got)
	}
}

func TestFailedCASDoesNotBumpVersion(t *testing.T) {
	m := New(1024)
	a := m.Alloc(1)
	m.Store(a, 1)
	line := LineOf(a)
	before := m.MetaLoad(line)
	if m.CAS(a, 99, 100) {
		t.Fatal("CAS should have failed")
	}
	if after := m.MetaLoad(line); after != before {
		t.Fatalf("failed CAS changed meta: %d -> %d", before, after)
	}
}

func TestFetchAdd(t *testing.T) {
	m := New(1024)
	a := m.Alloc(1)
	if got := m.FetchAdd(a, 3); got != 3 {
		t.Fatalf("FetchAdd = %d, want 3", got)
	}
	if got := m.FetchAdd(a, 4); got != 7 {
		t.Fatalf("FetchAdd = %d, want 7", got)
	}
	// Decrement via two's complement.
	if got := m.FetchAdd(a, ^uint64(0)); got != 6 {
		t.Fatalf("FetchAdd(-1) = %d, want 6", got)
	}
}

func TestLineOfGroupsWords(t *testing.T) {
	if LineOf(0) != LineOf(WordsPerLine-1) {
		t.Fatal("words 0 and 7 should share a line")
	}
	if LineOf(WordsPerLine-1) == LineOf(WordsPerLine) {
		t.Fatal("words 7 and 8 should not share a line")
	}
}

func TestLockedVersionEncoding(t *testing.T) {
	if Locked(0) {
		t.Fatal("zero meta should be unlocked")
	}
	if !Locked(1) {
		t.Fatal("meta with bit 0 set should be locked")
	}
	if VersionOf(7<<1) != 7 {
		t.Fatalf("VersionOf(7<<1) = %d, want 7", VersionOf(7<<1))
	}
}

func TestTryLockUnlockLine(t *testing.T) {
	m := New(1024)
	a := m.Alloc(1)
	line := LineOf(a)
	mw := m.MetaLoad(line)
	if !m.TryLockLine(line, mw) {
		t.Fatal("TryLockLine on a quiescent line failed")
	}
	if !Locked(m.MetaLoad(line)) {
		t.Fatal("line not locked after TryLockLine")
	}
	if m.TryLockLine(line, m.MetaLoad(line)) {
		t.Fatal("TryLockLine on a locked line succeeded")
	}
	m.UnlockLine(line, 123)
	if got := m.MetaLoad(line); Locked(got) || VersionOf(got) != 123 {
		t.Fatalf("after unlock meta = %d, want version 123 unlocked", got)
	}
}

func TestConcurrentFetchAdd(t *testing.T) {
	m := New(1024)
	a := m.Alloc(1)
	const goroutines = 8
	const perG = 2000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				m.FetchAdd(a, 1)
			}
		}()
	}
	wg.Wait()
	if got := m.Load(a); got != goroutines*perG {
		t.Fatalf("concurrent FetchAdd lost updates: %d, want %d", got, goroutines*perG)
	}
}

func TestConcurrentCASMutualExclusion(t *testing.T) {
	m := New(1024)
	lock := m.Alloc(1)
	counter := 0
	const goroutines = 6
	const perG = 1000
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func() {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				for !m.CAS(lock, 0, 1) {
				}
				counter++
				m.Store(lock, 0)
			}
		}()
	}
	wg.Wait()
	if counter != goroutines*perG {
		t.Fatalf("CAS-built lock failed mutual exclusion: counter %d, want %d", counter, goroutines*perG)
	}
}

func TestConcurrentAllocDisjoint(t *testing.T) {
	m := New(1 << 16)
	const goroutines = 8
	const perG = 100
	results := make([][]Addr, goroutines)
	var wg sync.WaitGroup
	wg.Add(goroutines)
	for g := 0; g < goroutines; g++ {
		go func(id int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				results[id] = append(results[id], m.AllocAligned(WordsPerLine))
			}
		}(g)
	}
	wg.Wait()
	seen := map[Addr]bool{}
	for _, rs := range results {
		for _, a := range rs {
			if seen[a] {
				t.Fatalf("address %d allocated twice", a)
			}
			seen[a] = true
		}
	}
}

func TestQuickStoreLoadAnyValue(t *testing.T) {
	m := New(1 << 12)
	a := m.Alloc(1)
	f := func(v uint64) bool {
		m.Store(a, v)
		return m.Load(a) == v
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestQuickVersionMonotonic(t *testing.T) {
	m := New(1 << 12)
	a := m.Alloc(1)
	line := LineOf(a)
	prev := VersionOf(m.MetaLoad(line))
	f := func(v uint64) bool {
		m.Store(a, v)
		cur := VersionOf(m.MetaLoad(line))
		ok := cur > prev
		prev = cur
		return ok
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
