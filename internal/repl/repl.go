// Package repl is the replicated batch log behind rtled's failover story:
// an ordered, append-only log of committed atomic blocks, held in memory
// and optionally mirrored to an append-only file, streamed by a primary to
// its replicas over the rtled/1 protocol extension (internal/server).
//
// The unit of replication is the Entry — the mutating operations of one
// committed atomic block (a coalesced group, a client batch, or a
// cross-shard slow-path block), in execution order. The serving layer
// appends entries while the committing block still holds its shard drain
// gates, so log order equals gate order: replaying entries sequentially
// from genesis reproduces exactly the state the primary served (DESIGN.md
// §9). Reads are never logged — they change nothing and their responses
// are judged by the wire-level checker, not the replica.
//
// The file mirror is an audit and warm-boot convenience, not the
// durability story: rtled's zero-acknowledged-write-loss claim rests on a
// replica having acknowledged the entry before the client saw its
// response (sync ack mode), which survives the primary's disk dying with
// the primary. Each file record is `u32 len | u32 crc32 | payload`; a torn
// tail (a crash mid-append) is detected by length/CRC and dropped on
// load.
package repl

import (
	"encoding/binary"
	"fmt"
)

// Op is one logged operation: the wire op code (internal/check's Op
// values) and its three fixed arguments. The package deliberately stores
// codes as raw bytes rather than importing the server's types, so the
// dependency points one way: the serving layer imports repl, never the
// reverse.
type Op struct {
	Code             uint8
	Arg1, Arg2, Arg3 uint64
}

// Entry is one committed atomic block: a primary-assigned sequence number
// (contiguous from 1) and the block's mutating operations in execution
// order.
type Entry struct {
	Seq uint64
	Ops []Op
}

// MaxOps bounds the operations of one entry, mirroring the serving
// layer's MaxBatchOps so an encoded entry always fits one wire frame.
// Larger committed blocks are chunked into consecutive entries by the
// appender; sequential replay of the chunks is equivalent because nothing
// can observe a replica between entries before promotion.
const MaxOps = 1024

// opBytes is the fixed encoding size of one Op.
const opBytes = 1 + 3*8

// AppendEntryPayload appends e's wire/file encoding to buf:
//
//	u64 seq | u16 n | n x (u8 code | u64 arg1 | u64 arg2 | u64 arg3)
//
// The same bytes serve as a stream-frame payload (the caller adds the
// frame length prefix) and as a file-record payload (the caller adds
// length and CRC).
//
//rtle:hotpath
func AppendEntryPayload(buf []byte, e *Entry) []byte {
	buf = binary.BigEndian.AppendUint64(buf, e.Seq)
	buf = binary.BigEndian.AppendUint16(buf, uint16(len(e.Ops)))
	for _, op := range e.Ops {
		buf = append(buf, op.Code)
		buf = binary.BigEndian.AppendUint64(buf, op.Arg1)
		buf = binary.BigEndian.AppendUint64(buf, op.Arg2)
		buf = binary.BigEndian.AppendUint64(buf, op.Arg3)
	}
	return buf
}

// DecodeEntryPayload parses one encoded entry. The returned entry's Ops
// slice aliases nothing in p.
//
//rtle:hotpath
func DecodeEntryPayload(p []byte) (Entry, error) {
	var e Entry
	if len(p) < 10 {
		//rtle:ignore hotalloc malformed-payload error path; the stream is about to drop
		return e, fmt.Errorf("repl: truncated entry payload (%d bytes)", len(p))
	}
	e.Seq = binary.BigEndian.Uint64(p)
	n := int(binary.BigEndian.Uint16(p[8:]))
	if n == 0 || n > MaxOps {
		//rtle:ignore hotalloc malformed-payload error path; the stream is about to drop
		return e, fmt.Errorf("repl: entry of %d ops outside [1,%d]", n, MaxOps)
	}
	p = p[10:]
	if len(p) != n*opBytes {
		//rtle:ignore hotalloc malformed-payload error path; the stream is about to drop
		return e, fmt.Errorf("repl: entry body of %d bytes, want %d", len(p), n*opBytes)
	}
	e.Ops = make([]Op, n) //rtle:ignore hotalloc one op slice per decoded entry; the entry owns it past the caller's buffer reuse
	for i := range e.Ops {
		op := &e.Ops[i]
		op.Code = p[0]
		op.Arg1 = binary.BigEndian.Uint64(p[1:])
		op.Arg2 = binary.BigEndian.Uint64(p[9:])
		op.Arg3 = binary.BigEndian.Uint64(p[17:])
		p = p[opBytes:]
	}
	return e, nil
}

// AppendAckPayload appends a replica's acknowledgement payload — the
// highest contiguous sequence it has appended and applied — to buf.
//
//rtle:hotpath
func AppendAckPayload(buf []byte, seq uint64) []byte {
	return binary.BigEndian.AppendUint64(buf, seq)
}

// DecodeAckPayload parses one acknowledgement payload.
//
//rtle:hotpath
func DecodeAckPayload(p []byte) (uint64, error) {
	if len(p) != 8 {
		//rtle:ignore hotalloc malformed-payload error path; the stream is about to drop
		return 0, fmt.Errorf("repl: ack payload of %d bytes, want 8", len(p))
	}
	return binary.BigEndian.Uint64(p), nil
}
