package repl

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestEntryPayloadRoundTrip checks the wire/file encoding is lossless.
func TestEntryPayloadRoundTrip(t *testing.T) {
	e := Entry{Seq: 42, Ops: []Op{
		{Code: 1, Arg1: 7},
		{Code: 7, Arg1: 1, Arg2: 2, Arg3: 300},
		{Code: 4, Arg1: ^uint64(0), Arg2: 1 << 60},
	}}
	p := AppendEntryPayload(nil, &e)
	got, err := DecodeEntryPayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("round trip: got %+v, want %+v", got, e)
	}
	if _, err := DecodeEntryPayload(p[:len(p)-1]); err == nil {
		t.Error("truncated payload decoded without error")
	}
	if _, err := DecodeEntryPayload(AppendEntryPayload(nil, &Entry{Seq: 1})); err == nil {
		t.Error("zero-op entry decoded without error")
	}
}

// TestAckPayloadRoundTrip checks the acknowledgement encoding.
func TestAckPayloadRoundTrip(t *testing.T) {
	p := AppendAckPayload(nil, 99)
	seq, err := DecodeAckPayload(p)
	if err != nil || seq != 99 {
		t.Fatalf("ack round trip: got (%d, %v)", seq, err)
	}
	if _, err := DecodeAckPayload(p[:7]); err == nil {
		t.Error("short ack decoded without error")
	}
}

// TestLogAppendFrom checks sequencing, suffix reads, and wakeups on the
// memory-only log.
func TestLogAppendFrom(t *testing.T) {
	l, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	ch := l.Subscribe()
	defer l.Unsubscribe(ch)
	for i := 1; i <= 5; i++ {
		if seq := l.Append([]Op{{Code: 1, Arg1: uint64(i)}}); seq != uint64(i) {
			t.Fatalf("append %d assigned seq %d", i, seq)
		}
	}
	select {
	case <-ch:
	default:
		t.Error("no wakeup after appends")
	}
	if hw := l.HighWater(); hw != 5 {
		t.Fatalf("high water %d, want 5", hw)
	}
	got := l.From(3, 10)
	if len(got) != 3 || got[0].Seq != 3 || got[2].Seq != 5 {
		t.Fatalf("From(3): %+v", got)
	}
	if got := l.From(6, 10); got != nil {
		t.Fatalf("From past the high-water mark returned %+v", got)
	}
	if got := l.From(1, 2); len(got) != 2 || got[1].Seq != 2 {
		t.Fatalf("From(1, max 2): %+v", got)
	}
}

// TestLogReplicaContiguity checks AppendEntry enforces the contiguous
// sequence contract.
func TestLogReplicaContiguity(t *testing.T) {
	l, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendEntry(Entry{Seq: 1, Ops: []Op{{Code: 1}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendEntry(Entry{Seq: 3, Ops: []Op{{Code: 1}}}); err == nil {
		t.Fatal("gap append succeeded")
	}
	if err := l.AppendEntry(Entry{Seq: 1, Ops: []Op{{Code: 1}}}); err == nil {
		t.Fatal("stale re-append succeeded")
	}
	if err := l.AppendEntry(Entry{Seq: 2, Ops: []Op{{Code: 2}}}); err != nil {
		t.Fatal(err)
	}
}

// TestLogFilePersistence checks entries survive a close/reopen cycle.
func TestLogFilePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repl.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]Op{{Code: 1, Arg1: 10}})
	l.Append([]Op{{Code: 2, Arg1: 20}, {Code: 4, Arg1: 21, Arg2: 9}})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if hw := l2.HighWater(); hw != 2 {
		t.Fatalf("reloaded high water %d, want 2", hw)
	}
	got := l2.From(1, 10)
	if len(got) != 2 || got[1].Ops[1].Arg1 != 21 {
		t.Fatalf("reloaded entries: %+v", got)
	}
	// Appending after reload continues the sequence on disk.
	if seq := l2.Append([]Op{{Code: 1, Arg1: 30}}); seq != 3 {
		t.Fatalf("post-reload append assigned seq %d, want 3", seq)
	}
}

// TestLogTornTail checks a crash mid-append (torn record) drops only the
// tail and a corrupt CRC stops the load at the last intact record.
func TestLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repl.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]Op{{Code: 1, Arg1: 1}})
	l.Append([]Op{{Code: 1, Arg1: 2}})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the file mid-record: a header promising more bytes than exist.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var torn [8]byte
	binary.BigEndian.PutUint32(torn[:4], 100)
	if _, err := f.Write(torn[:]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if hw := l2.HighWater(); hw != 2 {
		t.Fatalf("high water after torn tail %d, want 2", hw)
	}
	// The torn tail was truncated, so appends resume cleanly and reload.
	l2.Append([]Op{{Code: 1, Arg1: 3}})
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if hw := l3.HighWater(); hw != 3 {
		t.Fatalf("high water after repair %d, want 3", hw)
	}
}
