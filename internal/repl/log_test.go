package repl

import (
	"encoding/binary"
	"hash/crc32"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// TestEntryPayloadRoundTrip checks the wire/file encoding is lossless.
func TestEntryPayloadRoundTrip(t *testing.T) {
	e := Entry{Seq: 42, Ops: []Op{
		{Code: 1, Arg1: 7},
		{Code: 7, Arg1: 1, Arg2: 2, Arg3: 300},
		{Code: 4, Arg1: ^uint64(0), Arg2: 1 << 60},
	}}
	p := AppendEntryPayload(nil, &e)
	got, err := DecodeEntryPayload(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, e) {
		t.Fatalf("round trip: got %+v, want %+v", got, e)
	}
	if _, err := DecodeEntryPayload(p[:len(p)-1]); err == nil {
		t.Error("truncated payload decoded without error")
	}
	if _, err := DecodeEntryPayload(AppendEntryPayload(nil, &Entry{Seq: 1})); err == nil {
		t.Error("zero-op entry decoded without error")
	}
}

// TestAckPayloadRoundTrip checks the acknowledgement encoding.
func TestAckPayloadRoundTrip(t *testing.T) {
	p := AppendAckPayload(nil, 99)
	seq, err := DecodeAckPayload(p)
	if err != nil || seq != 99 {
		t.Fatalf("ack round trip: got (%d, %v)", seq, err)
	}
	if _, err := DecodeAckPayload(p[:7]); err == nil {
		t.Error("short ack decoded without error")
	}
}

// TestLogAppendFrom checks sequencing, suffix reads, and wakeups on the
// memory-only log.
func TestLogAppendFrom(t *testing.T) {
	l, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	ch := l.Subscribe()
	defer l.Unsubscribe(ch)
	for i := 1; i <= 5; i++ {
		if seq := l.Append([]Op{{Code: 1, Arg1: uint64(i)}}); seq != uint64(i) {
			t.Fatalf("append %d assigned seq %d", i, seq)
		}
	}
	select {
	case <-ch:
	default:
		t.Error("no wakeup after appends")
	}
	if hw := l.HighWater(); hw != 5 {
		t.Fatalf("high water %d, want 5", hw)
	}
	got := l.From(3, 10)
	if len(got) != 3 || got[0].Seq != 3 || got[2].Seq != 5 {
		t.Fatalf("From(3): %+v", got)
	}
	if got := l.From(6, 10); got != nil {
		t.Fatalf("From past the high-water mark returned %+v", got)
	}
	if got := l.From(1, 2); len(got) != 2 || got[1].Seq != 2 {
		t.Fatalf("From(1, max 2): %+v", got)
	}
}

// TestLogReplicaContiguity checks AppendEntry enforces the contiguous
// sequence contract.
func TestLogReplicaContiguity(t *testing.T) {
	l, err := Open("")
	if err != nil {
		t.Fatal(err)
	}
	if err := l.AppendEntry(Entry{Seq: 1, Ops: []Op{{Code: 1}}}); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendEntry(Entry{Seq: 3, Ops: []Op{{Code: 1}}}); err == nil {
		t.Fatal("gap append succeeded")
	}
	if err := l.AppendEntry(Entry{Seq: 1, Ops: []Op{{Code: 1}}}); err == nil {
		t.Fatal("stale re-append succeeded")
	}
	if err := l.AppendEntry(Entry{Seq: 2, Ops: []Op{{Code: 2}}}); err != nil {
		t.Fatal(err)
	}
}

// TestLogFilePersistence checks entries survive a close/reopen cycle.
func TestLogFilePersistence(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repl.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]Op{{Code: 1, Arg1: 10}})
	l.Append([]Op{{Code: 2, Arg1: 20}, {Code: 4, Arg1: 21, Arg2: 9}})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if hw := l2.HighWater(); hw != 2 {
		t.Fatalf("reloaded high water %d, want 2", hw)
	}
	got := l2.From(1, 10)
	if len(got) != 2 || got[1].Ops[1].Arg1 != 21 {
		t.Fatalf("reloaded entries: %+v", got)
	}
	// Appending after reload continues the sequence on disk.
	if seq := l2.Append([]Op{{Code: 1, Arg1: 30}}); seq != 3 {
		t.Fatalf("post-reload append assigned seq %d, want 3", seq)
	}
}

// TestLogTruncateBelow checks compaction: the floor rises, reads below it
// vanish, sequencing continues above it, and the compacted file reloads
// with the same floor and suffix.
func TestLogTruncateBelow(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repl.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 10; i++ {
		l.Append([]Op{{Code: 1, Arg1: uint64(i)}})
	}
	if err := l.TruncateBelow(4); err != nil {
		t.Fatalf("TruncateBelow: %v", err)
	}
	if f, hw := l.Floor(), l.HighWater(); f != 4 || hw != 10 {
		t.Fatalf("floor %d high-water %d, want 4 and 10", f, hw)
	}
	if got := l.From(1, 10); got != nil {
		t.Fatalf("From below the floor returned %+v", got)
	}
	if got := l.From(5, 2); len(got) != 2 || got[0].Seq != 5 || got[1].Seq != 6 {
		t.Fatalf("From(5) after truncation: %+v", got)
	}
	if st := l.LogStats(); st.Entries != 6 || st.Floor != 4 || st.Truncations != 1 || st.Bytes == 0 {
		t.Fatalf("stats after truncation: %+v", st)
	}
	// Truncating at or below the floor is a no-op.
	if err := l.TruncateBelow(2); err != nil {
		t.Fatal(err)
	}
	if st := l.LogStats(); st.Floor != 4 || st.Truncations != 1 {
		t.Fatalf("no-op truncation moved the floor: %+v", st)
	}
	if seq := l.Append([]Op{{Code: 1, Arg1: 11}}); seq != 11 {
		t.Fatalf("post-truncation append assigned seq %d, want 11", seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay from the compacted prefix begins at the floor.
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if f, hw := l2.Floor(), l2.HighWater(); f != 4 || hw != 11 {
		t.Fatalf("reloaded floor %d high-water %d, want 4 and 11", f, hw)
	}
	if got := l2.From(5, 100); len(got) != 7 || got[0].Seq != 5 || got[6].Seq != 11 {
		t.Fatalf("reloaded suffix: %+v", got)
	}
	if seq := l2.Append([]Op{{Code: 1, Arg1: 12}}); seq != 12 {
		t.Fatalf("append after reload assigned seq %d, want 12", seq)
	}
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestLogTruncateAllAndResetTo checks the empty-suffix cases: truncating
// the whole log and the replica bootstrap reset.
func TestLogTruncateAllAndResetTo(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repl.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i <= 3; i++ {
		l.Append([]Op{{Code: 1, Arg1: uint64(i)}})
	}
	// Clamped past the high-water mark: everything goes, floor = 3.
	if err := l.TruncateBelow(99); err != nil {
		t.Fatal(err)
	}
	if f, hw := l.Floor(), l.HighWater(); f != 3 || hw != 3 {
		t.Fatalf("floor %d high-water %d after full truncation, want 3 and 3", f, hw)
	}
	if seq := l.Append([]Op{{Code: 1, Arg1: 4}}); seq != 4 {
		t.Fatalf("append on empty suffix assigned seq %d, want 4", seq)
	}
	// Replica bootstrap: the snapshot replaces everything up to 50.
	if err := l.ResetTo(50); err != nil {
		t.Fatal(err)
	}
	if err := l.AppendEntry(Entry{Seq: 51, Ops: []Op{{Code: 2}}}); err != nil {
		t.Fatalf("AppendEntry at the reset floor: %v", err)
	}
	if err := l.AppendEntry(Entry{Seq: 53, Ops: []Op{{Code: 2}}}); err == nil {
		t.Fatal("gap append above the reset floor succeeded")
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if f, hw := l2.Floor(), l2.HighWater(); f != 50 || hw != 51 {
		t.Fatalf("reloaded floor %d high-water %d, want 50 and 51", f, hw)
	}
}

// TestLogRejectsSeqAboveFloor checks a log file whose first entry sits
// above the floor marker's successor is rejected with a clear error — a
// silent gap would desynchronize replay.
func TestLogRejectsSeqAboveFloor(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repl.log")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	// Floor marker at 4, then an entry at 7 — seq 5 and 6 are missing.
	write := func(payload []byte) {
		var hdr [8]byte
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
		if _, err := f.Write(hdr[:]); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Write(payload); err != nil {
			t.Fatal(err)
		}
	}
	write(floorMarkerPayload(4))
	write(AppendEntryPayload(nil, &Entry{Seq: 7, Ops: []Op{{Code: 1}}}))
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(path); err == nil {
		t.Fatal("log with a gap above its floor opened without error")
	}
}

// TestLogTornTail checks a crash mid-append (torn record) drops only the
// tail and a corrupt CRC stops the load at the last intact record.
func TestLogTornTail(t *testing.T) {
	path := filepath.Join(t.TempDir(), "repl.log")
	l, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	l.Append([]Op{{Code: 1, Arg1: 1}})
	l.Append([]Op{{Code: 1, Arg1: 2}})
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the file mid-record: a header promising more bytes than exist.
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	var torn [8]byte
	binary.BigEndian.PutUint32(torn[:4], 100)
	if _, err := f.Write(torn[:]); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	l2, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	if hw := l2.HighWater(); hw != 2 {
		t.Fatalf("high water after torn tail %d, want 2", hw)
	}
	// The torn tail was truncated, so appends resume cleanly and reload.
	l2.Append([]Op{{Code: 1, Arg1: 3}})
	if err := l2.Close(); err != nil {
		t.Fatal(err)
	}
	l3, err := Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer l3.Close()
	if hw := l3.HighWater(); hw != 3 {
		t.Fatalf("high water after repair %d, want 3", hw)
	}
}
