package repl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"sync"
)

// Log is the ordered block log. Entries are immutable once appended and
// sequence numbers are contiguous from 1, so readers can stream any
// suffix without coordination beyond the high-water mark. A primary
// assigns sequence numbers with Append; a replica mirrors the primary's
// numbering with AppendEntry, which enforces contiguity — a gap means the
// stream desynchronized and the subscriber must resubscribe from its own
// high-water mark.
type Log struct {
	mu      sync.Mutex
	entries []Entry // entries[i].Seq == uint64(i)+1
	f       *os.File
	bw      *bufio.Writer
	err     error // sticky file-append error; the memory log stays authoritative
	subs    map[chan struct{}]struct{}
}

// Open returns a Log mirrored to the append-only file at path, loading
// any entries a previous process left there (a torn tail is dropped). An
// empty path keeps the log memory-only.
func Open(path string) (*Log, error) {
	l := &Log{subs: make(map[chan struct{}]struct{})}
	if path == "" {
		return l, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	n, err := l.load(f)
	if err != nil {
		_ = f.Close() // the load error is the one to report
		return nil, err
	}
	// Truncate a torn tail (or trailing garbage) so appends resume from a
	// clean record boundary.
	if err := f.Truncate(n); err != nil {
		_ = f.Close()
		return nil, err
	}
	if _, err := f.Seek(n, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, err
	}
	l.f = f
	l.bw = bufio.NewWriterSize(f, 1<<16)
	return l, nil
}

// load reads records from f until EOF or the first torn/corrupt record,
// returning the byte offset of the last intact record's end.
func (l *Log) load(f *os.File) (int64, error) {
	br := bufio.NewReaderSize(f, 1<<16)
	var good int64
	var hdr [8]byte
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return good, nil // EOF or torn header: keep the intact prefix
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		sum := binary.BigEndian.Uint32(hdr[4:])
		if n < 10 || n > 10+MaxOps*opBytes {
			return good, nil // corrupt length: stop at the intact prefix
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return good, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return good, nil // bit rot or torn rewrite
		}
		e, err := DecodeEntryPayload(payload)
		if err != nil {
			return good, nil
		}
		if e.Seq != uint64(len(l.entries))+1 {
			return 0, fmt.Errorf("repl: log file record %d carries seq %d", len(l.entries)+1, e.Seq)
		}
		l.entries = append(l.entries, e)
		good += int64(8 + n)
	}
}

// Append assigns the next sequence number to one committed block's
// mutating operations and appends it. ops is copied; the caller may reuse
// its slice. len(ops) must be in [1, MaxOps] (the serving layer chunks
// larger blocks).
func (l *Log) Append(ops []Op) uint64 {
	if len(ops) == 0 || len(ops) > MaxOps {
		panic(fmt.Sprintf("repl: Append with %d ops", len(ops)))
	}
	e := Entry{Ops: append([]Op(nil), ops...)}
	l.mu.Lock()
	e.Seq = uint64(len(l.entries)) + 1
	l.append(e)
	l.mu.Unlock()
	return e.Seq
}

// AppendEntry appends an entry carrying its primary-assigned sequence
// number (the replica path). The sequence must be exactly the current
// high-water mark plus one.
func (l *Log) AppendEntry(e Entry) error {
	if len(e.Ops) == 0 || len(e.Ops) > MaxOps {
		return fmt.Errorf("repl: entry with %d ops", len(e.Ops))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if want := uint64(len(l.entries)) + 1; e.Seq != want {
		return fmt.Errorf("repl: appending seq %d at high-water %d", e.Seq, want-1)
	}
	l.append(e)
	return nil
}

// append installs e (seq already assigned and checked), mirrors it to the
// file, and wakes streamers. Called with mu held.
func (l *Log) append(e Entry) {
	l.entries = append(l.entries, e)
	if l.bw != nil && l.err == nil {
		payload := AppendEntryPayload(nil, &e)
		var hdr [8]byte
		binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
		binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
		if _, err := l.bw.Write(hdr[:]); err != nil {
			l.err = err
		} else if _, err := l.bw.Write(payload); err != nil {
			l.err = err
		} else if err := l.bw.Flush(); err != nil {
			// Flush per append: the file is only useful if it tracks the
			// memory log closely. The mirror is best-effort (see package
			// doc), so a failure is sticky and surfaced via Err, not fatal.
			l.err = err
		}
	}
	for ch := range l.subs {
		select {
		case ch <- struct{}{}:
		default: // the subscriber already has a wakeup pending
		}
	}
}

// HighWater returns the sequence of the latest entry (0 when empty).
func (l *Log) HighWater() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return uint64(len(l.entries))
}

// From returns up to max entries starting at sequence seq (1-based). The
// returned entries are immutable; callers must not modify their Ops.
func (l *Log) From(seq uint64, max int) []Entry {
	if seq == 0 {
		seq = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq > uint64(len(l.entries)) {
		return nil
	}
	end := seq - 1 + uint64(max)
	if end > uint64(len(l.entries)) {
		end = uint64(len(l.entries))
	}
	return l.entries[seq-1 : end]
}

// Subscribe returns a channel that receives a wakeup after every append.
// Pair with Unsubscribe.
func (l *Log) Subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	l.mu.Lock()
	l.subs[ch] = struct{}{}
	l.mu.Unlock()
	return ch
}

// Unsubscribe removes a Subscribe channel.
func (l *Log) Unsubscribe(ch chan struct{}) {
	l.mu.Lock()
	delete(l.subs, ch)
	l.mu.Unlock()
}

// Err returns the sticky file-mirror error, if any. The in-memory log
// (and therefore replication) keeps working after a mirror failure.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close flushes and closes the file mirror. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return l.err
	}
	ferr := l.bw.Flush()
	if cerr := l.f.Close(); ferr == nil {
		ferr = cerr
	}
	l.f, l.bw = nil, nil
	if l.err == nil {
		l.err = ferr
	}
	return ferr
}
