package repl

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// Log is the ordered block log. Entries are immutable once appended and
// sequence numbers are contiguous above the compaction floor, so readers
// can stream any suffix without coordination beyond the high-water mark.
// A primary assigns sequence numbers with Append; a replica mirrors the
// primary's numbering with AppendEntry, which enforces contiguity — a gap
// means the stream desynchronized and the subscriber must resubscribe
// from its own high-water mark.
//
// The floor is the highest sequence compaction has discarded (0 when the
// log still reaches back to genesis). Entries at or below the floor are
// gone: replaying them requires a snapshot stamped at floor or later.
// TruncateBelow raises the floor; on a file-mirrored log the file is
// rewritten atomically (tmp + rename) with a floor-marker record — a
// zero-op record carrying the floor sequence — as its first record, so a
// later Open knows where the retained suffix starts.
type Log struct {
	mu      sync.Mutex
	floor   uint64  // highest compacted-away sequence; entries[i].Seq == floor+i+1
	entries []Entry
	bytes   int64  // encoded size of retained entry records (header + payload)
	truncs  uint64 // completed truncations (TruncateBelow / ResetTo)
	path    string // file-mirror path; "" when memory-only
	f       *os.File
	bw      *bufio.Writer
	err     error // sticky file-append error; the memory log stays authoritative
	subs    map[chan struct{}]struct{}
}

// recordBytes is the on-disk (and accounting) size of one entry record:
// 8-byte header plus the `u64 seq | u16 n | n ops` payload.
func recordBytes(e *Entry) int64 {
	return int64(8 + 10 + len(e.Ops)*opBytes)
}

// Open returns a Log mirrored to the append-only file at path, loading
// any entries a previous process left there (a torn tail is dropped). An
// empty path keeps the log memory-only.
func Open(path string) (*Log, error) {
	l := &Log{subs: make(map[chan struct{}]struct{}), path: path}
	if path == "" {
		return l, nil
	}
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, err
	}
	n, err := l.load(f)
	if err != nil {
		_ = f.Close() // the load error is the one to report
		return nil, err
	}
	// Truncate a torn tail (or trailing garbage) so appends resume from a
	// clean record boundary.
	if err := f.Truncate(n); err != nil {
		_ = f.Close()
		return nil, err
	}
	if _, err := f.Seek(n, io.SeekStart); err != nil {
		_ = f.Close()
		return nil, err
	}
	l.f = f
	l.bw = bufio.NewWriterSize(f, 1<<16)
	return l, nil
}

// load reads records from f until EOF or the first torn/corrupt record,
// returning the byte offset of the last intact record's end. A zero-op
// record is the floor marker; it is legal only as the very first record.
func (l *Log) load(f *os.File) (int64, error) {
	br := bufio.NewReaderSize(f, 1<<16)
	var good int64
	var hdr [8]byte
	first := true
	for {
		if _, err := io.ReadFull(br, hdr[:]); err != nil {
			return good, nil // EOF or torn header: keep the intact prefix
		}
		n := binary.BigEndian.Uint32(hdr[:4])
		sum := binary.BigEndian.Uint32(hdr[4:])
		if n < 10 || n > 10+MaxOps*opBytes {
			return good, nil // corrupt length: stop at the intact prefix
		}
		payload := make([]byte, n)
		if _, err := io.ReadFull(br, payload); err != nil {
			return good, nil // torn payload
		}
		if crc32.ChecksumIEEE(payload) != sum {
			return good, nil // bit rot or torn rewrite
		}
		if n == 10 && binary.BigEndian.Uint16(payload[8:]) == 0 {
			// Floor marker: the retained suffix starts above this sequence.
			if !first {
				return good, nil // a marker mid-file is garbage: stop before it
			}
			l.floor = binary.BigEndian.Uint64(payload)
			first = false
			good += int64(8 + n)
			continue
		}
		first = false
		e, err := DecodeEntryPayload(payload)
		if err != nil {
			return good, nil
		}
		if e.Seq != l.floor+uint64(len(l.entries))+1 {
			return 0, fmt.Errorf("repl: log file record %d carries seq %d, want %d",
				len(l.entries)+1, e.Seq, l.floor+uint64(len(l.entries))+1)
		}
		l.entries = append(l.entries, e)
		l.bytes += recordBytes(&e)
		good += int64(8 + n)
	}
}

// Append assigns the next sequence number to one committed block's
// mutating operations and appends it. ops is copied; the caller may reuse
// its slice. len(ops) must be in [1, MaxOps] (the serving layer chunks
// larger blocks).
func (l *Log) Append(ops []Op) uint64 {
	if len(ops) == 0 || len(ops) > MaxOps {
		panic(fmt.Sprintf("repl: Append with %d ops", len(ops)))
	}
	e := Entry{Ops: append([]Op(nil), ops...)}
	l.mu.Lock()
	e.Seq = l.floor + uint64(len(l.entries)) + 1
	l.append(e)
	l.mu.Unlock()
	return e.Seq
}

// AppendEntry appends an entry carrying its primary-assigned sequence
// number (the replica path). The sequence must be exactly the current
// high-water mark plus one.
func (l *Log) AppendEntry(e Entry) error {
	if len(e.Ops) == 0 || len(e.Ops) > MaxOps {
		return fmt.Errorf("repl: entry with %d ops", len(e.Ops))
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if want := l.floor + uint64(len(l.entries)) + 1; e.Seq != want {
		return fmt.Errorf("repl: appending seq %d at high-water %d", e.Seq, want-1)
	}
	l.append(e)
	return nil
}

// append installs e (seq already assigned and checked), mirrors it to the
// file, and wakes streamers. Called with mu held.
func (l *Log) append(e Entry) {
	l.entries = append(l.entries, e)
	l.bytes += recordBytes(&e)
	if l.bw != nil && l.err == nil {
		payload := AppendEntryPayload(nil, &e)
		if err := writeRecord(l.bw, payload); err != nil {
			l.err = err
		} else if err := l.bw.Flush(); err != nil {
			// Flush per append: the file is only useful if it tracks the
			// memory log closely. The mirror is best-effort (see package
			// doc), so a failure is sticky and surfaced via Err, not fatal.
			l.err = err
		}
	}
	for ch := range l.subs {
		select {
		case ch <- struct{}{}:
		default: // the subscriber already has a wakeup pending
		}
	}
}

// writeRecord writes one `u32 len | u32 crc32 | payload` record.
func writeRecord(w io.Writer, payload []byte) error {
	var hdr [8]byte
	binary.BigEndian.PutUint32(hdr[:4], uint32(len(payload)))
	binary.BigEndian.PutUint32(hdr[4:], crc32.ChecksumIEEE(payload))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// floorMarkerPayload encodes the zero-op floor-marker record payload.
func floorMarkerPayload(floor uint64) []byte {
	p := binary.BigEndian.AppendUint64(nil, floor)
	return binary.BigEndian.AppendUint16(p, 0)
}

// TruncateBelow discards every entry with sequence ≤ seq, raising the
// compaction floor. The caller owns the safety argument: seq must be
// covered by a durable snapshot, and no live subscriber may still need
// the discarded prefix. Sequences at or below the current floor are a
// no-op; seq is clamped to the high-water mark. The in-memory log
// truncates unconditionally; the file mirror is rewritten atomically and
// a rewrite failure is sticky (an un-truncated file is a superset of the
// log, so a stale mirror is safe) and returned.
func (l *Log) TruncateBelow(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq <= l.floor {
		return nil
	}
	if hw := l.floor + uint64(len(l.entries)); seq > hw {
		seq = hw
	}
	drop := int(seq - l.floor)
	l.entries = append([]Entry(nil), l.entries[drop:]...)
	l.floor = seq
	l.bytes = 0
	for i := range l.entries {
		l.bytes += recordBytes(&l.entries[i])
	}
	l.truncs++
	return l.rewriteLocked()
}

// ResetTo discards the whole log and restarts it empty at floor seq — the
// replica snapshot-bootstrap path: the snapshot replaces every entry ≤
// seq, and the primary's stream resumes at seq+1. Called with no
// concurrent appenders.
func (l *Log) ResetTo(seq uint64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	l.entries = nil
	l.floor = seq
	l.bytes = 0
	l.truncs++
	return l.rewriteLocked()
}

// rewriteLocked replaces the file mirror with a floor marker plus the
// retained entries, atomically (tmp + rename). Called with mu held. On
// failure the old file stays in place and the error is sticky.
func (l *Log) rewriteLocked() error {
	if l.f == nil {
		return nil
	}
	fail := func(err error) error {
		if l.err == nil {
			l.err = err
		}
		return err
	}
	tmp, err := os.CreateTemp(filepath.Dir(l.path), ".rtle-log-*")
	if err != nil {
		return fail(err)
	}
	bw := bufio.NewWriterSize(tmp, 1<<16)
	werr := func() error {
		if l.floor > 0 {
			if err := writeRecord(bw, floorMarkerPayload(l.floor)); err != nil {
				return err
			}
		}
		for i := range l.entries {
			if err := writeRecord(bw, AppendEntryPayload(nil, &l.entries[i])); err != nil {
				return err
			}
		}
		if err := bw.Flush(); err != nil {
			return err
		}
		return tmp.Sync()
	}()
	if werr == nil {
		werr = tmp.Close()
	} else {
		_ = tmp.Close()
	}
	if werr == nil {
		werr = os.Rename(tmp.Name(), l.path)
	}
	if werr != nil {
		_ = os.Remove(tmp.Name())
		return fail(werr)
	}
	// Swap the handle to the renamed file, positioned for appends.
	f, err := os.OpenFile(l.path, os.O_RDWR, 0o644)
	if err != nil {
		return fail(err)
	}
	if _, err := f.Seek(0, io.SeekEnd); err != nil {
		_ = f.Close()
		return fail(err)
	}
	_ = l.bw.Flush()
	_ = l.f.Close()
	l.f, l.bw = f, bufio.NewWriterSize(f, 1<<16)
	return nil
}

// HighWater returns the sequence of the latest entry (the floor when the
// retained suffix is empty, 0 for a fresh log).
func (l *Log) HighWater() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.floor + uint64(len(l.entries))
}

// Floor returns the highest compacted-away sequence (0 when the log still
// reaches back to genesis).
func (l *Log) Floor() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.floor
}

// Stats is a point-in-time observability snapshot of the log.
type Stats struct {
	Entries     int    // retained entries (above the floor)
	Bytes       int64  // encoded size of the retained entry records
	Floor       uint64 // highest compacted-away sequence
	Truncations uint64 // completed TruncateBelow/ResetTo calls
}

// LogStats returns current log statistics.
func (l *Log) LogStats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{Entries: len(l.entries), Bytes: l.bytes, Floor: l.floor, Truncations: l.truncs}
}

// From returns up to max entries starting at sequence seq (1-based). The
// returned entries are immutable; callers must not modify their Ops.
// Sequences at or below the compaction floor return nil exactly like
// sequences past the high-water mark: the caller is expected to have
// guarded against requesting a compacted prefix (serveSubscriber answers
// such a subscriber with a snapshot instead).
func (l *Log) From(seq uint64, max int) []Entry {
	if seq == 0 {
		seq = 1
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if seq <= l.floor {
		return nil
	}
	idx := seq - l.floor // 1-based index into the retained suffix
	if idx > uint64(len(l.entries)) {
		return nil
	}
	end := idx - 1 + uint64(max)
	if end > uint64(len(l.entries)) {
		end = uint64(len(l.entries))
	}
	return l.entries[idx-1 : end]
}

// Subscribe returns a channel that receives a wakeup after every append.
// Pair with Unsubscribe.
func (l *Log) Subscribe() chan struct{} {
	ch := make(chan struct{}, 1)
	l.mu.Lock()
	l.subs[ch] = struct{}{}
	l.mu.Unlock()
	return ch
}

// Unsubscribe removes a Subscribe channel.
func (l *Log) Unsubscribe(ch chan struct{}) {
	l.mu.Lock()
	delete(l.subs, ch)
	l.mu.Unlock()
}

// Err returns the sticky file-mirror error, if any. The in-memory log
// (and therefore replication) keeps working after a mirror failure.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close flushes and closes the file mirror. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.f == nil {
		return l.err
	}
	ferr := l.bw.Flush()
	if cerr := l.f.Close(); ferr == nil {
		ferr = cerr
	}
	l.f, l.bw = nil, nil
	if l.err == nil {
		l.err = ferr
	}
	return ferr
}
